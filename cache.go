package pathcover

// Canonical graph identity and the Pool's result cache.
//
// The cotree of a cograph is unique up to child order, so sorting
// children by a deterministic subtree key (internal/canon) collapses
// every relabelled or rewritten presentation of the same graph onto
// one canonical representative with a 128-bit hash. A Pool built with
// WithCache keys finished covers on that hash: a repeat of a graph the
// pool has already solved — even under a different vertex numbering —
// is served by remapping the cached canonical cover into the request's
// own numbering, without touching a shard.
//
// The cache layer never changes what a miss computes: misses run the
// untouched pipeline on the original tree (the canonical form is used
// only for the key and the host-side remap), so the simulated
// simtime/simwork counters of miss solves stay bit-identical to an
// uncached pool's. Hits and coalesced waits are uncharged — no shard
// call is recorded and the returned Cover carries zero Stats, like any
// other host-side output conversion.

import (
	"pathcover/internal/canon"
	"pathcover/internal/covercache"
)

// canonical returns the graph's memoized canonical form, computing it
// on first use. Cographs only: raw graphs have no cotree (and no cheap
// canonical form), so nil is returned for them.
func (g *Graph) canonical() *canon.Form {
	if g.t == nil {
		return nil
	}
	g.canonOnce.Do(func() { g.canonForm = canon.Canonicalize(g.t) })
	return g.canonForm
}

// CanonicalHash returns the 128-bit canonical-form hash of a cograph:
// every cograph representing the same graph up to vertex relabelling
// (any child order, any vertex numbering, any names) hashes equal, and
// distinct graphs hash distinct up to astronomically unlikely 128-bit
// collisions. ok is false for non-cograph graphs (FromEdgesAny raw
// adjacency), which have no canonical form.
func (g *Graph) CanonicalHash() (hi, lo uint64, ok bool) {
	f := g.canonical()
	if f == nil {
		return 0, 0, false
	}
	return f.Hash.Hi, f.Hash.Lo, true
}

// WithCache equips the pool with a result cache of capBytes capacity:
// a size-aware LRU of finished covers keyed on canonical graph
// identity, shared across the shards, with singleflight coalescing of
// concurrent requests for the same graph. Non-positive capacities
// leave the pool uncached (the default — benchmarks and the package-
// level Graph methods measure the pipeline, not the cache).
func WithCache(capBytes int64) PoolOption {
	return func(c *poolConfig) { c.cacheBytes = capBytes }
}

// CacheStats reports the pool cache's counters: requests served
// without a solve (Hits), solves that populated the cache (Misses),
// concurrent duplicates that waited on an in-flight solve instead of
// re-solving (Coalesced), and entries dropped for capacity
// (Evictions). Zero-valued on uncached pools.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Capacity  int64 `json:"capacity"`
}

// cacheKey decides whether this call may be served through the cache
// and, when it may, returns its key and the graph's canonical form.
// Ineligible: uncached pools, raw graphs, pinned non-cograph backends,
// and calls with an active fault injector (explicit or ambient via
// PATHCOVER_FAULT) — fault runs must reach the pipeline every time.
// WithIndexWidth is deliberately absent from the key: all widths
// produce identical covers and counters.
func (p *Pool) cacheKey(g *Graph, opts []Option) (covercache.Key, *canon.Form, bool) {
	if p.cache == nil || g.t == nil {
		return covercache.Key{}, nil, false
	}
	cfg := p.baseCfg
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.backend != BackendAuto && cfg.backend != BackendCograph {
		return covercache.Key{}, nil, false
	}
	if cfg.faultSet {
		if cfg.fault != nil {
			return covercache.Key{}, nil, false
		}
	} else if envFaultInjector() != nil {
		return covercache.Key{}, nil, false
	}
	form := g.canonical()
	return covercache.Key{
		Hash:  form.Hash,
		N:     g.N(),
		Seed:  cfg.seed,
		Procs: cfg.procs,
		Algo:  int8(cfg.algorithm),
	}, form, true
}

// entryFromCover converts a finished cover (in the solved graph's own
// numbering) into a cache entry in canonical numbering. Host-side and
// uncharged, like every output conversion.
func entryFromCover(cov *Cover, form *canon.Form) *covercache.Entry {
	total := 0
	for _, p := range cov.Paths {
		total += len(p)
	}
	verts := make([]int32, 0, total)
	ends := make([]int32, len(cov.Paths))
	for i, p := range cov.Paths {
		for _, v := range p {
			verts = append(verts, form.ToCanon[v])
		}
		ends[i] = int32(len(verts))
	}
	return &covercache.Entry{
		Verts:      verts,
		Ends:       ends,
		NumPaths:   cov.NumPaths,
		Exact:      cov.Exact,
		Backend:    int8(cov.Backend),
		LowerBound: cov.LowerBound,
		Gap:        cov.Gap,
		Procs:      cov.Stats.Procs,
		SimTime:    cov.Stats.Time,
		SimWork:    cov.Stats.Work,
	}
}

// coverFromEntry materialises a fresh Cover in the requester's own
// numbering from a cached canonical entry. The entry stays untouched
// (it is shared); the returned cover is the caller's to keep. Cache
// hits are uncharged: Stats stays zero.
func coverFromEntry(e *covercache.Entry, form *canon.Form) *Cover {
	backing := make([]int, len(e.Verts))
	paths := make([][]int, len(e.Ends))
	start := int32(0)
	for i, end := range e.Ends {
		for j := start; j < end; j++ {
			backing[j] = int(form.FromCanon[e.Verts[j]])
		}
		paths[i] = backing[start:end:end]
		start = end
	}
	return &Cover{
		Paths:      paths,
		NumPaths:   e.NumPaths,
		Exact:      e.Exact,
		Backend:    Backend(e.Backend),
		LowerBound: e.LowerBound,
		Gap:        e.Gap,
		Shard:      -1, // served from cache, no shard occupied
	}
}
