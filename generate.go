package pathcover

import (
	"math"

	"pathcover/internal/cotree"
	"pathcover/internal/workload"
)

// Shape selects the silhouette of a random cograph's cotree.
type Shape = workload.Shape

// Shapes for Random.
const (
	Mixed       = workload.Mixed
	Balanced    = workload.Balanced
	Caterpillar = workload.Caterpillar
)

// The generators panic with a *SizeError for n < 0 or n > MaxVertices
// (their signatures predate the guard); sizes inside that range but past
// the narrow-index bound simply route the solver to the wide kernels.

// Random returns a random cograph with n vertices, deterministic in the
// seed.
func Random(seed uint64, n int, shape Shape) *Graph {
	mustValidN(n)
	return &Graph{t: workload.Random(seed, n, shape)}
}

// Relabelled returns the same graph as g under a rewritten
// presentation: vertex ids permuted and cotree child order shuffled,
// deterministically in the seed (names travel with the vertices, so
// Name is the stable identity across presentations). The result is
// isomorphic to g — equal CanonicalHash, different wire form — which
// makes Relabelled the generator for exercising canonical-identity
// machinery: caches keyed on canonical form treat g and Relabelled(g,
// s) as one graph. Cographs only; raw (FromEdgesAny) graphs have no
// cotree to rewrite and panic.
func Relabelled(g *Graph, seed uint64) *Graph {
	if g.t == nil {
		panic("pathcover: Relabelled requires a cograph")
	}
	return &Graph{t: cotree.Permute(g.t, seed)}
}

// Clique returns the complete graph K_n.
func Clique(n int) *Graph {
	mustValidN(n)
	return &Graph{t: workload.Clique(n)}
}

// Empty returns the edgeless graph on n vertices.
func Empty(n int) *Graph {
	mustValidN(n)
	return &Graph{t: workload.Empty(n)}
}

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) *Graph {
	mustValidN(a)
	mustValidN(b)
	mustValidTotal(int64(a) + int64(b))
	return &Graph{t: workload.CompleteBipartite(a, b)}
}

// CompleteMultipartite returns the complete multipartite graph with the
// given part sizes.
func CompleteMultipartite(sizes ...int) *Graph {
	total := int64(0)
	for _, sz := range sizes {
		mustValidN(sz)
		total += int64(sz)
		mustValidTotal(total)
	}
	return &Graph{t: workload.CompleteMultipartite(sizes...)}
}

// mustValidTotal guards an accumulated vertex count kept in int64 so the
// sum itself cannot wrap past the check on 32-bit hosts; the *SizeError
// payload clamps to what int can hold there.
func mustValidTotal(total int64) {
	if total <= int64(MaxVertices) {
		return
	}
	n := MaxVertices
	if total <= int64(math.MaxInt) {
		n = int(total)
	}
	panic(&SizeError{N: n, Max: MaxVertices})
}

// UnionOfCliques returns k disjoint copies of K_size.
func UnionOfCliques(k, size int) *Graph {
	mustValidN(k)
	mustValidN(size)
	// Overflow-safe product guard: k*size itself can wrap on 32-bit
	// hosts, which is exactly the silent truncation this guard exists to
	// prevent.
	if size > 0 {
		if prod := int64(k) * int64(size); prod > int64(MaxVertices) {
			n := MaxVertices // clamp the payload where int cannot hold the product
			if prod <= int64(math.MaxInt) {
				n = int(prod)
			}
			panic(&SizeError{N: n, Max: MaxVertices})
		}
	}
	return &Graph{t: workload.UnionOfCliques(k, size)}
}

// Star returns the star K_{1,n-1}.
func Star(n int) *Graph {
	mustValidN(n)
	return &Graph{t: workload.Star(n)}
}

// Threshold returns a random threshold graph on n vertices (each vertex
// added isolated or dominating); its cotree is a caterpillar, the
// worst-case shape for naive bottom-up parallelization.
func Threshold(seed uint64, n int) *Graph {
	mustValidN(n)
	return &Graph{t: workload.Threshold(seed, n)}
}

// MustParseCotree is ParseCotree for known-good literals.
func MustParseCotree(src string) *Graph {
	return &Graph{t: cotree.MustParse(src)}
}
