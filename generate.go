package pathcover

import (
	"pathcover/internal/cotree"
	"pathcover/internal/workload"
)

// Shape selects the silhouette of a random cograph's cotree.
type Shape = workload.Shape

// Shapes for Random.
const (
	Mixed       = workload.Mixed
	Balanced    = workload.Balanced
	Caterpillar = workload.Caterpillar
)

// Random returns a random cograph with n vertices, deterministic in the
// seed.
func Random(seed uint64, n int, shape Shape) *Graph {
	return &Graph{t: workload.Random(seed, n, shape)}
}

// Clique returns the complete graph K_n.
func Clique(n int) *Graph { return &Graph{t: workload.Clique(n)} }

// Empty returns the edgeless graph on n vertices.
func Empty(n int) *Graph { return &Graph{t: workload.Empty(n)} }

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) *Graph {
	return &Graph{t: workload.CompleteBipartite(a, b)}
}

// CompleteMultipartite returns the complete multipartite graph with the
// given part sizes.
func CompleteMultipartite(sizes ...int) *Graph {
	return &Graph{t: workload.CompleteMultipartite(sizes...)}
}

// UnionOfCliques returns k disjoint copies of K_size.
func UnionOfCliques(k, size int) *Graph {
	return &Graph{t: workload.UnionOfCliques(k, size)}
}

// Star returns the star K_{1,n-1}.
func Star(n int) *Graph { return &Graph{t: workload.Star(n)} }

// Threshold returns a random threshold graph on n vertices (each vertex
// added isolated or dominating); its cotree is a caterpillar, the
// worst-case shape for naive bottom-up parallelization.
func Threshold(seed uint64, n int) *Graph {
	return &Graph{t: workload.Threshold(seed, n)}
}

// MustParseCotree is ParseCotree for known-good literals.
func MustParseCotree(src string) *Graph {
	return &Graph{t: cotree.MustParse(src)}
}
