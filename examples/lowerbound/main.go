// Lower bound: the OR reduction of the paper's §2 (Theorem 2.2, Fig. 2).
//
// Deciding the OR of n bits needs Ω(log n) time on a CREW PRAM (Cook–
// Dwork–Reischuk), and the gadget below turns any path-cover counter
// into an OR solver — so counting the paths of a minimum path cover of
// a cograph inherits the Ω(log n) bound, making the paper's O(log n)
// algorithm time-optimal. This example runs the whole argument
// end to end.
package main

import (
	"fmt"

	"pathcover/internal/core"
	"pathcover/internal/lowerbound"
	"pathcover/internal/pram"
	"pathcover/internal/render"
)

func main() {
	// The paper's own example input (Fig. 2): 0,0,0,0,0,1,0,1.
	bits := []bool{false, false, false, false, false, true, false, true}
	inst := lowerbound.Build(bits)
	fmt.Println("gadget cotree for bits 00000101:")
	fmt.Print(render.Tree(inst.Tree))

	s := pram.New(pram.ProcsFor(inst.Tree.NumVertices()))
	cov, err := core.ParallelCover(s, inst.Tree, core.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nminimum path cover has %d paths (n=%d bits, k=2 ones: n-k+2 = %d)\n",
		len(cov.Paths), inst.N, inst.ExpectedPaths(2))
	fmt.Print(render.Paths(inst.Tree, cov.Paths))
	or, err := inst.Decode(cov.Paths)
	if err != nil {
		panic(err)
	}
	fmt.Printf("decoded OR = %v (paths < n+2 and y's path has > 2 vertices)\n", or)

	// The matching upper bound: OR itself in exactly ceil(log2 n)
	// supersteps on the step-audited machine.
	for _, n := range []int{16, 256, 4096} {
		big := make([]bool, n)
		big[n/3] = true
		m := pram.NewMachine(n, pram.EREW)
		got := lowerbound.ORTreeCREW(m, big)
		fmt.Printf("\nOR of %4d bits on the checked PRAM: %v in %d supersteps"+
			" (ceil(log2 n)+1); EREW-clean: %v\n",
			n, got, m.StepCount(), m.Ok())
	}
}
