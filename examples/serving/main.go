// Serving: the sharded Pool as a multi-tenant query layer — concurrent
// single covers from many goroutines, a locality-grouped batch, bounded
// admission, and the per-shard accounting.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"pathcover"
)

func main() {
	// Two shards, a short admission queue. Each shard owns a Solver with
	// a pinned worker budget (GOMAXPROCS divided across the shards), so
	// the pool never oversubscribes the host no matter how many
	// goroutines call into it.
	pool := pathcover.NewPool(pathcover.WithShards(2), pathcover.WithQueueDepth(16))
	defer pool.Close()
	ctx := context.Background()

	// A serving catalog: a handful of graphs queried over and over.
	catalog := []*pathcover.Graph{
		pathcover.Random(1, 3000, pathcover.Mixed),
		pathcover.Random(2, 5000, pathcover.Caterpillar),
		pathcover.Random(3, 8000, pathcover.Balanced),
		pathcover.Clique(2048),
	}

	// Concurrent single covers: calls land on the least-loaded shard.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				g := catalog[(w+i)%len(catalog)]
				cov, err := pool.MinimumPathCover(ctx, g)
				if err != nil {
					// Under real load ErrPoolSaturated asks the caller to
					// back off; with depth 16 and 32 requests it won't fire.
					if errors.Is(err, pathcover.ErrPoolSaturated) {
						continue
					}
					log.Fatal(err)
				}
				if err := g.Verify(cov.Paths); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	// A batch: the pool groups same-width/similar-size requests (and
	// repeats of the identical graph) per shard before solving, so each
	// shard's arena sees a homogeneous request stream.
	batch := []*pathcover.Graph{
		catalog[0], catalog[1], catalog[0], catalog[2], catalog[0], catalog[3],
	}
	covers, err := pool.CoverBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	for i, cov := range covers {
		fmt.Printf("batch[%d]: n=%d -> %d path(s), simulated time %d\n",
			i, batch[i].N(), cov.NumPaths, cov.Stats.Time)
	}

	// The pool keeps per-shard serving statistics.
	st := pool.Stats()
	fmt.Printf("\npool: %d calls (%d batched), %d vertices served\n",
		st.Calls, st.Batches, st.Vertices)
	for _, sh := range st.Shards {
		fmt.Printf("  shard %d (%d workers): %d calls, %d vertices, simwork %d\n",
			sh.Shard, sh.Workers, sh.Calls, sh.Vertices, sh.SimWork)
	}
}
