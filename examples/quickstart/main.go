// Quickstart: build a cograph, compute its minimum path cover, and
// check Hamiltonicity.
package main

import (
	"fmt"
	"log"

	"pathcover"
)

func main() {
	// The cograph of the paper's Fig. 10 example: the join of
	// {P3 on a,c,b ... structured as (1 (0 (1 a b) c))} with the
	// edgeless {d,e,f}.
	g, err := pathcover.ParseCotree("(1 (0 (1 a b) c) (0 d e f))")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cograph with %d vertices and %d edges\n", g.N(), g.NumEdges())
	fmt.Print(g.Render())

	// The default algorithm is the paper's O(log n)-time parallel one,
	// running on the PRAM cost simulator with n/log n processors.
	cover, err := g.MinimumPathCover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimum path cover: %d path(s)\n", cover.NumPaths)
	fmt.Print(g.RenderCover(cover.Paths))
	if err := g.Verify(cover.Paths); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: valid and minimum")

	if path, ok := g.HamiltonianPath(); ok {
		fmt.Print("\nhamiltonian path:")
		for _, v := range path {
			fmt.Printf(" %s", g.Name(v))
		}
		fmt.Println()
	}
	if _, ok := g.HamiltonianCycle(); ok {
		fmt.Println("the graph also has a hamiltonian cycle")
	}

	// Graphs can be built programmatically too. K_{3,3}:
	k33 := pathcover.CompleteBipartite(3, 3)
	c, _ := k33.MinimumPathCover(pathcover.WithAlgorithm(pathcover.Sequential))
	fmt.Printf("\nK(3,3): %d path(s): %s", c.NumPaths, k33.RenderCover(c.Paths))
}
