// Scheduling: mapping a series-parallel workflow onto pipeline stages.
//
// The paper's introduction lists "mapping parallel programs to parallel
// architectures" among the applications of path covers. Workflows
// assembled from sequential and parallel composition induce *cograph*
// compatibility structures: two tasks can share a pipeline stage
// when they belong to parallel branches (they are independent), and the
// compatibility graph of a series-parallel task algebra is built by
// exactly the union/join closure that defines cographs.
//
// A set of tasks that can be chained through consecutive stages is a
// path in the compatibility graph, so the minimum number of pipeline
// lanes that covers all tasks is a minimum path cover — NP-complete in
// general, exact and fast here.
package main

import (
	"fmt"
	"log"

	"pathcover"
)

// stage builds the compatibility graph of a parallel block of k tasks:
// all independent, pairwise compatible -> a clique.
func parallelBlock(prefix string, k int) *pathcover.Graph {
	parts := make([]*pathcover.Graph, k)
	for i := range parts {
		parts[i] = pathcover.Vertex(fmt.Sprintf("%s%d", prefix, i))
	}
	return pathcover.Join(parts...)
}

func main() {
	// A workflow: three phases. Tasks inside a phase run in parallel
	// (compatible); tasks of different phases are strictly ordered
	// (incompatible — they cannot share a lane at the same time).
	//
	//	phase A: 4-way fan-out
	//	phase B: 6-way map
	//	phase C: 3-way reduce
	//
	// The compatibility graph is the disjoint union of three cliques.
	workflow := pathcover.Union(
		parallelBlock("extract", 4),
		parallelBlock("map", 6),
		parallelBlock("reduce", 3),
	)
	cover, err := workflow.MinimumPathCover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow of %d tasks needs %d pipeline lanes:\n\n",
		workflow.N(), cover.NumPaths)
	fmt.Print(workflow.RenderCover(cover.Paths))

	// Now allow the reduce tasks to overlap with anything (e.g. they
	// stream): join them in instead.
	streaming := pathcover.Join(
		pathcover.Union(parallelBlock("extract", 4), parallelBlock("map", 6)),
		parallelBlock("reduce", 3),
	)
	cover2, err := streaming.MinimumPathCover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith streaming reducers, %d lane(s) suffice:\n\n", cover2.NumPaths)
	fmt.Print(streaming.RenderCover(cover2.Paths))

	if order, ok := streaming.HamiltonianPath(); ok {
		fmt.Println("\na single lane can execute every task consecutively:")
		for i, v := range order {
			if i > 0 {
				fmt.Print(" -> ")
			}
			fmt.Print(streaming.Name(v))
		}
		fmt.Println()
	}
}
