// Ring protocol: token-ring construction over a compatibility graph.
//
// The paper lists "ring protocols" among the applications: a token ring
// threads every station exactly once and returns to the start — a
// Hamiltonian cycle of the "can-link" graph. Station clusters built by
// union (isolated segments) and join (full crossbars between clusters)
// give cographs, for which the existence test and the construction are
// exact.
package main

import (
	"fmt"
	"log"

	"pathcover"
)

func cluster(prefix string, k int) *pathcover.Graph {
	parts := make([]*pathcover.Graph, k)
	for i := range parts {
		parts[i] = pathcover.Vertex(fmt.Sprintf("%s%d", prefix, i))
	}
	return pathcover.Union(parts...) // stations in one rack do not link directly
}

func main() {
	// Three racks, fully cross-connected: stations of different racks
	// can link, stations of the same rack cannot (they share a switch).
	net := pathcover.Join(cluster("east", 5), cluster("west", 4), cluster("north", 3))
	fmt.Printf("network: %d stations, %d possible links\n", net.N(), net.NumEdges())

	if ring, ok := net.HamiltonianCycle(); ok {
		fmt.Println("token ring found:")
		for i, v := range ring {
			if i > 0 {
				fmt.Print(" -> ")
			}
			fmt.Print(net.Name(v))
		}
		fmt.Printf(" -> %s\n", net.Name(ring[0]))
	} else {
		log.Fatal("no ring exists (unexpected for this topology)")
	}

	// Unbalanced networks may not admit a ring: one oversized rack
	// starves the others. Fall back to the minimum set of open chains —
	// a minimum path cover.
	lopsided := pathcover.Join(cluster("big", 9), cluster("tiny", 3))
	if _, ok := lopsided.HamiltonianCycle(); ok {
		log.Fatal("unexpected ring in lopsided network")
	}
	cover, err := lopsided.MinimumPathCover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlopsided network has no ring; %d open chain(s) cover it:\n\n",
		cover.NumPaths)
	fmt.Print(lopsided.RenderCover(cover.Paths))
}
