// PRAM primitives: the toolbox of the paper's Lemmas 5.1 and 5.2 on the
// cost simulator, and the EREW access auditor at work.
package main

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pathcover/internal/par"
	"pathcover/internal/pram"
	"pathcover/internal/workload"
)

func main() {
	fmt.Println("Lemma 5.1/5.2 primitives with p = n/log n simulated processors.")
	fmt.Println("O(log n) time <=> flat time/log n; O(n) work <=> flat work/n.")
	fmt.Printf("\n%-24s %10s %10s %12s %10s\n", "primitive", "n", "time", "time/log n", "work/n")

	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		rng := rand.New(rand.NewPCG(1, uint64(n)))
		lg := math.Log2(float64(n))
		report := func(name string, s *pram.Sim) {
			fmt.Printf("%-24s %10d %10d %12.1f %10.1f\n",
				name, n, s.Time(), float64(s.Time())/lg, float64(s.Work())/float64(n))
		}

		data := make([]int, n)
		for i := range data {
			data[i] = rng.IntN(10)
		}
		s := pram.New(pram.ProcsFor(n))
		par.ScanInt(s, data)
		report("prefix sums", s)

		next := make([]int, n)
		for i := 0; i < n-1; i++ {
			next[i] = i + 1
		}
		next[n-1] = -1
		s = pram.New(pram.ProcsFor(n))
		par.RankOpt(s, next, 7)
		report("list ranking", s)

		open := make([]bool, n)
		for i := range open {
			open[i] = rng.IntN(2) == 0
		}
		s = pram.New(pram.ProcsFor(n))
		par.MatchBrackets(s, open)
		report("bracket matching", s)

		t := workload.Random(3, n, workload.Mixed)
		setup := pram.NewSerial()
		bin := t.Binarize(setup)
		s = pram.New(pram.ProcsFor(n))
		tour := par.TourBinary(s, bin.BinTree, 5)
		tour.SubtreeCounts(s, bin.BinTree)
		report("euler tour + counts", s)
		fmt.Println()
	}

	// The auditor: the same reduction kernel under three disciplines.
	fmt.Println("EREW auditor: a max-reduction where all processors read cell 0:")
	for _, model := range []pram.Model{pram.EREW, pram.CREW, pram.CRCW} {
		m := pram.NewMachine(8, model)
		a := m.NewIntArray(8)
		m.Step(func(p int) { a.Write(p, p, p*p%13) })
		m.Step(func(p int) { _ = a.Read(p, 0) }) // concurrent read!
		fmt.Printf("  %s: violations=%d\n", model, len(m.Violations()))
	}
	fmt.Println("(EREW flags it, CREW and CRCW accept it — the paper's\n" +
		" algorithm never needs concurrent access, which is what makes it EREW.)")
}
