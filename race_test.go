package pathcover

// Race audit of the shared solver state behind the package-level Graph
// methods. The pre-Pool design recycled Solvers through a sync.Pool
// whose retire path mutated solver-owned state between Put and the next
// Get; the Pool routing replaces that with per-shard exclusive slots.
// This suite hammers every route that touches the shared fleet — run
// under -race in CI — with graphs shared across goroutines (cotree
// reads must be concurrency-safe) and with one-shot, explicit-Solver
// and explicit-Pool traffic interleaved in one process.

import (
	"context"
	"sync"
	"testing"
)

// TestOneShotSharedStateRace: concurrent one-shot callers across all
// algorithms and per-call configurations, including the transient-
// solver route (WithWorkers) and the Hamiltonian wrappers, partly on
// the same *Graph values.
func TestOneShotSharedStateRace(t *testing.T) {
	sharedGraphs := []*Graph{
		Random(1, 600, Mixed),
		Random(2, 900, Caterpillar),
		Random(3, 1200, Balanced),
	}
	wants := make([]int, len(sharedGraphs))
	for i, g := range sharedGraphs {
		wants[i] = g.MinPathCoverSize()
	}
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				gi := (w + i) % len(sharedGraphs)
				g := sharedGraphs[gi]
				var opts []Option
				switch (w + i) % 4 {
				case 1:
					opts = append(opts, WithWorkers(2)) // transient-solver route
				case 2:
					opts = append(opts, WithAlgorithm(Naive))
				case 3:
					opts = append(opts, WithSeed(uint64(w*100+i)))
				}
				cov, err := g.MinimumPathCover(opts...)
				if err != nil {
					t.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
				if cov.NumPaths != wants[gi] {
					t.Errorf("worker %d iter %d: %d paths, want %d", w, i, cov.NumPaths, wants[gi])
					return
				}
				if err := g.Verify(cov.Paths); err != nil {
					t.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
				if i%3 == 0 {
					priv := Random(uint64(w*1000+i), 150+w*17+i, Shape(i%3))
					if _, ok := priv.HamiltonianPath(WithAlgorithm(Parallel)); ok {
						// ok is graph-dependent; the point is the route.
						_ = ok
					}
					priv.HamiltonianCycle(WithAlgorithm(Parallel))
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestMixedFleetRace interleaves one-shot calls, a private Solver and a
// private Pool in one process: three independent solver fleets must
// never share mutable state.
func TestMixedFleetRace(t *testing.T) {
	g := Random(7, 800, Mixed)
	want := g.MinPathCoverSize()
	p := NewPool(WithShards(2))
	defer p.Close()
	var wg sync.WaitGroup
	check := func(who string, cov *Cover, err error) {
		if err != nil {
			t.Errorf("%s: %v", who, err)
			return
		}
		if cov.NumPaths != want {
			t.Errorf("%s: %d paths, want %d", who, cov.NumPaths, want)
			return
		}
		if err := g.Verify(cov.Paths); err != nil {
			t.Errorf("%s: %v", who, err)
		}
	}
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			cov, err := g.MinimumPathCover()
			check("one-shot", cov, err)
		}
	}()
	go func() {
		defer wg.Done()
		sv := NewSolver()
		defer sv.Close()
		for i := 0; i < 12; i++ {
			cov, err := sv.MinimumPathCover(g)
			check("solver", cov, err)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			cov, err := p.MinimumPathCover(context.Background(), g)
			check("pool", cov, err)
		}
	}()
	wg.Wait()
}
