package pathcover_test

import (
	"context"
	"errors"
	"testing"

	"pathcover"
)

var (
	p4Edges = [][2]int{{0, 1}, {1, 2}, {2, 3}}
	c5Edges = [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	// The paper's running example as an edge list: a-c, b-c (the path
	// a-c-b), which recognizes as a cograph.
	pathCographEdges = [][2]int{{0, 2}, {1, 2}}
)

func TestRouteAutoSelection(t *testing.T) {
	// P4: the canonical non-cograph, but a tree — exact via the tree DP.
	tg, err := pathcover.FromEdgesAny(4, p4Edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tg.IsCograph() || !tg.IsForest() {
		t.Fatalf("P4: IsCograph=%v IsForest=%v", tg.IsCograph(), tg.IsForest())
	}
	cov, err := tg.MinimumPathCover()
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Exact || cov.Backend != pathcover.BackendTree {
		t.Fatalf("P4 routed to %v (exact=%v), want exact tree", cov.Backend, cov.Exact)
	}
	if cov.NumPaths != 1 || cov.Gap != 0 || cov.LowerBound != 1 {
		t.Fatalf("P4 cover: paths=%d lb=%d gap=%d", cov.NumPaths, cov.LowerBound, cov.Gap)
	}
	if err := tg.Verify(cov.Paths); err != nil {
		t.Fatal(err)
	}
	if got := tg.MinPathCoverSize(); got != 1 {
		t.Fatalf("P4 MinPathCoverSize = %d, want 1", got)
	}

	// C5: neither cograph nor forest — approximate, flagged inexact even
	// though the greedy happens to find the Hamiltonian path.
	cg, err := pathcover.FromEdgesAny(5, c5Edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	cov, err = cg.MinimumPathCover()
	if err != nil {
		t.Fatal(err)
	}
	if cov.Exact || cov.Backend != pathcover.BackendApprox {
		t.Fatalf("C5 routed to %v (exact=%v), want inexact approx", cov.Backend, cov.Exact)
	}
	if cov.Gap != cov.NumPaths-cov.LowerBound || cov.Gap < 0 {
		t.Fatalf("C5 gap bookkeeping: paths=%d lb=%d gap=%d", cov.NumPaths, cov.LowerBound, cov.Gap)
	}
	if err := cg.Verify(cov.Paths); err != nil {
		t.Fatal(err)
	}
	if got := cg.MinPathCoverSize(); got != -1 {
		t.Fatalf("C5 MinPathCoverSize = %d, want -1 (not computable)", got)
	}

	// A cograph edge list still recognizes and runs the paper's pipeline.
	gg, err := pathcover.FromEdgesAny(3, pathCographEdges, nil)
	if err != nil {
		t.Fatal(err)
	}
	cov, err = gg.MinimumPathCover()
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Exact || cov.Backend != pathcover.BackendCograph {
		t.Fatalf("cograph routed to %v (exact=%v)", cov.Backend, cov.Exact)
	}
	if cov.Stats.Work == 0 {
		t.Fatal("cograph route reported no simulated work — did not run the pipeline")
	}
}

func TestRoutePinnedBackends(t *testing.T) {
	cg, err := pathcover.FromEdgesAny(5, c5Edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cg.MinimumPathCover(pathcover.WithBackend(pathcover.BackendCograph)); !errors.Is(err, pathcover.ErrNotCograph) {
		t.Fatalf("pinned cograph on C5: err = %v, want ErrNotCograph", err)
	}
	if _, err := cg.MinimumPathCover(pathcover.WithBackend(pathcover.BackendTree)); !errors.Is(err, pathcover.ErrNotForest) {
		t.Fatalf("pinned tree on C5: err = %v, want ErrNotForest", err)
	}

	// Pinning tree/approx on a cotree-built cograph materialises its
	// edges; the tree backend must agree with the pipeline on a star.
	star := pathcover.MustParseCotree("(1 c (0 a b d))") // K_{1,3}
	exact, err := star.MinimumPathCover()
	if err != nil {
		t.Fatal(err)
	}
	viaTree, err := star.MinimumPathCover(pathcover.WithBackend(pathcover.BackendTree))
	if err != nil {
		t.Fatal(err)
	}
	if viaTree.Backend != pathcover.BackendTree || !viaTree.Exact {
		t.Fatalf("pinned tree on star: backend=%v exact=%v", viaTree.Backend, viaTree.Exact)
	}
	if viaTree.NumPaths != exact.NumPaths {
		t.Fatalf("tree backend found %d paths, pipeline %d", viaTree.NumPaths, exact.NumPaths)
	}

	viaApprox, err := star.MinimumPathCover(pathcover.WithBackend(pathcover.BackendApprox))
	if err != nil {
		t.Fatal(err)
	}
	if viaApprox.Exact {
		t.Fatal("approx route claimed exactness")
	}
	if viaApprox.NumPaths < exact.NumPaths {
		t.Fatalf("approx beat the optimum: %d < %d", viaApprox.NumPaths, exact.NumPaths)
	}

	// Pinning a clique onto the tree backend must refuse (cycles).
	k3 := pathcover.MustParseCotree("(1 a b c)")
	if _, err := k3.MinimumPathCover(pathcover.WithBackend(pathcover.BackendTree)); !errors.Is(err, pathcover.ErrNotForest) {
		t.Fatalf("pinned tree on K3: err = %v, want ErrNotForest", err)
	}
}

func TestRouteExactOnly(t *testing.T) {
	cg, err := pathcover.FromEdgesAny(5, c5Edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cg.MinimumPathCover(pathcover.WithExactOnly()); !errors.Is(err, pathcover.ErrNotExact) {
		t.Fatalf("exact-only on C5: err = %v, want ErrNotExact", err)
	}
	// Trees still serve under exact-only: the tree route IS exact.
	tg, err := pathcover.FromEdgesAny(4, p4Edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := tg.MinimumPathCover(pathcover.WithExactOnly())
	if err != nil {
		t.Fatalf("exact-only on P4: %v", err)
	}
	if !cov.Exact {
		t.Fatal("exact-only returned an inexact cover")
	}
}

func TestRouteThroughPool(t *testing.T) {
	p := pathcover.NewPool(pathcover.WithShards(2))
	defer p.Close()
	ctx := context.Background()

	cg, err := pathcover.FromEdgesAny(5, c5Edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := pathcover.FromEdgesAny(4, p4Edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	cograph := pathcover.MustParseCotree("(1 (0 a b) c)")

	cov, err := p.MinimumPathCover(ctx, cg)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Exact || cov.Backend != pathcover.BackendApprox {
		t.Fatalf("pool C5: backend=%v exact=%v", cov.Backend, cov.Exact)
	}

	// A mixed batch threads metadata per cover.
	covs, err := p.CoverBatch(ctx, []*pathcover.Graph{cograph, tg, cg, cograph})
	if err != nil {
		t.Fatal(err)
	}
	wantBackend := []pathcover.Backend{
		pathcover.BackendCograph, pathcover.BackendTree,
		pathcover.BackendApprox, pathcover.BackendCograph,
	}
	for i, cov := range covs {
		if cov.Backend != wantBackend[i] {
			t.Fatalf("batch cover %d: backend %v, want %v", i, cov.Backend, wantBackend[i])
		}
		if cov.Exact != (wantBackend[i] != pathcover.BackendApprox) {
			t.Fatalf("batch cover %d: exact=%v under %v", i, cov.Exact, cov.Backend)
		}
	}

	// Hamiltonian stays cograph-only.
	if _, _, err := p.HamiltonianPath(ctx, cg); !errors.Is(err, pathcover.ErrNotCograph) {
		t.Fatalf("pool Hamiltonian on C5: err = %v, want ErrNotCograph", err)
	}
	if path, ok := cg.HamiltonianPath(); ok || path != nil {
		t.Fatalf("Graph.HamiltonianPath on raw graph returned %v, %v", path, ok)
	}
}

func TestRouteCheckpointsKeepCountersIdentical(t *testing.T) {
	// The fault/deadline hook runs on the host outside the PRAM cost
	// model: a solve with an active (benign) injector must report
	// bit-identical simulated counters to a bare solve.
	g := pathcover.Random(42, 4096, pathcover.Mixed)
	bare, err := g.MinimumPathCover(pathcover.WithFaultInjector(nil))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	hooked, err := g.MinimumPathCover(pathcover.WithFaultInjector(func(string) { calls++ }))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 8 {
		t.Fatalf("injector saw %d steps, want 8", calls)
	}
	if bare.Stats != hooked.Stats {
		t.Fatalf("checkpoints perturbed the cost model: %+v vs %+v", bare.Stats, hooked.Stats)
	}
	if bare.NumPaths != hooked.NumPaths {
		t.Fatalf("checkpoints changed the answer: %d vs %d", bare.NumPaths, hooked.NumPaths)
	}
}

func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want pathcover.Backend
	}{
		{"", pathcover.BackendAuto},
		{"auto", pathcover.BackendAuto},
		{"Cograph", pathcover.BackendCograph},
		{"tree", pathcover.BackendTree},
		{" approx ", pathcover.BackendApprox},
	} {
		got, err := pathcover.ParseBackend(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBackend(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in == "" {
			continue
		}
	}
	if _, err := pathcover.ParseBackend("quantum"); err == nil {
		t.Fatal("ParseBackend accepted garbage")
	}
}

func TestIsForestOnCotrees(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"a", true},                         // K1
		{"(0 a b c)", true},                 // edgeless
		{"(1 a b)", true},                   // K2
		{"(1 a b c)", false},                // K3
		{"(1 c (0 a b d))", true},           // star K_{1,3}
		{"(0 (1 a b) (1 c d))", true},       // two disjoint edges
		{"(1 (0 a b) (0 c d))", false},      // C4 = K_{2,2}
		{"(1 (0 a b) c)", true},             // P3
		{"(0 (1 x (0 a b)) (1 y z))", true}, // star + edge
		{"(1 x (0 (1 a b) c))", false},      // x joined to an edge: triangle
	}
	for _, tc := range cases {
		g := pathcover.MustParseCotree(tc.src)
		if got := g.IsForest(); got != tc.want {
			t.Errorf("IsForest(%s) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestFromEdgesAnyKeepsNumbering(t *testing.T) {
	// Raw graphs keep input numbering: vertex 0 of the P5 is the
	// endpoint, so a Hamiltonian-path cover must start or end with it.
	g, err := pathcover.FromEdgesAny(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, []string{"p", "q", "r", "s", "t"})
	if err != nil {
		t.Fatal(err)
	}
	if g.Name(0) != "p" || g.Name(4) != "t" {
		t.Fatalf("names: %q %q", g.Name(0), g.Name(4))
	}
	if !g.Adjacent(0, 1) || g.Adjacent(0, 4) {
		t.Fatal("raw adjacency wrong")
	}
	cov, err := g.MinimumPathCover()
	if err != nil {
		t.Fatal(err)
	}
	if cov.NumPaths != 1 {
		t.Fatalf("P5 cover has %d paths", cov.NumPaths)
	}
	p := cov.Paths[0]
	if !(p[0] == 0 && p[4] == 4) && !(p[0] == 4 && p[4] == 0) {
		t.Fatalf("P5 path %v does not run endpoint to endpoint in input numbering", p)
	}
}
