module pathcover

go 1.24.0
