package pathcover

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestQuickstartShape(t *testing.T) {
	g, err := ParseCotree("(1 (0 a b) c)")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.NumEdges())
	}
	cov, err := g.MinimumPathCover()
	if err != nil {
		t.Fatal(err)
	}
	if cov.NumPaths != 1 {
		t.Fatalf("P3 cover = %d paths", cov.NumPaths)
	}
	if err := g.Verify(cov.Paths); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.RenderCover(cov.Paths), "path 1") {
		t.Error("rendering broken")
	}
}

func TestAlgorithmsAgree(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := Random(seed, 200, Mixed)
		covP, err := g.MinimumPathCover(WithAlgorithm(Parallel), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		covS, err := g.MinimumPathCover(WithAlgorithm(Sequential))
		if err != nil {
			t.Fatal(err)
		}
		covN, err := g.MinimumPathCover(WithAlgorithm(Naive))
		if err != nil {
			t.Fatal(err)
		}
		if covP.NumPaths != covS.NumPaths || covS.NumPaths != covN.NumPaths {
			t.Fatalf("seed %d: paths %d/%d/%d", seed, covP.NumPaths, covS.NumPaths, covN.NumPaths)
		}
		for _, cov := range []*Cover{covP, covS, covN} {
			if err := g.Verify(cov.Paths); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if covP.NumPaths != g.MinPathCoverSize() {
			t.Fatalf("seed %d: count mismatch", seed)
		}
	}
}

func TestBuildersAndAdjacency(t *testing.T) {
	a, b, c := Vertex("a"), Vertex("b"), Vertex("c")
	g := Join(Union(a, b), c)
	if !g.Adjacent(0, 2) || !g.Adjacent(1, 2) || g.Adjacent(0, 1) {
		t.Fatal("join/union adjacency wrong")
	}
	co := Complement(g)
	if co.Adjacent(0, 2) || !co.Adjacent(0, 1) {
		t.Fatal("complement adjacency wrong")
	}
}

func TestFromEdges(t *testing.T) {
	// C4 = 0-1-2-3-0 is a cograph (K_{2,2}).
	g, err := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", g.N(), g.NumEdges())
	}
	if _, ok := g.HamiltonianCycle(); !ok {
		t.Error("C4 should have a Hamiltonian cycle")
	}
	// P4 must be rejected.
	if _, err := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, nil); err == nil {
		t.Error("P4 accepted")
	}
	// Out-of-range edge.
	if _, err := FromEdges(2, [][2]int{{0, 5}}, nil); err == nil {
		t.Error("bad edge accepted")
	}
}

func TestHamiltonians(t *testing.T) {
	k5 := Clique(5)
	if p, ok := k5.HamiltonianPath(); !ok || len(p) != 5 {
		t.Error("K5 Hamiltonian path missing")
	}
	if c, ok := k5.HamiltonianCycle(); !ok || len(c) != 5 {
		t.Error("K5 Hamiltonian cycle missing")
	}
	if _, ok := Empty(4).HamiltonianPath(); ok {
		t.Error("empty graph has no Hamiltonian path")
	}
	if _, ok := Star(5).HamiltonianCycle(); ok {
		t.Error("star has no Hamiltonian cycle")
	}
}

func TestFamilies(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Clique(7), 1},
		{Empty(7), 7},
		{CompleteBipartite(3, 7), 4},
		{CompleteBipartite(5, 5), 1},
		{UnionOfCliques(4, 3), 4},
		{Star(6), 4},
		{CompleteMultipartite(3, 3, 3), 1},
	}
	for i, c := range cases {
		cov, err := c.g.MinimumPathCover()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if cov.NumPaths != c.want {
			t.Errorf("case %d: %d paths want %d", i, cov.NumPaths, c.want)
		}
		if err := c.g.Verify(cov.Paths); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	g := Random(5, 5000, Mixed)
	cov, err := g.MinimumPathCover(WithProcessors(64), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if cov.Stats.Procs != 64 || cov.Stats.Time == 0 || cov.Stats.Work == 0 {
		t.Errorf("stats not populated: %+v", cov.Stats)
	}
}

func TestPublicAPIProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, shapeRaw uint8) bool {
		n := int(nRaw%250) + 1
		g := Random(seed, n, Shape(shapeRaw%3))
		cov, err := g.MinimumPathCover(WithSeed(seed))
		if err != nil {
			return false
		}
		return g.Verify(cov.Paths) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdGraphs(t *testing.T) {
	g := Threshold(11, 300)
	cov, err := g.MinimumPathCover()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(cov.Paths); err != nil {
		t.Fatal(err)
	}
}
