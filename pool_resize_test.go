package pathcover

import (
	"context"
	"sync"
	"testing"

	"pathcover/internal/pram"
)

// TestPoolResizeClamps checks the clamp range and the stats bookkeeping
// around grow/shrink.
func TestPoolResizeClamps(t *testing.T) {
	p := NewPool(WithShards(1), WithMaxShards(4))
	defer p.Close()
	if p.NumShards() != 4 || p.ActiveShards() != 1 {
		t.Fatalf("NumShards=%d ActiveShards=%d, want 4/1", p.NumShards(), p.ActiveShards())
	}
	if err := p.Resize(99); err != nil {
		t.Fatal(err)
	}
	if p.ActiveShards() != 4 {
		t.Fatalf("ActiveShards after Resize(99) = %d, want 4 (clamped)", p.ActiveShards())
	}
	if err := p.Resize(-3); err != nil {
		t.Fatal(err)
	}
	if p.ActiveShards() != 1 {
		t.Fatalf("ActiveShards after Resize(-3) = %d, want 1 (clamped)", p.ActiveShards())
	}
	if err := p.Resize(1); err != nil { // no-op resize
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Resizes != 2 {
		t.Errorf("Resizes = %d, want 2 (no-op resize uncounted)", st.Resizes)
	}
	if st.ActiveShards != 1 {
		t.Errorf("stats ActiveShards = %d, want 1", st.ActiveShards)
	}
	for _, row := range st.Shards {
		if want := row.Shard < 1; row.Active != want {
			t.Errorf("shard %d Active = %v, want %v", row.Shard, row.Active, want)
		}
	}
}

// TestPoolResizeWorkerBudget checks that every live shard's worker
// budget tracks pram.WorkersForShards(active) across resizes, so
// shards×workers never oversubscribes the host.
func TestPoolResizeWorkerBudget(t *testing.T) {
	p := NewPool(WithShards(1), WithMaxShards(3))
	defer p.Close()
	for _, k := range []int{3, 2, 1, 3} {
		if err := p.Resize(k); err != nil {
			t.Fatal(err)
		}
		want := pram.WorkersForShards(k)
		for _, row := range p.Stats().Shards {
			if row.Shard < k && row.Workers != want {
				t.Fatalf("after Resize(%d): shard %d workers = %d, want %d",
					k, row.Shard, row.Workers, want)
			}
		}
	}
}

// TestPoolResizeDispatch checks that inactive shards receive no calls.
func TestPoolResizeDispatch(t *testing.T) {
	p := NewPool(WithShards(2), WithMaxShards(4))
	defer p.Close()
	if err := p.Resize(1); err != nil {
		t.Fatal(err)
	}
	g := Random(7, 64, Balanced)
	for i := 0; i < 8; i++ {
		cov, err := p.MinimumPathCover(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if cov.Shard != 0 {
			t.Fatalf("call landed on shard %d while only shard 0 is live", cov.Shard)
		}
	}
	st := p.Stats()
	for _, row := range st.Shards[1:] {
		if row.Calls != 0 {
			t.Errorf("inactive shard %d served %d calls", row.Shard, row.Calls)
		}
	}
	if st.Shards[0].ArenaBytes <= 0 {
		t.Errorf("shard 0 ArenaBytes = %d, want > 0 after parallel solves", st.Shards[0].ArenaBytes)
	}
	// Batches must also respect the live count after a grow.
	if err := p.Resize(4); err != nil {
		t.Fatal(err)
	}
	gs := make([]*Graph, 16)
	for i := range gs {
		gs[i] = g
	}
	if _, err := p.CoverBatch(context.Background(), gs); err != nil {
		t.Fatal(err)
	}
}

// TestPoolResizeConcurrent drives covers and resizes at the same time;
// meaningful under -race, and asserts the pool stays correct throughout.
func TestPoolResizeConcurrent(t *testing.T) {
	p := NewPool(WithShards(1), WithMaxShards(4), WithQueueDepth(-1))
	defer p.Close()
	g := Random(9, 96, Balanced)
	want, err := p.MinimumPathCover(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				cov, err := p.MinimumPathCover(context.Background(), g)
				if err != nil {
					t.Error(err)
					return
				}
				if cov.NumPaths != want.NumPaths {
					t.Errorf("NumPaths = %d, want %d", cov.NumPaths, want.NumPaths)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := p.Resize(1 + i%4); err != nil {
				t.Errorf("Resize: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := p.Resize(2); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := p.Resize(3); err != ErrPoolClosed {
		t.Fatalf("Resize after Close = %v, want ErrPoolClosed", err)
	}
}
