package pathcover

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathcover/internal/workload"
)

// TestPoolCoverParallelMixed drives a 4-shard pool from 16 goroutines
// with mixed-size graphs (shared across callers); every cover is
// verified and compared against the sequential optimum, and the shard
// accounting must add up.
func TestPoolCoverParallelMixed(t *testing.T) {
	p := NewPool(WithShards(4))
	defer p.Close()
	reqs := workload.Requests(11, 96, 5, 10, 12)
	cat := workload.Catalog(reqs)
	graphs := make(map[workload.Request]*Graph, len(cat))
	want := make(map[workload.Request]int, len(cat))
	for _, r := range cat {
		g := Random(r.Seed, r.N, r.Shape)
		graphs[r] = g
		want[r] = g.MinPathCoverSize()
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	var calls, vertices atomic.Int64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				r := reqs[i]
				g := graphs[r]
				cov, err := p.MinimumPathCover(context.Background(), g)
				if err != nil {
					t.Errorf("req %d: %v", i, err)
					return
				}
				if cov.NumPaths != want[r] {
					t.Errorf("req %d: %d paths, want %d", i, cov.NumPaths, want[r])
					return
				}
				if err := g.Verify(cov.Paths); err != nil {
					t.Errorf("req %d: invalid cover: %v", i, err)
					return
				}
				calls.Add(1)
				vertices.Add(int64(g.N()))
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Calls != calls.Load() {
		t.Errorf("pool stats: %d calls, served %d", st.Calls, calls.Load())
	}
	if st.Vertices != vertices.Load() {
		t.Errorf("pool stats: %d vertices, served %d", st.Vertices, vertices.Load())
	}
	if len(st.Shards) != 4 {
		t.Fatalf("stats report %d shards, want 4", len(st.Shards))
	}
	if st.SimTime <= 0 || st.SimWork <= 0 {
		t.Errorf("no simulated cost accumulated: %+v", st)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight %d after drain", st.InFlight)
	}
}

// TestPoolCoverBatch: results come back in input order, duplicates and
// all, each verified; batch accounting ticks.
func TestPoolCoverBatch(t *testing.T) {
	p := NewPool(WithShards(3))
	defer p.Close()
	var gs []*Graph
	shared := Random(42, 700, Caterpillar)
	for i := 0; i < 30; i++ {
		if i%3 == 0 {
			gs = append(gs, shared) // duplicates must group and still map back
		} else {
			gs = append(gs, Random(uint64(i), 50+i*37, Shape(i%3)))
		}
	}
	covs, err := p.CoverBatch(context.Background(), gs)
	if err != nil {
		t.Fatal(err)
	}
	if len(covs) != len(gs) {
		t.Fatalf("%d covers for %d graphs", len(covs), len(gs))
	}
	for i, cov := range covs {
		if cov == nil {
			t.Fatalf("cover %d missing", i)
		}
		if err := gs[i].Verify(cov.Paths); err != nil {
			t.Fatalf("cover %d: %v", i, err)
		}
		if want := gs[i].MinPathCoverSize(); cov.NumPaths != want {
			t.Fatalf("cover %d: %d paths, want %d", i, cov.NumPaths, want)
		}
	}
	if st := p.Stats(); st.Batches != 1 || st.Calls != int64(len(gs)) {
		t.Errorf("stats: batches=%d calls=%d, want 1 and %d", st.Batches, st.Calls, len(gs))
	}
}

// TestPoolContextCancellation: a call waiting in the queue must abandon
// the wait when its context expires, and an already-cancelled context
// must fail before admission.
func TestPoolContextCancellation(t *testing.T) {
	p := NewPool(WithShards(1))
	defer p.Close()
	g := Random(1, 200, Mixed)

	// Occupy the only shard directly (same-package access to the slot),
	// so the next call genuinely waits mid-queue.
	p.shards[0].slot <- struct{}{}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := p.MinimumPathCover(ctx, g); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued call: err=%v, want deadline exceeded", err)
	}
	<-p.shards[0].slot

	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := p.MinimumPathCover(done, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled call: err=%v, want canceled", err)
	}
	if _, err := p.CoverBatch(done, []*Graph{g}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled batch: err=%v, want canceled", err)
	}
	if st := p.Stats(); st.Canceled < 3 {
		t.Errorf("canceled counter %d, want >= 3", st.Canceled)
	}

	// The pool still serves after all that.
	cov, err := p.MinimumPathCover(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(cov.Paths); err != nil {
		t.Fatal(err)
	}
}

// TestPoolAdmissionControl: with the queue bounded, excess concurrent
// calls fail fast with ErrPoolSaturated instead of piling up.
func TestPoolAdmissionControl(t *testing.T) {
	p := NewPool(WithShards(1), WithQueueDepth(2))
	defer p.Close()
	g := Random(2, 150, Balanced)

	p.shards[0].slot <- struct{}{} // park the shard
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := p.MinimumPathCover(ctx, g)
			errs <- err
		}()
	}
	// Wait until both waiters are admitted and queued on the slot.
	for i := 0; i < 200 && p.Stats().InFlight < 2; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := p.Stats().InFlight; got != 2 {
		t.Fatalf("in-flight %d, want 2", got)
	}
	if _, err := p.MinimumPathCover(context.Background(), g); !errors.Is(err, ErrPoolSaturated) {
		t.Fatalf("third call: err=%v, want ErrPoolSaturated", err)
	}
	if st := p.Stats(); st.Rejected != 1 {
		t.Errorf("rejected counter %d, want 1", st.Rejected)
	}
	cancel() // release the two waiters
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Errorf("waiter error %v, want canceled", err)
		}
	}
	<-p.shards[0].slot
}

// TestPoolBatchSingleAdmission: a batch occupies exactly one admission
// slot however many shard segments it fans out to — a queue depth
// shorter than the shard count must not starve batches on an idle pool.
func TestPoolBatchSingleAdmission(t *testing.T) {
	p := NewPool(WithShards(4), WithQueueDepth(1))
	defer p.Close()
	var gs []*Graph
	for i := 0; i < 12; i++ {
		gs = append(gs, Random(uint64(i), 200+i*83, Shape(i%3)))
	}
	covs, err := p.CoverBatch(context.Background(), gs)
	if err != nil {
		t.Fatalf("batch on depth-1 queue: %v", err)
	}
	for i, cov := range covs {
		if err := gs[i].Verify(cov.Paths); err != nil {
			t.Fatalf("cover %d: %v", i, err)
		}
	}
	// An idle 4-shard pool must spread a 4-segment batch across shards.
	st := p.Stats()
	busy := 0
	for _, sh := range st.Shards {
		if sh.Calls > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("batch segments collapsed onto %d shard(s)", busy)
	}
}

// TestPoolCloseDuringInflightBatch: Close must wait out (or cleanly
// abort) an in-flight batch, never race the shard solvers, and fail all
// subsequent calls with ErrPoolClosed.
func TestPoolCloseDuringInflightBatch(t *testing.T) {
	p := NewPool(WithShards(2))
	var gs []*Graph
	for i := 0; i < 24; i++ {
		gs = append(gs, Random(uint64(i), 3000+i*501, Shape(i%3)))
	}
	type result struct {
		covs []*Cover
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		covs, err := p.CoverBatch(context.Background(), gs)
		resc <- result{covs, err}
	}()
	// Let the batch get going, then yank the pool.
	for i := 0; i < 500 && p.Stats().Calls == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	p.Close()
	p.Close() // idempotent
	res := <-resc
	switch {
	case res.err == nil:
		// The batch beat the close; every cover must be intact.
		for i, cov := range res.covs {
			if err := gs[i].Verify(cov.Paths); err != nil {
				t.Fatalf("cover %d after close race: %v", i, err)
			}
		}
	case errors.Is(res.err, ErrPoolClosed):
		// Aborted mid-batch: the all-or-nothing contract discards results.
		if res.covs != nil {
			t.Fatalf("aborted batch returned partial results")
		}
	default:
		t.Fatalf("batch error %v, want nil or ErrPoolClosed", res.err)
	}
	if _, err := p.MinimumPathCover(context.Background(), gs[0]); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("call after Close: err=%v, want ErrPoolClosed", err)
	}
	if _, err := p.CoverBatch(context.Background(), gs[:2]); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("batch after Close: err=%v, want ErrPoolClosed", err)
	}
	if _, _, err := p.HamiltonianPath(context.Background(), gs[0]); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("hamiltonian after Close: err=%v, want ErrPoolClosed", err)
	}
}

// TestPoolHamiltonian mirrors the Solver Hamiltonian contract through
// the pool, with owned (copied-out) results.
func TestPoolHamiltonian(t *testing.T) {
	p := NewPool(WithShards(2))
	defer p.Close()
	ctx := context.Background()

	c4 := MustParseCotree("(1 (0 a b) (0 c d))")
	path, ok, err := p.HamiltonianPath(ctx, c4)
	if err != nil || !ok || len(path) != 4 {
		t.Fatalf("C4 path: %v ok=%v err=%v", path, ok, err)
	}
	cyc, ok, err := p.HamiltonianCycle(ctx, c4)
	if err != nil || !ok || len(cyc) != 4 {
		t.Fatalf("C4 cycle: %v ok=%v err=%v", cyc, ok, err)
	}
	disc := Union(Vertex("x"), Vertex("y"))
	if _, ok, err := p.HamiltonianPath(ctx, disc); err != nil || ok {
		t.Fatalf("disconnected: ok=%v err=%v, want false,nil", ok, err)
	}
	// The returned slices are owned: a later call must not clobber them.
	before := append([]int(nil), path...)
	if _, _, err := p.HamiltonianPath(ctx, MustParseCotree("(1 a b)")); err != nil {
		t.Fatal(err)
	}
	for i := range path {
		if path[i] != before[i] {
			t.Fatal("earlier Hamiltonian result mutated by a later call")
		}
	}
}

// TestPoolCoverAllocsSteady: a pooled cover in steady state allocates a
// small, n-independent number of objects per call (the clone-out plus a
// fixed overhead), inheriting the Solver's arena discipline.
func TestPoolCoverAllocsSteady(t *testing.T) {
	var per [2]float64
	for i, n := range []int{1 << 12, 1 << 14} {
		p := NewPool(WithShards(1))
		g := Random(9, n, Mixed)
		ctx := context.Background()
		for j := 0; j < 2; j++ { // warm the arena and tour cache
			if _, err := p.MinimumPathCover(ctx, g); err != nil {
				t.Fatal(err)
			}
		}
		per[i] = testing.AllocsPerRun(10, func() {
			if _, err := p.MinimumPathCover(ctx, g); err != nil {
				t.Fatal(err)
			}
		})
		p.Close()
	}
	for i, n := range []int{1 << 12, 1 << 14} {
		if per[i] > 1024 {
			t.Errorf("n=%d: %.0f allocs/op, want <= 1024", n, per[i])
		}
	}
	if per[1] > 2*per[0]+64 {
		t.Errorf("allocs/op grow with n: %.0f at 4096 vs %.0f at 16384", per[0], per[1])
	}
}

// TestPoolDefaults: the zero-option pool derives its shard count and
// per-shard worker budget from the host without oversubscribing.
func TestPoolDefaults(t *testing.T) {
	p := NewPool()
	defer p.Close()
	if p.NumShards() < 1 {
		t.Fatalf("no shards")
	}
	st := p.Stats()
	if st.QueueDepth != 8*p.NumShards() {
		t.Errorf("default queue depth %d, want %d", st.QueueDepth, 8*p.NumShards())
	}
	budget := 0
	for _, sh := range st.Shards {
		budget += sh.Workers
	}
	if p.NumShards() > 1 && budget > 8*p.NumShards() {
		t.Errorf("implausible worker budget %d across %d shards", budget, p.NumShards())
	}
	cov, err := p.MinimumPathCover(context.Background(), Random(1, 512, Mixed))
	if err != nil || cov.NumPaths < 1 {
		t.Fatalf("default pool cover: %+v err=%v", cov, err)
	}
}
