package pathcover

// The benchmark harness regenerates every experiment of EXPERIMENTS.md.
// The paper is a theory paper, so each "table" validates a complexity
// claim: simulated PRAM time/work counters (reported as custom metrics)
// measure the paper's bounds, and wall-clock numbers measure the real
// goroutine execution. Run with:
//
//	go test -bench=. -benchmem
//
// Metric conventions:
//
//	simtime       simulated parallel supersteps per run
//	simtime/logn  supersteps divided by log2 n (flat <=> O(log n))
//	simwork/n     simulated operations per vertex (flat <=> O(n) work)

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"pathcover/internal/baseline"
	"pathcover/internal/core"
	"pathcover/internal/lowerbound"
	"pathcover/internal/par"
	"pathcover/internal/pram"
	"pathcover/internal/workload"
)

func lg2(n int) float64 { return math.Log2(float64(n)) }

// E1 — Theorem 2.2 / Fig. 2: the OR-reduction gadget. Solving the
// gadget with the optimal algorithm answers OR in O(log n) simulated
// time; the matching upper bound for the lower-bound argument.
func BenchmarkE1LowerBoundGadget(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(1, uint64(n)))
			bits := make([]bool, n)
			for i := range bits {
				bits[i] = rng.IntN(1000) == 0
			}
			inst := lowerbound.Build(bits)
			var time, work int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := pram.New(pram.ProcsFor(n))
				cov, err := core.ParallelCover(s, inst.Tree, core.Options{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := inst.Decode(cov.Paths); err != nil {
					b.Fatal(err)
				}
				time += s.Time()
				work += s.Work()
			}
			b.ReportMetric(float64(time)/float64(b.N), "simtime")
			b.ReportMetric(float64(time)/float64(b.N)/lg2(n), "simtime/logn")
			b.ReportMetric(float64(work)/float64(b.N)/float64(n), "simwork/n")
		})
	}
}

// E2 — Lemma 2.3: the sequential algorithm is O(n). ns/op divided by n
// (reported as ns/vertex) must stay flat across the sweep.
func BenchmarkE2Sequential(b *testing.B) {
	for _, shape := range []workload.Shape{workload.Mixed, workload.Caterpillar} {
		for _, n := range []int{1 << 12, 1 << 15, 1 << 18} {
			b.Run(fmt.Sprintf("%s/n=%d", shape, n), func(b *testing.B) {
				t := workload.Random(7, n, shape)
				s := pram.NewSerial()
				bin := t.Binarize(s)
				L := bin.MakeLeftist(s, 1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					paths := baseline.SequentialCover(bin, L)
					if len(paths) == 0 {
						b.Fatal("no paths")
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/vertex")
			})
		}
	}
}

// E3 — Lemma 2.4: p(u) for every node by tree contraction in O(log n)
// time and O(n) work.
func BenchmarkE3PathCount(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 15, 1 << 18} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := workload.Random(3, n, workload.Mixed)
			setup := pram.NewSerial()
			bin := t.Binarize(setup)
			L := bin.MakeLeftist(setup, 1)
			var time, work int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := pram.New(pram.ProcsFor(n))
				tour := par.TourBinary(s, bin.BinTree, uint64(i))
				p := core.ComputeP(s, bin, L, tour)
				if p[bin.Root] < 1 {
					b.Fatal("bad p")
				}
				time += s.Time()
				work += s.Work()
			}
			b.ReportMetric(float64(time)/float64(b.N)/lg2(n), "simtime/logn")
			b.ReportMetric(float64(work)/float64(b.N)/float64(n), "simwork/n")
		})
	}
}

// E4 — Theorem 5.3 (the headline): full minimum path cover reporting in
// O(log n) simulated time and O(n) work with n/log n processors,
// independent of the cotree height (balanced vs caterpillar).
func BenchmarkE4Optimal(b *testing.B) {
	for _, shape := range []workload.Shape{workload.Balanced, workload.Caterpillar} {
		for _, n := range []int{1 << 12, 1 << 15, 1 << 18} {
			b.Run(fmt.Sprintf("%s/n=%d", shape, n), func(b *testing.B) {
				t := workload.Random(11, n, shape)
				var time, work int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s := pram.New(pram.ProcsFor(n))
					cov, err := core.ParallelCover(s, t, core.Options{Seed: uint64(i)})
					if err != nil {
						b.Fatal(err)
					}
					_ = cov
					time += s.Time()
					work += s.Work()
				}
				b.ReportMetric(float64(time)/float64(b.N), "simtime")
				b.ReportMetric(float64(time)/float64(b.N)/lg2(n), "simtime/logn")
				b.ReportMetric(float64(work)/float64(b.N)/float64(n), "simwork/n")
			})
		}
	}
}

// E5 — the naive parallelization of §2: O(height * log n) simulated
// time. On caterpillar cotrees it is slower than E4 by a factor that
// grows linearly in n; on balanced ones it roughly ties.
func BenchmarkE5Naive(b *testing.B) {
	for _, shape := range []workload.Shape{workload.Balanced, workload.Caterpillar} {
		for _, n := range []int{1 << 12, 1 << 15, 1 << 18} {
			b.Run(fmt.Sprintf("%s/n=%d", shape, n), func(b *testing.B) {
				t := workload.Random(11, n, shape)
				setup := pram.NewSerial()
				bin := t.Binarize(setup)
				L := bin.MakeLeftist(setup, 1)
				var time int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s := pram.New(pram.ProcsFor(n))
					baseline.NaiveCover(s, bin, L)
					time += s.Time()
				}
				b.ReportMetric(float64(time)/float64(b.N), "simtime")
				b.ReportMetric(float64(time)/float64(b.N)/lg2(n), "simtime/logn")
			})
		}
	}
}

// E6 — work-optimality in practice: wall-clock speedup of the
// goroutine-backed parallel cover against the O(n) sequential baseline.
func BenchmarkE6Speedup(b *testing.B) {
	n := 1 << 19
	t := workload.Random(13, n, workload.Mixed)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := pram.NewSerial()
			bin := t.Binarize(s)
			L := bin.MakeLeftist(s, 1)
			baseline.SequentialCover(bin, L)
		}
	})
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("parallel/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := pram.New(pram.ProcsFor(n), pram.WithWorkers(workers))
				if _, err := core.ParallelCover(s, t, core.Options{Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E7 — Lemma 5.1 primitives: prefix sums, list ranking (work-optimal vs
// Wyllie ablation), bracket matching.
func BenchmarkE7Primitives(b *testing.B) {
	n := 1 << 18
	data := make([]int, n)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := range data {
		data[i] = rng.IntN(100)
	}
	b.Run("scan", func(b *testing.B) {
		var time, work int64
		for i := 0; i < b.N; i++ {
			s := pram.New(pram.ProcsFor(n))
			par.ScanInt(s, data)
			time += s.Time()
			work += s.Work()
		}
		b.ReportMetric(float64(time)/float64(b.N)/lg2(n), "simtime/logn")
		b.ReportMetric(float64(work)/float64(b.N)/float64(n), "simwork/n")
	})
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[i] = i + 1
	}
	next[n-1] = -1
	b.Run("listrank/workopt", func(b *testing.B) {
		var time, work int64
		for i := 0; i < b.N; i++ {
			s := pram.New(pram.ProcsFor(n))
			par.RankOpt(s, next, uint64(i))
			time += s.Time()
			work += s.Work()
		}
		b.ReportMetric(float64(time)/float64(b.N)/lg2(n), "simtime/logn")
		b.ReportMetric(float64(work)/float64(b.N)/float64(n), "simwork/n")
	})
	b.Run("listrank/wyllie", func(b *testing.B) {
		var time, work int64
		for i := 0; i < b.N; i++ {
			s := pram.New(pram.ProcsFor(n))
			par.Rank(s, next)
			time += s.Time()
			work += s.Work()
		}
		b.ReportMetric(float64(time)/float64(b.N)/lg2(n), "simtime/logn")
		b.ReportMetric(float64(work)/float64(b.N)/float64(n), "simwork/n")
	})
	open := make([]bool, n)
	for i := range open {
		open[i] = rng.IntN(2) == 0
	}
	b.Run("brackets", func(b *testing.B) {
		var time, work int64
		for i := 0; i < b.N; i++ {
			s := pram.New(pram.ProcsFor(n))
			par.MatchBrackets(s, open)
			time += s.Time()
			work += s.Work()
		}
		b.ReportMetric(float64(time)/float64(b.N)/lg2(n), "simtime/logn")
		b.ReportMetric(float64(work)/float64(b.N)/float64(n), "simwork/n")
	})
}

// E8 — Lemma 5.2: Euler tour numberings of a tree.
func BenchmarkE8Euler(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := workload.Random(9, n, workload.Mixed)
			setup := pram.NewSerial()
			bin := t.Binarize(setup)
			var time, work int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := pram.New(pram.ProcsFor(n))
				tour := par.TourBinary(s, bin.BinTree, uint64(i))
				tour.SubtreeCounts(s, bin.BinTree)
				time += s.Time()
				work += s.Work()
			}
			b.ReportMetric(float64(time)/float64(b.N)/lg2(n), "simtime/logn")
			b.ReportMetric(float64(work)/float64(b.N)/float64(n), "simwork/n")
		})
	}
}

// End-to-end wall-clock benchmark of the public API (the README's
// headline numbers). The package-level call copies the result out of a
// pooled solver's arena each time.
func BenchmarkAPICover(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 18, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := Random(3, n, Mixed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.MinimumPathCover(WithSeed(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolverCover is the steady-state serving path: one reusable
// Solver amortising its worker pool and scratch arena across calls, no
// result copy. This is the configuration the PR 1 executor rewrite
// optimises for.
func BenchmarkSolverCover(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 18, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := Random(3, n, Mixed)
			sv := NewSolver()
			defer sv.Close()
			if _, err := sv.MinimumPathCover(g); err != nil {
				b.Fatal(err) // warm the arena
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sv.MinimumPathCover(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServingWidths is the PR 8 memory-wall A/B: one reusable
// Solver serving a serving-size-class graph (n = 3000, inside the
// int16 tier) with the index width forced to each tier in turn. The
// covers and the simulated counters are identical across the sub-
// benchmarks — only the bytes per index element differ — so the ns/op
// and B/op deltas isolate what the narrower kernels buy on the sizes
// the Pool actually serves.
func BenchmarkServingWidths(b *testing.B) {
	const n = 3000
	widths := []struct {
		name string
		w    IndexWidth
	}{{"int16", Width16}, {"int32", Width32}, {"int", Width64}}
	for _, wc := range widths {
		b.Run(fmt.Sprintf("n=%d/width=%s/warm", n, wc.name), func(b *testing.B) {
			g := Random(3, n, Mixed)
			sv := NewSolver(WithIndexWidth(wc.w))
			defer sv.Close()
			if _, err := sv.MinimumPathCover(g); err != nil {
				b.Fatal(err) // warm the arena
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sv.MinimumPathCover(g); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Cold: a fresh Solver per op, so B/op shows the arena bytes the
		// width actually claims (the warm rows amortise them away).
		b.Run(fmt.Sprintf("n=%d/width=%s/cold", n, wc.name), func(b *testing.B) {
			g := Random(3, n, Mixed)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sv := NewSolver(WithIndexWidth(wc.w))
				if _, err := sv.MinimumPathCover(g); err != nil {
					b.Fatal(err)
				}
				sv.Close()
			}
		})
	}
}
