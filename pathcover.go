// Package pathcover finds minimum path covers, Hamiltonian paths and
// Hamiltonian cycles of cographs, implementing the time- and
// work-optimal parallel algorithm of
//
//	K. Nakano, S. Olariu, A. Y. Zomaya,
//	"A Time-Optimal Solution for the Path Cover Problem on Cographs",
//	IPPS 1999 / Theoretical Computer Science 290 (2003) 1541-1556.
//
// A cograph (complement-reducible graph) is built from single vertices
// by disjoint union and join; equivalently it is a graph with no induced
// P4. Cographs are represented here by their cotree, and the path cover
// problem — NP-complete in general — is solved exactly: sequentially in
// O(n) time (Lin–Olariu–Pruesse), and in parallel in O(log n) simulated
// PRAM time with n/log n processors and O(n) work (the paper's
// contribution), with the parallel phases executed on real goroutines.
//
// Basic use:
//
//	g, _ := pathcover.ParseCotree("(1 (0 a b) c)")
//	cover, _ := g.MinimumPathCover()
//	fmt.Println(cover.Paths) // e.g. [[0 2 1]] — one Hamiltonian path
//
// Graphs can also be built programmatically (Vertex, Union, Join,
// Complement), generated (Random and the family constructors), or
// recognized from an adjacency structure (FromEdges), which rejects
// non-cographs.
//
// For query serving, Solver amortises one worker pool and scratch arena
// across sequential calls, and Pool shards many Solvers across the host
// with least-loaded dispatch, batched covers (CoverBatch) and bounded
// admission; cmd/pathcoverd serves the Pool over HTTP.
package pathcover

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"pathcover/internal/backend"
	"pathcover/internal/baseline"
	"pathcover/internal/canon"
	"pathcover/internal/cograph"
	"pathcover/internal/core"
	"pathcover/internal/cotree"
	"pathcover/internal/pram"
	"pathcover/internal/render"
	"pathcover/internal/verify"
)

// MaxVertices is the largest vertex count FromEdges and the generators
// accept. Beyond it the adjacency machinery of recognition could no
// longer index safely (and on 32-bit hosts int itself could not hold
// derived ids). The cover pipeline needs no such guard: past the
// narrow-index bound it falls back to wide kernels automatically instead
// of truncating.
const MaxVertices = math.MaxInt32

// SizeError is the typed error returned (or carried by the panic of a
// generator) when a requested graph size is negative or exceeds
// MaxVertices.
type SizeError struct {
	N   int // the requested vertex count
	Max int // the supported maximum
}

// Error describes the unsupported vertex count.
func (e *SizeError) Error() string {
	if e.N < 0 {
		return fmt.Sprintf("pathcover: negative vertex count %d", e.N)
	}
	return fmt.Sprintf("pathcover: %d vertices exceed the supported maximum %d", e.N, e.Max)
}

// checkN validates a requested vertex count, returning a typed error for
// sizes no representation in this package can hold.
func checkN(n int) error {
	if n < 0 || n > MaxVertices {
		return &SizeError{N: n, Max: MaxVertices}
	}
	return nil
}

// mustValidN is checkN for the generators, whose signatures predate the
// guard; they panic with the *SizeError instead of silently truncating.
func mustValidN(n int) {
	if err := checkN(n); err != nil {
		panic(err)
	}
}

// Graph is a graph to cover. A cograph (the paper's domain) is stored
// as its cotree and served exactly by the parallel pipeline; a graph
// built by FromEdgesAny that is not a cograph is stored as raw
// adjacency and served by the degraded backends (exact tree DP for
// forests, deterministic ½-approximation otherwise) — see Backend.
type Graph struct {
	t      *cotree.Tree
	oracle *cotree.AdjOracle

	// Raw (non-cograph) representation; exactly one of t and raw is
	// non-nil.
	raw   *backend.Graph
	names []string

	// Memoized canonical form (cographs only; see cache.go). Computed
	// at most once per Graph, on first cache or CanonicalHash use.
	canonOnce sync.Once
	canonForm *canon.Form
}

// ParseCotree reads a cograph from the cotree text format:
//
//	tree  := leaf | "(" label tree tree ... ")"
//	label := "0" (union) | "1" (join)
//
// e.g. "(1 (0 a b) c)" is the join of the edgeless graph {a,b} with c
// (the path a-c-b).
func ParseCotree(src string) (*Graph, error) {
	t, err := cotree.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Graph{t: t}, nil
}

// FromEdges builds a cograph from an explicit edge list on vertices
// 0..n-1, recognizing its cotree. It returns an error when the graph is
// not a cograph (it contains an induced P4). names may be nil.
//
// Note: recognition renumbers vertices; use Name to map back (vertex i
// of the result is named after its original index, "v<k>" by default).
func FromEdges(n int, edges [][2]int, names []string) (*Graph, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	g := cograph.NewGraph(n)
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return nil, fmt.Errorf("pathcover: edge (%d,%d) out of range", e[0], e[1])
		}
		g.AddEdge(e[0], e[1])
	}
	t, err := cograph.Recognize(g, names)
	if err != nil {
		return nil, err
	}
	return &Graph{t: t}, nil
}

// Vertex returns the one-vertex cograph.
func Vertex(name string) *Graph {
	return &Graph{t: cotree.Single(name)}
}

// Union returns the disjoint union of the given cographs.
func Union(gs ...*Graph) *Graph {
	return &Graph{t: cotree.Union(trees(gs)...)}
}

// Join returns the join of the given cographs: their union plus every
// edge between distinct parts.
func Join(gs ...*Graph) *Graph {
	return &Graph{t: cotree.Join(trees(gs)...)}
}

// Complement returns the complement cograph.
func Complement(g *Graph) *Graph {
	return &Graph{t: cotree.Complement(g.t)}
}

func trees(gs []*Graph) []*cotree.Tree {
	ts := make([]*cotree.Tree, len(gs))
	for i, g := range gs {
		if g.t == nil {
			panic("pathcover: cotree composition (Union/Join/Complement) requires cographs")
		}
		ts[i] = g.t
	}
	return ts
}

// N returns the number of vertices.
func (g *Graph) N() int {
	if g.t == nil {
		return g.raw.N
	}
	return g.t.NumVertices()
}

// Name returns the display name of a vertex.
func (g *Graph) Name(v int) string {
	if g.t == nil {
		if v >= 0 && v < len(g.names) && g.names[v] != "" {
			return g.names[v]
		}
		return fmt.Sprintf("v%d", v)
	}
	return g.t.Name(v)
}

// Adjacent reports whether two vertices are adjacent (O(log n) after a
// lazily built LCA oracle for cographs, binary search on sorted
// adjacency for raw graphs).
func (g *Graph) Adjacent(x, y int) bool {
	if g.t == nil {
		return g.raw.Adjacent(x, y)
	}
	if g.oracle == nil {
		g.oracle = cotree.NewAdjOracle(g.t)
	}
	return g.oracle.Adjacent(x, y)
}

// NumEdges counts the edges: O(1) for raw graphs, O(n) from the cotree
// (sum over 1-nodes of the products of child leaf counts) for cographs.
func (g *Graph) NumEdges() int {
	if g.t == nil {
		return len(g.raw.Edges)
	}
	t := g.t
	var walk func(u int) int // returns leaf count, accumulates edges
	total := 0
	walk = func(u int) int {
		if t.Label[u] == cotree.LabelLeaf {
			return 1
		}
		sum := 0
		for _, c := range t.Children[u] {
			lc := walk(c)
			if t.Label[u] == cotree.Label1 {
				total += sum * lc
			}
			sum += lc
		}
		return sum
	}
	walk(t.Root)
	return total
}

// String renders the cotree text form for cographs and an edge-list
// summary for raw graphs.
func (g *Graph) String() string {
	if g.t == nil {
		return fmt.Sprintf("graph(n=%d m=%d)", g.raw.N, len(g.raw.Edges))
	}
	return g.t.String()
}

// Render returns an ASCII drawing of the cotree (raw graphs, which have
// no cotree, render as their String form).
func (g *Graph) Render() string {
	if g.t == nil {
		return g.String()
	}
	return render.Tree(g.t)
}

// RenderCover returns an ASCII rendering of a cover's paths with vertex
// names.
func (g *Graph) RenderCover(paths [][]int) string {
	if g.t == nil {
		// Same line format as render.Paths, which needs a cotree.
		var b strings.Builder
		for i, p := range paths {
			fmt.Fprintf(&b, "path %d (%d vertices): ", i+1, len(p))
			for j, v := range p {
				if j > 0 {
					b.WriteString(" — ")
				}
				b.WriteString(g.Name(v))
			}
			b.WriteByte('\n')
		}
		return b.String()
	}
	return render.Paths(g.t, paths)
}

// Verify checks that paths is a valid path cover of g and, when the
// exact size is computable (cographs and forests), that it is minimum.
// For other raw graphs — where minimum path cover is NP-hard and the
// answer came from the approximation backend — only validity (a
// partition of the vertices into adjacency-respecting paths) is
// checked.
func (g *Graph) Verify(paths [][]int) error {
	if g.t == nil {
		if err := backend.VerifyCover(g.raw, paths); err != nil {
			return err
		}
		if want := backend.TreeCoverSize(g.raw); want >= 0 && len(paths) != want {
			return fmt.Errorf("pathcover: %d paths, minimum is %d", len(paths), want)
		}
		return nil
	}
	return verify.MinimumCover(g.t, paths)
}

// MinPathCoverSize returns the number of paths in a minimum path cover
// without constructing it: the Lin et al. recurrence (O(n) sequential)
// for cographs, the greedy tree DP for raw forests. For raw graphs with
// cycles the exact size is NP-hard and -1 is returned; use
// MinimumPathCover's LowerBound/Gap fields instead.
func (g *Graph) MinPathCoverSize() int {
	if g.t == nil {
		return backend.TreeCoverSize(g.raw)
	}
	s := pram.NewSerial()
	b := g.t.Binarize(s)
	L := b.MakeLeftist(s, 1)
	return baseline.PathCounts(b, L)[b.Root]
}

// sharedPool is the process-wide Pool behind the package-level Graph
// methods. Routing one-shot calls through it (instead of the earlier
// sync.Pool of transient Solvers) bounds the process to a fixed,
// host-budgeted solver fleet: concurrent API callers queue onto shards
// rather than spawning an unbounded set of worker pools, and one-shot
// traffic shows up in the same per-shard accounting as explicit Pool
// traffic. It is sized conservatively — a quarter of GOMAXPROCS as
// shards, so each shard keeps most of the host's parallel budget and a
// lone caller's latency stays close to a dedicated Solver's — and its
// admission queue is unbounded, preserving the historical contract that
// Graph methods never fail with a load-shedding error.
var (
	sharedOnce sync.Once
	shared     *Pool
)

func sharedPool() *Pool {
	sharedOnce.Do(func() {
		shards := max(1, runtime.GOMAXPROCS(0)/4)
		shared = NewPool(WithShards(shards), WithQueueDepth(-1))
	})
	return shared
}

// sharedDo runs f with exclusive ownership of a Solver compatible with
// cfg: a shard of the process-wide pool normally, or a transient Solver
// when cfg pins a custom worker count (only the worker count is baked
// into a Solver at construction; all other per-call configuration rides
// in via cfg). f must copy results out before returning — the shard's
// arena serves the next caller immediately after.
func sharedDo(cfg config, n int, f func(sv *Solver) error) error {
	if cfg.workers > 0 {
		sv := NewSolver(WithWorkers(cfg.workers))
		defer sv.Close()
		return f(sv)
	}
	return sharedPool().withShard(context.Background(), n, func(sh *poolShard) error {
		err := f(sh.sv)
		if err == nil {
			sh.record(n, sh.sv.Stats())
		}
		return err
	})
}

// MinimumPathCover computes a minimum path cover. The default runs the
// paper's parallel algorithm on the PRAM cost simulator with the
// paper's processor count n/log n; see Options for the sequential and
// naive-parallel baselines and for tuning.
//
// Each call returns freshly allocated paths. For query-serving loops,
// NewSolver amortises the execution state across calls and avoids the
// copy.
func (g *Graph) MinimumPathCover(opts ...Option) (*Cover, error) {
	cfg := defaultConfig(g.N())
	for _, o := range opts {
		o(&cfg)
	}
	route, rg, err := g.resolveBackend(cfg)
	if err != nil {
		return nil, err
	}
	if route != BackendCograph {
		// Degraded backends run on plain heap memory with no worker pool;
		// no shard reservation needed.
		return degradedCover(rg, route, cfg.checkFn())
	}
	if cfg.algorithm == Sequential {
		if check := cfg.checkFn(); check != nil {
			if err := check("step1"); err != nil {
				return nil, err
			}
		}
		paths := baseline.Run(g.t)
		return exactCograph(&Cover{Paths: paths, NumPaths: len(paths)}), nil
	}
	var cov *Cover
	err = sharedDo(cfg, g.N(), func(sv *Solver) error {
		c, err := sv.coverCfg(g, cfg)
		if err != nil {
			return err
		}
		if c.arena {
			// The parallel pipeline's paths live in the shard's arena; copy
			// before the shard serves the next call.
			c.Paths = clonePaths(c.Paths)
			c.arena = false
		}
		cov = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cov, nil
}

// clonePaths deep-copies arena-backed paths into ordinary heap slices
// (one shared backing array, like the arena layout).
func clonePaths(paths [][]int) [][]int {
	total := 0
	for _, p := range paths {
		total += len(p)
	}
	backing := make([]int, total)
	out := make([][]int, len(paths))
	off := 0
	for i, p := range paths {
		copy(backing[off:], p)
		out[i] = backing[off : off+len(p) : off+len(p)]
		off += len(p)
	}
	return out
}

// fallbackHook, when set, observes internal errors of the parallel
// Hamiltonian constructions before the sequential fallback masks them.
var fallbackHook atomic.Pointer[func(op string, err error)]

// SetFallbackHook registers f to be called with the operation name and
// the internal error whenever a parallel construction fails and a
// Graph method silently falls back to the sequential algorithm. Passing
// nil removes the hook. Regressions in the parallel pipeline stay
// observable this way; Solver methods return the error directly instead.
func SetFallbackHook(f func(op string, err error)) {
	if f == nil {
		fallbackHook.Store(nil)
		return
	}
	fallbackHook.Store(&f)
}

func notifyFallback(op string, err error) {
	if f := fallbackHook.Load(); f != nil {
		(*f)(op, err)
	}
}

// HamiltonianPath returns a Hamiltonian path and true when the cograph
// has one (iff the minimum path cover has a single path). The default is
// the sequential construction; WithAlgorithm(Parallel) routes through
// the paper's parallel pipeline, falling back to the sequential
// construction on an internal error (observable via SetFallbackHook).
//
// Hamiltonian constructions are cograph-only (the decision problem is
// NP-hard in general); on a non-cograph Graph from FromEdgesAny no
// path is reported.
func (g *Graph) HamiltonianPath(opts ...Option) ([]int, bool) {
	if g.t == nil {
		return nil, false
	}
	cfg := defaultConfig(g.N())
	cfg.algorithm = Sequential
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.algorithm == Parallel {
		var p []int
		var ok bool
		err := sharedDo(cfg, g.N(), func(sv *Solver) error {
			q, k, err := sv.hamiltonianPathCfg(g, cfg)
			if err != nil {
				return err
			}
			p = append([]int(nil), q...)
			ok = k
			return nil
		})
		if err == nil {
			return p, ok
		}
		notifyFallback("HamiltonianPath", err)
	}
	s := pram.NewSerial()
	b := g.t.Binarize(s)
	L := b.MakeLeftist(s, 1)
	return baseline.HamiltonianPath(b, L)
}

// HamiltonianCycle returns a Hamiltonian cycle and true when the cograph
// has one (decided by the join condition p(v) <= L(w) at the root). The
// default is the sequential construction; WithAlgorithm(Parallel) uses
// the O(log n) split-and-interleave construction, falling back to the
// sequential construction on an internal error (observable via
// SetFallbackHook). Cograph-only, like HamiltonianPath.
func (g *Graph) HamiltonianCycle(opts ...Option) ([]int, bool) {
	if g.t == nil {
		return nil, false
	}
	cfg := defaultConfig(g.N())
	cfg.algorithm = Sequential
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.algorithm == Parallel {
		var c []int
		var ok bool
		err := sharedDo(cfg, g.N(), func(sv *Solver) error {
			q, k, err := sv.hamiltonianCycleCfg(g, cfg)
			if err != nil {
				return err
			}
			c = append([]int(nil), q...)
			ok = k
			return nil
		})
		if err == nil {
			return c, ok
		}
		notifyFallback("HamiltonianCycle", err)
	}
	s := pram.NewSerial()
	b := g.t.Binarize(s)
	L := b.MakeLeftist(s, 1)
	return baseline.HamiltonianCycle(b, L)
}

// Cover is a path cover. Exact reports whether it is provably minimum:
// true for the cograph and tree routes, false for the approximation
// route, whose size is instead bracketed by LowerBound and Gap.
type Cover struct {
	Paths    [][]int
	NumPaths int
	// Stats holds the simulated PRAM cost when the cover was computed by
	// a simulated algorithm (zero for the plain sequential path and for
	// the degraded backends, which run outside the cost model).
	Stats Stats

	// Exact is true when NumPaths is the minimum (cograph and tree
	// backends); approximate answers carry Exact=false even when their
	// gap happens to be zero, because the route cannot prove it.
	Exact bool
	// Backend is the route that produced the cover.
	Backend Backend
	// LowerBound is a proven lower bound on the minimum number of paths
	// (equal to NumPaths for exact routes).
	LowerBound int
	// Gap is NumPaths - LowerBound: zero for exact routes, and an upper
	// bound on how far an approximate answer can be from optimal.
	Gap int

	// Shard identifies, for covers returned by Pool methods, which pool
	// shard solved the request; -1 means the cover was served from the
	// result cache without occupying a shard. Covers produced outside a
	// Pool leave it zero — interpret it only on Pool results.
	Shard int

	// arena marks paths still backed by a Solver's arena (the parallel
	// cograph route); Pool and the Graph methods clone before handing
	// the cover out.
	arena bool
}

// exactCograph stamps the metadata of a cograph-route cover: exact by
// the paper's algorithm, so the lower bound is the answer itself.
func exactCograph(c *Cover) *Cover {
	c.Exact = true
	c.Backend = BackendCograph
	c.LowerBound = c.NumPaths
	return c
}

// Stats reports simulated PRAM cost: Time is the number of parallel
// supersteps, Work the total operations, for Procs simulated processors.
type Stats struct {
	Procs int
	Time  int64
	Work  int64
}

func statsOf(s *pram.Sim) Stats {
	st := s.Stats()
	return Stats{Procs: st.Procs, Time: st.Time, Work: st.Work}
}

// Algorithm selects the cover computation.
type Algorithm int

const (
	// Parallel is the paper's O(log n)-time, O(n)-work algorithm
	// (default).
	Parallel Algorithm = iota
	// Sequential is the Lin–Olariu–Pruesse O(n) algorithm.
	Sequential
	// Naive is the level-synchronous strawman with emulated
	// O(height * log n) cost accounting.
	Naive
)

type config struct {
	algorithm Algorithm
	procs     int
	workers   int
	seed      uint64
	idxWidth  IndexWidth
	cpuset    []int

	// Routing and robustness (see backend.go).
	backend   Backend
	exactOnly bool
	fault     FaultInjector
	faultSet  bool
	ctx       context.Context
}

func defaultConfig(n int) config {
	return config{algorithm: Parallel, procs: pram.ProcsFor(n), seed: 1}
}

// Option configures MinimumPathCover.
type Option func(*config)

// WithAlgorithm selects the algorithm.
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.algorithm = a } }

// WithProcessors overrides the simulated PRAM processor count (default
// n/log n, the paper's bound).
func WithProcessors(p int) Option { return func(c *config) { c.procs = p } }

// WithWorkers caps the real goroutines executing the parallel phases.
func WithWorkers(w int) Option { return func(c *config) { c.workers = w } }

// WithSeed fixes the randomization seed of the work-optimal list
// ranking (results are deterministic for a fixed seed).
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// IndexWidth selects the element width of the parallel pipeline's
// index arrays; see WithIndexWidth.
type IndexWidth = core.IndexWidth

const (
	// WidthAuto picks the narrowest kernels the input fits: int16 up to
	// core.MaxInt16Vertices, int32 up to core.MaxNarrowVertices, int
	// beyond (the default).
	WidthAuto = core.WidthAuto
	// Width16 forces the int16 kernels; inputs past the int16 bound are
	// rejected with a *WidthError rather than truncated.
	Width16 = core.WidthNarrow16
	// Width32 forces the int32 kernels, with the same reject semantics.
	Width32 = core.WidthNarrow
	// Width64 forces the full-width int kernels (never rejects).
	Width64 = core.WidthWide
)

// MaxInt16Vertices is the largest vertex count the int16 kernel tier —
// Width16, and the first WidthAuto tier — can hold: the 10n bound of
// the dummy-augmented pipeline keeps every intermediate value (Euler
// tour positions, weighted ranks) inside int16 up to exactly this n.
const MaxInt16Vertices = core.MaxInt16Vertices

// WidthError is the typed error returned when a forced narrow index
// width (Width16, Width32) cannot hold the input; it carries the vertex
// count, the width's bound and the width that rejected.
type WidthError = core.WidthError

// WithIndexWidth selects the index-array width of the parallel
// pipeline. The default, WidthAuto, streams the fewest bytes the input
// permits; forcing a width exists for diagnostics and differential
// testing, and a forced narrow width returns a *WidthError when the
// input exceeds its bound. The paths and the simulated cost counters
// are identical across all widths.
func WithIndexWidth(w IndexWidth) Option { return func(c *config) { c.idxWidth = w } }

// WithWideIndices forces the parallel pipeline onto full-width (int)
// index arrays: shorthand for WithIndexWidth(Width64), kept for
// compatibility.
func WithWideIndices() Option { return WithIndexWidth(Width64) }

// RouteWidth reports the kernel width ("int16", "int32" or "int") the
// default WidthAuto dispatch routes an n-vertex request to — the
// serving tier of the request, as surfaced in pcbench routing counts.
func RouteWidth(n int) string { return core.AutoWidth(n).String() }

// withCPUSet pins the Solver's pram workers to the given CPUs (Linux;
// no-op elsewhere). Unexported: reached through Pool's
// WithShardAffinity, which derives a disjoint set per shard.
func withCPUSet(cpus []int) Option { return func(c *config) { c.cpuset = cpus } }
