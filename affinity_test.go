package pathcover

import (
	"context"
	"testing"

	"pathcover/internal/workload"
)

// TestPoolShardAffinity serves a mixed workload on a pinned pool: the
// WithShardAffinity option must not change any answer (pinning is an
// executor property, invisible to the cost model and the covers), and
// a shard rebuilt after a panic keeps its pinning options without
// erroring. On non-Linux platforms the option is a no-op and the test
// still exercises the full path.
func TestPoolShardAffinity(t *testing.T) {
	p := NewPool(WithShards(2), WithShardAffinity())
	defer p.Close()
	for _, r := range workload.Requests(29, 24, 4, 9, 8) {
		g := Random(r.Seed, r.N, r.Shape)
		cov, err := p.MinimumPathCover(context.Background(), g)
		if err != nil {
			t.Fatalf("n=%d: %v", r.N, err)
		}
		if want := g.MinPathCoverSize(); cov.NumPaths != want {
			t.Fatalf("n=%d: %d paths, want %d", r.N, cov.NumPaths, want)
		}
		if err := g.Verify(cov.Paths); err != nil {
			t.Fatalf("n=%d: invalid cover: %v", r.N, err)
		}
	}
}
