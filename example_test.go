package pathcover_test

import (
	"context"
	"fmt"

	"pathcover"
)

func ExampleParseCotree() {
	g, err := pathcover.ParseCotree("(1 (0 a b) c)")
	if err != nil {
		panic(err)
	}
	fmt.Println(g.N(), "vertices,", g.NumEdges(), "edges")
	// Output: 3 vertices, 2 edges
}

func ExampleGraph_MinimumPathCover() {
	g := pathcover.MustParseCotree("(1 (0 a b) c)") // the path a-c-b
	cover, err := g.MinimumPathCover(pathcover.WithAlgorithm(pathcover.Sequential))
	if err != nil {
		panic(err)
	}
	fmt.Println("paths:", cover.NumPaths)
	fmt.Print(g.RenderCover(cover.Paths))
	// Output:
	// paths: 1
	// path 1 (3 vertices): a — c — b
}

func ExampleGraph_HamiltonianCycle() {
	// K_{3,3} is Hamiltonian.
	g := pathcover.CompleteBipartite(3, 3)
	cycle, ok := g.HamiltonianCycle()
	fmt.Println(ok, len(cycle))
	// Output: true 6
}

func ExampleFromEdges() {
	// C4 (a 4-cycle) is the cograph K_{2,2}; P4 is the forbidden graph.
	_, err := pathcover.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, nil)
	fmt.Println("C4:", err)
	_, err = pathcover.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, nil)
	fmt.Println("P4 rejected:", err != nil)
	// Output:
	// C4: <nil>
	// P4 rejected: true
}

func ExampleJoin() {
	// The join of two independent pairs is C4: every cross edge exists.
	ab := pathcover.Union(pathcover.Vertex("a"), pathcover.Vertex("b"))
	cd := pathcover.Union(pathcover.Vertex("c"), pathcover.Vertex("d"))
	g := pathcover.Join(ab, cd)
	fmt.Println(g.String())
	fmt.Println(g.Adjacent(0, 2), g.Adjacent(0, 1))
	// Output:
	// (1 (0 a b) (0 c d))
	// true false
}

func ExampleGraph_MinPathCoverSize() {
	// A star K_{1,5} needs 4 paths: one through the center, 4 leftovers.
	fmt.Println(pathcover.Star(6).MinPathCoverSize())
	// Output: 4
}

func ExampleWithCache() {
	// A cached pool serves repeated graphs — relabelled isomorphic
	// presentations included — from a canonical-identity result cache.
	pool := pathcover.NewPool(pathcover.WithShards(1), pathcover.WithCache(16<<20))
	defer pool.Close()

	a := pathcover.MustParseCotree("(1 (0 a b) c)")
	b := pathcover.MustParseCotree("(1 c (0 b a))") // the same graph, rewritten
	ctx := context.Background()
	if _, err := pool.MinimumPathCover(ctx, a); err != nil {
		panic(err)
	}
	cov, err := pool.MinimumPathCover(ctx, b)
	if err != nil {
		panic(err)
	}
	st := pool.Stats()
	fmt.Println("paths:", cov.NumPaths, "shard:", cov.Shard) // -1 = served by the cache
	fmt.Println("hits:", st.Cache.Hits, "misses:", st.Cache.Misses)
	// Output:
	// paths: 1 shard: -1
	// hits: 1 misses: 1
}

func ExampleWithShardAffinity() {
	// Pin each shard's workers to a disjoint CPU set so working sets
	// stay in their cores' private caches (Linux; a no-op elsewhere and
	// on single-CPU hosts — always safe to request).
	pool := pathcover.NewPool(pathcover.WithShards(2), pathcover.WithShardAffinity())
	defer pool.Close()

	cov, err := pool.MinimumPathCover(context.Background(),
		pathcover.MustParseCotree("(1 (0 a b) c)"))
	if err != nil {
		panic(err)
	}
	fmt.Println("paths:", cov.NumPaths)
	// Output: paths: 1
}

func ExampleWithMaxShards() {
	// Start small and resize live: WithMaxShards pre-allocates the
	// physical ceiling, Resize moves the active count within it. This is
	// the mechanism behind pathcoverd's adaptive controller (-adapt).
	pool := pathcover.NewPool(pathcover.WithShards(1), pathcover.WithMaxShards(4))
	defer pool.Close()

	fmt.Println("active:", pool.ActiveShards(), "of", pool.NumShards())
	if err := pool.Resize(4); err != nil {
		panic(err)
	}
	fmt.Println("active:", pool.ActiveShards(), "resizes:", pool.Stats().Resizes)
	// Output:
	// active: 1 of 4
	// active: 4 resizes: 1
}
