package pathcover_test

import (
	"fmt"

	"pathcover"
)

func ExampleParseCotree() {
	g, err := pathcover.ParseCotree("(1 (0 a b) c)")
	if err != nil {
		panic(err)
	}
	fmt.Println(g.N(), "vertices,", g.NumEdges(), "edges")
	// Output: 3 vertices, 2 edges
}

func ExampleGraph_MinimumPathCover() {
	g := pathcover.MustParseCotree("(1 (0 a b) c)") // the path a-c-b
	cover, err := g.MinimumPathCover(pathcover.WithAlgorithm(pathcover.Sequential))
	if err != nil {
		panic(err)
	}
	fmt.Println("paths:", cover.NumPaths)
	fmt.Print(g.RenderCover(cover.Paths))
	// Output:
	// paths: 1
	// path 1 (3 vertices): a — c — b
}

func ExampleGraph_HamiltonianCycle() {
	// K_{3,3} is Hamiltonian.
	g := pathcover.CompleteBipartite(3, 3)
	cycle, ok := g.HamiltonianCycle()
	fmt.Println(ok, len(cycle))
	// Output: true 6
}

func ExampleFromEdges() {
	// C4 (a 4-cycle) is the cograph K_{2,2}; P4 is the forbidden graph.
	_, err := pathcover.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, nil)
	fmt.Println("C4:", err)
	_, err = pathcover.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, nil)
	fmt.Println("P4 rejected:", err != nil)
	// Output:
	// C4: <nil>
	// P4 rejected: true
}

func ExampleJoin() {
	// The join of two independent pairs is C4: every cross edge exists.
	ab := pathcover.Union(pathcover.Vertex("a"), pathcover.Vertex("b"))
	cd := pathcover.Union(pathcover.Vertex("c"), pathcover.Vertex("d"))
	g := pathcover.Join(ab, cd)
	fmt.Println(g.String())
	fmt.Println(g.Adjacent(0, 2), g.Adjacent(0, 1))
	// Output:
	// (1 (0 a b) (0 c d))
	// true false
}

func ExampleGraph_MinPathCoverSize() {
	// A star K_{1,5} needs 4 paths: one through the center, 4 leftovers.
	fmt.Println(pathcover.Star(6).MinPathCoverSize())
	// Output: 4
}
