package pathcover

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"pathcover/internal/backend"
	"pathcover/internal/cograph"
	"pathcover/internal/cotree"
	"pathcover/internal/lowerbound"
)

// Backend identifies a solve route. The default (BackendAuto) picks the
// strongest applicable route per request: the paper's exact cotree-PRAM
// pipeline for cographs, the exact tree DP for forests, and the
// deterministic ½-approximation for everything else.
type Backend int

const (
	// BackendAuto routes automatically: cograph -> tree -> approx.
	BackendAuto Backend = iota
	// BackendCograph is the paper's exact parallel pipeline (cographs
	// only).
	BackendCograph
	// BackendTree is the exact forest DP (forests only).
	BackendTree
	// BackendApprox is the deterministic ½-approximation greedy for
	// arbitrary graphs; its answers are flagged Exact=false and carry a
	// lower-bound gap.
	BackendApprox
)

// String renders the backend name used on the wire ("cograph",
// "tree", "approx"; "auto" for the unpinned zero value).
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendCograph:
		return "cograph"
	case BackendTree:
		return "tree"
	case BackendApprox:
		return "approx"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend maps the wire names ("auto", "cograph", "tree",
// "approx") onto Backend values.
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return BackendAuto, nil
	case "cograph":
		return BackendCograph, nil
	case "tree":
		return BackendTree, nil
	case "approx":
		return BackendApprox, nil
	}
	return 0, fmt.Errorf("pathcover: unknown backend %q (want auto, cograph, tree or approx)", s)
}

// Routing errors.
var (
	// ErrNotExact is returned under WithExactOnly when only the
	// approximation backend could serve the request.
	ErrNotExact = errors.New("pathcover: no exact backend applies to this graph")
	// ErrNotCograph is returned when a request pins BackendCograph but
	// the graph is not a cograph.
	ErrNotCograph = errors.New("pathcover: graph is not a cograph")
	// ErrNotForest is returned when a request pins BackendTree but the
	// graph has a cycle.
	ErrNotForest = errors.New("pathcover: graph is not a forest")
)

// WithBackend pins the solve route instead of automatic selection. A
// pinned backend that cannot serve the graph fails (ErrNotCograph /
// ErrNotForest) rather than silently rerouting. Pinning BackendTree or
// BackendApprox on a cotree-built Graph materialises its edge set
// first, which costs O(m) time and memory.
func WithBackend(b Backend) Option { return func(c *config) { c.backend = b } }

// WithExactOnly makes the solve fail with ErrNotExact instead of
// falling back to the approximation backend; the exact cograph and tree
// routes still apply. This is the library form of the daemon's strict
// mode.
func WithExactOnly() Option { return func(c *config) { c.exactOnly = true } }

// FaultInjector is a test-only hook called between pipeline steps with
// the step name ("step1".."step8" for the cograph pipeline,
// "step1".."step3" for the tree and approx backends). It may sleep (a
// slow step) or panic (a poisoned solve); panics are recovered by Pool,
// which rebuilds the affected shard.
type FaultInjector func(step string)

// WithFaultInjector installs a fault injector for this call (or this
// Solver / every shard of a Pool when passed at construction). It is a
// testing facility: injecting faults in production serving defeats the
// point of the serving layer. Passing a non-nil injector (or explicitly
// passing nil) also overrides the PATHCOVER_FAULT environment variable
// for the call, so tests can disable ambient faults per request.
func WithFaultInjector(f FaultInjector) Option {
	return func(c *config) {
		c.fault = f
		c.faultSet = true
	}
}

// withContext threads the caller's context into the solve loop; Pool
// methods install their request context so deadlines and cancellation
// are checked between pipeline steps, not just at admission.
func withContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// checkFn builds the between-step hook from the call configuration:
// context first (an expired deadline aborts before any injected fault
// can stall the step), then the fault injector (explicit, or from
// PATHCOVER_FAULT when no explicit choice was made). Returns nil when
// neither applies, keeping the default path hook-free.
func (c *config) checkFn() func(step string) error {
	inj := c.fault
	if !c.faultSet {
		inj = envFaultInjector()
	}
	ctx := c.ctx
	if inj == nil && ctx == nil {
		return nil
	}
	return func(step string) error {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if inj != nil {
			inj(step)
		}
		return nil
	}
}

// faultSpec is one parsed PATHCOVER_FAULT entry.
type faultSpec struct {
	panics bool
	sleep  time.Duration
}

// envFaultCache memoises the parse of the current PATHCOVER_FAULT
// value (tests flip the variable between cases, so the value is
// re-read on every solve but parsed once per distinct spec).
var envFaultCache struct {
	sync.Mutex
	spec string
	inj  FaultInjector
}

// envFaultInjector returns the injector described by the test-only
// PATHCOVER_FAULT environment variable, nil when unset. The format is a
// comma-separated list of fault:step entries:
//
//	PATHCOVER_FAULT=panic:step6            panic entering step 6
//	PATHCOVER_FAULT=slow:step3             sleep 150ms entering step 3
//	PATHCOVER_FAULT=slow:step2:50ms        custom stall duration
//	PATHCOVER_FAULT=panic:step5,slow:step2 multiple faults
//
// Malformed specs panic: the variable exists only to break things
// deliberately in tests and CI, so a typo must be loud, not ignored.
func envFaultInjector() FaultInjector {
	spec := os.Getenv("PATHCOVER_FAULT")
	if spec == "" {
		return nil
	}
	envFaultCache.Lock()
	defer envFaultCache.Unlock()
	if envFaultCache.spec == spec {
		return envFaultCache.inj
	}
	inj := parseFaultSpec(spec)
	envFaultCache.spec, envFaultCache.inj = spec, inj
	return inj
}

// parseFaultSpec compiles a PATHCOVER_FAULT value into an injector.
func parseFaultSpec(spec string) FaultInjector {
	faults := make(map[string]faultSpec)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 {
			panic(fmt.Sprintf("pathcover: malformed PATHCOVER_FAULT entry %q (want kind:stepN)", entry))
		}
		kind, step := parts[0], parts[1]
		f := faults[step]
		switch kind {
		case "panic":
			f.panics = true
		case "slow":
			f.sleep = 150 * time.Millisecond
			if len(parts) >= 3 {
				d, err := time.ParseDuration(parts[2])
				if err != nil {
					panic(fmt.Sprintf("pathcover: bad PATHCOVER_FAULT duration in %q: %v", entry, err))
				}
				f.sleep = d
			}
		default:
			panic(fmt.Sprintf("pathcover: unknown PATHCOVER_FAULT kind %q (want panic or slow)", kind))
		}
		faults[step] = f
	}
	return func(step string) {
		f, ok := faults[step]
		if !ok {
			return
		}
		if f.sleep > 0 {
			time.Sleep(f.sleep)
		}
		if f.panics {
			panic(fmt.Sprintf("pathcover: injected fault at %s", step))
		}
	}
}

// FromEdgesAny builds a graph from an explicit edge list on vertices
// 0..n-1, accepting any simple graph: cographs get their cotree
// recognized (identical to FromEdges), everything else is kept as raw
// adjacency and served by the degraded backends — exactly for forests,
// approximately (with a reported lower-bound gap) otherwise. Unlike
// FromEdges, vertices of a non-cograph result keep their input
// numbering.
func FromEdgesAny(n int, edges [][2]int, names []string) (*Graph, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	cg := cograph.NewGraph(n)
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return nil, fmt.Errorf("pathcover: edge (%d,%d) out of range", e[0], e[1])
		}
		cg.AddEdge(e[0], e[1])
	}
	if t, err := cograph.Recognize(cg, names); err == nil {
		return &Graph{t: t}, nil
	}
	return &Graph{raw: backend.New(n, edges), names: names}, nil
}

// IsCograph reports whether the graph is a cograph (and therefore
// serves through the paper's exact pipeline).
func (g *Graph) IsCograph() bool { return g.t != nil }

// HasEdgeList reports whether the graph carries an explicit edge-list
// representation (it was built by FromEdges or FromEdgesAny rather than
// from a cotree). Explicit graphs can switch to the edge-walking
// backends (BackendTree, BackendApprox) at zero conversion cost;
// cotree-built graphs must first materialise O(m) edges — which is why
// load-shedding layers degrade only explicit graphs (see
// internal/daemon) and rawGraph caps the materialisation it will do.
func (g *Graph) HasEdgeList() bool { return g.raw != nil }

// IsForest reports whether the graph is acyclic. Non-cograph forests
// route to the exact tree backend; cograph forests (unions of stars)
// still route through the cograph pipeline.
func (g *Graph) IsForest() bool {
	if g.t == nil {
		return g.raw.IsForest()
	}
	return cotreeIsForest(g.t)
}

// cotreeIsForest decides acyclicity on the cotree: a cograph is a
// forest iff every 1-node joins exactly two parts, one a single vertex
// and the other edgeless (three mutually-joined parts or two parts of
// two or more vertices each create a triangle or C4, and an edge inside
// a joined part creates a triangle with the other side).
func cotreeIsForest(t *cotree.Tree) bool {
	var walk func(u int) (edgeless bool, forest bool)
	walk = func(u int) (bool, bool) {
		if t.Label[u] == cotree.LabelLeaf {
			return true, true
		}
		if t.Label[u] == cotree.Label0 {
			edgeless, forest := true, true
			for _, c := range t.Children[u] {
				e, f := walk(c)
				edgeless = edgeless && e
				forest = forest && f
			}
			return edgeless, forest
		}
		// 1-node: a join is a forest only as center + edgeless leaves.
		if len(t.Children[u]) != 2 {
			return false, false
		}
		a, b := t.Children[u][0], t.Children[u][1]
		aLeaf := t.Label[a] == cotree.LabelLeaf
		bLeaf := t.Label[b] == cotree.LabelLeaf
		switch {
		case aLeaf && bLeaf:
			return false, true // a single edge
		case aLeaf:
			e, _ := walk(b)
			return false, e
		case bLeaf:
			e, _ := walk(a)
			return false, e
		default:
			return false, false
		}
	}
	_, forest := walk(t.Root)
	return forest
}

// maxMaterializeEdges caps the edge-set materialization a pinned
// BackendTree/BackendApprox request may trigger on a cotree-built
// graph; denser graphs (which only the cograph pipeline can hold
// implicitly) fail fast instead of allocating O(m) memory.
const maxMaterializeEdges = 1 << 26

// rawGraph returns the adjacency-list form of the graph, materialising
// it from the cotree when the graph was built as one. Materialisation
// is O(m) and intended for explicit backend overrides, not the serving
// hot path.
func (g *Graph) rawGraph() (*backend.Graph, error) {
	if g.raw != nil {
		return g.raw, nil
	}
	if m := g.NumEdges(); m > maxMaterializeEdges {
		return nil, fmt.Errorf("pathcover: refusing to materialise %d edges for a backend override (max %d)",
			m, maxMaterializeEdges)
	}
	return backend.New(g.N(), cotreeEdges(g.t)), nil
}

// cotreeEdges materialises a cotree's edge set: at every 1-node, all
// pairs across its children's leaf sets. O(n + m).
func cotreeEdges(t *cotree.Tree) [][2]int {
	var edges [][2]int
	var walk func(u int) []int
	walk = func(u int) []int {
		if t.Label[u] == cotree.LabelLeaf {
			return []int{t.VertexOf[u]}
		}
		var all []int
		for _, c := range t.Children[u] {
			leaves := walk(c)
			if t.Label[u] == cotree.Label1 {
				for _, a := range all {
					for _, b := range leaves {
						edges = append(edges, [2]int{a, b})
					}
				}
			}
			all = append(all, leaves...)
		}
		return all
	}
	walk(t.Root)
	return edges
}

// resolveBackend picks the route for one call: the pinned backend when
// the request set one (failing if it cannot serve the graph), the
// strongest applicable route otherwise. The returned *backend.Graph is
// non-nil exactly for the tree and approx routes.
func (g *Graph) resolveBackend(cfg config) (Backend, *backend.Graph, error) {
	switch cfg.backend {
	case BackendAuto:
		if g.t != nil {
			return BackendCograph, nil, nil
		}
		if g.raw.IsForest() {
			return BackendTree, g.raw, nil
		}
		if cfg.exactOnly {
			return 0, nil, ErrNotExact
		}
		return BackendApprox, g.raw, nil
	case BackendCograph:
		if g.t == nil {
			return 0, nil, ErrNotCograph
		}
		return BackendCograph, nil, nil
	case BackendTree:
		rg, err := g.rawGraph()
		if err != nil {
			return 0, nil, err
		}
		if !rg.IsForest() {
			return 0, nil, ErrNotForest
		}
		return BackendTree, rg, nil
	case BackendApprox:
		if cfg.exactOnly {
			return 0, nil, ErrNotExact
		}
		rg, err := g.rawGraph()
		if err != nil {
			return 0, nil, err
		}
		return BackendApprox, rg, nil
	}
	return 0, nil, fmt.Errorf("pathcover: unknown backend %v", cfg.backend)
}

// degradedCover serves the tree and approx routes (no PRAM simulation;
// zero simulated cost).
func degradedCover(rg *backend.Graph, route Backend, check func(string) error) (*Cover, error) {
	switch route {
	case BackendTree:
		res, err := backend.TreeCover(rg, check)
		if err != nil {
			return nil, err
		}
		return &Cover{
			Paths: res.Paths, NumPaths: res.NumPaths,
			Exact: true, Backend: BackendTree,
			LowerBound: res.NumPaths,
		}, nil
	case BackendApprox:
		res, err := backend.ApproxCover(rg, check)
		if err != nil {
			return nil, err
		}
		lb := lowerbound.PathCoverSize(rg.N, rg.Edges)
		return &Cover{
			Paths: res.Paths, NumPaths: res.NumPaths,
			Exact: false, Backend: BackendApprox,
			LowerBound: lb, Gap: res.NumPaths - lb,
		}, nil
	}
	return nil, fmt.Errorf("pathcover: degradedCover called with %v", route)
}
