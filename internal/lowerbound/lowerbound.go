// Package lowerbound implements §2 of the paper: the reduction from the
// OR-of-n-bits problem to minimum path cover counting on cographs
// (Theorem 2.2, Fig. 2), which transfers the Ω(log n) CREW time lower
// bound of Cook, Dwork and Reischuk, plus the matching O(log n) CREW
// upper bound for OR itself.
//
// The reduction: the cotree has a 0-labelled root R and one 1-labelled
// child u. Leaf a_i hangs from u when b_i = 1 and from R otherwise;
// auxiliary leaves x (under R) and y, z (under u) keep every internal
// node at arity >= 2. If the input has k ones, the graph is the disjoint
// union of n-k isolated vertices, the isolated x, and the clique
// K_{k+2} on {ones, y, z}; a minimum path cover therefore has n-k+2
// paths and the path through y has k+2 vertices. Hence
//
//	OR(b) = 1  <=>  #paths < n+2  <=>  |path containing y| > 2.
package lowerbound

import (
	"fmt"

	"pathcover/internal/cotree"
	"pathcover/internal/pram"
)

// Instance is the Fig. 2 gadget for a bit string.
type Instance struct {
	Tree *cotree.Tree
	N    int // number of input bits
	// Vertex ids in the gadget's cotree:
	Bits []int // vertex of a_i
	X    int   // auxiliary leaf under the root
	Y, Z int   // auxiliary leaves under the 1-node
}

// Build constructs the gadget cotree for the given bits. The
// construction is O(n) size and O(1) cotree depth, mirroring the paper's
// observation that n CREW processors build it in constant time.
func Build(bits []bool) *Instance {
	n := len(bits)
	inst := &Instance{N: n, Bits: make([]int, n)}
	// Children of the 1-node: the one-bits, then y, z.
	var oneParts []*cotree.Tree
	var zeroParts []*cotree.Tree
	names := map[string]int{}
	for i, b := range bits {
		leaf := cotree.Single(fmt.Sprintf("a%d", i))
		if b {
			oneParts = append(oneParts, leaf)
		} else {
			zeroParts = append(zeroParts, leaf)
		}
	}
	oneParts = append(oneParts, cotree.Single("y"), cotree.Single("z"))
	u := cotree.Join(oneParts...)
	zeroParts = append(zeroParts, cotree.Single("x"), u)
	inst.Tree = cotree.Union(zeroParts...)
	for v := 0; v < inst.Tree.NumVertices(); v++ {
		names[inst.Tree.Name(v)] = v
	}
	for i := range bits {
		inst.Bits[i] = names[fmt.Sprintf("a%d", i)]
	}
	inst.X, inst.Y, inst.Z = names["x"], names["y"], names["z"]
	return inst
}

// ExpectedPaths returns the number of paths a minimum cover must have
// for an input with k ones: n - k + 2.
func (inst *Instance) ExpectedPaths(k int) int { return inst.N - k + 2 }

// Decode answers the OR problem from a minimum path cover of the gadget
// (either characterization works; both are checked for consistency).
func (inst *Instance) Decode(paths [][]int) (bool, error) {
	byCount := len(paths) < inst.N+2
	byYPath := false
	found := false
	for _, p := range paths {
		for _, v := range p {
			if v == inst.Y {
				byYPath = len(p) > 2
				found = true
			}
		}
	}
	if !found {
		return false, fmt.Errorf("lowerbound: no path contains y")
	}
	if byCount != byYPath {
		return false, fmt.Errorf("lowerbound: characterizations disagree (count: %v, y-path: %v)",
			byCount, byYPath)
	}
	return byCount, nil
}

// PathCoverSize returns a combinatorial lower bound on the number of
// paths in any path cover of a simple graph on n vertices with the
// given edges (self-loops and duplicates tolerated). It is the bound
// the approximation backend reports its gap against.
//
// Two certificates are combined per connected component:
//
//   - a path cover's edges form a linear forest, in which every vertex
//     has degree at most 2, so it uses at most floor(Σ min(deg v, 2)/2)
//     edges; a component on n_c vertices therefore needs at least
//     n_c - floor(Σ_{v in c} min(deg v, 2)/2) paths;
//   - every component needs at least one path.
//
// The total is the sum of per-component maxima of the two, which is at
// least the number of components and at least n - m overall.
func PathCoverSize(n int, edges [][2]int) int {
	if n == 0 {
		return 0
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	deg := make([]int, n)
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v || u < 0 || v < 0 || u >= n || v >= n {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		deg[u]++
		deg[v]++
		ru, rv := find(u), find(v)
		if ru != rv {
			parent[ru] = rv
		}
	}
	// Per-component vertex and capped-degree sums.
	size := make(map[int]int)
	capped := make(map[int]int)
	for v := 0; v < n; v++ {
		r := find(v)
		size[r]++
		d := deg[v]
		if d > 2 {
			d = 2
		}
		capped[r] += d
	}
	total := 0
	for r, nc := range size {
		lb := nc - capped[r]/2
		if lb < 1 {
			lb = 1
		}
		total += lb
	}
	return total
}

// ORTreeCREW computes the OR of n bits on the checked PRAM machine by a
// binary reduction tree: ceil(log2 n) supersteps with n/2 processors —
// the matching upper bound for Lemma 2.1 (it is even exclusive-read, so
// it passes the EREW auditor too).
func ORTreeCREW(m *pram.Machine, bits []bool) bool {
	n := len(bits)
	if n == 0 {
		return false
	}
	a := m.NewIntArray(n)
	m.Step(func(p int) {
		if p < n && bits[p] {
			a.Write(p, p, 1)
		}
	})
	for stride := 1; stride < n; stride *= 2 {
		st := stride
		m.Step(func(p int) {
			i := p * 2 * st
			if i+st < n {
				v := a.Read(p, i) | a.Read(p, i+st)
				a.Write(p, i, v)
			}
		})
	}
	return a.Snapshot()[0] != 0
}
