package lowerbound

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pathcover/internal/baseline"
	"pathcover/internal/core"
	"pathcover/internal/pram"
	"pathcover/internal/verify"
)

func TestBuildShape(t *testing.T) {
	// The Fig. 2 example: bits 0,0,0,0,0,1,0,1.
	bits := []bool{false, false, false, false, false, true, false, true}
	inst := Build(bits)
	if err := inst.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.Tree.NumVertices() != 8+3 {
		t.Fatalf("gadget has %d vertices, want 11", inst.Tree.NumVertices())
	}
	// k=2 ones: the cover has n-k+2 = 8 paths and y's path has k+2 = 4
	// vertices.
	paths := baseline.Run(inst.Tree)
	if len(paths) != inst.ExpectedPaths(2) {
		t.Fatalf("%d paths, want %d", len(paths), inst.ExpectedPaths(2))
	}
	for _, p := range paths {
		for _, v := range p {
			if v == inst.Y && len(p) != 4 {
				t.Fatalf("y's path has %d vertices, want 4: %v", len(p), p)
			}
		}
	}
	or, err := inst.Decode(paths)
	if err != nil || !or {
		t.Fatalf("Decode = %v, %v; want true", or, err)
	}
}

func TestAllZeros(t *testing.T) {
	bits := make([]bool, 6)
	inst := Build(bits)
	paths := baseline.Run(inst.Tree)
	if len(paths) != 6+2 {
		t.Fatalf("%d paths, want 8", len(paths))
	}
	or, err := inst.Decode(paths)
	if err != nil || or {
		t.Fatalf("Decode = %v, %v; want false", or, err)
	}
}

// Property (Theorem 2.2 correspondence): for random bit strings, the OR
// decoded from a minimum path cover — computed by the *parallel*
// algorithm — equals the actual OR, via both characterizations.
func TestORReductionProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, density uint8) bool {
		n := int(nRaw%40) + 1
		rng := rand.New(rand.NewPCG(seed, 13))
		bits := make([]bool, n)
		want := false
		for i := range bits {
			bits[i] = rng.IntN(10) < int(density%11)
			want = want || bits[i]
		}
		inst := Build(bits)
		s := pram.New(4, pram.WithGrain(16))
		cov, err := core.ParallelCover(s, inst.Tree, core.Options{Seed: seed})
		if err != nil {
			return false
		}
		if verify.MinimumCover(inst.Tree, cov.Paths) != nil {
			return false
		}
		got, err := inst.Decode(cov.Paths)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestORTreeCREWStepsAndResult(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 100, 1024} {
		for _, hot := range []int{-1, 0, n / 2, n - 1} {
			bits := make([]bool, n)
			want := false
			if hot >= 0 && hot < n {
				bits[hot] = true
				want = true
			}
			m := pram.NewMachine(n, pram.EREW)
			got := ORTreeCREW(m, bits)
			if got != want {
				t.Fatalf("n=%d hot=%d: OR=%v want %v", n, hot, got, want)
			}
			if !m.Ok() {
				t.Fatalf("n=%d: reduction tree violated EREW: %v", n, m.Violations())
			}
			// ceil(log2 n) + 1 (init) steps.
			lg := 0
			for v := 1; v < n; v <<= 1 {
				lg++
			}
			if m.StepCount() != lg+1 {
				t.Fatalf("n=%d: %d supersteps, want %d", n, m.StepCount(), lg+1)
			}
		}
	}
}
