package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// NodeState is a member's health state. State transitions are driven
// by both the active prober (periodic /healthz) and passive outcomes
// of live requests; both funnel through Gateway.noteOK / noteFail
// under the membership lock.
type NodeState int32

const (
	// Healthy members are on the ring and serve their keys.
	Healthy NodeState = iota
	// Probation members are back on the ring after ejection but not yet
	// trusted: one failure re-ejects immediately (no failure-threshold
	// grace), further successes graduate them to Healthy.
	Probation
	// Ejected members are off the ring; no live traffic routes to them
	// first-choice, but the prober keeps probing and consecutive probe
	// successes readmit them on probation.
	Ejected
)

// String renders the membership state as reported by /stats.
func (s NodeState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Probation:
		return "probation"
	default:
		return "ejected"
	}
}

// member is one backend node and its health bookkeeping. The health
// fields (state, consecutive counters) are guarded by the Gateway's
// membership lock; the per-node serving counters are atomics read
// lock-free by /stats.
type member struct {
	name string // ring identity and id-prefix: "n0", "n1", ...
	url  string // base URL, no trailing slash

	state        NodeState
	consecFails  int
	consecOKs    int
	ejections    int64
	readmissions int64

	routed  atomic.Int64 // requests this node ultimately answered
	retried atomic.Int64 // retry attempts directed at this node
	hedged  atomic.Int64 // hedge attempts directed at this node
}

// noteFail records a health failure of m (transport error, 502/504, or
// a failed probe) and ejects it after the configured run of
// consecutive failures. Probation members re-eject on the first
// failure. Returns true when this call ejected the node.
func (g *Gateway) noteFail(m *member) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	m.consecOKs = 0
	m.consecFails++
	if m.state == Ejected {
		return false
	}
	if m.state == Probation || m.consecFails >= g.opts.FailThreshold {
		m.state = Ejected
		m.ejections++
		g.stats.ejections.Add(1)
		g.ring.Remove(m.name)
		return true
	}
	return false
}

// noteOK records a health success of m (any HTTP answer from the node,
// or a passing probe). Ejected members need the configured run of
// consecutive successes to re-enter — on probation, not directly
// healthy; probation members graduate to Healthy after a further run.
func (g *Gateway) noteOK(m *member) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m.consecFails = 0
	m.consecOKs++
	switch m.state {
	case Ejected:
		if m.consecOKs >= g.opts.ProbationOKs {
			m.state = Probation
			m.consecOKs = 0
			m.readmissions++
			g.stats.readmissions.Add(1)
			g.ring.Add(m.name)
		}
	case Probation:
		if m.consecOKs >= g.opts.HealthyOKs {
			m.state = Healthy
		}
	}
}

// probeLoop drives active health: every ProbeInterval each member —
// ejected ones included, they have no other way back — gets a
// GET /healthz with its own timeout, and the outcome feeds the same
// state machine as live request outcomes.
func (g *Gateway) probeLoop() {
	t := time.NewTicker(g.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.done:
			return
		case <-t.C:
			for _, m := range g.nodes {
				go g.probe(m)
			}
		}
	}
}

func (g *Gateway) probe(m *member) {
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/healthz", nil)
	if err != nil {
		g.noteFail(m)
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.noteFail(m)
		return
	}
	defer resp.Body.Close()
	var body struct {
		OK bool `json:"ok"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&body) != nil || !body.OK {
		g.noteFail(m)
		return
	}
	g.noteOK(m)
}
