package cluster

import (
	"encoding/binary"
	"math/bits"
)

// XXH64 primes.
const (
	prime1 uint64 = 0x9e3779b185ebca87
	prime2 uint64 = 0xc2b2ae3d27d4eb4f
	prime3 uint64 = 0x165667b19e3779f9
	prime4 uint64 = 0x85ebca77c2b2ae63
	prime5 uint64 = 0x27d4eb2f165667c5
)

// Hash64 is XXH64 (seed 0), implemented in-repo so the ring carries no
// dependency. It places virtual nodes on the ring and keys requests
// that have no canonical graph identity (registered-graph ids, opaque
// bodies); canonical identities come pre-hashed from internal/canon
// and fold through canon.Hash.Fold64 instead.
func Hash64(b []byte) uint64 {
	n := uint64(len(b))
	var h uint64
	if len(b) >= 32 {
		v1, v2, v3, v4 := prime1, prime2, uint64(0), uint64(0)
		v1 += prime2 // wraps mod 2^64, as the reference accumulators do
		v4 -= prime1
		for len(b) >= 32 {
			v1 = xxRound(v1, binary.LittleEndian.Uint64(b))
			v2 = xxRound(v2, binary.LittleEndian.Uint64(b[8:]))
			v3 = xxRound(v3, binary.LittleEndian.Uint64(b[16:]))
			v4 = xxRound(v4, binary.LittleEndian.Uint64(b[24:]))
			b = b[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = xxMerge(h, v1)
		h = xxMerge(h, v2)
		h = xxMerge(h, v3)
		h = xxMerge(h, v4)
	} else {
		h = prime5
	}
	h += n
	for len(b) >= 8 {
		h ^= xxRound(0, binary.LittleEndian.Uint64(b))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(b)) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// Hash64String is Hash64 over the string's bytes, allocation-free.
func Hash64String(s string) uint64 {
	// The compiler elides this copy for the conversion-only use.
	return Hash64([]byte(s))
}

func xxRound(acc, input uint64) uint64 {
	acc += input * prime2
	return bits.RotateLeft64(acc, 31) * prime1
}

func xxMerge(h, v uint64) uint64 {
	h ^= xxRound(0, v)
	return h*prime1 + prime4
}
