package cluster

import (
	"sort"
	"sync"
	"time"
)

// latencyTracker keeps a sliding window of successful-request
// durations and serves their p99, driving adaptive hedging: a request
// still in flight past the tracked p99 is slow enough to justify a
// duplicate on the next replica. The p99 is recomputed lazily every
// recomputeEvery observations (a sort of the 512-sample window per
// request would cost more than the routing it informs).
const (
	latencyWindow  = 512
	latencyMinObs  = 32 // no adaptive hedging before this many samples
	recomputeEvery = 32
)

type latencyTracker struct {
	mu      sync.Mutex
	samples [latencyWindow]time.Duration
	n       int // total observations
	cached  time.Duration
	stale   int // observations since the cached p99
}

func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.samples[t.n%latencyWindow] = d
	t.n++
	t.stale++
	t.mu.Unlock()
}

// p99 returns the tracked 99th percentile; ok is false until enough
// samples have accumulated for the number to mean anything.
func (t *latencyTracker) p99() (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < latencyMinObs {
		return 0, false
	}
	if t.stale >= recomputeEvery || t.cached == 0 {
		w := t.n
		if w > latencyWindow {
			w = latencyWindow
		}
		sorted := make([]time.Duration, w)
		copy(sorted, t.samples[:w])
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		t.cached = sorted[w*99/100]
		t.stale = 0
	}
	return t.cached, true
}
