package cluster

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes: each member owns
// vnodes points on the 64-bit circle, a key is served by the first
// point at or clockwise of it. Membership churn (ejection, readmission)
// moves only the keys adjacent to the changed member's points — the
// property that keeps the rest of the fleet's caches warm through a
// node failure. Not safe for concurrent use; the Gateway serialises
// access under its membership lock.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by point
	names  map[string]bool
}

type ringPoint struct {
	point uint64
	name  string
}

// NewRing builds an empty ring with the given virtual-node count per
// member (0 defaults to 128: enough that a 3-node fleet's ownership
// splits within a few percent of even).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 128
	}
	return &Ring{vnodes: vnodes, names: make(map[string]bool)}
}

// Add places a member's virtual nodes on the ring. Adding a present
// member is a no-op.
func (r *Ring) Add(name string) {
	if r.names[name] {
		return
	}
	r.names[name] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			point: Hash64String(fmt.Sprintf("%s#%d", name, i)),
			name:  name,
		})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].point < r.points[b].point })
}

// Remove takes a member's virtual nodes off the ring. Removing an
// absent member is a no-op.
func (r *Ring) Remove(name string) {
	if !r.names[name] {
		return
	}
	delete(r.names, name)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.name != name {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports whether the member is on the ring.
func (r *Ring) Has(name string) bool { return r.names[name] }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.names) }

// Owner returns the member owning key ("" on an empty ring).
func (r *Ring) Owner(key uint64) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to k distinct members in ring order starting at
// key's owner: the preference chain a request for key walks when nodes
// fail (the second entry is "the next ring replica" in hedging and
// reroute terms).
func (r *Ring) Owners(key uint64, k int) []string {
	if len(r.points) == 0 || k <= 0 {
		return nil
	}
	if k > len(r.names) {
		k = len(r.names)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= key })
	out := make([]string, 0, k)
	seen := make(map[string]bool, k)
	for i := 0; i < len(r.points) && len(out) < k; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.name] {
			seen[p.name] = true
			out = append(out, p.name)
		}
	}
	return out
}
