package cluster

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// ReadyPrefix is the line a spawned node prints on stdout once it is
// listening: "NODE_READY addr=127.0.0.1:PORT". The supervisor scans
// for it to learn the ephemeral port; everything else a child says
// goes to (or is passed through to) stderr.
const ReadyPrefix = "NODE_READY addr="

// AnnounceReady prints the ready line for addr. Called by the child
// side (pathcover-gateway -node) right after Listen succeeds.
func AnnounceReady(addr string) {
	fmt.Fprintf(os.Stdout, "%s%s\n", ReadyPrefix, addr)
}

// ChildInfo is one spawned node's row in the gateway's /stats body —
// the PID is there so CI can SIGKILL a live child mid-run.
type ChildInfo struct {
	Addr     string `json:"addr"`
	PID      int    `json:"pid"`
	Restarts int64  `json:"restarts"`
	Alive    bool   `json:"alive"`
}

// Supervisor forks and babysits local daemon processes for the
// single-binary -spawn mode: children start on ephemeral ports,
// announce themselves via ReadyPrefix, and a child that dies (CI's
// SIGKILL included) is respawned on the same concrete port after a
// short delay — so an ejected node comes back at its old address and
// the gateway's probation path readmits it, no reconfiguration.
type Supervisor struct {
	exe  string
	args func(addr string) []string // full child argv for binding addr

	// ReadyTimeout bounds the wait for a child's ready line (default
	// 30s); RespawnDelay is the pause before restarting a dead child
	// (default 200ms).
	ReadyTimeout time.Duration
	RespawnDelay time.Duration

	mu       sync.Mutex
	children []*child
	closed   bool
}

type child struct {
	addr     string // concrete host:port after first ready
	cmd      *exec.Cmd
	restarts int64
	alive    bool
}

// NewSupervisor builds a supervisor that launches exe with
// args("host:port") as the child argv. args must make the child bind
// that address (":0" forms pick an ephemeral port) and AnnounceReady
// on it.
func NewSupervisor(exe string, args func(addr string) []string) *Supervisor {
	return &Supervisor{
		exe:          exe,
		args:         args,
		ReadyTimeout: 30 * time.Second,
		RespawnDelay: 200 * time.Millisecond,
	}
}

// StartN spawns n children on ephemeral ports and returns their base
// URLs once all are ready. Each child gets a watchdog goroutine that
// respawns it on its concrete port if it dies.
func (s *Supervisor) StartN(n int) ([]string, error) {
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		cmd, addr, err := s.spawn("127.0.0.1:0")
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("spawn node %d: %w", i, err)
		}
		c := &child{addr: addr, cmd: cmd, alive: true}
		s.mu.Lock()
		s.children = append(s.children, c)
		s.mu.Unlock()
		go s.watch(c)
		urls = append(urls, "http://"+addr)
	}
	return urls, nil
}

// spawn starts one child bound to bindAddr and waits for its ready
// line, returning the concrete address it announced.
func (s *Supervisor) spawn(bindAddr string) (*exec.Cmd, string, error) {
	cmd := exec.Command(s.exe, s.args(bindAddr)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, ReadyPrefix) {
				addrc <- strings.TrimSpace(strings.TrimPrefix(line, ReadyPrefix))
				// Keep draining so the child never blocks on stdout.
				go io.Copy(io.Discard, stdout)
				return
			}
			fmt.Fprintln(os.Stderr, line)
		}
		errc <- fmt.Errorf("child exited before announcing readiness")
	}()
	select {
	case addr := <-addrc:
		return cmd, addr, nil
	case err := <-errc:
		cmd.Process.Kill()
		cmd.Wait()
		return nil, "", err
	case <-time.After(s.ReadyTimeout):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, "", fmt.Errorf("child not ready within %v", s.ReadyTimeout)
	}
}

// watch waits on a child and respawns it — on the same concrete port,
// so its ring identity and announced URL stay valid — until Close.
func (s *Supervisor) watch(c *child) {
	for {
		s.mu.Lock()
		cmd := c.cmd
		s.mu.Unlock()
		cmd.Wait()
		s.mu.Lock()
		c.alive = false
		if s.closed {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		time.Sleep(s.RespawnDelay)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		next, _, err := s.spawn(c.addr)
		if err != nil {
			// The port may need a beat to free after a SIGKILL; retry on
			// the next loop turn rather than giving up on the node.
			fmt.Fprintf(os.Stderr, "pathcover-gateway: respawn %s: %v\n", c.addr, err)
			time.Sleep(time.Second)
			continue
		}
		s.mu.Lock()
		c.cmd = next
		c.restarts++
		c.alive = true
		s.mu.Unlock()
	}
}

// Children snapshots the child table (the gateway's /stats "children"
// section).
func (s *Supervisor) Children() []ChildInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ChildInfo, len(s.children))
	for i, c := range s.children {
		pid := 0
		if c.cmd != nil && c.cmd.Process != nil {
			pid = c.cmd.Process.Pid
		}
		out[i] = ChildInfo{Addr: c.addr, PID: pid, Restarts: c.restarts, Alive: c.alive}
	}
	return out
}

// Close stops respawning and kills every child.
func (s *Supervisor) Close() {
	s.mu.Lock()
	s.closed = true
	procs := make([]*exec.Cmd, 0, len(s.children))
	for _, c := range s.children {
		if c.cmd != nil {
			procs = append(procs, c.cmd)
		}
	}
	s.mu.Unlock()
	for _, cmd := range procs {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	for _, cmd := range procs {
		cmd.Wait()
	}
}
