package cluster_test

// Cluster fault handling, tested against real in-process nodes: each
// "node" is an internal/daemon server on its own TCP listener (exactly
// what pathcoverd and the gateway's spawn mode run), killed by closing
// the listener and its connections abruptly — the in-process stand-in
// for CI's SIGKILL, which cluster-smoke covers on real processes. The
// suite asserts the gateway's resilience contract: a mid-stream node
// death is absorbed by retries and rerouting with zero client-visible
// errors, hedged requests cancel the losing attempt, ejected nodes
// readmit through probation, and /batch reassembles in input order
// through a mid-batch death.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathcover"
	"pathcover/internal/cluster"
	"pathcover/internal/daemon"
)

// testNode is one in-process daemon on a real listener, killable and
// restartable on the same address.
type testNode struct {
	addr string
	wrap func(http.Handler) http.Handler

	mu sync.Mutex
	ds *daemon.Server
	hs *http.Server
}

func nodeConfig() daemon.Config {
	return daemon.Config{Shards: 1, CacheMB: 8, RequestTimeout: 30 * time.Second}
}

func startTestNode(t *testing.T, wrap func(http.Handler) http.Handler) *testNode {
	t.Helper()
	n := &testNode{wrap: wrap}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.addr = ln.Addr().String()
	n.serve(ln)
	t.Cleanup(n.kill)
	return n
}

func (n *testNode) serve(ln net.Listener) {
	ds := daemon.New(nodeConfig())
	h := http.Handler(ds.Handler())
	if n.wrap != nil {
		h = n.wrap(h)
	}
	hs := &http.Server{Handler: h}
	n.mu.Lock()
	n.ds, n.hs = ds, hs
	n.mu.Unlock()
	go hs.Serve(ln)
}

// kill drops the node abruptly: listener and all live connections
// close at once, the pool dies. In-flight requests see a reset — the
// closest in-process analogue of SIGKILL.
func (n *testNode) kill() {
	n.mu.Lock()
	ds, hs := n.ds, n.hs
	n.ds, n.hs = nil, nil
	n.mu.Unlock()
	if hs != nil {
		hs.Close()
	}
	if ds != nil {
		ds.Close()
	}
}

// restart brings the node back on its original address.
func (n *testNode) restart(t *testing.T) {
	t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", n.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("restart %s: %v", n.addr, err)
	}
	n.serve(ln)
}

// testCluster boots n nodes and a gateway over them, served over HTTP.
func testCluster(t *testing.T, n int, opts cluster.Options, wrap func(i int) func(http.Handler) http.Handler) (*cluster.Gateway, []*testNode, string) {
	t.Helper()
	nodes := make([]*testNode, n)
	urls := make([]string, n)
	for i := range nodes {
		var w func(http.Handler) http.Handler
		if wrap != nil {
			w = wrap(i)
		}
		nodes[i] = startTestNode(t, w)
		urls[i] = "http://" + nodes[i].addr
	}
	gw := cluster.New(urls, opts)
	t.Cleanup(gw.Close)
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(srv.Close)
	return gw, nodes, srv.URL
}

// fastOpts are gateway options tuned for test time: snappy probes and
// backoff, small thresholds.
func fastOpts() cluster.Options {
	return cluster.Options{
		BaseBackoff:   5 * time.Millisecond,
		MaxBackoff:    50 * time.Millisecond,
		FailThreshold: 2,
		ProbationOKs:  2,
		HealthyOKs:    2,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
	}
}

// testGraph is one request the client can verify end to end: the
// cotree text it sends, the same-numbered local graph (the server
// parses the identical text, so path indices line up), and the known
// minimum.
type testGraph struct {
	text string
	g    *pathcover.Graph
	want int
}

func makeGraphs(t *testing.T, count int) []testGraph {
	t.Helper()
	out := make([]testGraph, count)
	for i := range out {
		n := 16 + 7*(i%12)
		g0 := pathcover.Random(uint64(100+i), n, pathcover.Mixed)
		text := g0.String()
		g, err := pathcover.ParseCotree(text)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = testGraph{text: text, g: g, want: g.MinPathCoverSize()}
	}
	return out
}

type coverResp struct {
	N        int     `json:"n"`
	NumPaths int     `json:"num_paths"`
	Paths    [][]int `json:"paths"`
	Exact    bool    `json:"exact"`
}

// postCover sends one /cover and fully checks the answer against tg.
func postCover(base string, tg testGraph) error {
	body, _ := json.Marshal(map[string]any{"cotree": tg.text})
	resp, err := http.Post(base+"/cover", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var cr coverResp
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return fmt.Errorf("status %d: %v", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if cr.NumPaths != tg.want {
		return fmt.Errorf("num_paths = %d, want %d", cr.NumPaths, tg.want)
	}
	if err := tg.g.Verify(cr.Paths); err != nil {
		return fmt.Errorf("cover failed verification: %v", err)
	}
	return nil
}

// TestClusterKillMidStreamZeroErrors is the tentpole's core promise: 3
// nodes, one killed mid-stream, and every request still comes back a
// verified cover — retries and rerouting absorb the death; the dead
// node ejects within the probe window and readmits after restart.
func TestClusterKillMidStreamZeroErrors(t *testing.T) {
	gw, nodes, base := testCluster(t, 3, fastOpts(), nil)
	gw.Start()
	graphs := makeGraphs(t, 24)

	const (
		clients = 4
		perCli  = 30
		killAt  = 8 // per-client request index at which client 0 kills a node
	)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	killed := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCli; i++ {
				if c == 0 && i == killAt {
					nodes[1].kill()
					close(killed)
				}
				if err := postCover(base, graphs[(c*perCli+i)%len(graphs)]); err != nil {
					errs[c] = fmt.Errorf("request %d: %w", i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d saw an error despite retries: %v", c, err)
		}
	}
	<-killed

	// The dead node must eject within the probe window.
	waitFor(t, 5*time.Second, "ejection", func() bool { return gw.Stats().Ejections >= 1 })

	// Restart it; probation must readmit it.
	nodes[1].restart(t)
	waitFor(t, 5*time.Second, "readmission", func() bool { return gw.Stats().Readmissions >= 1 })

	// And it must graduate back to healthy and serve again.
	waitFor(t, 5*time.Second, "healthy", func() bool {
		for _, ns := range gw.Stats().Nodes {
			if ns.Name == "n1" && ns.State == "healthy" {
				return true
			}
		}
		return false
	})
	for i := 0; i < 12; i++ {
		if err := postCover(base, graphs[i]); err != nil {
			t.Fatalf("post-readmission request %d: %v", i, err)
		}
	}

	st := gw.Stats()
	if st.Retries == 0 {
		t.Error("Retries = 0; the kill must have forced retries")
	}
	if st.Ejections == 0 || st.Readmissions == 0 {
		t.Errorf("Ejections = %d, Readmissions = %d; want both nonzero", st.Ejections, st.Readmissions)
	}
	if st.Routed == 0 {
		t.Error("Routed = 0")
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterHedgeCancelsLoser: a request whose ring owner is slow
// gets hedged to the next replica after the fixed threshold, the fast
// replica's answer wins, and the slow attempt is cancelled rather than
// left running.
func TestClusterHedgeCancelsLoser(t *testing.T) {
	var slowCancelled atomic.Int64
	const stall = 2 * time.Second
	opts := fastOpts()
	opts.HedgeAfter = 30 * time.Millisecond
	opts.ProbeInterval = time.Hour // passive only: probes must not trip the stalling node
	gw, _, base := testCluster(t, 2, opts, func(i int) func(http.Handler) http.Handler {
		if i != 0 {
			return nil
		}
		return func(h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/cover" {
					// Consume the body before stalling: the HTTP/1 server
					// re-arms connection monitoring at body EOF, and only
					// then does a client abort surface on r.Context().
					b, _ := io.ReadAll(r.Body)
					r.Body = io.NopCloser(bytes.NewReader(b))
					select {
					case <-r.Context().Done():
						slowCancelled.Add(1)
						return
					case <-time.After(stall):
					}
				}
				h.ServeHTTP(w, r)
			})
		}
	})

	// Find a graph whose ring owner is the slow node n0. The gateway
	// names nodes by input index, and its ring is reproducible from the
	// exported pieces.
	ring := cluster.NewRing(0)
	ring.Add("n0")
	ring.Add("n1")
	graphs := makeGraphs(t, 40)
	var tg testGraph
	found := false
	for _, cand := range graphs {
		if ring.Owner(cluster.KeyOf(cand.g)) == "n0" {
			tg, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("no test graph routed to n0; ring placement broken")
	}

	start := time.Now()
	if err := postCover(base, tg); err != nil {
		t.Fatalf("hedged request failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= stall {
		t.Fatalf("request took %v: the hedge did not beat the stalled primary", elapsed)
	}
	st := gw.Stats()
	if st.Hedged == 0 || st.HedgeWins == 0 {
		t.Fatalf("Hedged = %d, HedgeWins = %d; want both nonzero", st.Hedged, st.HedgeWins)
	}
	// The losing attempt must be cancelled promptly, not after its stall.
	waitFor(t, time.Second, "loser cancellation", func() bool { return slowCancelled.Load() >= 1 })
}

// TestClusterBatchOrderUnderNodeDeath: a /batch whose items spread
// over 3 nodes keeps input order in the reassembled response even when
// one node is dead at dispatch time (its items reroute to the next
// replica) — and the reroute is visible in the stats.
func TestClusterBatchOrderUnderNodeDeath(t *testing.T) {
	opts := fastOpts()
	opts.ProbeInterval = time.Hour // keep the dead node on the ring: passive reroute only
	gw, nodes, base := testCluster(t, 3, opts, nil)
	graphs := makeGraphs(t, 18)

	nodes[2].kill()

	specs := make([]map[string]any, len(graphs))
	for i, tg := range graphs {
		specs[i] = map[string]any{"cotree": tg.text}
	}
	body, _ := json.Marshal(map[string]any{"graphs": specs})
	resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br struct {
		Covers []coverResp `json:"covers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("status %d: %v", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(br.Covers) != len(graphs) {
		t.Fatalf("batch returned %d covers, want %d", len(br.Covers), len(graphs))
	}
	for i, cov := range br.Covers {
		// Input order: cover i must answer graph i — right vertex count,
		// right minimum, verifying against exactly that graph.
		if cov.N != graphs[i].g.N() {
			t.Fatalf("cover %d has n = %d, want %d: batch order lost", i, cov.N, graphs[i].g.N())
		}
		if cov.NumPaths != graphs[i].want {
			t.Fatalf("cover %d: num_paths = %d, want %d", i, cov.NumPaths, graphs[i].want)
		}
		if err := graphs[i].g.Verify(cov.Paths); err != nil {
			t.Fatalf("cover %d failed verification: %v", i, err)
		}
	}
	st := gw.Stats()
	if st.Rerouted == 0 {
		t.Error("Rerouted = 0: the dead node's items must have been rerouted")
	}
	if st.BatchItems != int64(len(graphs)) {
		t.Errorf("BatchItems = %d, want %d", st.BatchItems, len(graphs))
	}
}

// TestClusterRegisteredSession: registration through the gateway
// yields a node-prefixed id that pins later by-id requests to the
// owning node, covers by id verify, and DELETE cleans up.
func TestClusterRegisteredSession(t *testing.T) {
	_, _, base := testCluster(t, 3, fastOpts(), nil)
	tg := makeGraphs(t, 1)[0]

	body, _ := json.Marshal(map[string]any{"cotree": tg.text})
	resp, err := http.Post(base+"/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID   string `json:"id"`
		Node string `json:"node"`
		N    int    `json:"n"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status %d", resp.StatusCode)
	}
	if info.Node == "" || len(info.ID) < len(info.Node)+2 || info.ID[:len(info.Node)+1] != info.Node+"." {
		t.Fatalf("registered id %q not prefixed with its node %q", info.ID, info.Node)
	}

	cresp, err := http.Get(base + "/cover?id=" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	var cr coverResp
	if err := json.NewDecoder(cresp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cover-by-id status %d", cresp.StatusCode)
	}
	if cr.NumPaths != tg.want {
		t.Fatalf("cover-by-id num_paths = %d, want %d", cr.NumPaths, tg.want)
	}
	if err := tg.g.Verify(cr.Paths); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/graphs/"+info.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	gone, err := http.Get(base + "/cover?id=" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted id served status %d, want 404", gone.StatusCode)
	}
}

// TestClusterNoRetryOnClientError: a 400-class answer is definitive —
// the gateway forwards it without retrying or walking replicas.
func TestClusterNoRetryOnClientError(t *testing.T) {
	var hits atomic.Int64
	opts := fastOpts()
	opts.ProbeInterval = time.Hour
	gw, _, base := testCluster(t, 3, opts, func(i int) func(http.Handler) http.Handler {
		return func(h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/cover" {
					hits.Add(1)
				}
				h.ServeHTTP(w, r)
			})
		}
	})
	resp, err := http.Post(base+"/cover", "application/json",
		bytes.NewReader([]byte(`{"cotree":"((("}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("nodes saw %d /cover attempts for a 400, want exactly 1", got)
	}
	if r := gw.Stats().Retries; r != 0 {
		t.Fatalf("Retries = %d on a client error, want 0", r)
	}
}
