package cluster

import "sync/atomic"

// counters are the gateway-level serving totals surfaced at /stats.
// Per-node breakdowns live on the members.
type counters struct {
	requests     atomic.Int64 // requests accepted by the gateway
	routed       atomic.Int64 // requests answered by some node
	retries      atomic.Int64 // retry attempts (beyond each chain's first)
	hedged       atomic.Int64 // hedge attempts launched
	hedgeWins    atomic.Int64 // hedges that beat the primary
	ejections    atomic.Int64
	readmissions atomic.Int64
	batchItems   atomic.Int64 // batch items fanned out
	rerouted     atomic.Int64 // batch items served off their primary owner
}

// NodeStats is one member's row in the gateway's /stats body.
type NodeStats struct {
	Name         string `json:"name"`
	URL          string `json:"url"`
	State        string `json:"state"`
	Routed       int64  `json:"routed"`
	Retried      int64  `json:"retried"`
	Hedged       int64  `json:"hedged"`
	Ejections    int64  `json:"ejections"`
	Readmissions int64  `json:"readmissions"`
}

// GatewayStats is the gateway's /stats body (modulo the optional
// "children" section contributed by spawn mode).
type GatewayStats struct {
	Nodes        []NodeStats `json:"nodes"`
	Requests     int64       `json:"requests"`
	Routed       int64       `json:"routed"`
	Retries      int64       `json:"retries"`
	Hedged       int64       `json:"hedged"`
	HedgeWins    int64       `json:"hedge_wins"`
	Ejections    int64       `json:"ejections"`
	Readmissions int64       `json:"readmissions"`
	BatchItems   int64       `json:"batch_items"`
	Rerouted     int64       `json:"rerouted"`
	P99MS        float64     `json:"p99_ms"`
}

// Stats snapshots the gateway's counters.
func (g *Gateway) Stats() GatewayStats {
	st := GatewayStats{
		Requests:     g.stats.requests.Load(),
		Routed:       g.stats.routed.Load(),
		Retries:      g.stats.retries.Load(),
		Hedged:       g.stats.hedged.Load(),
		HedgeWins:    g.stats.hedgeWins.Load(),
		Ejections:    g.stats.ejections.Load(),
		Readmissions: g.stats.readmissions.Load(),
		BatchItems:   g.stats.batchItems.Load(),
		Rerouted:     g.stats.rerouted.Load(),
	}
	if p, ok := g.latency.p99(); ok {
		st.P99MS = float64(p.Nanoseconds()) / 1e6
	}
	g.mu.Lock()
	for _, m := range g.nodes {
		st.Nodes = append(st.Nodes, NodeStats{
			Name:         m.name,
			URL:          m.url,
			State:        m.state.String(),
			Routed:       m.routed.Load(),
			Retried:      m.retried.Load(),
			Hedged:       m.hedged.Load(),
			Ejections:    m.ejections,
			Readmissions: m.readmissions,
		})
	}
	g.mu.Unlock()
	return st
}
