package cluster

import (
	"net/http"
	"net/http/pprof"

	"pathcover/internal/metrics"
)

// handleMetrics renders the gateway's counters as Prometheus text: the
// fleet totals plus per-member routed/retried/hedged/ejection families
// labelled by node name, all derived from the same snapshot /stats
// reports, so the two surfaces can never disagree.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := g.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	mw := metrics.NewWriter(w)

	mw.Counter("pathcover_gateway_requests_total", "Requests accepted by the gateway.",
		float64(st.Requests))
	mw.Counter("pathcover_gateway_routed_total", "Requests answered by some node.",
		float64(st.Routed))
	mw.Counter("pathcover_gateway_retries_total", "Retry attempts beyond each chain's first.",
		float64(st.Retries))
	mw.Counter("pathcover_gateway_hedged_total", "Hedge attempts launched at the tracked p99.",
		float64(st.Hedged))
	mw.Counter("pathcover_gateway_hedge_wins_total", "Hedges that beat the primary attempt.",
		float64(st.HedgeWins))
	mw.Counter("pathcover_gateway_ejections_total", "Members ejected by health checking.",
		float64(st.Ejections))
	mw.Counter("pathcover_gateway_readmissions_total", "Ejected members readmitted after probation.",
		float64(st.Readmissions))
	mw.Counter("pathcover_gateway_batch_items_total", "Batch items fanned out across the ring.",
		float64(st.BatchItems))
	mw.Counter("pathcover_gateway_rerouted_total", "Batch items served off their primary owner.",
		float64(st.Rerouted))
	mw.Gauge("pathcover_gateway_p99_seconds", "Tracked p99 latency steering hedges.",
		st.P99MS/1e3)

	routed := make([]metrics.LabelledValue, 0, len(st.Nodes))
	retried := make([]metrics.LabelledValue, 0, len(st.Nodes))
	hedged := make([]metrics.LabelledValue, 0, len(st.Nodes))
	ejections := make([]metrics.LabelledValue, 0, len(st.Nodes))
	healthy := make([]metrics.LabelledValue, 0, len(st.Nodes))
	for _, n := range st.Nodes {
		routed = append(routed, metrics.LabelledValue{Label: n.Name, Value: float64(n.Routed)})
		retried = append(retried, metrics.LabelledValue{Label: n.Name, Value: float64(n.Retried)})
		hedged = append(hedged, metrics.LabelledValue{Label: n.Name, Value: float64(n.Hedged)})
		ejections = append(ejections, metrics.LabelledValue{Label: n.Name, Value: float64(n.Ejections)})
		up := 0.0
		if n.State == "healthy" {
			up = 1
		}
		healthy = append(healthy, metrics.LabelledValue{Label: n.Name, Value: up})
	}
	mw.CounterVec("pathcover_gateway_node_routed_total", "Requests answered per member.",
		"node", routed)
	mw.CounterVec("pathcover_gateway_node_retried_total", "Retries charged per member.",
		"node", retried)
	mw.CounterVec("pathcover_gateway_node_hedged_total", "Hedges launched against each member.",
		"node", hedged)
	mw.CounterVec("pathcover_gateway_node_ejections_total", "Health ejections per member.",
		"node", ejections)
	mw.GaugeVec("pathcover_gateway_node_healthy", "1 while the member is in the healthy state.",
		"node", healthy)
	_ = mw.Err()
}

// OpsHandler returns the gateway's operational mux for the -ops port:
// /metrics plus the net/http/pprof endpoints, mirroring the daemon's
// split (profiling never rides the serving port). /metrics is also on
// the serving mux for single-port deployments.
func (g *Gateway) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
