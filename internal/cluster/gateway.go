// Package cluster is the fault-tolerant serving tier over a fleet of
// pathcoverd nodes: a consistent-hash ring keyed on canonical graph
// identity (isomorphic graphs route to the node whose result cache is
// warm), health-checked membership with ejection and probation-based
// readmission, exponential-backoff retries that honor Retry-After,
// p99-tracked request hedging, and order-preserving /batch fan-out.
// cmd/pathcover-gateway wraps it behind flags; the spawn half
// (spawn.go) forks local daemons so one binary is a whole test
// cluster.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"pathcover"
	"pathcover/internal/canon"
)

// Options tune the gateway. The zero value serves with the documented
// defaults.
type Options struct {
	// VNodes is the virtual-node count per ring member (0 = 128).
	VNodes int
	// MaxAttempts caps the attempts of one request chain, first try
	// included (0 = max(4, node count)); attempts walk the key's ring
	// order, so attempt k+1 is "the next replica".
	MaxAttempts int
	// BaseBackoff / MaxBackoff bound the jittered exponential sleep
	// between attempts (0 = 25ms / 1s). A 503's Retry-After hint
	// overrides the computed sleep when longer.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HedgeAfter fixes the hedging threshold; 0 means adaptive (the
	// tracked p99 of successful requests, never below HedgeFloor, no
	// hedging until enough samples accumulate).
	HedgeAfter time.Duration
	// HedgeFloor is the minimum adaptive threshold (0 = 5ms): without a
	// floor, a stream of sub-millisecond cache hits would hedge every
	// first miss.
	HedgeFloor time.Duration
	// FailThreshold ejects a node after this many consecutive health
	// failures (0 = 3).
	FailThreshold int
	// ProbationOKs readmits an ejected node (on probation) after this
	// many consecutive probe successes (0 = 2); HealthyOKs graduates a
	// probation node to healthy after this many more (0 = 3).
	ProbationOKs int
	HealthyOKs   int
	// ProbeInterval / ProbeTimeout drive the active /healthz prober
	// (0 = 250ms / 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// MaxBody bounds inbound request bodies (0 = 64 MiB).
	MaxBody int64
	// Client overrides the outbound HTTP client (tests; default is a
	// keep-alive transport with no global timeout — per-attempt
	// lifetimes come from the inbound request context and probes).
	Client *http.Client
	// Children, when set (spawn mode), contributes the child-process
	// table to /stats.
	Children func() []ChildInfo
}

func (o *Options) fill() {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.HedgeFloor <= 0 {
		o.HedgeFloor = 5 * time.Millisecond
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.ProbationOKs <= 0 {
		o.ProbationOKs = 2
	}
	if o.HealthyOKs <= 0 {
		o.HealthyOKs = 3
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 64 << 20
	}
}

// Gateway fronts the fleet. Build with New, then Start the prober and
// serve Handler.
type Gateway struct {
	opts    Options
	client  *http.Client
	nodes   []*member // index order = input order; nodes[i].name == "ni"
	byName  map[string]*member
	mu      sync.Mutex // guards ring + member health fields
	ring    *Ring
	latency latencyTracker
	stats   counters
	started time.Time
	done    chan struct{}
	closeMu sync.Once
}

// New builds a gateway over the node base URLs (scheme://host:port, no
// trailing slash required). All nodes start healthy and on the ring.
func New(nodeURLs []string, opts Options) *Gateway {
	opts.fill()
	g := &Gateway{
		opts:    opts,
		client:  opts.Client,
		byName:  make(map[string]*member, len(nodeURLs)),
		ring:    NewRing(opts.VNodes),
		started: time.Now(),
		done:    make(chan struct{}),
	}
	if g.client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64
		g.client = &http.Client{Transport: tr}
	}
	for i, u := range nodeURLs {
		m := &member{name: fmt.Sprintf("n%d", i), url: strings.TrimSuffix(u, "/")}
		g.nodes = append(g.nodes, m)
		g.byName[m.name] = m
		g.ring.Add(m.name)
	}
	return g
}

// Start launches the active prober. Close stops it.
func (g *Gateway) Start() { go g.probeLoop() }

// Close stops the prober. In-flight requests finish on their own.
func (g *Gateway) Close() { g.closeMu.Do(func() { close(g.done) }) }

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/stats", g.handleStats)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("/cover", g.handleSolve)
	mux.HandleFunc("/hamiltonian", g.handleSolve)
	mux.HandleFunc("/batch", g.handleBatch)
	mux.HandleFunc("POST /graphs", g.handleRegister)
	mux.HandleFunc("GET /graphs/{id}", g.handleGraphByID)
	mux.HandleFunc("DELETE /graphs/{id}", g.handleGraphByID)
	return mux
}

// ---- routing keys ----

// KeyOf returns the ring key of a graph: its canonical-identity hash
// folded to 64 bits when the graph has one (cographs — so every
// isomorphic presentation keys identically, landing on the node whose
// cache already holds the answer), a content key otherwise.
func KeyOf(g *pathcover.Graph) uint64 {
	if hi, lo, ok := g.CanonicalHash(); ok {
		return canon.Hash{Hi: hi, Lo: lo}.Fold64()
	}
	return Hash64String(fmt.Sprintf("raw:%d", g.N()))
}

// keySpec is the lenient routing-only parse of a request body: just
// the graph fields, unknown fields ignored (the node, not the gateway,
// owns request validation).
type keySpec struct {
	Cotree string   `json:"cotree"`
	N      int      `json:"n"`
	Edges  [][2]int `json:"edges"`
}

// routeKey derives the ring key of a request body. Parsable graphs key
// by canonical identity (relabel-invariant for cographs) or normalized
// edge content; anything else keys by raw bytes and the owning node
// reports the proper 400.
func routeKey(body []byte) uint64 {
	var ks keySpec
	if err := json.Unmarshal(body, &ks); err == nil {
		switch {
		case ks.Cotree != "":
			if g, err := pathcover.ParseCotree(ks.Cotree); err == nil {
				return KeyOf(g)
			}
		case ks.N > 0:
			if g, err := pathcover.FromEdgesAny(ks.N, ks.Edges, nil); err == nil {
				if hi, lo, ok := g.CanonicalHash(); ok {
					return canon.Hash{Hi: hi, Lo: lo}.Fold64()
				}
			}
			return canon.HashEdges(ks.N, ks.Edges).Fold64()
		}
	}
	return Hash64(body)
}

// candidates returns the preference chain for key: ring members
// (healthy + probation) in ring order from the key's owner. With the
// whole fleet ejected the ring is empty; every node is then a
// candidate — attempting a known-bad node beats failing without
// trying, and a recovered-but-not-yet-probed node gets found early.
func (g *Gateway) candidates(key uint64) []*member {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := g.ring.Owners(key, len(g.nodes))
	if len(names) == 0 {
		return append([]*member(nil), g.nodes...)
	}
	out := make([]*member, len(names))
	for i, nm := range names {
		out[i] = g.byName[nm]
	}
	return out
}

// ---- forwarding core ----

// fwdReq is one outbound request, body pre-read so attempts repeat and
// hedge from the same bytes.
type fwdReq struct {
	method   string
	path     string
	rawQuery string
	body     []byte
}

// fwdRes is a chain's outcome: either a node's complete answer (status
// + body, fully read) or a terminal error.
type fwdRes struct {
	status   int
	header   http.Header
	body     []byte
	err      error
	node     *member
	rerouted bool // answered by a non-first candidate
	hedge    bool // answered by the hedge chain
}

func (r fwdRes) ok() bool {
	// Any definitive node answer ends the chain: 2xx is success, 4xx
	// (including 499) is the client's error to see. Only transport
	// failures and 5xx keep the chain walking.
	return r.err == nil && r.status < 500
}

// forward performs one attempt against one node.
func (g *Gateway) forward(ctx context.Context, m *member, req fwdReq) fwdRes {
	url := m.url + req.path
	if req.rawQuery != "" {
		url += "?" + req.rawQuery
	}
	var rd io.Reader
	if req.body != nil {
		rd = bytes.NewReader(req.body)
	}
	hr, err := http.NewRequestWithContext(ctx, req.method, url, rd)
	if err != nil {
		return fwdRes{err: err, node: m}
	}
	if req.body != nil {
		hr.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := g.client.Do(hr)
	if err != nil {
		return fwdRes{err: err, node: m}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fwdRes{err: err, node: m}
	}
	if resp.StatusCode < 300 {
		g.latency.observe(time.Since(start))
	}
	return fwdRes{status: resp.StatusCode, header: resp.Header, body: body, node: m}
}

// attemptChain walks the candidate chain with jittered exponential
// backoff until a definitive answer: transport errors and 5xx advance
// to the next replica (rerouting), 503 honors the node's Retry-After
// hint, client errors and successes return immediately. Health
// outcomes feed the membership state machine passively: transport
// errors, 502 and 504 are failures; any other answer — 503 and 500
// included, the node is alive, merely loaded or serving a poisoned
// request — is a success.
func (g *Gateway) attemptChain(ctx context.Context, req fwdReq, cands []*member) fwdRes {
	max := g.opts.MaxAttempts
	if max < len(cands) {
		max = len(cands)
	}
	var last fwdRes
	var hint time.Duration
	for i := 0; i < max; i++ {
		if i > 0 {
			d := backoffDelay(i-1, g.opts.BaseBackoff, g.opts.MaxBackoff)
			// Honor Retry-After only once every candidate has had a turn:
			// before that, the next replica is idle and the whole point of
			// the chain is to use it now.
			if i >= len(cands) && hint > d {
				d = hint
			}
			select {
			case <-time.After(d):
			case <-ctx.Done():
				last.err = ctx.Err()
				return last
			}
		}
		m := cands[i%len(cands)]
		if i > 0 {
			g.stats.retries.Add(1)
			m.retried.Add(1)
		}
		res := g.forward(ctx, m, req)
		res.rerouted = i%len(cands) != 0
		switch {
		case res.err != nil:
			if ctx.Err() != nil {
				// The caller went away (or a hedge winner cancelled us):
				// not the node's fault.
				res.err = ctx.Err()
				return res
			}
			g.noteFail(m)
		case res.status == http.StatusServiceUnavailable:
			g.noteOK(m)
			hint = parseRetryAfter(res.header)
		case res.status == http.StatusBadGateway || res.status == http.StatusGatewayTimeout:
			g.noteFail(m)
		default:
			g.noteOK(m)
			if res.ok() {
				return res
			}
		}
		last = res
	}
	return last
}

// execute runs a request with hedging: the primary chain starts at the
// key's owner; if no answer lands within the hedge threshold, a
// duplicate chain starts at the next replica and the first definitive
// answer wins, cancelling the loser. Hedging is for idempotent solve
// traffic — registration and deletes go through attemptChain directly.
func (g *Gateway) execute(ctx context.Context, req fwdReq, cands []*member, hedge bool) fwdRes {
	threshold, canHedge := g.hedgeThreshold()
	if !hedge || !canHedge || len(cands) < 2 {
		return g.attemptChain(ctx, req, cands)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resc := make(chan fwdRes, 2)
	go func() { resc <- g.attemptChain(cctx, req, cands) }()
	outstanding := 1
	launched := false
	timer := time.NewTimer(threshold)
	defer timer.Stop()
	var last fwdRes
	for {
		select {
		case res := <-resc:
			outstanding--
			if res.ok() {
				cancel() // the loser's chain stops at its next checkpoint
				if res.hedge {
					g.stats.hedgeWins.Add(1)
				}
				return res
			}
			if res.err == nil || last.node == nil {
				last = res
			}
			if outstanding == 0 {
				return last
			}
		case <-timer.C:
			if !launched {
				launched = true
				outstanding++
				g.stats.hedged.Add(1)
				cands[1].hedged.Add(1)
				go func() {
					res := g.attemptChain(cctx, req, append(cands[1:len(cands):len(cands)], cands[0]))
					res.hedge = true
					resc <- res
				}()
			}
		}
	}
}

// hedgeThreshold returns the in-flight duration past which a request
// deserves a duplicate: the fixed HedgeAfter when set, else the
// tracked p99 (bounded below by HedgeFloor) once enough samples exist.
func (g *Gateway) hedgeThreshold() (time.Duration, bool) {
	if g.opts.HedgeAfter > 0 {
		return g.opts.HedgeAfter, true
	}
	p, ok := g.latency.p99()
	if !ok {
		return 0, false
	}
	if p < g.opts.HedgeFloor {
		p = g.opts.HedgeFloor
	}
	return p, true
}

// reply copies a chain outcome to the client. Chains that died without
// any node answer map to 502.
func (g *Gateway) reply(w http.ResponseWriter, res fwdRes) {
	if res.err != nil || res.node == nil {
		msg := "no cluster node answered"
		if res.err != nil {
			msg = res.err.Error()
		}
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": msg})
		return
	}
	if res.status < 300 {
		g.stats.routed.Add(1)
		res.node.routed.Add(1)
	}
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Body == nil {
		return nil, true
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.opts.MaxBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return nil, false
	}
	if len(body) == 0 {
		return nil, true
	}
	return body, true
}

// ---- handlers ----

// handleSolve proxies /cover and /hamiltonian. Inline graphs route by
// canonical identity and may hedge; ?id= requests pin to the node the
// id names (node-prefixed ids are the gateway's own registration
// rewrites; bare ids hash onto the ring).
func (g *Gateway) handleSolve(w http.ResponseWriter, r *http.Request) {
	g.stats.requests.Add(1)
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	req := fwdReq{method: r.Method, path: r.URL.Path, rawQuery: r.URL.RawQuery, body: body}
	if id := r.URL.Query().Get("id"); id != "" {
		m, nodeID := g.resolveID(id)
		if m == nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("no cluster node for id %q", id)})
			return
		}
		q := r.URL.Query()
		q.Set("id", nodeID)
		req.rawQuery = q.Encode()
		// Pinned: the graph lives on exactly one node's registry, so the
		// chain must not walk replicas (they would 404); retries re-try
		// the same node.
		g.reply(w, g.attemptChain(r.Context(), req, []*member{m}))
		return
	}
	g.reply(w, g.execute(r.Context(), req, g.candidates(routeKey(body)), true))
}

// handleRegister proxies POST /graphs: the graph registers on the node
// that will also serve its covers (same ring key as /cover would use),
// and the node-local id comes back prefixed with the node name
// ("n2.g5") so later ?id= requests pin correctly.
func (g *Gateway) handleRegister(w http.ResponseWriter, r *http.Request) {
	g.stats.requests.Add(1)
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	req := fwdReq{method: http.MethodPost, path: "/graphs", rawQuery: r.URL.RawQuery, body: body}
	res := g.attemptChain(r.Context(), req, g.candidates(routeKey(body)))
	if res.err == nil && res.node != nil && res.status == http.StatusOK {
		var info map[string]any
		if json.Unmarshal(res.body, &info) == nil {
			if id, isStr := info["id"].(string); isStr {
				info["id"] = res.node.name + "." + id
				info["node"] = res.node.name
				if b, err := json.Marshal(info); err == nil {
					res.body = b
				}
			}
		}
	}
	g.reply(w, res)
}

// handleGraphByID proxies GET/DELETE /graphs/{id}, pinned to the id's
// node.
func (g *Gateway) handleGraphByID(w http.ResponseWriter, r *http.Request) {
	g.stats.requests.Add(1)
	id := r.PathValue("id")
	m, nodeID := g.resolveID(id)
	if m == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("no cluster node for id %q", id)})
		return
	}
	req := fwdReq{method: r.Method, path: "/graphs/" + nodeID, rawQuery: r.URL.RawQuery}
	g.reply(w, g.attemptChain(r.Context(), req, []*member{m}))
}

// resolveID splits a gateway-prefixed id ("n2.g5") into its node and
// the node-local id. Bare ids (clients that registered against a node
// directly) hash onto the ring.
func (g *Gateway) resolveID(id string) (*member, string) {
	if name, rest, found := strings.Cut(id, "."); found {
		if m, ok := g.byName[name]; ok {
			return m, rest
		}
	}
	cands := g.candidates(Hash64String(id))
	if len(cands) == 0 {
		return nil, ""
	}
	return cands[0], id
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	alive := g.ring.Len()
	g.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"gateway":  true,
		"nodes":    len(g.nodes),
		"alive":    alive,
		"uptime_s": time.Since(g.started).Seconds(),
	})
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"gateway": g.Stats()}
	if g.opts.Children != nil {
		body["children"] = g.opts.Children()
	}
	writeJSON(w, http.StatusOK, body)
}

// ---- batch fan-out ----

// handleBatch splits a /batch by ring owner, dispatches the sub-
// batches concurrently, and reassembles the covers in input order.
// Failure handling is per-item-group, not per-request: a sub-batch
// whose owner dies walks that group's replica chain (rerouted items
// are counted), and only a group that exhausts every replica fails the
// request.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	g.stats.requests.Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
		return
	}
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var top map[string]json.RawMessage
	var items []json.RawMessage
	if json.Unmarshal(body, &top) == nil && top["graphs"] != nil {
		_ = json.Unmarshal(top["graphs"], &items)
	}
	if len(items) == 0 {
		// Malformed or empty: any node renders the authoritative 400.
		g.reply(w, g.attemptChain(r.Context(),
			fwdReq{method: http.MethodPost, path: "/batch", rawQuery: r.URL.RawQuery, body: body},
			g.candidates(Hash64(body))))
		return
	}
	g.stats.batchItems.Add(int64(len(items)))

	// Group item indices by ring owner (keys kept per group so each
	// group's replica chain starts at its own owner).
	type group struct {
		key     uint64
		indices []int
	}
	groups := make(map[string]*group)
	order := make([]string, 0, 4)
	for i, raw := range items {
		key := routeKey(raw)
		cands := g.candidates(key)
		if len(cands) == 0 {
			writeJSON(w, http.StatusBadGateway, map[string]string{"error": "no cluster nodes"})
			return
		}
		owner := cands[0].name
		gr := groups[owner]
		if gr == nil {
			gr = &group{key: key}
			groups[owner] = gr
			order = append(order, owner)
		}
		gr.indices = append(gr.indices, i)
	}

	start := time.Now()
	covers := make([]json.RawMessage, len(items))
	type groupErr struct {
		res fwdRes
	}
	var (
		wg      sync.WaitGroup
		errMu   sync.Mutex
		failure *groupErr
	)
	for _, owner := range order {
		gr := groups[owner]
		wg.Add(1)
		go func(gr *group) {
			defer wg.Done()
			sub := make(map[string]json.RawMessage, len(top))
			for k, v := range top {
				sub[k] = v
			}
			part := make([]json.RawMessage, len(gr.indices))
			for i, idx := range gr.indices {
				part[i] = items[idx]
			}
			rawPart, err := json.Marshal(part)
			if err != nil {
				errMu.Lock()
				if failure == nil {
					failure = &groupErr{fwdRes{err: err}}
				}
				errMu.Unlock()
				return
			}
			sub["graphs"] = rawPart
			subBody, err := json.Marshal(sub)
			if err != nil {
				errMu.Lock()
				if failure == nil {
					failure = &groupErr{fwdRes{err: err}}
				}
				errMu.Unlock()
				return
			}
			res := g.attemptChain(r.Context(),
				fwdReq{method: http.MethodPost, path: "/batch", rawQuery: r.URL.RawQuery, body: subBody},
				g.candidates(gr.key))
			if res.err != nil || res.status != http.StatusOK {
				errMu.Lock()
				if failure == nil {
					failure = &groupErr{res}
				}
				errMu.Unlock()
				return
			}
			if res.rerouted {
				g.stats.rerouted.Add(int64(len(gr.indices)))
			}
			if res.node != nil {
				res.node.routed.Add(1)
				g.stats.routed.Add(1)
			}
			var parsed struct {
				Covers []json.RawMessage `json:"covers"`
			}
			if err := json.Unmarshal(res.body, &parsed); err != nil || len(parsed.Covers) != len(gr.indices) {
				errMu.Lock()
				if failure == nil {
					failure = &groupErr{fwdRes{err: fmt.Errorf("sub-batch answer mismatch: %d covers for %d items", len(parsed.Covers), len(gr.indices))}}
				}
				errMu.Unlock()
				return
			}
			for i, idx := range gr.indices {
				covers[idx] = parsed.Covers[i]
			}
		}(gr)
	}
	wg.Wait()
	if failure != nil {
		g.reply(w, failure.res)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	var out bytes.Buffer
	out.WriteString(`{"covers":[`)
	for i, c := range covers {
		if i > 0 {
			out.WriteByte(',')
		}
		out.Write(c)
	}
	fmt.Fprintf(&out, "],\"elapsed_ms\":%g}\n", float64(time.Since(start).Nanoseconds())/1e6)
	w.Write(out.Bytes())
}
