package cluster

import "testing"

// TestHash64Vectors pins the in-repo implementation to the published
// XXH64 test vectors (seed 0), so it is the real algorithm, not a
// lookalike — ring placements stay comparable with any external
// tooling that speaks xxhash.
func TestHash64Vectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xef46db3751d8e999},
		{"a", 0xd24ec4f1a98c6e5b},
		{"abc", 0x44bc2cf5ad770999},
		{"message digest", 0x066ed728fceeb3be},
		{"abcdefghijklmnopqrstuvwxyz", 0xcfe1f278fa89835c},
		{"12345678901234567890123456789012345678901234567890123456789012345678901234567890", 0xe04a477f19ee145d},
		{"Nobody inspects the spammish repetition", 0xfbcea83c8a378bf1},
	}
	for _, c := range cases {
		if got := Hash64String(c.in); got != c.want {
			t.Errorf("Hash64(%q) = %016x, want %016x", c.in, got, c.want)
		}
		if got := Hash64([]byte(c.in)); got != c.want {
			t.Errorf("Hash64 bytes(%q) = %016x, want %016x", c.in, got, c.want)
		}
	}
}

// TestRingDistributionAndStability: vnode placement spreads keys
// roughly evenly, removal moves only the removed member's keys, and
// Owners returns distinct members in deterministic order.
func TestRingDistribution(t *testing.T) {
	r := NewRing(128)
	names := []string{"n0", "n1", "n2"}
	for _, n := range names {
		r.Add(n)
	}
	const keys = 30000
	count := map[string]int{}
	owner := make([]string, keys)
	for i := 0; i < keys; i++ {
		k := Hash64String(string(rune(i)) + "key")
		o := r.Owner(k)
		owner[i] = o
		count[o]++
	}
	for _, n := range names {
		frac := float64(count[n]) / keys
		if frac < 0.20 || frac > 0.47 {
			t.Errorf("member %s owns %.1f%% of keys; want roughly a third", n, 100*frac)
		}
	}

	// Removing n1 must not move any key that n0 or n2 already owned.
	r.Remove("n1")
	for i := 0; i < keys; i++ {
		if owner[i] == "n1" {
			continue
		}
		k := Hash64String(string(rune(i)) + "key")
		if got := r.Owner(k); got != owner[i] {
			t.Fatalf("key %d moved %s -> %s on unrelated removal", i, owner[i], got)
		}
	}
	r.Add("n1")

	owners := r.Owners(12345, 3)
	if len(owners) != 3 {
		t.Fatalf("Owners returned %v, want 3 distinct members", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("Owners returned duplicate %q: %v", o, owners)
		}
		seen[o] = true
	}
	again := r.Owners(12345, 3)
	for i := range owners {
		if owners[i] != again[i] {
			t.Fatalf("Owners not deterministic: %v vs %v", owners, again)
		}
	}
}
