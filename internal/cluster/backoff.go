package cluster

import (
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"
)

// backoffDelay computes the sleep before retry attempt (0-based): an
// exponential base<<attempt capped at max, with half-width jitter
// (uniform in [d/2, d]) so a fleet of clients retrying a recovering
// node does not re-stampede it in lockstep.
func backoffDelay(attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(half)+1))
}

// parseRetryAfter reads a 503's Retry-After header (delta-seconds or
// HTTP-date), returning 0 when absent or unparsable. The returned hint
// is what the node asked for; callers take the max of it and their own
// backoff.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if sec, err := strconv.Atoi(v); err == nil {
		if sec < 0 {
			return 0
		}
		return time.Duration(sec) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
