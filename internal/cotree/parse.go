package cotree

import (
	"fmt"
	"strings"
)

// The text format is an s-expression per node:
//
//	tree  := leaf | "(" label tree tree ... ")"
//	label := "0" | "1"
//	leaf  := identifier (no whitespace or parentheses)
//
// Example (the cograph of the paper's Fig. 1 has the shape):
//
//	(0 (1 a (0 b c)) (1 d e))
//
// Whitespace separates tokens and is otherwise ignored.

// String serialises the cotree in the text format.
func (t *Tree) String() string {
	var sb strings.Builder
	t.write(&sb, t.Root)
	return sb.String()
}

func (t *Tree) write(sb *strings.Builder, u int) {
	if t.Label[u] == LabelLeaf {
		sb.WriteString(t.Name(t.VertexOf[u]))
		return
	}
	fmt.Fprintf(sb, "(%d", t.Label[u])
	for _, c := range t.Children[u] {
		sb.WriteByte(' ')
		t.write(sb, c)
	}
	sb.WriteByte(')')
}

type parser struct {
	toks []string
	pos  int
	t    *Tree
}

// Parse reads a cotree from the text format and validates it.
func Parse(src string) (*Tree, error) {
	toks := tokenize(src)
	if len(toks) == 0 {
		return nil, fmt.Errorf("cotree: empty input")
	}
	p := &parser{toks: toks, t: &Tree{Root: 0}}
	root, err := p.node(-1)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("cotree: trailing input at token %d (%q)", p.pos, p.toks[p.pos])
	}
	p.t.Root = root
	if err := p.t.Validate(); err != nil {
		return nil, err
	}
	return p.t, nil
}

// MustParse is Parse for known-good literals in tests and examples.
func MustParse(src string) *Tree {
	t, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return t
}

func tokenize(src string) []string {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		default:
			j := i
			for j < len(src) && !strings.ContainsRune("() \t\n\r", rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks
}

func (p *parser) node(parent int) (int, error) {
	if p.pos >= len(p.toks) {
		return -1, fmt.Errorf("cotree: unexpected end of input")
	}
	tok := p.toks[p.pos]
	p.pos++
	t := p.t
	if tok == ")" {
		return -1, fmt.Errorf("cotree: unexpected ')' at token %d", p.pos-1)
	}
	if tok != "(" {
		// Leaf.
		id := len(t.Label)
		v := len(t.LeafOf)
		t.Label = append(t.Label, LabelLeaf)
		t.Parent = append(t.Parent, parent)
		t.Children = append(t.Children, nil)
		t.VertexOf = append(t.VertexOf, v)
		t.LeafOf = append(t.LeafOf, id)
		t.Names = append(t.Names, tok)
		return id, nil
	}
	if p.pos >= len(p.toks) {
		return -1, fmt.Errorf("cotree: missing label after '('")
	}
	var label int8
	switch p.toks[p.pos] {
	case "0":
		label = Label0
	case "1":
		label = Label1
	default:
		return -1, fmt.Errorf("cotree: invalid label %q (want 0 or 1)", p.toks[p.pos])
	}
	p.pos++
	id := len(t.Label)
	t.Label = append(t.Label, label)
	t.Parent = append(t.Parent, parent)
	t.Children = append(t.Children, nil)
	t.VertexOf = append(t.VertexOf, -1)
	for {
		if p.pos >= len(p.toks) {
			return -1, fmt.Errorf("cotree: missing ')'")
		}
		if p.toks[p.pos] == ")" {
			p.pos++
			break
		}
		c, err := p.node(id)
		if err != nil {
			return -1, err
		}
		t.Children[id] = append(t.Children[id], c)
	}
	return id, nil
}
