package cotree

// AdjOracle answers vertex-adjacency queries against a cotree via lowest
// common ancestors (property (6) of the paper: x ~ y iff LCA(leaf(x),
// leaf(y)) is a 1-node). It uses binary lifting: O(n log n) setup and
// O(log n) per query, which is ample for verification workloads.
type AdjOracle struct {
	t     *Tree
	depth []int
	up    [][]int // up[k][v] = 2^k-th ancestor, -1 above the root
}

// NewAdjOracle builds the oracle.
func NewAdjOracle(t *Tree) *AdjOracle {
	n := t.NumNodes()
	o := &AdjOracle{t: t, depth: make([]int, n)}
	// Depths by iterative DFS.
	stack := []int{t.Root}
	o.depth[t.Root] = 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range t.Children[v] {
			o.depth[c] = o.depth[v] + 1
			stack = append(stack, c)
		}
	}
	levels := 1
	for v := 1; v < n; v <<= 1 {
		levels++
	}
	o.up = make([][]int, levels)
	o.up[0] = append([]int(nil), t.Parent...)
	for k := 1; k < levels; k++ {
		o.up[k] = make([]int, n)
		for v := 0; v < n; v++ {
			if a := o.up[k-1][v]; a >= 0 {
				o.up[k][v] = o.up[k-1][a]
			} else {
				o.up[k][v] = -1
			}
		}
	}
	return o
}

// LCA returns the lowest common ancestor of two nodes.
func (o *AdjOracle) LCA(a, b int) int {
	if o.depth[a] < o.depth[b] {
		a, b = b, a
	}
	diff := o.depth[a] - o.depth[b]
	for k := 0; diff > 0; k++ {
		if diff&1 == 1 {
			a = o.up[k][a]
		}
		diff >>= 1
	}
	if a == b {
		return a
	}
	for k := len(o.up) - 1; k >= 0; k-- {
		if o.up[k][a] != o.up[k][b] {
			a, b = o.up[k][a], o.up[k][b]
		}
	}
	return o.up[0][a]
}

// Adjacent reports whether vertices x and y are adjacent in the cograph.
func (o *AdjOracle) Adjacent(x, y int) bool {
	if x == y {
		return false
	}
	l := o.LCA(o.t.LeafOf[x], o.t.LeafOf[y])
	return o.t.Label[l] == Label1
}

// Degree returns the degree of vertex x (O(n) per call; for tests).
func (o *AdjOracle) Degree(x int) int {
	d := 0
	for y := 0; y < o.t.NumVertices(); y++ {
		if o.Adjacent(x, y) {
			d++
		}
	}
	return d
}
