package cotree

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"pathcover/internal/pram"
)

// randomTree builds a random canonical cotree with n leaves.
func randomTree(rng *rand.Rand, n int, rootLabel int8) *Tree {
	if n == 1 {
		return Single(fmt.Sprintf("v%d", rng.IntN(1<<30)))
	}
	k := 2
	if n > 2 {
		k = 2 + rng.IntN(min(n-1, 4)-1)
	}
	sizes := make([]int, k)
	for i := range sizes {
		sizes[i] = 1
	}
	for extra := n - k; extra > 0; extra-- {
		sizes[rng.IntN(k)]++
	}
	childLabel := Label0
	if rootLabel == Label0 {
		childLabel = Label1
	}
	parts := make([]*Tree, k)
	for i := range parts {
		parts[i] = randomTree(rng, sizes[i], childLabel)
	}
	if rootLabel == Label1 {
		return Join(parts...)
	}
	return Union(parts...)
}

func TestSingleValidates(t *testing.T) {
	s := Single("x")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumVertices() != 1 || s.Name(0) != "x" {
		t.Fatal("single vertex wrong")
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	cases := []string{
		"a",
		"(0 a b)",
		"(1 a b c)",
		"(0 (1 a b) c)",
		"(1 (0 a (1 b c)) (0 d e) f)",
		"(0 x (1 y z) (1 p q r))",
	}
	for _, src := range cases {
		tr, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if got := tr.String(); got != src {
			t.Errorf("round trip %q -> %q", src, got)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("Parse(%q) invalid: %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(",
		"()",
		"(2 a b)",
		"(0 a)",         // single child violates property (4)
		"(0 a b",        // missing close
		"(0 (0 a b) c)", // labels do not alternate
		"a b",           // trailing input
		")",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestUnionJoinMerging(t *testing.T) {
	// Union of 0-rooted trees must merge roots (canonical form).
	u1 := Union(Single("a"), Single("b"))
	u2 := Union(u1, Single("c"))
	if got := len(u2.Children[u2.Root]); got != 3 {
		t.Errorf("merged union root has %d children, want 3", got)
	}
	j := Join(u2, Single("d"))
	if j.Label[j.Root] != Label1 {
		t.Error("join root not a 1-node")
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestComplementInvolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 20; trial++ {
		tr := randomTree(rng, 1+rng.IntN(30), Label1)
		cc := Complement(Complement(tr))
		if tr.String() != cc.String() {
			t.Fatalf("double complement changed tree:\n%s\n%s", tr, cc)
		}
	}
}

func TestComplementFlipsAdjacency(t *testing.T) {
	tr := MustParse("(1 (0 a b) c)")
	co := Complement(tr)
	o1 := NewAdjOracle(tr)
	o2 := NewAdjOracle(co)
	for x := 0; x < 3; x++ {
		for y := x + 1; y < 3; y++ {
			if o1.Adjacent(x, y) == o2.Adjacent(x, y) {
				t.Errorf("complement did not flip edge {%d,%d}", x, y)
			}
		}
	}
}

func TestOracleKnownGraph(t *testing.T) {
	// (1 (0 a b) c): join of {a,b} (no edge) with c -> edges ac, bc.
	tr := MustParse("(1 (0 a b) c)")
	o := NewAdjOracle(tr)
	if o.Adjacent(0, 1) {
		t.Error("a-b adjacent, want not")
	}
	if !o.Adjacent(0, 2) || !o.Adjacent(1, 2) {
		t.Error("a-c or b-c not adjacent")
	}
	if o.Adjacent(0, 0) {
		t.Error("self adjacency")
	}
	if o.Degree(2) != 2 {
		t.Errorf("deg(c)=%d want 2", o.Degree(2))
	}
}

func TestCliqueAndEmpty(t *testing.T) {
	// K_5 as nested joins, empty graph as union.
	parts := make([]*Tree, 5)
	for i := range parts {
		parts[i] = Single(fmt.Sprintf("k%d", i))
	}
	k5 := Join(parts...)
	o := NewAdjOracle(k5)
	for x := 0; x < 5; x++ {
		if o.Degree(x) != 4 {
			t.Errorf("K5 degree(%d)=%d", x, o.Degree(x))
		}
	}
	e5 := Union(parts...)
	oe := NewAdjOracle(e5)
	for x := 0; x < 5; x++ {
		if oe.Degree(x) != 0 {
			t.Errorf("empty graph degree(%d)=%d", x, oe.Degree(x))
		}
	}
}

// binAdjacent answers adjacency on a binarized cotree by walking to the
// LCA with parent pointers (slow reference).
func binAdjacent(b *Bin, x, y int) bool {
	if x == y {
		return false
	}
	anc := map[int]bool{}
	for v := b.LeafOf[x]; v >= 0; v = b.Parent[v] {
		anc[v] = true
	}
	for v := b.LeafOf[y]; v >= 0; v = b.Parent[v] {
		if anc[v] {
			return b.One[v]
		}
	}
	return false
}

func TestBinarizePreservesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	s := pram.New(4, pram.WithGrain(8))
	for trial := 0; trial < 25; trial++ {
		tr := randomTree(rng, 1+rng.IntN(40), Label0)
		o := NewAdjOracle(tr)
		b := tr.Binarize(s)
		n := tr.NumVertices()
		// structural: every internal node has exactly two children
		for v := 0; v < b.NumNodes(); v++ {
			l, r := b.Left[v], b.Right[v]
			if (l < 0) != (r < 0) {
				t.Fatalf("binarized node %d has one child", v)
			}
		}
		if b.NumNodes() != 2*n-1 {
			t.Fatalf("binarized tree has %d nodes for %d vertices, want %d",
				b.NumNodes(), n, 2*n-1)
		}
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				if o.Adjacent(x, y) != binAdjacent(b, x, y) {
					t.Fatalf("trial %d: adjacency of (%d,%d) changed by binarization\n%s",
						trial, x, y, tr)
				}
			}
		}
	}
}

func TestMakeLeftist(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	s := pram.New(4, pram.WithGrain(8))
	for trial := 0; trial < 25; trial++ {
		tr := randomTree(rng, 2+rng.IntN(60), Label1)
		o := NewAdjOracle(tr)
		b := tr.Binarize(s)
		L := b.MakeLeftist(s, uint64(trial))
		if !b.IsLeftist(s, L) {
			t.Fatal("MakeLeftist did not produce a leftist tree")
		}
		if L[b.Root] != tr.NumVertices() {
			t.Fatalf("L(root)=%d want %d", L[b.Root], tr.NumVertices())
		}
		n := tr.NumVertices()
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				if o.Adjacent(x, y) != binAdjacent(b, x, y) {
					t.Fatalf("leftist reorder changed adjacency of (%d,%d)", x, y)
				}
			}
		}
	}
}

// Fig. 3 of the paper: binarizing a k-ary node yields a left chain u1..
// u_{k-1} where u1 holds v1,v2 and u_i holds u_{i-1}, v_{i+1}.
func TestFig3Binarize(t *testing.T) {
	tr := MustParse("(1 a b c d e)")
	s := pram.NewSerial()
	b := tr.Binarize(s)
	// 5 leaves, 4 chain nodes; root = top of chain.
	if b.NumNodes() != 9 {
		t.Fatalf("nodes=%d want 9", b.NumNodes())
	}
	// Walk down the left spine: each right child must be a leaf e,d,c,
	// then the last left pair a,b.
	v := b.Root
	var rights []int
	for b.Left[v] >= 0 {
		if !b.One[v] {
			t.Fatal("chain node lost its 1-label")
		}
		rights = append(rights, b.Right[v])
		v = b.Left[v]
	}
	if len(rights) != 4 {
		t.Fatalf("chain length %d want 4", len(rights))
	}
	// rights are leaves e, d, c, b (vertex ids 4,3,2,1); v is leaf a.
	want := []int{4, 3, 2, 1}
	for i, r := range rights {
		if b.VertexOf[r] != want[i] {
			t.Fatalf("right[%d] is vertex %d want %d", i, b.VertexOf[r], want[i])
		}
	}
	if b.VertexOf[v] != 0 {
		t.Fatalf("bottom of chain is vertex %d want 0", b.VertexOf[v])
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := MustParse("(0 a (1 b c))")
	tr.Parent[1] = 2 // break a link
	if err := tr.Validate(); err == nil {
		t.Error("corrupted parent not caught")
	}
	tr2 := MustParse("(0 a (1 b c))")
	tr2.Label[0] = Label1 // root label 1 with child label 1: not alternating
	if err := tr2.Validate(); err == nil {
		t.Error("non-alternating labels not caught")
	}
}

func TestRandomTreeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := rand.New(rand.NewPCG(seed, 9))
		tr := randomTree(rng, n, Label1)
		if tr.Validate() != nil || tr.NumVertices() != n {
			return false
		}
		// Parse(String) is an identity on canonical trees.
		back, err := Parse(tr.String())
		if err != nil {
			return false
		}
		return back.String() == tr.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBigBinarize(t *testing.T) {
	// A star-like cotree with one huge 1-node stresses the parallel chain
	// allocation.
	var sb strings.Builder
	sb.WriteString("(1")
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, " x%d", i)
	}
	sb.WriteString(")")
	tr := MustParse(sb.String())
	s := pram.New(pram.ProcsFor(5000), pram.WithGrain(64))
	b := tr.Binarize(s)
	if b.NumNodes() != 2*5000-1 {
		t.Fatalf("nodes=%d", b.NumNodes())
	}
	L := b.MakeLeftist(s, 3)
	if L[b.Root] != 5000 {
		t.Fatalf("L(root)=%d", L[b.Root])
	}
}
