package cotree

import "testing"

// FuzzParse: the parser must never panic, and any accepted input must
// produce a validating tree that round-trips through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"a",
		"(0 a b)",
		"(1 (0 a b) c)",
		"(1 (0 (1 a b) c) (0 d e f))",
		"((((",
		"(0 a",
		"(2 a b)",
		")",
		"(1 a b))",
		"(0 (1 x y) z",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := Parse(src)
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("Parse accepted %q but Validate failed: %v", src, verr)
		}
		back, err := Parse(tr.String())
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", src, err)
		}
		if back.String() != tr.String() {
			t.Fatalf("round trip not stable: %q -> %q", tr.String(), back.String())
		}
	})
}
