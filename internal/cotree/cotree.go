// Package cotree implements the cotree representation of cographs: the
// unique (up to isomorphism) rooted tree of a complement-reducible graph,
// with 0/1-labelled internal nodes whose labels alternate along every
// root path, at least two children per internal node, and one leaf per
// graph vertex. Two vertices are adjacent exactly when their lowest
// common ancestor is a 1-node (properties (4)-(6) of the paper's §1).
//
// The package provides construction by the defining closure operations
// (single vertex, disjoint union, join, complement), a text format,
// validation, the binarization of the paper's Step 1, the leftist
// reordering of Step 2, and an LCA-based adjacency oracle used for
// verification.
package cotree

import (
	"fmt"
	"math/rand/v2"

	"pathcover/internal/par"
	"pathcover/internal/pram"
)

// Label values for nodes.
const (
	LabelLeaf int8 = -1 // leaf (graph vertex)
	Label0    int8 = 0  // union node
	Label1    int8 = 1  // join node
)

// Tree is a cotree in arena form.
type Tree struct {
	Label    []int8  // per node: Label0, Label1 or LabelLeaf
	Parent   []int   // per node: parent id or -1 for the root
	Children [][]int // per node: child ids in order (empty for leaves)
	Root     int     // root node id
	VertexOf []int   // per node: vertex id for leaves, -1 for internal
	LeafOf   []int   // per vertex: its leaf node id
	Names    []string
}

// NumNodes returns the number of cotree nodes.
func (t *Tree) NumNodes() int { return len(t.Label) }

// NumVertices returns the number of graph vertices (leaves).
func (t *Tree) NumVertices() int { return len(t.LeafOf) }

// Name returns the display name of a vertex.
func (t *Tree) Name(v int) string {
	if v >= 0 && v < len(t.Names) && t.Names[v] != "" {
		return t.Names[v]
	}
	return fmt.Sprintf("v%d", v)
}

// Single returns the cotree of a single-vertex graph.
func Single(name string) *Tree {
	return &Tree{
		Label:    []int8{LabelLeaf},
		Parent:   []int{-1},
		Children: [][]int{nil},
		Root:     0,
		VertexOf: []int{0},
		LeafOf:   []int{0},
		Names:    []string{name},
	}
}

// Union returns the cotree of the disjoint union of the given cographs.
// Children with 0-labelled roots are merged into the new root so the
// result stays canonical (alternating labels, >= 2 children).
func Union(ts ...*Tree) *Tree { return combine(Label0, ts) }

// Join returns the cotree of the join (complete connection) of the given
// cographs, merging 1-labelled roots for canonical form.
func Join(ts ...*Tree) *Tree { return combine(Label1, ts) }

// Complement returns the cotree of the complement graph: internal labels
// flip. A single leaf is self-complementary.
func Complement(t *Tree) *Tree {
	out := t.Clone()
	for i, l := range out.Label {
		switch l {
		case Label0:
			out.Label[i] = Label1
		case Label1:
			out.Label[i] = Label0
		}
	}
	return out
}

// Permute returns a rewritten presentation of the same graph: every
// internal node's child list is shuffled and the vertex numbering is
// permuted, both deterministically in the seed. Names travel with the
// leaves, so the vertex named "x" before is still named "x" after —
// only its id changed. The result is isomorphic to t (identical up to
// relabelling), which makes Permute the generator of choice for
// exercising canonical-identity machinery: Canonicalize(t) and
// Canonicalize(Permute(t, s)) must agree for every s.
func Permute(t *Tree, seed uint64) *Tree {
	rng := rand.New(rand.NewPCG(seed, 0x9e37))
	out := t.Clone()
	for _, ch := range out.Children {
		rng.Shuffle(len(ch), func(i, j int) { ch[i], ch[j] = ch[j], ch[i] })
	}
	nv := t.NumVertices()
	perm := rng.Perm(nv) // perm[old vertex id] = new vertex id
	for u, v := range t.VertexOf {
		if v >= 0 {
			out.VertexOf[u] = perm[v]
		}
	}
	for v := 0; v < nv; v++ {
		out.LeafOf[perm[v]] = t.LeafOf[v]
	}
	if len(out.Names) != nv {
		out.Names = make([]string, nv)
	}
	for v := 0; v < nv; v++ {
		out.Names[perm[v]] = t.Name(v)
	}
	return out
}

// Clone returns a deep copy.
func (t *Tree) Clone() *Tree {
	out := &Tree{
		Label:    append([]int8(nil), t.Label...),
		Parent:   append([]int(nil), t.Parent...),
		Children: make([][]int, len(t.Children)),
		Root:     t.Root,
		VertexOf: append([]int(nil), t.VertexOf...),
		LeafOf:   append([]int(nil), t.LeafOf...),
		Names:    append([]string(nil), t.Names...),
	}
	for i, c := range t.Children {
		out.Children[i] = append([]int(nil), c...)
	}
	return out
}

// combine builds a cotree whose root has the given label over the parts,
// merging parts whose root already carries that label.
func combine(label int8, ts []*Tree) *Tree {
	if len(ts) == 0 {
		panic("cotree: combine of zero trees")
	}
	if len(ts) == 1 {
		return ts[0].Clone()
	}
	out := &Tree{Root: 0}
	out.Label = append(out.Label, label)
	out.Parent = append(out.Parent, -1)
	out.Children = append(out.Children, nil)
	out.VertexOf = append(out.VertexOf, -1)
	for _, t := range ts {
		vertexBase := len(out.LeafOf)
		out.LeafOf = append(out.LeafOf, make([]int, t.NumVertices())...)
		out.Names = append(out.Names, make([]string, t.NumVertices())...)
		base := len(out.Label)
		// Copy all nodes of t; node ids shift by base.
		for i := 0; i < t.NumNodes(); i++ {
			out.Label = append(out.Label, t.Label[i])
			if t.Parent[i] < 0 {
				out.Parent = append(out.Parent, -1) // fixed up below
			} else {
				out.Parent = append(out.Parent, t.Parent[i]+base)
			}
			ch := make([]int, len(t.Children[i]))
			for j, c := range t.Children[i] {
				ch[j] = c + base
			}
			out.Children = append(out.Children, ch)
			if v := t.VertexOf[i]; v >= 0 {
				out.VertexOf = append(out.VertexOf, v+vertexBase)
				out.LeafOf[v+vertexBase] = i + base
				out.Names[v+vertexBase] = t.Name(v)
			} else {
				out.VertexOf = append(out.VertexOf, -1)
			}
		}
		r := t.Root + base
		if t.Label[t.Root] == label {
			// Merge: lift t's root children under the new root.
			for _, c := range t.Children[t.Root] {
				out.Parent[c+base] = 0
				out.Children[0] = append(out.Children[0], c+base)
			}
			// r becomes dead; mark it harmless (it stays allocated but is
			// unreachable; Compact removes it).
			out.Parent[r] = -2
		} else {
			out.Parent[r] = 0
			out.Children[0] = append(out.Children[0], r)
		}
	}
	return out.Compact()
}

// Compact removes unreachable nodes (Parent == -2 markers) and renumbers.
func (t *Tree) Compact() *Tree {
	n := t.NumNodes()
	remap := make([]int, n)
	kept := 0
	for i := 0; i < n; i++ {
		if t.Parent[i] == -2 {
			remap[i] = -1
		} else {
			remap[i] = kept
			kept++
		}
	}
	if kept == n {
		return t
	}
	out := &Tree{
		Label:    make([]int8, kept),
		Parent:   make([]int, kept),
		Children: make([][]int, kept),
		VertexOf: make([]int, kept),
		LeafOf:   make([]int, len(t.LeafOf)),
		Names:    t.Names,
	}
	for i := 0; i < n; i++ {
		j := remap[i]
		if j < 0 {
			continue
		}
		out.Label[j] = t.Label[i]
		if t.Parent[i] < 0 {
			out.Parent[j] = -1
		} else {
			out.Parent[j] = remap[t.Parent[i]]
		}
		for _, c := range t.Children[i] {
			out.Children[j] = append(out.Children[j], remap[c])
		}
		out.VertexOf[j] = t.VertexOf[i]
		if v := t.VertexOf[i]; v >= 0 {
			out.LeafOf[v] = j
		}
	}
	out.Root = remap[t.Root]
	return out
}

// Validate checks the structural invariants of a cotree: a single root,
// consistent parent/child links, at least two children per internal
// node, alternating labels on internal edges, and a consistent
// leaf-vertex bijection.
func (t *Tree) Validate() error {
	n := t.NumNodes()
	if n == 0 {
		return fmt.Errorf("cotree: empty tree")
	}
	if t.Root < 0 || t.Root >= n {
		return fmt.Errorf("cotree: root %d out of range", t.Root)
	}
	if t.Parent[t.Root] != -1 {
		return fmt.Errorf("cotree: root %d has parent %d", t.Root, t.Parent[t.Root])
	}
	seen := 0
	leaves := 0
	for i := 0; i < n; i++ {
		if i != t.Root && (t.Parent[i] < 0 || t.Parent[i] >= n) {
			return fmt.Errorf("cotree: node %d has invalid parent %d", i, t.Parent[i])
		}
		for _, c := range t.Children[i] {
			if c < 0 || c >= n || t.Parent[c] != i {
				return fmt.Errorf("cotree: child link %d->%d inconsistent", i, c)
			}
			seen++
		}
		switch t.Label[i] {
		case LabelLeaf:
			if len(t.Children[i]) != 0 {
				return fmt.Errorf("cotree: leaf %d has children", i)
			}
			if v := t.VertexOf[i]; v < 0 || v >= len(t.LeafOf) || t.LeafOf[v] != i {
				return fmt.Errorf("cotree: leaf %d has bad vertex mapping", i)
			}
			leaves++
		case Label0, Label1:
			if len(t.Children[i]) < 2 {
				return fmt.Errorf("cotree: internal node %d has %d children (property (4) needs >= 2)",
					i, len(t.Children[i]))
			}
			if t.VertexOf[i] != -1 {
				return fmt.Errorf("cotree: internal node %d mapped to vertex %d", i, t.VertexOf[i])
			}
			if p := t.Parent[i]; p >= 0 && t.Label[p] == t.Label[i] {
				return fmt.Errorf("cotree: labels do not alternate on edge %d->%d (property (5))", p, i)
			}
		default:
			return fmt.Errorf("cotree: node %d has invalid label %d", i, t.Label[i])
		}
	}
	if seen != n-1 {
		return fmt.Errorf("cotree: %d child links for %d nodes (not a tree)", seen, n)
	}
	if leaves != len(t.LeafOf) {
		return fmt.Errorf("cotree: %d leaves but %d vertices", leaves, len(t.LeafOf))
	}
	// Reachability from the root (guards against cycles with correct counts).
	mark := make([]bool, n)
	stack := []int{t.Root}
	mark[t.Root] = true
	reached := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		reached++
		for _, c := range t.Children[v] {
			if !mark[c] {
				mark[c] = true
				stack = append(stack, c)
			}
		}
	}
	if reached != n {
		return fmt.Errorf("cotree: only %d of %d nodes reachable from root", reached, n)
	}
	return nil
}

// BinTree is the width-generic binary forest of internal/par, re-aliased
// so BinIx can embed it under the field name the int-width code has
// always used.
type BinTree[I par.Ix] = par.BinTreeIx[I]

// BinIx is a binarized cotree (the paper's Tb(G), or Tbl(G) after
// MakeLeftist), generic over the index width (see par.Ix): every
// internal node has exactly two children; the labels of chain nodes
// introduced by binarization repeat their source node's label, which
// preserves the LCA adjacency semantics.
type BinIx[I par.Ix] struct {
	BinTree[I]
	One      []bool // true for 1-nodes (meaningful on internal nodes)
	VertexOf []I    // node -> vertex (-1 internal)
	LeafOf   []I    // vertex -> node
	Root     int
}

// Bin is the int-width binarized cotree, the historical form.
type Bin = BinIx[int]

// NumNodes returns the node count of the binarized tree.
func (b *BinIx[I]) NumNodes() int { return b.Len() }

// NumVertices returns the vertex count.
func (b *BinIx[I]) NumVertices() int { return len(b.LeafOf) }

// Release returns the binarized tree's slices to the Sim's arena (they
// were drawn from it by Binarize). The Bin must not be used afterwards.
func (b *BinIx[I]) Release(s *pram.Sim) {
	par.ReleaseBinTreeIx(s, b.BinTree)
	pram.Release(s, b.One)
	pram.Release(s, b.VertexOf)
	pram.Release(s, b.LeafOf)
	b.BinTree = BinTree[I]{}
	b.One, b.VertexOf, b.LeafOf = nil, nil, nil
}

// Binarize performs Step 1 of the paper: it replaces every k-ary internal
// node (k >= 3) by a left-leaning chain of k-1 binary nodes carrying the
// same label. The result has n leaves and n-1 internal nodes.
//
// The phase structure is parallel: chain slots are allocated by a prefix
// sum over (k-1) and each new node derives its links in O(1).
func (t *Tree) Binarize(s *pram.Sim) *Bin {
	return BinarizeIx[int](s, t)
}

// BinarizeIx is Binarize onto a chosen index width (see par.Ix): the
// caller guarantees that the binarized tree's 2n-1 node ids — and the 3x
// larger Euler-tour item ids derived from them downstream — fit in I.
// The simulated cost is width-blind.
func BinarizeIx[I par.Ix](s *pram.Sim, t *Tree) *BinIx[I] {
	nOrig := t.NumNodes()
	nv := t.NumVertices()
	if nv == 1 {
		b := &BinIx[I]{BinTree: par.GrabBinTreeIx[I](s, 1), One: pram.Grab[bool](s, 1),
			VertexOf: pram.GrabNoClear[I](s, 1), LeafOf: pram.GrabNoClear[I](s, 1), Root: 0}
		b.VertexOf[0], b.LeafOf[0] = 0, 0
		return b
	}

	// Chain lengths: leaves 0, internal k-1 new nodes.
	chainLen := pram.Grab[I](s, nOrig)
	s.ParallelForRange(nOrig, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			if t.Label[u] != LabelLeaf {
				chainLen[u] = I(len(t.Children[u]) - 1)
			}
		}
	})
	// New ids: vertices keep ids 0..nv-1 (leaf of vertex v is node v);
	// chain nodes follow from nv.
	chainOff, totalChain := scanOffsetIx(s, chainLen, I(nv))
	total := nv + totalChain
	b := &BinIx[I]{
		BinTree:  par.GrabBinTreeIx[I](s, total),
		One:      pram.Grab[bool](s, total),
		VertexOf: pram.GrabNoClear[I](s, total),
		LeafOf:   pram.GrabNoClear[I](s, nv),
		Root:     0,
	}
	s.ParallelForRange(total, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			b.VertexOf[x] = -1
		}
	})
	s.ParallelForRange(nv, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			b.VertexOf[v] = I(v)
			b.LeafOf[v] = I(v)
		}
	})

	// rep(u) = the binarized subtree root for original node u: its leaf
	// id for leaves, the top chain node for internal nodes.
	rep := func(u int) I {
		if t.Label[u] == LabelLeaf {
			return I(t.VertexOf[u])
		}
		return chainOff[u] + chainLen[u] - 1
	}

	// Wire each chain node: chain node j (0-based from the bottom) of
	// original node u has left = previous chain node (or rep of child 0)
	// and right = rep of child j+1.
	owner, slot, _ := par.DistributeIx(s, chainLen)
	s.ForCostRange(totalChain, 2, func(klo, khi int) {
		for k := klo; k < khi; k++ {
			u := int(owner[k])
			j := int(slot[k])
			x := chainOff[u] + I(j)
			b.One[x] = t.Label[u] == Label1
			var l I
			if j == 0 {
				l = rep(t.Children[u][0])
			} else {
				l = x - 1
			}
			r := rep(t.Children[u][j+1])
			b.Left[x] = l
			b.Right[x] = r
			b.Parent[l] = x
			b.Parent[r] = x
		}
	})
	b.Root = int(rep(t.Root))
	pram.Release(s, chainLen)
	pram.Release(s, chainOff)
	pram.Release(s, owner)
	pram.Release(s, slot)
	return b
}

// ScanIntOffset is a prefix sum with a starting base, returning also the
// total (excluding the base).
func ScanIntOffset(s *pram.Sim, in []int, base int) (off []int, total int) {
	return scanOffsetIx(s, in, base)
}

// scanOffsetIx is the width-generic ScanIntOffset.
func scanOffsetIx[I par.Ix](s *pram.Sim, in []I, base I) (off []I, total int) {
	off, totalI := par.ScanIx(s, in)
	s.ParallelForRange(len(off), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			off[i] += base
		}
	})
	return off, int(totalI)
}

// LeafCounts returns L(u) — the number of leaf descendants — for every
// node of the binarized cotree (paper Step 2, via the Euler tour of
// Lemma 5.2).
func (b *BinIx[I]) LeafCounts(s *pram.Sim, seed uint64) []I {
	tour, owned := par.AcquireTourIx(s, b.BinTree, seed)
	size, leaves := tour.SubtreeCounts(s, b.BinTree)
	pram.Release(s, size)
	if owned {
		tour.Release(s)
	}
	return leaves
}

// MakeLeftist swaps children so that L(left) >= L(right) at every
// internal node (the paper's Tbl(G)); child order is immaterial to the
// represented graph. It returns L.
func (b *BinIx[I]) MakeLeftist(s *pram.Sim, seed uint64) []I {
	leaves := b.LeafCounts(s, seed)
	// Host-level look-ahead (uncharged): when the tree is already
	// leftist, the swap phase below mutates nothing and the Euler tour
	// LeafCounts left in the cache stays valid for Step 3.
	willSwap := false
	for u, nn := 0, b.NumNodes(); u < nn; u++ {
		l, r := b.Left[u], b.Right[u]
		if l >= 0 && r >= 0 && leaves[l] < leaves[r] {
			willSwap = true
			break
		}
	}
	s.ParallelForRange(b.NumNodes(), func(lo, hi int) {
		for u := lo; u < hi; u++ {
			l, r := b.Left[u], b.Right[u]
			if l >= 0 && r >= 0 && leaves[l] < leaves[r] {
				b.Left[u], b.Right[u] = r, l
			}
		}
	})
	if willSwap {
		par.TouchCachedTourIx(s, b.BinTree)
	}
	return leaves
}

// IsLeftist reports whether L(left) >= L(right) holds everywhere.
func (b *BinIx[I]) IsLeftist(s *pram.Sim, L []I) bool {
	ok := true
	for u := 0; u < b.NumNodes(); u++ {
		l, r := b.Left[u], b.Right[u]
		if l >= 0 && r >= 0 && L[l] < L[r] {
			ok = false
		}
	}
	return ok
}
