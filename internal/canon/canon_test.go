package canon

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"pathcover/internal/cotree"
	"pathcover/internal/workload"
)

// --- enumeration of all unlabeled cographs up to n=10 -----------------
//
// A cograph's cotree is unique up to child order, so isomorphism
// classes of cographs on n vertices are exactly multiset-built cotrees:
// a single leaf (n=1), or a 0/1-rooted node whose >=2 children are
// leaves and opposite-kind subtrees. rooted enumerates one expression
// per class — children chosen as a multiset (sizes nonincreasing,
// option index nonincreasing within a size) so no class appears twice.
// Leaves are "@" placeholders, instantiated with fresh names at parse.

var rootedMemo = map[[2]int][]string{}

func childOptions(size, rootKind int) []string {
	if size == 1 {
		return []string{"@"}
	}
	return rooted(size, 1-rootKind)
}

func rooted(n, kind int) []string {
	key := [2]int{n, kind}
	if got, ok := rootedMemo[key]; ok {
		return got
	}
	var out []string
	var rec func(rem, maxSize, maxIdx int, kids []string)
	rec = func(rem, maxSize, maxIdx int, kids []string) {
		if rem == 0 {
			if len(kids) >= 2 {
				out = append(out, "("+strconv.Itoa(kind)+" "+strings.Join(kids, " ")+")")
			}
			return
		}
		for s := min(maxSize, rem); s >= 1; s-- {
			opts := childOptions(s, kind)
			hi := len(opts) - 1
			if s == maxSize && maxIdx < hi {
				hi = maxIdx
			}
			for i := hi; i >= 0; i-- {
				rec(rem-s, s, i, append(kids[:len(kids):len(kids)], opts[i]))
			}
		}
	}
	// Children are strictly smaller than the whole (>=2 of them), so the
	// size scan starts at n-1; this also breaks the would-be recursion
	// rooted(n,0) <-> rooted(n,1).
	rec(n, n-1, int(^uint(0)>>1), nil)
	rootedMemo[key] = out
	return out
}

func allCographs(n int) []*cotree.Tree {
	if n == 1 {
		return []*cotree.Tree{cotree.Single("v0")}
	}
	exprs := append(append([]string(nil), rooted(n, 0)...), rooted(n, 1)...)
	out := make([]*cotree.Tree, len(exprs))
	for i, e := range exprs {
		out[i] = instantiate(e)
	}
	return out
}

func instantiate(expr string) *cotree.Tree {
	var b strings.Builder
	k := 0
	for _, c := range expr {
		if c == '@' {
			fmt.Fprintf(&b, "v%d", k)
			k++
		} else {
			b.WriteRune(c)
		}
	}
	return cotree.MustParse(b.String())
}

// TestDistinctCographsNeverCollide canonicalizes every isomorphism
// class of cographs up to n=10 (class counts cross-checked against the
// known sequence) and asserts that both the canonical text form and
// the 128-bit hash separate all of them — the "distinct graphs never
// collapse" half of canonical identity, exhaustively.
func TestDistinctCographsNeverCollide(t *testing.T) {
	counts := []int{1, 2, 4, 10, 24, 66, 180, 522, 1532, 4624}
	seenHash := make(map[Hash]string)
	seenEnc := make(map[string]Hash)
	for n := 1; n <= len(counts); n++ {
		trees := allCographs(n)
		if len(trees) != counts[n-1] {
			t.Fatalf("n=%d: enumerated %d cograph classes, want %d", n, len(trees), counts[n-1])
		}
		for _, tr := range trees {
			enc := Encode(tr)
			form := Canonicalize(tr)
			if prev, dup := seenHash[form.Hash]; dup {
				t.Fatalf("hash collision between distinct cographs:\n  %s\n  %s", prev, enc)
			}
			seenHash[form.Hash] = enc
			if _, dup := seenEnc[enc]; dup {
				t.Fatalf("canonical-form collision between distinct cographs: %s", enc)
			}
			seenEnc[enc] = form.Hash
		}
	}
}

// TestPermutationInvariance: every relabelled-isomorphic presentation
// of a graph — permuted vertex ids, shuffled child order — has the
// identical canonical hash AND the identical canonical text form,
// across sizes and silhouettes.
func TestPermutationInvariance(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 33, 100, 257, 1000} {
		for shape := 0; shape < 3; shape++ {
			base := workload.Random(uint64(7*n+shape), n, workload.Shape(shape))
			wantForm := Canonicalize(base)
			wantEnc := ""
			if n <= 257 { // Encode is quadratic; ground-truth small sizes only
				wantEnc = Encode(base)
			}
			for ps := uint64(1); ps <= 3; ps++ {
				twin := cotree.Permute(base, ps)
				form := Canonicalize(twin)
				if form.Hash != wantForm.Hash {
					t.Fatalf("n=%d shape=%d permute=%d: hash %s != base %s",
						n, shape, ps, form.Hash, wantForm.Hash)
				}
				if wantEnc != "" {
					if enc := Encode(twin); enc != wantEnc {
						t.Fatalf("n=%d shape=%d permute=%d: canonical form diverged", n, shape, ps)
					}
				}
				checkPermutation(t, form)
			}
		}
	}
}

// checkPermutation asserts ToCanon and FromCanon are mutually inverse
// permutations of [0, n).
func checkPermutation(t *testing.T, f *Form) {
	t.Helper()
	n := f.N()
	if len(f.ToCanon) != n || len(f.FromCanon) != n {
		t.Fatalf("permutation lengths %d/%d, want %d", len(f.ToCanon), len(f.FromCanon), n)
	}
	for v := 0; v < n; v++ {
		c := f.ToCanon[v]
		if c < 0 || int(c) >= n {
			t.Fatalf("ToCanon[%d] = %d out of range", v, c)
		}
		if int(f.FromCanon[c]) != v {
			t.Fatalf("FromCanon[ToCanon[%d]] = %d", v, f.FromCanon[c])
		}
	}
}

// TestCanonicalNumberingIsIsomorphism: mapping vertices through
// ToCanon must preserve adjacency — the canonical numbering is an
// actual isomorphism onto the canonical representative, which is what
// lets cached covers transport between presentations.
func TestCanonicalNumberingIsIsomorphism(t *testing.T) {
	base := workload.Random(42, 80, workload.Mixed)
	twin := cotree.Permute(base, 9)
	bf, tf := Canonicalize(base), Canonicalize(twin)
	if bf.Hash != tf.Hash {
		t.Fatal("twin hash mismatch")
	}
	ab, at := cotree.NewAdjOracle(base), cotree.NewAdjOracle(twin)
	// base vertex u corresponds to twin vertex tf.FromCanon[bf.ToCanon[u]].
	n := bf.N()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			tu := tf.FromCanon[bf.ToCanon[u]]
			tv := tf.FromCanon[bf.ToCanon[v]]
			if ab.Adjacent(u, v) != at.Adjacent(int(tu), int(tv)) {
				t.Fatalf("canonical correspondence breaks adjacency at (%d,%d)", u, v)
			}
		}
	}
}

// TestHashEdges: order- and orientation-independent, edge-sensitive.
func TestHashEdges(t *testing.T) {
	a := HashEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	b := HashEdges(4, [][2]int{{3, 2}, {0, 1}, {2, 1}, {1, 0}}) // shuffled, flipped, duplicated
	if a != b {
		t.Fatal("HashEdges depends on edge order/orientation")
	}
	if c := HashEdges(4, [][2]int{{0, 1}, {1, 2}, {1, 3}}); c == a {
		t.Fatal("HashEdges ignored an edge difference")
	}
	if c := HashEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}}); c == a {
		t.Fatal("HashEdges ignored the vertex count")
	}
}

// FuzzPermutationInvariance drives random (graph, permutation) pairs
// through the property the whole cache rests on: presentations of one
// graph share a canonical hash.
func FuzzPermutationInvariance(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint8(12), uint8(0))
	f.Add(uint64(99), uint64(7), uint8(200), uint8(2))
	f.Fuzz(func(t *testing.T, gseed, pseed uint64, size, shape uint8) {
		n := int(size)%96 + 1
		base := workload.Random(gseed, n, workload.Shape(int(shape)%3))
		twin := cotree.Permute(base, pseed)
		bf, tf := Canonicalize(base), Canonicalize(twin)
		if bf.Hash != tf.Hash {
			t.Fatalf("permuted twin hash %s != %s", tf.Hash, bf.Hash)
		}
		checkPermutation(t, bf)
		checkPermutation(t, tf)
	})
}
