// Package canon computes the canonical form of a cotree: a
// representative that is identical for every cotree of the same graph
// up to vertex relabelling, together with a 128-bit content hash and
// the vertex permutation between the input's numbering and the
// canonical one.
//
// The cotree of a cograph is unique up to the order of children
// (property (6) of the paper's §1), so canonicalization is exactly a
// deterministic child ordering: children are sorted by a key of their
// subtree computed bottom-up. Two relabelled or rewritten cotrees of
// the same graph collapse to one canonical representative; distinct
// graphs never share one (the representative *is* the cotree, which
// determines the graph).
//
// Canonicalize orders children by a 128-bit subtree hash — O(n log n)
// overall, stack-free (caterpillar cotrees reach depth Θ(n)), and
// collision-safe in practice (a pair of distinct subtrees colliding on
// all 128 bits is ~2^-64 per cache lifetime). Encode produces the
// exact canonical text form with children ordered by full string
// comparison — hash-free ground truth for tests, at worst-case
// quadratic output size, so it is for small inputs only.
package canon

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"pathcover/internal/cotree"
)

// Hash is a 128-bit content hash of a canonical cotree. Equal graphs
// (up to vertex relabelling) always hash equal; distinct graphs hash
// distinct up to astronomically unlikely collisions.
type Hash struct {
	Hi, Lo uint64
}

// String renders the hash as 32 hex digits.
func (h Hash) String() string { return fmt.Sprintf("%016x%016x", h.Hi, h.Lo) }

// Less orders hashes lexicographically (Hi, then Lo).
func (h Hash) Less(o Hash) bool {
	if h.Hi != o.Hi {
		return h.Hi < o.Hi
	}
	return h.Lo < o.Lo
}

// Fold64 compresses the 128-bit hash to a single well-mixed 64-bit
// word, for consumers that key on uint64 — a consistent-hash ring
// placing graphs by canonical identity, most notably. Both halves feed
// the fold, so graphs differing in either lane land differently.
func (h Hash) Fold64() uint64 {
	return mix(mix(h.Hi, h.Lo*mulC+1), h.Hi^bits.RotateLeft64(h.Lo, 17))
}

// Form is the canonical identity of a cotree: its hash plus the vertex
// permutation between the input numbering and the canonical numbering
// (vertices numbered 0..n-1 in depth-first order of the canonically
// sorted tree). A path cover expressed in canonical numbering is valid
// for every graph of this form; remap it through FromCanon to answer
// in a particular requester's numbering.
type Form struct {
	Hash Hash
	// ToCanon maps an input vertex id to its canonical id.
	ToCanon []int32
	// FromCanon maps a canonical vertex id back to the input id.
	FromCanon []int32
}

// N returns the vertex count.
func (f *Form) N() int { return len(f.ToCanon) }

// Hash-mixing constants (splitmix64 / xxhash lineage).
const (
	mulA = 0x9e3779b97f4a7c15
	mulB = 0xbf58476d1ce4e5b9
	mulC = 0x94d049bb133111eb
)

// mix folds x into h with strong diffusion. Sequential folds over a
// canonically ordered child list give an order-sensitive combine, which
// is what we want: the order is itself canonical.
func mix(h, x uint64) uint64 {
	h ^= x * mulA
	h = bits.RotateLeft64(h, 31) * mulB
	h ^= h >> 29
	return h
}

// Subtree-hash initial values per node kind. The two lanes use
// different IVs and fold children with different multipliers, so a
// collision must hold in two decorrelated 64-bit digests at once.
const (
	ivLeafHi = 0x8f14a5c3d2e1b007
	ivLeafLo = 0x51ed2701fa35c94d
	iv0Hi    = 0xc3a5c85c97cb3127
	iv0Lo    = 0xb492b66fbe98f273
	iv1Hi    = 0x9ae16a3b2f90404f
	iv1Lo    = 0xe7037ed1a0b428db
)

// Canonicalize computes the canonical form of t. The input is not
// modified. O(n log n) time, O(n) memory, no recursion.
func Canonicalize(t *cotree.Tree) *Form {
	nn := t.NumNodes()
	nv := t.NumVertices()
	post := postOrder(t)

	// Per-node subtree digests and leaf counts, bottom-up.
	hi := make([]uint64, nn)
	lo := make([]uint64, nn)
	leaves := make([]int32, nn)
	// kids holds every node's children re-sorted by subtree digest, all
	// segments in one backing array (kids[off[u]:off[u+1]] is node u's).
	off := make([]int32, nn+1)
	for u := 0; u < nn; u++ {
		off[u+1] = off[u] + int32(len(t.Children[u]))
	}
	kids := make([]int32, off[nn])
	for _, u := range post {
		if t.Label[u] == cotree.LabelLeaf {
			hi[u], lo[u], leaves[u] = ivLeafHi, ivLeafLo, 1
			continue
		}
		seg := kids[off[u]:off[u+1]]
		for i, c := range t.Children[u] {
			seg[i] = int32(c)
		}
		sort.Slice(seg, func(a, b int) bool {
			x, y := seg[a], seg[b]
			if hi[x] != hi[y] {
				return hi[x] < hi[y]
			}
			return lo[x] < lo[y]
		})
		var h, l uint64
		if t.Label[u] == cotree.Label0 {
			h, l = iv0Hi, iv0Lo
		} else {
			h, l = iv1Hi, iv1Lo
		}
		var cnt int32
		for _, c := range seg {
			h = mix(h, hi[c])
			l = mix(l, lo[c]*mulC+1)
			cnt += leaves[c]
		}
		leaves[u] = cnt
		hi[u] = mix(h, uint64(cnt))
		lo[u] = mix(l, uint64(cnt)*mulB+uint64(len(seg)))
	}

	// Canonical vertex numbering: depth-first over the sorted children,
	// leaves numbered in visit order.
	toCanon := make([]int32, nv)
	fromCanon := make([]int32, nv)
	stack := make([]int32, 0, 64)
	stack = append(stack, int32(t.Root))
	next := int32(0)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.Label[u] == cotree.LabelLeaf {
			v := int32(t.VertexOf[u])
			toCanon[v] = next
			fromCanon[next] = v
			next++
			continue
		}
		seg := kids[off[u]:off[u+1]]
		for i := len(seg) - 1; i >= 0; i-- {
			stack = append(stack, seg[i])
		}
	}

	root := t.Root
	return &Form{
		Hash: Hash{
			Hi: mix(hi[root], uint64(nv)*mulA),
			Lo: mix(lo[root], uint64(nv)*mulC),
		},
		ToCanon:   toCanon,
		FromCanon: fromCanon,
	}
}

// postOrder returns the nodes of t in post-order, iteratively (cotree
// depth reaches Θ(n) on caterpillars).
func postOrder(t *cotree.Tree) []int32 {
	nn := t.NumNodes()
	type frame struct {
		node int32
		next int32
	}
	st := make([]frame, 0, 64)
	st = append(st, frame{int32(t.Root), 0})
	post := make([]int32, 0, nn)
	for len(st) > 0 {
		f := &st[len(st)-1]
		ch := t.Children[f.node]
		if int(f.next) < len(ch) {
			c := ch[f.next]
			f.next++
			st = append(st, frame{int32(c), 0})
			continue
		}
		post = append(post, f.node)
		st = st[:len(st)-1]
	}
	return post
}

// Encode returns the canonical text form of t's structure: leaves
// render as "*" (vertex identity is immaterial to the form) and every
// internal node's children are sorted by their full encoded string.
// Two cotrees encode equal iff they represent the same graph up to
// vertex relabelling. Exact but worst-case quadratic in output size —
// use for tests and small graphs; Canonicalize is the serving path.
func Encode(t *cotree.Tree) string {
	var enc func(u int) string
	enc = func(u int) string {
		if t.Label[u] == cotree.LabelLeaf {
			return "*"
		}
		parts := make([]string, len(t.Children[u]))
		for i, c := range t.Children[u] {
			parts[i] = enc(c)
		}
		sort.Strings(parts)
		return fmt.Sprintf("(%d %s)", t.Label[u], strings.Join(parts, " "))
	}
	return enc(t.Root)
}

// HashEdges is a content hash for raw (non-cograph) graphs: the edge
// set is normalized (undirected, sorted) and folded with n. Identical
// inputs hash equal; unlike Canonicalize this is NOT invariant under
// vertex relabelling — raw graphs have no cheap canonical form — so it
// identifies duplicate requests, not isomorphic ones.
func HashEdges(n int, edges [][2]int) Hash {
	norm := make([][2]int, len(edges))
	for i, e := range edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		norm[i] = [2]int{a, b}
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i][0] != norm[j][0] {
			return norm[i][0] < norm[j][0]
		}
		return norm[i][1] < norm[j][1]
	})
	h, l := uint64(0x27d4eb2f165667c5), uint64(0x85ebca77c2b2ae63)
	h = mix(h, uint64(n))
	l = mix(l, uint64(n)*mulB+1)
	for i, e := range norm {
		if i > 0 && e == norm[i-1] {
			continue // duplicate edges do not change the graph
		}
		x := uint64(e[0])<<32 | uint64(uint32(e[1]))
		h = mix(h, x)
		l = mix(l, x*mulC+7)
	}
	return Hash{Hi: h, Lo: l}
}
