package pram

import (
	"fmt"
	"sort"
)

// Machine is a step-synchronous PRAM with explicit shared-memory access
// auditing. It is the slow, faithful counterpart of Sim: kernels address
// each simulated processor explicitly and every memory access is logged,
// so violations of the exclusive-access discipline (the "E"s of EREW) are
// detected per superstep.
//
// Machine is used in tests and in the pram-primitives example to certify
// that the showcase kernels really are EREW programs; the production code
// paths run on Sim, which executes the same access patterns without the
// logging overhead.
type Machine struct {
	P     int
	model Model
	step  int
	seq   int // registration counter for arrays
	vios  []Violation
	log   []access
}

type access struct {
	array int
	cell  int
	proc  int
	write bool
}

// Violation reports a memory-access conflict detected during one
// superstep.
type Violation struct {
	Step   int
	Array  string
	Cell   int
	Procs  []int
	Writes int // how many of the conflicting accesses were writes
}

// String renders one access-model violation for test failures.
func (v Violation) String() string {
	return fmt.Sprintf("step %d: array %s cell %d accessed by procs %v (%d writes)",
		v.Step, v.Array, v.Cell, v.Procs, v.Writes)
}

// NewMachine returns a machine with p processors auditing the given model.
func NewMachine(p int, model Model) *Machine {
	if p < 1 {
		p = 1
	}
	return &Machine{P: p, model: model}
}

// Model returns the access discipline the machine audits.
func (m *Machine) Model() Model { return m.model }

// Step runs one superstep: kernel(p) is executed for every processor
// p in [0, P). Processors run in ascending order within the simulated
// step; for programs that obey the audited discipline the order is
// unobservable. After the kernel, the access log is scanned for
// conflicts.
func (m *Machine) Step(kernel func(p int)) {
	m.log = m.log[:0]
	for p := 0; p < m.P; p++ {
		kernel(p)
	}
	m.check()
	m.step++
}

// Steps runs k identical supersteps, passing the step index to the kernel.
func (m *Machine) Steps(k int, kernel func(step, p int)) {
	for t := 0; t < k; t++ {
		m.Step(func(p int) { kernel(t, p) })
	}
}

// StepCount returns the number of supersteps executed so far.
func (m *Machine) StepCount() int { return m.step }

// Violations returns all conflicts detected so far.
func (m *Machine) Violations() []Violation { return m.vios }

// Ok reports whether no violations were detected.
func (m *Machine) Ok() bool { return len(m.vios) == 0 }

func (m *Machine) check() {
	if m.model == CRCW || len(m.log) == 0 {
		return
	}
	l := m.log
	sort.Slice(l, func(i, j int) bool {
		if l[i].array != l[j].array {
			return l[i].array < l[j].array
		}
		if l[i].cell != l[j].cell {
			return l[i].cell < l[j].cell
		}
		return l[i].proc < l[j].proc
	})
	for i := 0; i < len(l); {
		j := i + 1
		for j < len(l) && l[j].array == l[i].array && l[j].cell == l[i].cell {
			j++
		}
		group := l[i:j]
		procs := map[int]bool{}
		writes := 0
		for _, a := range group {
			procs[a.proc] = true
			if a.write {
				writes++
			}
		}
		conflict := false
		switch m.model {
		case EREW:
			conflict = len(procs) > 1
		case CREW:
			conflict = writes > 0 && (len(procs) > 1 || writes > 1)
		}
		if conflict {
			ps := make([]int, 0, len(procs))
			for p := range procs {
				ps = append(ps, p)
			}
			sort.Ints(ps)
			m.vios = append(m.vios, Violation{
				Step:   m.step,
				Array:  fmt.Sprintf("#%d", group[0].array),
				Cell:   group[0].cell,
				Procs:  ps,
				Writes: writes,
			})
		}
		i = j
	}
}

// IntArray is a shared-memory array of ints whose accesses are audited by
// the owning Machine.
type IntArray struct {
	m    *Machine
	id   int
	data []int
}

// NewIntArray allocates an audited array of length n initialised to zero.
func (m *Machine) NewIntArray(n int) *IntArray {
	m.seq++
	return &IntArray{m: m, id: m.seq, data: make([]int, n)}
}

// NewIntArrayFrom allocates an audited array holding a copy of src.
func (m *Machine) NewIntArrayFrom(src []int) *IntArray {
	a := m.NewIntArray(len(src))
	copy(a.data, src)
	return a
}

// Len returns the array length.
func (a *IntArray) Len() int { return len(a.data) }

// Read returns cell i as processor p, logging the access.
func (a *IntArray) Read(p, i int) int {
	a.m.log = append(a.m.log, access{array: a.id, cell: i, proc: p})
	return a.data[i]
}

// Write stores v into cell i as processor p, logging the access.
func (a *IntArray) Write(p, i, v int) {
	a.m.log = append(a.m.log, access{array: a.id, cell: i, proc: p, write: true})
	a.data[i] = v
}

// Snapshot copies the current contents out (not audited; for inspection
// between supersteps).
func (a *IntArray) Snapshot() []int {
	out := make([]int, len(a.data))
	copy(out, a.data)
	return out
}
