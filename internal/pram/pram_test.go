package pram

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewClampsProcs(t *testing.T) {
	if got := New(0).Procs(); got != 1 {
		t.Fatalf("New(0).Procs() = %d, want 1", got)
	}
	if got := New(-5).Procs(); got != 1 {
		t.Fatalf("New(-5).Procs() = %d, want 1", got)
	}
	if got := New(7).Procs(); got != 7 {
		t.Fatalf("New(7).Procs() = %d, want 7", got)
	}
}

func TestProcsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2}, {4, 2}, {8, 2},
		{16, 4}, {1024, 102}, {1 << 20, (1 << 20) / 20},
	}
	for _, c := range cases {
		if got := ProcsFor(c.n); got != c.want {
			t.Errorf("ProcsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestParallelForVisitsAll(t *testing.T) {
	for _, procs := range []int{1, 3, 8, 64} {
		s := New(procs, WithGrain(4))
		const n = 1000
		seen := make([]int32, n)
		s.ParallelFor(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("procs=%d: index %d visited %d times", procs, i, c)
			}
		}
	}
}

func TestParallelForAccounting(t *testing.T) {
	s := New(4)
	s.ParallelFor(10, func(int) {})
	if s.Time() != 3 { // ceil(10/4)
		t.Errorf("Time = %d, want 3", s.Time())
	}
	if s.Work() != 10 {
		t.Errorf("Work = %d, want 10", s.Work())
	}
	s.ForCost(10, 5, func(int) {})
	if s.Time() != 3+15 {
		t.Errorf("Time = %d, want 18", s.Time())
	}
	if s.Work() != 10+50 {
		t.Errorf("Work = %d, want 60", s.Work())
	}
	if s.Phases() != 2 {
		t.Errorf("Phases = %d, want 2", s.Phases())
	}
	s.Reset()
	if s.Time() != 0 || s.Work() != 0 || s.Phases() != 0 {
		t.Errorf("Reset did not zero counters: %v", s.Stats())
	}
}

func TestParallelForZeroAndNegative(t *testing.T) {
	s := New(4)
	called := false
	s.ParallelFor(0, func(int) { called = true })
	s.ParallelFor(-3, func(int) { called = true })
	if called || s.Time() != 0 || s.Work() != 0 {
		t.Errorf("empty phases should be free: called=%v stats=%v", called, s.Stats())
	}
}

func TestBlocksCoverDisjointly(t *testing.T) {
	for _, procs := range []int{1, 3, 7, 16} {
		for _, n := range []int{1, 5, 16, 100, 1001} {
			s := New(procs, WithGrain(1))
			seen := make([]int32, n)
			s.Blocks(n, func(b, lo, hi int) {
				if hi-lo > s.BlockSize(n) {
					t.Fatalf("block %d size %d exceeds %d", b, hi-lo, s.BlockSize(n))
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("procs=%d n=%d: index %d covered %d times", procs, n, i, c)
				}
			}
			if s.Time() != int64(s.BlockSize(n)) {
				t.Fatalf("procs=%d n=%d: time %d want %d", procs, n, s.Time(), s.BlockSize(n))
			}
		}
	}
}

func TestSequentialAccounting(t *testing.T) {
	s := New(8)
	ran := false
	s.Sequential(42, func() { ran = true })
	if !ran {
		t.Fatal("Sequential body did not run")
	}
	if s.Time() != 42 || s.Work() != 42 {
		t.Errorf("stats = %v, want time=work=42", s.Stats())
	}
}

// Property: for any n and p, one ParallelFor phase satisfies the Brent
// bound time = ceil(n/p) and work = n, so work <= p*time < work + p.
func TestBrentBoundProperty(t *testing.T) {
	f := func(n uint16, p uint8) bool {
		np := int(n%5000) + 1
		pp := int(p%200) + 1
		s := New(pp, WithGrain(1<<30)) // run inline: property is about accounting
		s.ParallelFor(np, func(int) {})
		pt := int64(pp) * s.Time()
		return s.Work() == int64(np) && pt >= s.Work() && pt < s.Work()+int64(pp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersDefaultBounded(t *testing.T) {
	s := New(1 << 20)
	if s.workers > runtime.GOMAXPROCS(0) {
		t.Errorf("workers %d exceeds GOMAXPROCS %d", s.workers, runtime.GOMAXPROCS(0))
	}
	s2 := New(4, WithWorkers(2))
	if s2.workers != 2 {
		t.Errorf("WithWorkers(2) gave %d", s2.workers)
	}
}

func TestModelString(t *testing.T) {
	if EREW.String() != "EREW" || CREW.String() != "CREW" || CRCW.String() != "CRCW" {
		t.Error("model names wrong")
	}
	if Model(9).String() != "Model(9)" {
		t.Errorf("unknown model prints %q", Model(9).String())
	}
}
