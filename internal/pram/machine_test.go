package pram

import (
	"strings"
	"testing"
)

// exclusive kernel: proc p touches cell p only.
func TestMachineEREWCleanKernel(t *testing.T) {
	m := NewMachine(8, EREW)
	a := m.NewIntArray(8)
	m.Step(func(p int) { a.Write(p, p, p*p) })
	m.Step(func(p int) {
		v := a.Read(p, p)
		a.Write(p, p, v+1)
	})
	if !m.Ok() {
		t.Fatalf("clean EREW kernel flagged: %v", m.Violations())
	}
	if got := a.Snapshot()[3]; got != 10 {
		t.Errorf("cell 3 = %d, want 10", got)
	}
	if m.StepCount() != 2 {
		t.Errorf("step count = %d, want 2", m.StepCount())
	}
}

func TestMachineEREWConcurrentReadFlagged(t *testing.T) {
	m := NewMachine(4, EREW)
	a := m.NewIntArray(4)
	m.Step(func(p int) { _ = a.Read(p, 0) }) // all read cell 0
	if m.Ok() {
		t.Fatal("concurrent read not flagged under EREW")
	}
	v := m.Violations()[0]
	if v.Cell != 0 || len(v.Procs) != 4 || v.Writes != 0 {
		t.Errorf("unexpected violation: %+v", v)
	}
	if !strings.Contains(v.String(), "cell 0") {
		t.Errorf("violation string %q lacks cell", v.String())
	}
}

func TestMachineCREWAllowsConcurrentRead(t *testing.T) {
	m := NewMachine(4, CREW)
	a := m.NewIntArrayFrom([]int{7, 0, 0, 0})
	m.Step(func(p int) { _ = a.Read(p, 0) })
	if !m.Ok() {
		t.Fatalf("concurrent read flagged under CREW: %v", m.Violations())
	}
	m.Step(func(p int) { a.Write(p, 0, p) }) // concurrent write
	if m.Ok() {
		t.Fatal("concurrent write not flagged under CREW")
	}
}

func TestMachineCREWReadWriteConflictFlagged(t *testing.T) {
	m := NewMachine(2, CREW)
	a := m.NewIntArray(1)
	m.Step(func(p int) {
		if p == 0 {
			_ = a.Read(p, 0)
		} else {
			a.Write(p, 0, 9)
		}
	})
	if m.Ok() {
		t.Fatal("read+write on same cell not flagged under CREW")
	}
}

func TestMachineCRCWAllowsEverything(t *testing.T) {
	m := NewMachine(8, CRCW)
	a := m.NewIntArray(1)
	m.Step(func(p int) { a.Write(p, 0, p) })
	if !m.Ok() {
		t.Fatalf("CRCW flagged: %v", m.Violations())
	}
	// Priority semantics: highest-numbered processor wins.
	if got := a.Snapshot()[0]; got != 7 {
		t.Errorf("priority write = %d, want 7", got)
	}
}

func TestMachineSameProcDoubleAccessNotFlagged(t *testing.T) {
	m := NewMachine(4, EREW)
	a := m.NewIntArray(4)
	m.Step(func(p int) {
		v := a.Read(p, p)
		a.Write(p, p, v+1) // same proc, same cell, same step: legal
	})
	if !m.Ok() {
		t.Fatalf("single-processor read-modify-write flagged: %v", m.Violations())
	}
}

func TestMachineDistinctArraysNoCrossConflict(t *testing.T) {
	m := NewMachine(2, EREW)
	a := m.NewIntArray(1)
	b := m.NewIntArray(1)
	m.Step(func(p int) {
		if p == 0 {
			a.Write(p, 0, 1)
		} else {
			b.Write(p, 0, 2)
		}
	})
	if !m.Ok() {
		t.Fatalf("cell 0 of distinct arrays conflated: %v", m.Violations())
	}
}

// A textbook EREW prefix-sum kernel (Hillis–Steele with double buffering)
// must pass the auditor and produce correct sums.
func TestMachineEREWPrefixSumKernel(t *testing.T) {
	const n = 16
	m := NewMachine(n, EREW)
	src := m.NewIntArray(n)
	dst := m.NewIntArray(n)
	m.Step(func(p int) { src.Write(p, p, p+1) }) // a[i] = i+1
	for d := 1; d < n; d *= 2 {
		dd := d
		m.Step(func(p int) {
			v := src.Read(p, p)
			if p >= dd {
				v += src.Read(p, p-dd) // concurrent read? p and p+dd both read p... no:
				// proc p reads cells p and p-dd; proc p+dd reads p+dd and p.
				// Cell p is read by procs p and p+dd: that is a CREW kernel.
			}
			dst.Write(p, p, v)
		})
		src, dst = dst, src
	}
	// This naive kernel is CREW, not EREW: the auditor must catch it.
	if m.Ok() {
		t.Fatal("auditor failed to flag the CREW-style scan as an EREW violation")
	}

	// The EREW-correct variant copies into a separate buffer first so each
	// cell is read by exactly one processor per step.
	m2 := NewMachine(n, EREW)
	a := m2.NewIntArray(n)
	tmp := m2.NewIntArray(n)
	m2.Step(func(p int) { a.Write(p, p, p+1) })
	for d := 1; d < n; d *= 2 {
		dd := d
		m2.Step(func(p int) { tmp.Write(p, p, a.Read(p, p)) })
		m2.Step(func(p int) {
			if p >= dd {
				a.Write(p, p, a.Read(p, p)+tmp.Read(p, p-dd))
			}
		})
		// still concurrent: cell p-dd read by proc p, cell p read by proc p.
		// tmp cell x is read only by proc x+dd: exclusive. a cell p: proc p.
	}
	if !m2.Ok() {
		t.Fatalf("EREW scan flagged: %v", m2.Violations())
	}
	want := 0
	for i := 0; i < n; i++ {
		want += i + 1
	}
	if got := a.Snapshot()[n-1]; got != want {
		t.Errorf("scan total = %d, want %d", got, want)
	}
}

func TestMachineStepsHelper(t *testing.T) {
	m := NewMachine(2, CRCW)
	a := m.NewIntArray(2)
	m.Steps(3, func(step, p int) { a.Write(p, p, a.Read(p, p)+step) })
	if got := a.Snapshot()[0]; got != 0+1+2 {
		t.Errorf("cell 0 = %d, want 3", got)
	}
	if m.StepCount() != 3 {
		t.Errorf("StepCount = %d, want 3", m.StepCount())
	}
}
