package pram

import "runtime"

// Shard-aware worker sizing for multi-Sim deployments.
//
// A single Sim defaults its worker pool to GOMAXPROCS, which is right
// when it is the only executor in the process. A solver pool that owns M
// independent Sims must not let every shard claim the whole host, or M
// concurrent covers run M*GOMAXPROCS goroutines and thrash the
// scheduler. These helpers partition the host budget so that
// shards * WorkersForShards(shards) <= GOMAXPROCS always holds.

// DefaultShards is the default shard count for a solver pool on this
// host: half the scheduler budget, at least one. Half — rather than one
// shard per processor — keeps two real workers per shard when the host
// is large enough, so individual covers retain some intra-query
// parallelism while the pool still serves several queries concurrently.
func DefaultShards() int {
	return max(1, runtime.GOMAXPROCS(0)/2)
}

// WorkersForShards returns the per-shard worker budget for a pool of
// the given shard count: floor(GOMAXPROCS/shards), at least 1. The
// product shards*w never exceeds GOMAXPROCS (except when shards alone
// already does, where each shard degenerates to one inline worker).
func WorkersForShards(shards int) int {
	if shards < 1 {
		shards = 1
	}
	return max(1, runtime.GOMAXPROCS(0)/shards)
}
