// Package pram simulates the Parallel Random Access Machine cost model
// used by Nakano, Olariu and Zomaya in "A Time-Optimal Solution for the
// Path Cover Problem on Cographs" (TCS 290, 2003).
//
// A PRAM consists of p synchronous processors sharing a memory. The two
// complexity measures of the paper are parallel time T(n) — the number of
// synchronous supersteps — and work W(n) = p × T(n). The paper's headline
// algorithm runs in O(log n) time on n/log n EREW processors, hence O(n)
// work.
//
// Physical PRAMs do not exist, so this package substitutes a cost
// simulator: algorithms are written against Sim, whose ParallelFor and
// Blocks methods charge time and work according to Brent's scheduling
// principle (a phase of n constant-time operations on p processors costs
// ceil(n/p) time and n work) while executing the phase body chunked over
// real goroutines. Setting Procs to n/ceil(log2 n) makes the Time counter
// directly comparable against the paper's O(log n) claim, and the Work
// counter against the O(n) claim, while the goroutine execution provides
// genuine wall-clock parallelism on multicore hosts.
//
// The exclusive-access discipline of the EREW model is a property of the
// algorithm rather than of the host; the Machine type in this package
// provides step-synchronous checked arrays that audit kernels for
// exclusive-read/exclusive-write violations.
package pram

import (
	"fmt"
	"runtime"
)

// Model selects the memory-access discipline audited by Machine and
// reported in simulation statistics.
type Model int

const (
	// EREW forbids two processors from touching the same cell in one step.
	EREW Model = iota
	// CREW allows concurrent reads but forbids concurrent writes.
	CREW
	// CRCW allows concurrent reads and writes (priority semantics:
	// the highest-numbered processor wins a write conflict).
	CRCW
)

// String returns the conventional abbreviation of the model.
func (m Model) String() string {
	switch m {
	case EREW:
		return "EREW"
	case CREW:
		return "CREW"
	case CRCW:
		return "CRCW"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Sim is a PRAM cost simulator. It accounts parallel time and work for a
// configurable number of simulated processors while executing phase bodies
// on real goroutines.
//
// A Sim must be driven from a single goroutine: phases are issued one
// after another, mirroring the synchronous superstep structure of the
// PRAM. The phase bodies themselves run concurrently and must therefore
// only perform conflict-free memory accesses, exactly as an EREW kernel
// would.
//
// Execution is backed by a persistent worker pool (created lazily on the
// first phase large enough to split) and a scratch arena of reusable
// buffers, so a steady-state superstep performs no goroutine creation
// and no allocation. Call Close when done with a multi-worker Sim to
// stop the pool promptly; a garbage-collected Sim stops it via a runtime
// cleanup either way.
type Sim struct {
	procs   int // simulated PRAM processors (p in the paper)
	workers int // real goroutines used to execute phases
	grain   int // minimum iterations per goroutine before splitting
	cutover int // sequential-cutover threshold (0 = resolve measured default)
	time    int64
	work    int64
	phases  int64

	pool    *workerPool
	cpuset  []int // CPUs the pool's workers are pinned to (nil = unpinned)
	cleanup runtime.Cleanup
	closed  bool
	scratch Scratch

	// Reusable adapter turning the pool's flat func(i int) body into the
	// (block, lo, hi) body of Blocks without a per-phase closure.
	blockFn   func(block, lo, hi int)
	blockBS   int
	blockN    int
	blockBody func(i int)
}

// Option configures a Sim.
type Option func(*Sim)

// WithWorkers fixes the number of real goroutines used to execute phases.
// The default is min(procs, runtime.GOMAXPROCS(0)).
func WithWorkers(w int) Option {
	return func(s *Sim) {
		if w > 0 {
			s.workers = w
		}
	}
}

// WithGrain sets the minimum number of iterations a phase must have before
// it is split across goroutines. Smaller phases run inline. The default is
// 4096. Setting an explicit grain also pins the sequential cutover to the
// same value (dispatch anything at least this large), unless WithSeqCutover
// overrides it.
func WithGrain(g int) Option {
	return func(s *Sim) {
		if g > 0 {
			s.grain = g
			if s.cutover == 0 {
				s.cutover = g
			}
		}
	}
}

// WithCPUSet pins the Sim's pool workers to the given CPUs (Linux
// sched_setaffinity on OS threads the workers lock themselves to; a
// no-op on other platforms — see AffinitySupported). Shards of a
// serving pool pass disjoint sets so each shard's workers share L2/L3
// instead of bouncing cache lines across the socket. The driving
// goroutine itself is the caller's and is never pinned; ids this
// machine does not have are ignored, and an effectively empty set
// leaves the workers unpinned.
func WithCPUSet(cpus []int) Option {
	return func(s *Sim) {
		if len(cpus) > 0 {
			s.cpuset = append([]int(nil), cpus...)
		}
	}
}

// New returns a simulator with p simulated processors.
func New(procs int, opts ...Option) *Sim {
	if procs < 1 {
		procs = 1
	}
	s := &Sim{
		procs:   procs,
		workers: min(procs, runtime.GOMAXPROCS(0)),
		grain:   4096,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// NewSerial returns a single-processor simulator. It executes every phase
// inline and deterministically; it is the reference interpretation of each
// parallel algorithm. A serial Sim never spawns workers and performs no
// per-phase allocation.
func NewSerial() *Sim { return New(1) }

// Scratch returns the Sim's arena of reusable buffers (see Grab and
// Release). Like the Sim it must only be used from the driving
// goroutine, never from inside a phase body.
func (s *Sim) Scratch() *Scratch { return &s.scratch }

// SetProcs changes the simulated processor count between phases (it
// re-derives block sizes and Brent charges; the real worker pool is
// unaffected). A reusable solver calls this to re-target one Sim at
// inputs of different sizes.
func (s *Sim) SetProcs(p int) {
	if p < 1 {
		p = 1
	}
	s.procs = p
}

// Workers returns the number of real goroutines used to execute phases
// (including the driving goroutine's own share).
func (s *Sim) Workers() int { return s.workers }

// Close stops the worker pool. It must be called from the driving
// goroutine (so no phase is in flight). After Close the Sim remains
// usable: phases simply execute inline. Close is idempotent, and a Sim
// that is garbage-collected without Close stops its pool through a
// runtime cleanup.
func (s *Sim) Close() {
	s.closed = true
	if s.pool != nil {
		s.cleanup.Stop()
		s.pool.stop()
		s.pool = nil
	}
}

// ensurePool lazily creates the persistent worker pool.
func (s *Sim) ensurePool() *workerPool {
	if s.pool == nil {
		s.pool = newWorkerPool(s.workers-1, s.cpuset) // the driver is a participant
		// Stop the workers if the Sim is dropped without Close. The pool
		// does not reference the Sim (phase bodies are cleared after each
		// superstep), so the cleanup can run.
		s.cleanup = runtime.AddCleanup(s, func(p *workerPool) { p.stop() }, s.pool)
		s.blockBody = func(b int) {
			lo := b * s.blockBS
			hi := min(lo+s.blockBS, s.blockN)
			if lo < hi {
				s.blockFn(b, lo, hi)
			}
		}
	}
	return s.pool
}

// ProcsFor returns the processor count n/ceil(log2 n) prescribed by the
// paper for an input of size n (at least 1).
func ProcsFor(n int) int {
	if n < 2 {
		return 1
	}
	lg := 1
	for v := n - 1; v > 1; v >>= 1 {
		lg++
	}
	p := n / lg
	if p < 1 {
		p = 1
	}
	return p
}

// Procs returns the number of simulated processors.
func (s *Sim) Procs() int { return s.procs }

// Time returns the accumulated parallel time (supersteps).
func (s *Sim) Time() int64 { return s.time }

// Work returns the accumulated work (total operations).
func (s *Sim) Work() int64 { return s.work }

// Phases returns the number of accounting phases issued so far.
func (s *Sim) Phases() int64 { return s.phases }

// Reset zeroes the time, work and phase counters.
func (s *Sim) Reset() { s.time, s.work, s.phases = 0, 0, 0 }

// Stats summarises the counters of a simulation.
type Stats struct {
	Procs  int
	Time   int64
	Work   int64
	Phases int64
}

// Stats returns a snapshot of the counters.
func (s *Sim) Stats() Stats {
	return Stats{Procs: s.procs, Time: s.time, Work: s.work, Phases: s.phases}
}

// String renders the counters in the fixed key=value form the CLI
// -stats output uses.
func (st Stats) String() string {
	return fmt.Sprintf("procs=%d time=%d work=%d phases=%d", st.Procs, st.Time, st.Work, st.Phases)
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// charge accounts one phase of n unit operations.
func (s *Sim) charge(n, unitCost int) {
	if n <= 0 {
		return
	}
	s.time += int64(ceilDiv(n, s.procs) * unitCost)
	s.work += int64(n * unitCost)
	s.phases++
}

// Charge adds raw time and work to the counters without executing
// anything. It is used for O(1) control decisions between phases.
func (s *Sim) Charge(time, work int64) {
	s.time += time
	s.work += work
	s.phases++
}

// AddCost adds a previously recorded multi-phase cost (time, work and
// phase count) to the counters without executing anything. It is the
// replay primitive behind result caches that skip recomputation but must
// keep the simulated cost model oblivious to the reuse: the cache owner
// records the Stats delta of the original computation and replays it on
// every hit.
func (s *Sim) AddCost(time, work, phases int64) {
	s.time += time
	s.work += work
	s.phases += phases
}

// ParallelFor executes f(i) for every i in [0, n) and charges one
// Brent-scheduled phase: time ceil(n/p), work n. The iterations run
// concurrently; f must only perform conflict-free accesses.
func (s *Sim) ParallelFor(n int, f func(i int)) {
	s.ForCost(n, 1, f)
}

// ForCost is ParallelFor for bodies that perform cost elementary PRAM
// operations per iteration: it charges time ceil(n/p)*cost and work
// n*cost.
func (s *Sim) ForCost(n, cost int, f func(i int)) {
	if n <= 0 {
		return
	}
	s.charge(n, cost)
	s.run(n, f)
}

// ParallelForRange is ParallelFor with chunk-granularity bodies: f is
// invoked with disjoint sub-ranges [lo,hi) covering [0,n), letting the
// body amortise the indirect call over a whole chunk. The accounting is
// identical to ParallelFor(n, ...): one Brent-scheduled phase of n unit
// operations. As with ParallelFor, concurrent chunks must only perform
// conflict-free accesses.
func (s *Sim) ParallelForRange(n int, f func(lo, hi int)) {
	s.ForCostRange(n, 1, f)
}

// ForCostRange is ForCost with chunk-granularity bodies (see
// ParallelForRange); it charges time ceil(n/p)*cost and work n*cost.
func (s *Sim) ForCostRange(n, cost int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	s.charge(n, cost)
	if !s.dispatchable(n) {
		f(0, n)
		return
	}
	s.ensurePool().dispatchRange(n, f, s.grain)
}

// Blocks partitions [0, n) into p contiguous blocks of size ceil(n/p) and
// executes f(block, lo, hi) for each, charging time ceil(n/p) and work n.
// It expresses the per-processor sequential sweeps of work-optimal PRAM
// algorithms (each simulated processor scans its own block).
func (s *Sim) Blocks(n int, f func(block, lo, hi int)) {
	if n <= 0 {
		return
	}
	bs := ceilDiv(n, s.procs)
	nb := ceilDiv(n, bs)
	s.charge(n, 1)
	// The dispatch decision weighs the total element count n, not the
	// block count: nb blocks of bs elements move n elements of memory.
	if nb < 2 || !s.dispatchable(n) {
		for b := 0; b < nb; b++ {
			lo := b * bs
			hi := min(lo+bs, n)
			if lo < hi {
				f(b, lo, hi)
			}
		}
		return
	}
	s.ensurePool()
	s.blockFn, s.blockBS, s.blockN = f, bs, n
	s.runPool(nb, s.blockBody)
	s.blockFn = nil
}

// BlockSize reports the block size ceil(n/p) used by Blocks for input n.
func (s *Sim) BlockSize(n int) int {
	if n <= 0 {
		return 0
	}
	return ceilDiv(n, s.procs)
}

// NumBlocks reports how many blocks Blocks would create for input n.
func (s *Sim) NumBlocks(n int) int {
	if n <= 0 {
		return 0
	}
	return ceilDiv(n, s.BlockSize(n))
}

// Sequential runs f on a single simulated processor, charging the given
// time cost (and the same amount of work).
func (s *Sim) Sequential(cost int, f func()) {
	if cost > 0 {
		s.time += int64(cost)
		s.work += int64(cost)
		s.phases++
	}
	f()
}

// run executes f(i) for i in [0,n), small phases inline and large ones
// across the persistent worker pool.
func (s *Sim) run(n int, f func(i int)) {
	if !s.dispatchable(n) {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	s.ensurePool().dispatch(n, f, s.grain)
}

// runPool is run for callers that already made the dispatch decision on
// a different quantity than the iteration count (Blocks weighs total
// elements, not blocks). It still falls back to inline execution when
// the pool cannot help at all.
func (s *Sim) runPool(n int, f func(i int)) {
	if s.workers <= 1 || s.closed {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	s.ensurePool().dispatch(n, f, s.grain)
}
