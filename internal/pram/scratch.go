package pram

import (
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// Scratch is the zero-allocation arena of a Sim: size-classed freelists
// of reusable slices plus a registry of cached per-Sim state (the
// reusable phase bodies of the specialised primitives in internal/par).
//
// Ownership discipline: Grab hands out a slice that stays valid until it
// is passed back to Release — there is no implicit recycling, so a
// primitive's result can be returned to the caller safely; only buffers
// explicitly Released are reused. A buffer must not be used after
// Release and must not be Released twice (enable SetDebug in tests to
// assert the latter).
//
// Like the Sim that owns it, a Scratch must only be used from the single
// driving goroutine; phase bodies must not Grab or Release.
type Scratch struct {
	aux   map[any]any
	debug bool
	// bytes counts the capacity bytes currently resident in the
	// freelists. It is atomic — the only Scratch state that is — because
	// observability scrapes read it from other goroutines while the
	// driving goroutine mutates the arena.
	bytes atomic.Int64
}

// Bytes reports the capacity bytes currently retained in the arena
// freelists (idle, reusable memory). Buffers checked out to callers are
// not counted; the gauge therefore measures the arena's standing
// footprint between solves, not peak usage during one. Safe to call
// from any goroutine.
func (sc *Scratch) Bytes() int64 { return sc.bytes.Load() }

// numClasses bounds the size classes at 2^47 elements — far beyond any
// real slice, so class indexing never needs a range check.
const numClasses = 48

// slicePool holds the freelists of one element type. Entries of class c
// have capacity exactly 1<<c and length zero.
type slicePool[T any] struct {
	classes [numClasses][][]T
}

type poolKey[T any] struct{}

// Aux returns the cached value stored under key, or nil.
func (sc *Scratch) Aux(key any) any {
	return sc.aux[key]
}

// SetAux caches a value under key for the lifetime of the Sim (or until
// Reclaim).
func (sc *Scratch) SetAux(key, val any) {
	if sc.aux == nil {
		sc.aux = make(map[any]any)
	}
	sc.aux[key] = val
}

// SetDebug toggles the double-release audit (O(freelist) per Release;
// tests only).
func (sc *Scratch) SetDebug(on bool) { sc.debug = on }

// Reclaim drops every freelist and cached state, letting the garbage
// collector take the arena memory. Buffers currently held by callers
// stay valid; they simply become ordinary garbage once dropped.
func (sc *Scratch) Reclaim() {
	clear(sc.aux)
	sc.bytes.Store(0)
}

func poolOf[T any](s *Sim) *slicePool[T] {
	sc := s.Scratch()
	if v := sc.aux[poolKey[T]{}]; v != nil {
		return v.(*slicePool[T])
	}
	p := &slicePool[T]{}
	sc.SetAux(poolKey[T]{}, p)
	return p
}

// class returns the size class whose capacity 1<<c is the smallest power
// of two >= n (n >= 1).
func class(n int) int { return bits.Len(uint(n - 1)) }

// Grab returns a length-n slice from the Sim's arena, zeroed like a
// fresh make. Use GrabNoClear when every element is written before it is
// read.
func Grab[T any](s *Sim, n int) []T {
	out := GrabNoClear[T](s, n)
	clear(out)
	return out
}

// GrabNoClear returns a length-n slice from the arena without clearing
// it: the contents are whatever a previous user left behind.
func GrabNoClear[T any](s *Sim, n int) []T {
	if n <= 0 {
		return nil
	}
	p := poolOf[T](s)
	c := class(n)
	if l := p.classes[c]; len(l) > 0 {
		b := l[len(l)-1]
		l[len(l)-1] = nil
		p.classes[c] = l[:len(l)-1]
		s.scratch.bytes.Add(-int64(uintptr(1<<c) * unsafe.Sizeof(*new(T))))
		return b[:n]
	}
	return make([]T, n, 1<<c)
}

// Release returns a slice obtained from Grab (or any slice, e.g. a
// result built with make) to the arena for reuse. Releasing nil or an
// empty-capacity slice is a no-op.
func Release[T any](s *Sim, b []T) {
	if cap(b) == 0 {
		return
	}
	p := poolOf[T](s)
	c := bits.Len(uint(cap(b))) - 1 // floor: the class whose 1<<c <= cap
	b = b[: 0 : 1<<c]
	if s.scratch.debug {
		for _, e := range p.classes[c] {
			if unsafe.SliceData(e) == unsafe.SliceData(b) {
				panic("pram: double Release of the same buffer")
			}
		}
	}
	p.classes[c] = append(p.classes[c], b)
	s.scratch.bytes.Add(int64(uintptr(1<<c) * unsafe.Sizeof(*new(T))))
}
