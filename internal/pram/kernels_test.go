package pram

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestScanKernel(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 64, 100} {
		m := NewMachine(n, EREW)
		data := make([]int, n)
		for i := range data {
			data[i] = i*3 - 7
		}
		got := ScanKernel(m, data)
		if !m.Ok() {
			t.Fatalf("n=%d: EREW violations: %v", n, m.Violations())
		}
		acc := 0
		for i := 0; i < n; i++ {
			acc += data[i]
			if got[i] != acc {
				t.Fatalf("n=%d: scan[%d]=%d want %d", n, i, got[i], acc)
			}
		}
		// 1 init + 2 per doubling round.
		lg := 0
		for v := 1; v < n; v <<= 1 {
			lg++
		}
		if m.StepCount() != 1+2*lg {
			t.Errorf("n=%d: %d supersteps, want %d", n, m.StepCount(), 1+2*lg)
		}
	}
}

func TestBroadcastKernel(t *testing.T) {
	for _, n := range []int{1, 2, 5, 64, 333} {
		m := NewMachine(n, EREW)
		got := BroadcastKernel(m, n, 42)
		if !m.Ok() {
			t.Fatalf("n=%d: EREW violations: %v", n, m.Violations())
		}
		for i, v := range got {
			if v != 42 {
				t.Fatalf("n=%d: cell %d = %d", n, i, v)
			}
		}
	}
}

func TestWyllieKernelEREWClean(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 2))
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		// random disjoint lists via a shuffled permutation cut into runs
		perm := rng.Perm(n)
		next := make([]int, n)
		want := make([]int, n)
		for i := range next {
			next[i] = -1
		}
		for lo := 0; lo < n; {
			hi := lo + 1 + rng.IntN(n-lo)
			for k := lo; k < hi-1; k++ {
				next[perm[k]] = perm[k+1]
			}
			for k := lo; k < hi; k++ {
				want[perm[k]] = hi - 1 - k
			}
			lo = hi
		}
		m := NewMachine(n, EREW)
		got := WyllieKernel(m, next)
		if !m.Ok() {
			return false
		}
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The naive jump (reading the successor's live cell instead of a shadow)
// is a concurrent read; the auditor must flag it. This pins down that
// the auditor distinguishes the correct kernel from the broken one.
func TestNaiveWyllieFlagged(t *testing.T) {
	n := 8
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[i] = i + 1
	}
	next[n-1] = -1
	m := NewMachine(n, EREW)
	cur := m.NewIntArray(n)
	m.Step(func(p int) { cur.Write(p, p, next[p]) })
	m.Step(func(p int) {
		j := cur.Read(p, p)
		if j >= 0 {
			_ = cur.Read(p, j) // owner of j also read cur[j]: conflict
		}
	})
	if m.Ok() {
		t.Fatal("naive pointer jumping passed the EREW auditor")
	}
}

func TestKernelsMatchUnderCREW(t *testing.T) {
	// The same kernels are trivially CREW/CRCW clean as well.
	m := NewMachine(32, CREW)
	ScanKernel(m, make([]int, 32))
	BroadcastKernel(m, 32, 1)
	if !m.Ok() {
		t.Fatalf("violations under CREW: %v", m.Violations())
	}
}
