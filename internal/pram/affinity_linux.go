//go:build linux

package pram

import (
	"syscall"
	"unsafe"
)

// AffinitySupported reports whether per-worker CPU pinning is available
// on this platform.
func AffinitySupported() bool { return true }

// cpuMask mirrors the kernel's cpu_set_t: 1024 CPUs, one bit each.
type cpuMask [1024 / 64]uint64

// setAffinity restricts the calling thread to the given CPUs. The
// caller must have locked the goroutine to its thread first; ids
// outside the mask's range are ignored. Reports whether the kernel
// accepted a non-empty mask — a false return (an empty set, or ids
// this machine does not have) leaves the thread unrestricted.
func setAffinity(cpus []int) bool {
	var mask cpuMask
	any := false
	for _, c := range cpus {
		if c >= 0 && c < len(mask)*64 {
			mask[c/64] |= 1 << (c % 64)
			any = true
		}
	}
	if !any {
		return false
	}
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, unsafe.Sizeof(mask), uintptr(unsafe.Pointer(&mask[0])))
	return errno == 0
}
