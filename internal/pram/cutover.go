package pram

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"
)

// The adaptive sequential cutover.
//
// Dispatching a phase to the worker pool costs a wake/dispatch/join
// round trip regardless of the phase size, and the multi-phase
// block-decomposed structure of the parallel primitives streams each
// array several times where one fused sequential sweep would stream it
// once. Below some input size the sequential route therefore wins on
// wall clock even though the simulated cost model is indifferent.
//
// That crossover is a property of the host (dispatch latency vs memory
// throughput), so it is measured once per process rather than guessed:
// calibrate() times an empty pool round trip and a plain memory sweep
// and derives the element count at which the dispatch overhead is
// amortised. Sims pick the measured value up lazily; WithSeqCutover
// pins an explicit threshold instead (tests use this to force either
// route), and WithGrain keeps its PR-1 meaning of "dispatch anything
// at least this large" by pinning the cutover to the grain.
//
// The cutover changes execution routes only, never accounting: every
// phase charges the same simulated time and work whichever route runs
// it, and the fused primitive bodies in internal/par replay the exact
// charge sequence of their phase-structured counterparts.

// cutoverDisabled pins the threshold below any phase size, forcing the
// dispatch/phase-structured route everywhere (reference for parity
// tests).
const cutoverDisabled = -1

// defaultCutover is used when the host cannot be measured (single
// hardware thread: there is no pool to time, and no parallel speedup to
// lose either, so a generous threshold is safe).
const defaultCutover = 1 << 15

var (
	calibrateOnce sync.Once
	measured      int
)

// cutoverEnv overrides the measured default threshold process-wide. CI
// uses it to force every default-configured Sim onto one route: 0 (or
// any non-positive value) disables the cutover — the phase-structured
// dispatch route everywhere — and a huge value forces the fused
// sequential bodies everywhere. Sims configured with an explicit
// WithSeqCutover or WithGrain are unaffected.
const cutoverEnv = "PATHCOVER_SEQ_CUTOVER"

// autoCutover returns the process-wide measured threshold (or the
// cutoverEnv override).
func autoCutover() int {
	calibrateOnce.Do(func() {
		if c, ok := cutoverFromEnv(); ok {
			measured = c
			return
		}
		measured = calibrate()
	})
	return measured
}

// cutoverFromEnv parses the cutoverEnv override: non-positive values
// disable the cutover (forcing the phase-structured route everywhere),
// positive values pin the threshold.
func cutoverFromEnv() (int, bool) {
	v, ok := os.LookupEnv(cutoverEnv)
	if !ok {
		return 0, false
	}
	c, err := strconv.Atoi(v)
	if err != nil {
		// Fail loudly: a CI job that believes it forced one route while
		// calibration actually picked must not pass silently.
		fmt.Fprintf(os.Stderr, "pram: ignoring malformed %s=%q (%v); using measured cutover\n",
			cutoverEnv, v, err)
		return 0, false
	}
	if c <= 0 {
		c = cutoverDisabled
	}
	return c, true
}

// calibrate measures dispatch latency against memory throughput and
// returns the crossover element count, clamped to a sane range.
func calibrate() int {
	if runtime.GOMAXPROCS(0) <= 1 {
		return defaultCutover
	}
	// Per-element cost of a bandwidth-bound sweep (the shape of every
	// phase body in internal/par).
	buf := make([]int32, 1<<15)
	var sink int32
	sweep := func() {
		acc := int32(0)
		for i := range buf {
			acc += buf[i]
			buf[i] = acc
		}
		sink += acc
	}
	sweep() // warm
	t0 := time.Now()
	const sweeps = 8
	for r := 0; r < sweeps; r++ {
		sweep()
	}
	perElem := float64(time.Since(t0).Nanoseconds()) / float64(sweeps*len(buf))
	_ = sink

	// Round-trip cost of waking the pool for a trivial phase.
	helpers := min(3, runtime.GOMAXPROCS(0)-1)
	pool := newWorkerPool(helpers, nil)
	defer pool.stop()
	noop := func(lo, hi int) {}
	pool.dispatchRange(1<<20, noop, 1) // warm the workers
	t0 = time.Now()
	const trips = 64
	for r := 0; r < trips; r++ {
		pool.dispatchRange(1<<20, noop, 1)
	}
	overhead := float64(time.Since(t0).Nanoseconds()) / trips

	if perElem <= 0 {
		return defaultCutover
	}
	// A phase only pays for its dispatch when the parallel half of the
	// work can hide roughly twice the round trip.
	c := int(2 * overhead / perElem)
	const lo, hi = 1 << 12, 1 << 18
	if c < lo {
		return lo
	}
	if c > hi {
		return hi
	}
	return c
}

// WithSeqCutover pins the sequential-cutover threshold: phases (and the
// fused primitive bodies of internal/par) below c elements run on the
// calling goroutine with no pool dispatch. c <= 0 disables the cutover
// entirely, forcing the phase-structured dispatch route wherever the
// grain allows it. The default is the measured host crossover.
func WithSeqCutover(c int) Option {
	return func(s *Sim) {
		if c <= 0 {
			c = cutoverDisabled
		}
		s.cutover = c
	}
}

// SeqCutover reports the effective sequential-cutover threshold,
// resolving the measured default on first use.
func (s *Sim) SeqCutover() int {
	if s.cutover == 0 {
		s.cutover = autoCutover()
	}
	return s.cutover
}

// PreferSequential reports whether a primitive about to process n
// elements should take its fused single-pass sequential body instead of
// its phase-structured parallel one. It is a pure routing hint: the
// caller must charge the identical simulated time and work either way.
// True whenever no real parallelism is available (one worker, or a
// closed Sim) or n is below the cutover threshold.
func (s *Sim) PreferSequential(n int) bool {
	return s.workers <= 1 || s.closed || n < s.SeqCutover()
}

// dispatchable reports whether a charged phase of n iterations should
// go to the worker pool rather than run inline.
func (s *Sim) dispatchable(n int) bool {
	return s.workers > 1 && !s.closed && n >= s.grain && n >= s.SeqCutover()
}
