package pram

import "testing"

// TestSeqCutoverResolution pins the threshold-resolution rules: an
// explicit WithSeqCutover wins, an explicit WithGrain pins the cutover
// to the grain (preserving "dispatch anything at least this large"),
// and the default resolves to the process-wide measured value within the
// calibration clamp.
func TestSeqCutoverResolution(t *testing.T) {
	if got := New(8, WithSeqCutover(777)).SeqCutover(); got != 777 {
		t.Errorf("explicit cutover: got %d want 777", got)
	}
	if got := New(8, WithSeqCutover(-5)).SeqCutover(); got != cutoverDisabled {
		t.Errorf("disabled cutover: got %d want %d", got, cutoverDisabled)
	}
	if got := New(8, WithGrain(128)).SeqCutover(); got != 128 {
		t.Errorf("grain-pinned cutover: got %d want 128", got)
	}
	if got := New(8, WithGrain(128), WithSeqCutover(9)).SeqCutover(); got != 9 {
		t.Errorf("explicit beats grain: got %d want 9", got)
	}
	if got := New(8, WithSeqCutover(9), WithGrain(128)).SeqCutover(); got != 9 {
		t.Errorf("explicit beats grain (either order): got %d want 9", got)
	}
	auto := New(8).SeqCutover()
	if auto < 1<<12 || auto > 1<<18 {
		if auto != defaultCutover {
			t.Errorf("auto cutover %d outside clamp and not the fallback default", auto)
		}
	}
}

// TestPreferSequential pins the fused-routing predicate.
func TestPreferSequential(t *testing.T) {
	s := New(8, WithWorkers(4), WithSeqCutover(100))
	if !s.PreferSequential(99) {
		t.Error("n below cutover should prefer the fused body")
	}
	if s.PreferSequential(100) {
		t.Error("n at cutover should take the phase-structured route")
	}
	s.Close()
	if !s.PreferSequential(1 << 20) {
		t.Error("a closed Sim should always prefer the fused body")
	}
	if !New(8, WithWorkers(1), WithSeqCutover(100)).PreferSequential(1 << 20) {
		t.Error("a single-worker Sim should always prefer the fused body")
	}
	if New(8, WithWorkers(4), WithSeqCutover(-1)).PreferSequential(1) {
		t.Error("a disabled cutover must never prefer the fused body on a pooled Sim")
	}
}

// TestCutoverFromEnv pins the PATHCOVER_SEQ_CUTOVER override parsing:
// CI forces the default route both ways through it (0 disables the
// cutover entirely; a huge value fuses everything). Explicit
// WithSeqCutover/WithGrain Sims are unaffected by design — covered by
// TestSeqCutoverResolution above.
func TestCutoverFromEnv(t *testing.T) {
	t.Setenv(cutoverEnv, "0")
	if c, ok := cutoverFromEnv(); !ok || c != cutoverDisabled {
		t.Errorf("env 0: got (%d, %v), want (%d, true)", c, ok, cutoverDisabled)
	}
	t.Setenv(cutoverEnv, "-3")
	if c, ok := cutoverFromEnv(); !ok || c != cutoverDisabled {
		t.Errorf("env -3: got (%d, %v), want (%d, true)", c, ok, cutoverDisabled)
	}
	t.Setenv(cutoverEnv, "1073741824")
	if c, ok := cutoverFromEnv(); !ok || c != 1<<30 {
		t.Errorf("env 2^30: got (%d, %v), want (%d, true)", c, ok, 1<<30)
	}
	t.Setenv(cutoverEnv, "not-a-number")
	if _, ok := cutoverFromEnv(); ok {
		t.Error("garbage env value must fall back to calibration")
	}
}

// TestCutoverChargesUnchanged asserts the executor-level cutover is
// accounting-neutral: the same phase sequence charges the same
// time/work/phases whether it dispatches or runs inline.
func TestCutoverChargesUnchanged(t *testing.T) {
	run := func(s *Sim) Stats {
		defer s.Close()
		for _, n := range []int{1, 5, 1000, 5000, 100000} {
			s.ParallelFor(n, func(int) {})
			s.ParallelForRange(n, func(lo, hi int) {})
			s.ForCostRange(n, 3, func(lo, hi int) {})
			s.Blocks(n, func(b, lo, hi int) {})
		}
		return s.Stats()
	}
	a := run(New(64, WithWorkers(4), WithSeqCutover(-1), WithGrain(32)))
	b := run(New(64, WithWorkers(4), WithSeqCutover(1<<30)))
	c := run(New(64))
	if a != b || b != c {
		t.Errorf("cutover changed accounting: dispatch=%+v fused=%+v default=%+v", a, b, c)
	}
}

// TestCalibrateClamped exercises the measurement itself (cheap; it runs
// once per process anyway).
func TestCalibrateClamped(t *testing.T) {
	c := calibrate()
	if c != defaultCutover && (c < 1<<12 || c > 1<<18) {
		t.Errorf("calibrate() = %d, outside [2^12, 2^18] and not the fallback", c)
	}
}
