//go:build !linux

package pram

// AffinitySupported reports whether per-worker CPU pinning is available
// on this platform.
func AffinitySupported() bool { return false }

// setAffinity is the portable no-op: pinning is Linux-only, and a Sim
// with a cpuset on other platforms simply runs unpinned.
func setAffinity(cpus []int) bool { return false }
