package pram

import (
	"sync/atomic"
	"testing"
)

// incrementSlot is a capture-free phase body used by the allocation
// tests (a closure with captures is heap-allocated at its creation site,
// which would mask the executor's own behaviour).
var poolTestSlots []atomic.Int64

func incrementSlot(i int) { poolTestSlots[i].Add(1) }

// TestPoolManyPhases drives one pool through thousands of supersteps —
// the steady-state regime of a cover run — and checks every iteration of
// every phase executed exactly once. Run under -race this doubles as the
// data-race audit of the wake/dispatch/join protocol.
func TestPoolManyPhases(t *testing.T) {
	const n = 512
	const phases = 4000
	s := New(64, WithWorkers(4), WithGrain(8))
	defer s.Close()
	poolTestSlots = make([]atomic.Int64, n)
	for p := 0; p < phases; p++ {
		s.ParallelFor(n, incrementSlot)
	}
	for i := range poolTestSlots {
		if got := poolTestSlots[i].Load(); got != phases {
			t.Fatalf("slot %d executed %d times, want %d", i, got, phases)
		}
	}
	if s.pool == nil {
		t.Fatal("pool was never created despite multi-worker phases")
	}
}

// TestPoolMixedPhaseSizes alternates inline-sized and pooled phases and
// varying n, exercising the helper-count clamp.
func TestPoolMixedPhaseSizes(t *testing.T) {
	s := New(1<<12, WithWorkers(8), WithGrain(16))
	defer s.Close()
	for _, n := range []int{1, 3, 15, 16, 17, 100, 1000, 4096, 5000} {
		poolTestSlots = make([]atomic.Int64, n)
		s.ParallelFor(n, incrementSlot)
		for i := range poolTestSlots {
			if poolTestSlots[i].Load() != 1 {
				t.Fatalf("n=%d: slot %d executed %d times", n, i, poolTestSlots[i].Load())
			}
		}
	}
}

// TestPoolBlocks checks the reusable block adapter covers [0,n) exactly
// once per phase when dispatched over the pool.
func TestPoolBlocks(t *testing.T) {
	s := New(256, WithWorkers(4), WithGrain(4))
	defer s.Close()
	const n = 10000
	seen := make([]atomic.Int64, n)
	for phase := 0; phase < 50; phase++ {
		s.Blocks(n, func(b, lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
		})
	}
	for i := range seen {
		if seen[i].Load() != 50 {
			t.Fatalf("index %d covered %d times, want 50", i, seen[i].Load())
		}
	}
}

// TestPhaseAllocationFree is the executor's headline regression: a
// steady-state pooled superstep allocates nothing.
func TestPhaseAllocationFree(t *testing.T) {
	const n = 1 << 14
	s := New(n, WithWorkers(4), WithGrain(64))
	defer s.Close()
	poolTestSlots = make([]atomic.Int64, n)
	s.ParallelFor(n, incrementSlot) // warm up: create the pool
	allocs := testing.AllocsPerRun(50, func() {
		s.ParallelFor(n, incrementSlot)
	})
	if allocs > 0 {
		t.Errorf("pooled ParallelFor allocates %.1f objects per phase, want 0", allocs)
	}
}

// TestSerialAllocationFree: a serial Sim must not allocate per phase
// either (NewSerial is the reference interpretation used in tight
// loops).
func TestSerialAllocationFree(t *testing.T) {
	s := NewSerial()
	const n = 1 << 10
	poolTestSlots = make([]atomic.Int64, n)
	allocs := testing.AllocsPerRun(50, func() {
		s.ParallelFor(n, incrementSlot)
	})
	if allocs > 0 {
		t.Errorf("serial ParallelFor allocates %.1f objects per phase, want 0", allocs)
	}
}

// TestCloseFallsBackInline: after Close, phases still execute (inline)
// and Close is idempotent.
func TestCloseFallsBackInline(t *testing.T) {
	s := New(128, WithWorkers(4), WithGrain(4))
	poolTestSlots = make([]atomic.Int64, 100)
	s.ParallelFor(100, incrementSlot)
	s.Close()
	s.Close() // idempotent
	s.ParallelFor(100, incrementSlot)
	for i := range poolTestSlots {
		if poolTestSlots[i].Load() != 2 {
			t.Fatalf("slot %d executed %d times, want 2", i, poolTestSlots[i].Load())
		}
	}
	if s.pool != nil {
		t.Fatal("pool not torn down by Close")
	}
}

// TestSetProcs re-targets one Sim at a different simulated machine and
// checks the Brent accounting follows.
func TestSetProcs(t *testing.T) {
	s := New(4)
	s.ParallelFor(100, func(int) {})
	if s.Time() != 25 {
		t.Fatalf("Time = %d, want 25", s.Time())
	}
	s.SetProcs(10)
	if s.Procs() != 10 {
		t.Fatalf("Procs = %d, want 10", s.Procs())
	}
	s.Reset()
	s.ParallelFor(100, func(int) {})
	if s.Time() != 10 || s.Work() != 100 {
		t.Fatalf("stats after SetProcs = %v, want time=10 work=100", s.Stats())
	}
	s.SetProcs(0) // clamps
	if s.Procs() != 1 {
		t.Fatalf("SetProcs(0) gave %d procs, want 1", s.Procs())
	}
}
