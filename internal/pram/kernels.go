package pram

// Checked reference kernels: the core access patterns of the paper's
// algorithm written as explicit per-processor programs on the audited
// Machine. They certify — by running under the EREW auditor — that the
// patterns used throughout internal/par (prefix sums, pointer jumping,
// broadcast) obey the exclusive-read exclusive-write discipline, which
// is the content of the paper's "on the EREW" claims. The production
// implementations in internal/par use the same patterns on the fast
// cost simulator.

// ScanKernel computes inclusive prefix sums of data on machine m with
// one processor per element, in 2*ceil(log2 n)+1 supersteps. The
// double-buffered Hillis–Steele scheme reads every cell with exactly one
// processor per step, so it is EREW-clean.
func ScanKernel(m *Machine, data []int) []int {
	n := len(data)
	if n == 0 {
		return nil
	}
	a := m.NewIntArray(n)
	tmp := m.NewIntArray(n)
	m.Step(func(p int) {
		if p < n {
			a.Write(p, p, data[p])
		}
	})
	for d := 1; d < n; d *= 2 {
		dd := d
		// Copy phase: cell p read/written only by processor p.
		m.Step(func(p int) {
			if p < n {
				tmp.Write(p, p, a.Read(p, p))
			}
		})
		// Combine phase: tmp cell p-d is read only by processor p.
		m.Step(func(p int) {
			if p < n && p >= dd {
				a.Write(p, p, a.Read(p, p)+tmp.Read(p, p-dd))
			}
		})
	}
	return a.Snapshot()
}

// BroadcastKernel distributes value from cell 0 to all n cells by
// recursive doubling: in round k, processors holding the value write it
// to a disjoint set of new cells, so every cell is written once and read
// once — EREW. It takes ceil(log2 n)+1 supersteps.
func BroadcastKernel(m *Machine, n, value int) []int {
	a := m.NewIntArray(n)
	m.Step(func(p int) {
		if p == 0 {
			a.Write(p, 0, value)
		}
	})
	for have := 1; have < n; have *= 2 {
		h := have
		m.Step(func(p int) {
			// processor p < have copies cell p to cell p+have.
			if p < h && p+h < n {
				a.Write(p, p+h, a.Read(p, p))
			}
		})
	}
	return a.Snapshot()
}

// WyllieKernel performs list ranking by pointer jumping with explicit
// shadow buffering. next[i] is the successor (-1 at the tail); the
// result is the number of links to the tail.
//
// A naive jump step would have cell j read both by its owner (fetching
// its own pointer) and by its unique list predecessor — a concurrent
// read. The EREW-correct scheme of the textbooks therefore splits each
// round: first every processor copies its own pointer/distance into a
// shadow array (owner-only access), then the jump reads its own current
// cell and the *shadow* of its successor, which no owner touches. The
// auditor verifies this (and flags the naive variant; see the tests).
func WyllieKernel(m *Machine, next []int) []int {
	n := len(next)
	if n == 0 {
		return nil
	}
	curN := m.NewIntArray(n) // successor pointers
	curD := m.NewIntArray(n) // distances
	shN := m.NewIntArray(n)  // shadows read by predecessors only
	shD := m.NewIntArray(n)
	m.Step(func(p int) {
		if p < n {
			curN.Write(p, p, next[p])
			if next[p] >= 0 {
				curD.Write(p, p, 1)
			}
		}
	})
	rounds := 0
	for v := 1; v < n; v <<= 1 {
		rounds++
	}
	for r := 0; r < rounds; r++ {
		m.Step(func(p int) {
			if p < n {
				shN.Write(p, p, curN.Read(p, p))
				shD.Write(p, p, curD.Read(p, p))
			}
		})
		m.Step(func(p int) {
			if p >= n {
				return
			}
			j := curN.Read(p, p)
			if j >= 0 {
				curD.Write(p, p, curD.Read(p, p)+shD.Read(p, j))
				curN.Write(p, p, shN.Read(p, j))
			}
		})
	}
	return curD.Snapshot()
}
