package pram

import (
	"runtime"
	"testing"
)

// TestShardBudget pins the host-budget invariant: for every shard count
// the pool could pick, shards * workers-per-shard stays within
// GOMAXPROCS (unless the shard count alone already exceeds it, where
// each shard gets the minimum of one worker).
func TestShardBudget(t *testing.T) {
	for _, host := range []int{1, 2, 3, 4, 6, 8, 16, 64} {
		prev := runtime.GOMAXPROCS(host)
		for shards := 1; shards <= 2*host; shards++ {
			w := WorkersForShards(shards)
			if w < 1 {
				t.Errorf("host=%d shards=%d: workers %d < 1", host, shards, w)
			}
			if shards <= host && shards*w > host {
				t.Errorf("host=%d shards=%d: %d workers oversubscribe (%d > %d)",
					host, shards, w, shards*w, host)
			}
			if shards > host && w != 1 {
				t.Errorf("host=%d shards=%d: want degenerate 1 worker, got %d", host, shards, w)
			}
		}
		d := DefaultShards()
		if d < 1 || d > host {
			t.Errorf("host=%d: DefaultShards %d out of [1,%d]", host, d, host)
		}
		if d*WorkersForShards(d) > host {
			t.Errorf("host=%d: default pool oversubscribes: %d shards * %d workers",
				host, d, WorkersForShards(d))
		}
		runtime.GOMAXPROCS(prev)
	}
}

func TestWorkersForShardsDegenerate(t *testing.T) {
	if w := WorkersForShards(0); w < 1 {
		t.Fatalf("WorkersForShards(0) = %d", w)
	}
	if w := WorkersForShards(-3); w < 1 {
		t.Fatalf("WorkersForShards(-3) = %d", w)
	}
}
