package pram

import "testing"

func TestGrabRelease(t *testing.T) {
	s := NewSerial()
	s.Scratch().SetDebug(true)
	a := Grab[int](s, 100)
	if len(a) != 100 || cap(a) != 128 {
		t.Fatalf("Grab(100): len=%d cap=%d, want 100/128", len(a), cap(a))
	}
	for i := range a {
		if a[i] != 0 {
			t.Fatalf("Grab not zeroed at %d", i)
		}
		a[i] = i + 1
	}
	Release(s, a)
	b := GrabNoClear[int](s, 90)
	if &b[0] != &a[0] {
		t.Fatal("Release/Grab did not reuse the buffer")
	}
	if b[5] != 6 {
		t.Fatal("GrabNoClear cleared the buffer")
	}
	c := Grab[int](s, 90)
	if cap(c) > 0 && len(b) > 0 && &c[0] == &b[0] {
		t.Fatal("Grab handed out a buffer that is still lent")
	}
	for i := range c {
		if c[i] != 0 {
			t.Fatalf("recycled Grab not zeroed at %d", i)
		}
	}
}

func TestGrabZeroAndTypes(t *testing.T) {
	s := NewSerial()
	if g := Grab[int](s, 0); g != nil {
		t.Fatal("Grab(0) != nil")
	}
	if g := Grab[int](s, -3); g != nil {
		t.Fatal("Grab(-3) != nil")
	}
	bs := Grab[bool](s, 7)
	is := Grab[int64](s, 7)
	bs[0] = true
	is[0] = 42
	Release(s, bs)
	Release(s, is)
	bs2 := GrabNoClear[bool](s, 7)
	if !bs2[0] {
		t.Fatal("bool pool did not recycle")
	}
}

func TestReleaseForeignSlice(t *testing.T) {
	// Slices not born in the arena (e.g. a result built with make) may be
	// released too; odd capacities land in their floor class.
	s := NewSerial()
	b := make([]int, 0, 100) // floor class 6 (cap 64)
	Release(s, b)
	g := GrabNoClear[int](s, 64)
	if cap(g) != 64 {
		t.Fatalf("foreign slice reclassed with cap %d, want 64", cap(g))
	}
	Release(s, []int(nil)) // no-op
}

func TestDoubleReleasePanics(t *testing.T) {
	s := NewSerial()
	s.Scratch().SetDebug(true)
	a := Grab[int](s, 16)
	Release(s, a)
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic under debug")
		}
	}()
	Release(s, a)
}

func TestGrabSteadyStateAllocFree(t *testing.T) {
	s := NewSerial()
	Release(s, Grab[int](s, 5000)) // warm the class
	allocs := testing.AllocsPerRun(100, func() {
		b := Grab[int](s, 5000)
		Release(s, b)
	})
	if allocs > 0 {
		t.Errorf("steady-state Grab/Release allocates %.1f objects, want 0", allocs)
	}
}

func TestAuxRegistry(t *testing.T) {
	s := NewSerial()
	type key struct{}
	if s.Scratch().Aux(key{}) != nil {
		t.Fatal("unset aux key not nil")
	}
	s.Scratch().SetAux(key{}, 42)
	if got := s.Scratch().Aux(key{}); got != 42 {
		t.Fatalf("aux = %v, want 42", got)
	}
	s.Scratch().Reclaim()
	if s.Scratch().Aux(key{}) != nil {
		t.Fatal("Reclaim did not drop aux state")
	}
}

func TestArenaByteAccounting(t *testing.T) {
	s := NewSerial()
	sc := s.Scratch()
	if sc.Bytes() != 0 {
		t.Fatalf("fresh arena Bytes() = %d, want 0", sc.Bytes())
	}
	b := Grab[int64](s, 100) // class cap 128, freshly made: nothing retained yet
	if sc.Bytes() != 0 {
		t.Fatalf("Bytes() after Grab = %d, want 0 (buffer checked out)", sc.Bytes())
	}
	Release(s, b)
	want := int64(128 * 8)
	if sc.Bytes() != want {
		t.Fatalf("Bytes() after Release = %d, want %d", sc.Bytes(), want)
	}
	b = Grab[int64](s, 65) // reuses the class-7 (cap-128) buffer
	if sc.Bytes() != 0 {
		t.Fatalf("Bytes() after reuse = %d, want 0", sc.Bytes())
	}
	Release(s, b)
	sc.Reclaim()
	if sc.Bytes() != 0 {
		t.Fatalf("Bytes() after Reclaim = %d, want 0", sc.Bytes())
	}
}
