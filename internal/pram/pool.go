package pram

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerPool is the persistent execution engine behind Sim: a fixed set
// of long-lived goroutines that park on per-worker channels and execute
// the chunked iteration space of one phase at a time.
//
// The old executor spawned fresh goroutines and a new sync.WaitGroup for
// every superstep; on a cover run that meant hundreds of spawn/join
// rounds per call. Here a superstep is a wake/dispatch/join cycle with
// zero goroutine creation and zero allocation:
//
//   - the driver writes the phase descriptor (body, n, chunk) into the
//     pool, resets the shared chunk cursor, and sends one token to each
//     participating worker (a channel send of a bool does not allocate);
//   - workers and the driver race on an atomic cursor for chunks until
//     the iteration space is drained (dynamic self-scheduling, so an
//     unlucky chunk cannot straggle a whole static partition);
//   - the last participant to finish trips the join: each decrements the
//     active counter, and whoever reaches zero — unless it is the driver
//     itself — sends the single completion token the driver waits on.
//
// The channel send/receive pairs and the atomic counter provide all the
// happens-before edges: workers read the phase descriptor only after
// receiving their wake token, and the driver mutates it again only after
// the active counter has hit zero.
type workerPool struct {
	wake   []chan bool // cap-1 per worker; true = run current phase, false = exit
	cpuset []int       // CPUs each worker pins its thread to (nil = unpinned)
	wg     sync.WaitGroup
	once   sync.Once

	// Phase descriptor: written by the driver before the wake sends,
	// read by workers after the wake receive. Exactly one of body/rbody
	// is set: rbody receives whole [lo,hi) chunks, amortising the
	// indirect call that body pays per iteration.
	body   func(i int)
	rbody  func(lo, hi int)
	n      int
	chunk  int
	cursor atomic.Int64
	active atomic.Int64
	done   chan bool // single completion token per phase
}

func newWorkerPool(workers int, cpuset []int) *workerPool {
	p := &workerPool{
		wake:   make([]chan bool, workers),
		cpuset: cpuset,
		done:   make(chan bool, 1),
	}
	p.wg.Add(workers)
	for i := range p.wake {
		p.wake[i] = make(chan bool, 1)
		go p.worker(i)
	}
	return p
}

func (p *workerPool) worker(k int) {
	defer p.wg.Done()
	if len(p.cpuset) > 0 {
		// Pin this worker: the goroutine stays locked for its whole life,
		// and a locked goroutine's thread is destroyed when it exits, so
		// the restricted mask can never leak back into the scheduler's
		// thread pool.
		runtime.LockOSThread()
		setAffinity(p.cpuset)
	}
	for <-p.wake[k] {
		p.work()
		if p.active.Add(-1) == 0 {
			p.done <- true
		}
	}
}

// work drains chunks from the shared cursor until the phase is exhausted.
func (p *workerPool) work() {
	n, chunk, body, rbody := p.n, p.chunk, p.body, p.rbody
	for {
		lo := int(p.cursor.Add(int64(chunk))) - chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if rbody != nil {
			rbody(lo, hi)
		} else {
			for i := lo; i < hi; i++ {
				body(i)
			}
		}
	}
}

// dispatch runs one phase of n iterations of f across the pool plus the
// calling goroutine, blocking until every iteration has executed.
func (p *workerPool) dispatch(n int, f func(i int), grain int) {
	// Chunk so that each participant sees a few chunks (load balance)
	// without the cursor becoming a contention point.
	parts := len(p.wake) + 1
	chunk := ceilDiv(n, parts*4)
	if floor := grain / 4; chunk < floor {
		chunk = floor
	}
	if chunk < 1 {
		chunk = 1
	}
	helpers := ceilDiv(n, chunk) - 1 // the driver takes one share
	if helpers > len(p.wake) {
		helpers = len(p.wake)
	}
	if helpers <= 0 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	p.body, p.rbody, p.n, p.chunk = f, nil, n, chunk
	p.launch(helpers)
}

// dispatchRange is dispatch for chunk-granularity bodies.
func (p *workerPool) dispatchRange(n int, f func(lo, hi int), grain int) {
	parts := len(p.wake) + 1
	chunk := ceilDiv(n, parts*4)
	if floor := grain / 4; chunk < floor {
		chunk = floor
	}
	if chunk < 1 {
		chunk = 1
	}
	helpers := ceilDiv(n, chunk) - 1
	if helpers > len(p.wake) {
		helpers = len(p.wake)
	}
	if helpers <= 0 {
		f(0, n)
		return
	}
	p.body, p.rbody, p.n, p.chunk = nil, f, n, chunk
	p.launch(helpers)
}

// launch wakes the helpers for the prepared phase, participates, and
// joins.
func (p *workerPool) launch(helpers int) {
	p.cursor.Store(0)
	p.active.Store(int64(helpers) + 1)
	for i := 0; i < helpers; i++ {
		p.wake[i] <- true
	}
	p.work()
	if p.active.Add(-1) != 0 {
		<-p.done
	}
	p.body, p.rbody = nil, nil // do not retain phase closures between supersteps
}

// stop terminates the workers. It must only be called while no phase is
// in flight (Sim's single-driver discipline guarantees that), and it is
// safe to call more than once.
func (p *workerPool) stop() {
	p.once.Do(func() {
		for i := range p.wake {
			p.wake[i] <- false
		}
		p.wg.Wait()
	})
}
