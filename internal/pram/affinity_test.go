package pram

import (
	"runtime"
	"testing"
)

func TestAffinitySupportedMatchesPlatform(t *testing.T) {
	if got, want := AffinitySupported(), runtime.GOOS == "linux"; got != want {
		t.Fatalf("AffinitySupported() = %v on %s, want %v", got, runtime.GOOS, want)
	}
}

// TestWithCPUSetPhases runs dispatched phases on a pinned pool: results
// must be correct whether or not the platform (or the host's CPU count)
// lets the pin take effect, and concurrent phase execution on pinned
// workers must stay race-free.
func TestWithCPUSetPhases(t *testing.T) {
	s := New(8, WithWorkers(4), WithCPUSet([]int{0, 1}), WithGrain(1))
	defer s.Close()
	const n = 1 << 12
	out := make([]int, n)
	for round := 0; round < 3; round++ {
		s.ParallelFor(n, func(i int) { out[i] = i + round })
		for i, v := range out {
			if v != i+round {
				t.Fatalf("round %d: out[%d] = %d, want %d", round, i, v, i+round)
			}
		}
	}
}

// TestSetAffinityBounds exercises the mask builder directly: ids the
// mask cannot hold are ignored, an effectively empty set reports
// failure, and a valid pin on Linux is accepted by the kernel. The
// goroutine locks and exits, so its restricted thread is destroyed
// rather than returned to the scheduler.
func TestSetAffinityBounds(t *testing.T) {
	if setAffinity(nil) {
		t.Fatal("setAffinity(nil) = true, want false")
	}
	if setAffinity([]int{-1, 1 << 20}) {
		t.Fatal("setAffinity(out-of-range ids) = true, want false")
	}
	if !AffinitySupported() {
		return
	}
	done := make(chan bool)
	go func() {
		runtime.LockOSThread()
		done <- setAffinity([]int{0})
	}()
	if !<-done {
		t.Fatal("setAffinity([]int{0}) failed on Linux")
	}
}
