// Package metrics is the dependency-free Prometheus-text instrumentation
// layer of the serving tier: counters, labelled counter families,
// fixed-bucket latency histograms, and a text-format writer producing
// exposition any Prometheus scraper (or the strict Parse in this
// package) accepts. internal/daemon and internal/cluster render their
// /metrics endpoints through it; pcbench's A4 ramp and the CI smoke
// jobs read those endpoints back through Parse.
//
// The package deliberately implements only what the serving tier needs:
// monotone counters, gauges rendered from existing stats snapshots, and
// cumulative histograms. All mutation is atomic — observation on the
// request path never takes a lock — and rendering is a point-in-time
// read, so a scrape concurrent with traffic sees each sample's own
// consistent value (Prometheus semantics; cross-metric consistency is
// not promised, exactly as with any production exporter).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotone int64 counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be non-negative to keep the counter monotone).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterVec is a family of counters keyed by one label value (for
// example requests by status, or shed events by reason). Children are
// created on first use and never removed, so a scrape always sees every
// label value that has ever fired.
type CounterVec struct {
	mu   sync.Mutex
	kids map[string]*Counter
}

// With returns the child counter for the given label value.
func (v *CounterVec) With(label string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.kids == nil {
		v.kids = make(map[string]*Counter)
	}
	c := v.kids[label]
	if c == nil {
		c = &Counter{}
		v.kids[label] = c
	}
	return c
}

// Snapshot returns the children in sorted label order.
func (v *CounterVec) Snapshot() []LabelledValue {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]LabelledValue, 0, len(v.kids))
	for l, c := range v.kids {
		out = append(out, LabelledValue{Label: l, Value: float64(c.Value())})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Label < out[b].Label })
	return out
}

// LabelledValue is one (label value, sample value) pair of a vec
// snapshot.
type LabelledValue struct {
	Label string
	Value float64
}

// DefBuckets are the default latency histogram bounds in seconds:
// roughly logarithmic from 100µs to ~27s, matched to the serving tier's
// range (sub-millisecond cache hits up to multi-second saturated
// solves). The +Inf bucket is implicit.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 27,
}

// Histogram is a cumulative-bucket latency histogram with atomic
// observation: per-bucket counts, a running sum, and a total count,
// rendered in the Prometheus histogram convention (counts cumulative
// across ascending le bounds, +Inf bucket equal to _count).
type Histogram struct {
	bounds  []float64 // ascending upper bounds, seconds
	counts  []atomic.Int64
	sumNano atomic.Int64
	count   atomic.Int64
}

// NewHistogram builds a histogram over the given ascending bucket
// bounds (nil = DefBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.sumNano.Add(d.Nanoseconds())
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket holding the q-th observation, the standard
// Prometheus histogram_quantile estimate. Returns 0 with ok=false when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) (float64, bool) {
	total := h.count.Load()
	if total == 0 {
		return 0, false
	}
	rank := q * float64(total)
	cum := int64(0)
	lower := 0.0
	for i, bound := range h.bounds {
		prev := cum
		cum += h.counts[i].Load()
		if float64(cum) >= rank {
			frac := (rank - float64(prev)) / float64(cum-prev)
			return lower + (bound-lower)*frac, true
		}
		lower = bound
	}
	// The rank lands in the +Inf bucket: the upper bound is unknown, so
	// report the largest finite bound (the conventional clamp).
	return h.bounds[len(h.bounds)-1], true
}

// Writer renders one exposition document: families in the order they
// are emitted, each as a # HELP / # TYPE pair followed by its samples.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter wraps an io.Writer. The first write error sticks and is
// reported by Err.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first error any write hit.
func (w *Writer) Err() error { return w.err }

func (w *Writer) printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprintf(w.w, format, args...)
}

// head emits the HELP/TYPE preamble of one family.
func (w *Writer) head(name, help, typ string) {
	w.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// fmtVal renders a sample value: integers without a fraction, floats
// with enough digits to round-trip.
func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Counter emits a single-sample counter family.
func (w *Writer) Counter(name, help string, v float64) {
	w.head(name, help, "counter")
	w.printf("%s %s\n", name, fmtVal(v))
}

// Gauge emits a single-sample gauge family.
func (w *Writer) Gauge(name, help string, v float64) {
	w.head(name, help, "gauge")
	w.printf("%s %s\n", name, fmtVal(v))
}

// CounterVec emits a labelled counter family: one sample per element,
// each labelled label=<Label>.
func (w *Writer) CounterVec(name, help, label string, vals []LabelledValue) {
	w.head(name, help, "counter")
	for _, lv := range vals {
		w.printf("%s{%s=%q} %s\n", name, label, lv.Label, fmtVal(lv.Value))
	}
}

// GaugeVec emits a labelled gauge family.
func (w *Writer) GaugeVec(name, help, label string, vals []LabelledValue) {
	w.head(name, help, "gauge")
	for _, lv := range vals {
		w.printf("%s{%s=%q} %s\n", name, label, lv.Label, fmtVal(lv.Value))
	}
}

// Histogram emits one histogram family under the given name, with an
// optional extra label rendered on every sample (pass "" for none;
// labels must be pre-rendered `key="value"` text).
func (w *Writer) Histogram(name, help string, hs map[string]*Histogram, label string) {
	w.head(name, help, "histogram")
	keys := make([]string, 0, len(hs))
	for k := range hs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := hs[k]
		lbl := func(le string) string {
			if label == "" {
				return fmt.Sprintf(`le=%q`, le)
			}
			return fmt.Sprintf(`%s=%q,le=%q`, label, k, le)
		}
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			w.printf("%s_bucket{%s} %d\n", name, lbl(fmtVal(bound)), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		w.printf("%s_bucket{%s} %d\n", name, lbl("+Inf"), cum)
		suffix := ""
		if label != "" {
			suffix = fmt.Sprintf("{%s=%q}", label, k)
		}
		w.printf("%s_sum%s %g\n", name, suffix, float64(h.sumNano.Load())/1e9)
		w.printf("%s_count%s %d\n", name, suffix, cum)
	}
}
