package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWriteParseRoundTrip renders one of every family kind and parses
// it back strictly.
func TestWriteParseRoundTrip(t *testing.T) {
	var reqs CounterVec
	reqs.With("200").Add(40)
	reqs.With("503").Add(2)
	h := NewHistogram(nil)
	h.Observe(50 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Second) // +Inf bucket
	hs := map[string]*Histogram{"interactive": h}

	var b strings.Builder
	w := NewWriter(&b)
	w.Counter("d_requests_total", "total requests", 42)
	w.Gauge("d_in_flight", "in-flight calls", 7)
	w.CounterVec("d_status_total", "by status", "status", reqs.Snapshot())
	w.Histogram("d_request_seconds", "latency", hs, "tier")
	if err := w.Err(); err != nil {
		t.Fatalf("write: %v", err)
	}

	exp, err := Parse(b.String())
	if err != nil {
		t.Fatalf("parse:\n%s\nerror: %v", b.String(), err)
	}
	for key, want := range map[string]float64{
		"d_requests_total":                            42,
		"d_in_flight":                                 7,
		`d_status_total{status="200"}`:                40,
		`d_status_total{status="503"}`:                2,
		`d_request_seconds_count{tier="interactive"}`: 3,
	} {
		if got, ok := exp.Value(key); !ok || got != want {
			t.Errorf("sample %s = %v (present=%v), want %v", key, got, ok, want)
		}
	}
	if got := exp.Sum("d_status_total"); got != 42 {
		t.Errorf("Sum(d_status_total) = %v, want 42", got)
	}
	if inf, ok := exp.Value(`d_request_seconds_bucket{le="+Inf",tier="interactive"}`); !ok || inf != 3 {
		t.Errorf("+Inf bucket = %v (present=%v), want 3", inf, ok)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no type":        "foo 3\n",
		"bad value":      "# TYPE foo counter\nfoo bar\n",
		"dup sample":     "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"bad name":       "# TYPE 9foo counter\n9foo 3\n",
		"unclosed label": "# TYPE foo counter\nfoo{a=\"b 3\n",
		"unquoted label": "# TYPE foo counter\nfoo{a=b} 3\n",
		"bad type":       "# TYPE foo enum\nfoo 3\n",
		"non-cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 6\nh_sum 1\nh_count 6\n",
		"missing inf":    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 6\nh_sum 1\nh_count 7\n",
		"bucket sans le": "# TYPE h histogram\nh_bucket{x=\"1\"} 5\nh_count 5\nh_sum 1\n",
		"bad keyword":    "# BADKW foo bar\n",
	}
	for name, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: Parse accepted %q", name, text)
		}
	}
}

// TestHistogramQuantile checks the interpolation estimate against a
// known distribution.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	if _, ok := h.Quantile(0.5); ok {
		t.Fatal("empty histogram reported a quantile")
	}
	for i := 0; i < 90; i++ {
		h.Observe(5 * time.Millisecond) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(500 * time.Millisecond) // third bucket
	}
	p50, ok := h.Quantile(0.5)
	if !ok || p50 > 0.01 {
		t.Errorf("p50 = %v (ok=%v), want <= 0.01", p50, ok)
	}
	p99, ok := h.Quantile(0.99)
	if !ok || p99 < 0.1 || p99 > 1 {
		t.Errorf("p99 = %v (ok=%v), want in (0.1, 1]", p99, ok)
	}
	// Ranks inside the +Inf bucket clamp to the largest finite bound.
	h.Observe(30 * time.Second)
	if p, _ := h.Quantile(0.9999); p != 1 {
		t.Errorf("clamped quantile = %v, want 1", p)
	}
}

// TestConcurrentObserve hammers one histogram and vec from many
// goroutines (meaningful under -race) and checks totals.
func TestConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	var vec CounterVec
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i%7) * time.Millisecond)
				vec.With([]string{"a", "b", "c"}[i%3]).Inc()
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	total := 0.0
	for _, lv := range vec.Snapshot() {
		total += lv.Value
	}
	if total != workers*per {
		t.Errorf("vec total = %v, want %d", total, workers*per)
	}
}

func TestFmtVal(t *testing.T) {
	if got := fmtVal(3); got != "3" {
		t.Errorf("fmtVal(3) = %q", got)
	}
	if got := fmtVal(0.25); got != "0.25" {
		t.Errorf("fmtVal(0.25) = %q", got)
	}
	if got := fmtVal(math.Inf(1)); got != "+Inf" && got != "+inf" {
		// %g renders +Inf; both spellings parse.
		t.Logf("fmtVal(+Inf) = %q", got)
	}
}
