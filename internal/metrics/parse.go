package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample: a metric name, its rendered
// label set (normalized to sorted key order, "" when unlabelled) and
// the value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Key is the sample's map key: name alone when unlabelled, else
// name{labels} with labels in sorted key order.
func (s Sample) Key() string {
	if s.Labels == "" {
		return s.Name
	}
	return s.Name + "{" + s.Labels + "}"
}

// Exposition is a parsed /metrics document.
type Exposition struct {
	// Samples maps Sample.Key() to value.
	Samples map[string]float64
	// Types maps family name to its declared TYPE.
	Types map[string]string
}

// Value returns the sample under key (see Sample.Key) or 0 with
// ok=false.
func (e *Exposition) Value(key string) (float64, bool) {
	v, ok := e.Samples[key]
	return v, ok
}

// Sum adds up every sample whose name matches exactly (any labels).
func (e *Exposition) Sum(name string) float64 {
	total := 0.0
	for k, v := range e.Samples {
		base, _, _ := strings.Cut(k, "{")
		if base == name {
			total += v
		}
	}
	return total
}

// Parse reads a Prometheus text-format exposition strictly: every
// sample line must parse, every sample's family must carry a prior
// # TYPE declaration (histogram _bucket/_sum/_count samples attach to
// their base family), histogram buckets must be cumulative across
// ascending le bounds with the +Inf bucket equal to _count, and no
// sample key may repeat. It exists so the golden-parse tests and the
// pcbench/CI scrapers fail loudly on any malformed exposition instead
// of silently reading garbage.
func Parse(text string) (*Exposition, error) {
	exp := &Exposition{
		Samples: make(map[string]float64),
		Types:   make(map[string]string),
	}
	type bucketRow struct {
		le  float64
		inf bool
		v   float64
	}
	buckets := make(map[string][]bucketRow) // histogram series (name+non-le labels) -> rows
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("metrics: line %d: malformed comment %q", ln+1, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("metrics: line %d: malformed TYPE %q", ln+1, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("metrics: line %d: unknown type %q", ln+1, fields[3])
				}
				exp.Types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", ln+1, err)
		}
		family := s.Name
		if exp.Types[family] == "" {
			// Histogram machinery samples attach to the base family.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base, okCut := strings.CutSuffix(s.Name, suf); okCut && exp.Types[base] == "histogram" {
					family = base
					break
				}
			}
		}
		if exp.Types[family] == "" {
			return nil, fmt.Errorf("metrics: line %d: sample %q has no TYPE declaration", ln+1, s.Name)
		}
		key := s.Key()
		if _, dup := exp.Samples[key]; dup {
			return nil, fmt.Errorf("metrics: line %d: duplicate sample %q", ln+1, key)
		}
		exp.Samples[key] = s.Value
		if strings.HasSuffix(s.Name, "_bucket") && exp.Types[family] == "histogram" {
			series, le, found := splitLE(s.Labels)
			if !found {
				return nil, fmt.Errorf("metrics: line %d: histogram bucket without le label", ln+1)
			}
			row := bucketRow{v: s.Value}
			if le == "+Inf" {
				row.inf = true
			} else if row.le, err = strconv.ParseFloat(le, 64); err != nil {
				return nil, fmt.Errorf("metrics: line %d: bad le %q", ln+1, le)
			}
			sk := strings.TrimSuffix(s.Name, "_bucket")
			if series != "" {
				sk += "{" + series + "}"
			}
			buckets[sk] = append(buckets[sk], row)
		}
	}
	// Histogram invariants: ascending le, cumulative counts, +Inf ==
	// _count.
	for sk, rows := range buckets {
		sort.Slice(rows, func(a, b int) bool {
			if rows[a].inf != rows[b].inf {
				return !rows[a].inf
			}
			return rows[a].le < rows[b].le
		})
		last := -1.0
		var inf float64
		hasInf := false
		for _, r := range rows {
			if r.v < last {
				return nil, fmt.Errorf("metrics: histogram %s buckets not cumulative", sk)
			}
			last = r.v
			if r.inf {
				inf, hasInf = r.v, true
			}
		}
		if !hasInf {
			return nil, fmt.Errorf("metrics: histogram %s missing +Inf bucket", sk)
		}
		name, series, _ := strings.Cut(sk, "{")
		ck := name + "_count"
		if series != "" {
			ck += "{" + strings.TrimSuffix(series, "}") + "}"
		}
		if cnt, ok := exp.Samples[ck]; !ok || cnt != inf {
			return nil, fmt.Errorf("metrics: histogram %s +Inf bucket %g != _count %g", sk, inf, cnt)
		}
	}
	return exp, nil
}

// splitLE removes the le pair from a normalized label string,
// returning the remaining labels and the le value.
func splitLE(labels string) (rest, le string, found bool) {
	if labels == "" {
		return "", "", false
	}
	var kept []string
	for rest := labels; rest != ""; {
		eq := strings.IndexByte(rest, '=')
		key := rest[:eq]
		val, width, err := scanQuoted(rest[eq+1:])
		if err != nil {
			return "", "", false
		}
		if key == "le" {
			le, found = val, true
		} else {
			kept = append(kept, fmt.Sprintf("%s=%q", key, val))
		}
		rest = strings.TrimPrefix(rest[eq+1+width:], ",")
	}
	return strings.Join(kept, ","), le, found
}

// parseSample parses `name 12`, `name{a="b",c="d"} 3.4`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	brace := strings.IndexByte(line, '{')
	if brace >= 0 {
		end := strings.LastIndexByte(line, '}')
		if end < brace {
			return s, fmt.Errorf("unbalanced braces in %q", line)
		}
		s.Name = line[:brace]
		labels, err := normalizeLabels(line[brace+1 : end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(line[end+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	if s.Name == "" || !validName(s.Name) {
		return s, fmt.Errorf("bad metric name in %q", line)
	}
	// A timestamp may follow the value; the serving tier never emits
	// one, so reject it to keep the golden parse strict.
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// normalizeLabels validates a label body and re-renders it with keys
// sorted, so logically equal label sets compare equal as strings.
func normalizeLabels(body string) (string, error) {
	if strings.TrimSpace(body) == "" {
		return "", nil
	}
	var pairs [][2]string
	for rest := body; rest != ""; {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", fmt.Errorf("malformed labels %q", body)
		}
		key := strings.TrimSpace(rest[:eq])
		if !validName(key) {
			return "", fmt.Errorf("bad label name %q", key)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return "", fmt.Errorf("unquoted label value in %q", body)
		}
		// Values are produced by %q, so a quoted-string scan is exact.
		val, width, err := scanQuoted(rest)
		if err != nil {
			return "", err
		}
		pairs = append(pairs, [2]string{key, val})
		rest = rest[width:]
		rest = strings.TrimPrefix(rest, ",")
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a][0] < pairs[b][0] })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p[0], p[1])
	}
	return b.String(), nil
}

// scanQuoted reads a leading double-quoted string, returning its value
// and the number of input bytes consumed.
func scanQuoted(s string) (string, int, error) {
	if len(s) == 0 || s[0] != '"' {
		return "", 0, fmt.Errorf("expected quoted string in %q", s)
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			val, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", 0, fmt.Errorf("bad quoted string in %q: %v", s, err)
			}
			return val, i + 1, nil
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted string in %q", s)
}

// validName reports whether s is a legal metric or label name
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validName(s string) bool {
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return s != ""
}
