// Command doccheck is the repo's documentation linter, run by the CI
// docs job. It enforces two properties with no dependencies beyond the
// standard library:
//
//  1. every exported top-level symbol (and every exported method on an
//     exported type) in every non-test Go file has a doc comment, and
//     every package has a package comment in at least one file;
//  2. every intra-repo markdown link — [text](relative/path) in any
//     tracked *.md file — resolves to a file that exists.
//
// Usage: go run ./internal/tools/doccheck [repo root, default "."].
// Exits 1 listing every violation; prints nothing on success.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkGoDocs(root)...)
	problems = append(problems, checkMarkdownLinks(root)...)
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// skipDir reports directories the walkers never descend into.
func skipDir(name string) bool {
	return name == ".git" || name == "testdata" || name == "node_modules"
}

// checkGoDocs parses every non-test .go file under root and returns one
// problem line per missing doc comment.
func checkGoDocs(root string) []string {
	var problems []string
	// Package comments may live in any file of the package; collect per
	// directory and report once at the end.
	pkgHasDoc := map[string]bool{}
	pkgName := map[string]string{}

	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		dir := filepath.Dir(path)
		pkgName[dir] = f.Name.Name
		if f.Doc != nil {
			pkgHasDoc[dir] = true
		}
		rel := relPath(root, path)
		for _, decl := range f.Decls {
			problems = append(problems, checkDecl(fset, rel, decl)...)
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("doccheck: %v", err))
	}
	for dir, name := range pkgName {
		if name == "main" {
			// Command packages document themselves via the command doc
			// comment, which the loop above already requires on the file
			// that carries it — but only one file must carry it.
		}
		if !pkgHasDoc[dir] {
			problems = append(problems,
				fmt.Sprintf("%s: package %s has no package comment", relPath(root, dir), name))
		}
	}
	return problems
}

// checkDecl returns a problem line for each undocumented exported
// symbol introduced by one top-level declaration.
func checkDecl(fset *token.FileSet, file string, decl ast.Decl) []string {
	var problems []string
	missing := func(pos token.Pos, kind, name string) {
		problems = append(problems,
			fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
				file, fset.Position(pos).Line, kind, name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		name := d.Name.Name
		if d.Recv != nil && len(d.Recv.List) > 0 {
			recv := receiverName(d.Recv.List[0].Type)
			if recv != "" && !ast.IsExported(recv) {
				return nil // method on an unexported type
			}
			name = recv + "." + name
		}
		missing(d.Pos(), "function", name)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					missing(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				// A doc comment on the grouped decl ("// Errors returned
				// by...") covers every spec in the group, matching godoc.
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						missing(n.Pos(), "value", n.Name)
					}
				}
			}
		}
	}
	return problems
}

// receiverName unwraps a method receiver type to its named type.
func receiverName(t ast.Expr) string {
	for {
		switch rt := t.(type) {
		case *ast.StarExpr:
			t = rt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = rt.X
		case *ast.IndexListExpr:
			t = rt.X
		case *ast.Ident:
			return rt.Name
		default:
			return ""
		}
	}
}

// mdLink matches inline markdown links; group 1 is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies every relative link in every *.md file
// under root points at an existing file. Absolute URLs and pure
// fragments are ignored; a "path#fragment" link is checked for the
// file's existence only.
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, statErr := os.Stat(resolved); statErr != nil {
				problems = append(problems,
					fmt.Sprintf("%s: broken link %q", relPath(root, path), m[1]))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("doccheck: %v", err))
	}
	return problems
}

// relPath renders path relative to root for stable, short output.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil {
		return rel
	}
	return path
}
