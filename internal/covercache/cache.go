// Package covercache is a bounded, size-aware LRU of finished path
// covers keyed on canonical graph identity, with singleflight
// coalescing: when several requests for the same canonical graph
// arrive concurrently, one solves and the rest wait for its result
// instead of re-solving.
//
// Entries store covers in *canonical* vertex numbering; callers remap
// through their graph's canonical permutation on the way in and out.
// The cache never touches the solve pipeline — fills run whatever
// closure the caller supplies — so simulated-cost invariants of the
// miss path are the caller's to keep (and they do: hits and the
// remapping around them are host-side and uncharged).
package covercache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"pathcover/internal/canon"
)

// errFillPanic marks a flight whose leader panicked; waiters retry.
var errFillPanic = errors.New("covercache: fill panicked")

// Key identifies a cache entry: the canonical graph plus every solver
// knob that changes the answer or its reported statistics. Requests
// differing only in presentation (vertex numbering, child order,
// wide/narrow index width) share an entry.
type Key struct {
	Hash  canon.Hash
	N     int
	Seed  uint64
	Procs int
	Algo  int8
}

// Entry is a finished cover in canonical vertex numbering. Verts holds
// the concatenated paths back-to-back; Ends[i] is the end offset of
// path i (path i is Verts[Ends[i-1]:Ends[i]]). The int32 element type
// is safe: vertex ids are bounded by MaxVertices = MaxInt32.
type Entry struct {
	Verts      []int32
	Ends       []int32
	NumPaths   int
	Exact      bool
	Backend    int8
	LowerBound int
	Gap        int
	Procs      int
	SimTime    int64
	SimWork    int64
}

// size is the entry's accounting charge in bytes (slices + struct).
func (e *Entry) size() int64 {
	return int64(len(e.Verts))*4 + int64(len(e.Ends))*4 + 96
}

// Outcome says how Do obtained its result.
type Outcome int8

const (
	// Miss: this call ran the fill itself and populated the cache.
	Miss Outcome = iota
	// Hit: the entry was already resident.
	Hit
	// Coalesced: another in-flight call for the same key ran the fill;
	// this call waited and shares its result.
	Coalesced
)

// Stats is a snapshot of the cache's counters and occupancy.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Capacity  int64 `json:"capacity"`
}

// flight is one in-progress fill; waiters block on done.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// Cache is a byte-bounded LRU with per-key singleflight. The zero
// value is not usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*list.Element // value: *lruItem
	lru     *list.List            // front = most recent
	flights map[Key]*flight
	bytes   int64
	cap     int64

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
}

type lruItem struct {
	key   Key
	entry *Entry
}

// New returns a cache bounded to capBytes of entry payload. capBytes
// must be positive.
func New(capBytes int64) *Cache {
	if capBytes <= 0 {
		panic("covercache: non-positive capacity")
	}
	return &Cache{
		entries: make(map[Key]*list.Element),
		lru:     list.New(),
		flights: make(map[Key]*flight),
		cap:     capBytes,
	}
}

// Get returns the resident entry for key, or nil. A hit refreshes
// recency and counts toward Stats.Hits; a miss here does NOT count
// (Do owns the miss counter — Get is for probes).
func (c *Cache) Get(key Key) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*lruItem).entry
	}
	return nil
}

// Do returns the entry for key, filling it with fill on a miss.
// Concurrent Do calls for the same key coalesce: exactly one runs
// fill, the others wait. Entries returned by Do are shared and must
// be treated as immutable.
//
// If the leader's fill fails, its error goes to the leader only;
// each waiter retries (one becomes the next leader). A waiter whose
// ctx ends stops waiting and returns ctx.Err() — the fill itself is
// not cancelled, and its result still populates the cache for others.
func (c *Cache) Do(ctx context.Context, key Key, fill func() (*Entry, error)) (*Entry, Outcome, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			c.hits.Add(1)
			return el.Value.(*lruItem).entry, Hit, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, Coalesced, ctx.Err()
			}
			if f.err != nil {
				// Leader failed; loop and race to become the new leader.
				continue
			}
			c.coalesced.Add(1)
			return f.entry, Coalesced, nil
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		entry, err := c.runFill(key, f, fill)
		if err != nil {
			return nil, Miss, err
		}
		c.misses.Add(1)
		return entry, Miss, nil
	}
}

// TryDo is Do without the coalescing wait, for callers that already
// hold an execution resource a flight leader may be queued on (a Pool
// batch item runs fills with its shard slot held; blocking on a flight
// whose leader wants that very slot would deadlock). A resident entry
// is a Hit; otherwise fill runs immediately. When no flight for key is
// in progress this call registers one, so plain Do callers still
// coalesce onto it; when one already is, the fill runs redundantly and
// the racing results unify at insert.
func (c *Cache) TryDo(key Key, fill func() (*Entry, error)) (*Entry, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*lruItem).entry, Hit, nil
	}
	var f *flight
	if _, inFlight := c.flights[key]; !inFlight {
		f = &flight{done: make(chan struct{})}
		c.flights[key] = f
	}
	c.mu.Unlock()

	var entry *Entry
	var err error
	if f != nil {
		entry, err = c.runFill(key, f, fill)
	} else {
		entry, err = fill()
		if err == nil {
			c.insert(key, entry)
		}
	}
	if err != nil {
		return nil, Miss, err
	}
	c.misses.Add(1)
	return entry, Miss, nil
}

// runFill executes the leader's fill with panic-safe flight cleanup:
// whatever happens, the flight is deregistered and waiters released.
func (c *Cache) runFill(key Key, f *flight, fill func() (*Entry, error)) (entry *Entry, err error) {
	defer func() {
		if r := recover(); r != nil {
			f.err = errFillPanic // waiters just retry; the panic is the leader's
			c.finishFlight(key, f)
			panic(r)
		}
		f.entry, f.err = entry, err
		if err == nil {
			c.insert(key, entry)
		}
		c.finishFlight(key, f)
	}()
	entry, err = fill()
	return entry, err
}

func (c *Cache) finishFlight(key Key, f *flight) {
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
}

// insert adds entry under key and evicts from the LRU tail until the
// byte budget holds. An entry larger than the whole budget is still
// admitted alone (the cache then holds just it until the next insert).
func (c *Cache) insert(key Key, entry *Entry) {
	sz := entry.size()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent insert beat us (possible across leader retries);
		// keep the resident one.
		c.lru.MoveToFront(el)
		return
	}
	c.bytes += sz
	el := c.lru.PushFront(&lruItem{key: key, entry: entry})
	c.entries[key] = el
	for c.bytes > c.cap && c.lru.Len() > 1 {
		tail := c.lru.Back()
		it := tail.Value.(*lruItem)
		c.lru.Remove(tail)
		delete(c.entries, it.key)
		c.bytes -= it.entry.size()
		c.evictions.Add(1)
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, bytes := c.lru.Len(), c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
		Capacity:  c.cap,
	}
}
