package covercache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"pathcover/internal/canon"
)

func key(i uint64) Key {
	return Key{Hash: canon.Hash{Hi: i, Lo: ^i}, N: int(i), Seed: 1}
}

// entryOfSize builds an entry whose accounted size lands near bytes
// (the fixed struct overhead means small asks clamp to the minimum).
func entryOfSize(bytes int) *Entry {
	verts := max((bytes-96)/4, 0)
	return &Entry{Verts: make([]int32, verts), Ends: []int32{int32(verts)}, NumPaths: 1}
}

func fillWith(e *Entry) func() (*Entry, error) {
	return func() (*Entry, error) { return e, nil }
}

func TestDoMissThenHit(t *testing.T) {
	c := New(1 << 20)
	want := entryOfSize(200)
	e, out, err := c.Do(context.Background(), key(1), fillWith(want))
	if err != nil || out != Miss || e != want {
		t.Fatalf("first Do: entry=%p outcome=%v err=%v, want miss of %p", e, out, err, want)
	}
	e, out, err = c.Do(context.Background(), key(1), func() (*Entry, error) {
		t.Fatal("hit ran the fill")
		return nil, nil
	})
	if err != nil || out != Hit || e != want {
		t.Fatalf("second Do: outcome=%v err=%v", out, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Coalesced != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDoCoalesces parks waiters behind a deliberately-blocked leader:
// the fill holds until every other Do is provably queued on the
// flight, so exactly one fill runs and everyone gets its entry.
func TestDoCoalesces(t *testing.T) {
	c := New(1 << 20)
	const waiters = 8
	want := entryOfSize(128)
	fills := 0
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	results := make(chan Outcome, waiters+1)
	var wg sync.WaitGroup
	launch := func(first bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, out, err := c.Do(context.Background(), key(7), func() (*Entry, error) {
				fills++
				if first {
					close(leaderIn)
				}
				<-release
				return want, nil
			})
			if err != nil || e != want {
				panic(fmt.Sprintf("Do: entry=%p err=%v", e, err))
			}
			results <- out
		}()
	}
	launch(true)
	<-leaderIn // the flight exists; everyone after this coalesces
	for i := 0; i < waiters; i++ {
		launch(false)
	}
	// Waiters block inside Do without running their fill (fills would
	// race otherwise — the -race build enforces this for us).
	close(release)
	wg.Wait()
	if fills != 1 {
		t.Fatalf("%d fills ran, want 1", fills)
	}
	// Exactly one miss (the leader); every other call either coalesced
	// onto the flight or — if its goroutine was scheduled only after the
	// fill landed — hit the finished entry. Neither ran a fill.
	miss, coal, hit := 0, 0, 0
	for i := 0; i < waiters+1; i++ {
		switch <-results {
		case Miss:
			miss++
		case Coalesced:
			coal++
		case Hit:
			hit++
		}
	}
	if miss != 1 || coal+hit != waiters {
		t.Fatalf("miss=%d coalesced=%d hit=%d, want 1 miss and %d others", miss, coal, hit, waiters)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != int64(coal) || st.Hits != int64(hit) {
		t.Fatalf("stats %+v do not match outcomes (coal=%d hit=%d)", st, coal, hit)
	}
}

// TestDoLeaderErrorRetries: a failed fill must not poison the key —
// waiters retry (racing to lead) rather than inheriting the error, and
// a later Do succeeds.
func TestDoLeaderErrorRetries(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), key(3), func() (*Entry, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want boom", err)
	}
	want := entryOfSize(128)
	e, out, err := c.Do(context.Background(), key(3), fillWith(want))
	if err != nil || out != Miss || e != want {
		t.Fatalf("retry after error: outcome=%v err=%v", out, err)
	}
}

// TestDoWaiterCancellation: a cancelled waiter unblocks with ctx.Err()
// while the leader's fill proceeds and lands in the cache.
func TestDoWaiterCancellation(t *testing.T) {
	c := New(1 << 20)
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	want := entryOfSize(128)
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), key(5), func() (*Entry, error) {
			close(leaderIn)
			<-release
			return want, nil
		})
		done <- err
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Do(ctx, key(5), fillWith(nil)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("leader err = %v", err)
	}
	if e := c.Get(key(5)); e != want {
		t.Fatal("fill result did not land despite waiter cancellation")
	}
}

// TestTryDo never waits: with a flight in progress it runs its own
// fill (the caller may hold resources the leader is queued on), and
// with no flight it registers one so Do callers can coalesce onto it.
func TestTryDo(t *testing.T) {
	c := New(1 << 20)
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	want := entryOfSize(128)
	go func() {
		c.Do(context.Background(), key(9), func() (*Entry, error) {
			close(leaderIn)
			<-release
			return want, nil
		})
	}()
	<-leaderIn
	own := entryOfSize(128)
	e, out, err := c.TryDo(key(9), fillWith(own))
	if err != nil || out != Miss || e != own {
		t.Fatalf("TryDo under flight: entry=%p outcome=%v err=%v", e, out, err)
	}
	close(release)

	// No flight: TryDo's fill fills the cache and subsequent calls hit.
	fresh := entryOfSize(128)
	if e, out, _ := c.TryDo(key(11), fillWith(fresh)); out != Miss || e != fresh {
		t.Fatalf("TryDo fresh: outcome=%v", out)
	}
	if _, out, _ := c.TryDo(key(11), fillWith(nil)); out != Hit {
		t.Fatalf("TryDo after fill: outcome=%v", out)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1024)
	for i := uint64(0); i < 4; i++ {
		c.Do(context.Background(), key(i), fillWith(entryOfSize(400)))
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions at 4x400 bytes into 1024: %+v", st)
	}
	if st.Bytes > st.Capacity {
		t.Fatalf("resident bytes %d exceed capacity %d", st.Bytes, st.Capacity)
	}
	if c.Get(key(0)) != nil {
		t.Fatal("oldest entry survived eviction")
	}
	if c.Get(key(3)) == nil {
		t.Fatal("newest entry was evicted")
	}
	// An entry larger than the whole capacity must still be admitted
	// (the cache keeps at least one resident) without wedging.
	big := entryOfSize(4096)
	c.Do(context.Background(), key(100), fillWith(big))
	if c.Get(key(100)) != big {
		t.Fatal("oversized entry not resident")
	}
	if c.Len() != 1 {
		t.Fatalf("oversized entry should evict the rest, len=%d", c.Len())
	}
}

// TestFillPanicReleasesFlight: a panicking fill must re-panic AND
// leave the key usable (no waiter wedged forever on a dead flight).
func TestFillPanicReleasesFlight(t *testing.T) {
	c := New(1 << 20)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("fill panic did not propagate")
			}
		}()
		c.Do(context.Background(), key(13), func() (*Entry, error) { panic("fill exploded") })
	}()
	want := entryOfSize(128)
	e, out, err := c.Do(context.Background(), key(13), fillWith(want))
	if err != nil || out != Miss || e != want {
		t.Fatalf("Do after panic: outcome=%v err=%v", out, err)
	}
}

// TestConcurrentMixedKeys hammers Do from many goroutines over a small
// key space — the -race build is the assertion.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New(8 << 10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(uint64(i % 7))
				e, _, err := c.Do(context.Background(), k, fillWith(entryOfSize(300)))
				if err != nil || e == nil {
					panic(fmt.Sprintf("Do: %v", err))
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses+st.Coalesced != 8*200 {
		t.Fatalf("outcome counters do not sum to requests: %+v", st)
	}
}
