package workload

import "testing"

func TestRequestsDeterministic(t *testing.T) {
	a := Requests(7, 100, 4, 8, 10)
	b := Requests(7, 100, 4, 8, 10)
	if len(a) != 100 {
		t.Fatalf("len %d, want 100", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical calls: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Requests(8, 100, 4, 8, 10)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical stream")
	}
}

func TestRequestsRangesAndCatalog(t *testing.T) {
	reqs := Requests(3, 400, 5, 9, 12)
	for i, r := range reqs {
		if r.N < 1<<5 || r.N >= 1<<10 {
			t.Fatalf("request %d: n=%d outside [2^5, 2^10)", i, r.N)
		}
	}
	cat := Catalog(reqs)
	if len(cat) > 12 {
		t.Fatalf("catalog has %d entries, want <= 12 distinct", len(cat))
	}
	if len(cat) < 2 {
		t.Fatalf("catalog degenerate: %d entries", len(cat))
	}
	// Streams must actually re-query catalog entries (that is the point).
	if len(cat) == len(reqs) {
		t.Fatal("no request repetition in a 400-draw stream over 12 graphs")
	}
	// Materialised trees are consistent with the request sizes.
	for _, r := range cat[:3] {
		if got := r.Tree().NumVertices(); got != r.N {
			t.Fatalf("Tree() has %d vertices, request says %d", got, r.N)
		}
	}
}
