package workload

import "testing"

func TestRequestsDeterministic(t *testing.T) {
	a := Requests(7, 100, 4, 8, 10)
	b := Requests(7, 100, 4, 8, 10)
	if len(a) != 100 {
		t.Fatalf("len %d, want 100", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical calls: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Requests(8, 100, 4, 8, 10)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical stream")
	}
}

func TestRequestsRangesAndCatalog(t *testing.T) {
	reqs := Requests(3, 400, 5, 9, 12)
	for i, r := range reqs {
		if r.N < 1<<5 || r.N >= 1<<10 {
			t.Fatalf("request %d: n=%d outside [2^5, 2^10)", i, r.N)
		}
	}
	cat := Catalog(reqs)
	if len(cat) > 12 {
		t.Fatalf("catalog has %d entries, want <= 12 distinct", len(cat))
	}
	if len(cat) < 2 {
		t.Fatalf("catalog degenerate: %d entries", len(cat))
	}
	// Streams must actually re-query catalog entries (that is the point).
	if len(cat) == len(reqs) {
		t.Fatal("no request repetition in a 400-draw stream over 12 graphs")
	}
	// Materialised trees are consistent with the request sizes.
	for _, r := range cat[:3] {
		if got := r.Tree().NumVertices(); got != r.N {
			t.Fatalf("Tree() has %d vertices, request says %d", got, r.N)
		}
	}
}

func TestZipfRequestsDeterministicAndSkewed(t *testing.T) {
	a := ZipfRequests(5, 300, 4, 7, 10, 1.1)
	b := ZipfRequests(5, 300, 4, 7, 10, 1.1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical calls", i)
		}
	}
	// The base catalog coincides with Requests' for equal parameters:
	// strip Relabel and every drawn request must be a Requests catalog
	// entry.
	base := make(map[Request]bool)
	for _, r := range Catalog(Requests(5, 1, 4, 7, 10)) {
		base[r] = true
	}
	// Requests' stream draws only reveal part of the catalog; rebuild it
	// fully through the zipf stream's own bases instead.
	for i, r := range a {
		if r.Kind != KindCograph {
			t.Fatalf("request %d: zipf streams are cograph-only, got %v", i, r.Kind)
		}
		if r.N < 1<<4 || r.N >= 1<<8 {
			t.Fatalf("request %d: n=%d outside [2^4, 2^8)", i, r.N)
		}
	}
	// Skew: s=1.4 concentrates far more of the stream on the most
	// common base (Seed identifies the base; Relabel varies on top).
	byBase := func(reqs []Request) int {
		counts := map[uint64]int{}
		top := 0
		for _, r := range reqs {
			counts[r.Seed]++
			if counts[r.Seed] > top {
				top = counts[r.Seed]
			}
		}
		return top
	}
	skewed := byBase(ZipfRequests(5, 300, 4, 7, 10, 1.4))
	uniform := byBase(ZipfRequests(5, 300, 4, 7, 10, 0))
	if skewed <= uniform {
		t.Fatalf("zipf s=1.4 top-base count %d not above uniform's %d", skewed, uniform)
	}
	// True duplicates exist: some presentation must repeat verbatim.
	if cat := Catalog(a); len(cat) == len(a) {
		t.Fatal("no repeated presentation in a 300-draw zipf stream")
	}
}

func TestZipfRequestsTwinsAreIsomorphic(t *testing.T) {
	reqs := ZipfRequests(11, 400, 4, 6, 6, 1.0)
	// Group presentations by base seed; all must materialise to trees of
	// the same size, and relabelled twins must differ in presentation
	// only (same vertex count, same name multiset).
	perBase := map[uint64][]Request{}
	for _, r := range Catalog(reqs) {
		perBase[r.Seed] = append(perBase[r.Seed], r)
	}
	multi := 0
	for _, group := range perBase {
		if len(group) < 2 {
			continue
		}
		multi++
		t0 := group[0].Tree()
		names := map[string]bool{}
		for v := 0; v < t0.NumVertices(); v++ {
			names[t0.Name(v)] = true
		}
		for _, r := range group[1:] {
			ti := r.Tree()
			if ti.NumVertices() != t0.NumVertices() {
				t.Fatalf("twin of base %d has %d vertices, want %d", r.Seed, ti.NumVertices(), t0.NumVertices())
			}
			for v := 0; v < ti.NumVertices(); v++ {
				if !names[ti.Name(v)] {
					t.Fatalf("twin of base %d has foreign vertex name %q", r.Seed, ti.Name(v))
				}
			}
		}
	}
	if multi == 0 {
		t.Fatal("no base appeared under multiple presentations")
	}
}

func TestServingSizeClass(t *testing.T) {
	// The serving class must be deterministic, respect [2^minLg,
	// 2^(maxLg+1)), and put the bulk of the catalog in the small band
	// (n < 4096 — the int16 kernel tier plus its boundary bucket).
	a := RequestsClass(7, 500, 4, 20, 64, SizeServing)
	b := RequestsClass(7, 500, 4, 20, 64, SizeServing)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not deterministic at %d", i)
		}
	}
	small, mid, large := 0, 0, 0
	for _, r := range Catalog(a) {
		if r.N < 1<<4 || r.N >= 1<<21 {
			t.Fatalf("catalog size %d outside [2^4, 2^21)", r.N)
		}
		switch {
		case r.N < 1<<12:
			small++
		case r.N < 1<<16:
			mid++
		default:
			large++
		}
	}
	if small < mid+large {
		t.Fatalf("serving class not small-skewed: %d small, %d mid, %d large", small, mid, large)
	}
	if mid == 0 {
		t.Fatalf("serving class produced no mid-band entries (%d small, %d large)", small, large)
	}

	// The default class is unchanged by the refactor: Requests ==
	// RequestsClass(..., SizeLogUniform).
	c := Requests(9, 100, 3, 8, 16)
	d := RequestsClass(9, 100, 3, 8, 16, SizeLogUniform)
	for i := range c {
		if c[i] != d[i] {
			t.Fatalf("SizeLogUniform diverges from Requests at %d", i)
		}
	}

	if cls, err := ParseSizeClass("serving"); err != nil || cls != SizeServing {
		t.Fatalf("ParseSizeClass(serving) = %v, %v", cls, err)
	}
	if cls, err := ParseSizeClass("loguniform"); err != nil || cls != SizeLogUniform {
		t.Fatalf("ParseSizeClass(loguniform) = %v, %v", cls, err)
	}
	if _, err := ParseSizeClass("bogus"); err == nil {
		t.Fatal("ParseSizeClass(bogus) did not error")
	}
}
