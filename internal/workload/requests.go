package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"pathcover/internal/cotree"
)

// Kind classifies a request's graph family by the solve route it
// exercises. The zero value (KindCograph) keeps pre-existing Request
// literals meaning what they always did.
type Kind int

const (
	// KindCograph is a random cotree instance — the exact cograph route.
	KindCograph Kind = iota
	// KindTree is a random spanning tree given as an edge list — not a
	// cograph (any path on 4+ vertices contains an induced P4), so it
	// exercises the exact tree backend.
	KindTree
	// KindSparse is a random sparse graph (~2n edges) given as an edge
	// list — almost surely neither a cograph nor a forest, so it
	// exercises the approximation fallback.
	KindSparse
	// KindNearCograph is a disjoint union of 4-cliques (a cograph) plus
	// one bridge edge that induces a P4 — the "one bad edge away"
	// adversarial case for recognition-based routing.
	KindNearCograph
)

// String renders the catalog-entry kind for table headers.
func (k Kind) String() string {
	switch k {
	case KindCograph:
		return "cograph"
	case KindTree:
		return "tree"
	case KindSparse:
		return "sparse"
	case KindNearCograph:
		return "near-cograph"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Request is one query of a serving workload: which graph of the
// catalog it asks about. Serving traffic re-queries a bounded catalog
// of graphs (the same families over and over) rather than presenting a
// fresh graph per request, so the stream is expressed as draws from a
// catalog; Catalog collapses the distinct entries. Request stays a
// comparable value — it is used as a map key by serving registries.
type Request struct {
	Seed  uint64
	N     int
	Shape Shape
	Kind  Kind
	// Relabel, when non-zero, rewrites the materialised cotree into a
	// relabelled-isomorphic presentation (permuted vertex ids, shuffled
	// child order — cotree.Permute with this seed): the same graph, a
	// different wire form. Distinct Relabel values are distinct catalog
	// entries to a registry keyed on Request values, but one graph to
	// anything keyed on canonical identity. Zero (the zero value, so
	// pre-existing literals are unchanged) keeps the original
	// presentation. Cograph requests only; the edge-list kinds ignore it.
	Relabel uint64
}

// Tree materialises the request's cotree (KindCograph only; the other
// kinds have no cotree — use Edges).
func (r Request) Tree() *cotree.Tree {
	if r.Kind != KindCograph {
		panic("workload: Tree called on a non-cograph request")
	}
	t := Random(r.Seed, r.N, r.Shape)
	if r.Relabel != 0 {
		t = cotree.Permute(t, r.Relabel)
	}
	return t
}

// Edges materialises the request's edge list (the non-cograph kinds;
// KindCograph graphs are cotree-built and have no edge-list form here).
func (r Request) Edges() [][2]int {
	switch r.Kind {
	case KindTree:
		return TreeEdges(r.Seed, r.N)
	case KindSparse:
		return SparseEdges(r.Seed, r.N)
	case KindNearCograph:
		return NearCographEdges(r.Seed, r.N)
	}
	panic("workload: Edges called on a cograph request")
}

// TreeEdges returns a random labelled tree on n vertices (each vertex
// attaches to a uniform earlier one), deterministic in the seed.
func TreeEdges(seed uint64, n int) [][2]int {
	rng := rand.New(rand.NewPCG(seed, 0x7ee5))
	edges := make([][2]int, 0, max(n-1, 0))
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{rng.IntN(v), v})
	}
	return edges
}

// SparseEdges returns a random graph with about 2n distinct edges on n
// vertices, deterministic in the seed. For n past a handful the result
// contains induced P4s and cycles with overwhelming probability, making
// it the approximation route's steady diet.
func SparseEdges(seed uint64, n int) [][2]int {
	rng := rand.New(rand.NewPCG(seed, 0x5a135))
	m := 2 * n
	seen := make(map[[2]int]bool, m)
	edges := make([][2]int, 0, m)
	for len(edges) < m && len(edges) < n*(n-1)/2 {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, [2]int{u, v})
	}
	return edges
}

// NearCographEdges returns a disjoint union of 4-cliques — a cograph —
// plus a single bridge between the first two cliques, which induces a
// P4 and makes the whole graph fail recognition by exactly one edge.
func NearCographEdges(seed uint64, n int) [][2]int {
	var edges [][2]int
	for base := 0; base < n; base += 4 {
		top := min(base+4, n)
		for u := base; u < top; u++ {
			for v := u + 1; v < top; v++ {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	if n >= 8 {
		// Bridge between clique 0 and clique 1: for u in K0\{3}, 3, 4,
		// v in K1\{4}, the vertices u-3-4-v induce a P4.
		edges = append(edges, [2]int{3, 4})
	}
	_ = seed // the family is deterministic; seed kept for signature symmetry
	return edges
}

// SizeClass selects the size distribution of a serving catalog.
type SizeClass int

const (
	// SizeLogUniform draws bucket exponents uniformly from [minLg,
	// maxLg] — every size decade equally likely (the historical
	// behaviour and the zero value).
	SizeLogUniform SizeClass = iota
	// SizeServing skews the catalog toward the small graphs real
	// serving traffic is dominated by: ~70% of entries land in
	// [2^minLg, 2^12) — mostly the int16 kernel tier, deliberately
	// straddling its n=3270 bound — ~25% in the mid band up to 2^16
	// (the int32 tier), and the rest anywhere in [minLg, maxLg].
	// When maxLg is small enough that the bands collapse, it degrades
	// toward SizeLogUniform.
	SizeServing
)

// String renders the size-class name as accepted by -sizeclass.
func (c SizeClass) String() string {
	switch c {
	case SizeLogUniform:
		return "loguniform"
	case SizeServing:
		return "serving"
	}
	return fmt.Sprintf("SizeClass(%d)", int(c))
}

// ParseSizeClass maps the flag spellings onto a SizeClass.
func ParseSizeClass(s string) (SizeClass, error) {
	switch s {
	case "loguniform", "log-uniform", "uniform":
		return SizeLogUniform, nil
	case "serving", "small":
		return SizeServing, nil
	}
	return 0, fmt.Errorf("workload: unknown size class %q (want loguniform or serving)", s)
}

// Requests returns a deterministic serving workload of count queries.
// The catalog holds `distinct` graphs whose sizes are log-uniform in
// [2^minLg, 2^(maxLg+1)) — a bucket exponent is drawn uniformly from
// [minLg, maxLg], then the size uniformly within that power-of-two
// bucket — with shapes cycling through the three silhouettes; the
// stream then draws count requests uniformly from the catalog.
// Identical Request values denote the identical graph, so callers can
// (and should) materialise each distinct request once and reuse it —
// exactly what a serving layer's graph registry does.
func Requests(seed uint64, count, minLg, maxLg, distinct int) []Request {
	return RequestsClass(seed, count, minLg, maxLg, distinct, SizeLogUniform)
}

// RequestsClass is Requests with an explicit catalog size class.
func RequestsClass(seed uint64, count, minLg, maxLg, distinct int, class SizeClass) []Request {
	rng := rand.New(rand.NewPCG(seed, 0x5eed5))
	catalog := catalogOf(rng, seed, minLg, maxLg, distinct, class)
	out := make([]Request, count)
	for i := range out {
		out[i] = catalog[rng.IntN(len(catalog))]
	}
	return out
}

// drawLg picks a catalog entry's bucket exponent under the size class.
func drawLg(rng *rand.Rand, minLg, maxLg int, class SizeClass) int {
	if class == SizeServing && maxLg > minLg {
		smallMax := min(11, maxLg) // 2^11 buckets reach 4095: the int16 tier plus its boundary
		midMax := min(15, maxLg)   // up to 64K: the int32 serving band
		switch d := rng.IntN(100); {
		case d < 70:
			return minLg + rng.IntN(smallMax-minLg+1)
		case d < 95 && midMax > smallMax:
			return smallMax + 1 + rng.IntN(midMax-smallMax)
		}
	}
	return minLg + rng.IntN(maxLg-minLg+1)
}

// catalogOf builds the distinct entries of a serving catalog: sizes
// drawn per the size class (log-uniform by default), shapes cycling
// through the silhouettes. rng must be freshly seeded — Requests and
// ZipfRequests share this so their catalogs (though not their streams)
// coincide for equal parameters.
func catalogOf(rng *rand.Rand, seed uint64, minLg, maxLg, distinct int, class SizeClass) []Request {
	if minLg < 1 {
		minLg = 1
	}
	if maxLg < minLg {
		maxLg = minLg
	}
	if distinct < 1 {
		distinct = 1
	}
	catalog := make([]Request, distinct)
	for i := range catalog {
		lg := drawLg(rng, minLg, maxLg, class)
		n := 1 << lg
		if lg > 1 {
			n += rng.IntN(n) // power-of-two bucket, uniform within it
		}
		catalog[i] = Request{
			Seed:  seed + uint64(i)*0x9e3779b97f4a7c15,
			N:     n,
			Shape: Shape(i % 3),
		}
	}
	return catalog
}

// zipfVariants is how many presentations each base graph of a
// ZipfRequests catalog appears under: the original plus two
// relabelled-isomorphic twins.
const zipfVariants = 3

// ZipfRequests returns a repeat-heavy serving workload: a catalog of
// `distinct` base cographs (sized and shaped exactly as in Requests),
// each appearing under zipfVariants presentations — the original and
// relabelled-isomorphic twins (cotree.Permute: same graph, permuted
// vertex ids and shuffled child order). The stream draws base graphs
// Zipf-distributed by catalog rank — P(rank k) ∝ 1/(k+1)^s, so larger
// s concentrates the stream onto fewer graphs — and picks the
// presentation uniformly. This is the canonical-identity cache's
// adversarial diet: a Request-keyed registry sees up to
// distinct×zipfVariants distinct entries, while a canonical-form cache
// sees only `distinct` graphs, so the achievable hit rate cliff
// between the two is built into the stream. s <= 0 degrades to the
// uniform draw of Requests (but keeps the relabelled twins).
func ZipfRequests(seed uint64, count, minLg, maxLg, distinct int, s float64) []Request {
	return ZipfRequestsClass(seed, count, minLg, maxLg, distinct, s, SizeLogUniform)
}

// ZipfRequestsClass is ZipfRequests with an explicit catalog size class.
func ZipfRequestsClass(seed uint64, count, minLg, maxLg, distinct int, s float64, class SizeClass) []Request {
	if distinct < 1 {
		distinct = 1
	}
	catalog := catalogOf(rand.New(rand.NewPCG(seed, 0x5eed5)), seed, minLg, maxLg, distinct, class)
	// Inverse-CDF table over ranks: cum[k] = sum_{j<=k} (j+1)^-s.
	cum := make([]float64, distinct)
	total := 0.0
	for k := 0; k < distinct; k++ {
		w := 1.0
		if s > 0 {
			w = 1 / powf(float64(k+1), s)
		}
		total += w
		cum[k] = total
	}
	rng := rand.New(rand.NewPCG(seed, 0x21bf))
	out := make([]Request, count)
	for i := range out {
		u := rng.Float64() * total
		k := sort.SearchFloat64s(cum, u)
		if k >= distinct {
			k = distinct - 1
		}
		r := catalog[k]
		if v := rng.IntN(zipfVariants); v > 0 {
			// A deterministic per-(entry, variant) relabel seed: the same
			// twin re-drawn later is the identical Request value, so the
			// stream has true duplicates of every presentation.
			r.Relabel = r.Seed ^ (uint64(v) * 0xd1342543de82ef95)
		}
		out[i] = r
	}
	return out
}

// powf is math.Pow with the common fast cases inlined (s is typically
// 1 in serving benchmarks).
func powf(x, y float64) float64 {
	if y == 1 {
		return x
	}
	return math.Pow(x, y)
}

// maxNonCographN caps the size of edge-list catalog entries: building a
// non-cograph Graph runs cograph recognition first, whose bitset
// adjacency is Θ(n²/64) memory — fine at this scale, ruinous at the
// cotree catalog's millions of vertices.
const maxNonCographN = 4096

// MixedRequests returns a serving workload like Requests whose catalog
// interleaves non-cograph entries — random trees, random sparse graphs
// and near-cographs (one P4-inducing edge) — between the cotree
// instances: two in five entries degrade, so a serving run exercises
// the tree and approximation fallbacks alongside the exact pipeline.
// Non-cograph entries are clamped to maxNonCographN vertices (the
// recognition step is quadratic-bit in n); the cotree entries keep the
// full size range.
func MixedRequests(seed uint64, count, minLg, maxLg, distinct int) []Request {
	return MixedRequestsClass(seed, count, minLg, maxLg, distinct, SizeLogUniform)
}

// MixedRequestsClass is MixedRequests with an explicit catalog size
// class.
func MixedRequestsClass(seed uint64, count, minLg, maxLg, distinct int, class SizeClass) []Request {
	reqs := RequestsClass(seed, count, minLg, maxLg, distinct, class)
	// Rewrite a deterministic subset of the catalog in place: every
	// distinct Request value maps to one rewritten value, so the
	// stream's catalog structure (and the registry pattern) survives.
	kindOf := func(r Request) Request {
		h := r.Seed ^ uint64(r.N)*0x9e3779b97f4a7c15
		switch h % 5 {
		case 0:
			r.Kind = KindTree
		case 1:
			switch h >> 8 % 2 {
			case 0:
				r.Kind = KindSparse
			default:
				r.Kind = KindNearCograph
			}
		default:
			return r // cograph, untouched
		}
		if r.N > maxNonCographN {
			r.N = maxNonCographN
		}
		r.Shape = Mixed // shapes are cotree silhouettes; irrelevant here
		return r
	}
	for i := range reqs {
		reqs[i] = kindOf(reqs[i])
	}
	return reqs
}

// Catalog returns the distinct requests of a stream in first-appearance
// order. Materialise graphs from this, then serve the stream by lookup.
func Catalog(reqs []Request) []Request {
	seen := make(map[Request]bool, len(reqs))
	var out []Request
	for _, r := range reqs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}
