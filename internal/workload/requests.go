package workload

import (
	"math/rand/v2"

	"pathcover/internal/cotree"
)

// Request is one query of a serving workload: which graph of the
// catalog it asks about. Serving traffic re-queries a bounded catalog
// of graphs (the same families over and over) rather than presenting a
// fresh graph per request, so the stream is expressed as draws from a
// catalog; Catalog collapses the distinct entries.
type Request struct {
	Seed  uint64
	N     int
	Shape Shape
}

// Tree materialises the request's cotree.
func (r Request) Tree() *cotree.Tree { return Random(r.Seed, r.N, r.Shape) }

// Requests returns a deterministic serving workload of count queries.
// The catalog holds `distinct` graphs whose sizes are log-uniform in
// [2^minLg, 2^(maxLg+1)) — a bucket exponent is drawn uniformly from
// [minLg, maxLg], then the size uniformly within that power-of-two
// bucket — with shapes cycling through the three silhouettes; the
// stream then draws count requests uniformly from the catalog.
// Identical Request values denote the identical graph, so callers can
// (and should) materialise each distinct request once and reuse it —
// exactly what a serving layer's graph registry does.
func Requests(seed uint64, count, minLg, maxLg, distinct int) []Request {
	if minLg < 1 {
		minLg = 1
	}
	if maxLg < minLg {
		maxLg = minLg
	}
	if distinct < 1 {
		distinct = 1
	}
	rng := rand.New(rand.NewPCG(seed, 0x5eed5))
	catalog := make([]Request, distinct)
	for i := range catalog {
		lg := minLg + rng.IntN(maxLg-minLg+1)
		n := 1 << lg
		if lg > 1 {
			n += rng.IntN(n) // log-uniform bucket, uniform within it
		}
		catalog[i] = Request{
			Seed:  seed + uint64(i)*0x9e3779b97f4a7c15,
			N:     n,
			Shape: Shape(i % 3),
		}
	}
	out := make([]Request, count)
	for i := range out {
		out[i] = catalog[rng.IntN(distinct)]
	}
	return out
}

// Catalog returns the distinct requests of a stream in first-appearance
// order. Materialise graphs from this, then serve the stream by lookup.
func Catalog(reqs []Request) []Request {
	seen := make(map[Request]bool, len(reqs))
	var out []Request
	for _, r := range reqs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}
