package workload

import (
	"testing"
	"testing/quick"

	"pathcover/internal/baseline"
	"pathcover/internal/cotree"
	"pathcover/internal/pram"
)

func height(t *cotree.Tree) int {
	var h func(u int) int
	h = func(u int) int {
		best := 0
		for _, c := range t.Children[u] {
			if d := h(c) + 1; d > best {
				best = d
			}
		}
		return best
	}
	return h(t.Root)
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(42, 100, Mixed)
	b := Random(42, 100, Mixed)
	if a.String() != b.String() {
		t.Fatal("same seed produced different trees")
	}
	c := Random(43, 100, Mixed)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical trees (suspicious)")
	}
}

func TestRandomValid(t *testing.T) {
	f := func(seed uint64, nRaw uint16, shapeRaw uint8) bool {
		n := int(nRaw%300) + 1
		shape := Shape(shapeRaw % 3)
		tr := Random(seed, n, shape)
		return tr.Validate() == nil && tr.NumVertices() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestShapesHaveExpectedHeights(t *testing.T) {
	n := 512
	hb := height(Random(7, n, Balanced))
	hc := height(Random(7, n, Caterpillar))
	if hb > 2*10 { // ~2*log2(512)
		t.Errorf("balanced height %d too large", hb)
	}
	if hc < n/4 {
		t.Errorf("caterpillar height %d too small", hc)
	}
}

func TestFamilies(t *testing.T) {
	s := pram.NewSerial()
	check := func(name string, tr *cotree.Tree, wantPaths int) {
		t.Helper()
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b := tr.Binarize(s)
		L := b.MakeLeftist(s, 1)
		if got := baseline.PathCounts(b, L)[b.Root]; got != wantPaths {
			t.Errorf("%s: min cover %d, want %d", name, got, wantPaths)
		}
	}
	check("K10", Clique(10), 1)
	check("E10", Empty(10), 10)
	check("K_{3,5}", CompleteBipartite(3, 5), 2) // 5-3=2? p(v)=5 paths vs L(w)=3: 5-3=2
	check("K_{5,5}", CompleteBipartite(5, 5), 1)
	check("3xK4", UnionOfCliques(3, 4), 3)
	check("star10", Star(10), 8) // K_{1,9}: 9-1 = 8
	check("multipartite", CompleteMultipartite(2, 2, 2), 1)

	th := Threshold(3, 64)
	if th.NumVertices() != 64 {
		t.Fatal("threshold vertex count")
	}
	if err := th.Validate(); err != nil {
		t.Fatal(err)
	}
	// Threshold cotrees are caterpillars: height Ω(n / 2) typically.
	if h := height(th); h < 8 {
		t.Errorf("threshold cotree suspiciously shallow: %d", h)
	}
}

func TestSingletonFamilies(t *testing.T) {
	for _, tr := range []*cotree.Tree{Clique(1), Empty(1), UnionOfCliques(1, 1)} {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if tr.NumVertices() != 1 {
			t.Fatal("singleton family broken")
		}
	}
}
