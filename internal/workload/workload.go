// Package workload generates cotree instances for tests, examples and
// the experiment harness: seeded random cotrees with controllable shape
// and the standard cograph families (cliques, empty graphs, complete
// multipartite graphs, threshold graphs, unions of cliques).
//
// Everything is deterministic in the seed, so experiment tables are
// reproducible.
package workload

import (
	"fmt"
	"math/rand/v2"

	"pathcover/internal/cotree"
)

// Shape selects the silhouette of a random cotree.
type Shape int

const (
	// Mixed is an unconstrained random cotree (random arity 2..4,
	// random split of leaves).
	Mixed Shape = iota
	// Balanced splits leaves evenly, giving height Θ(log n) — the
	// friendly case for naive level-by-level parallelization.
	Balanced
	// Caterpillar peels one leaf per internal node, giving height
	// Θ(n) — the adversarial case that separates the bracket algorithm
	// from naive parallelization (paper §2).
	Caterpillar
)

// String renders the cotree shape name as accepted by -shape.
func (s Shape) String() string {
	switch s {
	case Mixed:
		return "mixed"
	case Balanced:
		return "balanced"
	case Caterpillar:
		return "caterpillar"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// Random builds a random canonical cotree with n leaves.
func Random(seed uint64, n int, shape Shape) *cotree.Tree {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b9))
	lbl := cotree.Label1
	if rng.IntN(2) == 0 {
		lbl = cotree.Label0
	}
	if shape == Caterpillar {
		// Built directly (the algebra would copy O(n) nodes per level).
		return chain(n, lbl)
	}
	id := 0
	var build func(n int, label int8) *cotree.Tree
	build = func(n int, label int8) *cotree.Tree {
		if n == 1 {
			id++
			return cotree.Single(fmt.Sprintf("v%d", id))
		}
		child := cotree.Label0
		if label == cotree.Label0 {
			child = cotree.Label1
		}
		var sizes []int
		switch shape {
		case Balanced:
			sizes = []int{n / 2, n - n/2}
		default:
			k := 2
			if n > 2 {
				k = 2 + rng.IntN(min(n-1, 4)-1)
			}
			sizes = make([]int, k)
			for i := range sizes {
				sizes[i] = 1
			}
			for extra := n - k; extra > 0; extra-- {
				sizes[rng.IntN(k)]++
			}
		}
		parts := make([]*cotree.Tree, len(sizes))
		for i, sz := range sizes {
			parts[i] = build(sz, child)
		}
		if label == cotree.Label1 {
			return cotree.Join(parts...)
		}
		return cotree.Union(parts...)
	}
	return build(n, lbl)
}

// chain builds the alternating caterpillar cotree with n leaves and the
// given root label directly in arena form, in O(n):
//
//	(L v0 (L' v1 (L v2 ... )))
//
// Internal node k (0 = root) holds leaf k as one child and the next
// chain node (or the final leaf) as the other.
func chain(n int, topLabel int8) *cotree.Tree {
	if n == 1 {
		return cotree.Single("v0")
	}
	nn := 2*n - 1 // n-1 internals then n leaves
	t := &cotree.Tree{
		Label:    make([]int8, nn),
		Parent:   make([]int, nn),
		Children: make([][]int, nn),
		Root:     0,
		VertexOf: make([]int, nn),
		LeafOf:   make([]int, n),
		Names:    make([]string, n),
	}
	leaf := func(v int) int { return n - 1 + v }
	for k := 0; k < n-1; k++ {
		lbl := topLabel
		if k%2 == 1 {
			lbl = 1 - topLabel
		}
		t.Label[k] = lbl
		t.VertexOf[k] = -1
		deep := k + 1
		if k == n-2 {
			deep = leaf(n - 1)
		}
		t.Children[k] = []int{deep, leaf(k)}
		t.Parent[deep] = k
		t.Parent[leaf(k)] = k
	}
	t.Parent[0] = -1
	for v := 0; v < n; v++ {
		id := leaf(v)
		t.Label[id] = cotree.LabelLeaf
		t.VertexOf[id] = v
		t.LeafOf[v] = id
		t.Names[v] = fmt.Sprintf("v%d", v)
	}
	return t
}

// Clique returns the cotree of the complete graph K_n.
func Clique(n int) *cotree.Tree {
	return flat(n, cotree.Label1, "k")
}

// Empty returns the cotree of the edgeless graph on n vertices.
func Empty(n int) *cotree.Tree {
	return flat(n, cotree.Label0, "e")
}

func flat(n int, label int8, prefix string) *cotree.Tree {
	if n == 1 {
		return cotree.Single(prefix + "0")
	}
	parts := make([]*cotree.Tree, n)
	for i := range parts {
		parts[i] = cotree.Single(fmt.Sprintf("%s%d", prefix, i))
	}
	if label == cotree.Label1 {
		return cotree.Join(parts...)
	}
	return cotree.Union(parts...)
}

// CompleteBipartite returns K_{a,b}: the join of two edgeless graphs.
func CompleteBipartite(a, b int) *cotree.Tree {
	left := flat(a, cotree.Label0, "a")
	right := flat(b, cotree.Label0, "b")
	return cotree.Join(left, right)
}

// CompleteMultipartite returns the join of edgeless parts of the given
// sizes.
func CompleteMultipartite(sizes ...int) *cotree.Tree {
	parts := make([]*cotree.Tree, len(sizes))
	for i, sz := range sizes {
		parts[i] = flat(sz, cotree.Label0, fmt.Sprintf("p%d_", i))
	}
	return cotree.Join(parts...)
}

// UnionOfCliques returns k disjoint copies of K_size.
func UnionOfCliques(k, size int) *cotree.Tree {
	parts := make([]*cotree.Tree, k)
	for i := range parts {
		sub := make([]*cotree.Tree, size)
		for j := range sub {
			sub[j] = cotree.Single(fmt.Sprintf("c%d_%d", i, j))
		}
		if size == 1 {
			parts[i] = sub[0]
		} else {
			parts[i] = cotree.Join(sub...)
		}
	}
	if k == 1 {
		return parts[0]
	}
	return cotree.Union(parts...)
}

// Star returns K_{1,n-1}: one center joined to n-1 isolated leaves.
func Star(n int) *cotree.Tree {
	return cotree.Join(flat(n-1, cotree.Label0, "leaf"), cotree.Single("center"))
}

// Threshold returns a threshold graph on n vertices: each new vertex is
// either isolated (union) or dominating (join), driven by the seed.
// Threshold graphs are exactly the cographs whose cotree is a
// caterpillar, making them the height-adversarial family. Built directly
// in arena form (O(n)); runs of equal operations share one node, keeping
// the tree canonical.
func Threshold(seed uint64, n int) *cotree.Tree {
	rng := rand.New(rand.NewPCG(seed, 0x51ed))
	if n == 1 {
		return cotree.Single("t0")
	}
	// Operation per added vertex (true = join / dominating).
	ops := make([]bool, n)
	for i := 1; i < n; i++ {
		ops[i] = rng.IntN(2) == 0
	}
	t := &cotree.Tree{
		LeafOf: make([]int, n),
		Names:  make([]string, n),
	}
	addNode := func(label int8, vertex int) int {
		id := len(t.Label)
		t.Label = append(t.Label, label)
		t.Parent = append(t.Parent, -1)
		t.Children = append(t.Children, nil)
		t.VertexOf = append(t.VertexOf, vertex)
		if vertex >= 0 {
			t.LeafOf[vertex] = id
			t.Names[vertex] = fmt.Sprintf("t%d", vertex)
		}
		return id
	}
	attach := func(parent, child int) {
		t.Children[parent] = append(t.Children[parent], child)
		t.Parent[child] = parent
	}
	root := addNode(cotree.LabelLeaf, 0)
	for i := 1; i < n; i++ {
		lbl := cotree.Label0
		if ops[i] {
			lbl = cotree.Label1
		}
		leaf := addNode(cotree.LabelLeaf, i)
		if t.Label[root] == lbl {
			attach(root, leaf) // extend the current run
			continue
		}
		nr := addNode(lbl, -1)
		attach(nr, root)
		attach(nr, leaf)
		root = nr
	}
	t.Root = root
	return t
}
