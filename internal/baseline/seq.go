// Package baseline implements the comparators of the paper:
//
//   - the Lin–Olariu–Pruesse O(n) sequential minimum path cover algorithm
//     (Lemma 2.3), used as the work-optimality reference;
//   - an emulated "naive parallelization" whose simulated time is
//     O(height(T) * log n) — the strawman of the paper's §2 that the
//     bracket technique removes;
//   - a Held–Karp style brute-force minimum path cover for small graphs,
//     the minimality oracle of the test suite.
package baseline

import (
	"pathcover/internal/cotree"
	"pathcover/internal/pram"
)

// cover is a linked collection of vertex-disjoint paths over the global
// vertex arrays of a run.
type cover struct {
	first, last int // head vertices of the first and last path; -1 if empty
	paths       int
}

type seqState struct {
	nxt, prv []int // intra-path links per vertex
	pathNext []int // head -> head of the next path in its cover
	tail     []int // head -> tail vertex of its path
	plen     []int // head -> number of vertices in its path
}

// SequentialCover computes a minimum path cover of the cograph given by
// a leftist binarized cotree b with leaf counts L, in O(n) time (paper
// Lemma 2.3). The implementation keeps every cover as a linked list of
// linked paths so that case-1 bridging costs O(L(w)) amortized against
// the drop in path count and case-2 splices whole existing paths of G(w)
// as segments, touching only O(p(v) + p(w)) links.
func SequentialCover(b *cotree.Bin, L []int) [][]int {
	return sequentialCoverFrom(b, L, b.Root)
}

// sequentialCoverFrom runs the bottom-up merge for the subtree rooted at
// the given cotree node and materializes its cover.
func sequentialCoverFrom(b *cotree.Bin, L []int, from int) [][]int {
	n := b.NumVertices()
	if n == 0 {
		return nil
	}
	nNodes := b.NumNodes()
	st := &seqState{
		nxt:      make([]int, n),
		prv:      make([]int, n),
		pathNext: make([]int, n),
		tail:     make([]int, n),
		plen:     make([]int, n),
	}
	for v := 0; v < n; v++ {
		st.nxt[v], st.prv[v], st.pathNext[v] = -1, -1, -1
		st.tail[v] = v
		st.plen[v] = 1
	}
	covers := make([]cover, nNodes)

	// Iterative post-order over the binary cotree.
	type frame struct {
		node  int
		stage int
	}
	stack := []frame{{from, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		u := f.node
		if b.IsLeaf(u) {
			v := b.VertexOf[u]
			covers[u] = cover{first: v, last: v, paths: 1}
			stack = stack[:len(stack)-1]
			continue
		}
		switch f.stage {
		case 0:
			f.stage = 1
			stack = append(stack, frame{b.Left[u], 0})
		case 1:
			f.stage = 2
			stack = append(stack, frame{b.Right[u], 0})
		default:
			cv, cw := covers[b.Left[u]], covers[b.Right[u]]
			if !b.One[u] {
				covers[u] = st.concat(cv, cw)
			} else if cv.paths > L[b.Right[u]] {
				covers[u] = st.bridge(cv, cw)
			} else {
				covers[u] = st.interleave(cv, cw)
			}
			stack = stack[:len(stack)-1]
		}
	}

	// Materialize the cover of the requested subtree.
	var out [][]int
	for h := covers[from].first; h >= 0; h = st.pathNext[h] {
		path := make([]int, 0, st.plen[h])
		for v := h; v >= 0; v = st.nxt[v] {
			path = append(path, v)
		}
		out = append(out, path)
	}
	return out
}

// concat is the 0-node rule: the union of the two covers.
func (st *seqState) concat(a, b cover) cover {
	if a.paths == 0 {
		return b
	}
	if b.paths == 0 {
		return a
	}
	st.pathNext[st.lastHead(a)] = b.first
	return cover{first: a.first, last: b.last, paths: a.paths + b.paths}
}

func (st *seqState) lastHead(c cover) int { return c.last }

// link joins the tail of the path headed at h1 to the head h2, producing
// one path headed at h1.
func (st *seqState) link(h1, h2 int) {
	t := st.tail[h1]
	st.nxt[t] = h2
	st.prv[h2] = t
	st.tail[h1] = st.tail[h2]
	st.plen[h1] += st.plen[h2]
}

// bridge is Case 1 (p(v) > L(w)): the L(w) vertices of G(w) bridge
// L(w)+1 paths of G(v)'s cover into one.
func (st *seqState) bridge(cv, cw cover) cover {
	// Enumerate the vertices of G(w); their path structure is discarded.
	var ws []int
	for h := cw.first; h >= 0; {
		nh := st.pathNext[h]
		for v := h; v >= 0; {
			nv := st.nxt[v]
			ws = append(ws, v)
			st.nxt[v], st.prv[v], st.pathNext[v] = -1, -1, -1
			st.tail[v], st.plen[v] = v, 1
			v = nv
		}
		h = nh
	}
	// Collect the first len(ws)+1 path heads of cv.
	k := len(ws)
	heads := make([]int, 0, k+1)
	h := cv.first
	for i := 0; i <= k; i++ {
		heads = append(heads, h)
		h = st.pathNext[h]
	}
	// Join: heads[0] w0 heads[1] w1 ... heads[k].
	merged := heads[0]
	for i, w := range ws {
		st.link(merged, w)
		st.link(merged, heads[i+1])
	}
	st.pathNext[merged] = h // remaining paths of cv
	last := cv.last
	if last == heads[k] { // all paths consumed into one
		last = merged
	}
	return cover{first: merged, last: last, paths: cv.paths - k}
}

// interleave is Case 2 (p(v) <= L(w)): the cover of G(u) is a single
// Hamiltonian path. Whole paths of G(w) serve as bridge segments between
// consecutive paths of G(v); surplus segments are spliced into interior
// edges of the G(v) paths (every vertex of G(w) is adjacent to every
// vertex of G(v), and a segment's interior edges are real edges of
// G(w)), with the two path ends as final spare slots.
func (st *seqState) interleave(cv, cw cover) cover {
	// Segment pool: the paths of G(w).
	var segs []int
	for h := cw.first; h >= 0; h = st.pathNext[h] {
		segs = append(segs, h)
	}
	seams := cv.paths - 1
	// Need at least `seams` segments: cut leading vertices off long
	// segments until the pool is large enough (capacity L(w) >= p(v)).
	for i := 0; len(segs) < seams; i++ {
		for st.plen[segs[i]] >= 2 && len(segs) < seams {
			h := segs[i]
			h2 := st.nxt[h]
			st.nxt[h] = -1
			st.prv[h2] = -1
			st.tail[h2] = st.tail[h]
			st.plen[h2] = st.plen[h] - 1
			st.tail[h] = h
			st.plen[h] = 1
			segs = append(segs, h2)
		}
	}
	for _, h := range segs {
		st.pathNext[h] = -1
	}

	// v-paths.
	vheads := make([]int, 0, cv.paths)
	for h := cv.first; h >= 0; h = st.pathNext[h] {
		vheads = append(vheads, h)
	}

	// Splice surplus segments into interior edges of the v-paths.
	surplus := segs[seams:]
	si := 0
	for _, h := range vheads {
		if si >= len(surplus) {
			break
		}
		x := h
		for st.nxt[x] >= 0 && si < len(surplus) {
			y := st.nxt[x]
			t := surplus[si]
			si++
			// x - t...tail(t) - y
			tt := st.tail[t]
			st.nxt[x] = t
			st.prv[t] = x
			st.nxt[tt] = y
			st.prv[y] = tt
			st.plen[h] += st.plen[t]
			if st.tail[h] == x {
				st.tail[h] = tt // x was the tail (cannot happen: y existed)
			}
			x = y
		}
	}

	// Seam-join: V1 S1 V2 S2 ... V_{p(v)}.
	merged := vheads[0]
	for i := 0; i < seams; i++ {
		st.link(merged, segs[i])
		st.link(merged, vheads[i+1])
	}

	// Any remaining surplus goes to the two ends (capacity argument of
	// the paper's Fig. 12 guarantees at most two are left).
	if si < len(surplus) {
		t := surplus[si]
		si++
		st.link(t, merged)
		merged = t
	}
	if si < len(surplus) {
		t := surplus[si]
		si++
		st.link(merged, t)
	}
	if si != len(surplus) {
		panic("baseline: interleave ran out of splice slots (capacity violated)")
	}
	st.pathNext[merged] = -1
	return cover{first: merged, last: merged, paths: 1}
}

// PathCounts evaluates the Lin et al. recurrence for p(u) on every node
// of a leftist binarized cotree by direct bottom-up recursion — the
// sequential reference for the parallel tree-contraction of Step 3.
func PathCounts(b *cotree.Bin, L []int) []int {
	n := b.NumNodes()
	p := make([]int, n)
	// Post-order via stack.
	type frame struct{ node, stage int }
	stack := []frame{{b.Root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		u := f.node
		if b.IsLeaf(u) {
			p[u] = 1
			stack = stack[:len(stack)-1]
			continue
		}
		switch f.stage {
		case 0:
			f.stage = 1
			stack = append(stack, frame{b.Left[u], 0})
		case 1:
			f.stage = 2
			stack = append(stack, frame{b.Right[u], 0})
		default:
			if b.One[u] {
				p[u] = p[b.Left[u]] - L[b.Right[u]]
				if p[u] < 1 {
					p[u] = 1
				}
			} else {
				p[u] = p[b.Left[u]] + p[b.Right[u]]
			}
			stack = stack[:len(stack)-1]
		}
	}
	return p
}

// Run computes a minimum path cover from a general cotree, handling
// binarization and leftist reordering internally (sequentially).
func Run(t *cotree.Tree) [][]int {
	s := pram.NewSerial()
	b := t.Binarize(s)
	L := b.MakeLeftist(s, 1)
	return SequentialCover(b, L)
}
