package baseline

import (
	"pathcover/internal/cotree"
	"pathcover/internal/pram"
)

// NaiveCover emulates the naive parallelization discussed in §2 of the
// paper: the sequential bottom-up merge is run level-synchronously, so
// every level of the binarized cotree costs one O(log n) parallel merge
// phase and the total simulated time is O(height(Tbl) * log n) — O(n log n)
// in the worst case (a caterpillar cotree), versus the bracket
// algorithm's O(log n).
//
// The covers themselves are computed with the same linked-list machinery
// as SequentialCover (the emulation concerns the cost model, not the
// output), so NaiveCover doubles as a second correctness reference.
func NaiveCover(s *pram.Sim, b *cotree.Bin, L []int) [][]int {
	n := b.NumNodes()
	if n == 0 {
		return nil
	}
	// Height of the binarized cotree.
	depth := make([]int, n)
	height := 0
	// BFS from root over child links.
	queue := []int{b.Root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if depth[u] > height {
			height = depth[u]
		}
		for _, c := range []int{b.Left[u], b.Right[u]} {
			if c >= 0 {
				depth[c] = depth[u] + 1
				queue = append(queue, c)
			}
		}
	}
	// Cost model: each of the height+1 levels performs its merges as one
	// parallel phase dominated by an O(log n) list-ranking step; the work
	// per level is proportional to the vertices touched, totalling the
	// sequential O(n) spread across levels (so naive is work-acceptable
	// but time-poor, exactly the paper's point).
	lg := int64(1)
	for v := 1; v < n; v <<= 1 {
		lg++
	}
	s.Charge(int64(height+1)*lg, int64(n)+int64(height+1)*lg)
	return SequentialCover(b, L)
}

// Height returns the height of a binarized cotree (edges on the longest
// root-leaf path).
func Height(b *cotree.Bin) int {
	n := b.NumNodes()
	depth := make([]int, n)
	h := 0
	queue := []int{b.Root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if depth[u] > h {
			h = depth[u]
		}
		for _, c := range []int{b.Left[u], b.Right[u]} {
			if c >= 0 {
				depth[c] = depth[u] + 1
				queue = append(queue, c)
			}
		}
	}
	return h
}
