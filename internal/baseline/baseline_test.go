package baseline

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pathcover/internal/cograph"
	"pathcover/internal/cotree"
	"pathcover/internal/pram"
)

// randomTree builds a random canonical cotree with n leaves.
func randomTree(rng *rand.Rand, n int) *cotree.Tree {
	var build func(n int, label int8) *cotree.Tree
	id := 0
	build = func(n int, label int8) *cotree.Tree {
		if n == 1 {
			id++
			return cotree.Single(fmt.Sprintf("u%d", id))
		}
		k := 2
		if n > 2 {
			k = 2 + rng.IntN(min(n-1, 4)-1)
		}
		sizes := make([]int, k)
		for i := range sizes {
			sizes[i] = 1
		}
		for extra := n - k; extra > 0; extra-- {
			sizes[rng.IntN(k)]++
		}
		child := cotree.Label0
		if label == cotree.Label0 {
			child = cotree.Label1
		}
		parts := make([]*cotree.Tree, k)
		for i := range parts {
			parts[i] = build(sizes[i], child)
		}
		if label == cotree.Label1 {
			return cotree.Join(parts...)
		}
		return cotree.Union(parts...)
	}
	lbl := cotree.Label1
	if rng.IntN(2) == 0 {
		lbl = cotree.Label0
	}
	return build(n, lbl)
}

// checkCover verifies that paths is a valid path cover of the cograph of
// t: a partition of the vertices into paths whose consecutive vertices
// are adjacent.
func checkCover(t *testing.T, tr *cotree.Tree, paths [][]int) {
	t.Helper()
	o := cotree.NewAdjOracle(tr)
	n := tr.NumVertices()
	seen := make([]bool, n)
	count := 0
	for _, p := range paths {
		if len(p) == 0 {
			t.Fatal("empty path in cover")
		}
		for i, v := range p {
			if v < 0 || v >= n {
				t.Fatalf("vertex %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("vertex %d covered twice", v)
			}
			seen[v] = true
			count++
			if i > 0 && !o.Adjacent(p[i-1], v) {
				t.Fatalf("path uses non-edge (%s,%s) in %v\ntree: %s",
					tr.Name(p[i-1]), tr.Name(v), p, tr)
			}
		}
	}
	if count != n {
		t.Fatalf("cover has %d vertices, graph has %d", count, n)
	}
}

func TestSequentialKnownCases(t *testing.T) {
	cases := []struct {
		src  string
		want int // minimum number of paths
	}{
		{"a", 1},
		{"(0 a b)", 2},
		{"(1 a b)", 1},
		{"(1 a b c)", 1},           // K3
		{"(0 a b c d)", 4},         // empty graph
		{"(1 (0 a b) c)", 1},       // P3
		{"(0 (1 a b) (1 c d))", 2}, // 2 disjoint edges
		{"(1 (0 a b c d e) f)", 3}, // star K_{1,5}: paths a-f-b, c, d... p(v)=5 > L(w)=1: 5-1=4? see below
		{"(1 (0 a b) (0 c d))", 1}, // C4 has a Hamiltonian path
	}
	// star K_{1,5}: cover = {a-f-b, c, d, e} -> 4 paths
	cases[7].want = 4
	for _, c := range cases {
		tr := cotree.MustParse(c.src)
		paths := Run(tr)
		checkCover(t, tr, paths)
		if len(paths) != c.want {
			t.Errorf("%s: %d paths, want %d (%v)", c.src, len(paths), c.want, paths)
		}
	}
}

func TestSequentialMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 8))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.IntN(9)
		tr := randomTree(rng, n)
		paths := Run(tr)
		checkCover(t, tr, paths)
		g := cograph.FromCotree(tr)
		want := BruteMinPathCover(g)
		if len(paths) != want {
			t.Fatalf("trial %d: %d paths, brute force says %d\ntree: %s",
				trial, len(paths), want, tr)
		}
	}
}

func TestSequentialMatchesPathCountFormula(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 4))
	s := pram.NewSerial()
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(200)
		tr := randomTree(rng, n)
		b := tr.Binarize(s)
		L := b.MakeLeftist(s, uint64(trial))
		paths := SequentialCover(b, L)
		checkCover(t, tr, paths)
		p := PathCounts(b, L)
		if len(paths) != p[b.Root] {
			t.Fatalf("trial %d: cover has %d paths, recurrence says %d",
				trial, len(paths), p[b.Root])
		}
	}
}

// Fig. 4 of the paper: Case 1 bridges p(v)=4 paths with L(w)=2 vertices
// into 2 paths; Case 2 merges 4 paths with L(w)=7 vertices into a
// Hamiltonian path.
func TestFig4Cases(t *testing.T) {
	// Case 1: G(v) = empty graph on 4 vertices (4 paths), G(w) = 2
	// isolated vertices; join them.
	tr1 := cotree.MustParse("(1 (0 a b c d) (0 x y))")
	paths := Run(tr1)
	checkCover(t, tr1, paths)
	if len(paths) != 2 {
		t.Errorf("case 1: %d paths, want 2", len(paths))
	}
	// Case 2 needs p(v) <= L(w) with L(v) >= L(w) (leftist): take G(v) =
	// four disjoint edges (8 vertices, 4 paths) and G(w) = 5 isolated
	// vertices: 4 <= 5, so the join is Hamiltonian.
	tr2 := cotree.MustParse("(1 (0 (1 a b) (1 c d) (1 e f) (1 g h)) (0 s t u v w))")
	paths2 := Run(tr2)
	checkCover(t, tr2, paths2)
	if len(paths2) != 1 {
		t.Errorf("case 2: %d paths, want 1", len(paths2))
	}
	// And the K_{4,7} shape really is Case 1 after leftist reordering:
	// p(v)=7 > L(w)=4 gives 7-4=3 paths.
	tr3 := cotree.MustParse("(1 (0 a b c d) (0 s t u v w x y))")
	paths3 := Run(tr3)
	checkCover(t, tr3, paths3)
	if len(paths3) != 3 {
		t.Errorf("K_{4,7}: %d paths, want 3", len(paths3))
	}
}

func TestSequentialLargeShapes(t *testing.T) {
	s := pram.NewSerial()
	// Caterpillar of joins: K_n built as (((a*b)*c)*d)... via nested
	// 2-ary joins — depth n cotree.
	n := 2000
	tr := cotree.Single("x0")
	for i := 1; i < n; i++ {
		tr = cotree.Join(tr, cotree.Single(fmt.Sprintf("x%d", i)))
	}
	b := tr.Binarize(s)
	L := b.MakeLeftist(s, 7)
	paths := SequentialCover(b, L)
	if len(paths) != 1 {
		t.Fatalf("K_%d cover has %d paths", n, len(paths))
	}
	total := 0
	for _, p := range paths {
		total += len(p)
	}
	if total != n {
		t.Fatalf("cover covers %d of %d vertices", total, n)
	}
}

func TestPathCountsKnown(t *testing.T) {
	s := pram.NewSerial()
	tr := cotree.MustParse("(1 (0 a b c d e) f)") // star
	b := tr.Binarize(s)
	L := b.MakeLeftist(s, 1)
	p := PathCounts(b, L)
	if p[b.Root] != 4 {
		t.Errorf("p(root)=%d want 4", p[b.Root])
	}
}

func TestBruteMinPathCoverKnown(t *testing.T) {
	g := cograph.NewGraph(4) // P4-free? this is a C4
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	if got := BruteMinPathCover(g); got != 1 {
		t.Errorf("C4 min cover %d want 1", got)
	}
	e := cograph.NewGraph(3)
	if got := BruteMinPathCover(e); got != 3 {
		t.Errorf("empty3 min cover %d want 3", got)
	}
	k := cograph.NewGraph(1)
	if got := BruteMinPathCover(k); got != 1 {
		t.Errorf("K1 min cover %d want 1", got)
	}
}

func TestBruteHamiltonianCycle(t *testing.T) {
	c4 := cograph.NewGraph(4)
	c4.AddEdge(0, 1)
	c4.AddEdge(1, 2)
	c4.AddEdge(2, 3)
	c4.AddEdge(3, 0)
	if !BruteHasHamiltonianCycle(c4) {
		t.Error("C4 has a Hamiltonian cycle")
	}
	p3 := cograph.NewGraph(3)
	p3.AddEdge(0, 1)
	p3.AddEdge(1, 2)
	if BruteHasHamiltonianCycle(p3) {
		t.Error("P3 has no Hamiltonian cycle")
	}
	if BruteHasHamiltonianCycle(cograph.NewGraph(2)) {
		t.Error("K2-bar has no Hamiltonian cycle")
	}
}

func TestNaiveCoverMatchesSequentialAndChargesHeight(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	sm := pram.NewSerial()
	for trial := 0; trial < 30; trial++ {
		tr := randomTree(rng, 2+rng.IntN(100))
		b := tr.Binarize(sm)
		L := b.MakeLeftist(sm, 3)
		want := SequentialCover(b, L)
		s := pram.New(8)
		got := NaiveCover(s, b, L)
		if len(got) != len(want) {
			t.Fatalf("naive %d paths, sequential %d", len(got), len(want))
		}
		checkCover(t, tr, got)
		h := int64(Height(b))
		if s.Time() < h {
			t.Fatalf("naive charged %d time for height %d", s.Time(), h)
		}
	}
}

func TestNaiveTimeGrowsWithHeight(t *testing.T) {
	s1 := pram.New(64)
	s2 := pram.New(64)
	n := 512
	// caterpillar: nested joins, height ~n
	cat := cotree.Single("x0")
	for i := 1; i < n; i++ {
		cat = cotree.Join(cat, cotree.Single(fmt.Sprintf("x%d", i)))
	}
	bcat := cat.Binarize(pram.NewSerial())
	Lcat := bcat.MakeLeftist(pram.NewSerial(), 1)
	NaiveCover(s1, bcat, Lcat)

	// balanced: K_n as a balanced join tree, height ~log n
	var bal func(lo, hi int) *cotree.Tree
	bal = func(lo, hi int) *cotree.Tree {
		if lo == hi {
			return cotree.Single(fmt.Sprintf("b%d", lo))
		}
		mid := (lo + hi) / 2
		// alternate labels by depth parity of the range size: use Join
		// always -> they merge; instead alternate Union/Join by level.
		return cotree.Join(bal(lo, mid), bal(mid+1, hi))
	}
	// NOTE: nested Joins merge into one flat node, so the binarized tree
	// is a chain; build alternating union/join to get genuine balance.
	var bal2 func(lo, hi int, join bool) *cotree.Tree
	bal2 = func(lo, hi int, join bool) *cotree.Tree {
		if lo == hi {
			return cotree.Single(fmt.Sprintf("c%d", lo))
		}
		mid := (lo + hi) / 2
		a := bal2(lo, mid, !join)
		b := bal2(mid+1, hi, !join)
		if join {
			return cotree.Join(a, b)
		}
		return cotree.Union(a, b)
	}
	balT := bal2(0, n-1, true)
	bbal := balT.Binarize(pram.NewSerial())
	Lbal := bbal.MakeLeftist(pram.NewSerial(), 1)
	NaiveCover(s2, bbal, Lbal)

	if s1.Time() < 10*s2.Time() {
		t.Errorf("caterpillar naive time %d not much larger than balanced %d",
			s1.Time(), s2.Time())
	}
	_ = bal
}

func TestSequentialCoverProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%12) + 1
		rng := rand.New(rand.NewPCG(seed, 17))
		tr := randomTree(rng, n)
		paths := Run(tr)
		g := cograph.FromCotree(tr)
		// validity
		o := cotree.NewAdjOracle(tr)
		seen := make([]bool, n)
		cnt := 0
		for _, p := range paths {
			for i, v := range p {
				if seen[v] {
					return false
				}
				seen[v] = true
				cnt++
				if i > 0 && !o.Adjacent(p[i-1], v) {
					return false
				}
			}
		}
		return cnt == n && len(paths) == BruteMinPathCover(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
