package baseline

import (
	"pathcover/internal/cotree"
)

// HasHamiltonianPath reports whether the cograph has a Hamiltonian path:
// by the paper, exactly when p(root) = 1.
func HasHamiltonianPath(b *cotree.Bin, L []int) bool {
	return PathCounts(b, L)[b.Root] == 1
}

// HasHamiltonianCycle decides Hamiltonicity for cycles: a cograph on
// n >= 3 vertices has a Hamiltonian cycle iff its (leftist binarized)
// cotree root is a 1-node with p(left) <= L(right).
//
// Sufficiency: a minimum cover of G(v) with p <= L(w) paths can be split
// into exactly L(w) paths and alternated with the L(w) vertices of G(w)
// around a cycle (all cross edges exist at a join). Necessity: removing
// the L(w) vertices of G(w) from a Hamiltonian cycle leaves at most L(w)
// arcs, which cover G(v), so p(v) <= L(w).
func HasHamiltonianCycle(b *cotree.Bin, L []int) bool {
	n := b.NumVertices()
	root := b.Root
	if n < 3 || b.IsLeaf(root) || !b.One[root] {
		return false
	}
	p := PathCounts(b, L)
	return p[b.Left[root]] <= L[b.Right[root]]
}

// HamiltonianCycle constructs a Hamiltonian cycle when one exists
// (sequentially, O(n)). The boolean reports existence.
func HamiltonianCycle(b *cotree.Bin, L []int) ([]int, bool) {
	if !HasHamiltonianCycle(b, L) {
		return nil, false
	}
	root := b.Root
	v, w := b.Left[root], b.Right[root]
	paths := CoverSubtree(b, L, v)
	k := L[w]
	// Split the cover into exactly k paths (cut leading vertices off).
	for len(paths) < k {
		for i := 0; i < len(paths) && len(paths) < k; i++ {
			if len(paths[i]) >= 2 {
				paths = append(paths, paths[i][1:])
				paths[i] = paths[i][:1]
			}
		}
	}
	// Vertices of G(w).
	ws := subtreeVertices(b, w)
	cycle := make([]int, 0, b.NumVertices())
	for i := 0; i < k; i++ {
		cycle = append(cycle, paths[i]...)
		cycle = append(cycle, ws[i])
	}
	return cycle, true
}

// HamiltonianPath returns a Hamiltonian path when one exists.
func HamiltonianPath(b *cotree.Bin, L []int) ([]int, bool) {
	paths := SequentialCover(b, L)
	if len(paths) != 1 {
		return nil, false
	}
	return paths[0], true
}

// CoverSubtree computes a minimum path cover of G(u) for a node u of the
// binarized cotree (the full SequentialCover is the u = root case).
func CoverSubtree(b *cotree.Bin, L []int, u int) [][]int {
	return sequentialCoverFrom(b, L, u)
}

func subtreeVertices(b *cotree.Bin, u int) []int {
	var out []int
	stack := []int{u}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b.IsLeaf(v) {
			out = append(out, b.VertexOf[v])
			continue
		}
		stack = append(stack, b.Left[v], b.Right[v])
	}
	return out
}
