package baseline

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pathcover/internal/cograph"
	"pathcover/internal/cotree"
	"pathcover/internal/pram"
)

// checkCycle validates a Hamiltonian cycle (local helper; the verify
// package cannot be imported here without a cycle).
func checkCycle(tr *cotree.Tree, cyc []int) error {
	n := tr.NumVertices()
	if len(cyc) != n || n < 3 {
		return fmt.Errorf("cycle visits %d of %d vertices", len(cyc), n)
	}
	o := cotree.NewAdjOracle(tr)
	seen := make([]bool, n)
	for i, v := range cyc {
		if v < 0 || v >= n || seen[v] {
			return fmt.Errorf("bad vertex %d", v)
		}
		seen[v] = true
		if !o.Adjacent(cyc[i], cyc[(i+1)%n]) {
			return fmt.Errorf("non-edge (%s,%s)", tr.Name(cyc[i]), tr.Name(cyc[(i+1)%n]))
		}
	}
	return nil
}

func prep(tr *cotree.Tree) (*cotree.Bin, []int) {
	s := pram.NewSerial()
	b := tr.Binarize(s)
	L := b.MakeLeftist(s, 1)
	return b, L
}

func TestHamiltonianPathKnown(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"a", true},
		{"(0 a b)", false},
		{"(1 a b)", true},
		{"(1 a b c d)", true},
		{"(0 (1 a b) (1 c d))", false},
		{"(1 (0 a b) (0 c d))", true}, // C4
		{"(1 (0 a b c d) e)", false},  // star K_{1,4}
	}
	for _, c := range cases {
		b, L := prep(cotree.MustParse(c.src))
		if got := HasHamiltonianPath(b, L); got != c.want {
			t.Errorf("%s: HasHamiltonianPath=%v want %v", c.src, got, c.want)
		}
		path, ok := HamiltonianPath(b, L)
		if ok != c.want {
			t.Errorf("%s: HamiltonianPath ok=%v want %v", c.src, ok, c.want)
		}
		if ok && len(path) != b.NumVertices() {
			t.Errorf("%s: path covers %d of %d", c.src, len(path), b.NumVertices())
		}
	}
}

func TestHamiltonianCycleKnown(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"a", false},
		{"(1 a b)", false},                   // K2: no cycle
		{"(1 a b c)", true},                  // K3
		{"(1 (0 a b) (0 c d))", true},        // C4
		{"(1 (0 a b c) d)", false},           // star K_{1,3}
		{"(0 (1 a b c) (1 d e f))", false},   // disconnected
		{"(1 (0 a b c) (0 d e f))", true},    // K_{3,3}
		{"(1 (0 a b c d) (0 e f g))", false}, // K_{4,3}: unbalanced bipartite
	}
	for _, c := range cases {
		tr := cotree.MustParse(c.src)
		b, L := prep(tr)
		if got := HasHamiltonianCycle(b, L); got != c.want {
			t.Errorf("%s: HasHamiltonianCycle=%v want %v", c.src, got, c.want)
		}
		cyc, ok := HamiltonianCycle(b, L)
		if ok != c.want {
			t.Errorf("%s: HamiltonianCycle ok=%v", c.src, ok)
		}
		if ok {
			if err := checkCycle(tr, cyc); err != nil {
				t.Errorf("%s: invalid cycle %v: %v", c.src, cyc, err)
			}
		}
	}
}

// The decision procedure must agree with brute force on all small random
// cographs, and constructed cycles must verify.
func TestHamiltonianCycleMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%10) + 1
		rng := rand.New(rand.NewPCG(seed, 77))
		tr := randomTree(rng, n)
		b, L := prep(tr)
		got := HasHamiltonianCycle(b, L)
		g := cograph.FromCotree(tr)
		want := BruteHasHamiltonianCycle(g)
		if got != want {
			return false
		}
		if got {
			cyc, ok := HamiltonianCycle(b, L)
			if !ok || checkCycle(tr, cyc) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestHamiltonianCycleLarge(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 41))
	for trial := 0; trial < 40; trial++ {
		tr := randomTree(rng, 3+rng.IntN(300))
		b, L := prep(tr)
		cyc, ok := HamiltonianCycle(b, L)
		if ok {
			if err := checkCycle(tr, cyc); err != nil {
				t.Fatalf("trial %d: %v\ntree %s", trial, err, tr)
			}
		}
	}
}

func TestCoverSubtree(t *testing.T) {
	tr := cotree.MustParse("(0 (1 a b c) (1 d e))")
	b, L := prep(tr)
	// Find the internal node holding the K3 {a,b,c}.
	for u := 0; u < b.NumNodes(); u++ {
		if !b.IsLeaf(u) && L[u] == 3 {
			paths := CoverSubtree(b, L, u)
			if len(paths) != 1 || len(paths[0]) != 3 {
				t.Fatalf("K3 subtree cover = %v", paths)
			}
		}
	}
}
