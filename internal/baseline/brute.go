package baseline

import "pathcover/internal/cograph"

// BruteMinPathCover computes the exact minimum number of vertex-disjoint
// paths covering all vertices of g by Held–Karp style dynamic
// programming over subsets: dp[mask][last] = fewest paths covering mask
// with the current path ending at last. Exponential — the minimality
// oracle for graphs with up to ~14 vertices.
func BruteMinPathCover(g *cograph.Graph) int {
	n := g.N
	if n == 0 {
		return 0
	}
	if n > 20 {
		panic("baseline: brute force limited to small graphs")
	}
	size := 1 << n
	const inf = 1 << 29
	dp := make([][]int, size)
	for m := range dp {
		dp[m] = make([]int, n)
		for l := range dp[m] {
			dp[m][l] = inf
		}
	}
	for v := 0; v < n; v++ {
		dp[1<<v][v] = 1
	}
	adj := make([]uint32, n)
	for x := 0; x < n; x++ {
		for _, y := range g.Neighbors(x) {
			adj[x] |= 1 << y
		}
	}
	for mask := 1; mask < size; mask++ {
		for last := 0; last < n; last++ {
			cur := dp[mask][last]
			if cur >= inf {
				continue
			}
			rest := (size - 1) &^ mask
			for m := rest; m != 0; m &= m - 1 {
				v := trailingZeros(uint32(m & -m))
				nm := mask | 1<<v
				// Extend the current path along an edge.
				if adj[last]&(1<<v) != 0 && cur < dp[nm][v] {
					dp[nm][v] = cur
				}
				// Start a new path at v.
				if cur+1 < dp[nm][v] {
					dp[nm][v] = cur + 1
				}
			}
		}
	}
	best := inf
	for last := 0; last < n; last++ {
		if dp[size-1][last] < best {
			best = dp[size-1][last]
		}
	}
	return best
}

// BruteHasHamiltonianCycle reports whether g has a Hamiltonian cycle, by
// bitmask DP anchored at vertex 0. Exponential; for small graphs only.
func BruteHasHamiltonianCycle(g *cograph.Graph) bool {
	n := g.N
	if n < 3 {
		return false
	}
	if n > 20 {
		panic("baseline: brute force limited to small graphs")
	}
	adj := make([]uint32, n)
	for x := 0; x < n; x++ {
		for _, y := range g.Neighbors(x) {
			adj[x] |= 1 << y
		}
	}
	size := 1 << n
	reach := make([][]bool, size)
	for m := range reach {
		reach[m] = make([]bool, n)
	}
	reach[1][0] = true
	for mask := 1; mask < size; mask++ {
		if mask&1 == 0 {
			continue
		}
		for last := 0; last < n; last++ {
			if !reach[mask][last] {
				continue
			}
			rest := (size - 1) &^ mask
			for m := rest & int(adj[last]); m != 0; m &= m - 1 {
				v := trailingZeros(uint32(m & -m))
				reach[mask|1<<v][v] = true
			}
		}
	}
	for last := 1; last < n; last++ {
		if reach[size-1][last] && adj[last]&1 != 0 {
			return true
		}
	}
	return false
}

func trailingZeros(x uint32) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
