// Package cograph provides explicit graph machinery around cotrees:
// materializing a cograph's edge set, the union/join/complement algebra
// on adjacency structures, and recognition (graph -> cotree) by the
// defining property that every induced subgraph of a cograph with at
// least two vertices is disconnected or co-disconnected.
//
// The paper takes the cotree as the input representation (recognition on
// the PRAM is He's separate result); this package exists so the public
// API can accept plain graphs and so tests can verify covers against
// real adjacency.
package cograph

import (
	"fmt"
	"math/bits"

	"pathcover/internal/cotree"
)

// Graph is a simple undirected graph on vertices 0..N-1 with bitset rows.
type Graph struct {
	N    int
	rows [][]uint64
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	words := (n + 63) / 64
	rows := make([][]uint64, n)
	backing := make([]uint64, n*words)
	for i := range rows {
		rows[i], backing = backing[:words:words], backing[words:]
	}
	return &Graph{N: n, rows: rows}
}

// AddEdge inserts the undirected edge {x, y}. Self-loops are ignored.
func (g *Graph) AddEdge(x, y int) {
	if x == y {
		return
	}
	g.rows[x][y/64] |= 1 << (y % 64)
	g.rows[y][x/64] |= 1 << (x % 64)
}

// HasEdge reports adjacency.
func (g *Graph) HasEdge(x, y int) bool {
	return x != y && g.rows[x][y/64]&(1<<(y%64)) != 0
}

// Degree returns the degree of x.
func (g *Graph) Degree(x int) int {
	d := 0
	for _, w := range g.rows[x] {
		d += bits.OnesCount64(w)
	}
	return d
}

// NumEdges counts edges.
func (g *Graph) NumEdges() int {
	total := 0
	for x := 0; x < g.N; x++ {
		total += g.Degree(x)
	}
	return total / 2
}

// Neighbors returns the adjacency list of x.
func (g *Graph) Neighbors(x int) []int {
	var out []int
	for w, word := range g.rows[x] {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, w*64+b)
			word &= word - 1
		}
	}
	return out
}

// Complement returns the complement graph.
func Complement(g *Graph) *Graph {
	out := NewGraph(g.N)
	for x := 0; x < g.N; x++ {
		for y := x + 1; y < g.N; y++ {
			if !g.HasEdge(x, y) {
				out.AddEdge(x, y)
			}
		}
	}
	return out
}

// Union returns the disjoint union of two graphs (vertices of b are
// shifted by a.N).
func Union(a, b *Graph) *Graph {
	out := NewGraph(a.N + b.N)
	copyEdges(out, a, 0)
	copyEdges(out, b, a.N)
	return out
}

// Join returns the join: the union plus all edges between the two sides.
func Join(a, b *Graph) *Graph {
	out := Union(a, b)
	for x := 0; x < a.N; x++ {
		for y := 0; y < b.N; y++ {
			out.AddEdge(x, a.N+y)
		}
	}
	return out
}

func copyEdges(dst, src *Graph, base int) {
	for x := 0; x < src.N; x++ {
		for _, y := range src.Neighbors(x) {
			if y > x {
				dst.AddEdge(base+x, base+y)
			}
		}
	}
}

// FromCotree materializes the cograph represented by a cotree: an edge
// for every leaf pair whose LCA is a 1-node. O(n + m) via a recursion
// that crosses child leaf sets at 1-nodes.
func FromCotree(t *cotree.Tree) *Graph {
	g := NewGraph(t.NumVertices())
	// leafSets[u] built bottom-up; process in reverse BFS order.
	order := bfsOrder(t)
	leafSet := make([][]int, t.NumNodes())
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		if t.Label[u] == cotree.LabelLeaf {
			leafSet[u] = []int{t.VertexOf[u]}
			continue
		}
		var all []int
		for _, c := range t.Children[u] {
			if t.Label[u] == cotree.Label1 {
				for _, x := range all {
					for _, y := range leafSet[c] {
						g.AddEdge(x, y)
					}
				}
			}
			all = append(all, leafSet[c]...)
			leafSet[c] = nil
		}
		leafSet[u] = all
	}
	return g
}

func bfsOrder(t *cotree.Tree) []int {
	order := make([]int, 0, t.NumNodes())
	queue := []int{t.Root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		queue = append(queue, t.Children[u]...)
	}
	return order
}

// Recognize builds the cotree of g, or reports that g is not a cograph
// (it contains an induced P4). Complexity O(n^2 / 64)-ish per level with
// bitsets; ample for tests and for accepting graph input in the API.
func Recognize(g *Graph, names []string) (*cotree.Tree, error) {
	verts := make([]int, g.N)
	for i := range verts {
		verts[i] = i
	}
	name := func(v int) string {
		if names != nil && v < len(names) && names[v] != "" {
			return names[v]
		}
		return fmt.Sprintf("v%d", v)
	}
	if g.N == 0 {
		return nil, fmt.Errorf("cograph: empty graph has no cotree")
	}
	return recognize(g, verts, name)
}

func recognize(g *Graph, verts []int, name func(int) string) (*cotree.Tree, error) {
	if len(verts) == 1 {
		return cotree.Single(name(verts[0])), nil
	}
	comps := components(g, verts, false)
	if len(comps) > 1 {
		parts := make([]*cotree.Tree, len(comps))
		for i, c := range comps {
			t, err := recognize(g, c, name)
			if err != nil {
				return nil, err
			}
			parts[i] = t
		}
		return cotree.Union(parts...), nil
	}
	coComps := components(g, verts, true)
	if len(coComps) > 1 {
		parts := make([]*cotree.Tree, len(coComps))
		for i, c := range coComps {
			t, err := recognize(g, c, name)
			if err != nil {
				return nil, err
			}
			parts[i] = t
		}
		return cotree.Join(parts...), nil
	}
	return nil, fmt.Errorf("cograph: induced subgraph on %d vertices is connected and co-connected (contains a P4): not a cograph", len(verts))
}

// components returns the connected components of g restricted to verts
// (of the complement restriction when co is set).
func components(g *Graph, verts []int, co bool) [][]int {
	words := (g.N + 63) / 64
	inSet := make([]uint64, words)
	for _, v := range verts {
		inSet[v/64] |= 1 << (v % 64)
	}
	unseen := make([]uint64, words)
	copy(unseen, inSet)
	var comps [][]int
	row := make([]uint64, words)
	for _, start := range verts {
		if unseen[start/64]&(1<<(start%64)) == 0 {
			continue
		}
		var comp []int
		frontier := []int{start}
		unseen[start/64] &^= 1 << (start % 64)
		for len(frontier) > 0 {
			v := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			comp = append(comp, v)
			// row = neighbors of v (complemented if co) within unseen.
			gr := g.rows[v]
			for w := 0; w < words; w++ {
				if co {
					row[w] = ^gr[w] & unseen[w]
				} else {
					row[w] = gr[w] & unseen[w]
				}
			}
			if co {
				row[v/64] &^= 1 << (v % 64)
			}
			for w := 0; w < words; w++ {
				word := row[w]
				unseen[w] &^= word
				for word != 0 {
					b := bits.TrailingZeros64(word)
					frontier = append(frontier, w*64+b)
					word &= word - 1
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// IsCograph reports whether g is a cograph.
func IsCograph(g *Graph) bool {
	if g.N == 0 {
		return false
	}
	_, err := Recognize(g, nil)
	return err == nil
}
