package cograph

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"pathcover/internal/cotree"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 0) // ignored
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("edge bookkeeping wrong")
	}
	if g.NumEdges() != 2 || g.Degree(1) != 2 {
		t.Fatalf("edges=%d deg(1)=%d", g.NumEdges(), g.Degree(1))
	}
	nb := g.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Fatalf("neighbors(1)=%v", nb)
	}
}

func TestComplementJoinUnionAlgebra(t *testing.T) {
	a := NewGraph(3)
	a.AddEdge(0, 1)
	b := NewGraph(2)
	b.AddEdge(0, 1)
	u := Union(a, b)
	if u.N != 5 || u.NumEdges() != 2 || !u.HasEdge(3, 4) {
		t.Fatalf("union wrong: n=%d m=%d", u.N, u.NumEdges())
	}
	j := Join(a, b)
	if j.NumEdges() != 2+3*2 {
		t.Fatalf("join edges=%d want 8", j.NumEdges())
	}
	// De Morgan: complement(union) == join(complements).
	cu := Complement(u)
	jc := Join(Complement(a), Complement(b))
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			if cu.HasEdge(x, y) != jc.HasEdge(x, y) {
				t.Fatalf("De Morgan violated at (%d,%d)", x, y)
			}
		}
	}
}

func TestFromCotreeMatchesOracle(t *testing.T) {
	cases := []string{
		"a",
		"(0 a b)",
		"(1 a b)",
		"(1 (0 a b) c)",
		"(0 (1 a b c) (1 d e))",
		"(1 (0 (1 a b) c) d (0 e f))",
	}
	for _, src := range cases {
		tr := cotree.MustParse(src)
		g := FromCotree(tr)
		o := cotree.NewAdjOracle(tr)
		n := tr.NumVertices()
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if g.HasEdge(x, y) != o.Adjacent(x, y) {
					t.Fatalf("%s: edge (%d,%d) mismatch", src, x, y)
				}
			}
		}
	}
}

func TestRecognizeP4Fails(t *testing.T) {
	// P4: the path a-b-c-d is the canonical non-cograph.
	p4 := NewGraph(4)
	p4.AddEdge(0, 1)
	p4.AddEdge(1, 2)
	p4.AddEdge(2, 3)
	if _, err := Recognize(p4, nil); err == nil {
		t.Fatal("P4 recognized as cograph")
	}
	if IsCograph(p4) {
		t.Fatal("IsCograph(P4) = true")
	}
}

func TestRecognizeRoundTrip(t *testing.T) {
	cases := []string{
		"(0 a b)",
		"(1 a b c d)",
		"(1 (0 a b) c)",
		"(0 (1 a b c) (1 d e) f)",
		"(1 (0 (1 a b) (1 c d)) (0 e f g))",
	}
	for _, src := range cases {
		tr := cotree.MustParse(src)
		g := FromCotree(tr)
		rec, err := Recognize(g, nil)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if err := rec.Validate(); err != nil {
			t.Fatalf("%s: recognized cotree invalid: %v", src, err)
		}
		// The recognized tree renumbers vertices; names ("v<orig>") carry
		// the permutation.
		g2 := FromCotree(rec)
		perm := make([]int, rec.NumVertices())
		for v := 0; v < rec.NumVertices(); v++ {
			orig, err := strconv.Atoi(strings.TrimPrefix(rec.Name(v), "v"))
			if err != nil {
				t.Fatalf("unexpected name %q", rec.Name(v))
			}
			perm[v] = orig
		}
		for x := 0; x < g2.N; x++ {
			for y := 0; y < g2.N; y++ {
				if g2.HasEdge(x, y) != g.HasEdge(perm[x], perm[y]) {
					t.Fatalf("%s: recognition changed adjacency", src)
				}
			}
		}
	}
}

// hasP4 brute-forces induced-P4 detection.
func hasP4(g *Graph) bool {
	n := g.N
	verts := []int{0, 0, 0, 0}
	var rec func(d, start int) bool
	isP4 := func(v []int) bool {
		// any labeling of the 4 vertices as a path?
		perm4 := [][]int{
			{0, 1, 2, 3}, {0, 1, 3, 2}, {0, 2, 1, 3}, {0, 2, 3, 1}, {0, 3, 1, 2}, {0, 3, 2, 1},
			{1, 0, 2, 3}, {1, 0, 3, 2}, {1, 2, 0, 3}, {1, 3, 0, 2}, {2, 0, 1, 3}, {2, 1, 0, 3},
		}
		for _, p := range perm4 {
			a, b, c, d := v[p[0]], v[p[1]], v[p[2]], v[p[3]]
			if g.HasEdge(a, b) && g.HasEdge(b, c) && g.HasEdge(c, d) &&
				!g.HasEdge(a, c) && !g.HasEdge(a, d) && !g.HasEdge(b, d) {
				return true
			}
		}
		return false
	}
	rec = func(d, start int) bool {
		if d == 4 {
			return isP4(verts)
		}
		for v := start; v < n; v++ {
			verts[d] = v
			if rec(d+1, v+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}

// Property: IsCograph agrees with brute-force P4-freeness on small random
// graphs (the defining characterization of cographs).
func TestRecognizeAgreesWithP4Freeness(t *testing.T) {
	f := func(seed uint64, nRaw uint8, density uint8) bool {
		n := int(nRaw%7) + 1
		rng := rand.New(rand.NewPCG(seed, 99))
		g := NewGraph(n)
		d := int(density%10) + 1
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				if rng.IntN(10) < d {
					g.AddEdge(x, y)
				}
			}
		}
		return IsCograph(g) == !hasP4(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecognizeLargerRandomCotrees(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 10; trial++ {
		tr := randomTree(rng, 2+rng.IntN(60))
		g := FromCotree(tr)
		rec, err := Recognize(g, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rec.NumVertices() != g.N {
			t.Fatalf("trial %d: vertex count changed", trial)
		}
	}
}

// randomTree builds a random canonical cotree (duplicated from the cotree
// tests to avoid an import cycle through test helpers).
func randomTree(rng *rand.Rand, n int) *cotree.Tree {
	var build func(n int, label int8) *cotree.Tree
	id := 0
	build = func(n int, label int8) *cotree.Tree {
		if n == 1 {
			id++
			return cotree.Single(fmt.Sprintf("u%d", id))
		}
		k := 2
		if n > 2 {
			k = 2 + rng.IntN(min(n-1, 4)-1)
		}
		sizes := make([]int, k)
		for i := range sizes {
			sizes[i] = 1
		}
		for extra := n - k; extra > 0; extra-- {
			sizes[rng.IntN(k)]++
		}
		child := cotree.Label0
		if label == cotree.Label0 {
			child = cotree.Label1
		}
		parts := make([]*cotree.Tree, k)
		for i := range parts {
			parts[i] = build(sizes[i], child)
		}
		if label == cotree.Label1 {
			return cotree.Join(parts...)
		}
		return cotree.Union(parts...)
	}
	return build(n, cotree.Label1)
}

// Fig. 1 of the paper shows a cograph beside its cotree with the
// defining property: vertices are adjacent iff their lowest common
// ancestor is a 1-node. This test pins the correspondence on a concrete
// instance covering every ancestor configuration.
func TestFig1Correspondence(t *testing.T) {
	tr := cotree.MustParse("(0 (1 a (0 b c)) (1 d e f))")
	g := FromCotree(tr)
	name := map[string]int{}
	for v := 0; v < tr.NumVertices(); v++ {
		name[tr.Name(v)] = v
	}
	type edge struct {
		x, y string
		want bool
	}
	cases := []edge{
		{"a", "b", true},  // LCA = the 1-node
		{"a", "c", true},  //
		{"b", "c", false}, // LCA = the inner 0-node
		{"d", "e", true},  // LCA = the right 1-node
		{"d", "f", true},
		{"e", "f", true},
		{"a", "d", false}, // LCA = the 0-root: different components
		{"b", "f", false},
	}
	for _, c := range cases {
		if got := g.HasEdge(name[c.x], name[c.y]); got != c.want {
			t.Errorf("edge (%s,%s) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
	if g.NumEdges() != 5 {
		t.Errorf("m = %d, want 5", g.NumEdges())
	}
}
