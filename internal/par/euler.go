package par

import "pathcover/internal/pram"

// BinTree is a binary forest in arena form. All three slices have the
// same length; -1 denotes absence. Roots have Parent -1. An internal node
// may have one or two children (path trees are like that); full binary
// trees (cotrees) always have both.
type BinTree struct {
	Left, Right, Parent []int
}

// Len returns the number of nodes.
func (t BinTree) Len() int { return len(t.Parent) }

// NewBinTree allocates an n-node forest with every link empty.
func NewBinTree(n int) BinTree {
	t := BinTree{
		Left:   make([]int, n),
		Right:  make([]int, n),
		Parent: make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.Left[i], t.Right[i], t.Parent[i] = -1, -1, -1
	}
	return t
}

// IsLeaf reports whether v has no children.
func (t BinTree) IsLeaf(v int) bool { return t.Left[v] < 0 && t.Right[v] < 0 }

// Tour is the Euler tour of a binary forest together with the numberings
// derived from it (paper Lemma 5.2). Each node contributes three tour
// items — pre (first visit), in (between the two subtrees) and post
// (last visit) — and the items of all trees are chained root after root
// in increasing root order.
type Tour struct {
	N   int
	Pos []int // Pos[item] = position of tour item; items are 3v, 3v+1, 3v+2
	Seq []int // Seq[pos] = item at that position (inverse of Pos)

	Pre, In, Post []int // numberings of the nodes, 0-based across the forest
	InSeq         []int // InSeq[k] = node with inorder number k
	Root          []int // root of each node's tree
	Roots         []int // the roots, in increasing index order
}

// item encoding helpers.
func preItem(v int) int   { return 3 * v }
func inItem(v int) int    { return 3*v + 1 }
func postItem(v int) int  { return 3*v + 2 }
func itemNode(it int) int { return it / 3 }

// TourBinary builds the Euler tour of t and the pre/in/post numberings.
// seed drives the randomized work-optimal list ranking.
func TourBinary(s *pram.Sim, t BinTree, seed uint64) *Tour {
	n := t.Len()
	tr := &Tour{N: n}
	if n == 0 {
		return tr
	}

	isRoot := make([]bool, n)
	s.ParallelFor(n, func(v int) { isRoot[v] = t.Parent[v] < 0 })
	roots := IndexPack(s, isRoot)
	tr.Roots = roots

	// Successor links between the 3n items.
	next := make([]int, 3*n)
	s.ForCost(n, 3, func(v int) {
		// pre(v) -> first of left subtree, else in(v)
		if l := t.Left[v]; l >= 0 {
			next[preItem(v)] = preItem(l)
		} else {
			next[preItem(v)] = inItem(v)
		}
		// in(v) -> first of right subtree, else post(v)
		if r := t.Right[v]; r >= 0 {
			next[inItem(v)] = preItem(r)
		} else {
			next[inItem(v)] = postItem(v)
		}
		// post(v) -> in(parent) when v is a left child, post(parent) when
		// right; roots are linked to the next root below.
		p := t.Parent[v]
		switch {
		case p < 0:
			next[postItem(v)] = -1
		case t.Left[p] == v:
			next[postItem(v)] = inItem(p)
		default:
			next[postItem(v)] = postItem(p)
		}
	})
	// Chain the trees: post(root_k) -> pre(root_{k+1}).
	s.ParallelFor(len(roots), func(k int) {
		if k+1 < len(roots) {
			next[postItem(roots[k])] = preItem(roots[k+1])
		}
	})

	pos, length := ListPositions(s, next, preItem(roots[0]), seed)
	tr.Pos = pos
	seq := make([]int, length)
	s.ParallelFor(3*n, func(it int) {
		if pos[it] >= 0 {
			seq[pos[it]] = it
		}
	})
	tr.Seq = seq

	// Numberings: rank of each item kind along the sequence.
	kindFlag := func(kind int) []int {
		f := make([]int, length)
		s.ParallelFor(length, func(i int) {
			if seq[i]%3 == kind {
				f[i] = 1
			}
		})
		r, _ := ScanInt(s, f)
		return r
	}
	preRank := kindFlag(0)
	inRank := kindFlag(1)
	postRank := kindFlag(2)
	tr.Pre = make([]int, n)
	tr.In = make([]int, n)
	tr.Post = make([]int, n)
	tr.InSeq = make([]int, n)
	s.ForCost(n, 3, func(v int) {
		tr.Pre[v] = preRank[pos[preItem(v)]]
		tr.In[v] = inRank[pos[inItem(v)]]
		tr.Post[v] = postRank[pos[postItem(v)]]
	})
	s.ParallelFor(n, func(v int) { tr.InSeq[tr.In[v]] = v })

	// Root of each node: roots appear in increasing index order along the
	// tour, so a prefix max over root markers at pre positions works.
	marks := make([]int, length)
	s.ParallelFor(length, func(i int) { marks[i] = minInt })
	s.ParallelFor(len(roots), func(k int) { marks[pos[preItem(roots[k])]] = roots[k] })
	owner := MaxScanInt(s, marks)
	tr.Root = make([]int, n)
	s.ParallelFor(n, func(v int) { tr.Root[v] = owner[pos[preItem(v)]] })
	return tr
}

// Depths returns the depth of every node (roots have depth 0), via a
// prefix sum of +1 at pre items and -1 at post items.
func (tr *Tour) Depths(s *pram.Sim) []int {
	w := make([]int, len(tr.Seq))
	s.ParallelFor(len(tr.Seq), func(i int) {
		switch tr.Seq[i] % 3 {
		case 0:
			w[i] = 1
		case 2:
			w[i] = -1
		}
	})
	sums := InclusiveScan(s, w, 0, func(a, b int) int { return a + b })
	d := make([]int, tr.N)
	s.ParallelFor(tr.N, func(v int) { d[v] = sums[tr.Pos[preItem(v)]] - 1 })
	return d
}

// SubtreeCounts returns, for every node, the number of nodes and the
// number of leaves in its subtree (inclusive).
func (tr *Tour) SubtreeCounts(s *pram.Sim, t BinTree) (size, leaves []int) {
	length := len(tr.Seq)
	nodeW := make([]int, length)
	leafW := make([]int, length)
	s.ParallelFor(length, func(i int) {
		it := tr.Seq[i]
		if it%3 == 0 {
			v := itemNode(it)
			nodeW[i] = 1
			if t.IsLeaf(v) {
				leafW[i] = 1
			}
		}
	})
	nodeSum := InclusiveScan(s, nodeW, 0, func(a, b int) int { return a + b })
	leafSum := InclusiveScan(s, leafW, 0, func(a, b int) int { return a + b })
	size = make([]int, tr.N)
	leaves = make([]int, tr.N)
	s.ForCost(tr.N, 2, func(v int) {
		lo, hi := tr.Pos[preItem(v)], tr.Pos[postItem(v)]
		size[v] = nodeSum[hi] - nodeSum[lo] + 1
		leaves[v] = leafSum[hi] - leafSum[lo]
		if t.IsLeaf(v) {
			leaves[v] = 1
		}
	})
	return size, leaves
}

// AncestorFlagCounts returns for every node the number of flagged nodes
// on the path from its tree root to the node, inclusive.
func (tr *Tour) AncestorFlagCounts(s *pram.Sim, flag []bool) []int {
	length := len(tr.Seq)
	w := make([]int, length)
	s.ParallelFor(length, func(i int) {
		it := tr.Seq[i]
		v := itemNode(it)
		if flag[v] {
			switch it % 3 {
			case 0:
				w[i] = 1
			case 2:
				w[i] = -1
			}
		}
	})
	sums := InclusiveScan(s, w, 0, func(a, b int) int { return a + b })
	out := make([]int, tr.N)
	s.ParallelFor(tr.N, func(v int) { out[v] = sums[tr.Pos[preItem(v)]] })
	return out
}

// LeafStarts returns, for every node, the number of leaves strictly to
// the left of its subtree in inorder — i.e. the leaf rank of the node's
// leftmost leaf descendant.
func (tr *Tour) LeafStarts(s *pram.Sim, t BinTree) []int {
	length := len(tr.Seq)
	w := make([]int, length)
	s.ParallelFor(length, func(i int) {
		it := tr.Seq[i]
		if it%3 == 1 && t.IsLeaf(itemNode(it)) {
			w[i] = 1
		}
	})
	r, _ := ScanInt(s, w)
	out := make([]int, tr.N)
	s.ParallelFor(tr.N, func(v int) { out[v] = r[tr.Pos[preItem(v)]] })
	return out
}

// LeafRanks numbers the leaves of the forest 0..m-1 in left-to-right
// (inorder) order; non-leaves get -1. Also returns m.
func (tr *Tour) LeafRanks(s *pram.Sim, t BinTree) ([]int, int) {
	length := len(tr.Seq)
	w := make([]int, length)
	s.ParallelFor(length, func(i int) {
		it := tr.Seq[i]
		if it%3 == 1 && t.IsLeaf(itemNode(it)) {
			w[i] = 1
		}
	})
	r, m := ScanInt(s, w)
	out := make([]int, tr.N)
	s.ParallelFor(tr.N, func(v int) {
		if t.IsLeaf(v) {
			out[v] = r[tr.Pos[inItem(v)]]
		} else {
			out[v] = -1
		}
	})
	return out, m
}
