package par

import "pathcover/internal/pram"

// BinTreeIx is a binary forest in arena form, generic over the index
// width (see Ix). All three slices have the same length; -1 denotes
// absence. Roots have Parent -1. An internal node may have one or two
// children (path trees are like that); full binary trees (cotrees)
// always have both.
type BinTreeIx[I Ix] struct {
	Left, Right, Parent []I
}

// BinTree is the int-width binary forest, the historical form.
type BinTree = BinTreeIx[int]

// Len returns the number of nodes.
func (t BinTreeIx[I]) Len() int { return len(t.Parent) }

// IsLeaf reports whether v has no children.
func (t BinTreeIx[I]) IsLeaf(v int) bool { return t.Left[v] < 0 && t.Right[v] < 0 }

// NewBinTree allocates an n-node forest with every link empty.
func NewBinTree(n int) BinTree { return NewBinTreeIx[int](n) }

// NewBinTreeIx is the width-generic NewBinTree.
func NewBinTreeIx[I Ix](n int) BinTreeIx[I] {
	t := BinTreeIx[I]{
		Left:   make([]I, n),
		Right:  make([]I, n),
		Parent: make([]I, n),
	}
	for i := 0; i < n; i++ {
		t.Left[i], t.Right[i], t.Parent[i] = -1, -1, -1
	}
	return t
}

// GrabBinTree is NewBinTree with the three link slices drawn from the
// Sim's scratch arena; pair it with ReleaseBinTree.
func GrabBinTree(s *pram.Sim, n int) BinTree { return GrabBinTreeIx[int](s, n) }

// GrabBinTreeIx is the width-generic GrabBinTree.
func GrabBinTreeIx[I Ix](s *pram.Sim, n int) BinTreeIx[I] {
	t := BinTreeIx[I]{
		Left:   pram.GrabNoClear[I](s, n),
		Right:  pram.GrabNoClear[I](s, n),
		Parent: pram.GrabNoClear[I](s, n),
	}
	for i := 0; i < n; i++ {
		t.Left[i], t.Right[i], t.Parent[i] = -1, -1, -1
	}
	return t
}

// ReleaseBinTree returns a forest's link slices to the arena.
func ReleaseBinTree(s *pram.Sim, t BinTree) { ReleaseBinTreeIx(s, t) }

// ReleaseBinTreeIx is the width-generic ReleaseBinTree. It also drops
// the tree's cached Euler tour, if any, so a cached tour can never
// outlive its tree.
func ReleaseBinTreeIx[I Ix](s *pram.Sim, t BinTreeIx[I]) {
	DropCachedTourIx(s, t)
	pram.Release(s, t.Left)
	pram.Release(s, t.Right)
	pram.Release(s, t.Parent)
}

// TourIx is the Euler tour of a binary forest together with the
// numberings derived from it (paper Lemma 5.2), generic over the index
// width. Each node contributes three tour items — pre (first visit), in
// (between the two subtrees) and post (last visit) — and the items of
// all trees are chained root after root in increasing root order.
//
// A tour's slices come from the owning Sim's arena; call Release once
// the tour is no longer needed.
type TourIx[I Ix] struct {
	N   int
	Pos []I // Pos[item] = position of tour item; items are 3v, 3v+1, 3v+2
	Seq []I // Seq[pos] = item at that position (inverse of Pos)

	Pre, In, Post []I // numberings of the nodes, 0-based across the forest
	InSeq         []I // InSeq[k] = node with inorder number k
	Root          []I // root of each node's tree
	Roots         []I // the roots, in increasing index order
}

// Tour is the int-width tour, the historical form.
type Tour = TourIx[int]

// Release returns the tour's slices to the Sim's arena. The tour must
// not be used afterwards.
func (tr *TourIx[I]) Release(s *pram.Sim) {
	pram.Release(s, tr.Pos)
	pram.Release(s, tr.Seq)
	pram.Release(s, tr.Pre)
	pram.Release(s, tr.In)
	pram.Release(s, tr.Post)
	pram.Release(s, tr.InSeq)
	pram.Release(s, tr.Root)
	pram.Release(s, tr.Roots)
	tr.Pos, tr.Seq, tr.Pre, tr.In, tr.Post = nil, nil, nil, nil, nil
	tr.InSeq, tr.Root, tr.Roots = nil, nil, nil
}

// item encoding helpers.
func preItem[I Ix](v I) I   { return 3 * v }
func inItem[I Ix](v I) I    { return 3*v + 1 }
func postItem[I Ix](v I) I  { return 3*v + 2 }
func itemNode[I Ix](it I) I { return it / 3 }

// TourBinary builds the Euler tour of t and the pre/in/post numberings.
// seed drives the randomized work-optimal list ranking.
func TourBinary(s *pram.Sim, t BinTree, seed uint64) *Tour {
	return TourBinaryIx(s, t, seed)
}

// TourBinaryIx is the width-generic TourBinary (see Ix). Note the tour
// stores item ids up to 3n, so the narrow width needs 3n to fit.
func TourBinaryIx[I Ix](s *pram.Sim, t BinTreeIx[I], seed uint64) *TourIx[I] {
	n := t.Len()
	tr := &TourIx[I]{N: n}
	if n == 0 {
		return tr
	}
	if s.PreferSequential(3 * n) {
		// Fused sequential route: build the successor links and walk them
		// once, threading every numbering off the single traversal, then
		// replay the exact charge sequence of the phase-structured build
		// (which is data-dependent only through the list-ranking rounds —
		// see chargeRankOpt).
		tourBuildSeq(s, t, seed, tr)
		return tr
	}

	isRoot := pram.GrabNoClear[bool](s, n)
	s.ParallelForRange(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			isRoot[v] = t.Parent[v] < 0
		}
	})
	roots := IndexPackIx[I](s, isRoot)
	pram.Release(s, isRoot)
	tr.Roots = roots

	// Successor links between the 3n items.
	next := pram.GrabNoClear[I](s, 3*n)
	s.ForCostRange(n, 3, func(vlo, vhi int) {
		for vi := vlo; vi < vhi; vi++ {
			v := I(vi)
			// pre(v) -> first of left subtree, else in(v)
			if l := t.Left[vi]; l >= 0 {
				next[preItem(v)] = preItem(l)
			} else {
				next[preItem(v)] = inItem(v)
			}
			// in(v) -> first of right subtree, else post(v)
			if r := t.Right[vi]; r >= 0 {
				next[inItem(v)] = preItem(r)
			} else {
				next[inItem(v)] = postItem(v)
			}
			// post(v) -> in(parent) when v is a left child, post(parent) when
			// right; roots are linked to the next root below.
			p := t.Parent[vi]
			switch {
			case p < 0:
				next[postItem(v)] = -1
			case t.Left[p] == v:
				next[postItem(v)] = inItem(p)
			default:
				next[postItem(v)] = postItem(p)
			}
		}
	})
	// Chain the trees: post(root_k) -> pre(root_{k+1}).
	s.ParallelFor(len(roots), func(k int) {
		if k+1 < len(roots) {
			next[postItem(roots[k])] = preItem(roots[k+1])
		}
	})

	pos, lengthI := ListPositionsIx(s, next, preItem(roots[0]), seed)
	length := int(lengthI)
	pram.Release(s, next)
	tr.Pos = pos
	seq := pram.GrabNoClear[I](s, length)
	s.ParallelForRange(3*n, func(lo, hi int) {
		for it := lo; it < hi; it++ {
			if pos[it] >= 0 {
				seq[pos[it]] = I(it)
			}
		}
	})
	tr.Seq = seq

	// Numberings: rank of each item kind along the sequence.
	kindFlag := func(kind I) []I {
		f := pram.Grab[I](s, length)
		s.ParallelForRange(length, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if seq[i]%3 == kind {
					f[i] = 1
				}
			}
		})
		r, _ := ScanIx(s, f)
		pram.Release(s, f)
		return r
	}
	preRank := kindFlag(0)
	inRank := kindFlag(1)
	postRank := kindFlag(2)
	tr.Pre = pram.GrabNoClear[I](s, n)
	tr.In = pram.GrabNoClear[I](s, n)
	tr.Post = pram.GrabNoClear[I](s, n)
	tr.InSeq = pram.GrabNoClear[I](s, n)
	s.ForCostRange(n, 3, func(lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := I(vi)
			tr.Pre[vi] = preRank[pos[preItem(v)]]
			tr.In[vi] = inRank[pos[inItem(v)]]
			tr.Post[vi] = postRank[pos[postItem(v)]]
		}
	})
	s.ParallelForRange(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			tr.InSeq[tr.In[v]] = I(v)
		}
	})
	pram.Release(s, preRank)
	pram.Release(s, inRank)
	pram.Release(s, postRank)

	// Root of each node: roots appear in increasing index order along the
	// tour, so a prefix max over root markers at pre positions works.
	marks := pram.GrabNoClear[I](s, length)
	sentinel := MinIx[I]()
	s.ParallelForRange(length, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			marks[i] = sentinel
		}
	})
	s.ParallelFor(len(roots), func(k int) { marks[pos[preItem(roots[k])]] = roots[k] })
	owner := MaxScanIx(s, marks)
	tr.Root = pram.GrabNoClear[I](s, n)
	s.ParallelForRange(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			tr.Root[v] = owner[pos[preItem(I(v))]]
		}
	})
	pram.Release(s, marks)
	pram.Release(s, owner)
	return tr
}

// tourBuildSeq is the fused sequential Euler-tour construction: one
// pass over the links to emit the 3n successor pointers, one walk along
// them filling every numbering, and a charge replay that keeps the
// simulated counters bit-identical to the phase-structured build.
func tourBuildSeq[I Ix](s *pram.Sim, t BinTreeIx[I], seed uint64, tr *TourIx[I]) {
	next := tourBuildSeqKeep(s, t, seed, tr, true)
	pram.Release(s, next)
}

// tourBuildSeqKeep is the fused build with the successor links handed
// back to the caller (the tour cache retains them for patch-based
// refreshes). With consumeNext set the charge replay scrambles the
// links in place — one pass cheaper — so pass false when keeping them.
func tourBuildSeqKeep[I Ix](s *pram.Sim, t BinTreeIx[I], seed uint64, tr *TourIx[I], consumeNext bool) []I {
	n := t.Len()
	nr := 0
	for v := 0; v < n; v++ {
		if t.Parent[v] < 0 {
			nr++
		}
	}
	roots := pram.GrabNoClear[I](s, nr)
	j := 0
	for v := 0; v < n; v++ {
		if t.Parent[v] < 0 {
			roots[j] = I(v)
			j++
		}
	}
	tr.Roots = roots
	next := pram.GrabNoClear[I](s, 3*n)
	fillTourLinks(t, roots, next)
	tr.Pos = pram.GrabNoClear[I](s, 3*n)
	tr.Seq = pram.GrabNoClear[I](s, 3*n)
	tr.Pre = pram.GrabNoClear[I](s, n)
	tr.In = pram.GrabNoClear[I](s, n)
	tr.Post = pram.GrabNoClear[I](s, n)
	tr.InSeq = pram.GrabNoClear[I](s, n)
	tr.Root = pram.GrabNoClear[I](s, n)
	tourWalk(t, next, tr)
	replayTourCharges(s, n, nr, next, seed, consumeNext)
	return next
}

// fillTourLinks emits the successor pointers of the 3n tour items — the
// sequential mirror of the charged link phase of TourBinaryIx.
func fillTourLinks[I Ix](t BinTreeIx[I], roots []I, next []I) {
	n := t.Len()
	for vi := 0; vi < n; vi++ {
		v := I(vi)
		if l := t.Left[vi]; l >= 0 {
			next[preItem(v)] = preItem(l)
		} else {
			next[preItem(v)] = inItem(v)
		}
		if r := t.Right[vi]; r >= 0 {
			next[inItem(v)] = preItem(r)
		} else {
			next[inItem(v)] = postItem(v)
		}
		p := t.Parent[vi]
		switch {
		case p < 0:
			next[postItem(v)] = -1
		case t.Left[p] == v:
			next[postItem(v)] = inItem(p)
		default:
			next[postItem(v)] = postItem(p)
		}
	}
	for k := 0; k+1 < len(roots); k++ {
		next[postItem(roots[k])] = preItem(roots[k+1])
	}
}

// tourWalk chases the item list once, filling Pos, Seq and all five
// node numberings of tr (whose slices must be pre-sized; tr.Roots must
// be set).
func tourWalk[I Ix](t BinTreeIx[I], next []I, tr *TourIx[I]) {
	var preCnt, inCnt, postCnt, pos I
	curRoot := I(-1)
	total := len(next)
	it := preItem(tr.Roots[0])
	for step := 0; step < total; step++ {
		tr.Pos[it] = pos
		tr.Seq[pos] = it
		v := itemNode(it)
		switch it % 3 {
		case 0:
			if t.Parent[v] < 0 {
				curRoot = v
			}
			tr.Pre[v] = preCnt
			preCnt++
			tr.Root[v] = curRoot
		case 1:
			tr.In[v] = inCnt
			tr.InSeq[inCnt] = v
			inCnt++
		default:
			tr.Post[v] = postCnt
			postCnt++
		}
		pos++
		it = next[it]
	}
}

// replayTourCharges issues the exact simulated charges of a
// phase-structured TourBinaryIx build of an n-node forest with nRoots
// roots and the given item-successor list (scrambled in place when
// consumeNext is set — see chargeRankOpt). It must mirror TourBinaryIx
// (and the ListPositionsIx it calls) charge for charge.
func replayTourCharges[I Ix](s *pram.Sim, n, nRoots int, next []I, seed uint64, consumeNext bool) {
	p := s.Procs()
	charge := func(m, cost int) {
		if m > 0 {
			s.Charge(int64(ceilDivInt(m, p)*cost), int64(m*cost))
		}
	}
	L := 3 * n
	charge(n, 1)            // isRoot flags
	charge(n, 1)            // IndexPack flags
	chargeScan(s, n, false) // IndexPack position scan
	charge(n, 1)            // IndexPack scatter
	charge(n, 3)            // successor links
	charge(nRoots, 1)       // root chaining
	chargeRankOpt(s, next, seed, consumeNext)
	charge(L, 1)             // ListPositions position fill
	charge(L, 1)             // seq scatter
	for k := 0; k < 3; k++ { // pre/in/post rank flags + scans
		charge(L, 1)
		chargeScan(s, L, false)
	}
	charge(n, 3)           // numbering gather
	charge(n, 1)           // InSeq scatter
	charge(L, 1)           // root marks fill
	charge(nRoots, 1)      // root marks scatter
	chargeScan(s, L, true) // owner max-scan
	charge(n, 1)           // root gather
}

// Depths returns the depth of every node (roots have depth 0), via a
// prefix sum of +1 at pre items and -1 at post items. The caller owns
// (and may Release) the result.
func (tr *TourIx[I]) Depths(s *pram.Sim) []I {
	if L := len(tr.Seq); L > 0 && s.PreferSequential(L) {
		// Fused: one walk along the tour with a running depth counter.
		d := pram.GrabNoClear[I](s, tr.N)
		run := I(0)
		for _, it := range tr.Seq {
			switch it % 3 {
			case 0:
				run++
				d[itemNode(it)] = run - 1
			case 2:
				run--
			}
		}
		p := s.Procs()
		s.Charge(int64(ceilDivInt(L, p)), int64(L))       // weight fill
		chargeScan(s, L, true)                            // depth scan
		s.Charge(int64(ceilDivInt(tr.N, p)), int64(tr.N)) // gather
		return d
	}
	w := pram.GrabNoClear[I](s, len(tr.Seq))
	s.ParallelForRange(len(tr.Seq), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			switch tr.Seq[i] % 3 {
			case 0:
				w[i] = 1
			case 2:
				w[i] = -1
			default:
				w[i] = 0
			}
		}
	})
	sums := InclusiveScanIx(s, w)
	d := pram.GrabNoClear[I](s, tr.N)
	s.ParallelForRange(tr.N, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			d[v] = sums[tr.Pos[preItem(I(v))]] - 1
		}
	})
	pram.Release(s, w)
	pram.Release(s, sums)
	return d
}

// SubtreeCounts returns, for every node, the number of nodes and the
// number of leaves in its subtree (inclusive). The caller owns both
// results.
func (tr *TourIx[I]) SubtreeCounts(s *pram.Sim, t BinTreeIx[I]) (size, leaves []I) {
	if L := len(tr.Seq); L > 0 && s.PreferSequential(L) {
		// Fused: running node/leaf counters; each node stashes the counts
		// at its pre item and completes the difference at its post item.
		size = pram.GrabNoClear[I](s, tr.N)
		leaves = pram.GrabNoClear[I](s, tr.N)
		var nodeCnt, leafCnt I
		for _, it := range tr.Seq {
			v := itemNode(it)
			switch it % 3 {
			case 0:
				nodeCnt++
				if t.IsLeaf(int(v)) {
					leafCnt++
				}
				size[v] = 1 - nodeCnt
				leaves[v] = -leafCnt
			case 2:
				size[v] += nodeCnt
				if t.IsLeaf(int(v)) {
					leaves[v] = 1
				} else {
					leaves[v] += leafCnt
				}
			}
		}
		p := s.Procs()
		s.Charge(int64(ceilDivInt(L, p)), int64(L))           // weight fill
		chargeScan(s, L, true)                                // node-count scan
		chargeScan(s, L, true)                                // leaf-count scan
		s.Charge(int64(2*ceilDivInt(tr.N, p)), int64(2*tr.N)) // gather
		return size, leaves
	}
	length := len(tr.Seq)
	nodeW := pram.Grab[I](s, length)
	leafW := pram.Grab[I](s, length)
	s.ParallelForRange(length, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			it := tr.Seq[i]
			if it%3 == 0 {
				v := itemNode(it)
				nodeW[i] = 1
				if t.IsLeaf(int(v)) {
					leafW[i] = 1
				}
			}
		}
	})
	nodeSum := InclusiveScanIx(s, nodeW)
	leafSum := InclusiveScanIx(s, leafW)
	size = pram.GrabNoClear[I](s, tr.N)
	leaves = pram.GrabNoClear[I](s, tr.N)
	s.ForCostRange(tr.N, 2, func(vlo, vhi int) {
		for vi := vlo; vi < vhi; vi++ {
			v := I(vi)
			lo, hi := tr.Pos[preItem(v)], tr.Pos[postItem(v)]
			size[vi] = nodeSum[hi] - nodeSum[lo] + 1
			leaves[vi] = leafSum[hi] - leafSum[lo]
			if t.IsLeaf(vi) {
				leaves[vi] = 1
			}
		}
	})
	pram.Release(s, nodeW)
	pram.Release(s, leafW)
	pram.Release(s, nodeSum)
	pram.Release(s, leafSum)
	return size, leaves
}

// AncestorFlagCounts returns for every node the number of flagged nodes
// on the path from its tree root to the node, inclusive.
func (tr *TourIx[I]) AncestorFlagCounts(s *pram.Sim, flag []bool) []I {
	if L := len(tr.Seq); L > 0 && s.PreferSequential(L) {
		// Fused: running count of open flagged ancestors.
		out := pram.GrabNoClear[I](s, tr.N)
		run := I(0)
		for _, it := range tr.Seq {
			v := itemNode(it)
			switch it % 3 {
			case 0:
				if flag[v] {
					run++
				}
				out[v] = run
			case 2:
				if flag[v] {
					run--
				}
			}
		}
		p := s.Procs()
		s.Charge(int64(ceilDivInt(L, p)), int64(L))       // weight fill
		chargeScan(s, L, true)                            // flag scan
		s.Charge(int64(ceilDivInt(tr.N, p)), int64(tr.N)) // gather
		return out
	}
	length := len(tr.Seq)
	w := pram.Grab[I](s, length)
	s.ParallelForRange(length, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			it := tr.Seq[i]
			v := itemNode(it)
			if flag[v] {
				switch it % 3 {
				case 0:
					w[i] = 1
				case 2:
					w[i] = -1
				}
			}
		}
	})
	sums := InclusiveScanIx(s, w)
	out := pram.GrabNoClear[I](s, tr.N)
	s.ParallelForRange(tr.N, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			out[v] = sums[tr.Pos[preItem(I(v))]]
		}
	})
	pram.Release(s, w)
	pram.Release(s, sums)
	return out
}

// LeafStarts returns, for every node, the number of leaves strictly to
// the left of its subtree in inorder — i.e. the leaf rank of the node's
// leftmost leaf descendant.
func (tr *TourIx[I]) LeafStarts(s *pram.Sim, t BinTreeIx[I]) []I {
	if L := len(tr.Seq); L > 0 && s.PreferSequential(L) {
		// Fused: every node reads the running leaf count at its pre item;
		// leaves bump it at their in item.
		out := pram.GrabNoClear[I](s, tr.N)
		cnt := I(0)
		for _, it := range tr.Seq {
			v := itemNode(it)
			switch it % 3 {
			case 0:
				out[v] = cnt
			case 1:
				if t.IsLeaf(int(v)) {
					cnt++
				}
			}
		}
		p := s.Procs()
		s.Charge(int64(ceilDivInt(L, p)), int64(L))       // flag fill
		chargeScan(s, L, false)                           // leaf-rank scan
		s.Charge(int64(ceilDivInt(tr.N, p)), int64(tr.N)) // gather
		return out
	}
	length := len(tr.Seq)
	w := pram.Grab[I](s, length)
	s.ParallelForRange(length, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			it := tr.Seq[i]
			if it%3 == 1 && t.IsLeaf(int(itemNode(it))) {
				w[i] = 1
			}
		}
	})
	r, _ := ScanIx(s, w)
	out := pram.GrabNoClear[I](s, tr.N)
	s.ParallelForRange(tr.N, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			out[v] = r[tr.Pos[preItem(I(v))]]
		}
	})
	pram.Release(s, w)
	pram.Release(s, r)
	return out
}

// LeafRanks numbers the leaves of the forest 0..m-1 in left-to-right
// (inorder) order; non-leaves get -1. Also returns m.
func (tr *TourIx[I]) LeafRanks(s *pram.Sim, t BinTreeIx[I]) ([]I, int) {
	if L := len(tr.Seq); L > 0 && s.PreferSequential(L) {
		// Fused: number the leaves as their in items stream past.
		out := pram.GrabNoClear[I](s, tr.N)
		m := I(0)
		for _, it := range tr.Seq {
			if it%3 != 1 {
				continue
			}
			v := itemNode(it)
			if t.IsLeaf(int(v)) {
				out[v] = m
				m++
			} else {
				out[v] = -1
			}
		}
		p := s.Procs()
		s.Charge(int64(ceilDivInt(L, p)), int64(L))       // flag fill
		chargeScan(s, L, false)                           // leaf-rank scan
		s.Charge(int64(ceilDivInt(tr.N, p)), int64(tr.N)) // gather
		return out, int(m)
	}
	length := len(tr.Seq)
	w := pram.Grab[I](s, length)
	s.ParallelForRange(length, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			it := tr.Seq[i]
			if it%3 == 1 && t.IsLeaf(int(itemNode(it))) {
				w[i] = 1
			}
		}
	})
	r, m := ScanIx(s, w)
	out := pram.GrabNoClear[I](s, tr.N)
	s.ParallelForRange(tr.N, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if t.IsLeaf(v) {
				out[v] = r[tr.Pos[inItem(I(v))]]
			} else {
				out[v] = -1
			}
		}
	})
	pram.Release(s, w)
	pram.Release(s, r)
	return out, int(m)
}
