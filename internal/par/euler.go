package par

import "pathcover/internal/pram"

// BinTree is a binary forest in arena form. All three slices have the
// same length; -1 denotes absence. Roots have Parent -1. An internal node
// may have one or two children (path trees are like that); full binary
// trees (cotrees) always have both.
type BinTree struct {
	Left, Right, Parent []int
}

// Len returns the number of nodes.
func (t BinTree) Len() int { return len(t.Parent) }

// NewBinTree allocates an n-node forest with every link empty.
func NewBinTree(n int) BinTree {
	t := BinTree{
		Left:   make([]int, n),
		Right:  make([]int, n),
		Parent: make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.Left[i], t.Right[i], t.Parent[i] = -1, -1, -1
	}
	return t
}

// GrabBinTree is NewBinTree with the three link slices drawn from the
// Sim's scratch arena; pair it with ReleaseBinTree.
func GrabBinTree(s *pram.Sim, n int) BinTree {
	t := BinTree{
		Left:   pram.GrabNoClear[int](s, n),
		Right:  pram.GrabNoClear[int](s, n),
		Parent: pram.GrabNoClear[int](s, n),
	}
	for i := 0; i < n; i++ {
		t.Left[i], t.Right[i], t.Parent[i] = -1, -1, -1
	}
	return t
}

// ReleaseBinTree returns a forest's link slices to the arena.
func ReleaseBinTree(s *pram.Sim, t BinTree) {
	pram.Release(s, t.Left)
	pram.Release(s, t.Right)
	pram.Release(s, t.Parent)
}

// IsLeaf reports whether v has no children.
func (t BinTree) IsLeaf(v int) bool { return t.Left[v] < 0 && t.Right[v] < 0 }

// Tour is the Euler tour of a binary forest together with the numberings
// derived from it (paper Lemma 5.2). Each node contributes three tour
// items — pre (first visit), in (between the two subtrees) and post
// (last visit) — and the items of all trees are chained root after root
// in increasing root order.
//
// A Tour's slices come from the owning Sim's arena; call Release once
// the tour is no longer needed.
type Tour struct {
	N   int
	Pos []int // Pos[item] = position of tour item; items are 3v, 3v+1, 3v+2
	Seq []int // Seq[pos] = item at that position (inverse of Pos)

	Pre, In, Post []int // numberings of the nodes, 0-based across the forest
	InSeq         []int // InSeq[k] = node with inorder number k
	Root          []int // root of each node's tree
	Roots         []int // the roots, in increasing index order
}

// Release returns the tour's slices to the Sim's arena. The Tour must
// not be used afterwards.
func (tr *Tour) Release(s *pram.Sim) {
	pram.Release(s, tr.Pos)
	pram.Release(s, tr.Seq)
	pram.Release(s, tr.Pre)
	pram.Release(s, tr.In)
	pram.Release(s, tr.Post)
	pram.Release(s, tr.InSeq)
	pram.Release(s, tr.Root)
	pram.Release(s, tr.Roots)
	tr.Pos, tr.Seq, tr.Pre, tr.In, tr.Post = nil, nil, nil, nil, nil
	tr.InSeq, tr.Root, tr.Roots = nil, nil, nil
}

// item encoding helpers.
func preItem(v int) int   { return 3 * v }
func inItem(v int) int    { return 3*v + 1 }
func postItem(v int) int  { return 3*v + 2 }
func itemNode(it int) int { return it / 3 }

// TourBinary builds the Euler tour of t and the pre/in/post numberings.
// seed drives the randomized work-optimal list ranking.
func TourBinary(s *pram.Sim, t BinTree, seed uint64) *Tour {
	n := t.Len()
	tr := &Tour{N: n}
	if n == 0 {
		return tr
	}

	isRoot := pram.GrabNoClear[bool](s, n)
	s.ParallelForRange(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			isRoot[v] = t.Parent[v] < 0
		}
	})
	roots := IndexPack(s, isRoot)
	pram.Release(s, isRoot)
	tr.Roots = roots

	// Successor links between the 3n items.
	next := pram.GrabNoClear[int](s, 3*n)
	s.ForCostRange(n, 3, func(vlo, vhi int) {
		for v := vlo; v < vhi; v++ {
			// pre(v) -> first of left subtree, else in(v)
			if l := t.Left[v]; l >= 0 {
				next[preItem(v)] = preItem(l)
			} else {
				next[preItem(v)] = inItem(v)
			}
			// in(v) -> first of right subtree, else post(v)
			if r := t.Right[v]; r >= 0 {
				next[inItem(v)] = preItem(r)
			} else {
				next[inItem(v)] = postItem(v)
			}
			// post(v) -> in(parent) when v is a left child, post(parent) when
			// right; roots are linked to the next root below.
			p := t.Parent[v]
			switch {
			case p < 0:
				next[postItem(v)] = -1
			case t.Left[p] == v:
				next[postItem(v)] = inItem(p)
			default:
				next[postItem(v)] = postItem(p)
			}
		}
	})
	// Chain the trees: post(root_k) -> pre(root_{k+1}).
	s.ParallelFor(len(roots), func(k int) {
		if k+1 < len(roots) {
			next[postItem(roots[k])] = preItem(roots[k+1])
		}
	})

	pos, length := ListPositions(s, next, preItem(roots[0]), seed)
	pram.Release(s, next)
	tr.Pos = pos
	seq := pram.GrabNoClear[int](s, length)
	s.ParallelForRange(3*n, func(lo, hi int) {
		for it := lo; it < hi; it++ {
			if pos[it] >= 0 {
				seq[pos[it]] = it
			}
		}
	})
	tr.Seq = seq

	// Numberings: rank of each item kind along the sequence.
	kindFlag := func(kind int) []int {
		f := pram.Grab[int](s, length)
		s.ParallelForRange(length, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if seq[i]%3 == kind {
					f[i] = 1
				}
			}
		})
		r, _ := ScanInt(s, f)
		pram.Release(s, f)
		return r
	}
	preRank := kindFlag(0)
	inRank := kindFlag(1)
	postRank := kindFlag(2)
	tr.Pre = pram.GrabNoClear[int](s, n)
	tr.In = pram.GrabNoClear[int](s, n)
	tr.Post = pram.GrabNoClear[int](s, n)
	tr.InSeq = pram.GrabNoClear[int](s, n)
	s.ForCostRange(n, 3, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			tr.Pre[v] = preRank[pos[preItem(v)]]
			tr.In[v] = inRank[pos[inItem(v)]]
			tr.Post[v] = postRank[pos[postItem(v)]]
		}
	})
	s.ParallelForRange(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			tr.InSeq[tr.In[v]] = v
		}
	})
	pram.Release(s, preRank)
	pram.Release(s, inRank)
	pram.Release(s, postRank)

	// Root of each node: roots appear in increasing index order along the
	// tour, so a prefix max over root markers at pre positions works.
	marks := pram.GrabNoClear[int](s, length)
	s.ParallelForRange(length, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			marks[i] = minInt
		}
	})
	s.ParallelFor(len(roots), func(k int) { marks[pos[preItem(roots[k])]] = roots[k] })
	owner := MaxScanInt(s, marks)
	tr.Root = pram.GrabNoClear[int](s, n)
	s.ParallelForRange(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			tr.Root[v] = owner[pos[preItem(v)]]
		}
	})
	pram.Release(s, marks)
	pram.Release(s, owner)
	return tr
}

// Depths returns the depth of every node (roots have depth 0), via a
// prefix sum of +1 at pre items and -1 at post items. The caller owns
// (and may Release) the result.
func (tr *Tour) Depths(s *pram.Sim) []int {
	w := pram.GrabNoClear[int](s, len(tr.Seq))
	s.ParallelForRange(len(tr.Seq), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			switch tr.Seq[i] % 3 {
			case 0:
				w[i] = 1
			case 2:
				w[i] = -1
			default:
				w[i] = 0
			}
		}
	})
	sums := InclusiveScanInt(s, w)
	d := pram.GrabNoClear[int](s, tr.N)
	s.ParallelForRange(tr.N, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			d[v] = sums[tr.Pos[preItem(v)]] - 1
		}
	})
	pram.Release(s, w)
	pram.Release(s, sums)
	return d
}

// SubtreeCounts returns, for every node, the number of nodes and the
// number of leaves in its subtree (inclusive). The caller owns both
// results.
func (tr *Tour) SubtreeCounts(s *pram.Sim, t BinTree) (size, leaves []int) {
	length := len(tr.Seq)
	nodeW := pram.Grab[int](s, length)
	leafW := pram.Grab[int](s, length)
	s.ParallelForRange(length, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			it := tr.Seq[i]
			if it%3 == 0 {
				v := itemNode(it)
				nodeW[i] = 1
				if t.IsLeaf(v) {
					leafW[i] = 1
				}
			}
		}
	})
	nodeSum := InclusiveScanInt(s, nodeW)
	leafSum := InclusiveScanInt(s, leafW)
	size = pram.GrabNoClear[int](s, tr.N)
	leaves = pram.GrabNoClear[int](s, tr.N)
	s.ForCostRange(tr.N, 2, func(vlo, vhi int) {
		for v := vlo; v < vhi; v++ {
			lo, hi := tr.Pos[preItem(v)], tr.Pos[postItem(v)]
			size[v] = nodeSum[hi] - nodeSum[lo] + 1
			leaves[v] = leafSum[hi] - leafSum[lo]
			if t.IsLeaf(v) {
				leaves[v] = 1
			}
		}
	})
	pram.Release(s, nodeW)
	pram.Release(s, leafW)
	pram.Release(s, nodeSum)
	pram.Release(s, leafSum)
	return size, leaves
}

// AncestorFlagCounts returns for every node the number of flagged nodes
// on the path from its tree root to the node, inclusive.
func (tr *Tour) AncestorFlagCounts(s *pram.Sim, flag []bool) []int {
	length := len(tr.Seq)
	w := pram.Grab[int](s, length)
	s.ParallelForRange(length, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			it := tr.Seq[i]
			v := itemNode(it)
			if flag[v] {
				switch it % 3 {
				case 0:
					w[i] = 1
				case 2:
					w[i] = -1
				}
			}
		}
	})
	sums := InclusiveScanInt(s, w)
	out := pram.GrabNoClear[int](s, tr.N)
	s.ParallelForRange(tr.N, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			out[v] = sums[tr.Pos[preItem(v)]]
		}
	})
	pram.Release(s, w)
	pram.Release(s, sums)
	return out
}

// LeafStarts returns, for every node, the number of leaves strictly to
// the left of its subtree in inorder — i.e. the leaf rank of the node's
// leftmost leaf descendant.
func (tr *Tour) LeafStarts(s *pram.Sim, t BinTree) []int {
	length := len(tr.Seq)
	w := pram.Grab[int](s, length)
	s.ParallelForRange(length, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			it := tr.Seq[i]
			if it%3 == 1 && t.IsLeaf(itemNode(it)) {
				w[i] = 1
			}
		}
	})
	r, _ := ScanInt(s, w)
	out := pram.GrabNoClear[int](s, tr.N)
	s.ParallelForRange(tr.N, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			out[v] = r[tr.Pos[preItem(v)]]
		}
	})
	pram.Release(s, w)
	pram.Release(s, r)
	return out
}

// LeafRanks numbers the leaves of the forest 0..m-1 in left-to-right
// (inorder) order; non-leaves get -1. Also returns m.
func (tr *Tour) LeafRanks(s *pram.Sim, t BinTree) ([]int, int) {
	length := len(tr.Seq)
	w := pram.Grab[int](s, length)
	s.ParallelForRange(length, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			it := tr.Seq[i]
			if it%3 == 1 && t.IsLeaf(itemNode(it)) {
				w[i] = 1
			}
		}
	})
	r, m := ScanInt(s, w)
	out := pram.GrabNoClear[int](s, tr.N)
	s.ParallelForRange(tr.N, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if t.IsLeaf(v) {
				out[v] = r[tr.Pos[inItem(v)]]
			} else {
				out[v] = -1
			}
		}
	})
	pram.Release(s, w)
	pram.Release(s, r)
	return out, m
}
