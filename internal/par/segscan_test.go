package par

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pathcover/internal/pram"
)

func TestSegmentedSumInclusive(t *testing.T) {
	for _, s := range sims() {
		vals := []int{1, 2, 3, 4, 5, 6}
		starts := []bool{false, false, true, false, true, false}
		got := SegmentedSumInclusive(s, vals, starts)
		want := []int{1, 3, 3, 7, 5, 11}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("procs=%d: seg[%d]=%d want %d", s.Procs(), i, got[i], want[i])
			}
		}
	}
}

func TestSegmentedRank(t *testing.T) {
	s := pram.New(3, pram.WithGrain(2))
	flagged := []bool{true, false, true, true, true, false, true}
	starts := []bool{false, false, false, true, false, false, false}
	got := SegmentedRank(s, flagged, starts)
	want := []int{0, -1, 1, 0, 1, -1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank[%d]=%d want %d", i, got[i], want[i])
		}
	}
}

func TestSegmentedSumProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, procs uint8) bool {
		n := int(nRaw%500) + 1
		rng := rand.New(rand.NewPCG(seed, 71))
		vals := make([]int, n)
		starts := make([]bool, n)
		for i := range vals {
			vals[i] = rng.IntN(20) - 10
			starts[i] = rng.IntN(5) == 0
		}
		s := pram.New(1+int(procs%10), pram.WithGrain(8))
		got := SegmentedSumInclusive(s, vals, starts)
		acc := 0
		for i := 0; i < n; i++ {
			if starts[i] || i == 0 {
				acc = 0
			}
			acc += vals[i]
			if got[i] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
