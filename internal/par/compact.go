package par

import "pathcover/internal/pram"

// Pack returns the elements of in whose keep flag is set, preserving
// order (stable stream compaction). O(log n) time, O(n) work via one scan
// and one scatter.
func Pack[T any](s *pram.Sim, in []T, keep []bool) []T {
	idx := IndexPack(s, keep)
	out := pram.GrabNoClear[T](s, len(idx))
	s.ParallelFor(len(idx), func(i int) { out[i] = in[idx[i]] })
	pram.Release(s, idx)
	return out
}

// IndexPack returns, in increasing order, the indices i with keep[i]
// set.
func IndexPack(s *pram.Sim, keep []bool) []int {
	n := len(keep)
	st := packStateOf(s)
	st.keep = keep
	st.flags = pram.GrabNoClear[int](s, n)
	st.phase = packPhaseFlags
	s.ParallelForRange(n, st.body)
	pos, total := ScanInt(s, st.flags)
	st.pos = pos
	st.out = pram.GrabNoClear[int](s, total)
	st.phase = packPhaseScatter
	s.ParallelForRange(n, st.body)
	out := st.out
	pram.Release(s, st.flags)
	pram.Release(s, pos)
	st.keep, st.flags, st.pos, st.out = nil, nil, nil, nil
	return out
}

// packState keeps the phase bodies of IndexPack reusable per Sim.
type packState struct {
	keep            []bool
	flags, pos, out []int
	phase           int
	body            func(lo, hi int)
}

const (
	packPhaseFlags = iota
	packPhaseScatter
)

type packKey struct{}

func packStateOf(s *pram.Sim) *packState {
	sc := s.Scratch()
	if v := sc.Aux(packKey{}); v != nil {
		return v.(*packState)
	}
	st := &packState{}
	st.body = st.run
	sc.SetAux(packKey{}, st)
	return st
}

func (st *packState) run(lo, hi int) {
	switch st.phase {
	case packPhaseFlags:
		keep, flags := st.keep, st.flags
		for i := lo; i < hi; i++ {
			if keep[i] {
				flags[i] = 1
			} else {
				flags[i] = 0
			}
		}
	case packPhaseScatter:
		keep, pos, out := st.keep, st.pos, st.out
		for i := lo; i < hi; i++ {
			if keep[i] {
				out[pos[i]] = i
			}
		}
	}
}

// Distribute expands variable-length segments: given segment lengths,
// it returns (owner, offset, total) where for each item t in [0, total)
// of the concatenation, owner[t] is the segment it belongs to and
// offset[t] its position within that segment.
//
// This is the scatter-heads-then-max-scan idiom: the head position of
// each segment receives the segment id, and an inclusive prefix maximum
// broadcasts ids across items — O(log n) time, O(total + segments) work,
// EREW.
func Distribute(s *pram.Sim, lengths []int) (owner, offset []int, total int) {
	st := distStateOf(s)
	st.lengths = lengths
	starts, tot := ScanInt(s, lengths)
	st.starts = starts
	st.heads = pram.GrabNoClear[int](s, tot)
	st.phase = distPhaseFill
	s.ParallelForRange(tot, st.body)
	st.phase = distPhaseHeads
	s.ParallelForRange(len(lengths), st.body)
	owner = MaxScanInt(s, st.heads)
	st.owner = owner
	st.offset = pram.GrabNoClear[int](s, tot)
	st.phase = distPhaseOffsets
	s.ParallelForRange(tot, st.body)
	offset = st.offset
	pram.Release(s, st.heads)
	pram.Release(s, starts)
	st.lengths, st.starts, st.heads, st.owner, st.offset = nil, nil, nil, nil, nil
	return owner, offset, tot
}

type distState struct {
	lengths, starts, heads []int
	owner, offset          []int
	phase                  int
	body                   func(lo, hi int)
}

const (
	distPhaseFill = iota
	distPhaseHeads
	distPhaseOffsets
)

type distKey struct{}

func distStateOf(s *pram.Sim) *distState {
	sc := s.Scratch()
	if v := sc.Aux(distKey{}); v != nil {
		return v.(*distState)
	}
	st := &distState{}
	st.body = st.run
	sc.SetAux(distKey{}, st)
	return st
}

func (st *distState) run(lo, hi int) {
	switch st.phase {
	case distPhaseFill:
		heads := st.heads
		for i := lo; i < hi; i++ {
			heads[i] = minInt
		}
	case distPhaseHeads:
		for i := lo; i < hi; i++ {
			if st.lengths[i] > 0 {
				st.heads[st.starts[i]] = i
			}
		}
	case distPhaseOffsets:
		starts, owner, offset := st.starts, st.owner, st.offset
		for i := lo; i < hi; i++ {
			offset[i] = i - starts[owner[i]]
		}
	}
}
