package par

import "pathcover/internal/pram"

// Pack returns the elements of in whose keep flag is set, preserving
// order (stable stream compaction). O(log n) time, O(n) work via one scan
// and one scatter.
func Pack[T any](s *pram.Sim, in []T, keep []bool) []T {
	return PackIx[int](s, in, keep)
}

// PackIx is Pack with a chosen width for the internal index arrays.
func PackIx[I Ix, T any](s *pram.Sim, in []T, keep []bool) []T {
	idx := IndexPackIx[I](s, keep)
	out := pram.GrabNoClear[T](s, len(idx))
	s.ParallelFor(len(idx), func(i int) { out[i] = in[idx[i]] })
	pram.Release(s, idx)
	return out
}

// IndexPack returns, in increasing order, the indices i with keep[i]
// set.
func IndexPack(s *pram.Sim, keep []bool) []int {
	return IndexPackIx[int](s, keep)
}

// IndexPackIx is the width-generic IndexPack (see Ix).
func IndexPackIx[I Ix](s *pram.Sim, keep []bool) []I {
	n := len(keep)
	if n > 0 && s.PreferSequential(n) {
		// Fused sequential route: one pass to count, one to fill, versus
		// the flags/scan/scatter phase chain. Charges replayed exactly.
		total := 0
		for _, k := range keep {
			if k {
				total++
			}
		}
		out := pram.GrabNoClear[I](s, total)
		j := 0
		for i, k := range keep {
			if k {
				out[j] = I(i)
				j++
			}
		}
		p := s.Procs()
		s.Charge(int64(ceilDivInt(n, p)), int64(n)) // flags phase
		chargeScan(s, n, false)                     // position scan
		s.Charge(int64(ceilDivInt(n, p)), int64(n)) // scatter phase
		return out
	}
	st := packStateOf[I](s)
	st.keep = keep
	st.flags = pram.GrabNoClear[I](s, n)
	st.phase = packPhaseFlags
	s.ParallelForRange(n, st.body)
	pos, total := ScanIx(s, st.flags)
	st.pos = pos
	st.out = pram.GrabNoClear[I](s, int(total))
	st.phase = packPhaseScatter
	s.ParallelForRange(n, st.body)
	out := st.out
	pram.Release(s, st.flags)
	pram.Release(s, pos)
	st.keep, st.flags, st.pos, st.out = nil, nil, nil, nil
	return out
}

// packState keeps the phase bodies of IndexPack reusable per (Sim,
// width).
type packState[I Ix] struct {
	keep            []bool
	flags, pos, out []I
	phase           int
	body            func(lo, hi int)
}

const (
	packPhaseFlags = iota
	packPhaseScatter
)

type packKey[I Ix] struct{}

func packStateOf[I Ix](s *pram.Sim) *packState[I] {
	sc := s.Scratch()
	if v := sc.Aux(packKey[I]{}); v != nil {
		return v.(*packState[I])
	}
	st := &packState[I]{}
	st.body = st.run
	sc.SetAux(packKey[I]{}, st)
	return st
}

func (st *packState[I]) run(lo, hi int) {
	switch st.phase {
	case packPhaseFlags:
		keep, flags := st.keep, st.flags
		for i := lo; i < hi; i++ {
			if keep[i] {
				flags[i] = 1
			} else {
				flags[i] = 0
			}
		}
	case packPhaseScatter:
		keep, pos, out := st.keep, st.pos, st.out
		for i := lo; i < hi; i++ {
			if keep[i] {
				out[pos[i]] = I(i)
			}
		}
	}
}

// Distribute expands variable-length segments: given segment lengths,
// it returns (owner, offset, total) where for each item t in [0, total)
// of the concatenation, owner[t] is the segment it belongs to and
// offset[t] its position within that segment.
//
// This is the scatter-heads-then-max-scan idiom: the head position of
// each segment receives the segment id, and an inclusive prefix maximum
// broadcasts ids across items — O(log n) time, O(total + segments) work,
// EREW.
func Distribute(s *pram.Sim, lengths []int) (owner, offset []int, total int) {
	return DistributeIx(s, lengths)
}

// DistributeIx is the width-generic Distribute (see Ix).
func DistributeIx[I Ix](s *pram.Sim, lengths []I) (owner, offset []I, total int) {
	nseg := len(lengths)
	// The starts scan runs first either way (it auto-fuses below the
	// cutover) and yields the total the route decision needs, so no
	// extra uncharged sweep over lengths is ever paid.
	starts, totI := ScanIx(s, lengths)
	tot := int(totI)
	if s.PreferSequential(tot + nseg) {
		// Fused sequential route for the remaining four phases: emit each
		// segment's run directly, replaying their exact charges.
		pram.Release(s, starts)
		owner = pram.GrabNoClear[I](s, tot)
		offset = pram.GrabNoClear[I](s, tot)
		t := 0
		for seg, l := range lengths {
			for j := I(0); j < l; j++ {
				owner[t] = I(seg)
				offset[t] = j
				t++
			}
		}
		p := s.Procs()
		if tot > 0 {
			s.Charge(int64(ceilDivInt(tot, p)), int64(tot)) // heads fill
		}
		if nseg > 0 {
			s.Charge(int64(ceilDivInt(nseg, p)), int64(nseg)) // head scatter
		}
		chargeScan(s, tot, true) // owner max-scan
		if tot > 0 {
			s.Charge(int64(ceilDivInt(tot, p)), int64(tot)) // offsets
		}
		return owner, offset, tot
	}
	st := distStateOf[I](s)
	st.lengths = lengths
	st.starts = starts
	st.heads = pram.GrabNoClear[I](s, tot)
	st.phase = distPhaseFill
	s.ParallelForRange(tot, st.body)
	st.phase = distPhaseHeads
	s.ParallelForRange(nseg, st.body)
	owner = MaxScanIx(s, st.heads)
	st.owner = owner
	st.offset = pram.GrabNoClear[I](s, tot)
	st.phase = distPhaseOffsets
	s.ParallelForRange(tot, st.body)
	offset = st.offset
	pram.Release(s, st.heads)
	pram.Release(s, starts)
	st.lengths, st.starts, st.heads, st.owner, st.offset = nil, nil, nil, nil, nil
	return owner, offset, tot
}

type distState[I Ix] struct {
	lengths, starts, heads []I
	owner, offset          []I
	phase                  int
	body                   func(lo, hi int)
}

const (
	distPhaseFill = iota
	distPhaseHeads
	distPhaseOffsets
)

type distKey[I Ix] struct{}

func distStateOf[I Ix](s *pram.Sim) *distState[I] {
	sc := s.Scratch()
	if v := sc.Aux(distKey[I]{}); v != nil {
		return v.(*distState[I])
	}
	st := &distState[I]{}
	st.body = st.run
	sc.SetAux(distKey[I]{}, st)
	return st
}

func (st *distState[I]) run(lo, hi int) {
	switch st.phase {
	case distPhaseFill:
		heads := st.heads
		sentinel := MinIx[I]()
		for i := lo; i < hi; i++ {
			heads[i] = sentinel
		}
	case distPhaseHeads:
		for i := lo; i < hi; i++ {
			if st.lengths[i] > 0 {
				st.heads[st.starts[i]] = I(i)
			}
		}
	case distPhaseOffsets:
		starts, owner, offset := st.starts, st.owner, st.offset
		for i := lo; i < hi; i++ {
			offset[i] = I(i) - starts[owner[i]]
		}
	}
}
