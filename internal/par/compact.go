package par

import "pathcover/internal/pram"

// Pack returns the elements of in whose keep flag is set, preserving
// order (stable stream compaction). O(log n) time, O(n) work via one scan
// and one scatter.
func Pack[T any](s *pram.Sim, in []T, keep []bool) []T {
	idx := IndexPack(s, keep)
	out := make([]T, len(idx))
	s.ParallelFor(len(idx), func(i int) { out[i] = in[idx[i]] })
	return out
}

// IndexPack returns, in increasing order, the indices i with keep[i]
// set.
func IndexPack(s *pram.Sim, keep []bool) []int {
	n := len(keep)
	flags := make([]int, n)
	s.ParallelFor(n, func(i int) {
		if keep[i] {
			flags[i] = 1
		}
	})
	pos, total := ScanInt(s, flags)
	out := make([]int, total)
	s.ParallelFor(n, func(i int) {
		if keep[i] {
			out[pos[i]] = i
		}
	})
	return out
}

// Distribute expands variable-length segments: given segment lengths,
// it returns (owner, offset, total) where for each item t in [0, total)
// of the concatenation, owner[t] is the segment it belongs to and
// offset[t] its position within that segment.
//
// This is the scatter-heads-then-max-scan idiom: the head position of
// each segment receives the segment id, and an inclusive prefix maximum
// broadcasts ids across items — O(log n) time, O(total + segments) work,
// EREW.
func Distribute(s *pram.Sim, lengths []int) (owner, offset []int, total int) {
	starts, tot := ScanInt(s, lengths)
	heads := make([]int, tot)
	s.ParallelFor(tot, func(i int) { heads[i] = minInt })
	s.ParallelFor(len(lengths), func(g int) {
		if lengths[g] > 0 {
			heads[starts[g]] = g
		}
	})
	owner = MaxScanInt(s, heads)
	offset = make([]int, tot)
	s.ParallelFor(tot, func(t int) { offset[t] = t - starts[owner[t]] })
	return owner, offset, tot
}
