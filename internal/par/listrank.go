package par

import "pathcover/internal/pram"

// Rank performs list ranking by Wyllie pointer jumping. For every element
// i of the linked structure next (next[i] = successor index, or -1 at a
// terminal), it returns dist[i] — the number of links from i to its
// terminal — and last[i], the terminal itself. next may describe any
// number of disjoint lists (or, more generally, in-forests whose edges
// point toward the roots).
//
// Pointer jumping is O(log n) time but O(n log n) work; RankOpt is the
// work-optimal variant. Rank is retained as the simple reference and as
// the comparison point for the work-optimality ablation bench.
func Rank(s *pram.Sim, next []int) (dist, last []int) {
	return RankWeighted(s, next, nil)
}

// RankWeighted is Rank with a weight per link: dist[i] becomes the sum of
// weights along the path from i to its terminal. A nil weight slice means
// unit weights.
func RankWeighted(s *pram.Sim, next []int, weight []int) (dist, last []int) {
	n := len(next)
	dist = make([]int, n)
	last = make([]int, n)
	nxt := make([]int, n)
	s.ParallelFor(n, func(i int) {
		nxt[i] = next[i]
		last[i] = i
		if next[i] >= 0 {
			if weight == nil {
				dist[i] = 1
			} else {
				dist[i] = weight[i]
			}
		}
	})
	// Double buffers keep each jumping round exclusive-access: reads go to
	// the "cur" generation, writes to "new".
	nd := make([]int, n)
	nn := make([]int, n)
	nl := make([]int, n)
	rounds := 0
	for v := 1; v < n; v <<= 1 {
		rounds++
	}
	for r := 0; r < rounds; r++ {
		s.ForCost(n, 2, func(i int) {
			j := nxt[i]
			if j >= 0 {
				nd[i] = dist[i] + dist[j]
				nl[i] = last[j]
				nn[i] = nxt[j]
			} else {
				nd[i] = dist[i]
				nl[i] = last[i]
				nn[i] = -1
			}
		})
		dist, nd = nd, dist
		last, nl = nl, last
		nxt, nn = nn, nxt
	}
	return dist, last
}

// RankOpt is randomized work-optimal list ranking: random-mate
// contraction splices out a constant expected fraction of the elements
// per round until at most n/log n survive, Wyllie ranks the survivors,
// and the spliced elements are reinstated in reverse order. Expected work
// is O(n); time is O(log n) with n/log n processors (w.h.p.).
//
// seed makes the coin flips deterministic for a given input.
func RankOpt(s *pram.Sim, next []int, seed uint64) (dist, last []int) {
	return RankOptWeighted(s, next, nil, seed)
}

type splice struct {
	elem int // the spliced-out element
	succ int // its successor at splice time
	w    int // weight of the link elem->succ at splice time
}

// RankOptWeighted is RankOpt with link weights (nil means unit weights).
func RankOptWeighted(s *pram.Sim, next []int, weight []int, seed uint64) (dist, last []int) {
	n := len(next)
	if n == 0 {
		return nil, nil
	}
	target := pram.ProcsFor(n) // contract to ~n/log n survivors
	if n <= 64 || s.Procs() == 1 {
		// Serial reference: follow chains with memoization via reverse
		// topological order (process in order of a stack-free two-pass).
		return rankSerial(s, next, weight)
	}

	w := make([]int, n)
	nxt := make([]int, n)
	prv := make([]int, n)
	s.ParallelFor(n, func(i int) {
		nxt[i] = next[i]
		prv[i] = -1
		if next[i] >= 0 {
			if weight == nil {
				w[i] = 1
			} else {
				w[i] = weight[i]
			}
		}
	})
	// prv[j] = some predecessor of j. For lists it is unique; RankOpt
	// requires list inputs (each element has at most one predecessor),
	// unlike Rank which accepts in-forests.
	s.ParallelFor(n, func(i int) {
		if nxt[i] >= 0 {
			prv[nxt[i]] = i
		}
	})

	alive := make([]int, n)
	s.ParallelFor(n, func(i int) { alive[i] = i })
	var rounds [][]splice
	rng := seed | 1
	coin := make([]bool, n)
	outFlag := make([]int, n)
	// Each round splices out the elements whose coin is tails while the
	// predecessor's coin is heads — an independent set of expected size
	// m/4 among interior elements — and rebuilds the alive set with a
	// single scan-partition pass. When a round selects nothing, every
	// surviving list has (w.h.p.) length at most two and Wyllie finishes
	// the job; a round cap bounds the pathological case.
	for round := 0; len(alive) > target && round < 64; round++ {
		rng = splitmix(rng)
		base := rng
		m := len(alive)
		s.ParallelFor(m, func(k int) {
			e := alive[k]
			coin[e] = splitmix(base^uint64(e))&1 == 0
		})
		flags := outFlag[:m]
		s.ParallelFor(m, func(k int) {
			e := alive[k]
			p := prv[e]
			if !coin[e] && p >= 0 && coin[p] && nxt[e] >= 0 {
				flags[k] = 1
			} else {
				flags[k] = 0
			}
		})
		pos, cnt := ScanInt(s, flags)
		if cnt == 0 {
			break
		}
		rec := make([]splice, cnt)
		newAlive := make([]int, m-cnt)
		s.ForCost(m, 3, func(k int) {
			e := alive[k]
			if flags[k] == 1 {
				p, q := prv[e], nxt[e]
				rec[pos[k]] = splice{elem: e, succ: q, w: w[e]}
				nxt[p] = q
				w[p] += w[e]
				prv[q] = p
			} else {
				newAlive[k-pos[k]] = e
			}
		})
		rounds = append(rounds, rec)
		alive = newAlive
	}

	// Wyllie on the survivors, in compacted index space.
	m := len(alive)
	pos := make([]int, n) // original -> compact
	s.ParallelFor(m, func(k int) { pos[alive[k]] = k })
	cnext := make([]int, m)
	cw := make([]int, m)
	s.ParallelFor(m, func(k int) {
		e := alive[k]
		if nxt[e] >= 0 {
			cnext[k] = pos[nxt[e]]
			cw[k] = w[e]
		} else {
			cnext[k] = -1
		}
	})
	cdist, clast := RankWeighted(s, cnext, cw)

	dist = make([]int, n)
	last = make([]int, n)
	s.ParallelFor(m, func(k int) {
		e := alive[k]
		dist[e] = cdist[k]
		last[e] = alive[clast[k]]
	})

	// Reinstate spliced elements in reverse round order: an element's
	// successor at splice time is ranked by a later round or by Wyllie.
	for r := len(rounds) - 1; r >= 0; r-- {
		rec := rounds[r]
		s.ForCost(len(rec), 2, func(k int) {
			sp := rec[k]
			dist[sp.elem] = sp.w + dist[sp.succ]
			last[sp.elem] = last[sp.succ]
		})
	}
	return dist, last
}

// rankSerial is the single-processor reference: O(n) by chasing each
// chain once.
func rankSerial(s *pram.Sim, next []int, weight []int) (dist, last []int) {
	n := len(next)
	dist = make([]int, n)
	last = make([]int, n)
	done := make([]bool, n)
	stack := make([]int, 0, 64)
	s.Sequential(n, func() {
		for i := 0; i < n; i++ {
			if done[i] {
				continue
			}
			j := i
			for !done[j] && next[j] >= 0 {
				stack = append(stack, j)
				j = next[j]
			}
			if next[j] < 0 && !done[j] {
				dist[j], last[j], done[j] = 0, j, true
			}
			for k := len(stack) - 1; k >= 0; k-- {
				e := stack[k]
				wv := 1
				if weight != nil {
					wv = weight[e]
				}
				dist[e] = wv + dist[next[e]]
				last[e] = last[next[e]]
				done[e] = true
			}
			stack = stack[:0]
		}
	})
	return dist, last
}

// ListPositions ranks a single list of known head: it returns pos[i],
// the 0-based position of element i from head, and the list length.
// Elements not on the list get position -1.
func ListPositions(s *pram.Sim, next []int, head int, seed uint64) (pos []int, length int) {
	dist, last := RankOpt(s, next, seed)
	n := len(next)
	length = dist[head] + 1
	pos = make([]int, n)
	tail := last[head]
	s.ParallelFor(n, func(i int) {
		if last[i] == tail {
			pos[i] = length - 1 - dist[i]
		} else {
			pos[i] = -1
		}
	})
	return pos, length
}

// splitmix is the SplitMix64 mixing function, used for deterministic
// per-element coin flips.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
