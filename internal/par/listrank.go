package par

import "pathcover/internal/pram"

// Rank performs list ranking by Wyllie pointer jumping. For every element
// i of the linked structure next (next[i] = successor index, or -1 at a
// terminal), it returns dist[i] — the number of links from i to its
// terminal — and last[i], the terminal itself. next may describe any
// number of disjoint lists (or, more generally, in-forests whose edges
// point toward the roots).
//
// Pointer jumping is O(log n) time but O(n log n) work; RankOpt is the
// work-optimal variant. Rank is retained as the simple reference and as
// the comparison point for the work-optimality ablation bench.
func Rank(s *pram.Sim, next []int) (dist, last []int) {
	return RankWeightedIx[int](s, next, nil)
}

// RankIx is the width-generic Rank (see Ix). Note dist accumulates link
// weights: the caller guarantees the totals fit the width.
func RankIx[I Ix](s *pram.Sim, next []I) (dist, last []I) {
	return RankWeightedIx(s, next, nil)
}

// wyllieState keeps the phase bodies and working arrays of RankWeighted
// reusable per (Sim, width), so steady-state ranking performs no
// allocation.
type wyllieState[I Ix] struct {
	next, weight    []I
	dist, last, nxt []I
	nd, nn, nl      []I
	phase           int
	body            func(lo, hi int)
}

const (
	wylPhaseInit = iota
	wylPhaseJump
)

type wyllieKey[I Ix] struct{}

func wyllieOf[I Ix](s *pram.Sim) *wyllieState[I] {
	sc := s.Scratch()
	if v := sc.Aux(wyllieKey[I]{}); v != nil {
		return v.(*wyllieState[I])
	}
	st := &wyllieState[I]{}
	st.body = st.run
	sc.SetAux(wyllieKey[I]{}, st)
	return st
}

func (st *wyllieState[I]) run(lo, hi int) {
	switch st.phase {
	case wylPhaseInit:
		for i := lo; i < hi; i++ {
			st.nxt[i] = st.next[i]
			st.last[i] = I(i)
			if st.next[i] >= 0 {
				if st.weight == nil {
					st.dist[i] = 1
				} else {
					st.dist[i] = st.weight[i]
				}
			} else {
				st.dist[i] = 0
			}
		}
	case wylPhaseJump:
		dist, last, nxt := st.dist, st.last, st.nxt
		nd, nl, nn := st.nd, st.nl, st.nn
		for i := lo; i < hi; i++ {
			j := nxt[i]
			if j >= 0 {
				nd[i] = dist[i] + dist[j]
				nl[i] = last[j]
				nn[i] = nxt[j]
			} else {
				nd[i] = dist[i]
				nl[i] = last[i]
				nn[i] = -1
			}
		}
	}
}

// RankWeighted is Rank with a weight per link: dist[i] becomes the sum of
// weights along the path from i to its terminal. A nil weight slice means
// unit weights.
func RankWeighted(s *pram.Sim, next []int, weight []int) (dist, last []int) {
	return RankWeightedIx(s, next, weight)
}

// wyllieRounds is the number of jumping rounds Wyllie performs on n
// elements.
func wyllieRounds(n int) int {
	rounds := 0
	for v := 1; v < n; v <<= 1 {
		rounds++
	}
	return rounds
}

// chargeWyllie replays the exact charge sequence of RankWeightedIx on n
// elements (one init phase plus wyllieRounds cost-2 jump phases), the
// shared accounting of the fused and charge-replay routes.
func chargeWyllie(s *pram.Sim, n int) {
	if n <= 0 {
		return
	}
	p := s.Procs()
	s.Charge(int64(ceilDivInt(n, p)), int64(n)) // init phase
	for r := wyllieRounds(n); r > 0; r-- {      // jump rounds, cost 2
		s.Charge(int64(2*ceilDivInt(n, p)), int64(2*n))
	}
}

// RankWeightedIx is the width-generic RankWeighted (see Ix).
func RankWeightedIx[I Ix](s *pram.Sim, next []I, weight []I) (dist, last []I) {
	n := len(next)
	if n > 0 && s.PreferSequential(n) {
		// Fused sequential route: chase each chain once (two passes over
		// the structure in total) instead of log n pointer-jumping rounds
		// over six arrays, replaying the identical charge sequence.
		dist = pram.GrabNoClear[I](s, n)
		last = pram.GrabNoClear[I](s, n)
		chaseRank(s, next, weight, dist, last)
		chargeWyllie(s, n)
		return dist, last
	}
	st := wyllieOf[I](s)
	st.next, st.weight = next, weight
	st.dist = pram.GrabNoClear[I](s, n)
	st.last = pram.GrabNoClear[I](s, n)
	st.nxt = pram.GrabNoClear[I](s, n)
	st.phase = wylPhaseInit
	s.ParallelForRange(n, st.body)
	// Double buffers keep each jumping round exclusive-access: reads go to
	// the "cur" generation, writes to "new".
	st.nd = pram.GrabNoClear[I](s, n)
	st.nn = pram.GrabNoClear[I](s, n)
	st.nl = pram.GrabNoClear[I](s, n)
	st.phase = wylPhaseJump
	for r := wyllieRounds(n); r > 0; r-- {
		s.ForCostRange(n, 2, st.body)
		st.dist, st.nd = st.nd, st.dist
		st.last, st.nl = st.nl, st.last
		st.nxt, st.nn = st.nn, st.nxt
	}
	dist, last = st.dist, st.last
	pram.Release(s, st.nxt)
	pram.Release(s, st.nd)
	pram.Release(s, st.nn)
	pram.Release(s, st.nl)
	st.next, st.weight = nil, nil
	st.dist, st.last, st.nxt, st.nd, st.nn, st.nl = nil, nil, nil, nil, nil, nil
	return dist, last
}

// RankOpt is randomized work-optimal list ranking: random-mate
// contraction splices out a constant expected fraction of the elements
// per round until at most n/log n survive, Wyllie ranks the survivors,
// and the spliced elements are reinstated in reverse order. Expected work
// is O(n); time is O(log n) with n/log n processors (w.h.p.).
//
// seed makes the coin flips deterministic for a given input.
func RankOpt(s *pram.Sim, next []int, seed uint64) (dist, last []int) {
	return RankOptWeightedIx[int](s, next, nil, seed)
}

// RankOptIx is the width-generic RankOpt (see Ix).
func RankOptIx[I Ix](s *pram.Sim, next []I, seed uint64) (dist, last []I) {
	return RankOptWeightedIx(s, next, nil, seed)
}

type splice[I Ix] struct {
	elem I // the spliced-out element
	succ I // its successor at splice time
	w    I // weight of the link elem->succ at splice time
}

// rankOptState keeps the random-mate contraction's phase bodies and
// per-round bookkeeping reusable per (Sim, width).
type rankOptState[I Ix] struct {
	next, weight             []I
	w, nxt, prv              []I
	alive, newAlive          []I
	pos, flags, cpos         []I
	cnext, cw                []I
	cdist, clast, dist, last []I
	coin                     []bool
	rec                      []splice[I]
	rounds                   [][]splice[I]
	base                     uint64
	phase                    int
	body                     func(lo, hi int)
	// serial reference scratch
	stack []I
	// charge-replay scratch: splice counts per contraction round
	roundCnts []int
}

const (
	optPhaseInit = iota
	optPhasePrv
	optPhaseAlive
	optPhaseCoin
	optPhaseFlags
	optPhaseSplice
	optPhasePos
	optPhaseCompact
	optPhaseExpand
	optPhaseReinstate
)

type rankOptKey[I Ix] struct{}

func rankOptOf[I Ix](s *pram.Sim) *rankOptState[I] {
	sc := s.Scratch()
	if v := sc.Aux(rankOptKey[I]{}); v != nil {
		return v.(*rankOptState[I])
	}
	st := &rankOptState[I]{}
	st.body = st.run
	sc.SetAux(rankOptKey[I]{}, st)
	return st
}

func (st *rankOptState[I]) run(lo, hi int) {
	switch st.phase {
	case optPhaseInit:
		for k := lo; k < hi; k++ {
			st.nxt[k] = st.next[k]
			st.prv[k] = -1
			if st.next[k] >= 0 {
				if st.weight == nil {
					st.w[k] = 1
				} else {
					st.w[k] = st.weight[k]
				}
			} else {
				st.w[k] = 0
			}
		}
	case optPhasePrv:
		for k := lo; k < hi; k++ {
			if st.nxt[k] >= 0 {
				st.prv[st.nxt[k]] = I(k)
			}
		}
	case optPhaseAlive:
		for k := lo; k < hi; k++ {
			st.alive[k] = I(k)
		}
	case optPhaseCoin:
		alive, coin, base := st.alive, st.coin, st.base
		for k := lo; k < hi; k++ {
			e := alive[k]
			coin[e] = splitmix(base^uint64(e))&1 == 0
		}
	case optPhaseFlags:
		alive, coin, prv, nxt, flags := st.alive, st.coin, st.prv, st.nxt, st.flags
		for k := lo; k < hi; k++ {
			e := alive[k]
			p := prv[e]
			if !coin[e] && p >= 0 && coin[p] && nxt[e] >= 0 {
				flags[k] = 1
			} else {
				flags[k] = 0
			}
		}
	case optPhaseSplice:
		for k := lo; k < hi; k++ {
			e := st.alive[k]
			if st.flags[k] == 1 {
				p, q := st.prv[e], st.nxt[e]
				st.rec[st.pos[k]] = splice[I]{elem: e, succ: q, w: st.w[e]}
				st.nxt[p] = q
				st.w[p] += st.w[e]
				st.prv[q] = p
			} else {
				st.newAlive[I(k)-st.pos[k]] = e
			}
		}
	case optPhasePos:
		for k := lo; k < hi; k++ {
			st.cpos[st.alive[k]] = I(k)
		}
	case optPhaseCompact:
		for k := lo; k < hi; k++ {
			e := st.alive[k]
			if st.nxt[e] >= 0 {
				st.cnext[k] = st.cpos[st.nxt[e]]
				st.cw[k] = st.w[e]
			} else {
				st.cnext[k] = -1
				st.cw[k] = 0
			}
		}
	case optPhaseExpand:
		for k := lo; k < hi; k++ {
			e := st.alive[k]
			st.dist[e] = st.cdist[k]
			st.last[e] = st.alive[st.clast[k]]
		}
	case optPhaseReinstate:
		for k := lo; k < hi; k++ {
			sp := st.rec[k]
			st.dist[sp.elem] = sp.w + st.dist[sp.succ]
			st.last[sp.elem] = st.last[sp.succ]
		}
	}
}

// RankOptWeighted is RankOpt with link weights (nil means unit weights).
func RankOptWeighted(s *pram.Sim, next []int, weight []int, seed uint64) (dist, last []int) {
	return RankOptWeightedIx(s, next, weight, seed)
}

// RankOptWeightedIx is the width-generic RankOptWeighted (see Ix).
func RankOptWeightedIx[I Ix](s *pram.Sim, next []I, weight []I, seed uint64) (dist, last []I) {
	n := len(next)
	if n == 0 {
		return nil, nil
	}
	target := pram.ProcsFor(n) // contract to ~n/log n survivors
	if n <= 64 || s.Procs() == 1 {
		// Serial reference: follow chains with memoization via reverse
		// topological order (process in order of a stack-free two-pass).
		return rankSerial(s, next, weight)
	}
	if s.PreferSequential(n) {
		// Fused sequential route: one pointer-chase sweep for the values
		// plus a link-only replay of the random-mate contraction for the
		// charges, instead of the full multi-phase route over a dozen
		// arrays. The outputs are algorithm-independent (distance to and
		// identity of each terminal), so only the charge sequence — which
		// depends on the coin flips and the evolving alive set — needs the
		// structural replay.
		dist = pram.GrabNoClear[I](s, n)
		last = pram.GrabNoClear[I](s, n)
		chaseRank(s, next, weight, dist, last)
		chargeRankOpt(s, next, seed, false)
		return dist, last
	}

	st := rankOptOf[I](s)
	st.next, st.weight = next, weight
	st.w = pram.GrabNoClear[I](s, n)
	st.nxt = pram.GrabNoClear[I](s, n)
	st.prv = pram.GrabNoClear[I](s, n)
	st.phase = optPhaseInit
	s.ParallelForRange(n, st.body)
	// prv[j] = some predecessor of j. For lists it is unique; RankOpt
	// requires list inputs (each element has at most one predecessor),
	// unlike Rank which accepts in-forests.
	st.phase = optPhasePrv
	s.ParallelForRange(n, st.body)

	st.alive = pram.GrabNoClear[I](s, n)
	st.phase = optPhaseAlive
	s.ParallelForRange(n, st.body)
	st.rounds = st.rounds[:0]
	rng := seed | 1
	st.coin = pram.GrabNoClear[bool](s, n)
	outFlag := pram.GrabNoClear[I](s, n)
	// Each round splices out the elements whose coin is tails while the
	// predecessor's coin is heads — an independent set of expected size
	// m/4 among interior elements — and rebuilds the alive set with a
	// single scan-partition pass. When a round selects nothing, every
	// surviving list has (w.h.p.) length at most two and Wyllie finishes
	// the job; a round cap bounds the pathological case.
	for round := 0; len(st.alive) > target && round < 64; round++ {
		rng = splitmix(rng)
		st.base = rng
		m := len(st.alive)
		st.phase = optPhaseCoin
		s.ParallelForRange(m, st.body)
		st.flags = outFlag[:m]
		st.phase = optPhaseFlags
		s.ParallelForRange(m, st.body)
		pos, cnt := ScanIx(s, st.flags)
		if cnt == 0 {
			pram.Release(s, pos)
			break
		}
		st.pos = pos
		st.rec = pram.GrabNoClear[splice[I]](s, int(cnt))
		st.newAlive = pram.GrabNoClear[I](s, m-int(cnt))
		st.phase = optPhaseSplice
		s.ForCostRange(m, 3, st.body)
		st.rounds = append(st.rounds, st.rec)
		pram.Release(s, st.alive)
		pram.Release(s, pos)
		st.alive, st.newAlive = st.newAlive, nil
		st.pos, st.rec = nil, nil
	}

	// Wyllie on the survivors, in compacted index space.
	m := len(st.alive)
	st.cpos = pram.GrabNoClear[I](s, n) // original -> compact
	st.phase = optPhasePos
	s.ParallelForRange(m, st.body)
	st.cnext = pram.GrabNoClear[I](s, m)
	st.cw = pram.GrabNoClear[I](s, m)
	st.phase = optPhaseCompact
	s.ParallelForRange(m, st.body)
	st.cdist, st.clast = RankWeightedIx(s, st.cnext, st.cw)

	st.dist = pram.GrabNoClear[I](s, n)
	st.last = pram.GrabNoClear[I](s, n)
	st.phase = optPhaseExpand
	s.ParallelForRange(m, st.body)

	// Reinstate spliced elements in reverse round order: an element's
	// successor at splice time is ranked by a later round or by Wyllie.
	st.phase = optPhaseReinstate
	for r := len(st.rounds) - 1; r >= 0; r-- {
		st.rec = st.rounds[r]
		s.ForCostRange(len(st.rec), 2, st.body)
		pram.Release(s, st.rec)
		st.rounds[r] = nil
	}
	dist, last = st.dist, st.last
	pram.Release(s, st.w)
	pram.Release(s, st.nxt)
	pram.Release(s, st.prv)
	pram.Release(s, st.alive)
	pram.Release(s, st.coin)
	pram.Release(s, outFlag)
	pram.Release(s, st.cpos)
	pram.Release(s, st.cnext)
	pram.Release(s, st.cw)
	pram.Release(s, st.cdist)
	pram.Release(s, st.clast)
	st.next, st.weight, st.w, st.nxt, st.prv = nil, nil, nil, nil, nil
	st.alive, st.flags, st.coin, st.rec = nil, nil, nil, nil
	st.cpos, st.cnext, st.cw, st.cdist, st.clast = nil, nil, nil, nil, nil
	st.dist, st.last = nil, nil
	st.rounds = st.rounds[:0]
	return dist, last
}

// chaseRank fills dist/last by chasing each chain once — the shared
// engine of the serial reference and the fused Wyllie route. It charges
// nothing; callers account for it.
func chaseRank[I Ix](s *pram.Sim, next, weight, dist, last []I) {
	n := len(next)
	st := rankOptOf[I](s)
	done := pram.Grab[bool](s, n)
	stack := st.stack[:0]
	for i := 0; i < n; i++ {
		if done[i] {
			continue
		}
		j := i
		for !done[j] && next[j] >= 0 {
			stack = append(stack, I(j))
			j = int(next[j])
		}
		if next[j] < 0 && !done[j] {
			dist[j], last[j], done[j] = 0, I(j), true
		}
		for k := len(stack) - 1; k >= 0; k-- {
			e := stack[k]
			wv := I(1)
			if weight != nil {
				wv = weight[e]
			}
			dist[e] = wv + dist[next[e]]
			last[e] = last[next[e]]
			done[e] = true
		}
		stack = stack[:0]
	}
	st.stack = stack[:0]
	pram.Release(s, done)
}

// chargeRankOpt replays the exact simulated charge sequence of
// RankOptWeightedIx for the list next under the given seed, without
// computing any ranks: it re-runs the random-mate contraction on a
// link-only skeleton (successor, predecessor and the alive set — no
// weights, no rank arrays, no Wyllie buffers) because the number of
// contraction rounds and the number of elements spliced per round are
// data- and seed-dependent, and the charges follow them. The charges do
// not depend on the link weights. With consume set, next is scrambled
// in place as the round skeleton (saving one pass over it); otherwise it
// is read-only. It must mirror RankOptWeightedIx charge for charge.
func chargeRankOpt[I Ix](s *pram.Sim, next []I, seed uint64, consume bool) {
	n := len(next)
	if n == 0 {
		return
	}
	if n <= 64 || s.Procs() == 1 {
		s.Charge(int64(n), int64(n)) // the rankSerial Sequential(n) route
		return
	}
	target := pram.ProcsFor(n)
	p := s.Procs()
	charge := func(m, cost int) { // one Brent-scheduled phase of m cost-`cost` ops
		if m > 0 {
			s.Charge(int64(ceilDivInt(m, p)*cost), int64(m*cost))
		}
	}

	st := rankOptOf[I](s)
	nxt := next
	if !consume {
		nxt = pram.GrabNoClear[I](s, n)
		copy(nxt, next)
	}
	prv := pram.GrabNoClear[I](s, n)
	for i := range prv {
		prv[i] = -1
	}
	for i := 0; i < n; i++ {
		if next[i] >= 0 {
			prv[next[i]] = I(i)
		}
	}
	charge(n, 1) // init
	charge(n, 1) // prv scatter
	alive := pram.GrabNoClear[I](s, n)
	newAlive := pram.GrabNoClear[I](s, n)
	for i := range alive {
		alive[i] = I(i)
	}
	charge(n, 1) // alive init
	flags := pram.GrabNoClear[bool](s, n)
	cnts := st.roundCnts[:0]
	rng := seed | 1
	for round := 0; len(alive) > target && round < 64; round++ {
		rng = splitmix(rng)
		base := rng
		m := len(alive)
		charge(m, 1) // coin phase
		// Selection against the round-start links, exactly like the flags
		// phase: tails for e, heads for its predecessor.
		cnt := 0
		for k, e := range alive {
			pe := prv[e]
			f := splitmix(base^uint64(e))&1 != 0 && pe >= 0 &&
				splitmix(base^uint64(pe))&1 == 0 && nxt[e] >= 0
			flags[k] = f
			if f {
				cnt++
			}
		}
		charge(m, 1) // flags phase
		chargeScan(s, m, false)
		if cnt == 0 {
			break
		}
		out := 0
		for k, e := range alive {
			if flags[k] {
				pe, q := prv[e], nxt[e]
				nxt[pe] = q
				prv[q] = pe
			} else {
				newAlive[out] = e
				out++
			}
		}
		charge(m, 3) // splice phase
		cnts = append(cnts, cnt)
		alive, newAlive = newAlive[:out], alive[:cap(alive)]
	}
	m := len(alive)
	charge(m, 1) // compact position scatter
	charge(m, 1) // compact links
	chargeWyllie(s, m)
	charge(m, 1) // expand
	for r := len(cnts) - 1; r >= 0; r-- {
		charge(cnts[r], 2) // reinstate round
	}
	st.roundCnts = cnts[:0]
	if !consume {
		pram.Release(s, nxt)
	}
	pram.Release(s, prv)
	pram.Release(s, flags)
	pram.Release(s, alive)
	pram.Release(s, newAlive)
}

// rankSerial is the single-processor reference: O(n) by chasing each
// chain once.
func rankSerial[I Ix](s *pram.Sim, next []I, weight []I) (dist, last []I) {
	n := len(next)
	dist = pram.GrabNoClear[I](s, n)
	last = pram.GrabNoClear[I](s, n)
	s.Sequential(n, func() { chaseRank(s, next, weight, dist, last) })
	return dist, last
}

// ListPositions ranks a single list of known head: it returns pos[i],
// the 0-based position of element i from head, and the list length.
// Elements not on the list get position -1.
func ListPositions(s *pram.Sim, next []int, head int, seed uint64) (pos []int, length int) {
	p, l := ListPositionsIx(s, next, head, seed)
	return p, int(l)
}

// ListPositionsIx is the width-generic ListPositions (see Ix).
func ListPositionsIx[I Ix](s *pram.Sim, next []I, head I, seed uint64) (pos []I, length I) {
	dist, last := RankOptIx(s, next, seed)
	n := len(next)
	length = dist[head] + 1
	pos = pram.GrabNoClear[I](s, n)
	tail := last[head]
	s.ParallelForRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if last[i] == tail {
				pos[i] = length - 1 - dist[i]
			} else {
				pos[i] = -1
			}
		}
	})
	pram.Release(s, dist)
	pram.Release(s, last)
	return pos, length
}

// splitmix is the SplitMix64 mixing function, used for deterministic
// per-element coin flips.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
