package par

import (
	"math/rand/v2"
	"testing"

	"pathcover/internal/pram"
)

// The routing-parity suite: the fused sequential bodies and the narrow
// (int32) kernels are pure execution-route choices — for any input and
// any simulated processor count they must produce the same values AND
// the same simulated time/work/phase counters as the phase-structured
// int route. These tests pin that down exactly; the pipeline-level
// bit-parity of the pcbench tables rests on it.

// fusedSim always prefers the fused sequential bodies; refSim never
// does (cutover disabled). Both carry real workers so the pool route is
// what the reference exercises.
func fusedSim(procs int) *pram.Sim {
	return pram.New(procs, pram.WithWorkers(2), pram.WithSeqCutover(1<<30))
}

func refSim(procs int) *pram.Sim {
	return pram.New(procs, pram.WithWorkers(2), pram.WithSeqCutover(-1), pram.WithGrain(64))
}

func statsEq(t *testing.T, what string, n, procs int, a, b pram.Stats) {
	t.Helper()
	if a.Time != b.Time || a.Work != b.Work || a.Phases != b.Phases {
		t.Fatalf("%s n=%d procs=%d: fused stats %+v != reference stats %+v", what, n, procs, a, b)
	}
}

func intsEq(t *testing.T, what string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d want %d", what, i, got[i], want[i])
		}
	}
}

// TestFusedChargeParity drives every fused primitive against the
// phase-structured reference across a grid of sizes and processor
// counts, asserting identical outputs and identical counters.
func TestFusedChargeParity(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 7))
	for _, n := range []int{1, 2, 3, 7, 64, 65, 1000, 4096, 5000} {
		for _, procs := range []int{2, 7, pram.ProcsFor(max(n, 2)), n + 3} {
			in := make([]int, n)
			keep := make([]bool, n)
			next := make([]int, n)
			lens := make([]int, n/7+1)
			perm := rng.Perm(n)
			for i := range in {
				in[i] = rng.IntN(50)
				keep[i] = rng.IntN(3) == 0
				if i < n-1 {
					next[perm[i]] = perm[i+1]
				}
			}
			if n > 0 {
				next[perm[n-1]] = -1
			}
			for i := range lens {
				lens[i] = rng.IntN(5)
			}

			fu, re := fusedSim(procs), refSim(procs)
			defer fu.Close()
			defer re.Close()

			fo, ft := ScanInt(fu, in)
			ro, rt := ScanInt(re, in)
			if ft != rt {
				t.Fatalf("ScanInt total: %d != %d", ft, rt)
			}
			intsEq(t, "ScanInt", fo, ro)
			statsEq(t, "ScanInt", n, procs, fu.Stats(), re.Stats())

			intsEq(t, "MaxScanInt", MaxScanInt(fu, in), MaxScanInt(re, in))
			statsEq(t, "MaxScanInt", n, procs, fu.Stats(), re.Stats())

			intsEq(t, "InclusiveScanInt", InclusiveScanInt(fu, in), InclusiveScanInt(re, in))
			statsEq(t, "InclusiveScanInt", n, procs, fu.Stats(), re.Stats())

			intsEq(t, "IndexPack", IndexPack(fu, keep), IndexPack(re, keep))
			statsEq(t, "IndexPack", n, procs, fu.Stats(), re.Stats())

			fow, fof, _ := Distribute(fu, lens)
			row, rof, _ := Distribute(re, lens)
			intsEq(t, "Distribute owner", fow, row)
			intsEq(t, "Distribute offset", fof, rof)
			statsEq(t, "Distribute", n, procs, fu.Stats(), re.Stats())

			fd, fl := Rank(fu, next)
			rd, rl := Rank(re, next)
			intsEq(t, "Rank dist", fd, rd)
			intsEq(t, "Rank last", fl, rl)
			statsEq(t, "Rank", n, procs, fu.Stats(), re.Stats())
		}
	}
}

// TestNarrowWideParity runs the int32 kernels against the int kernels:
// identical values (after widening) and identical simulated counters.
func TestNarrowWideParity(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for _, n := range []int{0, 1, 5, 513, 4096, 9000} {
		in32 := make([]int32, n)
		in := make([]int, n)
		open := make([]bool, n)
		next32 := make([]int32, n)
		next := make([]int, n)
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			v := rng.IntN(100)
			in32[i], in[i] = int32(v), v
			open[i] = rng.IntN(2) == 0
			if i < n-1 {
				next[perm[i]] = perm[i+1]
				next32[perm[i]] = int32(perm[i+1])
			}
		}
		if n > 0 {
			next[perm[n-1]], next32[perm[n-1]] = -1, -1
		}
		procs := pram.ProcsFor(max(n, 2))
		sw := pram.New(procs, pram.WithWorkers(2), pram.WithGrain(128))
		sn := pram.New(procs, pram.WithWorkers(2), pram.WithGrain(128))
		defer sw.Close()
		defer sn.Close()

		check := func(what string, wide []int, narrow []int32) {
			t.Helper()
			if len(wide) != len(narrow) {
				t.Fatalf("%s n=%d: %d vs %d elements", what, n, len(wide), len(narrow))
			}
			for i := range wide {
				if wide[i] != int(narrow[i]) {
					t.Fatalf("%s n=%d: [%d] = %d (wide) vs %d (narrow)", what, n, i, wide[i], narrow[i])
				}
			}
			ws, ns := sw.Stats(), sn.Stats()
			if ws.Time != ns.Time || ws.Work != ns.Work || ws.Phases != ns.Phases {
				t.Fatalf("%s n=%d: wide stats %+v != narrow stats %+v", what, n, ws, ns)
			}
		}

		wo, wt := ScanIx(sw, in)
		no, nt := ScanIx(sn, in32)
		if int(nt) != wt {
			t.Fatalf("ScanIx total: %d vs %d", wt, nt)
		}
		check("ScanIx", wo, no)
		check("MaxScanIx", MaxScanIx(sw, in), MaxScanIx(sn, in32))
		check("IndexPackIx", IndexPackIx[int](sw, open), IndexPackIx[int32](sn, open))
		check("MatchBracketsIx", MatchBracketsIx[int](sw, open), MatchBracketsIx[int32](sn, open))
		wd, wl := RankOptIx(sw, next, 42)
		nd, nl := RankOptIx(sn, next32, 42)
		check("RankOptIx dist", wd, nd)
		ws, ns := sw.Stats(), sn.Stats()
		_ = ws
		_ = ns
		for i := range wl {
			if wl[i] != int(nl[i]) {
				t.Fatalf("RankOptIx last: [%d] = %d vs %d", i, wl[i], nl[i])
			}
		}
	}
}

// TestTourNarrowWideParity compares the full Euler-tour numberings of a
// random forest across widths.
func TestTourNarrowWideParity(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.IntN(600)
		// Random binary forest: attach each node to an earlier node with a
		// free child slot (or leave it a root).
		wide := NewBinTree(n)
		narrow := NewBinTreeIx[int32](n)
		for v := 1; v < n; v++ {
			p := rng.IntN(v)
			if wide.Left[p] < 0 {
				wide.Left[p], narrow.Left[p] = v, int32(v)
			} else if wide.Right[p] < 0 {
				wide.Right[p], narrow.Right[p] = v, int32(v)
			} else {
				continue // stays a root
			}
			wide.Parent[v], narrow.Parent[v] = p, int32(p)
		}
		sw := pram.New(pram.ProcsFor(n), pram.WithWorkers(2), pram.WithGrain(64))
		sn := pram.New(pram.ProcsFor(n), pram.WithWorkers(2), pram.WithGrain(64))
		tw := TourBinary(sw, wide, 99)
		tn := TourBinaryIx(sn, narrow, 99)
		for v := 0; v < n; v++ {
			if tw.Pre[v] != int(tn.Pre[v]) || tw.In[v] != int(tn.In[v]) ||
				tw.Post[v] != int(tn.Post[v]) || tw.Root[v] != int(tn.Root[v]) {
				t.Fatalf("trial %d node %d: wide (%d,%d,%d,%d) narrow (%d,%d,%d,%d)",
					trial, v, tw.Pre[v], tw.In[v], tw.Post[v], tw.Root[v],
					tn.Pre[v], tn.In[v], tn.Post[v], tn.Root[v])
			}
		}
		ws, ns := sw.Stats(), sn.Stats()
		if ws.Time != ns.Time || ws.Work != ns.Work || ws.Phases != ns.Phases {
			t.Fatalf("trial %d: wide stats %+v != narrow stats %+v", trial, ws, ns)
		}
		sw.Close()
		sn.Close()
	}
}
