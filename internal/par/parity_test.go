package par

import (
	"math/rand/v2"
	"testing"

	"pathcover/internal/pram"
)

// The routing-parity suite: the fused sequential bodies and the narrow
// (int32) kernels are pure execution-route choices — for any input and
// any simulated processor count they must produce the same values AND
// the same simulated time/work/phase counters as the phase-structured
// int route. These tests pin that down exactly; the pipeline-level
// bit-parity of the pcbench tables rests on it.

// fusedSim always prefers the fused sequential bodies; refSim never
// does (cutover disabled). Both carry real workers so the pool route is
// what the reference exercises.
func fusedSim(procs int) *pram.Sim {
	return pram.New(procs, pram.WithWorkers(2), pram.WithSeqCutover(1<<30))
}

func refSim(procs int) *pram.Sim {
	return pram.New(procs, pram.WithWorkers(2), pram.WithSeqCutover(-1), pram.WithGrain(64))
}

func statsEq(t *testing.T, what string, n, procs int, a, b pram.Stats) {
	t.Helper()
	if a.Time != b.Time || a.Work != b.Work || a.Phases != b.Phases {
		t.Fatalf("%s n=%d procs=%d: fused stats %+v != reference stats %+v", what, n, procs, a, b)
	}
}

func intsEq(t *testing.T, what string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d want %d", what, i, got[i], want[i])
		}
	}
}

// TestFusedChargeParity drives every fused primitive against the
// phase-structured reference across a grid of sizes and processor
// counts, asserting identical outputs and identical counters.
func TestFusedChargeParity(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 7))
	for _, n := range []int{1, 2, 3, 7, 64, 65, 1000, 4096, 5000} {
		for _, procs := range []int{2, 7, pram.ProcsFor(max(n, 2)), n + 3} {
			in := make([]int, n)
			keep := make([]bool, n)
			next := make([]int, n)
			lens := make([]int, n/7+1)
			perm := rng.Perm(n)
			for i := range in {
				in[i] = rng.IntN(50)
				keep[i] = rng.IntN(3) == 0
				if i < n-1 {
					next[perm[i]] = perm[i+1]
				}
			}
			if n > 0 {
				next[perm[n-1]] = -1
			}
			for i := range lens {
				lens[i] = rng.IntN(5)
			}

			fu, re := fusedSim(procs), refSim(procs)
			defer fu.Close()
			defer re.Close()

			fo, ft := ScanInt(fu, in)
			ro, rt := ScanInt(re, in)
			if ft != rt {
				t.Fatalf("ScanInt total: %d != %d", ft, rt)
			}
			intsEq(t, "ScanInt", fo, ro)
			statsEq(t, "ScanInt", n, procs, fu.Stats(), re.Stats())

			intsEq(t, "MaxScanInt", MaxScanInt(fu, in), MaxScanInt(re, in))
			statsEq(t, "MaxScanInt", n, procs, fu.Stats(), re.Stats())

			intsEq(t, "InclusiveScanInt", InclusiveScanInt(fu, in), InclusiveScanInt(re, in))
			statsEq(t, "InclusiveScanInt", n, procs, fu.Stats(), re.Stats())

			intsEq(t, "IndexPack", IndexPack(fu, keep), IndexPack(re, keep))
			statsEq(t, "IndexPack", n, procs, fu.Stats(), re.Stats())

			fow, fof, _ := Distribute(fu, lens)
			row, rof, _ := Distribute(re, lens)
			intsEq(t, "Distribute owner", fow, row)
			intsEq(t, "Distribute offset", fof, rof)
			statsEq(t, "Distribute", n, procs, fu.Stats(), re.Stats())

			fd, fl := Rank(fu, next)
			rd, rl := Rank(re, next)
			intsEq(t, "Rank dist", fd, rd)
			intsEq(t, "Rank last", fl, rl)
			statsEq(t, "Rank", n, procs, fu.Stats(), re.Stats())
		}
	}
}

// TestFusedChargeParityDataDependent drives the data-dependent fused
// primitives — work-optimal list ranking, Euler tours and their derived
// numberings, bracket matching and tree contraction — against the
// phase-structured reference: identical outputs AND identical simulated
// counters for every input, processor count and width.
func TestFusedChargeParityDataDependent(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 12))
	for _, n := range []int{65, 66, 100, 257, 1000, 4097} {
		for _, procs := range []int{2, 7, pram.ProcsFor(n), n + 3} {
			next := make([]int, n)
			open := make([]bool, n)
			perm := rng.Perm(n)
			// A handful of disjoint lists.
			for i := 0; i < n-1; i++ {
				if rng.IntN(50) == 0 {
					next[perm[i]] = -1
				} else {
					next[perm[i]] = perm[i+1]
				}
			}
			next[perm[n-1]] = -1
			for i := range open {
				open[i] = rng.IntN(2) == 0
			}
			forest := randomForest(rng, n)

			fu, re := fusedSim(procs), refSim(procs)
			defer fu.Close()
			defer re.Close()

			fd, fl := RankOpt(fu, next, 99)
			rd, rl := RankOpt(re, next, 99)
			intsEq(t, "RankOpt dist", fd, rd)
			intsEq(t, "RankOpt last", fl, rl)
			statsEq(t, "RankOpt", n, procs, fu.Stats(), re.Stats())

			intsEq(t, "MatchBrackets", MatchBrackets(fu, open), MatchBrackets(re, open))
			statsEq(t, "MatchBrackets", n, procs, fu.Stats(), re.Stats())

			ft := TourBinary(fu, forest, 7)
			rt := TourBinary(re, forest, 7)
			intsEq(t, "Tour Pos", ft.Pos, rt.Pos)
			intsEq(t, "Tour Seq", ft.Seq, rt.Seq)
			intsEq(t, "Tour Pre", ft.Pre, rt.Pre)
			intsEq(t, "Tour In", ft.In, rt.In)
			intsEq(t, "Tour Post", ft.Post, rt.Post)
			intsEq(t, "Tour InSeq", ft.InSeq, rt.InSeq)
			intsEq(t, "Tour Root", ft.Root, rt.Root)
			intsEq(t, "Tour Roots", ft.Roots, rt.Roots)
			statsEq(t, "TourBinary", n, procs, fu.Stats(), re.Stats())

			fr, fm := ft.LeafRanks(fu, forest)
			rr, rm := rt.LeafRanks(re, forest)
			if fm != rm {
				t.Fatalf("LeafRanks m: %d != %d", fm, rm)
			}
			intsEq(t, "LeafRanks", fr, rr)
			statsEq(t, "LeafRanks", n, procs, fu.Stats(), re.Stats())

			intsEq(t, "LeafStarts", ft.LeafStarts(fu, forest), rt.LeafStarts(re, forest))
			statsEq(t, "LeafStarts", n, procs, fu.Stats(), re.Stats())

			fsz, flv := ft.SubtreeCounts(fu, forest)
			rsz, rlv := rt.SubtreeCounts(re, forest)
			intsEq(t, "SubtreeCounts size", fsz, rsz)
			intsEq(t, "SubtreeCounts leaves", flv, rlv)
			statsEq(t, "SubtreeCounts", n, procs, fu.Stats(), re.Stats())

			intsEq(t, "Depths", ft.Depths(fu), rt.Depths(re))
			statsEq(t, "Depths", n, procs, fu.Stats(), re.Stats())

			flag := make([]bool, n)
			for i := range flag {
				flag[i] = rng.IntN(3) == 0
			}
			intsEq(t, "AncestorFlagCounts", ft.AncestorFlagCounts(fu, flag), rt.AncestorFlagCounts(re, flag))
			statsEq(t, "AncestorFlagCounts", n, procs, fu.Stats(), re.Stats())
		}
	}
}

// TestFusedChargeParityEvalTree pins the fused tree-contraction route
// against the phase-structured one on random full binary expression
// trees.
func TestFusedChargeParityEvalTree(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 31))
	for _, leavesN := range []int{2, 3, 33, 400, 2048} {
		for _, procs := range []int{2, pram.ProcsFor(2*leavesN - 1)} {
			tree, op, leafVal := randomExprTree(rng, leavesN)
			fu, re := fusedSim(procs), refSim(procs)
			run := func(s *pram.Sim) ([]int64, pram.Stats) {
				tour := TourBinary(s, tree, 3)
				ranks, _ := tour.LeafRanks(s, tree)
				s.Reset() // isolate the contraction's own charges
				vals := EvalTree(s, tree, op, leafVal, ranks)
				st := s.Stats()
				tour.Release(s)
				return vals, st
			}
			fv, fs := run(fu)
			rv, rs := run(re)
			for i := range fv {
				if fv[i] != rv[i] {
					t.Fatalf("leaves=%d procs=%d: val[%d] = %d want %d", leavesN, procs, i, fv[i], rv[i])
				}
			}
			statsEq(t, "EvalTree", leavesN, procs, fs, rs)
			fu.Close()
			re.Close()
		}
	}
}

// randomForest attaches each node to a random earlier node with a free
// child slot, or leaves it a root.
func randomForest(rng *rand.Rand, n int) BinTree {
	t := NewBinTree(n)
	for v := 1; v < n; v++ {
		p := rng.IntN(v)
		if t.Left[p] < 0 {
			t.Left[p] = v
		} else if t.Right[p] < 0 {
			t.Right[p] = v
		} else {
			continue
		}
		t.Parent[v] = p
	}
	return t
}

// randomExprTree builds a random full binary tree with m leaves plus
// random sum / join-clamp operators and unit-ish leaf values.
func randomExprTree(rng *rand.Rand, m int) (BinTree, []NodeOp, []int64) {
	n := 2*m - 1
	t := NewBinTree(n)
	op := make([]NodeOp, n)
	leafVal := make([]int64, n)
	// Grow by splitting a random current leaf into an internal node with
	// two children until m leaves exist.
	leaves := []int{0}
	next := 1
	for len(leaves) < m {
		k := rng.IntN(len(leaves))
		v := leaves[k]
		l, r := next, next+1
		next += 2
		t.Left[v], t.Right[v] = l, r
		t.Parent[l], t.Parent[r] = v, v
		leaves[k] = l
		leaves = append(leaves, r)
	}
	for v := 0; v < n; v++ {
		if t.IsLeaf(v) {
			leafVal[v] = int64(1 + rng.IntN(5))
		} else if rng.IntN(2) == 0 {
			op[v] = NodeOp{Kind: OpSum}
		} else {
			op[v] = NodeOp{Kind: OpJoinClamp, C: int64(rng.IntN(7))}
		}
	}
	return t, op, leafVal
}

// TestNarrowWideParity runs the int32 kernels against the int kernels:
// identical values (after widening) and identical simulated counters.
func TestNarrowWideParity(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for _, n := range []int{0, 1, 5, 513, 4096, 9000} {
		in32 := make([]int32, n)
		in := make([]int, n)
		open := make([]bool, n)
		next32 := make([]int32, n)
		next := make([]int, n)
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			v := rng.IntN(100)
			in32[i], in[i] = int32(v), v
			open[i] = rng.IntN(2) == 0
			if i < n-1 {
				next[perm[i]] = perm[i+1]
				next32[perm[i]] = int32(perm[i+1])
			}
		}
		if n > 0 {
			next[perm[n-1]], next32[perm[n-1]] = -1, -1
		}
		procs := pram.ProcsFor(max(n, 2))
		sw := pram.New(procs, pram.WithWorkers(2), pram.WithGrain(128))
		sn := pram.New(procs, pram.WithWorkers(2), pram.WithGrain(128))
		defer sw.Close()
		defer sn.Close()

		check := func(what string, wide []int, narrow []int32) {
			t.Helper()
			if len(wide) != len(narrow) {
				t.Fatalf("%s n=%d: %d vs %d elements", what, n, len(wide), len(narrow))
			}
			for i := range wide {
				if wide[i] != int(narrow[i]) {
					t.Fatalf("%s n=%d: [%d] = %d (wide) vs %d (narrow)", what, n, i, wide[i], narrow[i])
				}
			}
			ws, ns := sw.Stats(), sn.Stats()
			if ws.Time != ns.Time || ws.Work != ns.Work || ws.Phases != ns.Phases {
				t.Fatalf("%s n=%d: wide stats %+v != narrow stats %+v", what, n, ws, ns)
			}
		}

		wo, wt := ScanIx(sw, in)
		no, nt := ScanIx(sn, in32)
		if int(nt) != wt {
			t.Fatalf("ScanIx total: %d vs %d", wt, nt)
		}
		check("ScanIx", wo, no)
		check("MaxScanIx", MaxScanIx(sw, in), MaxScanIx(sn, in32))
		check("IndexPackIx", IndexPackIx[int](sw, open), IndexPackIx[int32](sn, open))
		check("MatchBracketsIx", MatchBracketsIx[int](sw, open), MatchBracketsIx[int32](sn, open))
		wd, wl := RankOptIx(sw, next, 42)
		nd, nl := RankOptIx(sn, next32, 42)
		check("RankOptIx dist", wd, nd)
		ws, ns := sw.Stats(), sn.Stats()
		_ = ws
		_ = ns
		for i := range wl {
			if wl[i] != int(nl[i]) {
				t.Fatalf("RankOptIx last: [%d] = %d vs %d", i, wl[i], nl[i])
			}
		}
	}
}

// TestInt16WideParity runs the int16 kernels against the int kernels:
// identical values (after widening) and identical simulated counters.
// Sizes and values stay inside the int16 envelope the serving dispatch
// guarantees (n ≤ core.MaxInt16Vertices, scan totals under
// math.MaxInt16) — the kernels never see anything bigger on the int16
// route.
func TestInt16WideParity(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 4))
	for _, n := range []int{0, 1, 5, 513, 3000} {
		in16 := make([]int16, n)
		in := make([]int, n)
		open := make([]bool, n)
		next16 := make([]int16, n)
		next := make([]int, n)
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			v := rng.IntN(9) // totals ≤ 9n < math.MaxInt16 for every n here
			in16[i], in[i] = int16(v), v
			open[i] = rng.IntN(2) == 0
			if i < n-1 {
				next[perm[i]] = perm[i+1]
				next16[perm[i]] = int16(perm[i+1])
			}
		}
		if n > 0 {
			next[perm[n-1]], next16[perm[n-1]] = -1, -1
		}
		procs := pram.ProcsFor(max(n, 2))
		sw := pram.New(procs, pram.WithWorkers(2), pram.WithGrain(128))
		sn := pram.New(procs, pram.WithWorkers(2), pram.WithGrain(128))
		defer sw.Close()
		defer sn.Close()

		check := func(what string, wide []int, narrow []int16) {
			t.Helper()
			if len(wide) != len(narrow) {
				t.Fatalf("%s n=%d: %d vs %d elements", what, n, len(wide), len(narrow))
			}
			for i := range wide {
				if wide[i] != int(narrow[i]) {
					t.Fatalf("%s n=%d: [%d] = %d (wide) vs %d (int16)", what, n, i, wide[i], narrow[i])
				}
			}
			ws, ns := sw.Stats(), sn.Stats()
			if ws.Time != ns.Time || ws.Work != ns.Work || ws.Phases != ns.Phases {
				t.Fatalf("%s n=%d: wide stats %+v != int16 stats %+v", what, n, ws, ns)
			}
		}

		wo, wt := ScanIx(sw, in)
		no, nt := ScanIx(sn, in16)
		if int(nt) != wt {
			t.Fatalf("ScanIx total: %d vs %d", wt, nt)
		}
		check("ScanIx", wo, no)
		check("MaxScanIx", MaxScanIx(sw, in), MaxScanIx(sn, in16))
		check("IndexPackIx", IndexPackIx[int](sw, open), IndexPackIx[int16](sn, open))
		check("MatchBracketsIx", MatchBracketsIx[int](sw, open), MatchBracketsIx[int16](sn, open))
		wd, wl := RankOptIx(sw, next, 42)
		nd, nl := RankOptIx(sn, next16, 42)
		check("RankOptIx dist", wd, nd)
		for i := range wl {
			if wl[i] != int(nl[i]) {
				t.Fatalf("RankOptIx last: [%d] = %d vs %d", i, wl[i], nl[i])
			}
		}
	}
}

// TestTourNarrowWideParity compares the full Euler-tour numberings of a
// random forest across widths.
func TestTourNarrowWideParity(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.IntN(600)
		// Random binary forest: attach each node to an earlier node with a
		// free child slot (or leave it a root).
		wide := NewBinTree(n)
		narrow := NewBinTreeIx[int32](n)
		tiny := NewBinTreeIx[int16](n)
		for v := 1; v < n; v++ {
			p := rng.IntN(v)
			if wide.Left[p] < 0 {
				wide.Left[p], narrow.Left[p], tiny.Left[p] = v, int32(v), int16(v)
			} else if wide.Right[p] < 0 {
				wide.Right[p], narrow.Right[p], tiny.Right[p] = v, int32(v), int16(v)
			} else {
				continue // stays a root
			}
			wide.Parent[v], narrow.Parent[v], tiny.Parent[v] = p, int32(p), int16(p)
		}
		sw := pram.New(pram.ProcsFor(n), pram.WithWorkers(2), pram.WithGrain(64))
		sn := pram.New(pram.ProcsFor(n), pram.WithWorkers(2), pram.WithGrain(64))
		sh := pram.New(pram.ProcsFor(n), pram.WithWorkers(2), pram.WithGrain(64))
		tw := TourBinary(sw, wide, 99)
		tn := TourBinaryIx(sn, narrow, 99)
		th := TourBinaryIx(sh, tiny, 99)
		for v := 0; v < n; v++ {
			if tw.Pre[v] != int(tn.Pre[v]) || tw.In[v] != int(tn.In[v]) ||
				tw.Post[v] != int(tn.Post[v]) || tw.Root[v] != int(tn.Root[v]) {
				t.Fatalf("trial %d node %d: wide (%d,%d,%d,%d) narrow (%d,%d,%d,%d)",
					trial, v, tw.Pre[v], tw.In[v], tw.Post[v], tw.Root[v],
					tn.Pre[v], tn.In[v], tn.Post[v], tn.Root[v])
			}
			if tw.Pre[v] != int(th.Pre[v]) || tw.In[v] != int(th.In[v]) ||
				tw.Post[v] != int(th.Post[v]) || tw.Root[v] != int(th.Root[v]) {
				t.Fatalf("trial %d node %d: wide (%d,%d,%d,%d) int16 (%d,%d,%d,%d)",
					trial, v, tw.Pre[v], tw.In[v], tw.Post[v], tw.Root[v],
					th.Pre[v], th.In[v], th.Post[v], th.Root[v])
			}
		}
		ws, ns, hs := sw.Stats(), sn.Stats(), sh.Stats()
		if ws.Time != ns.Time || ws.Work != ns.Work || ws.Phases != ns.Phases {
			t.Fatalf("trial %d: wide stats %+v != narrow stats %+v", trial, ws, ns)
		}
		if ws.Time != hs.Time || ws.Work != hs.Work || ws.Phases != hs.Phases {
			t.Fatalf("trial %d: wide stats %+v != int16 stats %+v", trial, ws, hs)
		}
		sw.Close()
		sn.Close()
		sh.Close()
	}
}
