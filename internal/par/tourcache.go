package par

import (
	"os"
	"unsafe"

	"pathcover/internal/pram"
)

// tourCacheDisabled is a benchmarking escape hatch: with
// PATHCOVER_DISABLE_TOUR_CACHE set, every acquisition builds a private
// from-scratch tour, which is the rebuild baseline the cache is
// measured against (counters are unaffected either way).
var tourCacheDisabled = os.Getenv("PATHCOVER_DISABLE_TOUR_CACHE") != ""

// The per-Sim Euler-tour cache.
//
// The §5 pipeline derives an Euler tour from a binary forest at several
// points — leaf counting, the Step 3 numberings, every illegal-insert
// exchange round, path extraction, the Hamiltonian constructions — and
// between some of those points the forest either does not change at all
// or changes by a handful of recorded subtree swaps. The cache keeps the
// most recent tour (plus the item-successor list it was walked from) per
// (Sim, width) and serves repeat acquisitions without reconstructing it:
//
//   - same tree, same seed:      replay the recorded cost delta, O(1);
//   - same tree, different seed: recompute only the charges (the tour's
//     values are seed-independent; the charges are not, because the
//     work-optimal list ranking's contraction rounds follow the seed);
//   - tree mutated by recorded swaps (PatchTourSwapIx): the successor
//     links were patched in O(1) per swap, so one walk refreshes every
//     numbering in place — no link rebuild, no allocation;
//   - tree mutated arbitrarily (TouchCachedTourIx): links are rebuilt in
//     place first, then walked.
//
// Whatever the route, the simulated time/work/phase counters advance
// exactly as a from-scratch TourBinaryIx build of the current tree with
// the requested seed would advance them: reuse is invisible to the cost
// model, like every other charge-replay engine in this package.
//
// Ownership: a cached tour belongs to the cache. AcquireTourIx returns
// owned=false for cache-served tours — the caller must NOT Release them,
// and the borrow stays valid only until the next cache operation on the
// same Sim. ReleaseBinTreeIx drops a tree's cache entry automatically,
// so a cached tour can never outlive (or get re-keyed onto a recycled
// buffer of) its tree.
type tourCache[I Ix] struct {
	valid            bool
	state            tourEntryState
	keyL, keyR, keyP unsafe.Pointer // identity of the tree's link slices
	n                int
	nRoots           int
	procs            int
	seed             uint64
	cost             [3]int64 // time/work/phases delta of a build at (seed, procs)
	tour             TourIx[I]
	next             []I // cached item-successor list (3n)
	pins             int
}

type tourEntryState uint8

const (
	tourFresh   tourEntryState = iota
	tourPatched                // next[] tracks the tree; numberings stale
	tourStale                  // links and numberings both stale
)

type tourCacheKey[I Ix] struct{}

func tourCacheOf[I Ix](s *pram.Sim) *tourCache[I] {
	sc := s.Scratch()
	if v := sc.Aux(tourCacheKey[I]{}); v != nil {
		return v.(*tourCache[I])
	}
	c := &tourCache[I]{}
	sc.SetAux(tourCacheKey[I]{}, c)
	return c
}

// peekTourCache returns the cache state without creating it.
func peekTourCache[I Ix](s *pram.Sim) *tourCache[I] {
	if v := s.Scratch().Aux(tourCacheKey[I]{}); v != nil {
		return v.(*tourCache[I])
	}
	return nil
}

func treeKey[I Ix](t BinTreeIx[I]) (l, r, p unsafe.Pointer) {
	return unsafe.Pointer(unsafe.SliceData(t.Left)),
		unsafe.Pointer(unsafe.SliceData(t.Right)),
		unsafe.Pointer(unsafe.SliceData(t.Parent))
}

func (c *tourCache[I]) matches(t BinTreeIx[I]) bool {
	if !c.valid || c.n != t.Len() {
		return false
	}
	l, r, p := treeKey(t)
	return c.keyL == l && c.keyR == r && c.keyP == p
}

// drop releases the entry's buffers back to the arena.
func (c *tourCache[I]) drop(s *pram.Sim) {
	if !c.valid {
		return
	}
	c.tour.Release(s)
	pram.Release(s, c.next)
	c.next = nil
	c.tour = TourIx[I]{}
	c.valid = false
}

// replayAndRecord issues the charges of a fresh build of the cached
// tree under seed and records the delta for O(1) same-seed replays.
func (c *tourCache[I]) replayAndRecord(s *pram.Sim, seed uint64) {
	t0, w0, p0 := s.Time(), s.Work(), s.Phases()
	replayTourCharges(s, c.n, c.nRoots, c.next, seed, false)
	c.seed, c.procs = seed, s.Procs()
	c.cost = [3]int64{s.Time() - t0, s.Work() - w0, s.Phases() - p0}
}

// refresh re-derives the numberings in place: a link rebuild first when
// the entry is stale, then one walk, then the charge replay.
func (c *tourCache[I]) refresh(s *pram.Sim, t BinTreeIx[I], seed uint64) {
	if c.state == tourStale {
		nr := 0
		for v := 0; v < c.n; v++ {
			if t.Parent[v] < 0 {
				nr++
			}
		}
		if nr != len(c.tour.Roots) {
			pram.Release(s, c.tour.Roots)
			c.tour.Roots = pram.GrabNoClear[I](s, nr)
		}
		j := 0
		for v := 0; v < c.n; v++ {
			if t.Parent[v] < 0 {
				c.tour.Roots[j] = I(v)
				j++
			}
		}
		c.nRoots = nr
		fillTourLinks(t, c.tour.Roots, c.next)
	}
	tourWalk(t, c.next, &c.tour)
	c.state = tourFresh
	c.replayAndRecord(s, seed)
}

// AcquireTourIx returns the Euler tour of t, serving it from the per-Sim
// cache when t was toured before (see the package comment above for the
// reuse ladder; the simulated charges always equal a fresh TourBinaryIx
// of the current tree under seed). owned reports the ownership: true
// means the caller got a private tour and must Release it; false means
// the tour is the cache's — it must not be Released and stays valid only
// until the next cache operation (acquire, patch, touch or drop) on s.
func AcquireTourIx[I Ix](s *pram.Sim, t BinTreeIx[I], seed uint64) (tr *TourIx[I], owned bool) {
	n := t.Len()
	if n == 0 || tourCacheDisabled {
		return TourBinaryIx(s, t, seed), true
	}
	c := tourCacheOf[I](s)
	if c.matches(t) {
		switch {
		case c.state == tourFresh && c.seed == seed && c.procs == s.Procs():
			s.AddCost(c.cost[0], c.cost[1], c.cost[2])
		case c.state == tourFresh:
			c.replayAndRecord(s, seed)
		default:
			c.refresh(s, t, seed)
		}
		return &c.tour, false
	}
	if c.pins > 0 {
		return TourBinaryIx(s, t, seed), true
	}
	c.drop(s)
	t0, w0, p0 := s.Time(), s.Work(), s.Phases()
	if s.PreferSequential(3 * n) {
		// The fused build hands its successor links straight to the cache.
		c.tour = TourIx[I]{N: n}
		c.next = tourBuildSeqKeep(s, t, seed, &c.tour, false)
	} else {
		built := TourBinaryIx(s, t, seed)
		c.tour = *built
		c.next = pram.GrabNoClear[I](s, 3*n)
		fillTourLinks(t, c.tour.Roots, c.next) // host-level, uncharged
	}
	c.cost = [3]int64{s.Time() - t0, s.Work() - w0, s.Phases() - p0}
	c.keyL, c.keyR, c.keyP = treeKey(t)
	c.n, c.nRoots = n, len(c.tour.Roots)
	c.procs, c.seed = s.Procs(), seed
	c.valid, c.state = true, tourFresh
	return &c.tour, false
}

// PatchTourSwapIx records in the cached tour of t (if any) that the
// tree positions of x and y were exchanged, subtrees carried along, as
// the illegal-insert exchange of Step 6 does: only the successor links
// derived from the four nodes whose links changed (x, y and their new
// parents) are recomputed — O(1) per swap — leaving the next
// AcquireTourIx a walk-only refresh. A swap touching a root degrades the
// entry to a full link rebuild instead.
func PatchTourSwapIx[I Ix](s *pram.Sim, t BinTreeIx[I], x, y I) {
	c := peekTourCache[I](s)
	if c == nil || !c.matches(t) || c.state == tourStale {
		return
	}
	px, py := t.Parent[x], t.Parent[y] // post-swap parents
	if px < 0 || py < 0 {
		c.state = tourStale
		return
	}
	patchTourNode(t, c.next, x)
	patchTourNode(t, c.next, y)
	patchTourNode(t, c.next, px)
	patchTourNode(t, c.next, py)
	c.state = tourPatched
}

// patchTourNode recomputes v's outgoing successor links from the tree's
// current link slots (the same formulas as fillTourLinks). The post link
// of a root is left alone: it carries the root chaining, and a root's
// parent cannot have changed here.
func patchTourNode[I Ix](t BinTreeIx[I], next []I, v I) {
	if l := t.Left[v]; l >= 0 {
		next[preItem(v)] = preItem(l)
	} else {
		next[preItem(v)] = inItem(v)
	}
	if r := t.Right[v]; r >= 0 {
		next[inItem(v)] = preItem(r)
	} else {
		next[inItem(v)] = postItem(v)
	}
	if p := t.Parent[v]; p >= 0 {
		if t.Left[p] == v {
			next[postItem(v)] = inItem(p)
		} else {
			next[postItem(v)] = postItem(p)
		}
	}
}

// TouchCachedTourIx marks the cached tour of t (if any) stale after an
// arbitrary mutation of the tree's links. The entry's buffers are kept
// and refreshed in place by the next AcquireTourIx.
func TouchCachedTourIx[I Ix](s *pram.Sim, t BinTreeIx[I]) {
	if c := peekTourCache[I](s); c != nil && c.matches(t) {
		c.state = tourStale
	}
}

// DropCachedTourIx invalidates and releases the cached tour of t, if
// any. ReleaseBinTreeIx calls it automatically, so a cached tour can
// never dangle past its tree (or get re-keyed onto a recycled buffer).
func DropCachedTourIx[I Ix](s *pram.Sim, t BinTreeIx[I]) {
	if c := peekTourCache[I](s); c != nil && c.matches(t) {
		c.drop(s)
	}
}

// PinTourCacheIx prevents the current cache entry from being evicted:
// while at least one pin is held, acquisitions of other trees build
// owned, uncached tours. Callers that keep a borrowed tour alive across
// a nested pipeline run (the Hamiltonian cycle construction) pin around
// it. Pair with UnpinTourCacheIx.
func PinTourCacheIx[I Ix](s *pram.Sim) { tourCacheOf[I](s).pins++ }

// UnpinTourCacheIx releases one pin taken by PinTourCacheIx.
func UnpinTourCacheIx[I Ix](s *pram.Sim) {
	if c := peekTourCache[I](s); c != nil && c.pins > 0 {
		c.pins--
	}
}
