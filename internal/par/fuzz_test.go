package par

import (
	"testing"

	"pathcover/internal/pram"
)

// FuzzMatchBrackets: the parallel matcher must agree with the serial
// stack matcher on arbitrary byte-derived sequences, under an
// adversarial processor count derived from the input.
func FuzzMatchBrackets(f *testing.F) {
	f.Add([]byte("()()"), uint8(4))
	f.Add([]byte(")((("), uint8(1))
	f.Add([]byte("(()())((("), uint8(7))
	f.Add([]byte{}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, procs uint8) {
		open := make([]bool, len(data))
		for i, b := range data {
			open[i] = b%2 == 0
		}
		s := pram.New(1+int(procs%16), pram.WithGrain(4))
		got := MatchBrackets(s, open)
		want := make([]int, len(open))
		matchSerial(open, want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("match[%d] = %d, want %d (n=%d procs=%d)",
					i, got[i], want[i], len(open), s.Procs())
			}
		}
	})
}

// FuzzScan: prefix sums against a serial loop.
func FuzzScan(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint8(2))
	f.Add([]byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, procs uint8) {
		in := make([]int, len(data))
		for i, b := range data {
			in[i] = int(b) - 128
		}
		s := pram.New(1+int(procs%12), pram.WithGrain(2))
		out, total := ScanInt(s, in)
		acc := 0
		for i := range in {
			if out[i] != acc {
				t.Fatalf("out[%d] = %d, want %d", i, out[i], acc)
			}
			acc += in[i]
		}
		if total != acc {
			t.Fatalf("total = %d, want %d", total, acc)
		}
	})
}
