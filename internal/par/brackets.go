package par

import "pathcover/internal/pram"

// MatchBrackets finds all matching pairs in a (not necessarily balanced)
// bracket sequence: open[i] reports whether position i holds an opening
// bracket. It returns match[i] = index of i's partner, or -1 for
// unmatched brackets. This is Lemma 5.1(3) of the paper and the engine
// behind Step 5 of the path-cover algorithm.
func MatchBrackets(s *pram.Sim, open []bool) []int {
	return MatchBracketsIx[int](s, open)
}

// MatchBracketsIx is the width-generic MatchBrackets (see Ix).
//
// The parallel algorithm is the classical block-decomposition scheme
// (Bar-On–Vishkin family), O(log n) time and O(n) work on the simulator:
//
//  1. Depths by prefix sums. A closing bracket at depth d matches the
//     last opening bracket at depth d+1 before it, so matching pairs
//     share a "level".
//  2. Each of the p blocks matches internally with a sequential stack
//     (ceil(n/p) time). A block's surviving brackets form a canonical
//     sequence )...)(...( whose closes and opens each occupy consecutive
//     levels — two "runs" described by O(1) integers.
//  3. A merge tree over the blocks determines, per tree node, how many
//     pairs (m) form between the top m surviving opens of its left group
//     and the top m surviving closes of its right group — a consecutive
//     level interval.
//  4. Every run walks up the merge tree, splitting off the consumed top
//     part of its level interval as a "chunk" per node. O(p log p) ⊆ O(n)
//     work, O(log p) time.
//  5. Chunks scatter (block, level) into per-node pair slots, and each
//     pair resolves its bracket indices by O(1) arithmetic into the
//     block-local survivor lists.
//
// Like the other hot-path primitives, the implementation keeps its phase
// bodies and bookkeeping in reusable per-Sim state: block-local survivor
// lists live in one flat arena buffer (block b owns [b*bs, (b+1)*bs)),
// and the walk-up chunks are four parallel integer arrays instead of a
// slice of structs, so steady-state matching allocates nothing.
func MatchBracketsIx[I Ix](s *pram.Sim, open []bool) []I {
	n := len(open)
	match := pram.GrabNoClear[I](s, n)
	nb := s.NumBlocks(n)
	st := bracketsOf[I](s)
	if nb <= 1 {
		// Single-block route: the sequential stack matcher, with the stack
		// cached in the per-Sim state so small-input serving allocates
		// nothing in steady state.
		s.Sequential(n, func() { st.stack = matchSerialStack(open, match, st.stack[:0]) })
		return match
	}
	if s.PreferSequential(n) {
		// Fused sequential route: the global stack matcher computes the
		// matching in one pass (matching is unique, so it coincides with
		// the block-decomposed result), and the merge-tree bookkeeping —
		// whose charge sequence depends on the per-block survivor runs —
		// is replayed on counters only.
		st.stack = matchSerialStack(open, match, st.stack[:0])
		chargeMatchBrackets[I](s, open)
		return match
	}
	st.open, st.match, st.n = open, match, n
	st.phase = brkPhaseInit
	s.ParallelForRange(n, st.body)

	// Phase 1: depths. depth[i] = depth after position i.
	st.w = pram.GrabNoClear[I](s, n)
	st.phase = brkPhaseDepthW
	s.ParallelForRange(n, st.body)
	st.depth = InclusiveScanIx(s, st.w)

	// Phase 2: block-local matching into the flat survivor arena.
	bs := s.BlockSize(n)
	st.bs = bs
	st.survO = pram.GrabNoClear[I](s, nb*bs) // surviving opens per block, ascending position
	st.survC = pram.GrabNoClear[I](s, nb*bs) // surviving closes per block, ascending position
	st.nO = pram.GrabNoClear[I](s, nb)
	st.nC = pram.GrabNoClear[I](s, nb)
	st.blkPhase = brkBlockLocal
	s.Blocks(n, st.blockBody)

	// Run descriptors: the level of an open at i is depth[i]; of a close,
	// depth[i]+1. Surviving closes occupy consecutive descending levels
	// from cTop; surviving opens consecutive ascending levels up to oTop.
	st.cTop = pram.GrabNoClear[I](s, nb)
	st.oLo = pram.GrabNoClear[I](s, nb)
	st.phase = brkPhaseTops
	s.ParallelForRange(nb, st.body)

	// Phase 3: merge tree (heap layout, p2 leaves).
	p2 := 1
	for p2 < nb {
		p2 <<= 1
	}
	st.p2 = p2
	size := 2 * p2
	st.oCnt = pram.GrabNoClear[I](s, size)
	st.cCnt = pram.GrabNoClear[I](s, size)
	st.mCnt = pram.GrabNoClear[I](s, size)
	st.splitD = pram.GrabNoClear[I](s, size)
	st.phase = brkPhaseLeaves
	s.ParallelForRange(p2, st.body)
	st.mCnt[0], st.splitD[0] = 0, 0 // root slot 0 is outside the heap but scanned below
	for lvl := p2 / 2; lvl >= 1; lvl /= 2 {
		st.lvl = lvl
		st.span = p2 / lvl // blocks covered per node at this level
		st.phase = brkPhaseUp
		s.ForCostRange(lvl, 2, st.body)
	}

	// Pair slot offsets per merge-tree node.
	pairOff, totalPairsI := ScanIx(s, st.mCnt)
	totalPairs := int(totalPairsI)
	st.pairOff = pairOff
	if totalPairs == 0 {
		st.release(s)
		return match
	}

	// Phase 4: run walk-up. Runs 2b (closes) and 2b+1 (opens).
	nRuns := 2 * nb
	st.runNode = pram.GrabNoClear[I](s, nRuns)
	st.runHi = pram.GrabNoClear[I](s, nRuns)
	st.runLo = pram.GrabNoClear[I](s, nRuns)
	st.runAlive = pram.GrabNoClear[bool](s, nRuns)
	st.phase = brkPhaseRuns
	s.ForCostRange(nb, 2, st.body)

	st.bufNode = pram.GrabNoClear[I](s, nRuns)
	st.bufLo = pram.GrabNoClear[I](s, nRuns)
	st.bufHi = pram.GrabNoClear[I](s, nRuns)
	st.emitted = pram.GrabNoClear[bool](s, nRuns)
	st.chNode, st.chLo, st.chHi, st.chRi = st.chNode[:0], st.chLo[:0], st.chHi[:0], st.chRi[:0]
	for lvl := p2; lvl > 1; lvl /= 2 {
		st.phase = brkPhaseEmit
		s.ForCostRange(nRuns, 3, st.body)
		idx := IndexPackIx[I](s, st.emitted)
		st.idx = idx
		st.chBase = len(st.chNode)
		grow := st.chBase + len(idx)
		st.chNode = ensureLen(st.chNode, grow)
		st.chLo = ensureLen(st.chLo, grow)
		st.chHi = ensureLen(st.chHi, grow)
		st.chRi = ensureLen(st.chRi, grow)
		st.phase = brkPhaseGather
		s.ParallelForRange(len(idx), st.body)
		pram.Release(s, idx)
		st.idx = nil
	}

	// Phase 5: scatter chunks into pair slots, then resolve each pair.
	nChunks := len(st.chNode)
	st.lens = pram.GrabNoClear[I](s, nChunks)
	st.phase = brkPhaseLens
	s.ParallelForRange(nChunks, st.body)
	st.owner, st.offset, st.items = DistributeIx(s, st.lens)
	st.pairOpen = pram.GrabNoClear[I](s, totalPairs)
	st.pairClose = pram.GrabNoClear[I](s, totalPairs)
	st.phase = brkPhaseScatter
	s.ForCostRange(st.items, 2, st.body)
	pram.Release(s, st.owner)
	pram.Release(s, st.offset)

	st.owner, st.offset, _ = DistributeIx(s, st.mCnt)
	st.phase = brkPhaseResolve
	s.ForCostRange(totalPairs, 3, st.body)
	pram.Release(s, st.owner)
	pram.Release(s, st.offset)
	st.owner, st.offset = nil, nil
	pram.Release(s, st.runNode)
	pram.Release(s, st.runHi)
	pram.Release(s, st.runLo)
	pram.Release(s, st.runAlive)
	pram.Release(s, st.bufNode)
	pram.Release(s, st.bufLo)
	pram.Release(s, st.bufHi)
	pram.Release(s, st.emitted)
	pram.Release(s, st.lens)
	pram.Release(s, st.pairOpen)
	pram.Release(s, st.pairClose)
	st.runNode, st.runHi, st.runLo, st.runAlive = nil, nil, nil, nil
	st.bufNode, st.bufLo, st.bufHi, st.emitted = nil, nil, nil, nil
	st.lens, st.pairOpen, st.pairClose = nil, nil, nil
	st.release(s)
	return match
}

// ensureLen grows a state-cached slice to length n, keeping contents up
// to the old length (steady state: the capacity stabilises and append
// never reallocates).
func ensureLen[I Ix](b []I, n int) []I {
	if cap(b) >= n {
		return b[:n]
	}
	nb := make([]I, n, 2*n)
	copy(nb, b)
	return nb
}

// bracketState is the reusable per-(Sim, width) state of MatchBrackets.
type bracketState[I Ix] struct {
	open         []bool
	match        []I
	n, bs, p2    int
	w, depth     []I
	survO, survC []I
	nO, nC       []I
	cTop, oLo    []I
	oCnt, cCnt   []I
	mCnt, splitD []I
	pairOff      []I
	lvl, span    int

	runNode, runHi, runLo []I
	runAlive              []bool
	bufNode, bufLo, bufHi []I
	emitted               []bool
	chNode, chLo, chHi    []I
	chRi                  []I
	idx                   []I
	chBase                int

	lens, owner, offset []I
	items               int
	pairOpen, pairClose []I
	stack               []int // sequential-route scratch

	phase     int
	blkPhase  int
	body      func(lo, hi int)
	blockBody func(b, lo, hi int)
}

const (
	brkPhaseInit = iota
	brkPhaseDepthW
	brkPhaseTops
	brkPhaseLeaves
	brkPhaseUp
	brkPhaseRuns
	brkPhaseEmit
	brkPhaseGather
	brkPhaseLens
	brkPhaseScatter
	brkPhaseResolve
)

const brkBlockLocal = 0

type bracketsKey[I Ix] struct{}

func bracketsOf[I Ix](s *pram.Sim) *bracketState[I] {
	sc := s.Scratch()
	if v := sc.Aux(bracketsKey[I]{}); v != nil {
		return v.(*bracketState[I])
	}
	st := &bracketState[I]{}
	st.body = st.run
	st.blockBody = st.runBlock
	sc.SetAux(bracketsKey[I]{}, st)
	return st
}

// release returns the buffers shared by the early-exit and full paths.
func (st *bracketState[I]) release(s *pram.Sim) {
	pram.Release(s, st.w)
	pram.Release(s, st.depth)
	pram.Release(s, st.survO)
	pram.Release(s, st.survC)
	pram.Release(s, st.nO)
	pram.Release(s, st.nC)
	pram.Release(s, st.cTop)
	pram.Release(s, st.oLo)
	pram.Release(s, st.oCnt)
	pram.Release(s, st.cCnt)
	pram.Release(s, st.mCnt)
	pram.Release(s, st.splitD)
	pram.Release(s, st.pairOff)
	st.open, st.match, st.w, st.depth = nil, nil, nil, nil
	st.survO, st.survC, st.nO, st.nC = nil, nil, nil, nil
	st.cTop, st.oLo, st.oCnt, st.cCnt = nil, nil, nil, nil
	st.mCnt, st.splitD, st.pairOff = nil, nil, nil
}

func (st *bracketState[I]) runBlock(b, lo, hi int) {
	// Block-local matching with the survivor arena as the stack.
	base := b * st.bs
	nO, nC := 0, 0
	for i := lo; i < hi; i++ {
		if st.open[i] {
			st.survO[base+nO] = I(i)
			nO++
		} else if nO > 0 {
			nO--
			j := st.survO[base+nO]
			st.match[i], st.match[j] = j, I(i)
		} else {
			st.survC[base+nC] = I(i)
			nC++
		}
	}
	st.nO[b], st.nC[b] = I(nO), I(nC)
}

func (st *bracketState[I]) run(lo, hi int) {
	switch st.phase {
	case brkPhaseInit:
		match := st.match
		for i := lo; i < hi; i++ {
			match[i] = -1
		}
	case brkPhaseDepthW:
		open, w := st.open, st.w
		for i := lo; i < hi; i++ {
			if open[i] {
				w[i] = 1
			} else {
				w[i] = -1
			}
		}
	case brkPhaseTops:
		for i := lo; i < hi; i++ {
			if st.nC[i] > 0 {
				st.cTop[i] = st.depth[st.survC[i*st.bs]] + 1
			} else {
				st.cTop[i] = 0
			}
			if st.nO[i] > 0 {
				st.oLo[i] = st.depth[st.survO[i*st.bs]]
			} else {
				st.oLo[i] = 0
			}
		}
	case brkPhaseLeaves:
		for i := lo; i < hi; i++ {
			if i < len(st.nO) {
				st.oCnt[st.p2+i] = st.nO[i]
				st.cCnt[st.p2+i] = st.nC[i]
			} else {
				st.oCnt[st.p2+i] = 0
				st.cCnt[st.p2+i] = 0
			}
			st.mCnt[st.p2+i] = 0
		}
	case brkPhaseUp:
		for i := lo; i < hi; i++ {
			v := st.lvl + i
			l, r := 2*v, 2*v+1
			m := min(st.oCnt[l], st.cCnt[r])
			st.mCnt[v] = m
			st.oCnt[v] = st.oCnt[r] + st.oCnt[l] - m
			st.cCnt[v] = st.cCnt[l] + st.cCnt[r] - m
			boundary := (i*st.span + st.span/2) * st.bs // first position of the right group
			if boundary > st.n {
				boundary = st.n
			}
			if boundary == 0 {
				st.splitD[v] = 0
			} else {
				st.splitD[v] = st.depth[boundary-1]
			}
		}
	case brkPhaseRuns:
		for b := lo; b < hi; b++ {
			if c := st.nC[b]; c > 0 {
				st.runNode[2*b] = I(st.p2 + b)
				st.runHi[2*b] = st.cTop[b]
				st.runLo[2*b] = st.cTop[b] - c + 1
				st.runAlive[2*b] = true
			} else {
				st.runAlive[2*b] = false
			}
			if o := st.nO[b]; o > 0 {
				st.runNode[2*b+1] = I(st.p2 + b)
				st.runHi[2*b+1] = st.oLo[b] + o - 1
				st.runLo[2*b+1] = st.oLo[b]
				st.runAlive[2*b+1] = true
			} else {
				st.runAlive[2*b+1] = false
			}
		}
	case brkPhaseEmit:
		for ri := lo; ri < hi; ri++ {
			st.emitted[ri] = false
			if !st.runAlive[ri] {
				continue
			}
			v := st.runNode[ri]
			pv := v / 2
			st.runNode[ri] = pv
			isOpen := ri%2 == 1
			isLeftChild := v%2 == 0
			if st.mCnt[pv] == 0 || isOpen != isLeftChild {
				continue // opens are consumed from left groups, closes from right
			}
			t := st.splitD[pv] - st.mCnt[pv]
			if st.runHi[ri] <= t {
				continue
			}
			l := t + 1
			if l < st.runLo[ri] {
				l = st.runLo[ri]
			}
			st.bufNode[ri] = pv
			st.bufLo[ri] = l
			st.bufHi[ri] = st.runHi[ri]
			st.emitted[ri] = true
			st.runHi[ri] = l - 1
			if st.runHi[ri] < st.runLo[ri] {
				st.runAlive[ri] = false
			}
		}
	case brkPhaseGather:
		for i := lo; i < hi; i++ {
			ri := st.idx[i]
			k := st.chBase + i
			st.chNode[k] = st.bufNode[ri]
			st.chLo[k] = st.bufLo[ri]
			st.chHi[k] = st.bufHi[ri]
			st.chRi[k] = ri
		}
	case brkPhaseLens:
		for i := lo; i < hi; i++ {
			st.lens[i] = st.chHi[i] - st.chLo[i] + 1
		}
	case brkPhaseScatter:
		for i := lo; i < hi; i++ {
			k := st.owner[i]
			lev := st.chLo[k] + st.offset[i]
			node := st.chNode[k]
			slot := st.pairOff[node] + lev - (st.splitD[node] - st.mCnt[node] + 1)
			ri := st.chRi[k]
			if ri%2 == 1 { // open run
				st.pairOpen[slot] = ri / 2
			} else {
				st.pairClose[slot] = ri / 2
			}
		}
	case brkPhaseResolve:
		for i := lo; i < hi; i++ {
			v := st.owner[i]
			lev := st.splitD[v] - st.mCnt[v] + 1 + I(st.offset[i])
			bO, bC := st.pairOpen[i], st.pairClose[i]
			oi := st.survO[int(bO)*st.bs+int(lev-st.oLo[bO])]
			ci := st.survC[int(bC)*st.bs+int(st.cTop[bC]-lev)]
			st.match[oi], st.match[ci] = ci, oi
		}
	}
}

// chargeMatchBrackets replays the exact simulated charge sequence of
// the block-decomposed MatchBracketsIx without producing the matching:
// the per-block survivor runs, the merge tree and the run walk-up are
// re-derived on O(p)-sized counters (the canonical block form makes the
// survivor runs computable from running depths alone — cTop is the
// depth at block start, oLo the depth at block end minus the surviving
// opens), because the emitted chunk counts per level and the total pair
// count steer the charges. It must mirror MatchBracketsIx charge for
// charge.
func chargeMatchBrackets[I Ix](s *pram.Sim, open []bool) {
	n := len(open)
	p := s.Procs()
	charge := func(m, cost int) {
		if m > 0 {
			s.Charge(int64(ceilDivInt(m, p)*cost), int64(m*cost))
		}
	}
	nb := s.NumBlocks(n)
	bs := s.BlockSize(n)
	charge(n, 1)           // match init
	charge(n, 1)           // depth weights
	chargeScan(s, n, true) // depth scan
	charge(n, 1)           // block-local matching

	// Per-block canonical runs from one streaming pass.
	nO := pram.GrabNoClear[I](s, nb)
	nC := pram.GrabNoClear[I](s, nb)
	cTop := pram.GrabNoClear[I](s, nb)
	oLo := pram.GrabNoClear[I](s, nb)
	endD := pram.GrabNoClear[I](s, nb)
	depth := I(0)
	for b := 0; b < nb; b++ {
		hi := min((b+1)*bs, n)
		d0 := depth
		locO, closes := I(0), I(0)
		for i := b * bs; i < hi; i++ {
			if open[i] {
				locO++
				depth++
			} else {
				if locO > 0 {
					locO--
				} else {
					closes++
				}
				depth--
			}
		}
		nO[b], nC[b] = locO, closes
		endD[b] = depth
		if closes > 0 {
			cTop[b] = d0
		} else {
			cTop[b] = 0
		}
		if locO > 0 {
			oLo[b] = depth - locO + 1
		} else {
			oLo[b] = 0
		}
	}
	charge(nb, 1) // run descriptors (tops)

	// Merge tree.
	p2 := 1
	for p2 < nb {
		p2 <<= 1
	}
	size := 2 * p2
	oCnt := pram.GrabNoClear[I](s, size)
	cCnt := pram.GrabNoClear[I](s, size)
	mCnt := pram.GrabNoClear[I](s, size)
	splitD := pram.GrabNoClear[I](s, size)
	for i := 0; i < p2; i++ {
		if i < nb {
			oCnt[p2+i], cCnt[p2+i] = nO[i], nC[i]
		} else {
			oCnt[p2+i], cCnt[p2+i] = 0, 0
		}
		mCnt[p2+i] = 0
	}
	charge(p2, 1) // leaves
	mCnt[0], splitD[0] = 0, 0
	totalPairs := 0
	for lvl := p2 / 2; lvl >= 1; lvl /= 2 {
		span := p2 / lvl
		for i := 0; i < lvl; i++ {
			v := lvl + i
			l, r := 2*v, 2*v+1
			m := min(oCnt[l], cCnt[r])
			mCnt[v] = m
			totalPairs += int(m)
			oCnt[v] = oCnt[r] + oCnt[l] - m
			cCnt[v] = cCnt[l] + cCnt[r] - m
			boundary := (i*span + span/2) * bs
			if boundary > n {
				boundary = n
			}
			switch {
			case boundary == 0:
				splitD[v] = 0
			case boundary == n:
				splitD[v] = endD[nb-1]
			default:
				splitD[v] = endD[boundary/bs-1]
			}
		}
		charge(lvl, 2) // up-sweep
	}
	chargeScan(s, size, false) // pair slot offsets
	release := func() {
		pram.Release(s, nO)
		pram.Release(s, nC)
		pram.Release(s, cTop)
		pram.Release(s, oLo)
		pram.Release(s, endD)
		pram.Release(s, oCnt)
		pram.Release(s, cCnt)
		pram.Release(s, mCnt)
		pram.Release(s, splitD)
	}
	if totalPairs == 0 {
		release()
		return
	}

	// Run walk-up: count the chunks each level emits and their lengths.
	nRuns := 2 * nb
	runNode := pram.GrabNoClear[I](s, nRuns)
	runHi := pram.GrabNoClear[I](s, nRuns)
	runLo := pram.GrabNoClear[I](s, nRuns)
	runAlive := pram.GrabNoClear[bool](s, nRuns)
	for b := 0; b < nb; b++ {
		if c := nC[b]; c > 0 {
			runNode[2*b] = I(p2 + b)
			runHi[2*b] = cTop[b]
			runLo[2*b] = cTop[b] - c + 1
			runAlive[2*b] = true
		} else {
			runAlive[2*b] = false
		}
		if o := nO[b]; o > 0 {
			runNode[2*b+1] = I(p2 + b)
			runHi[2*b+1] = oLo[b] + o - 1
			runLo[2*b+1] = oLo[b]
			runAlive[2*b+1] = true
		} else {
			runAlive[2*b+1] = false
		}
	}
	charge(nb, 2) // runs init
	nChunks, items := 0, 0
	for lvl := p2; lvl > 1; lvl /= 2 {
		charge(nRuns, 3) // emit
		emitted := 0
		for ri := 0; ri < nRuns; ri++ {
			if !runAlive[ri] {
				continue
			}
			v := runNode[ri]
			pv := v / 2
			runNode[ri] = pv
			isOpen := ri%2 == 1
			isLeftChild := v%2 == 0
			if mCnt[pv] == 0 || isOpen != isLeftChild {
				continue
			}
			t := splitD[pv] - mCnt[pv]
			if runHi[ri] <= t {
				continue
			}
			l := t + 1
			if l < runLo[ri] {
				l = runLo[ri]
			}
			emitted++
			items += int(runHi[ri] - l + 1)
			runHi[ri] = l - 1
			if runHi[ri] < runLo[ri] {
				runAlive[ri] = false
			}
		}
		charge(nRuns, 1)            // emitted IndexPack flags
		chargeScan(s, nRuns, false) // emitted IndexPack scan
		charge(nRuns, 1)            // emitted IndexPack scatter
		charge(emitted, 1)          // chunk gather (skipped when empty)
		nChunks += emitted
	}
	pram.Release(s, runNode)
	pram.Release(s, runHi)
	pram.Release(s, runLo)
	pram.Release(s, runAlive)

	// Chunk scatter into pair slots, then per-pair resolution.
	charge(nChunks, 1)            // chunk lengths
	chargeScan(s, nChunks, false) // Distribute(lens): starts scan
	charge(items, 1)              // heads fill
	charge(nChunks, 1)            // head scatter
	chargeScan(s, items, true)    // owner max-scan
	charge(items, 1)              // offsets
	charge(items, 2)              // pair scatter
	chargeScan(s, size, false)    // Distribute(mCnt): starts scan
	charge(totalPairs, 1)         // heads fill
	charge(size, 1)               // head scatter
	chargeScan(s, totalPairs, true)
	charge(totalPairs, 1) // offsets
	charge(totalPairs, 3) // resolve
	release()
}

// matchSerial is the sequential stack matcher, used for single-block
// inputs and as the differential-testing reference.
func matchSerial[I Ix](open []bool, match []I) {
	matchSerialStack(open, match, nil)
}

// matchSerialStack is matchSerial over a caller-provided stack buffer,
// returned (possibly grown) for reuse.
func matchSerialStack[I Ix](open []bool, match []I, stack []int) []int {
	for i := range open {
		if open[i] {
			match[i] = -1
			stack = append(stack, i)
		} else if len(stack) > 0 {
			j := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			match[i], match[j] = I(j), I(i)
		} else {
			match[i] = -1
		}
	}
	return stack[:0]
}
