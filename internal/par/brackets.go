package par

import "pathcover/internal/pram"

// MatchBrackets finds all matching pairs in a (not necessarily balanced)
// bracket sequence: open[i] reports whether position i holds an opening
// bracket. It returns match[i] = index of i's partner, or -1 for
// unmatched brackets. This is Lemma 5.1(3) of the paper and the engine
// behind Step 5 of the path-cover algorithm.
//
// The parallel algorithm is the classical block-decomposition scheme
// (Bar-On–Vishkin family), O(log n) time and O(n) work on the simulator:
//
//  1. Depths by prefix sums. A closing bracket at depth d matches the
//     last opening bracket at depth d+1 before it, so matching pairs
//     share a "level".
//  2. Each of the p blocks matches internally with a sequential stack
//     (ceil(n/p) time). A block's surviving brackets form a canonical
//     sequence )...)(...( whose closes and opens each occupy consecutive
//     levels — two "runs" described by O(1) integers.
//  3. A merge tree over the blocks determines, per tree node, how many
//     pairs (m) form between the top m surviving opens of its left group
//     and the top m surviving closes of its right group — a consecutive
//     level interval.
//  4. Every run walks up the merge tree, splitting off the consumed top
//     part of its level interval as a "chunk" per node. O(p log p) ⊆ O(n)
//     work, O(log p) time.
//  5. Chunks scatter (block, level) into per-node pair slots, and each
//     pair resolves its bracket indices by O(1) arithmetic into the
//     block-local survivor lists.
func MatchBrackets(s *pram.Sim, open []bool) []int {
	n := len(open)
	match := make([]int, n)
	nb := s.NumBlocks(n)
	if nb <= 1 {
		s.Sequential(n, func() { matchSerial(open, match) })
		return match
	}
	s.ParallelFor(n, func(i int) { match[i] = -1 })

	// Phase 1: depths. D[i] = depth after position i.
	w := make([]int, n)
	s.ParallelFor(n, func(i int) {
		if open[i] {
			w[i] = 1
		} else {
			w[i] = -1
		}
	})
	depth := InclusiveScan(s, w, 0, func(a, b int) int { return a + b })

	// Phase 2: block-local matching.
	bs := s.BlockSize(n)
	locO := make([][]int, nb) // surviving opens per block, ascending position
	locC := make([][]int, nb) // surviving closes per block, ascending position
	s.Blocks(n, func(b, lo, hi int) {
		var stack []int
		var closes []int
		for i := lo; i < hi; i++ {
			if open[i] {
				stack = append(stack, i)
			} else if len(stack) > 0 {
				j := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				match[i], match[j] = j, i
			} else {
				closes = append(closes, i)
			}
		}
		locO[b], locC[b] = stack, closes
	})

	// Run descriptors: the level of an open at i is depth[i]; of a close,
	// depth[i]+1. Surviving closes occupy consecutive descending levels
	// from cTop; surviving opens consecutive ascending levels up to oTop.
	cTop := make([]int, nb)
	oLo := make([]int, nb)
	s.ParallelFor(nb, func(b int) {
		if len(locC[b]) > 0 {
			cTop[b] = depth[locC[b][0]] + 1
		}
		if len(locO[b]) > 0 {
			oLo[b] = depth[locO[b][0]]
		}
	})

	// Phase 3: merge tree (heap layout, p2 leaves).
	p2 := 1
	for p2 < nb {
		p2 <<= 1
	}
	size := 2 * p2
	oCnt := make([]int, size)
	cCnt := make([]int, size)
	mCnt := make([]int, size)
	splitD := make([]int, size)
	s.ParallelFor(p2, func(b int) {
		if b < nb {
			oCnt[p2+b] = len(locO[b])
			cCnt[p2+b] = len(locC[b])
		}
	})
	for lvl := p2 / 2; lvl >= 1; lvl /= 2 {
		lvl := lvl
		span := p2 / lvl // blocks covered per node at this level
		s.ForCost(lvl, 2, func(i int) {
			v := lvl + i
			l, r := 2*v, 2*v+1
			m := min(oCnt[l], cCnt[r])
			mCnt[v] = m
			oCnt[v] = oCnt[r] + oCnt[l] - m
			cCnt[v] = cCnt[l] + cCnt[r] - m
			boundary := (i*span + span/2) * bs // first position of the right group
			if boundary > n {
				boundary = n
			}
			if boundary == 0 {
				splitD[v] = 0
			} else {
				splitD[v] = depth[boundary-1]
			}
		})
	}

	// Pair slot offsets per merge-tree node.
	pairOff, totalPairs := ScanInt(s, mCnt)
	if totalPairs == 0 {
		return match
	}

	// Phase 4: run walk-up. Runs 2b (closes) and 2b+1 (opens).
	type chunk struct {
		node   int
		levLo  int // inclusive
		levHi  int // inclusive
		block  int
		isOpen bool
	}
	nRuns := 2 * nb
	runNode := make([]int, nRuns)
	runHi := make([]int, nRuns)
	runLo := make([]int, nRuns)
	runAlive := make([]bool, nRuns)
	s.ForCost(nb, 2, func(b int) {
		if c := len(locC[b]); c > 0 {
			runNode[2*b] = p2 + b
			runHi[2*b] = cTop[b]
			runLo[2*b] = cTop[b] - c + 1
			runAlive[2*b] = true
		}
		if o := len(locO[b]); o > 0 {
			runNode[2*b+1] = p2 + b
			runHi[2*b+1] = oLo[b] + o - 1
			runLo[2*b+1] = oLo[b]
			runAlive[2*b+1] = true
		}
	})
	var chunks []chunk
	buf := make([]chunk, nRuns)
	emitted := make([]bool, nRuns)
	for lvl := p2; lvl > 1; lvl /= 2 {
		s.ForCost(nRuns, 3, func(ri int) {
			emitted[ri] = false
			if !runAlive[ri] {
				return
			}
			v := runNode[ri]
			pv := v / 2
			runNode[ri] = pv
			isOpen := ri%2 == 1
			isLeftChild := v%2 == 0
			if mCnt[pv] == 0 || isOpen != isLeftChild {
				return // opens are consumed from left groups, closes from right
			}
			t := splitD[pv] - mCnt[pv]
			if runHi[ri] <= t {
				return
			}
			lo := t + 1
			if lo < runLo[ri] {
				lo = runLo[ri]
			}
			buf[ri] = chunk{node: pv, levLo: lo, levHi: runHi[ri], block: ri / 2, isOpen: isOpen}
			emitted[ri] = true
			runHi[ri] = lo - 1
			if runHi[ri] < runLo[ri] {
				runAlive[ri] = false
			}
		})
		chunks = append(chunks, Pack(s, buf, emitted)...)
	}

	// Phase 5: scatter chunks into pair slots, then resolve each pair.
	lens := make([]int, len(chunks))
	s.ParallelFor(len(chunks), func(k int) { lens[k] = chunks[k].levHi - chunks[k].levLo + 1 })
	owner, offset, items := Distribute(s, lens)
	pairOpen := make([]int, totalPairs)
	pairClose := make([]int, totalPairs)
	s.ForCost(items, 2, func(t int) {
		ck := chunks[owner[t]]
		lev := ck.levLo + offset[t]
		slot := pairOff[ck.node] + lev - (splitD[ck.node] - mCnt[ck.node] + 1)
		if ck.isOpen {
			pairOpen[slot] = ck.block
		} else {
			pairClose[slot] = ck.block
		}
	})

	nodeOf, slotOff, _ := Distribute(s, mCnt)
	s.ForCost(totalPairs, 3, func(k int) {
		v := nodeOf[k]
		lev := splitD[v] - mCnt[v] + 1 + slotOff[k]
		bO, bC := pairOpen[k], pairClose[k]
		oi := locO[bO][lev-oLo[bO]]
		ci := locC[bC][cTop[bC]-lev]
		match[oi], match[ci] = ci, oi
	})
	return match
}

// matchSerial is the sequential stack matcher, used for single-block
// inputs and as the differential-testing reference.
func matchSerial(open []bool, match []int) {
	var stack []int
	for i := range open {
		if open[i] {
			match[i] = -1
			stack = append(stack, i)
		} else if len(stack) > 0 {
			j := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			match[i], match[j] = j, i
		} else {
			match[i] = -1
		}
	}
}
