package par

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pathcover/internal/pram"
)

// randomFullBinTree builds a single binary tree with m leaves in which
// every internal node has exactly two children (2m-1 nodes). Node ids are
// shuffled so that structure does not correlate with index order.
func randomFullBinTree(rng *rand.Rand, m int) (t BinTree, leaves []int) {
	n := 2*m - 1
	t = NewBinTree(n)
	ids := rng.Perm(n)
	// Build by repeatedly splitting leaf ranges (random binary structure).
	type job struct{ node, lo, hi int } // leaves lo..hi under node
	next := 0
	take := func() int { v := ids[next]; next++; return v }
	root := take()
	stack := []job{{root, 0, m - 1}}
	leaves = make([]int, m)
	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if j.lo == j.hi {
			leaves[j.lo] = j.node
			continue
		}
		cut := j.lo + rng.IntN(j.hi-j.lo)
		l, r := take(), take()
		t.Left[j.node], t.Right[j.node] = l, r
		t.Parent[l], t.Parent[r] = j.node, j.node
		stack = append(stack, job{l, j.lo, cut}, job{r, cut + 1, j.hi})
	}
	return t, leaves
}

func serialEval(t BinTree, op []NodeOp, leafVal []int64, v int) int64 {
	if t.IsLeaf(v) {
		return leafVal[v]
	}
	l := serialEval(t, op, leafVal, t.Left[v])
	r := serialEval(t, op, leafVal, t.Right[v])
	return applyOp(op[v], l, r)
}

func randomOps(rng *rand.Rand, t BinTree) ([]NodeOp, []int64) {
	n := t.Len()
	op := make([]NodeOp, n)
	leafVal := make([]int64, n)
	for v := 0; v < n; v++ {
		if t.IsLeaf(v) {
			leafVal[v] = 1
		} else if rng.IntN(2) == 0 {
			op[v] = NodeOp{Kind: OpSum}
		} else {
			op[v] = NodeOp{Kind: OpJoinClamp, C: int64(rng.IntN(6))}
		}
	}
	return op, leafVal
}

func TestEvalTreeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 20))
	for _, s := range sims() {
		for _, m := range []int{1, 2, 3, 8, 50, 400} {
			bt, _ := randomFullBinTree(rng, m)
			op, leafVal := randomOps(rng, bt)
			tour := TourBinary(s, bt, 77)
			ranks, _ := tour.LeafRanks(s, bt)
			got := EvalTree(s, bt, op, leafVal, ranks)
			for v := 0; v < bt.Len(); v++ {
				want := serialEval(bt, op, leafVal, v)
				if got[v] != want {
					t.Fatalf("procs=%d m=%d node %d: got %d want %d",
						s.Procs(), m, v, got[v], want)
				}
			}
		}
	}
}

func TestEvalTreeLeftChainDeep(t *testing.T) {
	// Caterpillar: internal spine of left children — the shape where the
	// naive bottom-up evaluation needs O(n) rounds but contraction stays
	// logarithmic.
	m := 1024
	n := 2*m - 1
	bt := NewBinTree(n)
	// internal nodes 0..m-2 chained by left pointers; leaves m-1..2m-2.
	for v := 0; v < m-1; v++ {
		leaf := m - 1 + v
		bt.Right[v] = leaf
		bt.Parent[leaf] = v
		if v < m-2 {
			bt.Left[v] = v + 1
			bt.Parent[v+1] = v
		} else {
			bt.Left[v] = 2*m - 2
			bt.Parent[2*m-2] = v
		}
	}
	op := make([]NodeOp, n)
	leafVal := make([]int64, n)
	for v := 0; v < m-1; v++ {
		if v%3 == 0 {
			op[v] = NodeOp{Kind: OpJoinClamp, C: 2}
		} else {
			op[v] = NodeOp{Kind: OpSum}
		}
	}
	for v := m - 1; v < n; v++ {
		leafVal[v] = int64(v%4) + 1
	}
	s := pram.New(pram.ProcsFor(n), pram.WithGrain(64))
	tour := TourBinary(s, bt, 13)
	ranks, _ := tour.LeafRanks(s, bt)
	got := EvalTree(s, bt, op, leafVal, ranks)
	for _, v := range []int{0, 1, m / 2, m - 2} {
		want := serialEval(bt, op, leafVal, v)
		if got[v] != want {
			t.Fatalf("node %d: got %d want %d", v, got[v], want)
		}
	}
}

func TestEvalTreeSingleLeaf(t *testing.T) {
	s := pram.NewSerial()
	bt := NewBinTree(1)
	got := EvalTree(s, bt, make([]NodeOp, 1), []int64{42}, []int{0})
	if got[0] != 42 {
		t.Fatalf("single leaf value %d want 42", got[0])
	}
}

func TestMaxPlusAlgebra(t *testing.T) {
	// Composition law: (f.then(g)).Apply(x) == g.Apply(f.Apply(x)).
	f := func(fa, fb, ga, gb int16, x int16) bool {
		mf := MaxPlus{A: int64(fa), B: int64(fb)}
		mg := MaxPlus{A: int64(ga), B: int64(gb)}
		comp := mf.then(mg)
		return comp.Apply(int64(x)) == mg.Apply(mf.Apply(int64(x)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	id := idMaxPlus()
	if id.Apply(7) != 7 || id.Apply(-3) != -3 {
		t.Error("identity function broken")
	}
}

func TestEvalTreeProperty(t *testing.T) {
	f := func(seed uint64, mRaw uint16, procs uint8) bool {
		m := int(mRaw%200) + 1
		rng := rand.New(rand.NewPCG(seed, 31))
		bt, _ := randomFullBinTree(rng, m)
		op, leafVal := randomOps(rng, bt)
		s := pram.New(1+int(procs%10), pram.WithGrain(16))
		tour := TourBinary(s, bt, seed)
		ranks, _ := tour.LeafRanks(s, bt)
		got := EvalTree(s, bt, op, leafVal, ranks)
		for v := 0; v < bt.Len(); v++ {
			if got[v] != serialEval(bt, op, leafVal, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalTreeCostBounds(t *testing.T) {
	m := 1 << 13
	rng := rand.New(rand.NewPCG(5, 5))
	bt, _ := randomFullBinTree(rng, m)
	op, leafVal := randomOps(rng, bt)
	n := bt.Len()
	s := pram.New(pram.ProcsFor(n), pram.WithGrain(1<<30))
	tour := TourBinary(s, bt, 3)
	ranks, _ := tour.LeafRanks(s, bt)
	s.Reset()
	EvalTree(s, bt, op, leafVal, ranks)
	lg := 14
	if s.Time() > int64(100*lg) {
		t.Errorf("contraction time %d exceeds 100 log n", s.Time())
	}
	if s.Work() > int64(100*n) {
		t.Errorf("contraction work %d exceeds 100n", s.Work())
	}
}
