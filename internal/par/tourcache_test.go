package par

import (
	"math/rand/v2"
	"testing"

	"pathcover/internal/pram"
)

// The tour-cache suite: every reuse route (same-seed replay,
// different-seed recharge, patched walk-refresh, stale rebuild) must
// produce the tour a from-scratch build of the current tree would
// produce AND advance the simulated counters exactly as that build
// would. The reference Sim performs the from-scratch builds.

func toursEq(t *testing.T, what string, got, want *TourIx[int]) {
	t.Helper()
	intsEq(t, what+" Pos", got.Pos, want.Pos)
	intsEq(t, what+" Seq", got.Seq, want.Seq)
	intsEq(t, what+" Pre", got.Pre, want.Pre)
	intsEq(t, what+" In", got.In, want.In)
	intsEq(t, what+" Post", got.Post, want.Post)
	intsEq(t, what+" InSeq", got.InSeq, want.InSeq)
	intsEq(t, what+" Root", got.Root, want.Root)
	intsEq(t, what+" Roots", got.Roots, want.Roots)
}

func cacheSims(n int) (cached, ref *pram.Sim) {
	procs := pram.ProcsFor(n)
	cached = pram.New(procs, pram.WithWorkers(2), pram.WithGrain(64))
	ref = pram.New(procs, pram.WithWorkers(2), pram.WithGrain(64))
	return cached, ref
}

// TestTourCacheReuse acquires the same tree repeatedly under changing
// seeds and checks values and counters against fresh builds.
func TestTourCacheReuse(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 3))
	for _, n := range []int{5, 120, 900} {
		forest := randomForest(rng, n)
		cs, ref := cacheSims(n)
		cs.Scratch().SetDebug(true)
		for trial, seed := range []uint64{9, 9, 40, 9, 40, 40} {
			tour, owned := AcquireTourIx(cs, forest, seed)
			if owned {
				t.Fatalf("n=%d trial %d: expected a cache-served tour", n, trial)
			}
			want := TourBinary(ref, forest, seed)
			toursEq(t, "cached", tour, want)
			a, b := cs.Stats(), ref.Stats()
			if a.Time != b.Time || a.Work != b.Work || a.Phases != b.Phases {
				t.Fatalf("n=%d trial %d (seed %d): cached stats %+v != fresh stats %+v",
					n, trial, seed, a, b)
			}
			want.Release(ref)
		}
		cs.Close()
		ref.Close()
	}
}

// TestTourCachePatchSwap mutates the tree with recorded subtree swaps
// (the Step 6 exchange pattern) and checks the walk-refresh route.
func TestTourCachePatchSwap(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 44))
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.IntN(400)
		forest := randomForest(rng, n)
		cs, ref := cacheSims(n)
		if _, owned := AcquireTourIx(cs, forest, 5); owned {
			t.Fatal("expected the build to be cached")
		}
		{
			w := TourBinary(ref, forest, 5)
			w.Release(ref)
		}

		// A few swaps of non-root, non-ancestor-related nodes: swapping two
		// leaves-of-distinct-subtrees positions is always structure-safe.
		for sw := 0; sw < 5; sw++ {
			x, y := -1, -1
			for tries := 0; tries < 200; tries++ {
				a, b := rng.IntN(n), rng.IntN(n)
				if a == b || forest.Parent[a] < 0 || forest.Parent[b] < 0 {
					continue
				}
				if !forest.IsLeaf(a) || !forest.IsLeaf(b) || forest.Parent[a] == b || forest.Parent[b] == a {
					continue
				}
				x, y = a, b
				break
			}
			if x < 0 {
				break
			}
			swapTreePositions(forest, x, y)
			PatchTourSwapIx(cs, forest, x, y)
		}

		tour, owned := AcquireTourIx(cs, forest, 12)
		if owned {
			t.Fatal("expected a cache-served tour after patching")
		}
		want := TourBinary(ref, forest, 12)
		toursEq(t, "patched", tour, want)
		a, b := cs.Stats(), ref.Stats()
		if a.Time != b.Time || a.Work != b.Work || a.Phases != b.Phases {
			t.Fatalf("trial %d: patched stats %+v != fresh stats %+v", trial, a, b)
		}
		want.Release(ref)
		cs.Close()
		ref.Close()
	}
}

// swapTreePositions is the test-local mirror of the pipeline's
// swapPositions: exchange the tree positions of x and y, subtrees
// carried along.
func swapTreePositions(t BinTree, x, y int) {
	px, py := t.Parent[x], t.Parent[y]
	xLeft := px >= 0 && t.Left[px] == x
	yLeft := py >= 0 && t.Left[py] == y
	if px >= 0 {
		if xLeft {
			t.Left[px] = y
		} else {
			t.Right[px] = y
		}
	}
	if py >= 0 {
		if yLeft {
			t.Left[py] = x
		} else {
			t.Right[py] = x
		}
	}
	t.Parent[x], t.Parent[y] = py, px
}

// TestTourCacheTouch covers the stale route: arbitrary child swaps
// (MakeLeftist's mutation) followed by TouchCachedTourIx.
func TestTourCacheTouch(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 66))
	n := 300
	forest := randomForest(rng, n)
	cs, ref := cacheSims(n)
	defer cs.Close()
	defer ref.Close()
	if _, owned := AcquireTourIx(cs, forest, 1); owned {
		t.Fatal("expected the build to be cached")
	}
	{
		w := TourBinary(ref, forest, 1)
		w.Release(ref)
	}
	for v := 0; v < n; v++ {
		if forest.Left[v] >= 0 && forest.Right[v] >= 0 && rng.IntN(2) == 0 {
			forest.Left[v], forest.Right[v] = forest.Right[v], forest.Left[v]
		}
	}
	TouchCachedTourIx(cs, forest)
	tour, owned := AcquireTourIx(cs, forest, 2)
	if owned {
		t.Fatal("expected a cache-served tour after touch")
	}
	want := TourBinary(ref, forest, 2)
	toursEq(t, "touched", tour, want)
	a, b := cs.Stats(), ref.Stats()
	if a.Time != b.Time || a.Work != b.Work || a.Phases != b.Phases {
		t.Fatalf("touched stats %+v != fresh stats %+v", a, b)
	}
	want.Release(ref)
}

// TestTourCacheDropOnRelease pins the lifetime rule: releasing a tree
// through ReleaseBinTreeIx drops its cache entry, so a tree whose
// buffers get recycled can never alias a stale tour.
func TestTourCacheDropOnRelease(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 88))
	n := 200
	s := pram.New(pram.ProcsFor(n), pram.WithWorkers(2), pram.WithGrain(64))
	defer s.Close()
	s.Scratch().SetDebug(true)

	forest := GrabBinTree(s, n)
	for v := 1; v < n; v++ {
		p := rng.IntN(v)
		if forest.Left[p] < 0 {
			forest.Left[p] = v
		} else if forest.Right[p] < 0 {
			forest.Right[p] = v
		} else {
			continue
		}
		forest.Parent[v] = p
	}
	if _, owned := AcquireTourIx(s, forest, 3); owned {
		t.Fatal("expected the build to be cached")
	}
	ReleaseBinTreeIx(s, forest) // must drop the entry (else SetDebug panics later)

	// A new tree likely reuses the released buffers; the cache must treat
	// it as unseen.
	other := GrabBinTree(s, n)
	for v := 1; v < n; v++ { // a left spine: different structure, same size
		other.Left[v-1] = v
		other.Parent[v] = v - 1
	}
	tour, owned := AcquireTourIx(s, other, 3)
	ref := pram.New(pram.ProcsFor(n), pram.WithWorkers(2), pram.WithGrain(64))
	defer ref.Close()
	want := TourBinary(ref, other, 3)
	toursEq(t, "recycled", tour, want)
	if owned {
		tour.Release(s)
	}
	want.Release(ref)
	ReleaseBinTreeIx(s, other)
}
