package par

import (
	"math/rand/v2"
	"testing"

	"pathcover/internal/pram"
)

// The allocation-regression suite: with a reused Sim (pool + arena), the
// hot-path primitives must run allocation-free in steady state — the
// tentpole claim of the persistent-executor rewrite. Each test warms the
// arena with one run, then measures, releasing results each iteration
// exactly as the pipeline does.

func allocSim() *pram.Sim {
	// Multi-worker so the persistent pool (not just the inline path) is
	// what gets measured.
	return pram.New(pram.ProcsFor(1<<15), pram.WithWorkers(2), pram.WithGrain(1024))
}

func TestScanIntAllocFree(t *testing.T) {
	s := allocSim()
	defer s.Close()
	in := make([]int, 1<<15)
	for i := range in {
		in[i] = i % 7
	}
	run := func() {
		out, _ := ScanInt(s, in)
		pram.Release(s, out)
	}
	run() // warm the arena and cached phase bodies
	if allocs := testing.AllocsPerRun(20, run); allocs > 2 {
		t.Errorf("ScanInt allocates %.1f objects/op in steady state, want <= 2", allocs)
	}
}

func TestMaxScanIntAllocFree(t *testing.T) {
	s := allocSim()
	defer s.Close()
	in := make([]int, 1<<15)
	for i := range in {
		in[i] = (i * 31) % 1000
	}
	run := func() {
		pram.Release(s, MaxScanInt(s, in))
	}
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs > 2 {
		t.Errorf("MaxScanInt allocates %.1f objects/op in steady state, want <= 2", allocs)
	}
}

func TestRankOptAllocFree(t *testing.T) {
	s := allocSim()
	defer s.Close()
	n := 1 << 15
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[i] = i + 1
	}
	next[n-1] = -1
	run := func() {
		dist, last := RankOpt(s, next, 12345)
		pram.Release(s, dist)
		pram.Release(s, last)
	}
	run()
	if allocs := testing.AllocsPerRun(10, run); allocs > 2 {
		t.Errorf("RankOpt allocates %.1f objects/op in steady state, want <= 2", allocs)
	}
}

func TestMatchBracketsAllocFree(t *testing.T) {
	s := allocSim()
	defer s.Close()
	n := 1 << 15
	rng := rand.New(rand.NewPCG(9, 9))
	open := make([]bool, n)
	for i := range open {
		open[i] = rng.IntN(2) == 0
	}
	run := func() {
		pram.Release(s, MatchBrackets(s, open))
	}
	run()
	if allocs := testing.AllocsPerRun(10, run); allocs > 2 {
		t.Errorf("MatchBrackets allocates %.1f objects/op in steady state, want <= 2", allocs)
	}
}

// The narrow (int32) kernels keep their own per-width cached state and
// size-classed freelists, so they are held to the same steady-state
// zero-allocation bar as the int kernels.

func TestScanIxNarrowAllocFree(t *testing.T) {
	s := allocSim()
	defer s.Close()
	in := make([]int32, 1<<15)
	for i := range in {
		in[i] = int32(i % 7)
	}
	run := func() {
		out, _ := ScanIx(s, in)
		pram.Release(s, out)
	}
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs > 2 {
		t.Errorf("ScanIx[int32] allocates %.1f objects/op in steady state, want <= 2", allocs)
	}
}

func TestMaxScanIxNarrowAllocFree(t *testing.T) {
	s := allocSim()
	defer s.Close()
	in := make([]int32, 1<<15)
	for i := range in {
		in[i] = int32((i * 31) % 1000)
	}
	run := func() {
		pram.Release(s, MaxScanIx(s, in))
	}
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs > 2 {
		t.Errorf("MaxScanIx[int32] allocates %.1f objects/op in steady state, want <= 2", allocs)
	}
}

func TestRankOptIxNarrowAllocFree(t *testing.T) {
	s := allocSim()
	defer s.Close()
	n := 1 << 15
	next := make([]int32, n)
	for i := 0; i < n-1; i++ {
		next[i] = int32(i + 1)
	}
	next[n-1] = -1
	run := func() {
		dist, last := RankOptIx(s, next, 12345)
		pram.Release(s, dist)
		pram.Release(s, last)
	}
	run()
	if allocs := testing.AllocsPerRun(10, run); allocs > 2 {
		t.Errorf("RankOptIx[int32] allocates %.1f objects/op in steady state, want <= 2", allocs)
	}
}

func TestMatchBracketsIxNarrowAllocFree(t *testing.T) {
	s := allocSim()
	defer s.Close()
	n := 1 << 15
	rng := rand.New(rand.NewPCG(9, 9))
	open := make([]bool, n)
	for i := range open {
		open[i] = rng.IntN(2) == 0
	}
	run := func() {
		pram.Release(s, MatchBracketsIx[int32](s, open))
	}
	run()
	if allocs := testing.AllocsPerRun(10, run); allocs > 2 {
		t.Errorf("MatchBracketsIx[int32] allocates %.1f objects/op in steady state, want <= 2", allocs)
	}
}

// TestFusedPrimitivesAllocFree holds the fused sequential bodies (the
// small-n cutover route) to the same bar.
func TestFusedPrimitivesAllocFree(t *testing.T) {
	s := pram.New(pram.ProcsFor(1<<15), pram.WithWorkers(2), pram.WithSeqCutover(1<<30))
	defer s.Close()
	n := 1 << 13
	in := make([]int32, n)
	keep := make([]bool, n)
	next := make([]int32, n)
	for i := range in {
		in[i] = int32(i % 5)
		keep[i] = i%3 == 0
		next[i] = int32(i + 1)
	}
	next[n-1] = -1
	run := func() {
		out, _ := ScanIx(s, in)
		pram.Release(s, out)
		pram.Release(s, IndexPackIx[int32](s, keep))
		dist, last := RankWeightedIx(s, next, nil)
		pram.Release(s, dist)
		pram.Release(s, last)
	}
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs > 2 {
		t.Errorf("fused primitives allocate %.1f objects/op in steady state, want <= 2", allocs)
	}
}

// The fused data-dependent bodies (the charge-replay engines for
// RankOpt, the Euler tour and its numberings, bracket matching and tree
// contraction) are held to the same steady-state zero-allocation bar as
// the data-independent ones, in both index widths. fusedDataSim forces
// the fused routes everywhere.
func fusedDataSim() *pram.Sim {
	return pram.New(pram.ProcsFor(1<<14), pram.WithWorkers(2), pram.WithSeqCutover(1<<30))
}

func fusedRankOptAlloc[I Ix](t *testing.T) {
	t.Helper()
	s := fusedDataSim()
	defer s.Close()
	n := 1 << 14
	next := make([]I, n)
	rng := rand.New(rand.NewPCG(2, 4))
	perm := rng.Perm(n)
	for i := 0; i < n-1; i++ {
		next[perm[i]] = I(perm[i+1])
	}
	next[perm[n-1]] = -1
	run := func() {
		dist, last := RankOptIx(s, next, 77)
		pram.Release(s, dist)
		pram.Release(s, last)
	}
	run()
	if allocs := testing.AllocsPerRun(10, run); allocs > 2 {
		t.Errorf("fused RankOptIx allocates %.1f objects/op in steady state, want <= 2", allocs)
	}
}

func TestFusedRankOptAllocFree(t *testing.T)       { fusedRankOptAlloc[int](t) }
func TestFusedRankOptNarrowAllocFree(t *testing.T) { fusedRankOptAlloc[int32](t) }
func TestFusedRankOptInt16AllocFree(t *testing.T)  { fusedRankOptAlloc[int16](t) }

func fusedTourAlloc[I Ix](t *testing.T) {
	t.Helper()
	s := fusedDataSim()
	defer s.Close()
	n := 1 << 13
	rng := rand.New(rand.NewPCG(3, 5))
	tree := NewBinTreeIx[I](n)
	for v := 1; v < n; v++ {
		p := rng.IntN(v)
		if tree.Left[p] < 0 {
			tree.Left[p] = I(v)
		} else if tree.Right[p] < 0 {
			tree.Right[p] = I(v)
		} else {
			continue
		}
		tree.Parent[v] = I(p)
	}
	run := func() {
		tour := TourBinaryIx(s, tree, 5)
		ranks, _ := tour.LeafRanks(s, tree)
		pram.Release(s, ranks)
		size, leaves := tour.SubtreeCounts(s, tree)
		pram.Release(s, size)
		pram.Release(s, leaves)
		tour.Release(s)
	}
	run()
	// One *TourIx header escapes per build; everything else must recycle.
	if allocs := testing.AllocsPerRun(10, run); allocs > 3 {
		t.Errorf("fused TourBinaryIx+numberings allocate %.1f objects/op in steady state, want <= 3", allocs)
	}
}

func TestFusedTourAllocFree(t *testing.T)       { fusedTourAlloc[int](t) }
func TestFusedTourNarrowAllocFree(t *testing.T) { fusedTourAlloc[int32](t) }
func TestFusedTourInt16AllocFree(t *testing.T)  { fusedTourAlloc[int16](t) }

func fusedBracketsAlloc[I Ix](t *testing.T) {
	t.Helper()
	s := fusedDataSim()
	defer s.Close()
	n := 1 << 14
	rng := rand.New(rand.NewPCG(6, 6))
	open := make([]bool, n)
	for i := range open {
		open[i] = rng.IntN(2) == 0
	}
	run := func() {
		pram.Release(s, MatchBracketsIx[I](s, open))
	}
	run()
	if allocs := testing.AllocsPerRun(10, run); allocs > 2 {
		t.Errorf("fused MatchBracketsIx allocates %.1f objects/op in steady state, want <= 2", allocs)
	}
}

func TestFusedMatchBracketsAllocFree(t *testing.T)       { fusedBracketsAlloc[int](t) }
func TestFusedMatchBracketsNarrowAllocFree(t *testing.T) { fusedBracketsAlloc[int32](t) }
func TestFusedMatchBracketsInt16AllocFree(t *testing.T)  { fusedBracketsAlloc[int16](t) }

func fusedEvalTreeAlloc[I Ix](t *testing.T) {
	t.Helper()
	s := fusedDataSim()
	defer s.Close()
	m := 1 << 12
	n := 2*m - 1
	tree := NewBinTreeIx[I](n)
	op := make([]NodeOp, n)
	leafVal := make([]int64, n)
	// A left-leaning chain of OpSum nodes over m unit leaves.
	inner := m - 1
	for v := 0; v < inner; v++ {
		var l I
		if v+1 < inner {
			l = I(v + 1)
		} else {
			l = I(inner)
		}
		r := I(inner + 1 + v)
		tree.Left[v], tree.Right[v] = l, r
		tree.Parent[l], tree.Parent[r] = I(v), I(v)
		op[v] = NodeOp{Kind: OpSum}
	}
	for v := inner; v < n; v++ {
		leafVal[v] = 1
	}
	s2 := fusedDataSim()
	defer s2.Close()
	tour := TourBinaryIx(s2, tree, 1)
	ranks, _ := tour.LeafRanks(s2, tree)
	run := func() {
		pram.Release(s, EvalTreeIx(s, tree, op, leafVal, ranks))
	}
	run()
	if allocs := testing.AllocsPerRun(10, run); allocs > 2 {
		t.Errorf("fused EvalTreeIx allocates %.1f objects/op in steady state, want <= 2", allocs)
	}
}

func TestFusedEvalTreeAllocFree(t *testing.T)       { fusedEvalTreeAlloc[int](t) }
func TestFusedEvalTreeNarrowAllocFree(t *testing.T) { fusedEvalTreeAlloc[int32](t) }
func TestFusedEvalTreeInt16AllocFree(t *testing.T)  { fusedEvalTreeAlloc[int16](t) }

// The int16 kernels on the dispatched (phase-structured) route, at a
// size inside their serving envelope and with the fused cutover
// disabled so the worker pool is what gets measured.
func int16AllocSim() *pram.Sim {
	return pram.New(pram.ProcsFor(3270), pram.WithWorkers(2), pram.WithGrain(256), pram.WithSeqCutover(-1))
}

func TestScanIxInt16AllocFree(t *testing.T) {
	s := int16AllocSim()
	defer s.Close()
	in := make([]int16, 3270)
	for i := range in {
		in[i] = int16(i % 7) // total ≈ 9.8K, inside int16
	}
	run := func() {
		out, _ := ScanIx(s, in)
		pram.Release(s, out)
	}
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs > 2 {
		t.Errorf("ScanIx[int16] allocates %.1f objects/op in steady state, want <= 2", allocs)
	}
}

func TestRankOptIxInt16AllocFree(t *testing.T) {
	s := int16AllocSim()
	defer s.Close()
	n := 3270
	next := make([]int16, n)
	for i := 0; i < n-1; i++ {
		next[i] = int16(i + 1)
	}
	next[n-1] = -1
	run := func() {
		dist, last := RankOptIx(s, next, 12345)
		pram.Release(s, dist)
		pram.Release(s, last)
	}
	run()
	if allocs := testing.AllocsPerRun(10, run); allocs > 2 {
		t.Errorf("RankOptIx[int16] allocates %.1f objects/op in steady state, want <= 2", allocs)
	}
}

func TestMatchBracketsIxInt16AllocFree(t *testing.T) {
	s := int16AllocSim()
	defer s.Close()
	rng := rand.New(rand.NewPCG(9, 9))
	open := make([]bool, 3270)
	for i := range open {
		open[i] = rng.IntN(2) == 0
	}
	run := func() {
		pram.Release(s, MatchBracketsIx[int16](s, open))
	}
	run()
	if allocs := testing.AllocsPerRun(10, run); allocs > 2 {
		t.Errorf("MatchBracketsIx[int16] allocates %.1f objects/op in steady state, want <= 2", allocs)
	}
}

// TestPrimitivesMatchSerialAfterReuse drives the pooled primitives
// through many iterations on one Sim — the buffer-recycling regime — and
// cross-checks every iteration against the serial reference, guarding
// against stale-buffer reuse bugs (a cleared-vs-recycled mix-up would
// show up here, not in one-shot tests).
func TestPrimitivesMatchSerialAfterReuse(t *testing.T) {
	s := pram.New(pram.ProcsFor(4096), pram.WithWorkers(4), pram.WithGrain(64))
	defer s.Close()
	s.Scratch().SetDebug(true)
	ser := pram.NewSerial()
	rng := rand.New(rand.NewPCG(4, 2))
	for iter := 0; iter < 25; iter++ {
		n := 512 + rng.IntN(4096)
		in := make([]int, n)
		open := make([]bool, n)
		next := make([]int, n)
		perm := rng.Perm(n)
		for i := range in {
			in[i] = rng.IntN(100)
			open[i] = rng.IntN(2) == 0
			if i < n-1 {
				next[perm[i]] = perm[i+1]
			}
		}
		next[perm[n-1]] = -1

		out, total := ScanInt(s, in)
		wantOut, wantTotal := ScanInt(ser, in)
		if total != wantTotal {
			t.Fatalf("iter %d: ScanInt total %d want %d", iter, total, wantTotal)
		}
		for i := range out {
			if out[i] != wantOut[i] {
				t.Fatalf("iter %d: ScanInt[%d] = %d want %d", iter, i, out[i], wantOut[i])
			}
		}
		pram.Release(s, out)

		match := MatchBrackets(s, open)
		want := make([]int, n)
		matchSerial(open, want)
		for i := range match {
			if match[i] != want[i] {
				t.Fatalf("iter %d: MatchBrackets[%d] = %d want %d", iter, i, match[i], want[i])
			}
		}
		pram.Release(s, match)

		dist, last := RankOpt(s, next, uint64(iter))
		wd, wl := RankOpt(ser, next, uint64(iter))
		for i := range dist {
			if dist[i] != wd[i] || last[i] != wl[i] {
				t.Fatalf("iter %d: RankOpt[%d] = (%d,%d) want (%d,%d)",
					iter, i, dist[i], last[i], wd[i], wl[i])
			}
		}
		pram.Release(s, dist)
		pram.Release(s, last)
	}
}
