package par

import "pathcover/internal/pram"

// Segmented scans: prefix operations that restart at segment
// boundaries, the standard building block for per-group ranking (used
// by Step 6 of the path-cover pipeline to rank illegal inserts and
// legal dummies within each 1-node's block). The segmented monoid
// (value, reset) is associative, so one ordinary Scan does the job —
// O(log n) time, O(n) work.

// SegItem pairs a value with a segment-start flag.
type SegItem struct {
	Val   int
	Start bool
}

func segAdd(a, b SegItem) SegItem {
	if b.Start {
		return b
	}
	return SegItem{Val: a.Val + b.Val, Start: a.Start}
}

// SegmentedSumInclusive computes, for every position, the sum of values
// from its segment's start through itself. starts[i] marks the first
// element of each segment (position 0 is implicitly a start).
func SegmentedSumInclusive(s *pram.Sim, vals []int, starts []bool) []int {
	n := len(vals)
	items := pram.GrabNoClear[SegItem](s, n)
	s.ParallelForRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			items[i] = SegItem{Val: vals[i], Start: starts[i] || i == 0}
		}
	})
	scanned := InclusiveScan(s, items, SegItem{}, segAdd)
	out := pram.GrabNoClear[int](s, n)
	s.ParallelForRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = scanned[i].Val
		}
	})
	pram.Release(s, items)
	pram.Release(s, scanned)
	return out
}

// SegmentedRank returns, for each flagged element, the number of
// flagged elements before it within its segment (its 0-based rank), and
// -1 for unflagged elements.
func SegmentedRank(s *pram.Sim, flagged []bool, starts []bool) []int {
	n := len(flagged)
	vals := pram.GrabNoClear[int](s, n)
	s.ParallelForRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if flagged[i] {
				vals[i] = 1
			} else {
				vals[i] = 0
			}
		}
	})
	sums := SegmentedSumInclusive(s, vals, starts)
	out := pram.GrabNoClear[int](s, n)
	s.ParallelForRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if flagged[i] {
				out[i] = sums[i] - 1
			} else {
				out[i] = -1
			}
		}
	})
	pram.Release(s, vals)
	pram.Release(s, sums)
	return out
}
