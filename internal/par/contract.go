package par

import "pathcover/internal/pram"

// Tree contraction (Abrahamson–Dadoun–Kirkpatrick–Przytycka style) for
// expression evaluation over binary trees, used by Step 3 of the paper to
// evaluate Lin et al.'s recurrence
//
//	p(u) = p(v) + p(w)          at a 0-node
//	p(u) = max(p(v) - L(w), 1)  at a 1-node
//
// for every internal node in O(log n) time and O(n) work.
//
// The unary function class closed under the partial applications of both
// operators is f(x) = max(x + a, b) with saturating a. Raking a leaf
// partially applies its parent's operator and composes the result onto
// the sibling; the rake schedule (odd-numbered left-child leaves, then
// odd-numbered right-child leaves, then renumber) guarantees
// conflict-free parallel rounds. Recording every rake and replaying the
// record backwards recovers the value of every internal node, not just
// the root.

// OpKind identifies the operator at an internal expression node.
type OpKind uint8

const (
	// OpSum combines children as left + right (the 0-node rule).
	OpSum OpKind = iota
	// OpJoinClamp combines children as max(left - C, 1), ignoring the
	// right child's value (the 1-node rule: C = L(w) is a constant of the
	// node, not a child value).
	OpJoinClamp
)

// NodeOp is the operator of one internal node.
type NodeOp struct {
	Kind OpKind
	C    int64
}

const negInf = int64(-1) << 46

func satAdd(a, b int64) int64 {
	s := a + b
	if s < negInf {
		return negInf
	}
	return s
}

// MaxPlus is the unary function f(x) = max(x + A, B). The identity is
// {0, negInf}; constants are {negInf, c}.
type MaxPlus struct{ A, B int64 }

// idMaxPlus is the identity function.
func idMaxPlus() MaxPlus { return MaxPlus{0, negInf} }

// Apply evaluates the function.
func (f MaxPlus) Apply(x int64) int64 {
	v := satAdd(x, f.A)
	if v < f.B {
		return f.B
	}
	return v
}

// then returns g∘f: first f, then g.
func (f MaxPlus) then(g MaxPlus) MaxPlus {
	b := satAdd(f.B, g.A)
	if b < g.B {
		b = g.B
	}
	return MaxPlus{A: satAdd(f.A, g.A), B: b}
}

// partial returns the unary function of the unknown child when the other
// child's value is known.
func partial(op NodeOp, knownLeft bool, known int64) MaxPlus {
	switch op.Kind {
	case OpSum:
		return MaxPlus{A: known, B: negInf}
	case OpJoinClamp:
		if knownLeft {
			// value is already determined: max(known - C, 1)
			v := known - op.C
			if v < 1 {
				v = 1
			}
			return MaxPlus{A: negInf, B: v}
		}
		// function of the left child
		return MaxPlus{A: -op.C, B: 1}
	}
	panic("par: unknown OpKind")
}

// applyOp evaluates an operator on two known children.
func applyOp(op NodeOp, left, right int64) int64 {
	switch op.Kind {
	case OpSum:
		return left + right
	case OpJoinClamp:
		v := left - op.C
		if v < 1 {
			v = 1
		}
		return v
	}
	panic("par: unknown OpKind")
}

type rakeRec[I Ix] struct {
	x, p, sib I
	fx, fs    MaxPlus
	xLeft     bool
}

// EvalTree evaluates the expression tree t — op[v] for internal nodes,
// leafVal[v] for leaves — and returns the value of every node. t must be
// a single binary tree in which every internal node has exactly two
// children. leafRank must number the leaves 0..m-1 left to right (as
// produced by Tour.LeafRanks).
func EvalTree(s *pram.Sim, t BinTree, op []NodeOp, leafVal []int64, leafRank []int) []int64 {
	return EvalTreeIx(s, t, op, leafVal, leafRank)
}

// EvalTreeIx is the width-generic EvalTree (see Ix): the mutable link
// structure and the rake records ride on the narrow width; the
// expression values themselves stay int64.
func EvalTreeIx[I Ix](s *pram.Sim, t BinTreeIx[I], op []NodeOp, leafVal []int64, leafRank []I) []int64 {
	n := t.Len()
	val := pram.Grab[int64](s, n)
	if n == 0 {
		return val
	}
	// Working copies of the mutable link structure.
	left := pram.GrabNoClear[I](s, n)
	right := pram.GrabNoClear[I](s, n)
	parent := pram.GrabNoClear[I](s, n)
	f := pram.GrabNoClear[MaxPlus](s, n)
	num := pram.Grab[I](s, n)
	isLeaf := pram.GrabNoClear[bool](s, n)
	s.ForCostRange(n, 2, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			left[v], right[v], parent[v] = t.Left[v], t.Right[v], t.Parent[v]
			f[v] = idMaxPlus()
			isLeaf[v] = t.IsLeaf(v)
			if isLeaf[v] {
				num[v] = leafRank[v] + 1 // 1-based for the odd/even schedule
				val[v] = leafVal[v]
			}
		}
	})
	leaves := IndexPackIx[I](s, isLeaf)

	var rounds [][]rakeRec[I]
	rakeSub := func(wantLeft bool) {
		cand := pram.Grab[bool](s, len(leaves))
		s.ParallelFor(len(leaves), func(k int) {
			x := leaves[k]
			p := parent[x]
			if num[x]%2 == 1 && p >= 0 {
				if wantLeft {
					cand[k] = left[p] == x
				} else {
					cand[k] = right[p] == x
				}
			}
		})
		sel := PackIx[I](s, leaves, cand)
		pram.Release(s, cand)
		if len(sel) == 0 {
			pram.Release(s, sel)
			return
		}
		recs := pram.GrabNoClear[rakeRec[I]](s, len(sel))
		s.ForCost(len(sel), 4, func(k int) {
			x := sel[k]
			p := parent[x]
			var sib I
			if left[p] == x {
				sib = right[p]
			} else {
				sib = left[p]
			}
			recs[k] = rakeRec[I]{x: x, p: p, sib: sib, fx: f[x], fs: f[sib], xLeft: left[p] == x}
			// Splice p out: sib takes p's place under p's parent.
			g := parent[p]
			if g >= 0 {
				if left[g] == p {
					left[g] = sib
				} else {
					right[g] = sib
				}
			}
			parent[sib] = g
			a := f[x].Apply(val[x])
			f[sib] = f[sib].then(partial(op[p], left[p] == x, a)).then(f[p])
		})
		rounds = append(rounds, recs)
		pram.Release(s, sel)
	}

	guard := 2
	for v := 1; v < n; v <<= 1 {
		guard += 2
	}
	for len(leaves) > 1 && guard > 0 {
		guard--
		rakeSub(true)
		rakeSub(false)
		// All odd-numbered leaves are gone; halve the even numbers and
		// compact the leaf set.
		live := pram.Grab[bool](s, len(leaves))
		s.ParallelFor(len(leaves), func(k int) {
			x := leaves[k]
			if num[x]%2 == 0 {
				num[x] /= 2
				live[k] = true
			}
		})
		next := PackIx[I](s, leaves, live)
		pram.Release(s, live)
		pram.Release(s, leaves)
		leaves = next
	}

	// Replay the rakes backwards to assign every internal node its value.
	for r := len(rounds) - 1; r >= 0; r-- {
		recs := rounds[r]
		s.ForCostRange(len(recs), 3, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				rec := recs[k]
				a := rec.fx.Apply(val[rec.x])
				b := rec.fs.Apply(val[rec.sib])
				if rec.xLeft {
					val[rec.p] = applyOp(op[rec.p], a, b)
				} else {
					val[rec.p] = applyOp(op[rec.p], b, a)
				}
			}
		})
		pram.Release(s, recs)
	}
	pram.Release(s, left)
	pram.Release(s, right)
	pram.Release(s, parent)
	pram.Release(s, f)
	pram.Release(s, num)
	pram.Release(s, isLeaf)
	pram.Release(s, leaves)
	return val
}
