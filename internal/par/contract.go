package par

import "pathcover/internal/pram"

// Tree contraction (Abrahamson–Dadoun–Kirkpatrick–Przytycka style) for
// expression evaluation over binary trees, used by Step 3 of the paper to
// evaluate Lin et al.'s recurrence
//
//	p(u) = p(v) + p(w)          at a 0-node
//	p(u) = max(p(v) - L(w), 1)  at a 1-node
//
// for every internal node in O(log n) time and O(n) work.
//
// The unary function class closed under the partial applications of both
// operators is f(x) = max(x + a, b) with saturating a. Raking a leaf
// partially applies its parent's operator and composes the result onto
// the sibling; the rake schedule (odd-numbered left-child leaves, then
// odd-numbered right-child leaves, then renumber) guarantees
// conflict-free parallel rounds. Recording every rake and replaying the
// record backwards recovers the value of every internal node, not just
// the root.

// OpKind identifies the operator at an internal expression node.
type OpKind uint8

const (
	// OpSum combines children as left + right (the 0-node rule).
	OpSum OpKind = iota
	// OpJoinClamp combines children as max(left - C, 1), ignoring the
	// right child's value (the 1-node rule: C = L(w) is a constant of the
	// node, not a child value).
	OpJoinClamp
)

// NodeOp is the operator of one internal node.
type NodeOp struct {
	Kind OpKind
	C    int64
}

const negInf = int64(-1) << 46

func satAdd(a, b int64) int64 {
	s := a + b
	if s < negInf {
		return negInf
	}
	return s
}

// MaxPlus is the unary function f(x) = max(x + A, B). The identity is
// {0, negInf}; constants are {negInf, c}.
type MaxPlus struct{ A, B int64 }

// idMaxPlus is the identity function.
func idMaxPlus() MaxPlus { return MaxPlus{0, negInf} }

// Apply evaluates the function.
func (f MaxPlus) Apply(x int64) int64 {
	v := satAdd(x, f.A)
	if v < f.B {
		return f.B
	}
	return v
}

// then returns g∘f: first f, then g.
func (f MaxPlus) then(g MaxPlus) MaxPlus {
	b := satAdd(f.B, g.A)
	if b < g.B {
		b = g.B
	}
	return MaxPlus{A: satAdd(f.A, g.A), B: b}
}

// partial returns the unary function of the unknown child when the other
// child's value is known.
func partial(op NodeOp, knownLeft bool, known int64) MaxPlus {
	switch op.Kind {
	case OpSum:
		return MaxPlus{A: known, B: negInf}
	case OpJoinClamp:
		if knownLeft {
			// value is already determined: max(known - C, 1)
			v := known - op.C
			if v < 1 {
				v = 1
			}
			return MaxPlus{A: negInf, B: v}
		}
		// function of the left child
		return MaxPlus{A: -op.C, B: 1}
	}
	panic("par: unknown OpKind")
}

// applyOp evaluates an operator on two known children.
func applyOp(op NodeOp, left, right int64) int64 {
	switch op.Kind {
	case OpSum:
		return left + right
	case OpJoinClamp:
		v := left - op.C
		if v < 1 {
			v = 1
		}
		return v
	}
	panic("par: unknown OpKind")
}

type rakeRec[I Ix] struct {
	x, p, sib I
	fx, fs    MaxPlus
	xLeft     bool
}

// EvalTree evaluates the expression tree t — op[v] for internal nodes,
// leafVal[v] for leaves — and returns the value of every node. t must be
// a single binary tree in which every internal node has exactly two
// children. leafRank must number the leaves 0..m-1 left to right (as
// produced by Tour.LeafRanks).
func EvalTree(s *pram.Sim, t BinTree, op []NodeOp, leafVal []int64, leafRank []int) []int64 {
	return EvalTreeIx(s, t, op, leafVal, leafRank)
}

// EvalTreeIx is the width-generic EvalTree (see Ix): the mutable link
// structure and the rake records ride on the narrow width; the
// expression values themselves stay int64.
func EvalTreeIx[I Ix](s *pram.Sim, t BinTreeIx[I], op []NodeOp, leafVal []int64, leafRank []I) []int64 {
	n := t.Len()
	val := pram.Grab[int64](s, n)
	if n == 0 {
		return val
	}
	if s.PreferSequential(n) {
		// Fused sequential route: one post-order sweep evaluates every
		// node exactly (the contraction algebra is exact integer
		// arithmetic, so the values agree bit for bit), and a link-only
		// replay of the rake schedule — whose round structure depends on
		// the tree shape and leaf numbering — re-issues the identical
		// charges.
		evalTreeSeq(s, t, op, leafVal, val)
		chargeEvalTree(s, t, leafRank)
		return val
	}
	// Working copies of the mutable link structure.
	left := pram.GrabNoClear[I](s, n)
	right := pram.GrabNoClear[I](s, n)
	parent := pram.GrabNoClear[I](s, n)
	f := pram.GrabNoClear[MaxPlus](s, n)
	num := pram.Grab[I](s, n)
	isLeaf := pram.GrabNoClear[bool](s, n)
	s.ForCostRange(n, 2, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			left[v], right[v], parent[v] = t.Left[v], t.Right[v], t.Parent[v]
			f[v] = idMaxPlus()
			isLeaf[v] = t.IsLeaf(v)
			if isLeaf[v] {
				num[v] = leafRank[v] + 1 // 1-based for the odd/even schedule
				val[v] = leafVal[v]
			}
		}
	})
	leaves := IndexPackIx[I](s, isLeaf)

	var rounds [][]rakeRec[I]
	rakeSub := func(wantLeft bool) {
		cand := pram.Grab[bool](s, len(leaves))
		s.ParallelFor(len(leaves), func(k int) {
			x := leaves[k]
			p := parent[x]
			if num[x]%2 == 1 && p >= 0 {
				if wantLeft {
					cand[k] = left[p] == x
				} else {
					cand[k] = right[p] == x
				}
			}
		})
		sel := PackIx[I](s, leaves, cand)
		pram.Release(s, cand)
		if len(sel) == 0 {
			pram.Release(s, sel)
			return
		}
		recs := pram.GrabNoClear[rakeRec[I]](s, len(sel))
		s.ForCost(len(sel), 4, func(k int) {
			x := sel[k]
			p := parent[x]
			var sib I
			if left[p] == x {
				sib = right[p]
			} else {
				sib = left[p]
			}
			recs[k] = rakeRec[I]{x: x, p: p, sib: sib, fx: f[x], fs: f[sib], xLeft: left[p] == x}
			// Splice p out: sib takes p's place under p's parent.
			g := parent[p]
			if g >= 0 {
				if left[g] == p {
					left[g] = sib
				} else {
					right[g] = sib
				}
			}
			parent[sib] = g
			a := f[x].Apply(val[x])
			f[sib] = f[sib].then(partial(op[p], left[p] == x, a)).then(f[p])
		})
		rounds = append(rounds, recs)
		pram.Release(s, sel)
	}

	guard := 2
	for v := 1; v < n; v <<= 1 {
		guard += 2
	}
	for len(leaves) > 1 && guard > 0 {
		guard--
		rakeSub(true)
		rakeSub(false)
		// All odd-numbered leaves are gone; halve the even numbers and
		// compact the leaf set.
		live := pram.Grab[bool](s, len(leaves))
		s.ParallelFor(len(leaves), func(k int) {
			x := leaves[k]
			if num[x]%2 == 0 {
				num[x] /= 2
				live[k] = true
			}
		})
		next := PackIx[I](s, leaves, live)
		pram.Release(s, live)
		pram.Release(s, leaves)
		leaves = next
	}

	// Replay the rakes backwards to assign every internal node its value.
	for r := len(rounds) - 1; r >= 0; r-- {
		recs := rounds[r]
		s.ForCostRange(len(recs), 3, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				rec := recs[k]
				a := rec.fx.Apply(val[rec.x])
				b := rec.fs.Apply(val[rec.sib])
				if rec.xLeft {
					val[rec.p] = applyOp(op[rec.p], a, b)
				} else {
					val[rec.p] = applyOp(op[rec.p], b, a)
				}
			}
		})
		pram.Release(s, recs)
	}
	pram.Release(s, left)
	pram.Release(s, right)
	pram.Release(s, parent)
	pram.Release(s, f)
	pram.Release(s, num)
	pram.Release(s, isLeaf)
	pram.Release(s, leaves)
	return val
}

// evalTreeSeq evaluates the expression forest bottom-up in one
// post-order sweep: the value semantics of the contraction without its
// machinery.
func evalTreeSeq[I Ix](s *pram.Sim, t BinTreeIx[I], op []NodeOp, leafVal []int64, val []int64) {
	n := t.Len()
	order := pram.GrabNoClear[I](s, n)
	stack := pram.GrabNoClear[I](s, n)
	k := n
	for r := 0; r < n; r++ {
		if t.Parent[r] >= 0 {
			continue
		}
		top := 0
		stack[top] = I(r)
		top++
		for top > 0 {
			top--
			v := stack[top]
			k--
			order[k] = v
			if l := t.Left[v]; l >= 0 {
				stack[top] = l
				top++
			}
			if rc := t.Right[v]; rc >= 0 {
				stack[top] = rc
				top++
			}
		}
	}
	// order[k:] is a reverse preorder: children precede parents.
	for _, v := range order[k:] {
		if t.IsLeaf(int(v)) {
			val[v] = leafVal[v]
		} else {
			val[v] = applyOp(op[v], val[t.Left[v]], val[t.Right[v]])
		}
	}
	pram.Release(s, order)
	pram.Release(s, stack)
}

// contractChargeState keeps the rake-schedule replay's per-round counts
// reusable per (Sim, width).
type contractChargeState[I Ix] struct {
	roundCnts []int
}

type contractChargeKey[I Ix] struct{}

func contractChargeOf[I Ix](s *pram.Sim) *contractChargeState[I] {
	sc := s.Scratch()
	if v := sc.Aux(contractChargeKey[I]{}); v != nil {
		return v.(*contractChargeState[I])
	}
	st := &contractChargeState[I]{}
	sc.SetAux(contractChargeKey[I]{}, st)
	return st
}

// chargeEvalTree replays the exact simulated charge sequence of the
// phase-structured EvalTreeIx: it re-runs the rake schedule on a
// link-only skeleton (no functions, no values, no rake records), since
// the number of rounds and the rake counts per round are data-dependent.
// It must mirror EvalTreeIx charge for charge.
func chargeEvalTree[I Ix](s *pram.Sim, t BinTreeIx[I], leafRank []I) {
	n := t.Len()
	p := s.Procs()
	charge := func(m, cost int) {
		if m > 0 {
			s.Charge(int64(ceilDivInt(m, p)*cost), int64(m*cost))
		}
	}
	charge(n, 2)            // init
	charge(n, 1)            // leaf IndexPack flags
	chargeScan(s, n, false) // leaf IndexPack position scan
	charge(n, 1)            // leaf IndexPack scatter

	left := pram.GrabNoClear[I](s, n)
	right := pram.GrabNoClear[I](s, n)
	parent := pram.GrabNoClear[I](s, n)
	num := pram.GrabNoClear[I](s, n)
	copy(left, t.Left)
	copy(right, t.Right)
	copy(parent, t.Parent)
	nl := 0
	for v := 0; v < n; v++ {
		if t.IsLeaf(v) {
			nl++
		}
	}
	leaves := pram.GrabNoClear[I](s, nl)
	nextLv := pram.GrabNoClear[I](s, nl)
	sel := pram.GrabNoClear[I](s, nl)
	j := 0
	for v := 0; v < n; v++ {
		if t.IsLeaf(v) {
			leaves[j] = I(v)
			num[v] = leafRank[v] + 1
			j++
		}
	}

	st := contractChargeOf[I](s)
	cnts := st.roundCnts[:0]
	guard := 2
	for v := 1; v < n; v <<= 1 {
		guard += 2
	}
	for len(leaves) > 1 && guard > 0 {
		guard--
		for _, wantLeft := range [2]bool{true, false} {
			lv := len(leaves)
			charge(lv, 1)            // candidate flags
			charge(lv, 1)            // pack flags
			chargeScan(s, lv, false) // pack position scan
			charge(lv, 1)            // pack scatter
			selN := 0
			for _, x := range leaves {
				px := parent[x]
				if num[x]%2 == 1 && px >= 0 &&
					((wantLeft && left[px] == x) || (!wantLeft && right[px] == x)) {
					sel[selN] = x
					selN++
				}
			}
			charge(selN, 1) // pack gather (skipped when empty)
			if selN == 0 {
				continue
			}
			charge(selN, 4) // rake phase
			for i := 0; i < selN; i++ {
				x := sel[i]
				px := parent[x]
				var sib I
				if left[px] == x {
					sib = right[px]
				} else {
					sib = left[px]
				}
				g := parent[px]
				if g >= 0 {
					if left[g] == px {
						left[g] = sib
					} else {
						right[g] = sib
					}
				}
				parent[sib] = g
			}
			cnts = append(cnts, selN)
		}
		lv := len(leaves)
		charge(lv, 1)            // live flags (renumber)
		charge(lv, 1)            // pack flags
		chargeScan(s, lv, false) // pack position scan
		charge(lv, 1)            // pack scatter
		out := 0
		for _, x := range leaves {
			if num[x]%2 == 0 {
				num[x] /= 2
				nextLv[out] = x
				out++
			}
		}
		charge(out, 1) // pack gather (skipped when empty)
		leaves, nextLv = nextLv[:out], leaves[:cap(leaves)]
	}
	for r := len(cnts) - 1; r >= 0; r-- {
		charge(cnts[r], 3) // backward value replay
	}
	st.roundCnts = cnts[:0]
	pram.Release(s, left)
	pram.Release(s, right)
	pram.Release(s, parent)
	pram.Release(s, num)
	pram.Release(s, leaves)
	pram.Release(s, nextLv)
	pram.Release(s, sel)
}
