package par

import "unsafe"

// Ix constrains the element type of the index-carrying arrays of the
// primitives: the values stored are vertex ids, node ids, tour
// positions, ranks and counts — all bounded by a small constant
// multiple of the input size — so on inputs that fit, a narrower
// representation halves (int32) or quarters (int16) the bytes every
// bandwidth-bound phase streams.
//
// Width-fallback rule: every primitive exists in a width-generic form
// (the *Ix functions and types) instantiated at int16 for the serving
// size class, int32 for narrow inputs and at int (64-bit on 64-bit
// hosts) otherwise; the legacy un-suffixed names are the int
// instantiations. Callers that pick a narrow width must guarantee that
// every value a primitive stores fits — for the path-cover pipeline
// that is ~10n (tour items of the dummy-augmented forest, bracket
// positions), so the dispatch in internal/core routes to the next
// wider kernels well before n approaches the width's maximum and
// nothing is ever silently truncated. The simulated time/work
// accounting is width-blind: all instantiations charge identical
// costs.
type Ix interface {
	~int16 | ~int32 | ~int | ~int64
}

// MinIx returns the minimum value of I, the sentinel of the prefix-max
// primitives (the generic counterpart of math.MinInt).
func MinIx[I Ix]() I {
	var one I = 1
	return ^I(0) << (8*unsafe.Sizeof(one) - 1)
}
