// Package par implements the parallel primitives the path-cover algorithm
// of Nakano–Olariu–Zomaya is built from: prefix sums, stream compaction,
// list ranking, Euler tours with tree numberings, parallel bracket
// matching, and binary tree contraction with all-node expression
// evaluation. These are the tools of Lemmas 5.1 and 5.2 of the paper.
//
// Every primitive is written once against the pram.Sim cost model: a phase
// of n constant-time operations costs ceil(n/p) simulated time and n
// simulated work. With p = n/log n processors each primitive meets the
// paper's O(log n)-time, O(n)-work bounds (list ranking in its randomized
// work-optimal variant), and the counters of the Sim make those bounds
// measurable.
package par

import "pathcover/internal/pram"

// Scan computes the exclusive prefix combination of in under the
// associative operation op with identity id: out[i] = op(in[0], ...,
// in[i-1]) (out[0] = id). It also returns the total combination of all
// elements.
//
// The implementation is the textbook work-optimal EREW scan: each
// simulated processor reduces a contiguous block, the p block sums are
// scanned by recursive doubling (up-sweep/down-sweep, O(log p) phases),
// and each block is swept once more to apply its offset. With p = n/log n
// this is O(log n) time and O(n) work.
func Scan[T any](s *pram.Sim, in []T, id T, op func(a, b T) T) (out []T, total T) {
	n := len(in)
	out = make([]T, n)
	if n == 0 {
		return out, id
	}
	nb := s.NumBlocks(n)
	if nb == 1 {
		s.Sequential(n, func() {
			acc := id
			for i := 0; i < n; i++ {
				out[i] = acc
				acc = op(acc, in[i])
			}
			total = acc
		})
		return out, total
	}

	// Per-block reduction.
	sums := make([]T, nb)
	s.Blocks(n, func(b, lo, hi int) {
		acc := id
		for i := lo; i < hi; i++ {
			acc = op(acc, in[i])
		}
		sums[b] = acc
	})

	// Exclusive scan of the nb block sums by up-sweep/down-sweep over a
	// power-of-two padded tree.
	m := 1
	for m < nb {
		m <<= 1
	}
	tree := make([]T, 2*m)
	s.ParallelFor(m, func(i int) {
		if i < nb {
			tree[m+i] = sums[i]
		} else {
			tree[m+i] = id
		}
	})
	for w := m / 2; w >= 1; w /= 2 {
		w := w
		s.ParallelFor(w, func(i int) {
			v := w + i
			tree[v] = op(tree[2*v], tree[2*v+1])
		})
	}
	total = tree[1]
	// Down-sweep: pref[v] = combination of everything left of subtree v.
	pref := make([]T, 2*m)
	pref[1] = id
	for w := 1; w < m; w *= 2 {
		w := w
		s.ParallelFor(w, func(i int) {
			v := w + i
			pref[2*v] = pref[v]
			pref[2*v+1] = op(pref[v], tree[2*v])
		})
	}

	// Apply block offsets.
	s.Blocks(n, func(b, lo, hi int) {
		acc := pref[m+b]
		for i := lo; i < hi; i++ {
			out[i] = acc
			acc = op(acc, in[i])
		}
	})
	return out, total
}

// InclusiveScan computes out[i] = op(in[0], ..., in[i]).
func InclusiveScan[T any](s *pram.Sim, in []T, id T, op func(a, b T) T) []T {
	ex, _ := Scan(s, in, id, op)
	out := make([]T, len(in))
	s.ParallelFor(len(in), func(i int) { out[i] = op(ex[i], in[i]) })
	return out
}

// ScanInt is Scan specialised to integer sums.
func ScanInt(s *pram.Sim, in []int) (out []int, total int) {
	return Scan(s, in, 0, func(a, b int) int { return a + b })
}

// Reduce combines all elements of in under op starting from id.
func Reduce[T any](s *pram.Sim, in []T, id T, op func(a, b T) T) T {
	_, total := Scan(s, in, id, op)
	return total
}

// MaxScanInt computes the inclusive prefix maximum of in. It is the
// standard "segmented broadcast" building block: scatter values at
// segment heads, then a prefix max carries each head's value across its
// segment.
func MaxScanInt(s *pram.Sim, in []int) []int {
	return InclusiveScan(s, in, minInt, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
}

const minInt = -int(^uint(0)>>1) - 1
