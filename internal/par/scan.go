// Package par implements the parallel primitives the path-cover algorithm
// of Nakano–Olariu–Zomaya is built from: prefix sums, stream compaction,
// list ranking, Euler tours with tree numberings, parallel bracket
// matching, and binary tree contraction with all-node expression
// evaluation. These are the tools of Lemmas 5.1 and 5.2 of the paper.
//
// Every primitive is written once against the pram.Sim cost model: a phase
// of n constant-time operations costs ceil(n/p) simulated time and n
// simulated work. With p = n/log n processors each primitive meets the
// paper's O(log n)-time, O(n)-work bounds (list ranking in its randomized
// work-optimal variant), and the counters of the Sim make those bounds
// measurable.
//
// The index-carrying primitives are generic over the element width (the
// Ix constraint): the *Ix forms run on int32 for inputs whose derived
// values fit, halving the bytes moved per phase, and on int otherwise.
// The un-suffixed names (ScanInt, IndexPack, Rank, MatchBrackets, ...)
// are the int instantiations and keep their original signatures. See Ix
// for the width-fallback rule; the simulated cost accounting is
// identical in both widths.
//
// Buffers come from the Sim's scratch arena (pram.Grab): a primitive
// releases its internal temporaries before returning and hands its
// results to the caller, who may pass them back to pram.Release once
// consumed. The hot-path primitives (the scans, compaction, the list
// rankers, MatchBrackets) additionally keep their phase bodies in
// reusable per-Sim state, so in steady state they allocate nothing.
// Below the Sim's sequential cutover (pram.Sim.PreferSequential) the
// data-independent primitives run a fused single-pass body on the
// calling goroutine — no wake/dispatch/join, one stream over the data —
// while replaying the exact charge sequence of the phase-structured
// route, so the simulated counters cannot tell the routes apart.
package par

import "pathcover/internal/pram"

// Scan computes the exclusive prefix combination of in under the
// associative operation op with identity id: out[i] = op(in[0], ...,
// in[i-1]) (out[0] = id). It also returns the total combination of all
// elements.
//
// The implementation is the textbook work-optimal EREW scan: each
// simulated processor reduces a contiguous block, the p block sums are
// scanned by recursive doubling (up-sweep/down-sweep, O(log p) phases),
// and each block is swept once more to apply its offset. With p = n/log n
// this is O(log n) time and O(n) work.
func Scan[T any](s *pram.Sim, in []T, id T, op func(a, b T) T) (out []T, total T) {
	n := len(in)
	out = pram.GrabNoClear[T](s, n)
	if n == 0 {
		return out, id
	}
	nb := s.NumBlocks(n)
	if nb == 1 {
		s.Sequential(n, func() {
			acc := id
			for i := 0; i < n; i++ {
				out[i] = acc
				acc = op(acc, in[i])
			}
			total = acc
		})
		return out, total
	}
	if s.PreferSequential(n) {
		// Fused sequential route: one pass instead of two block sweeps
		// plus the scan tree; identical output, identical charges.
		acc := id
		for i := 0; i < n; i++ {
			out[i] = acc
			acc = op(acc, in[i])
		}
		total = acc
		chargeScan(s, n, false)
		return out, total
	}

	// Per-block reduction.
	sums := pram.GrabNoClear[T](s, nb)
	s.Blocks(n, func(b, lo, hi int) {
		acc := id
		for i := lo; i < hi; i++ {
			acc = op(acc, in[i])
		}
		sums[b] = acc
	})

	// Exclusive scan of the nb block sums by up-sweep/down-sweep over a
	// power-of-two padded tree.
	m := 1
	for m < nb {
		m <<= 1
	}
	tree := pram.GrabNoClear[T](s, 2*m)
	s.ParallelForRange(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i < nb {
				tree[m+i] = sums[i]
			} else {
				tree[m+i] = id
			}
		}
	})
	for w := m / 2; w >= 1; w /= 2 {
		w := w
		s.ParallelForRange(w, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := w + i
				tree[v] = op(tree[2*v], tree[2*v+1])
			}
		})
	}
	total = tree[1]
	// Down-sweep: pref[v] = combination of everything left of subtree v.
	pref := pram.GrabNoClear[T](s, 2*m)
	pref[1] = id
	for w := 1; w < m; w *= 2 {
		w := w
		s.ParallelForRange(w, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := w + i
				pref[2*v] = pref[v]
				pref[2*v+1] = op(pref[v], tree[2*v])
			}
		})
	}

	// Apply block offsets.
	s.Blocks(n, func(b, lo, hi int) {
		acc := pref[m+b]
		for i := lo; i < hi; i++ {
			out[i] = acc
			acc = op(acc, in[i])
		}
	})
	pram.Release(s, sums)
	pram.Release(s, tree)
	pram.Release(s, pref)
	return out, total
}

// InclusiveScan computes out[i] = op(in[0], ..., in[i]).
func InclusiveScan[T any](s *pram.Sim, in []T, id T, op func(a, b T) T) []T {
	ex, _ := Scan(s, in, id, op)
	out := pram.GrabNoClear[T](s, len(in))
	s.ParallelForRange(len(in), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = op(ex[i], in[i])
		}
	})
	pram.Release(s, ex)
	return out
}

// Reduce combines all elements of in under op starting from id.
func Reduce[T any](s *pram.Sim, in []T, id T, op func(a, b T) T) T {
	out, total := Scan(s, in, id, op)
	pram.Release(s, out)
	return total
}

// ScanInt is Scan specialised to integer sums. In steady state it
// allocates nothing: the phase bodies live in per-Sim state and every
// buffer but the returned one is recycled through the arena.
func ScanInt(s *pram.Sim, in []int) (out []int, total int) {
	return ixScanRun(s, in, intOpSum, false)
}

// InclusiveScanInt computes the inclusive prefix sum of in. Like
// ScanInt it is allocation-free in steady state; the simulated cost is
// identical to InclusiveScan over ints.
func InclusiveScanInt(s *pram.Sim, in []int) []int {
	out, _ := ixScanRun(s, in, intOpSum, true)
	return out
}

// MaxScanInt computes the inclusive prefix maximum of in. It is the
// standard "segmented broadcast" building block: scatter values at
// segment heads, then a prefix max carries each head's value across its
// segment.
func MaxScanInt(s *pram.Sim, in []int) []int {
	out, _ := ixScanRun(s, in, intOpMax, true)
	return out
}

// ScanIx, InclusiveScanIx and MaxScanIx are the width-generic forms of
// the specialised integer scans (see Ix).
func ScanIx[I Ix](s *pram.Sim, in []I) (out []I, total I) {
	return ixScanRun(s, in, intOpSum, false)
}

// InclusiveScanIx computes the inclusive prefix sum of in.
func InclusiveScanIx[I Ix](s *pram.Sim, in []I) []I {
	out, _ := ixScanRun(s, in, intOpSum, true)
	return out
}

// MaxScanIx computes the inclusive prefix maximum of in.
func MaxScanIx[I Ix](s *pram.Sim, in []I) []I {
	out, _ := ixScanRun(s, in, intOpMax, true)
	return out
}

// intScanOp selects the combining operator of the specialised integer
// scans.
type intScanOp uint8

const (
	intOpSum intScanOp = iota
	intOpMax
)

// ixScan is the reusable state of the specialised integer scans: one
// instance per (Sim, width), cached in the scratch registry, whose two
// phase bodies (created once) dispatch on the phase field. This keeps
// the steady-state scan free of the per-phase closure allocations the
// generic Scan pays.
type ixScan[I Ix] struct {
	in, out          []I
	sums, tree, pref []I
	nb, m, lvl       int
	op               intScanOp
	incl             bool
	id               I
	phase            int
	body             func(lo, hi int)
	blockBody        func(b, lo, hi int)
}

const (
	scanPhaseLeaves = iota
	scanPhaseUp
	scanPhaseDown
	scanBlockReduce
	scanBlockApply
)

type ixScanKey[I Ix] struct{}

func ixScanOf[I Ix](s *pram.Sim) *ixScan[I] {
	sc := s.Scratch()
	if v := sc.Aux(ixScanKey[I]{}); v != nil {
		return v.(*ixScan[I])
	}
	st := &ixScan[I]{}
	st.body = st.run
	st.blockBody = st.runBlock
	sc.SetAux(ixScanKey[I]{}, st)
	return st
}

func (st *ixScan[I]) comb(a, b I) I {
	if st.op == intOpSum {
		return a + b
	}
	if a > b {
		return a
	}
	return b
}

func (st *ixScan[I]) run(lo, hi int) {
	switch st.phase {
	case scanPhaseLeaves:
		for i := lo; i < hi; i++ {
			if i < st.nb {
				st.tree[st.m+i] = st.sums[i]
			} else {
				st.tree[st.m+i] = st.id
			}
		}
	case scanPhaseUp:
		tree := st.tree
		for i := lo; i < hi; i++ {
			v := st.lvl + i
			tree[v] = st.comb(tree[2*v], tree[2*v+1])
		}
	case scanPhaseDown:
		tree, pref := st.tree, st.pref
		for i := lo; i < hi; i++ {
			v := st.lvl + i
			pref[2*v] = pref[v]
			pref[2*v+1] = st.comb(pref[v], tree[2*v])
		}
	}
}

func (st *ixScan[I]) runBlock(b, lo, hi int) {
	switch st.phase {
	case scanBlockReduce:
		acc := st.id
		if st.op == intOpSum {
			for i := lo; i < hi; i++ {
				acc += st.in[i]
			}
		} else {
			for i := lo; i < hi; i++ {
				if v := st.in[i]; v > acc {
					acc = v
				}
			}
		}
		st.sums[b] = acc
	case scanBlockApply:
		acc := st.pref[st.m+b]
		in, out := st.in, st.out
		if st.incl {
			for i := lo; i < hi; i++ {
				acc = st.comb(acc, in[i])
				out[i] = acc
			}
		} else {
			for i := lo; i < hi; i++ {
				out[i] = acc
				acc = st.comb(acc, in[i])
			}
		}
	}
}

// scanSeq is the fused single-pass body shared by the nb==1 and
// cutover routes.
func scanSeq[I Ix](in, out []I, op intScanOp, incl bool, id I) (total I) {
	acc := id
	if op == intOpSum {
		if incl {
			for i, v := range in {
				acc += v
				out[i] = acc
			}
		} else {
			for i, v := range in {
				out[i] = acc
				acc += v
			}
		}
	} else {
		for i, v := range in {
			if v > acc {
				acc = v
			}
			out[i] = acc // max scans are always inclusive here
		}
	}
	return acc
}

// chargeScan replays the exact charge sequence of ixScanRun for an
// n-element scan on s — the same phases, time and work whichever route
// executes — so fused callers stay bit-identical on the simulated
// counters. It must mirror ixScanRun (and the un-specialised Scan)
// charge for charge.
func chargeScan(s *pram.Sim, n int, incl bool) {
	if n <= 0 {
		return
	}
	p := s.Procs()
	nb := s.NumBlocks(n)
	if nb == 1 {
		s.Charge(int64(n), int64(n)) // the Sequential(n, ...) route
		if incl {
			s.Charge(int64(ceilDivInt(n, p)), int64(n))
		}
		return
	}
	m := 1
	for m < nb {
		m <<= 1
	}
	s.Charge(int64(ceilDivInt(n, p)), int64(n)) // block reduce
	s.Charge(int64(ceilDivInt(m, p)), int64(m)) // tree leaves
	for w := m / 2; w >= 1; w /= 2 {            // up-sweep
		s.Charge(int64(ceilDivInt(w, p)), int64(w))
	}
	for w := 1; w < m; w *= 2 { // down-sweep
		s.Charge(int64(ceilDivInt(w, p)), int64(w))
	}
	s.Charge(int64(ceilDivInt(n, p)), int64(n)) // block apply
	if incl {
		s.Charge(int64(ceilDivInt(n, p)), int64(n)) // fused inclusive pass
	}
}

// ixScanRun is the shared engine of the specialised scans. The
// inclusive variant fuses the op(ex[i], in[i]) pass of InclusiveScan
// into the final block sweep and charges that phase explicitly, keeping
// the simulated cost identical to the unfused composition.
func ixScanRun[I Ix](s *pram.Sim, in []I, op intScanOp, incl bool) (out []I, total I) {
	n := len(in)
	out = pram.GrabNoClear[I](s, n)
	var id I
	if op == intOpMax {
		id = MinIx[I]()
	}
	total = id
	if n == 0 {
		return out, total
	}
	nb := s.NumBlocks(n)
	if nb == 1 {
		s.Sequential(n, func() { total = scanSeq(in, out, op, incl, id) })
		if incl {
			s.Charge(int64(ceilDivInt(n, s.Procs())), int64(n))
		}
		return out, total
	}
	if s.PreferSequential(n) {
		total = scanSeq(in, out, op, incl, id)
		chargeScan(s, n, incl)
		return out, total
	}

	st := ixScanOf[I](s)
	st.in, st.out, st.op, st.incl, st.id = in, out, op, incl, id
	st.nb = nb
	m := 1
	for m < nb {
		m <<= 1
	}
	st.m = m
	st.sums = pram.GrabNoClear[I](s, nb)
	st.tree = pram.GrabNoClear[I](s, 2*m)
	st.pref = pram.GrabNoClear[I](s, 2*m)

	st.phase = scanBlockReduce
	s.Blocks(n, st.blockBody)
	st.phase = scanPhaseLeaves
	s.ParallelForRange(m, st.body)
	st.phase = scanPhaseUp
	for w := m / 2; w >= 1; w /= 2 {
		st.lvl = w
		s.ParallelForRange(w, st.body)
	}
	total = st.tree[1]
	st.pref[1] = id
	st.phase = scanPhaseDown
	for w := 1; w < m; w *= 2 {
		st.lvl = w
		s.ParallelForRange(w, st.body)
	}
	st.phase = scanBlockApply
	s.Blocks(n, st.blockBody)
	if incl {
		// The fused inclusive application replaces the separate
		// out[i] = op(ex[i], in[i]) phase of InclusiveScan; charge it so
		// the simulated cost stays identical.
		s.Charge(int64(ceilDivInt(n, s.Procs())), int64(n))
	}

	pram.Release(s, st.sums)
	pram.Release(s, st.tree)
	pram.Release(s, st.pref)
	st.in, st.out, st.sums, st.tree, st.pref = nil, nil, nil, nil, nil
	return out, total
}

// ceilDivInt returns ceil(a/b) for positive b.
func ceilDivInt(a, b int) int { return (a + b - 1) / b }
