// Package par implements the parallel primitives the path-cover algorithm
// of Nakano–Olariu–Zomaya is built from: prefix sums, stream compaction,
// list ranking, Euler tours with tree numberings, parallel bracket
// matching, and binary tree contraction with all-node expression
// evaluation. These are the tools of Lemmas 5.1 and 5.2 of the paper.
//
// Every primitive is written once against the pram.Sim cost model: a phase
// of n constant-time operations costs ceil(n/p) simulated time and n
// simulated work. With p = n/log n processors each primitive meets the
// paper's O(log n)-time, O(n)-work bounds (list ranking in its randomized
// work-optimal variant), and the counters of the Sim make those bounds
// measurable.
//
// Buffers come from the Sim's scratch arena (pram.Grab): a primitive
// releases its internal temporaries before returning and hands its
// results to the caller, who may pass them back to pram.Release once
// consumed. The hot-path primitives (ScanInt, MaxScanInt, the list
// rankers, MatchBrackets) additionally keep their phase bodies in
// reusable per-Sim state, so in steady state they allocate nothing.
package par

import "pathcover/internal/pram"

// Scan computes the exclusive prefix combination of in under the
// associative operation op with identity id: out[i] = op(in[0], ...,
// in[i-1]) (out[0] = id). It also returns the total combination of all
// elements.
//
// The implementation is the textbook work-optimal EREW scan: each
// simulated processor reduces a contiguous block, the p block sums are
// scanned by recursive doubling (up-sweep/down-sweep, O(log p) phases),
// and each block is swept once more to apply its offset. With p = n/log n
// this is O(log n) time and O(n) work.
func Scan[T any](s *pram.Sim, in []T, id T, op func(a, b T) T) (out []T, total T) {
	n := len(in)
	out = pram.GrabNoClear[T](s, n)
	if n == 0 {
		return out, id
	}
	nb := s.NumBlocks(n)
	if nb == 1 {
		s.Sequential(n, func() {
			acc := id
			for i := 0; i < n; i++ {
				out[i] = acc
				acc = op(acc, in[i])
			}
			total = acc
		})
		return out, total
	}

	// Per-block reduction.
	sums := pram.GrabNoClear[T](s, nb)
	s.Blocks(n, func(b, lo, hi int) {
		acc := id
		for i := lo; i < hi; i++ {
			acc = op(acc, in[i])
		}
		sums[b] = acc
	})

	// Exclusive scan of the nb block sums by up-sweep/down-sweep over a
	// power-of-two padded tree.
	m := 1
	for m < nb {
		m <<= 1
	}
	tree := pram.GrabNoClear[T](s, 2*m)
	s.ParallelForRange(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i < nb {
				tree[m+i] = sums[i]
			} else {
				tree[m+i] = id
			}
		}
	})
	for w := m / 2; w >= 1; w /= 2 {
		w := w
		s.ParallelForRange(w, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := w + i
				tree[v] = op(tree[2*v], tree[2*v+1])
			}
		})
	}
	total = tree[1]
	// Down-sweep: pref[v] = combination of everything left of subtree v.
	pref := pram.GrabNoClear[T](s, 2*m)
	pref[1] = id
	for w := 1; w < m; w *= 2 {
		w := w
		s.ParallelForRange(w, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := w + i
				pref[2*v] = pref[v]
				pref[2*v+1] = op(pref[v], tree[2*v])
			}
		})
	}

	// Apply block offsets.
	s.Blocks(n, func(b, lo, hi int) {
		acc := pref[m+b]
		for i := lo; i < hi; i++ {
			out[i] = acc
			acc = op(acc, in[i])
		}
	})
	pram.Release(s, sums)
	pram.Release(s, tree)
	pram.Release(s, pref)
	return out, total
}

// InclusiveScan computes out[i] = op(in[0], ..., in[i]).
func InclusiveScan[T any](s *pram.Sim, in []T, id T, op func(a, b T) T) []T {
	ex, _ := Scan(s, in, id, op)
	out := pram.GrabNoClear[T](s, len(in))
	s.ParallelForRange(len(in), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = op(ex[i], in[i])
		}
	})
	pram.Release(s, ex)
	return out
}

// Reduce combines all elements of in under op starting from id.
func Reduce[T any](s *pram.Sim, in []T, id T, op func(a, b T) T) T {
	out, total := Scan(s, in, id, op)
	pram.Release(s, out)
	return total
}

// ScanInt is Scan specialised to integer sums. In steady state it
// allocates nothing: the phase bodies live in per-Sim state and every
// buffer but the returned one is recycled through the arena.
func ScanInt(s *pram.Sim, in []int) (out []int, total int) {
	return intScanRun(s, in, intOpSum, false)
}

// InclusiveScanInt computes the inclusive prefix sum of in. Like
// ScanInt it is allocation-free in steady state; the simulated cost is
// identical to InclusiveScan over ints.
func InclusiveScanInt(s *pram.Sim, in []int) []int {
	out, _ := intScanRun(s, in, intOpSum, true)
	return out
}

// MaxScanInt computes the inclusive prefix maximum of in. It is the
// standard "segmented broadcast" building block: scatter values at
// segment heads, then a prefix max carries each head's value across its
// segment.
func MaxScanInt(s *pram.Sim, in []int) []int {
	out, _ := intScanRun(s, in, intOpMax, true)
	return out
}

const minInt = -int(^uint(0)>>1) - 1

// intScanOp selects the combining operator of the specialised integer
// scans.
type intScanOp uint8

const (
	intOpSum intScanOp = iota
	intOpMax
)

// intScan is the reusable state of the specialised integer scans: one
// instance per Sim, cached in the scratch registry, whose two phase
// bodies (created once) dispatch on the phase field. This keeps the
// steady-state scan free of the per-phase closure allocations the
// generic Scan pays.
type intScan struct {
	s                *pram.Sim
	in, out          []int
	sums, tree, pref []int
	nb, m, lvl       int
	op               intScanOp
	incl             bool
	id               int
	phase            int
	body             func(lo, hi int)
	blockBody        func(b, lo, hi int)
}

const (
	scanPhaseLeaves = iota
	scanPhaseUp
	scanPhaseDown
	scanBlockReduce
	scanBlockApply
)

type intScanKey struct{}

func intScanOf(s *pram.Sim) *intScan {
	sc := s.Scratch()
	if v := sc.Aux(intScanKey{}); v != nil {
		return v.(*intScan)
	}
	st := &intScan{s: s}
	st.body = st.run
	st.blockBody = st.runBlock
	sc.SetAux(intScanKey{}, st)
	return st
}

func (st *intScan) comb(a, b int) int {
	if st.op == intOpSum {
		return a + b
	}
	if a > b {
		return a
	}
	return b
}

func (st *intScan) run(lo, hi int) {
	switch st.phase {
	case scanPhaseLeaves:
		for i := lo; i < hi; i++ {
			if i < st.nb {
				st.tree[st.m+i] = st.sums[i]
			} else {
				st.tree[st.m+i] = st.id
			}
		}
	case scanPhaseUp:
		tree := st.tree
		for i := lo; i < hi; i++ {
			v := st.lvl + i
			tree[v] = st.comb(tree[2*v], tree[2*v+1])
		}
	case scanPhaseDown:
		tree, pref := st.tree, st.pref
		for i := lo; i < hi; i++ {
			v := st.lvl + i
			pref[2*v] = pref[v]
			pref[2*v+1] = st.comb(pref[v], tree[2*v])
		}
	}
}

func (st *intScan) runBlock(b, lo, hi int) {
	switch st.phase {
	case scanBlockReduce:
		acc := st.id
		if st.op == intOpSum {
			for i := lo; i < hi; i++ {
				acc += st.in[i]
			}
		} else {
			for i := lo; i < hi; i++ {
				if v := st.in[i]; v > acc {
					acc = v
				}
			}
		}
		st.sums[b] = acc
	case scanBlockApply:
		acc := st.pref[st.m+b]
		in, out := st.in, st.out
		if st.incl {
			for i := lo; i < hi; i++ {
				acc = st.comb(acc, in[i])
				out[i] = acc
			}
		} else {
			for i := lo; i < hi; i++ {
				out[i] = acc
				acc = st.comb(acc, in[i])
			}
		}
	}
}

// intScanRun is the shared engine of ScanInt and MaxScanInt. The
// inclusive variant fuses the op(ex[i], in[i]) pass of InclusiveScan
// into the final block sweep and charges that phase explicitly, keeping
// the simulated cost identical to the unfused composition.
func intScanRun(s *pram.Sim, in []int, op intScanOp, incl bool) (out []int, total int) {
	n := len(in)
	out = pram.GrabNoClear[int](s, n)
	id := 0
	if op == intOpMax {
		id = minInt
	}
	total = id
	if n == 0 {
		return out, total
	}
	nb := s.NumBlocks(n)
	if nb == 1 {
		s.Sequential(n, func() {
			acc := id
			if op == intOpSum {
				if incl {
					for i := 0; i < n; i++ {
						acc += in[i]
						out[i] = acc
					}
				} else {
					for i := 0; i < n; i++ {
						out[i] = acc
						acc += in[i]
					}
				}
			} else {
				for i := 0; i < n; i++ {
					if in[i] > acc {
						acc = in[i]
					}
					out[i] = acc // max scans are always inclusive here
				}
			}
			total = acc
		})
		if incl {
			s.Charge(int64(ceilDivInt(n, s.Procs())), int64(n))
		}
		return out, total
	}

	st := intScanOf(s)
	st.in, st.out, st.op, st.incl, st.id = in, out, op, incl, id
	st.nb = nb
	m := 1
	for m < nb {
		m <<= 1
	}
	st.m = m
	st.sums = pram.GrabNoClear[int](s, nb)
	st.tree = pram.GrabNoClear[int](s, 2*m)
	st.pref = pram.GrabNoClear[int](s, 2*m)

	st.phase = scanBlockReduce
	s.Blocks(n, st.blockBody)
	st.phase = scanPhaseLeaves
	s.ParallelForRange(m, st.body)
	st.phase = scanPhaseUp
	for w := m / 2; w >= 1; w /= 2 {
		st.lvl = w
		s.ParallelForRange(w, st.body)
	}
	total = st.tree[1]
	st.pref[1] = id
	st.phase = scanPhaseDown
	for w := 1; w < m; w *= 2 {
		st.lvl = w
		s.ParallelForRange(w, st.body)
	}
	st.phase = scanBlockApply
	s.Blocks(n, st.blockBody)
	if incl {
		// The fused inclusive application replaces the separate
		// out[i] = op(ex[i], in[i]) phase of InclusiveScan; charge it so
		// the simulated cost stays identical.
		s.Charge(int64(ceilDivInt(n, s.Procs())), int64(n))
	}

	pram.Release(s, st.sums)
	pram.Release(s, st.tree)
	pram.Release(s, st.pref)
	st.in, st.out, st.sums, st.tree, st.pref = nil, nil, nil, nil, nil
	return out, total
}

// ceilDivInt returns ceil(a/b) for positive b.
func ceilDivInt(a, b int) int { return (a + b - 1) / b }
