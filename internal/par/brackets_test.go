package par

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"pathcover/internal/pram"
)

func opensOf(s string) []bool {
	out := make([]bool, len(s))
	for i, c := range s {
		out[i] = c == '('
	}
	return out
}

func refMatch(open []bool) []int {
	match := make([]int, len(open))
	matchSerial(open, match)
	return match
}

func checkMatch(t *testing.T, sim *pram.Sim, seq string) {
	t.Helper()
	open := opensOf(seq)
	got := MatchBrackets(sim, open)
	want := refMatch(open)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("procs=%d seq=%q: match[%d]=%d want %d\ngot  %v\nwant %v",
				sim.Procs(), seq, i, got[i], want[i], got, want)
		}
	}
}

func TestMatchBracketsBasic(t *testing.T) {
	cases := []string{
		"",
		"()",
		")(",
		"(())",
		"()()",
		"(()())",
		"(((",
		")))",
		"))((",
		"())(",
		"(()))(()",
		"((((((((()))))))))",
		strings.Repeat("()", 50),
		strings.Repeat("(", 64) + strings.Repeat(")", 64),
		strings.Repeat(")", 30) + strings.Repeat("(", 30),
	}
	for _, sim := range sims() {
		for _, c := range cases {
			checkMatch(t, sim, c)
		}
	}
}

func TestMatchBracketsRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 4))
	for _, sim := range sims() {
		for _, n := range []int{1, 2, 10, 100, 1000, 5000} {
			for trial := 0; trial < 4; trial++ {
				var sb strings.Builder
				for i := 0; i < n; i++ {
					if rng.IntN(2) == 0 {
						sb.WriteByte('(')
					} else {
						sb.WriteByte(')')
					}
				}
				checkMatch(t, sim, sb.String())
			}
		}
	}
}

// Random *balanced* sequences exercise deep nesting across blocks.
func TestMatchBracketsBalancedRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 6))
	for _, sim := range sims() {
		for trial := 0; trial < 6; trial++ {
			var sb strings.Builder
			depth := 0
			for sb.Len() < 3000 {
				if depth == 0 || rng.IntN(2) == 0 {
					sb.WriteByte('(')
					depth++
				} else {
					sb.WriteByte(')')
					depth--
				}
			}
			for depth > 0 {
				sb.WriteByte(')')
				depth--
			}
			checkMatch(t, sim, sb.String())
		}
	}
}

func TestMatchBracketsInvolution(t *testing.T) {
	// match is a partial involution: match[match[i]] == i, partners have
	// opposite kinds, opens precede their closes.
	f := func(seed uint64, nRaw uint16, procs uint8) bool {
		n := int(nRaw%2000) + 1
		rng := rand.New(rand.NewPCG(seed, 41))
		open := make([]bool, n)
		for i := range open {
			open[i] = rng.IntN(2) == 0
		}
		sim := pram.New(1+int(procs%16), pram.WithGrain(16))
		m := MatchBrackets(sim, open)
		want := refMatch(open)
		for i := 0; i < n; i++ {
			if m[i] != want[i] {
				return false
			}
			if m[i] >= 0 {
				if m[m[i]] != i || open[i] == open[m[i]] {
					return false
				}
				if open[i] && m[i] < i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchBracketsCostBounds(t *testing.T) {
	n := 1 << 16
	rng := rand.New(rand.NewPCG(2, 9))
	open := make([]bool, n)
	for i := range open {
		open[i] = rng.IntN(2) == 0
	}
	s := pram.New(pram.ProcsFor(n), pram.WithGrain(1<<30))
	MatchBrackets(s, open)
	lg := 16
	if s.Time() > int64(60*lg) {
		t.Errorf("bracket matching time %d exceeds 60 log n = %d", s.Time(), 60*lg)
	}
	if s.Work() > int64(60*n) {
		t.Errorf("bracket matching work %d exceeds 60n", s.Work())
	}
}
