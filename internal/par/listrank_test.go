package par

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pathcover/internal/pram"
)

// buildLists makes a random set of disjoint lists over n elements and
// returns next plus, for verification, each element's true distance to
// its terminal and the terminal itself.
func buildLists(rng *rand.Rand, n int) (next, wantDist, wantLast []int) {
	next = make([]int, n)
	wantDist = make([]int, n)
	wantLast = make([]int, n)
	perm := rng.Perm(n)
	for i := range next {
		next[i] = -1
	}
	// Cut the permutation into random chunks; each chunk is a list.
	for lo := 0; lo < n; {
		hi := lo + 1 + rng.IntN(n-lo)
		for k := lo; k < hi-1; k++ {
			next[perm[k]] = perm[k+1]
		}
		for k := lo; k < hi; k++ {
			wantDist[perm[k]] = hi - 1 - k
			wantLast[perm[k]] = perm[hi-1]
		}
		lo = hi
	}
	return next, wantDist, wantLast
}

func TestRankMatchesTruth(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	for _, s := range sims() {
		for _, n := range []int{1, 2, 3, 17, 256, 3000} {
			next, wantDist, wantLast := buildLists(rng, n)
			dist, last := Rank(s, next)
			for i := 0; i < n; i++ {
				if dist[i] != wantDist[i] || last[i] != wantLast[i] {
					t.Fatalf("procs=%d n=%d elem %d: got (%d,%d) want (%d,%d)",
						s.Procs(), n, i, dist[i], last[i], wantDist[i], wantLast[i])
				}
			}
		}
	}
}

func TestRankOptMatchesTruth(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for _, s := range sims() {
		for _, n := range []int{1, 2, 65, 300, 5000} {
			next, wantDist, wantLast := buildLists(rng, n)
			dist, last := RankOpt(s, next, 1234)
			for i := 0; i < n; i++ {
				if dist[i] != wantDist[i] || last[i] != wantLast[i] {
					t.Fatalf("procs=%d n=%d elem %d: got (%d,%d) want (%d,%d)",
						s.Procs(), n, i, dist[i], last[i], wantDist[i], wantLast[i])
				}
			}
		}
	}
}

func TestRankWeighted(t *testing.T) {
	s := pram.New(4, pram.WithGrain(2))
	// 0 ->(5) 1 ->(7) 2
	next := []int{1, 2, -1}
	w := []int{5, 7, 0}
	dist, last := RankWeighted(s, next, w)
	if dist[0] != 12 || dist[1] != 7 || dist[2] != 0 {
		t.Fatalf("weighted dist = %v", dist)
	}
	if last[0] != 2 || last[1] != 2 || last[2] != 2 {
		t.Fatalf("weighted last = %v", last)
	}
}

func TestRankHandlesInForest(t *testing.T) {
	// Rank (pointer jumping) must tolerate shared terminals: a star where
	// everything points at element 0.
	s := pram.New(8, pram.WithGrain(2))
	n := 50
	next := make([]int, n)
	next[0] = -1
	for i := 1; i < n; i++ {
		next[i] = 0
	}
	dist, last := Rank(s, next)
	for i := 1; i < n; i++ {
		if dist[i] != 1 || last[i] != 0 {
			t.Fatalf("star elem %d: (%d,%d)", i, dist[i], last[i])
		}
	}
}

func TestRankOptSingleLongList(t *testing.T) {
	// Worst case for contraction: one list of n elements.
	n := 4096
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[i] = i + 1
	}
	next[n-1] = -1
	s := pram.New(pram.ProcsFor(n), pram.WithGrain(64))
	dist, last := RankOpt(s, next, 99)
	for i := 0; i < n; i++ {
		if dist[i] != n-1-i || last[i] != n-1 {
			t.Fatalf("elem %d: (%d,%d)", i, dist[i], last[i])
		}
	}
}

func TestRankOptWorkIsLinear(t *testing.T) {
	// RankOpt must do O(n) work where Wyllie does O(n log n): its
	// work-per-element must stay flat as n doubles, and beat Wyllie once
	// log n clears the contraction constant.
	measure := func(n int) (opt, wyl int64) {
		next := make([]int, n)
		for i := 0; i < n-1; i++ {
			next[i] = i + 1
		}
		next[n-1] = -1
		sOpt := pram.New(pram.ProcsFor(n), pram.WithGrain(1<<30))
		RankOpt(sOpt, next, 5)
		sWyl := pram.New(pram.ProcsFor(n), pram.WithGrain(1<<30))
		Rank(sWyl, next)
		return sOpt.Work(), sWyl.Work()
	}
	o1, _ := measure(1 << 15)
	o2, w2 := measure(1 << 18)
	if o2 > int64(45)*(1<<18) {
		t.Errorf("RankOpt work %d not O(n) (45n = %d)", o2, int64(45)*(1<<18))
	}
	if o2 >= w2 {
		t.Errorf("RankOpt work %d not better than Wyllie %d at n=2^18", o2, w2)
	}
	perElem1 := float64(o1) / float64(1<<15)
	perElem2 := float64(o2) / float64(1<<18)
	if perElem2 > perElem1*1.35 {
		t.Errorf("RankOpt work/elem grew from %.1f to %.1f: not linear", perElem1, perElem2)
	}
}

func TestListPositions(t *testing.T) {
	for _, s := range sims() {
		n := 100
		next := make([]int, n)
		// list: 0 -> 2 -> 4 -> ... -> 98; odds isolated
		for i := 0; i < n; i++ {
			next[i] = -1
		}
		for i := 0; i+2 < n; i += 2 {
			next[i] = i + 2
		}
		pos, length := ListPositions(s, next, 0, 77)
		if length != 50 {
			t.Fatalf("length=%d want 50", length)
		}
		for i := 0; i < n; i += 2 {
			if pos[i] != i/2 {
				t.Fatalf("pos[%d]=%d want %d", i, pos[i], i/2)
			}
		}
		for i := 1; i < n; i += 2 {
			if pos[i] != -1 {
				t.Fatalf("isolated pos[%d]=%d want -1", i, pos[i])
			}
		}
	}
}

func TestRankProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, procs uint8) bool {
		n := int(nRaw%800) + 1
		rng := rand.New(rand.NewPCG(seed, 11))
		next, wantDist, wantLast := buildLists(rng, n)
		s := pram.New(1+int(procs%16), pram.WithGrain(16))
		d1, l1 := Rank(s, next)
		d2, l2 := RankOpt(s, next, seed)
		for i := 0; i < n; i++ {
			if d1[i] != wantDist[i] || l1[i] != wantLast[i] {
				return false
			}
			if d2[i] != wantDist[i] || l2[i] != wantLast[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
