package par

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pathcover/internal/pram"
)

// randomBinForest builds a random binary forest: each node may have 0, 1
// or 2 children.
func randomBinForest(rng *rand.Rand, n, trees int) BinTree {
	t := NewBinTree(n)
	if n == 0 {
		return t
	}
	if trees < 1 {
		trees = 1
	}
	if trees > n {
		trees = n
	}
	// nodes 0..trees-1 are roots; every other node attaches to a random
	// earlier node with a free slot.
	for v := trees; v < n; v++ {
		for {
			p := rng.IntN(v)
			if t.Left[p] < 0 && (rng.IntN(2) == 0 || t.Right[p] >= 0) {
				t.Left[p] = v
				t.Parent[v] = p
				break
			}
			if t.Right[p] < 0 {
				t.Right[p] = v
				t.Parent[v] = p
				break
			}
		}
	}
	return t
}

// serial recursive traversals for verification.
func serialOrders(t BinTree) (pre, in, post []int) {
	n := t.Len()
	pre = make([]int, n)
	in = make([]int, n)
	post = make([]int, n)
	pc, ic, oc := 0, 0, 0
	var walk func(v int)
	walk = func(v int) {
		pre[v] = pc
		pc++
		if t.Left[v] >= 0 {
			walk(t.Left[v])
		}
		in[v] = ic
		ic++
		if t.Right[v] >= 0 {
			walk(t.Right[v])
		}
		post[v] = oc
		oc++
	}
	for v := 0; v < n; v++ {
		if t.Parent[v] < 0 {
			walk(v)
		}
	}
	return pre, in, post
}

func TestTourBinaryMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 14))
	for _, s := range sims() {
		for _, tc := range []struct{ n, trees int }{
			{1, 1}, {2, 1}, {5, 1}, {17, 3}, {200, 1}, {333, 7},
		} {
			bt := randomBinForest(rng, tc.n, tc.trees)
			tour := TourBinary(s, bt, 55)
			wantPre, wantIn, wantPost := serialOrders(bt)
			for v := 0; v < tc.n; v++ {
				if tour.Pre[v] != wantPre[v] || tour.In[v] != wantIn[v] || tour.Post[v] != wantPost[v] {
					t.Fatalf("procs=%d n=%d node %d: (pre,in,post)=(%d,%d,%d) want (%d,%d,%d)",
						s.Procs(), tc.n, v, tour.Pre[v], tour.In[v], tour.Post[v],
						wantPre[v], wantIn[v], wantPost[v])
				}
				if tour.InSeq[tour.In[v]] != v {
					t.Fatalf("InSeq inverse broken at %d", v)
				}
			}
		}
	}
}

func TestTourRootAssignment(t *testing.T) {
	s := pram.New(4, pram.WithGrain(2))
	// Two trees: 0->{2,3}, 1->{4}
	bt := NewBinTree(5)
	bt.Left[0], bt.Right[0] = 2, 3
	bt.Parent[2], bt.Parent[3] = 0, 0
	bt.Left[1] = 4
	bt.Parent[4] = 1
	tour := TourBinary(s, bt, 9)
	want := []int{0, 1, 0, 0, 1}
	for v, r := range want {
		if tour.Root[v] != r {
			t.Fatalf("Root[%d]=%d want %d", v, tour.Root[v], r)
		}
	}
	if len(tour.Roots) != 2 || tour.Roots[0] != 0 || tour.Roots[1] != 1 {
		t.Fatalf("Roots=%v", tour.Roots)
	}
}

func TestDepthsAndSubtreeCounts(t *testing.T) {
	s := pram.New(4, pram.WithGrain(2))
	//        0
	//      /   \
	//     1     2
	//    / \     \
	//   3   4     5
	bt := NewBinTree(6)
	bt.Left[0], bt.Right[0] = 1, 2
	bt.Left[1], bt.Right[1] = 3, 4
	bt.Right[2] = 5
	bt.Parent[1], bt.Parent[2] = 0, 0
	bt.Parent[3], bt.Parent[4] = 1, 1
	bt.Parent[5] = 2
	tour := TourBinary(s, bt, 1)
	d := tour.Depths(s)
	wantD := []int{0, 1, 1, 2, 2, 2}
	for v := range wantD {
		if d[v] != wantD[v] {
			t.Fatalf("depth[%d]=%d want %d", v, d[v], wantD[v])
		}
	}
	size, leaves := tour.SubtreeCounts(s, bt)
	wantSize := []int{6, 3, 2, 1, 1, 1}
	wantLeaves := []int{3, 2, 1, 1, 1, 1}
	for v := range wantSize {
		if size[v] != wantSize[v] || leaves[v] != wantLeaves[v] {
			t.Fatalf("node %d: size=%d leaves=%d want %d/%d",
				v, size[v], leaves[v], wantSize[v], wantLeaves[v])
		}
	}
}

func TestAncestorFlagCounts(t *testing.T) {
	s := pram.New(3, pram.WithGrain(2))
	// chain 0 -> 1 -> 2 -> 3 (all left children), flags on 0 and 2.
	bt := NewBinTree(4)
	for v := 0; v < 3; v++ {
		bt.Left[v] = v + 1
		bt.Parent[v+1] = v
	}
	tour := TourBinary(s, bt, 2)
	flags := []bool{true, false, true, false}
	got := tour.AncestorFlagCounts(s, flags)
	want := []int{1, 1, 2, 2}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("flagcount[%d]=%d want %d", v, got[v], want[v])
		}
	}
}

func TestLeafRanks(t *testing.T) {
	s := pram.New(4, pram.WithGrain(2))
	bt := NewBinTree(7) // full binary tree, leaves 3,4,5,6
	bt.Left[0], bt.Right[0] = 1, 2
	bt.Left[1], bt.Right[1] = 3, 4
	bt.Left[2], bt.Right[2] = 5, 6
	for _, v := range []int{1, 2} {
		bt.Parent[v] = 0
	}
	bt.Parent[3], bt.Parent[4], bt.Parent[5], bt.Parent[6] = 1, 1, 2, 2
	tour := TourBinary(s, bt, 3)
	ranks, m := tour.LeafRanks(s, bt)
	if m != 4 {
		t.Fatalf("m=%d want 4", m)
	}
	want := []int{-1, -1, -1, 0, 1, 2, 3}
	for v := range want {
		if ranks[v] != want[v] {
			t.Fatalf("leafRank[%d]=%d want %d", v, ranks[v], want[v])
		}
	}
}

func TestTourProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, trees uint8, procs uint8) bool {
		n := int(nRaw%400) + 1
		rng := rand.New(rand.NewPCG(seed, 21))
		bt := randomBinForest(rng, n, 1+int(trees%4))
		s := pram.New(1+int(procs%12), pram.WithGrain(16))
		tour := TourBinary(s, bt, seed)
		pre, in, post := serialOrders(bt)
		for v := 0; v < n; v++ {
			if tour.Pre[v] != pre[v] || tour.In[v] != in[v] || tour.Post[v] != post[v] {
				return false
			}
		}
		// Subtree counts must match a serial count.
		size, leaves := tour.SubtreeCounts(s, bt)
		var count func(v int) (int, int)
		count = func(v int) (int, int) {
			sz, lf := 1, 0
			if bt.IsLeaf(v) {
				lf = 1
			}
			if bt.Left[v] >= 0 {
				a, b := count(bt.Left[v])
				sz += a
				lf += b
			}
			if bt.Right[v] >= 0 {
				a, b := count(bt.Right[v])
				sz += a
				lf += b
			}
			return sz, lf
		}
		for v := 0; v < n; v++ {
			if bt.Parent[v] < 0 {
				// verified transitively for all nodes via the recursion
				sz, lf := count(v)
				if size[v] != sz || leaves[v] != lf {
					return false
				}
			}
			szv, lfv := count(v)
			if size[v] != szv || leaves[v] != lfv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTourCostBounds(t *testing.T) {
	// Euler tour numbering with p = n/log n processors is O(log n) time
	// and O(n) work: quadrupling n must scale time by ~log(4n)/log(n)
	// (far below 4x) and work by ~4x (far below the 4*log-factor Wyllie
	// would show).
	rng := rand.New(rand.NewPCG(8, 8))
	measure := func(n int) (int64, int64) {
		bt := randomBinForest(rng, n, 1)
		s := pram.New(pram.ProcsFor(n), pram.WithGrain(1<<30))
		TourBinary(s, bt, 4)
		return s.Time(), s.Work()
	}
	t1, w1 := measure(1 << 12)
	t2, w2 := measure(1 << 14)
	if ratio := float64(t2) / float64(t1); ratio > 2.0 {
		t.Errorf("time scaled %.2fx for 4x input; want ~log ratio (<2x)", ratio)
	}
	if ratio := float64(w2) / float64(w1); ratio > 5.5 {
		t.Errorf("work scaled %.2fx for 4x input; want ~4x", ratio)
	}
}
