package par

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pathcover/internal/pram"
)

func sims() []*pram.Sim {
	return []*pram.Sim{
		pram.NewSerial(),
		pram.New(4, pram.WithGrain(8)),
		pram.New(37, pram.WithGrain(8)),
		pram.New(pram.ProcsFor(1<<14), pram.WithGrain(64)),
	}
}

func TestScanIntMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, s := range sims() {
		for _, n := range []int{0, 1, 2, 7, 64, 1000, 4097} {
			in := make([]int, n)
			for i := range in {
				in[i] = rng.IntN(100) - 50
			}
			got, total := ScanInt(s, in)
			acc := 0
			for i := 0; i < n; i++ {
				if got[i] != acc {
					t.Fatalf("procs=%d n=%d: out[%d]=%d want %d", s.Procs(), n, i, got[i], acc)
				}
				acc += in[i]
			}
			if total != acc {
				t.Fatalf("procs=%d n=%d: total=%d want %d", s.Procs(), n, total, acc)
			}
		}
	}
}

func TestInclusiveScan(t *testing.T) {
	s := pram.New(5, pram.WithGrain(4))
	in := []int{3, -1, 4, 1, -5, 9}
	got := InclusiveScan(s, in, 0, func(a, b int) int { return a + b })
	want := []int{3, 2, 6, 7, 2, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inclusive[%d]=%d want %d", i, got[i], want[i])
		}
	}
}

func TestMaxScanInt(t *testing.T) {
	s := pram.New(3, pram.WithGrain(2))
	in := []int{2, 1, 5, 3, 5, 7, 0}
	got := MaxScanInt(s, in)
	want := []int{2, 2, 5, 5, 5, 7, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("maxscan[%d]=%d want %d", i, got[i], want[i])
		}
	}
}

func TestReduce(t *testing.T) {
	s := pram.New(8, pram.WithGrain(4))
	in := make([]int, 1000)
	for i := range in {
		in[i] = i
	}
	if got := Reduce(s, in, 0, func(a, b int) int { return a + b }); got != 999*1000/2 {
		t.Fatalf("Reduce = %d", got)
	}
}

// Property: scan with a non-commutative op (string-like concatenation
// simulated by pairs) still respects order. We use 2x2 integer matrices
// mod a prime, which are associative but not commutative.
func TestScanNonCommutativeProperty(t *testing.T) {
	type mat [4]int64
	const p = 1000003
	mul := func(a, b mat) mat {
		return mat{
			(a[0]*b[0] + a[1]*b[2]) % p, (a[0]*b[1] + a[1]*b[3]) % p,
			(a[2]*b[0] + a[3]*b[2]) % p, (a[2]*b[1] + a[3]*b[3]) % p,
		}
	}
	id := mat{1, 0, 0, 1}
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		rng := rand.New(rand.NewPCG(seed, 7))
		in := make([]mat, n)
		for i := range in {
			in[i] = mat{rng.Int64N(p), rng.Int64N(p), rng.Int64N(p), rng.Int64N(p)}
		}
		s := pram.New(1+int(seed%9), pram.WithGrain(4))
		out, total := Scan(s, in, id, mul)
		acc := id
		for i := 0; i < n; i++ {
			if out[i] != acc {
				return false
			}
			acc = mul(acc, in[i])
		}
		return total == acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestScanCostBounds(t *testing.T) {
	// With p = n/log n processors a scan must cost O(log n) time.
	n := 1 << 16
	s := pram.New(pram.ProcsFor(n), pram.WithGrain(1<<20))
	in := make([]int, n)
	ScanInt(s, in)
	lg := 16
	if s.Time() > int64(12*lg) {
		t.Errorf("scan time %d exceeds 12*log n = %d", s.Time(), 12*lg)
	}
	if s.Work() > int64(12*n) {
		t.Errorf("scan work %d exceeds 12n = %d", s.Work(), 12*n)
	}
}

func TestPackAndIndexPack(t *testing.T) {
	for _, s := range sims() {
		in := []int{10, 11, 12, 13, 14, 15}
		keep := []bool{true, false, true, true, false, true}
		got := Pack(s, in, keep)
		want := []int{10, 12, 13, 15}
		if len(got) != len(want) {
			t.Fatalf("procs=%d: Pack len %d want %d", s.Procs(), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("procs=%d: Pack[%d]=%d want %d", s.Procs(), i, got[i], want[i])
			}
		}
		idx := IndexPack(s, keep)
		wantIdx := []int{0, 2, 3, 5}
		for i := range wantIdx {
			if idx[i] != wantIdx[i] {
				t.Fatalf("IndexPack[%d]=%d want %d", i, idx[i], wantIdx[i])
			}
		}
	}
}

func TestPackEmpty(t *testing.T) {
	s := pram.NewSerial()
	if got := Pack(s, []int{}, []bool{}); len(got) != 0 {
		t.Fatal("Pack of empty not empty")
	}
	if got := Pack(s, []int{1, 2}, []bool{false, false}); len(got) != 0 {
		t.Fatal("Pack of all-false not empty")
	}
}

func TestDistribute(t *testing.T) {
	for _, s := range sims() {
		lengths := []int{3, 0, 2, 1, 0, 4}
		owner, offset, total := Distribute(s, lengths)
		if total != 10 {
			t.Fatalf("total=%d want 10", total)
		}
		wantOwner := []int{0, 0, 0, 2, 2, 3, 5, 5, 5, 5}
		wantOff := []int{0, 1, 2, 0, 1, 0, 0, 1, 2, 3}
		for i := 0; i < total; i++ {
			if owner[i] != wantOwner[i] || offset[i] != wantOff[i] {
				t.Fatalf("procs=%d item %d: owner=%d off=%d want %d/%d",
					s.Procs(), i, owner[i], offset[i], wantOwner[i], wantOff[i])
			}
		}
	}
}

func TestDistributeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := int(nRaw%40) + 1
		lens := make([]int, n)
		for i := range lens {
			lens[i] = rng.IntN(5)
		}
		s := pram.New(1+int(seed%7), pram.WithGrain(2))
		owner, offset, total := Distribute(s, lens)
		sum := 0
		for _, l := range lens {
			sum += l
		}
		if total != sum {
			return false
		}
		t := 0
		for g, l := range lens {
			for k := 0; k < l; k++ {
				if owner[t] != g || offset[t] != k {
					return false
				}
				t++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
