// Package verify checks path covers against the graph a cotree
// represents: partition of the vertex set, edge-validity of every
// consecutive pair, and minimality against the Lin et al. recurrence.
// It is the shared referee of the test suites, the examples and the
// experiment harness.
package verify

import (
	"fmt"

	"pathcover/internal/baseline"
	"pathcover/internal/cotree"
	"pathcover/internal/pram"
)

// Cover verifies that paths form a valid path cover of the cograph
// represented by t: every vertex appears exactly once and consecutive
// path vertices are adjacent.
func Cover(t *cotree.Tree, paths [][]int) error {
	o := cotree.NewAdjOracle(t)
	n := t.NumVertices()
	seen := make([]bool, n)
	count := 0
	for pi, p := range paths {
		if len(p) == 0 {
			return fmt.Errorf("verify: path %d is empty", pi)
		}
		for i, v := range p {
			if v < 0 || v >= n {
				return fmt.Errorf("verify: path %d contains out-of-range vertex %d", pi, v)
			}
			if seen[v] {
				return fmt.Errorf("verify: vertex %s covered twice", t.Name(v))
			}
			seen[v] = true
			count++
			if i > 0 && !o.Adjacent(p[i-1], v) {
				return fmt.Errorf("verify: path %d uses non-edge (%s,%s)",
					pi, t.Name(p[i-1]), t.Name(v))
			}
		}
	}
	if count != n {
		return fmt.Errorf("verify: cover has %d vertices, graph has %d", count, n)
	}
	return nil
}

// Minimum verifies that the cover is as small as the Lin et al.
// recurrence p(root) allows (which the paper proves optimal).
func Minimum(t *cotree.Tree, paths [][]int) error {
	s := pram.NewSerial()
	b := t.Binarize(s)
	L := b.MakeLeftist(s, 1)
	want := baseline.PathCounts(b, L)[b.Root]
	if len(paths) != want {
		return fmt.Errorf("verify: cover has %d paths, minimum is %d", len(paths), want)
	}
	return nil
}

// MinimumCover runs both checks.
func MinimumCover(t *cotree.Tree, paths [][]int) error {
	if err := Cover(t, paths); err != nil {
		return err
	}
	return Minimum(t, paths)
}

// Cycle verifies that cycle is a Hamiltonian cycle of the cograph: a
// permutation of all vertices whose consecutive pairs (wrapping around)
// are adjacent, with at least 3 vertices.
func Cycle(t *cotree.Tree, cycle []int) error {
	n := t.NumVertices()
	if len(cycle) != n {
		return fmt.Errorf("verify: cycle visits %d of %d vertices", len(cycle), n)
	}
	if n < 3 {
		return fmt.Errorf("verify: a cycle needs at least 3 vertices")
	}
	if err := Cover(t, [][]int{cycle}); err != nil {
		return err
	}
	o := cotree.NewAdjOracle(t)
	if !o.Adjacent(cycle[n-1], cycle[0]) {
		return fmt.Errorf("verify: cycle endpoints (%s,%s) are not adjacent",
			t.Name(cycle[n-1]), t.Name(cycle[0]))
	}
	return nil
}
