package verify

import (
	"testing"

	"pathcover/internal/cotree"
)

func TestCoverAccepts(t *testing.T) {
	tr := cotree.MustParse("(1 (0 a b) c)") // edges ac, bc
	if err := Cover(tr, [][]int{{0, 2, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := MinimumCover(tr, [][]int{{0, 2, 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverRejects(t *testing.T) {
	tr := cotree.MustParse("(1 (0 a b) c)")
	cases := []struct {
		name  string
		paths [][]int
	}{
		{"non-edge", [][]int{{0, 1, 2}}},       // a-b not an edge
		{"missing vertex", [][]int{{0, 2}}},    // b uncovered
		{"duplicate", [][]int{{0, 2}, {2, 1}}}, // c twice
		{"out of range", [][]int{{0, 2, 5}}},   //
		{"empty path", [][]int{{0, 2, 1}, {}}}, //
	}
	for _, c := range cases {
		if err := Cover(tr, c.paths); err == nil {
			t.Errorf("%s: accepted %v", c.name, c.paths)
		}
	}
}

func TestMinimumRejectsOversized(t *testing.T) {
	tr := cotree.MustParse("(1 a b)") // K2: minimum 1 path
	paths := [][]int{{0}, {1}}        // valid but not minimum
	if err := Cover(tr, paths); err != nil {
		t.Fatal(err)
	}
	if err := Minimum(tr, paths); err == nil {
		t.Error("oversized cover accepted as minimum")
	}
}

func TestCycle(t *testing.T) {
	c4 := cotree.MustParse("(1 (0 a b) (0 c d))") // C4-ish: edges ac, ad, bc, bd
	if err := Cycle(c4, []int{0, 2, 1, 3}); err != nil {
		t.Fatal(err)
	}
	if err := Cycle(c4, []int{0, 1, 2, 3}); err == nil {
		t.Error("accepted cycle using non-edge a-b")
	}
	if err := Cycle(c4, []int{0, 2, 1}); err == nil {
		t.Error("accepted non-spanning cycle")
	}
	k2 := cotree.MustParse("(1 a b)")
	if err := Cycle(k2, []int{0, 1}); err == nil {
		t.Error("accepted 2-cycle")
	}
}
