package backend

import "sort"

// ApproxCover computes a path cover of an arbitrary graph by the
// deterministic greedy of the ½-approximation path cover family (Lin &
// Ren, arXiv:2101.08947): grow a maximal linear forest by scanning the
// edges in a fixed low-degree-endpoints-first order, taking an edge
// whenever both endpoints still have path-degree < 2 and joining them
// does not close a cycle. Each taken edge removes one path from the
// trivial n-singleton cover, so the answer has n - |taken| paths; the
// forest is maximal under the scan order, and processing scarce
// (low-degree) endpoints first is the paper's deterministic
// optimization of the plain greedy.
//
// The result is a valid cover of every input but is not guaranteed
// minimal — the routing layer marks it approximate and reports the gap
// against the combinatorial lower bound.
//
// Phases: step1 orders the edges, step2 runs the greedy scan, step3
// extracts the paths. check is called before each.
func ApproxCover(g *Graph, checkFn CheckFunc) (*Result, error) {
	if err := check(checkFn, "step1"); err != nil {
		return nil, err
	}
	order := make([]int, len(g.Edges))
	for i := range order {
		order[i] = i
	}
	rank := func(i int) (int, int) {
		e := g.Edges[i]
		a, b := g.deg[e[0]], g.deg[e[1]]
		if a > b {
			a, b = b, a
		}
		return a, b
	}
	sort.SliceStable(order, func(x, y int) bool {
		ax, bx := rank(order[x])
		ay, by := rank(order[y])
		if ax != ay {
			return ax < ay
		}
		return bx < by
	})
	if err := check(checkFn, "step2"); err != nil {
		return nil, err
	}
	ls := newLinkSet(g.N)
	uf := newUnionFind(g.N)
	taken := 0
	for _, i := range order {
		u, v := g.Edges[i][0], g.Edges[i][1]
		if ls.deg[u] < 2 && ls.deg[v] < 2 && uf.union(u, v) {
			ls.add(u, v)
			taken++
		}
	}
	if err := check(checkFn, "step3"); err != nil {
		return nil, err
	}
	paths := ls.paths()
	return &Result{Paths: paths, NumPaths: g.N - taken}, nil
}
