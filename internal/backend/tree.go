package backend

import "fmt"

// TreeCover computes an exact minimum path cover of a forest by the
// linear bottom-up greedy DP: rooting each component, every vertex
// links to at most two of its children that are still open path
// endpoints — two links merge two child paths through the vertex, one
// link extends a child path, zero links start a new path. The greedy is
// optimal on forests (a straightforward exchange argument; it is the
// tree specialization of the bounded-treewidth DP of arXiv:2511.07160).
//
// Phases: step1 roots the forest (BFS), step2 runs the DP, step3
// extracts the paths. check is called before each.
func TreeCover(g *Graph, checkFn CheckFunc) (*Result, error) {
	if !g.forest {
		return nil, fmt.Errorf("backend: tree backend requires a forest (graph has a cycle)")
	}
	if err := check(checkFn, "step1"); err != nil {
		return nil, err
	}
	order, parent := rootForest(g)
	if err := check(checkFn, "step2"); err != nil {
		return nil, err
	}
	ls := newLinkSet(g.N)
	open := make([]bool, g.N)
	numPaths := 0
	// Reverse BFS order is a valid bottom-up schedule: every child
	// appears after its parent in BFS order, so walking backwards
	// processes all children before their parent.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		attached := 0
		for _, w := range g.adj[v] {
			if w == parent[v] || !open[w] {
				continue
			}
			ls.add(v, w)
			open[w] = false
			attached++
			if attached == 2 {
				break
			}
		}
		switch attached {
		case 0:
			numPaths++ // v starts a fresh path
			open[v] = true
		case 1:
			open[v] = true // v extends a child path and becomes its endpoint
		default:
			numPaths-- // two child paths merge through v
		}
	}
	if err := check(checkFn, "step3"); err != nil {
		return nil, err
	}
	paths := ls.paths()
	if len(paths) != numPaths {
		return nil, fmt.Errorf("backend: tree DP counted %d paths, extracted %d", numPaths, len(paths))
	}
	return &Result{Paths: paths, NumPaths: numPaths}, nil
}

// TreeCoverSize returns only the minimum path cover size of a forest
// (the DP without link bookkeeping); -1 when g is not a forest.
func TreeCoverSize(g *Graph) int {
	if !g.forest {
		return -1
	}
	order, parent := rootForest(g)
	open := make([]bool, g.N)
	numPaths := 0
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		attached := 0
		for _, w := range g.adj[v] {
			if w == parent[v] || !open[w] {
				continue
			}
			open[w] = false
			attached++
			if attached == 2 {
				break
			}
		}
		switch attached {
		case 0:
			numPaths++
			open[v] = true
		case 1:
			open[v] = true
		default:
			numPaths--
		}
	}
	return numPaths
}

// rootForest BFS-roots every component at its smallest vertex,
// returning the visit order (parents before children) and the parent of
// each vertex (-1 for roots).
func rootForest(g *Graph) (order []int, parent []int) {
	parent = make([]int, g.N)
	visited := make([]bool, g.N)
	for i := range parent {
		parent[i] = -1
	}
	order = make([]int, 0, g.N)
	queue := make([]int, 0, g.N)
	for r := 0; r < g.N; r++ {
		if visited[r] {
			continue
		}
		visited[r] = true
		queue = append(queue[:0], r)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, w := range g.adj[v] {
				if !visited[w] {
					visited[w] = true
					parent[w] = v
					queue = append(queue, w)
				}
			}
		}
	}
	return order, parent
}
