// Package backend holds the degraded-mode solve routes that serve the
// inputs the paper's algorithm cannot: an exact dynamic program for
// forests (the common tree-input case, after Foucaud, Majumder, Mömke
// and Roshany-Tabrizi, arXiv:2511.07160 — on trees the bounded-treewidth
// machinery collapses to a linear greedy DP) and a deterministic
// ½-approximation path cover for arbitrary graphs (after Lin and Ren,
// arXiv:2101.08947 — grow a maximal linear forest by greedy edge
// selection, low-degree endpoints first).
//
// Neither route touches the PRAM cost simulator: degraded answers are
// host-sequential and report zero simulated cost, so the paper's
// counters stay reserved for the exact cograph pipeline.
//
// Both solvers accept a between-phase check hook — the same hook the
// cograph pipeline threads through its eight steps — so per-request
// deadlines and the test-only fault injector reach every backend.
package backend

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph held as a deduplicated edge list
// plus sorted adjacency lists. It is the representation of inputs that
// are not cographs (no cotree exists); construction is O(m log m) and
// the structure is immutable afterwards, so one Graph can serve
// concurrent requests.
type Graph struct {
	N      int
	Edges  [][2]int // normalized u < v, sorted, deduplicated
	adj    [][]int  // sorted neighbor lists, shared backing
	deg    []int
	comps  int  // connected components (including isolated vertices)
	forest bool // no cycle in any component
}

// New builds a Graph from an edge list on vertices 0..n-1. Self-loops
// are dropped and duplicate edges collapsed; endpoints must already be
// range-checked by the caller.
func New(n int, edges [][2]int) *Graph {
	norm := make([][2]int, 0, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		norm = append(norm, [2]int{u, v})
	}
	sort.Slice(norm, func(a, b int) bool {
		if norm[a][0] != norm[b][0] {
			return norm[a][0] < norm[b][0]
		}
		return norm[a][1] < norm[b][1]
	})
	dedup := norm[:0]
	for i, e := range norm {
		if i == 0 || e != norm[i-1] {
			dedup = append(dedup, e)
		}
	}
	g := &Graph{N: n, Edges: dedup, deg: make([]int, n)}
	for _, e := range dedup {
		g.deg[e[0]]++
		g.deg[e[1]]++
	}
	backing := make([]int, 2*len(dedup))
	g.adj = make([][]int, n)
	off := 0
	for v := 0; v < n; v++ {
		g.adj[v] = backing[off : off : off+g.deg[v]]
		off += g.deg[v]
	}
	for _, e := range dedup {
		g.adj[e[0]] = append(g.adj[e[0]], e[1])
		g.adj[e[1]] = append(g.adj[e[1]], e[0])
	}
	for v := range g.adj {
		sort.Ints(g.adj[v])
	}
	// One union-find sweep classifies the graph: component count and
	// acyclicity, cached for the per-request routing decision.
	uf := newUnionFind(n)
	g.forest = true
	for _, e := range dedup {
		if !uf.union(e[0], e[1]) {
			g.forest = false
		}
	}
	g.comps = uf.comps
	return g
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return g.deg[v] }

// Neighbors returns v's sorted adjacency list (shared storage; do not
// mutate).
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Adjacent reports whether u and v share an edge (binary search).
func (g *Graph) Adjacent(u, v int) bool {
	if u == v {
		return false
	}
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// IsForest reports whether the graph is acyclic (so the exact tree DP
// applies).
func (g *Graph) IsForest() bool { return g.forest }

// Components returns the number of connected components, counting
// isolated vertices.
func (g *Graph) Components() int { return g.comps }

// Result is a backend's answer: the paths of a cover. Exactness and
// lower-bound metadata are attached by the routing layer, which knows
// which backend produced the result.
type Result struct {
	Paths    [][]int
	NumPaths int
}

// CheckFunc is the between-phase hook: it may return an error to abort
// the solve (per-request deadline) and may panic or sleep (fault
// injection). A nil CheckFunc disables checking.
type CheckFunc func(step string) error

func check(f CheckFunc, step string) error {
	if f == nil {
		return nil
	}
	return f(step)
}

// VerifyCover checks that paths form a valid path cover of g: every
// vertex exactly once, consecutive vertices adjacent. It does not judge
// minimality (NP-hard in general); the routing layer compares against
// the exact count where one is known.
func VerifyCover(g *Graph, paths [][]int) error {
	seen := make([]bool, g.N)
	count := 0
	for pi, p := range paths {
		if len(p) == 0 {
			return fmt.Errorf("backend: path %d is empty", pi)
		}
		for i, v := range p {
			if v < 0 || v >= g.N {
				return fmt.Errorf("backend: path %d contains out-of-range vertex %d", pi, v)
			}
			if seen[v] {
				return fmt.Errorf("backend: vertex %d covered twice", v)
			}
			seen[v] = true
			count++
			if i > 0 && !g.Adjacent(p[i-1], v) {
				return fmt.Errorf("backend: path %d uses non-edge (%d,%d)", pi, p[i-1], v)
			}
		}
	}
	if count != g.N {
		return fmt.Errorf("backend: cover has %d vertices, graph has %d", count, g.N)
	}
	return nil
}

// linkSet is the shared path-construction state of both backends: each
// vertex carries up to two path-neighbor links, forming a linear forest
// whose maximal paths are the cover.
type linkSet struct {
	link [][2]int
	deg  []int
}

func newLinkSet(n int) *linkSet {
	ls := &linkSet{link: make([][2]int, n), deg: make([]int, n)}
	for i := range ls.link {
		ls.link[i] = [2]int{-1, -1}
	}
	return ls
}

func (ls *linkSet) add(u, v int) {
	ls.link[u][ls.deg[u]] = v
	ls.deg[u]++
	ls.link[v][ls.deg[v]] = u
	ls.deg[v]++
}

// paths walks the linear forest into explicit vertex paths: every
// vertex with link degree < 2 starts a path (isolated vertices are
// singletons); interior vertices are reached by the walk.
func (ls *linkSet) paths() [][]int {
	n := len(ls.link)
	visited := make([]bool, n)
	var out [][]int
	for v := 0; v < n; v++ {
		if visited[v] || ls.deg[v] == 2 {
			continue
		}
		path := []int{v}
		visited[v] = true
		prev, cur := -1, v
		for {
			next := -1
			if a := ls.link[cur][0]; a != -1 && a != prev {
				next = a
			} else if b := ls.link[cur][1]; b != -1 && b != prev {
				next = b
			}
			if next == -1 {
				break
			}
			visited[next] = true
			path = append(path, next)
			prev, cur = cur, next
		}
		out = append(out, path)
	}
	return out
}

// unionFind is a plain path-halving union-find.
type unionFind struct {
	parent []int
	comps  int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), comps: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting false when they were
// already joined (the new edge would close a cycle).
func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	uf.parent[ra] = rb
	uf.comps--
	return true
}
