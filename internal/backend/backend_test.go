package backend

import (
	"errors"
	"math/rand/v2"
	"testing"

	"pathcover/internal/lowerbound"
)

// bruteCoverSize finds the exact minimum path cover size by trying all
// edge subsets that form a linear forest (degrees <= 2, acyclic) and
// maximizing the edge count: a cover with k vertices per path uses k-1
// edges, so minimum paths = n - max edges. Exponential; tests only.
func bruteCoverSize(n int, edges [][2]int) int {
	best := 0
	m := len(edges)
	if m > 20 {
		panic("bruteCoverSize: too many edges")
	}
	for mask := 0; mask < 1<<m; mask++ {
		deg := make([]int, n)
		uf := newUnionFind(n)
		count := 0
		ok := true
		for i := 0; ok && i < m; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			u, v := edges[i][0], edges[i][1]
			deg[u]++
			deg[v]++
			if deg[u] > 2 || deg[v] > 2 || !uf.union(u, v) {
				ok = false
			}
			count++
		}
		if ok && count > best {
			best = count
		}
	}
	return n - best
}

func randomTreeEdges(rng *rand.Rand, n int) [][2]int {
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{rng.IntN(v), v})
	}
	return edges
}

func TestTreeCoverKnownAnswers(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
		want  int
	}{
		{"single vertex", 1, nil, 1},
		{"edgeless", 4, nil, 4},
		{"P2", 2, [][2]int{{0, 1}}, 1},
		{"P5", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, 1},
		{"star K1,4", 5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, 3},
		{"spider 3 legs of 2", 7, [][2]int{{0, 1}, {1, 2}, {0, 3}, {3, 4}, {0, 5}, {5, 6}}, 2},
		{"two P2s", 4, [][2]int{{0, 1}, {2, 3}}, 2},
	}
	for _, tc := range cases {
		g := New(tc.n, tc.edges)
		if !g.IsForest() {
			t.Fatalf("%s: not detected as forest", tc.name)
		}
		res, err := TreeCover(g, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.NumPaths != tc.want {
			t.Errorf("%s: %d paths, want %d", tc.name, res.NumPaths, tc.want)
		}
		if err := VerifyCover(g, res.Paths); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if got := TreeCoverSize(g); got != tc.want {
			t.Errorf("%s: TreeCoverSize=%d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestTreeCoverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.IntN(10)
		edges := randomTreeEdges(rng, n)
		// Random forests too: drop each edge with small probability.
		kept := edges[:0]
		for _, e := range edges {
			if rng.IntN(5) != 0 {
				kept = append(kept, e)
			}
		}
		g := New(n, kept)
		res, err := TreeCover(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyCover(g, res.Paths); err != nil {
			t.Fatal(err)
		}
		if want := bruteCoverSize(n, g.Edges); res.NumPaths != want {
			t.Fatalf("trial %d (n=%d, edges=%v): tree DP %d paths, optimum %d",
				trial, n, g.Edges, res.NumPaths, want)
		}
	}
}

func TestTreeCoverRejectsCycles(t *testing.T) {
	g := New(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if g.IsForest() {
		t.Fatal("triangle classified as forest")
	}
	if _, err := TreeCover(g, nil); err == nil {
		t.Fatal("tree backend accepted a cyclic graph")
	}
	if got := TreeCoverSize(g); got != -1 {
		t.Fatalf("TreeCoverSize on cycle = %d, want -1", got)
	}
}

func TestApproxCoverValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.IntN(12)
		m := rng.IntN(2 * n)
		edges := make([][2]int, 0, m)
		for i := 0; i < m; i++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u != v {
				edges = append(edges, [2]int{u, v})
			}
		}
		g := New(n, edges)
		res, err := ApproxCover(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyCover(g, res.Paths); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.Paths) != res.NumPaths {
			t.Fatalf("trial %d: NumPaths=%d but %d paths", trial, res.NumPaths, len(res.Paths))
		}
		lb := lowerbound.PathCoverSize(g.N, g.Edges)
		if res.NumPaths < lb {
			t.Fatalf("trial %d: %d paths below lower bound %d", trial, res.NumPaths, lb)
		}
		if len(g.Edges) <= 16 {
			if opt := bruteCoverSize(n, g.Edges); res.NumPaths < opt {
				t.Fatalf("trial %d: approx %d below optimum %d", trial, res.NumPaths, opt)
			}
		}
	}
}

func TestApproxCoverDeterministic(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}}
	a, err := ApproxCover(New(5, edges), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ApproxCover(New(5, edges), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumPaths != b.NumPaths || len(a.Paths) != len(b.Paths) {
		t.Fatalf("nondeterministic: %v vs %v", a.Paths, b.Paths)
	}
	for i := range a.Paths {
		for j := range a.Paths[i] {
			if a.Paths[i][j] != b.Paths[i][j] {
				t.Fatalf("nondeterministic paths: %v vs %v", a.Paths, b.Paths)
			}
		}
	}
}

func TestCheckHookAbortsBothBackends(t *testing.T) {
	boom := errors.New("deadline")
	hook := func(stopAt string) CheckFunc {
		return func(step string) error {
			if step == stopAt {
				return boom
			}
			return nil
		}
	}
	tree := New(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	cyc := New(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	for _, step := range []string{"step1", "step2", "step3"} {
		if _, err := TreeCover(tree, hook(step)); !errors.Is(err, boom) {
			t.Errorf("tree %s: err=%v, want abort", step, err)
		}
		if _, err := ApproxCover(cyc, hook(step)); !errors.Is(err, boom) {
			t.Errorf("approx %s: err=%v, want abort", step, err)
		}
	}
}

func TestLowerBoundKnownAnswers(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
		want  int
	}{
		{"empty", 5, nil, 5},
		{"C5", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, 1},
		{"two triangles", 6, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}, 2},
		{"P4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, 1},
		{"star K1,5", 6, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}, 6 - 7/2},
	}
	for _, tc := range cases {
		if got := lowerbound.PathCoverSize(tc.n, tc.edges); got != tc.want {
			t.Errorf("%s: lower bound %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestGraphBasics(t *testing.T) {
	g := New(4, [][2]int{{1, 0}, {0, 1}, {2, 2}, {1, 2}})
	if len(g.Edges) != 2 {
		t.Fatalf("dedup failed: %v", g.Edges)
	}
	if !g.Adjacent(0, 1) || !g.Adjacent(1, 2) || g.Adjacent(0, 2) || g.Adjacent(3, 3) {
		t.Fatal("adjacency wrong")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatal("degrees wrong")
	}
	if g.Components() != 2 {
		t.Fatalf("components = %d, want 2", g.Components())
	}
}
