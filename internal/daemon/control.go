package daemon

import (
	"log"
	"time"
)

// controller defaults: pressure is admitted-calls per live shard; one
// tick over the high water mark per required consecutive tick grows the
// fleet, sustained idleness shrinks it one shard at a time. Growing is
// deliberately faster than shrinking (multiplicative up, additive down)
// because the failure modes are asymmetric: a too-small fleet queues
// user requests, a too-large one only wastes arena warmth.
const (
	ctlHighWater = 1.5  // pressure above this counts toward growing
	ctlLowWater  = 0.25 // pressure below this counts toward shrinking
	ctlUpTicks   = 2    // consecutive high ticks before growing
	ctlDownTicks = 10   // consecutive low ticks before shrinking
)

// ctlState is the adaptive controller's memory between ticks.
type ctlState struct {
	up, down int
}

// ctlStep is one pure controller decision: given the live shard count,
// the physical ceiling and the observed pressure (admitted calls per
// live shard), it returns the new target shard count — unchanged when
// the evidence is not yet conclusive. Pure so the grow/shrink policy is
// unit-testable against a scripted pressure trace without a pool or a
// clock.
func ctlStep(st *ctlState, active, max int, pressure float64) int {
	switch {
	case pressure >= ctlHighWater:
		st.up++
		st.down = 0
	case pressure <= ctlLowWater:
		st.down++
		st.up = 0
	default:
		st.up, st.down = 0, 0
	}
	if st.up >= ctlUpTicks && active < max {
		st.up, st.down = 0, 0
		target := active * 2
		if target > max {
			target = max
		}
		return target
	}
	if st.down >= ctlDownTicks && active > 1 {
		st.down = 0
		return active - 1
	}
	return active
}

// adapt is the controller loop: every AdaptInterval it reads the pool's
// pressure and resizes the live shard fleet when ctlStep says so. It
// stops when the server closes. Resize failures (a pool closing under
// the tick) end the loop — the daemon is shutting down.
func (s *Server) adapt(interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var st ctlState
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		active := s.pool.ActiveShards()
		pressure := float64(s.pool.InFlight()) / float64(active)
		target := ctlStep(&st, active, s.pool.NumShards(), pressure)
		if target == active {
			continue
		}
		if err := s.pool.Resize(target); err != nil {
			return
		}
		log.Printf("pathcoverd: adapt: shards %d -> %d (pressure %.2f)", active, target, pressure)
	}
}
