package daemon

import (
	"encoding/json"
	"io"
	"log"
	"sync"
	"sync/atomic"
)

// reqLogEntry is one structured request-log line. Fields follow the
// ISSUE wire list: enough to reconstruct what a request was, how it was
// served and what it cost, without ever logging the graph itself.
type reqLogEntry struct {
	TS       string  `json:"ts"`
	Method   string  `json:"method"`
	Endpoint string  `json:"endpoint"`
	Status   int     `json:"status"`
	N        int     `json:"n,omitempty"`
	Width    string  `json:"width,omitempty"`
	Backend  string  `json:"backend,omitempty"`
	Cache    string  `json:"cache,omitempty"` // hit | miss | bypass
	Shard    int     `json:"shard"`           // -1 cache hit, -2 not solved
	Tier     string  `json:"tier"`
	Degraded bool    `json:"degraded,omitempty"`
	MS       float64 `json:"ms"`
}

// reqLogger emits head-sampled JSON request lines. The sampling
// decision is taken per request from a deterministic sequence counter
// (request seq % period), so a rate of 0.01 logs exactly every 100th
// request rather than a random subset — reproducible in tests and
// predictable in cost. rate <= 0 disables logging entirely; rate >= 1
// logs everything.
type reqLogger struct {
	mu     sync.Mutex
	w      io.Writer
	period int64
	seq    atomic.Int64
}

func newReqLogger(w io.Writer, rate float64) *reqLogger {
	if w == nil || rate <= 0 {
		return nil
	}
	period := int64(1)
	if rate < 1 {
		period = int64(1/rate + 0.5)
		if period < 1 {
			period = 1
		}
	}
	return &reqLogger{w: w, period: period}
}

// sample decides at request start (head sampling) whether this request
// logs. Nil-receiver-safe: a disabled logger samples nothing.
func (l *reqLogger) sample() bool {
	if l == nil {
		return false
	}
	return (l.seq.Add(1)-1)%l.period == 0
}

// emit writes one JSON line. Serialized under a mutex so concurrent
// request lines never interleave mid-record.
func (l *reqLogger) emit(e reqLogEntry) {
	b, err := json.Marshal(e)
	if err != nil {
		log.Printf("pathcoverd: reqlog marshal: %v", err)
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	_, werr := l.w.Write(b)
	l.mu.Unlock()
	if werr != nil {
		log.Printf("pathcoverd: reqlog write: %v", werr)
	}
}
