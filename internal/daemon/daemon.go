// Package daemon is the pathcoverd HTTP server, extracted from the
// binary so that it can be embedded: cmd/pathcoverd wraps it behind
// flags, cmd/pathcover-gateway's -spawn mode runs it as re-executed
// child processes, and the cluster tests boot real in-process nodes
// without forking anything.
//
// Endpoints (request/response bodies are JSON):
//
//	POST /cover        {"cotree": "(1 (0 a b) c)"}            -> cover
//	                   {"n": 4, "edges": [[0,1],[1,2]]}       -> cover
//	GET/POST /cover?id=g1                                     -> cover of a registered graph
//	POST /hamiltonian  {"cotree": "...", "cycle": true}       -> {"ok": ..., "path": [...]}
//	POST /batch        {"graphs": [spec, spec, ...]}          -> {"covers": [cover, ...]}
//	POST /graphs       {graph spec}                           -> {"id": "g1", ...}
//	GET  /graphs/{id}                                         -> registered-graph info
//	DELETE /graphs/{id}                                       -> {"deleted": true}
//	GET  /healthz                                             -> readiness body (see below)
//	GET  /stats                                               -> pool + cache + registry counters
//
// A graph spec is either a cotree string (the package's text format) or
// an explicit edge list. Edge lists are not restricted to cographs:
// non-cograph inputs degrade to the exact tree backend (forests) or the
// ½-approximation backend, and every cover response reports the route
// taken ("backend"), whether the answer is provably minimum ("exact"),
// and for approximate answers the certified "lower_bound" and "gap".
// Appending ?strict=1 to /cover or /batch restores the old contract:
// non-cograph edge lists are rejected with 400. A request may also pin
// the route with a "backend" field ("auto", "cograph", "tree",
// "approx"); a pinned backend that cannot serve the graph fails with
// 400 instead of rerouting.
//
// Failure statuses carry machine-actionable detail for a fronting
// gateway: saturated admission and shutdown map to 503 with a
// Retry-After header (back off exactly that long, then retry), client
// disconnects cancel queued work via the request context (499), and
// requests cut off by RequestTimeout mid-pipeline get 504. /healthz
// answers with a readiness body — shard restarts, in-flight calls,
// queue depth, a ready bit that drops while admission is saturated —
// so an active prober can distinguish a dead node from a busy one.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pathcover"
)

// Config sizes one daemon. The zero value serves: every field has the
// documented default of the corresponding pathcoverd flag.
type Config struct {
	// Shards is the solver shard count (0 = GOMAXPROCS/2, at least 1).
	Shards int
	// Queue bounds admitted calls (0 = 8 per shard, negative =
	// unbounded).
	Queue int
	// MaxBody limits request body bytes (0 = 64 MiB).
	MaxBody int64
	// Verify re-verifies every cover before responding (debugging).
	Verify bool
	// RequestTimeout is the per-request deadline enforced inside the
	// solve pipeline; requests over it get 504. 0 disables.
	RequestTimeout time.Duration
	// CacheMB is the canonical-identity result cache capacity in MiB
	// (0 disables).
	CacheMB int64
	// MaxGraphs caps the registered-graph store (0 = default 1024).
	MaxGraphs int
	// Affinity pins each shard's workers to a disjoint CPU set (Linux;
	// no-op elsewhere).
	Affinity bool
	// RetryAfter is the hint set on 503 responses (Retry-After header,
	// whole seconds, minimum 1). 0 defaults to one second.
	RetryAfter time.Duration

	// LogSample enables structured JSON request logging at the given
	// head-sampling rate: 1 logs every request, 0.01 every hundredth
	// (the decision is taken at request start from a deterministic
	// sequence counter). 0 disables logging.
	LogSample float64
	// LogOutput receives the request-log lines (default os.Stderr).
	LogOutput io.Writer
	// BatchShare caps the /batch tier's share of the admission queue
	// (weighted QoS admission): at most max(1, share×queue) batch
	// requests are in the daemon at once, so bulk traffic cannot starve
	// interactive requests. 0 defaults to 0.5; a share >= 1 or a
	// negative value disables the gate, as does an unbounded queue.
	BatchShare float64
	// ShedAfter enables cost-based load shedding: when the projected
	// queue cost of admitting a request — (outstanding vertices + the
	// request's) × learned ns/vertex ÷ live shards — exceeds this
	// budget, unpinned cover requests over explicit edge lists are
	// downgraded to the approximation backend (a free route switch;
	// cotree-built graphs would first have to materialise O(m) edges)
	// and everything else is rejected 503 with Retry-After. 0 disables
	// shedding.
	ShedAfter time.Duration
	// Adapt enables the adaptive shard controller: the live shard count
	// grows toward AdaptMax under sustained queue pressure and shrinks
	// back when idle, re-budgeting workers by pram.WorkersForShards at
	// every size.
	Adapt bool
	// AdaptMax is the physical shard ceiling under Adapt (0 =
	// GOMAXPROCS).
	AdaptMax int
	// AdaptInterval is the controller's tick (0 = 250ms).
	AdaptInterval time.Duration
}

// Server is one pathcoverd node: a sharded pool, a graph registry and
// the HTTP handler over them.
type Server struct {
	cfg      Config
	pool     *pathcover.Pool
	reg      *pathcover.Registry
	mux      *http.ServeMux
	started  time.Time
	requests atomic.Int64

	met       *serverMetrics
	reqlog    *reqLogger
	batchGate *batchGate
	estimator *costEstimator
	stop      chan struct{}
	stopOnce  sync.Once
}

// New builds a serving node. Call Close to stop the pool's workers.
func New(cfg Config) *Server {
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.BatchShare == 0 {
		cfg.BatchShare = 0.5
	}
	if cfg.LogOutput == nil {
		cfg.LogOutput = os.Stderr
	}
	var popts []pathcover.PoolOption
	if cfg.Shards > 0 {
		popts = append(popts, pathcover.WithShards(cfg.Shards))
	}
	if cfg.Adapt {
		max := cfg.AdaptMax
		if max <= 0 {
			max = runtime.GOMAXPROCS(0)
		}
		popts = append(popts, pathcover.WithMaxShards(max))
	}
	if cfg.Queue != 0 {
		popts = append(popts, pathcover.WithQueueDepth(cfg.Queue))
	}
	if cfg.CacheMB > 0 {
		popts = append(popts, pathcover.WithCache(cfg.CacheMB<<20))
	}
	if cfg.Affinity {
		popts = append(popts, pathcover.WithShardAffinity())
	}
	s := &Server{
		cfg:       cfg,
		pool:      pathcover.NewPool(popts...),
		reg:       pathcover.NewRegistry(cfg.MaxGraphs),
		started:   time.Now(),
		met:       newServerMetrics(),
		reqlog:    newReqLogger(cfg.LogOutput, cfg.LogSample),
		estimator: newCostEstimator(),
		stop:      make(chan struct{}),
	}
	s.batchGate = newBatchGate(cfg.BatchShare, s.pool.QueueDepth())
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("/cover", s.instrument("/cover", tierInteractive, s.handleCover))
	mux.HandleFunc("/hamiltonian", s.instrument("/hamiltonian", tierInteractive, s.handleHamiltonian))
	mux.HandleFunc("/batch", s.instrument("/batch", tierBatch, s.handleBatch))
	mux.HandleFunc("POST /graphs", s.instrument("/graphs", tierInteractive, s.handleRegister))
	mux.HandleFunc("GET /graphs/{id}", s.instrument("/graphs/{id}", tierInteractive, s.handleGraphInfo))
	mux.HandleFunc("DELETE /graphs/{id}", s.instrument("/graphs/{id}", tierInteractive, s.handleGraphDelete))
	s.mux = mux
	if cfg.Adapt {
		interval := cfg.AdaptInterval
		if interval <= 0 {
			interval = 250 * time.Millisecond
		}
		go s.adapt(interval)
	}
	return s
}

// Handler returns the node's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the serving pool (boot logging, stats scraping).
func (s *Server) Pool() *pathcover.Pool { return s.pool }

// Close stops the adaptive controller, then drains and stops the pool.
// The handler keeps answering (everything solve-shaped fails 503) so a
// lame-duck period is safe.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.pool.Close()
}

// graphSpec is the wire form of a graph: exactly one of the cotree text
// format or an explicit edge list on vertices 0..n-1.
type graphSpec struct {
	Cotree string   `json:"cotree,omitempty"`
	N      int      `json:"n,omitempty"`
	Edges  [][2]int `json:"edges,omitempty"`
	Names  []string `json:"names,omitempty"`
}

// graph builds the spec's Graph. strict restores the pre-degradation
// contract: edge lists must recognize as cographs or the request fails
// (mapped to 400 by the handlers).
func (s *graphSpec) graph(strict bool) (*pathcover.Graph, error) {
	switch {
	case s.Cotree != "" && (s.N != 0 || len(s.Edges) != 0):
		return nil, errors.New("give either a cotree or an edge list, not both")
	case s.Cotree != "":
		return pathcover.ParseCotree(s.Cotree)
	case s.N > 0:
		if strict {
			return pathcover.FromEdges(s.N, s.Edges, s.Names)
		}
		return pathcover.FromEdgesAny(s.N, s.Edges, s.Names)
	default:
		return nil, errors.New("empty graph spec: set \"cotree\" or \"n\"+\"edges\"")
	}
}

// strictMode reports whether the request opted into cograph-only
// serving (?strict=1).
func strictMode(r *http.Request) bool {
	v := r.URL.Query().Get("strict")
	return v != "" && v != "0" && v != "false"
}

type coverRequest struct {
	graphSpec
	OmitPaths bool `json:"omit_paths,omitempty"`
	// IncludeNames adds the "names" array (vertex id -> display name) to
	// the response, so a client that submitted the cotree text format —
	// whose parse numbers vertices by leaf order — can remap the paths
	// onto its own numbering by name.
	IncludeNames bool `json:"include_names,omitempty"`
	// Backend pins the solve route ("auto", "cograph", "tree",
	// "approx"); empty means automatic selection.
	Backend string `json:"backend,omitempty"`
}

// coverOpts maps the request's backend field (and strict mode) onto
// solve options.
func coverOpts(backendName string, strict bool) ([]pathcover.Option, error) {
	var opts []pathcover.Option
	if backendName != "" {
		b, err := pathcover.ParseBackend(backendName)
		if err != nil {
			return nil, err
		}
		opts = append(opts, pathcover.WithBackend(b))
	}
	if strict {
		opts = append(opts, pathcover.WithExactOnly())
	}
	return opts, nil
}

type statsJSON struct {
	Procs int   `json:"procs"`
	Time  int64 `json:"time"`
	Work  int64 `json:"work"`
}

type coverResponse struct {
	N        int     `json:"n"`
	NumPaths int     `json:"num_paths"`
	Paths    [][]int `json:"paths,omitempty"`
	// Names maps vertex ids to display names (only when the request set
	// "include_names").
	Names []string `json:"names,omitempty"`
	// Exact is true when NumPaths is provably minimum (cograph and tree
	// backends); Backend names the route. Approximate answers carry the
	// certified lower bound and the gap num_paths - lower_bound.
	Exact      bool      `json:"exact"`
	Backend    string    `json:"backend"`
	LowerBound int       `json:"lower_bound"`
	Gap        int       `json:"gap"`
	Stats      statsJSON `json:"stats"`
	// Degraded is true when the QoS layer downgraded this request to
	// the approximation backend instead of shedding it (the response
	// then also carries exact:false and the certified gap).
	Degraded bool `json:"degraded,omitempty"`
	// ElapsedMS is per-request wall time; batch responses report one
	// batch-level elapsed_ms instead of faking a per-cover number.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

func coverJSON(g *pathcover.Graph, cov *pathcover.Cover, omitPaths bool, elapsed time.Duration) coverResponse {
	resp := coverResponse{
		N:          g.N(),
		NumPaths:   cov.NumPaths,
		Exact:      cov.Exact,
		Backend:    cov.Backend.String(),
		LowerBound: cov.LowerBound,
		Gap:        cov.Gap,
		Stats: statsJSON{
			Procs: cov.Stats.Procs,
			Time:  cov.Stats.Time,
			Work:  cov.Stats.Work,
		},
	}
	if elapsed > 0 {
		resp.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
	}
	if !omitPaths {
		resp.Paths = cov.Paths
		if resp.Paths == nil {
			resp.Paths = [][]int{}
		}
	}
	return resp
}

// vertexNames materialises the id -> name table of a graph.
func vertexNames(g *pathcover.Graph) []string {
	names := make([]string, g.N())
	for i := range names {
		names[i] = g.Name(i)
	}
	return names
}

type hamiltonianRequest struct {
	graphSpec
	Cycle bool `json:"cycle,omitempty"`
}

type batchRequest struct {
	Graphs    []graphSpec `json:"graphs"`
	OmitPaths bool        `json:"omit_paths,omitempty"`
	// IncludeNames adds the per-cover "names" arrays, as for /cover.
	IncludeNames bool `json:"include_names,omitempty"`
	// Backend pins the solve route for every graph of the batch.
	Backend string `json:"backend,omitempty"`
}

// decode reads one JSON request body within the size limit.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		log.Printf("pathcoverd: encode: %v", err)
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

// fail maps pool, routing and parse errors onto HTTP statuses. 503s
// (saturation, shutdown) carry a Retry-After hint so a retrying client
// or gateway backs off the amount the node asks for instead of
// guessing.
func (s *Server) fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, pathcover.ErrPoolSaturated),
		errors.Is(err, pathcover.ErrPoolClosed):
		if errors.Is(err, pathcover.ErrPoolSaturated) {
			s.met.shed.With("saturation").Inc()
		}
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, pathcover.ErrNotExact),
		errors.Is(err, pathcover.ErrNotCograph),
		errors.Is(err, pathcover.ErrNotForest):
		// The request's routing constraints (strict mode or a pinned
		// backend) cannot serve this graph.
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		// The RequestTimeout deadline cut the solve off mid-pipeline.
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: err.Error()})
	case errors.Is(err, context.Canceled):
		// Client went away; 499 in the nginx tradition.
		writeJSON(w, 499, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// retryAfterSeconds renders the configured 503 hint in whole seconds,
// at least 1 (Retry-After: 0 reads as "retry immediately", which is
// exactly the stampede the header exists to prevent).
func (s *Server) retryAfterSeconds() int {
	sec := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// requestCtx derives the solve context: the client's context bounded by
// the RequestTimeout deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

func badRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
}

// shed rejects one request the QoS layer refused to admit: 503 with the
// same Retry-After contract as saturated admission, plus the shed
// counter under reason.
func (s *Server) shed(w http.ResponseWriter, reason string) {
	s.met.shed.With(reason).Inc()
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeJSON(w, http.StatusServiceUnavailable,
		errorResponse{Error: "request shed: " + reason + " budget exceeded; retry after backoff"})
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return false
	}
	return true
}

// handleHealthz answers the liveness probe with a readiness body: the
// signals a fronting gateway's prober and backoff logic act on. Ready
// drops to false while the admission queue is full (the node is alive
// but will 503 solve traffic) and after Close; restarts counts shard
// Solvers rebuilt after panics, so a node that is alive-but-crashing
// is visible as such.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	ready := st.QueueDepth <= 0 || st.InFlight < int64(st.QueueDepth)
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":          true,
		"ready":       ready,
		"shards":      s.pool.NumShards(),
		"in_flight":   st.InFlight,
		"queue_depth": st.QueueDepth,
		"restarts":    st.Restarts,
		"uptime_s":    time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"pool":       s.pool.Stats(),
		"registry":   s.reg.Stats(),
		"requests":   s.requests.Load(),
		"uptime_s":   time.Since(s.started).Seconds(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"num_cpu":    runtime.NumCPU(),
	})
}

// boolParam reads a query-string boolean ("1"/"true"), so GET
// /cover?id= requests can ask for omit_paths / include_names without a
// body.
func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v != "" && v != "0" && v != "false"
}

// handleCover serves POST /cover with an inline graph spec, and
// GET/POST /cover?id=... against a registered graph.
func (s *Server) handleCover(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if r.Method != http.MethodGet || id == "" {
		if !requirePost(w, r) {
			return
		}
	}
	s.requests.Add(1)
	var req coverRequest
	if r.Method == http.MethodPost {
		if err := s.decode(w, r, &req); err != nil {
			badRequest(w, err)
			return
		}
	}
	req.OmitPaths = req.OmitPaths || boolParam(r, "omit_paths")
	req.IncludeNames = req.IncludeNames || boolParam(r, "include_names")
	strict := strictMode(r)
	var g *pathcover.Graph
	if id != "" {
		if req.Cotree != "" || req.N != 0 || len(req.Edges) != 0 {
			badRequest(w, errors.New("give either ?id= or a graph spec, not both"))
			return
		}
		var ok bool
		if g, ok = s.reg.Get(id); !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no registered graph %q", id)})
			return
		}
	} else {
		var err error
		if g, err = req.graph(strict); err != nil {
			badRequest(w, err)
			return
		}
	}
	opts, err := coverOpts(req.Backend, strict)
	if err != nil {
		badRequest(w, err)
		return
	}
	ri := info(r)
	ri.n = g.N()
	// QoS: project the request's queue cost before admitting it. A
	// request free to choose its route degrades to the approximation
	// backend — but only when the graph already carries an explicit edge
	// list, so the "cheap tier" never starts by materialising O(m) edges
	// from a cotree (for an implicit dense cograph that conversion costs
	// more than the exact solve being shed). Pinned, strict, or
	// cotree-built requests over budget can only be rejected.
	switch s.shedCheck(g.N(), req.Backend == "" && !strict && g.HasEdgeList()) {
	case shedReject:
		s.shed(w, "cost")
		return
	case shedDegrade:
		opts = append(opts, pathcover.WithBackend(pathcover.BackendApprox))
		ri.degraded = true
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	start := time.Now()
	cov, err := s.pool.MinimumPathCover(ctx, g, opts...)
	if err != nil {
		if ri.degraded {
			// The cheap tier could not serve it either (e.g. the graph is
			// too large to materialize for the approximation): shed.
			ri.degraded = false
			s.shed(w, "cost")
			return
		}
		s.fail(w, err)
		return
	}
	elapsed := time.Since(start)
	ri.backend = cov.Backend.String()
	ri.shard = cov.Shard
	ri.cache = s.cacheOutcome(cov)
	if cov.Shard >= 0 && !ri.degraded {
		// Solved on a shard by the exact pipeline: fold it into the
		// ns/vertex estimate (cache hits and approx solves would drag the
		// estimate away from the cost being projected).
		s.estimator.observe(g.N(), elapsed.Nanoseconds())
	}
	if s.cfg.Verify {
		if err := g.Verify(cov.Paths); err != nil {
			s.fail(w, fmt.Errorf("cover failed verification: %w", err))
			return
		}
	}
	resp := coverJSON(g, cov, req.OmitPaths, elapsed)
	resp.Degraded = ri.degraded
	if req.IncludeNames {
		resp.Names = vertexNames(g)
	}
	writeJSON(w, http.StatusOK, resp)
}

// cacheOutcome classifies how a pool cover was served for the request
// log: "hit" never occupied a shard, "miss" was solved and (when
// eligible) filled the cache, "off" means the daemon runs uncached.
func (s *Server) cacheOutcome(cov *pathcover.Cover) string {
	switch {
	case cov.Shard < 0:
		return "hit"
	case s.cfg.CacheMB > 0:
		return "miss"
	default:
		return "off"
	}
}

// handleRegister (POST /graphs) parses, validates and canonicalizes a
// graph spec once and stores it under a fresh id for repeated
// GET/POST /cover?id= querying.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var spec graphSpec
	if err := s.decode(w, r, &spec); err != nil {
		badRequest(w, err)
		return
	}
	g, err := spec.graph(strictMode(r))
	if err != nil {
		badRequest(w, err)
		return
	}
	info(r).n = g.N()
	id := s.reg.Register(g)
	writeJSON(w, http.StatusOK, graphInfoJSON(id, g))
}

func graphInfoJSON(id string, g *pathcover.Graph) map[string]any {
	info := map[string]any{
		"id":      id,
		"n":       g.N(),
		"cograph": g.IsCograph(),
	}
	if hi, lo, ok := g.CanonicalHash(); ok {
		info["canonical_hash"] = fmt.Sprintf("%016x%016x", hi, lo)
	}
	return info
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := r.PathValue("id")
	g, ok := s.reg.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no registered graph %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, graphInfoJSON(id, g))
}

func (s *Server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := r.PathValue("id")
	if !s.reg.Delete(id) {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no registered graph %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": true, "id": id})
}

func (s *Server) handleHamiltonian(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	s.requests.Add(1)
	var req hamiltonianRequest
	if err := s.decode(w, r, &req); err != nil {
		badRequest(w, err)
		return
	}
	// Hamiltonicity is cograph-only (no degraded backend exists), so the
	// edge-list form must recognize regardless of strict mode.
	g, err := req.graph(true)
	if err != nil {
		badRequest(w, err)
		return
	}
	ri := info(r)
	ri.n = g.N()
	ri.backend = pathcover.BackendCograph.String()
	// Hamiltonicity has no approximate tier, so over-budget requests can
	// only be rejected.
	if s.shedCheck(g.N(), false) == shedReject {
		s.shed(w, "cost")
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	start := time.Now()
	var (
		path []int
		ok   bool
	)
	if req.Cycle {
		path, ok, err = s.pool.HamiltonianCycle(ctx, g)
	} else {
		path, ok, err = s.pool.HamiltonianPath(ctx, g)
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	s.estimator.observe(g.N(), time.Since(start).Nanoseconds())
	if path == nil {
		path = []int{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         ok,
		"cycle":      req.Cycle,
		"path":       path,
		"n":          g.N(),
		"elapsed_ms": float64(time.Since(start).Nanoseconds()) / 1e6,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	s.requests.Add(1)
	var req batchRequest
	if err := s.decode(w, r, &req); err != nil {
		badRequest(w, err)
		return
	}
	if len(req.Graphs) == 0 {
		badRequest(w, errors.New("empty batch"))
		return
	}
	strict := strictMode(r)
	gs := make([]*pathcover.Graph, len(req.Graphs))
	total := 0
	for i := range req.Graphs {
		g, err := req.Graphs[i].graph(strict)
		if err != nil {
			badRequest(w, fmt.Errorf("graph %d: %w", i, err))
			return
		}
		gs[i] = g
		total += g.N()
	}
	opts, err := coverOpts(req.Backend, strict)
	if err != nil {
		badRequest(w, err)
		return
	}
	ri := info(r)
	ri.n = total
	// QoS: batch traffic holds at most its weighted share of the
	// admission queue, so bulk load cannot starve interactive requests;
	// over the share it is shed with the standard Retry-After contract.
	gateRelease, ok := s.batchGate.admit()
	if !ok {
		s.shed(w, "batch_share")
		return
	}
	defer gateRelease()
	// Batches never degrade (a mixed exact/approx batch would be
	// unusable): over the cost budget they shed whole.
	if s.shedCheck(total, false) == shedReject {
		s.shed(w, "cost")
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	start := time.Now()
	covs, err := s.pool.CoverBatch(ctx, gs, opts...)
	if err != nil {
		s.fail(w, err)
		return
	}
	elapsed := time.Since(start)
	out := make([]coverResponse, len(covs))
	for i, cov := range covs {
		if s.cfg.Verify {
			if err := gs[i].Verify(cov.Paths); err != nil {
				s.fail(w, fmt.Errorf("cover %d failed verification: %w", i, err))
				return
			}
		}
		out[i] = coverJSON(gs[i], cov, req.OmitPaths, 0)
		if req.IncludeNames {
			out[i].Names = vertexNames(gs[i])
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"covers":     out,
		"elapsed_ms": float64(elapsed.Nanoseconds()) / 1e6,
	})
}
