package daemon

import (
	"bytes"
	"encoding/json"

	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pathcover"
	"pathcover/internal/metrics"
)

// postBody sends a JSON body and returns the status, response payload
// and headers.
func postBody(t *testing.T, base, path string, body any) (int, []byte, http.Header) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read: %v", path, err)
	}
	return resp.StatusCode, payload, resp.Header
}

// scrape pulls /metrics and parses it strictly — any malformed line,
// missing TYPE or broken histogram invariant fails the test.
func scrape(t *testing.T, base string) *metrics.Exposition {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET /metrics: read: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	exp, err := metrics.Parse(string(payload))
	if err != nil {
		t.Fatalf("golden parse failed: %v\n%s", err, payload)
	}
	return exp
}

func cotreeSpec(seed uint64, n int) map[string]any {
	return map[string]any{"cotree": pathcover.Random(seed, n, pathcover.Balanced).String()}
}

// TestMetricsGoldenParse serves a known request mix, scrapes /metrics,
// and checks both that the exposition parses strictly and that the
// counters account for exactly the traffic sent. It then hammers the
// server concurrently (meaningful under -race) and asserts every
// counter-typed sample is monotone across scrapes.
func TestMetricsGoldenParse(t *testing.T) {
	var logBuf bytes.Buffer
	s := New(Config{Shards: 2, CacheMB: 4, LogSample: 1, LogOutput: &logBuf})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// 6 distinct covers, 1 repeat (cache hit), 1 malformed (400).
	for i := uint64(0); i < 6; i++ {
		if code, body, _ := postBody(t, srv.URL, "/cover", cotreeSpec(i+1, 64)); code != http.StatusOK {
			t.Fatalf("cover %d: HTTP %d: %s", i, code, body)
		}
	}
	if code, _, _ := postBody(t, srv.URL, "/cover", cotreeSpec(1, 64)); code != http.StatusOK {
		t.Fatalf("repeat cover: HTTP %d", code)
	}
	if code, _, _ := postBody(t, srv.URL, "/cover", map[string]any{"cotree": "((("}); code != http.StatusBadRequest {
		t.Fatalf("malformed cover: HTTP %d, want 400", code)
	}
	if code, _, _ := postBody(t, srv.URL, "/hamiltonian", cotreeSpec(9, 48)); code != http.StatusOK {
		t.Fatalf("hamiltonian: HTTP %d", code)
	}
	if code, _, _ := postBody(t, srv.URL, "/batch", map[string]any{
		"graphs": []map[string]any{cotreeSpec(11, 32), cotreeSpec(12, 40)},
	}); code != http.StatusOK {
		t.Fatalf("batch: HTTP %d", code)
	}
	code, payload, _ := postBody(t, srv.URL, "/graphs", cotreeSpec(13, 56))
	if code != http.StatusOK {
		t.Fatalf("register: HTTP %d", code)
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(payload, &reg); err != nil || reg.ID == "" {
		t.Fatalf("register response %q: %v", payload, err)
	}

	exp := scrape(t, srv.URL)
	if got := exp.Types["pathcoverd_requests_total"]; got != "counter" {
		t.Errorf("pathcoverd_requests_total TYPE = %q, want counter", got)
	}
	if got := exp.Types["pathcoverd_shards"]; got != "gauge" {
		t.Errorf("pathcoverd_shards TYPE = %q, want gauge", got)
	}
	if got := exp.Types["pathcoverd_request_seconds"]; got != "histogram" {
		t.Errorf("pathcoverd_request_seconds TYPE = %q, want histogram", got)
	}
	for key, want := range map[string]float64{
		`pathcoverd_requests_total{endpoint="/cover"}`:       8, // 6 + repeat + malformed
		`pathcoverd_requests_total{endpoint="/hamiltonian"}`: 1,
		`pathcoverd_requests_total{endpoint="/batch"}`:       1,
		`pathcoverd_requests_total{endpoint="/graphs"}`:      1,
		`pathcoverd_responses_total{code="400"}`:             1,
		`pathcoverd_request_seconds_count{tier="batch"}`:     1,
		`pathcoverd_width_route_total{width="int16"}`:        7, // solved covers only: 6 + repeat
		`pathcoverd_shards`:                                  2,
		`pathcoverd_shards_max`:                              2,
	} {
		if got, ok := exp.Value(key); !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", key, got, ok, want)
		}
	}
	// 8 cover + 1 hamiltonian + 1 register = 10 interactive requests.
	if got, _ := exp.Value(`pathcoverd_request_seconds_count{tier="interactive"}`); got != 10 {
		t.Errorf("interactive histogram count = %v, want 10", got)
	}
	if hits, ok := exp.Value("pathcoverd_cache_hits_total"); !ok || hits < 1 {
		t.Errorf("cache hits = %v (present=%v), want >= 1", hits, ok)
	}

	// Every instrumented request must have produced one JSON log line.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 11 { // 10 interactive + 1 batch
		t.Fatalf("request log has %d lines, want 11:\n%s", len(lines), logBuf.String())
	}
	sawHit := false
	for _, ln := range lines {
		var e reqLogEntry
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("log line %q: %v", ln, err)
		}
		if e.Method == "" || e.Endpoint == "" || e.Status == 0 || e.Tier == "" {
			t.Errorf("log line missing fields: %q", ln)
		}
		if e.Cache == "hit" && e.Shard == -1 {
			sawHit = true
		}
	}
	if !sawHit {
		t.Error("no log line recorded the cache hit (cache=hit, shard=-1)")
	}

	// Concurrent load: counters must be monotone between scrapes, and
	// the exposition must stay parseable while requests are in flight.
	before := scrape(t, srv.URL)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				blob, _ := json.Marshal(cotreeSpec(uint64(w*100+i), 64+i))
				resp, err := http.Post(srv.URL+"/cover", "application/json", bytes.NewReader(blob))
				if err != nil {
					panic(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if i%5 == 0 {
					mresp, err := http.Get(srv.URL + "/metrics")
					if err != nil {
						panic(err)
					}
					io.Copy(io.Discard, mresp.Body)
					mresp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	after := scrape(t, srv.URL)
	for key, v := range before.Samples {
		name, _, _ := strings.Cut(key, "{")
		fam := name
		if after.Types[fam] == "" {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(name, suf); ok && after.Types[base] == "histogram" {
					fam = base
					break
				}
			}
		}
		typ := after.Types[fam]
		if typ != "counter" && typ != "histogram" {
			continue // gauges may move either way
		}
		got, ok := after.Samples[key]
		if !ok {
			t.Errorf("counter %s vanished between scrapes", key)
			continue
		}
		if got < v {
			t.Errorf("counter %s went backwards: %v -> %v", key, v, got)
		}
	}
	if d := after.Samples[`pathcoverd_requests_total{endpoint="/cover"}`] -
		before.Samples[`pathcoverd_requests_total{endpoint="/cover"}`]; d != 80 {
		t.Errorf("concurrent phase counted %v /cover requests, want 80", d)
	}
}

// TestControllerTrace runs the pure controller against a scripted
// pressure trace: multiplicative growth after sustained high pressure,
// additive shrinking after sustained idleness, and counter resets on
// any tick in the healthy band.
func TestControllerTrace(t *testing.T) {
	st := &ctlState{}
	active := 1
	step := func(p float64) int {
		active = ctlStep(st, active, 8, p)
		return active
	}
	// Growth requires ctlUpTicks consecutive high ticks, then doubles.
	if got := step(2.0); got != 1 {
		t.Fatalf("after 1 high tick: active %d, want 1", got)
	}
	if got := step(2.0); got != 2 {
		t.Fatalf("after 2 high ticks: active %d, want 2", got)
	}
	step(5.0)
	if got := step(5.0); got != 4 {
		t.Fatalf("second growth: active %d, want 4", got)
	}
	// A mid-band tick resets the streak: one high tick after it must
	// not grow.
	step(1.0)
	if got := step(2.0); got != 4 {
		t.Fatalf("high tick after reset grew early: active %d, want 4", got)
	}
	if got := step(2.0); got != 8 {
		t.Fatalf("third growth: active %d, want 8", got)
	}
	// At the ceiling, high pressure is a no-op.
	for i := 0; i < 5; i++ {
		if got := step(9.9); got != 8 {
			t.Fatalf("growth past the ceiling: active %d, want 8", got)
		}
	}
	// Shrinking needs ctlDownTicks consecutive low ticks and steps down
	// one shard at a time.
	for i := 0; i < ctlDownTicks-1; i++ {
		if got := step(0.1); got != 8 {
			t.Fatalf("shrank after only %d low ticks: active %d", i+1, got)
		}
	}
	if got := step(0.1); got != 7 {
		t.Fatalf("after %d low ticks: active %d, want 7", ctlDownTicks, got)
	}
	// A mid-band tick also resets the shrink streak.
	for i := 0; i < ctlDownTicks-1; i++ {
		step(0.0)
	}
	step(1.0)
	for i := 0; i < ctlDownTicks-1; i++ {
		if got := step(0.0); got != 7 {
			t.Fatalf("shrink streak survived a mid-band tick: active %d", got)
		}
	}
	if got := step(0.0); got != 6 {
		t.Fatalf("second shrink: active %d, want 6", got)
	}
	// The floor is one shard.
	st2 := &ctlState{}
	active = 1
	for i := 0; i < 3*ctlDownTicks; i++ {
		if got := ctlStep(st2, active, 8, 0.0); got != 1 {
			t.Fatalf("shrank below one shard: active %d", got)
		}
	}
}

// TestBatchGate checks the weighted-admission cap arithmetic and the
// claim/release cycle.
func TestBatchGate(t *testing.T) {
	g := newBatchGate(0.5, 8)
	if g.cap != 4 {
		t.Fatalf("cap = %d, want 4", g.cap)
	}
	releases := make([]func(), 0, 4)
	for i := 0; i < 4; i++ {
		rel, ok := g.admit()
		if !ok {
			t.Fatalf("admit %d refused below cap", i)
		}
		releases = append(releases, rel)
	}
	if _, ok := g.admit(); ok {
		t.Fatal("admit succeeded at cap")
	}
	releases[0]()
	if _, ok := g.admit(); !ok {
		t.Fatal("admit refused after a release")
	}
	// The cap floors at 1 so batches always make progress.
	if g := newBatchGate(0.01, 8); g.cap != 1 {
		t.Errorf("tiny share cap = %d, want 1", g.cap)
	}
	// Unbounded queues and degenerate shares disable the gate.
	for _, g := range []*batchGate{
		newBatchGate(0.5, -1), newBatchGate(0.5, 0),
		newBatchGate(1.0, 8), newBatchGate(0, 8), newBatchGate(-2, 8),
	} {
		if g.cap != 0 {
			t.Errorf("gate not disabled: cap = %d", g.cap)
		}
		if _, ok := g.admit(); !ok {
			t.Error("disabled gate refused admission")
		}
	}
}

// TestShedPaths drives every shedding verdict through the HTTP surface
// with the cost estimate pinned impossibly high: explicit-edge-list
// covers degrade to the approximation backend, while cotree, pinned,
// strict, hamiltonian and batch requests are rejected 503 with a
// Retry-After header.
func TestShedPaths(t *testing.T) {
	s := New(Config{Shards: 1, Queue: -1, ShedAfter: time.Millisecond, LogOutput: io.Discard})
	defer s.Close()
	s.estimator.seed(1e9) // one second per vertex: everything projects over budget
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	pathEdges := func(n int) []map[string]any {
		edges := make([][2]int, 0, n-1)
		for v := 1; v < n; v++ {
			edges = append(edges, [2]int{v - 1, v})
		}
		return []map[string]any{{"n": n, "edges": edges}}
	}
	tree := pathEdges(6)[0] // P6 contains P4: not a cograph, explicit edges

	wantShed := func(path string, body any) {
		t.Helper()
		code, payload, hdr := postBody(t, srv.URL, path, body)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s: HTTP %d, want 503: %s", path, code, payload)
		}
		if hdr.Get("Retry-After") == "" {
			t.Errorf("%s: shed 503 without Retry-After", path)
		}
		if !bytes.Contains(payload, []byte("shed")) {
			t.Errorf("%s: shed body does not say so: %s", path, payload)
		}
	}

	// Cotree-built graphs have no explicit edges — degrading would cost
	// an O(m) materialisation — so they reject.
	wantShed("/cover", cotreeSpec(3, 64))
	// Pinned and strict requests may not be rerouted.
	pinned := map[string]any{"n": tree["n"], "edges": tree["edges"], "backend": "tree"}
	wantShed("/cover", pinned)
	wantShed("/cover?strict=1", map[string]any{"n": 3, "edges": [][2]int{{0, 1}, {1, 2}}})
	// Hamiltonicity has no approximate tier; batches never mix tiers.
	wantShed("/hamiltonian", cotreeSpec(3, 64))
	wantShed("/batch", map[string]any{"graphs": pathEdges(6)})

	// An unpinned explicit-edge-list cover degrades instead: admitted,
	// answered approximately, marked.
	code, payload, _ := postBody(t, srv.URL, "/cover", tree)
	if code != http.StatusOK {
		t.Fatalf("degradable cover: HTTP %d: %s", code, payload)
	}
	var cov struct {
		NumPaths int    `json:"num_paths"`
		Exact    bool   `json:"exact"`
		Degraded bool   `json:"degraded"`
		Backend  string `json:"backend"`
	}
	if err := json.Unmarshal(payload, &cov); err != nil {
		t.Fatalf("degraded response: %v", err)
	}
	if !cov.Degraded || cov.Exact {
		t.Fatalf("degraded cover flags: degraded=%v exact=%v, want true/false (%s)",
			cov.Degraded, cov.Exact, payload)
	}
	if cov.Backend != pathcover.BackendApprox.String() {
		t.Errorf("degraded backend = %q, want %q", cov.Backend, pathcover.BackendApprox)
	}

	exp := scrape(t, srv.URL)
	if got, _ := exp.Value(`pathcoverd_shed_total{reason="cost"}`); got != 5 {
		t.Errorf("shed{cost} = %v, want 5", got)
	}
	if got, _ := exp.Value("pathcoverd_degraded_total"); got != 1 {
		t.Errorf("degraded_total = %v, want 1", got)
	}

	// Clearing the estimate re-admits everything: no data, no shedding.
	s.estimator.seed(0)
	code, payload, _ = postBody(t, srv.URL, "/cover", cotreeSpec(3, 64))
	if code != http.StatusOK {
		t.Fatalf("cover after reset: HTTP %d: %s", code, payload)
	}
	cov.Exact, cov.Degraded = false, false // degraded is omitempty: zero before reuse
	if err := json.Unmarshal(payload, &cov); err != nil || !cov.Exact || cov.Degraded {
		t.Fatalf("cover after reset: exact=%v degraded=%v err=%v", cov.Exact, cov.Degraded, err)
	}
}

// TestBatchShareShed fills the batch tier's admission share with
// requests parked on a slow graph and asserts the next batch is shed
// with reason batch_share while interactive /cover traffic still
// serves.
func TestBatchShareShed(t *testing.T) {
	// Queue 2, share 0.5 -> the batch tier may hold exactly one request.
	s := New(Config{Shards: 1, Queue: 2, BatchShare: 0.5, LogOutput: io.Discard})
	defer s.Close()
	if s.batchGate.cap != 1 {
		t.Fatalf("gate cap = %d, want 1", s.batchGate.cap)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	release, ok := s.batchGate.admit() // park the tier's one slot
	if !ok {
		t.Fatal("could not claim the batch slot")
	}
	code, payload, hdr := postBody(t, srv.URL, "/batch", map[string]any{
		"graphs": []map[string]any{cotreeSpec(5, 32)},
	})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("batch over share: HTTP %d: %s", code, payload)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("batch-share 503 missing Retry-After")
	}
	// Interactive traffic is not gated by the batch share.
	if code, payload, _ := postBody(t, srv.URL, "/cover", cotreeSpec(6, 32)); code != http.StatusOK {
		t.Fatalf("interactive cover while batch tier full: HTTP %d: %s", code, payload)
	}
	release()
	if code, payload, _ := postBody(t, srv.URL, "/batch", map[string]any{
		"graphs": []map[string]any{cotreeSpec(5, 32)},
	}); code != http.StatusOK {
		t.Fatalf("batch after release: HTTP %d: %s", code, payload)
	}
	exp := scrape(t, srv.URL)
	if got, _ := exp.Value(`pathcoverd_shed_total{reason="batch_share"}`); got != 1 {
		t.Errorf("shed{batch_share} = %v, want 1", got)
	}
}

// TestReqLogSampling checks the deterministic head-sampling sequence
// and the nil-logger fast path.
func TestReqLogSampling(t *testing.T) {
	if l := newReqLogger(nil, 1); l != nil {
		t.Error("logger without a writer is not nil")
	}
	if l := newReqLogger(io.Discard, 0); l != nil {
		t.Error("rate 0 logger is not nil")
	}
	var nilLogger *reqLogger
	if nilLogger.sample() {
		t.Error("nil logger sampled a request")
	}
	l := newReqLogger(io.Discard, 0.25)
	hits := 0
	for i := 0; i < 100; i++ {
		if l.sample() {
			hits++
		}
	}
	if hits != 25 {
		t.Errorf("rate 0.25 sampled %d of 100, want exactly 25", hits)
	}
}

// TestAdaptiveServerGrows boots a real adaptive daemon with a fast tick
// and holds enough concurrent load to push pressure over the high water
// mark, then waits for the controller to grow the live shard fleet.
func TestAdaptiveServerGrows(t *testing.T) {
	s := New(Config{
		Shards: 1, Queue: -1, AdaptMax: 2, Adapt: true,
		AdaptInterval: 5 * time.Millisecond, LogOutput: io.Discard,
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Pre-marshal a few big bodies: each solve spans several controller
	// ticks, so sustained concurrency keeps in-flight (and therefore
	// pressure) above the high water mark at every sample.
	bodies := make([][]byte, 4)
	for i := range bodies {
		bodies[i], _ = json.Marshal(cotreeSpec(uint64(i+1), 4000))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(srv.URL+"/cover", "application/json",
					bytes.NewReader(bodies[(w+i)%len(bodies)]))
				if err != nil {
					panic(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	grown := false
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if s.pool.ActiveShards() == 2 {
			grown = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if !grown {
		t.Fatal("controller never grew the pool to 2 shards under sustained load")
	}
	exp := scrape(t, srv.URL)
	if got, _ := exp.Value("pathcoverd_pool_resizes_total"); got < 1 {
		t.Errorf("pool_resizes_total = %v, want >= 1", got)
	}
	if got, _ := exp.Value("pathcoverd_shards_max"); got != 2 {
		t.Errorf("shards_max = %v, want 2", got)
	}
}
