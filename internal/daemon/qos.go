package daemon

import (
	"math"
	"sync"
	"sync/atomic"
)

// batchGate is the weighted-admission gate of the batch QoS tier: at
// most cap batch requests may be inside the daemon at once, where cap
// is the batch tier's share of the pool's admission bound. Interactive
// traffic is never gated here — it competes only at the pool's own
// admission — so a flood of /batch calls can at worst consume its share
// of the queue, never starve /cover.
type batchGate struct {
	cap      int64 // 0 = ungated
	inflight atomic.Int64
}

// newBatchGate sizes the gate: share (0..1) of the pool's admission
// bound, at least 1 so batches always make progress. An unbounded queue
// or a share >= 1 disables the gate.
func newBatchGate(share float64, queueDepth int) *batchGate {
	g := &batchGate{}
	if share > 0 && share < 1 && queueDepth > 0 {
		g.cap = int64(math.Max(1, share*float64(queueDepth)))
	}
	return g
}

// admit claims a batch slot; the returned release must be called once
// when the request finishes. ok=false means the batch tier is at its
// share and the request must be shed (503 + Retry-After).
func (g *batchGate) admit() (release func(), ok bool) {
	if g.cap == 0 {
		return func() {}, true
	}
	if g.inflight.Add(1) > g.cap {
		g.inflight.Add(-1)
		return nil, false
	}
	return func() { g.inflight.Add(-1) }, true
}

// costEstimator learns the daemon's serving rate as an EWMA of
// nanoseconds per vertex over completed solves. Because the paper's
// algorithm is linear-time, ns/vertex is nearly constant across sizes,
// so a request's cost is predictable from n alone *before* it is
// admitted — the property that makes cost-based shedding principled
// here rather than heuristic.
type costEstimator struct {
	mu       sync.Mutex
	nsPerV   float64 // EWMA; 0 until the first observation
	weight   float64 // smoothing factor for new observations
	observed int64
}

func newCostEstimator() *costEstimator { return &costEstimator{weight: 0.2} }

// observe folds one completed solve (n vertices in elapsedNS) into the
// estimate. Cache hits must not be observed — they cost no solve time
// and would drag the estimate toward zero.
func (e *costEstimator) observe(n int, elapsedNS int64) {
	if n <= 0 || elapsedNS <= 0 {
		return
	}
	sample := float64(elapsedNS) / float64(n)
	e.mu.Lock()
	if e.nsPerV == 0 {
		e.nsPerV = sample
	} else {
		e.nsPerV += e.weight * (sample - e.nsPerV)
	}
	e.observed++
	e.mu.Unlock()
}

// nsPerVertex reads the current estimate (0 = no data yet).
func (e *costEstimator) nsPerVertex() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.nsPerV
}

// seed primes the estimate directly (tests, or an operator-supplied
// prior).
func (e *costEstimator) seed(nsPerV float64) {
	e.mu.Lock()
	e.nsPerV = nsPerV
	e.mu.Unlock()
}

// shedAction is the QoS layer's verdict on one request before it is
// admitted to the pool.
type shedAction int

const (
	shedAdmit   shedAction = iota // within budget: solve normally
	shedDegrade                   // over budget: serve the cheap approximate tier
	shedReject                    // over budget and cannot degrade: 503 + Retry-After
)

// shedCheck projects the queue cost of admitting cost more vertices —
// (outstanding load + cost) × ns/vertex ÷ live shards — against the
// configured budget. Under budget (or with shedding disabled, or no
// estimate yet) the request is admitted. Over budget, requests that may
// degrade — unpinned, non-strict /cover requests whose graph already
// carries an explicit edge list, so the switch costs no conversion —
// are downgraded to the approximation backend (answering exact:false
// plus a certified gap); the rest are rejected. The projection reads
// two atomics — the decision itself never queues.
func (s *Server) shedCheck(cost int, canDegrade bool) shedAction {
	if s.cfg.ShedAfter <= 0 {
		return shedAdmit
	}
	nsPerV := s.estimator.nsPerVertex()
	if nsPerV == 0 {
		return shedAdmit // no data yet: never shed blind
	}
	active := s.pool.ActiveShards()
	if active < 1 {
		active = 1
	}
	projected := (float64(s.pool.Load()) + float64(cost)) * nsPerV / float64(active)
	if projected <= float64(s.cfg.ShedAfter.Nanoseconds()) {
		return shedAdmit
	}
	if canDegrade {
		return shedDegrade
	}
	return shedReject
}
