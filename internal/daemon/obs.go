package daemon

import (
	"context"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"pathcover"
	"pathcover/internal/metrics"
)

// QoS tier names: interactive requests (/cover, /hamiltonian, /graphs)
// versus bulk /batch traffic. The tiers get separate latency histograms
// and separate admission treatment (see qos.go).
const (
	tierInteractive = "interactive"
	tierBatch       = "batch"
)

// serverMetrics is the daemon's own counter state: everything that is
// not already a counter on the pool, cache or registry (those are
// rendered straight off their stats snapshots at scrape time, so a
// scrape can never disagree with /stats).
type serverMetrics struct {
	requests  metrics.CounterVec // by endpoint
	responses metrics.CounterVec // by status code
	widths    metrics.CounterVec // by index-width route of solved covers
	shed      metrics.CounterVec // by reason: cost | batch_share
	degraded  metrics.Counter    // covers downgraded to the approx backend
	latency   map[string]*metrics.Histogram
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{
		latency: map[string]*metrics.Histogram{
			tierInteractive: metrics.NewHistogram(nil),
			tierBatch:       metrics.NewHistogram(nil),
		},
	}
}

// reqInfo is the per-request observation record. The instrument wrapper
// allocates one into the request context; handlers fill in what they
// learn (graph size, route, cache outcome) and the wrapper turns it
// into histogram observations and an optional log line on the way out.
type reqInfo struct {
	tier     string
	n        int
	backend  string
	cache    string
	shard    int
	degraded bool
}

type reqInfoKey struct{}

// info returns the request's observation record, or a throwaway one for
// requests that bypassed the instrument wrapper (tests hitting handlers
// directly).
func info(r *http.Request) *reqInfo {
	if ri, ok := r.Context().Value(reqInfoKey{}).(*reqInfo); ok {
		return ri
	}
	return &reqInfo{shard: -2}
}

// statusRecorder captures the response status for the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps one endpoint's handler with the observation layer:
// request/response counters, the tier latency histogram, and the
// sampled request log. Observation is strictly off the solve path — it
// reads the clock and bumps atomics, and never touches the pool — so
// sim counters are bit-identical with instrumentation on or off.
func (s *Server) instrument(endpoint, tier string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ri := &reqInfo{tier: tier, shard: -2}
		sampled := s.reqlog.sample()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri)))
		elapsed := time.Since(start)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.met.requests.With(endpoint).Inc()
		s.met.responses.With(strconv.Itoa(rec.status)).Inc()
		s.met.latency[tier].Observe(elapsed)
		if ri.n > 0 && rec.status == http.StatusOK && ri.shard != -2 {
			s.met.widths.With(pathcover.RouteWidth(ri.n)).Inc()
		}
		if ri.degraded {
			s.met.degraded.Inc()
		}
		if sampled {
			s.reqlog.emit(reqLogEntry{
				TS:       start.UTC().Format(time.RFC3339Nano),
				Method:   r.Method,
				Endpoint: endpoint,
				Status:   rec.status,
				N:        ri.n,
				Width:    widthOf(ri),
				Backend:  ri.backend,
				Cache:    ri.cache,
				Shard:    ri.shard,
				Tier:     tier,
				Degraded: ri.degraded,
				MS:       float64(elapsed.Nanoseconds()) / 1e6,
			})
		}
	}
}

// widthOf renders the index-width route for the log line (empty when no
// graph was solved).
func widthOf(ri *reqInfo) string {
	if ri.n <= 0 {
		return ""
	}
	return pathcover.RouteWidth(ri.n)
}

// handleMetrics renders the Prometheus-text exposition: the daemon's
// own request counters plus point-in-time families derived from the
// pool, cache and registry stats snapshots.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	mw := metrics.NewWriter(w)

	mw.CounterVec("pathcoverd_requests_total", "HTTP requests by endpoint.",
		"endpoint", s.met.requests.Snapshot())
	mw.CounterVec("pathcoverd_responses_total", "HTTP responses by status code.",
		"code", s.met.responses.Snapshot())
	mw.Histogram("pathcoverd_request_seconds",
		"Request latency by QoS tier (p50/p95/p99 via histogram_quantile).",
		s.met.latency, "tier")
	mw.CounterVec("pathcoverd_width_route_total",
		"Solved covers by index-width route (int16/int32/int kernels).",
		"width", s.met.widths.Snapshot())
	mw.CounterVec("pathcoverd_shed_total",
		"Requests shed by the QoS layer, by reason (cost = projected queue cost over budget, batch_share = batch tier at its admission share).",
		"reason", s.met.shed.Snapshot())
	mw.Counter("pathcoverd_degraded_total",
		"Cover requests downgraded to the approximation backend instead of shed.",
		float64(s.met.degraded.Value()))

	mw.Gauge("pathcoverd_shards", "Live solver shards (grows/shrinks under -adapt).",
		float64(st.ActiveShards))
	mw.Gauge("pathcoverd_shards_max", "Physical shard ceiling Resize can grow to.",
		float64(s.pool.NumShards()))
	mw.Counter("pathcoverd_pool_resizes_total", "Completed live-shard resizes.",
		float64(st.Resizes))
	mw.Gauge("pathcoverd_pool_in_flight", "Admitted calls inside the pool (queued + executing).",
		float64(st.InFlight))
	mw.Gauge("pathcoverd_pool_queue_depth", "Admission bound (0 = unbounded).",
		float64(st.QueueDepth))
	mw.Counter("pathcoverd_pool_rejected_total", "Calls rejected by saturated admission.",
		float64(st.Rejected))
	mw.Counter("pathcoverd_pool_canceled_total", "Calls canceled by their context.",
		float64(st.Canceled))
	mw.Counter("pathcoverd_pool_restarts_total", "Shard solvers rebuilt after a panic.",
		float64(st.Restarts))
	mw.Counter("pathcoverd_batches_total", "Batch calls admitted.", float64(st.Batches))
	mw.Gauge("pathcoverd_arena_bytes", "Retained scratch-arena bytes across live shards.",
		float64(st.ArenaBytes))

	shardLoad := make([]metrics.LabelledValue, 0, len(st.Shards))
	shardCalls := make([]metrics.LabelledValue, 0, len(st.Shards))
	shardArena := make([]metrics.LabelledValue, 0, len(st.Shards))
	for _, row := range st.Shards {
		l := fmt.Sprintf("%d", row.Shard)
		shardLoad = append(shardLoad, metrics.LabelledValue{Label: l, Value: float64(row.Load)})
		shardCalls = append(shardCalls, metrics.LabelledValue{Label: l, Value: float64(row.Calls)})
		shardArena = append(shardArena, metrics.LabelledValue{Label: l, Value: float64(row.ArenaBytes)})
	}
	mw.GaugeVec("pathcoverd_shard_queue_depth",
		"Outstanding dispatch load per shard (queued + executing vertices).",
		"shard", shardLoad)
	mw.CounterVec("pathcoverd_shard_calls_total", "Calls served per shard.",
		"shard", shardCalls)
	mw.GaugeVec("pathcoverd_shard_arena_bytes",
		"Retained scratch-arena bytes per shard as of its last call.",
		"shard", shardArena)

	if st.Cache != nil {
		mw.Counter("pathcoverd_cache_hits_total", "Result-cache hits (served without a shard).",
			float64(st.Cache.Hits))
		mw.Counter("pathcoverd_cache_misses_total", "Result-cache misses (filled by a solve).",
			float64(st.Cache.Misses))
		mw.Counter("pathcoverd_cache_coalesced_total", "Requests coalesced onto an in-flight solve.",
			float64(st.Cache.Coalesced))
		mw.Counter("pathcoverd_cache_evictions_total", "Cache entries evicted for capacity.",
			float64(st.Cache.Evictions))
		mw.Gauge("pathcoverd_cache_bytes", "Resident result-cache bytes.",
			float64(st.Cache.Bytes))
	}
	if err := mw.Err(); err != nil {
		// The write failed mid-document (client gone); nothing to salvage.
		return
	}
}

// OpsHandler returns the operational mux served on the -ops port:
// /metrics plus the net/http/pprof endpoints. The pprof handlers are
// only reachable here — never on the serving port — so exposing the
// serving port to untrusted clients does not expose profiling. /metrics
// is additionally registered on the serving mux, where scraping it is
// harmless and convenient for single-port deployments.
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
