package core

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"pathcover/internal/baseline"
	"pathcover/internal/cograph"
	"pathcover/internal/cotree"
	"pathcover/internal/par"
	"pathcover/internal/pram"
)

func coreSims() []*pram.Sim {
	return []*pram.Sim{
		pram.NewSerial(),
		pram.New(4, pram.WithGrain(8)),
		pram.New(33, pram.WithGrain(8)),
	}
}

// randomTree builds a random canonical cotree with n leaves.
func randomTree(rng *rand.Rand, n int) *cotree.Tree {
	var build func(n int, label int8) *cotree.Tree
	id := 0
	build = func(n int, label int8) *cotree.Tree {
		if n == 1 {
			id++
			return cotree.Single(fmt.Sprintf("u%d", id))
		}
		k := 2
		if n > 2 {
			k = 2 + rng.IntN(min(n-1, 4)-1)
		}
		sizes := make([]int, k)
		for i := range sizes {
			sizes[i] = 1
		}
		for extra := n - k; extra > 0; extra-- {
			sizes[rng.IntN(k)]++
		}
		child := cotree.Label0
		if label == cotree.Label0 {
			child = cotree.Label1
		}
		parts := make([]*cotree.Tree, k)
		for i := range parts {
			parts[i] = build(sizes[i], child)
		}
		if label == cotree.Label1 {
			return cotree.Join(parts...)
		}
		return cotree.Union(parts...)
	}
	lbl := cotree.Label1
	if rng.IntN(2) == 0 {
		lbl = cotree.Label0
	}
	return build(n, lbl)
}

// checkCover verifies validity of a cover against the cotree's graph.
func checkCover(t *testing.T, tr *cotree.Tree, paths [][]int) {
	t.Helper()
	o := cotree.NewAdjOracle(tr)
	n := tr.NumVertices()
	seen := make([]bool, n)
	count := 0
	for _, p := range paths {
		if len(p) == 0 {
			t.Fatal("empty path")
		}
		for i, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("bad or repeated vertex %d in %v", v, paths)
			}
			seen[v] = true
			count++
			if i > 0 && !o.Adjacent(p[i-1], v) {
				t.Fatalf("non-edge (%s,%s) in path %v of cover %v\ntree: %s",
					tr.Name(p[i-1]), tr.Name(v), p, paths, tr)
			}
		}
	}
	if count != n {
		t.Fatalf("cover has %d vertices of %d", count, n)
	}
}

func TestComputePMatchesRecurrence(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, s := range coreSims() {
		for trial := 0; trial < 20; trial++ {
			tr := randomTree(rng, 2+rng.IntN(150))
			b := tr.Binarize(s)
			L := b.MakeLeftist(s, uint64(trial))
			tour := parTour(s, b, uint64(trial))
			got := ComputeP(s, b, L, tour)
			want := baseline.PathCounts(b, L)
			for u := range want {
				if got[u] != want[u] {
					t.Fatalf("procs=%d trial=%d: p[%d]=%d want %d",
						s.Procs(), trial, u, got[u], want[u])
				}
			}
		}
	}
}

func parTour(s *pram.Sim, b *cotree.Bin, seed uint64) *parTourT { return tourOf(s, b, seed) }

// small indirection so tests read naturally.
type parTourT = par.Tour

func tourOf(s *pram.Sim, b *cotree.Bin, seed uint64) *par.Tour {
	return par.TourBinary(s, b.BinTree, seed)
}

// Fig. 10 of the paper: cotree (1 (0 (1 a b) c) (0 d e f)) — a and c are
// primary, b, e, f inserts, d a bridge. Without dummy vertices the
// bracket sequence is exactly
//
//	a[ a( a( b) b( b( c[ c( c( d] d] d[ e) f) e( e( f( f(
func TestFig10Brackets(t *testing.T) {
	tr := cotree.MustParse("(1 (0 (1 a b) c) (0 d e f))")
	s := pram.NewSerial()
	b := tr.Binarize(s)
	L := b.MakeLeftist(s, 0)
	tour := tourOf(s, b, 0)
	p := ComputeP(s, b, L, tour)
	red := Reduce(s, b, L, p, tour)

	// Roles as stated by the paper.
	wantRole := map[string]Role{
		"a": RolePrimary, "c": RolePrimary,
		"b": RoleInsert, "e": RoleInsert, "f": RoleInsert,
		"d": RoleBridge,
	}
	nameOf := func(v int) string { return tr.Name(v) }
	for v := 0; v < 6; v++ {
		if red.Role[v] != wantRole[nameOf(v)] {
			t.Errorf("role(%s) = %v, want %v", nameOf(v), red.Role[v], wantRole[nameOf(v)])
		}
	}

	seq := GenBrackets(s, b, red, false)
	got := seq.Annotated(func(id int) string {
		if id < 6 {
			return tr.Name(id)
		}
		return fmt.Sprintf("D%d", id-6)
	})
	want := "a[ a( a( b) b( b( c[ c( c( d] d] d[ e) f) e( e( f( f("
	if got != want {
		t.Errorf("bracket sequence:\n got %s\nwant %s", got, want)
	}
	if seq.String() != "[(()(([((]][))((((" {
		t.Errorf("raw brackets = %q", seq.String())
	}

	// The paper's matching for this sequence:
	//   a[-d], c[-d], a(-b), c(-f), c(-e)
	// Building the pseudo forest must reproduce the tree of Fig. 10:
	// d is the root with left child a, right child c; b is a's right
	// child; f is c's left child; e is c's right child.
	ps, err := BuildPseudo(s, 6, red, seq)
	if err != nil {
		t.Fatal(err)
	}
	idx := func(name string) int {
		for v := 0; v < 6; v++ {
			if tr.Name(v) == name {
				return v
			}
		}
		t.Fatalf("no vertex %s", name)
		return -1
	}
	a, bb, c, d, e, f := idx("a"), idx("b"), idx("c"), idx("d"), idx("e"), idx("f")
	if ps.Parent[d] != -1 || ps.Left[d] != a || ps.Right[d] != c {
		t.Errorf("d: parent=%d left=%d right=%d", ps.Parent[d], ps.Left[d], ps.Right[d])
	}
	if ps.Right[a] != bb || ps.Left[c] != f || ps.Right[c] != e {
		t.Errorf("attachments wrong: a.r=%d c.l=%d c.r=%d", ps.Right[a], ps.Left[c], ps.Right[c])
	}
	// Inorder of this pseudo tree is a b d f c e — the paper notes d-f
	// (bridge next to insert of the same 1-node) is an illegal adjacency,
	// which is exactly why dummies exist.
	tour2 := par.TourBinary(s, ps.BinTree, 1)
	order := make([]string, 6)
	for v := 0; v < 6; v++ {
		order[tour2.In[v]] = tr.Name(v)
	}
	wantOrder := [6]string{"a", "b", "d", "f", "c", "e"}
	for i, nm := range wantOrder {
		if order[i] != nm {
			t.Errorf("inorder[%d]=%s want %s (full %v)", i, order[i], nm, order)
		}
	}
}

// With dummies enabled, the same instance must produce a *valid* minimum
// path cover (Fig. 11's mechanism).
func TestFig11DummyExchange(t *testing.T) {
	tr := cotree.MustParse("(1 (0 (1 a b) c) (0 d e f))")
	for _, s := range coreSims() {
		cov, err := ParallelCover(s, tr, Options{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		checkCover(t, tr, cov.Paths)
		if cov.NumPaths != 1 {
			t.Errorf("procs=%d: %d paths, want Hamiltonian", s.Procs(), cov.NumPaths)
		}
	}
}

// Without Step 6 the cover of the Fig. 10 instance must be invalid
// (demonstrates that the exchange is doing real work).
func TestFig9IllegalWithoutFix(t *testing.T) {
	tr := cotree.MustParse("(1 (0 (1 a b) c) (0 d e f))")
	s := pram.NewSerial()
	cov, err := ParallelCover(s, tr, Options{Seed: 1, WithoutDummy: true})
	if err != nil {
		t.Fatal(err)
	}
	o := cotree.NewAdjOracle(tr)
	valid := true
	for _, p := range cov.Paths {
		for i := 1; i < len(p); i++ {
			if !o.Adjacent(p[i-1], p[i]) {
				valid = false
			}
		}
	}
	if valid {
		t.Error("pseudo path tree without dummies happened to be valid; expected the d-f illegal adjacency")
	}
}

func TestParallelCoverKnownGraphs(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"(0 a b)", 2},
		{"(1 a b)", 1},
		{"(1 a b c d e)", 1},                     // K5
		{"(0 a b c d e)", 5},                     // empty
		{"(1 (0 a b c d e) f)", 4},               // star
		{"(1 (0 a b) (0 c d))", 1},               // C4
		{"(1 (0 a b c d) (0 s t u v w x y))", 3}, // K_{4,7}
		{"(0 (1 a b) (1 c d) (1 e f))", 3},
	}
	for _, s := range coreSims() {
		for _, c := range cases {
			tr := cotree.MustParse(c.src)
			cov, err := ParallelCover(s, tr, Options{Seed: 7})
			if err != nil {
				t.Fatalf("%s: %v", c.src, err)
			}
			checkCover(t, tr, cov.Paths)
			if cov.NumPaths != c.want {
				t.Errorf("procs=%d %s: %d paths want %d", s.Procs(), c.src, cov.NumPaths, c.want)
			}
		}
	}
}

func TestParallelCoverSingleVertex(t *testing.T) {
	s := pram.NewSerial()
	cov, err := ParallelCover(s, cotree.Single("x"), Options{})
	if err != nil || cov.NumPaths != 1 || len(cov.Paths[0]) != 1 {
		t.Fatalf("single vertex: %v %v", cov, err)
	}
}

// The central differential test: the parallel cover must be valid and
// exactly as small as the sequential baseline / brute force on random
// cographs.
func TestParallelCoverMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for _, s := range coreSims() {
		for trial := 0; trial < 60; trial++ {
			n := 2 + rng.IntN(120)
			tr := randomTree(rng, n)
			cov, err := ParallelCover(s, tr, Options{Seed: uint64(trial)})
			if err != nil {
				t.Fatalf("procs=%d trial=%d n=%d: %v\ntree: %s", s.Procs(), trial, n, err, tr)
			}
			checkCover(t, tr, cov.Paths)
			want := len(baseline.Run(tr))
			if cov.NumPaths != want {
				t.Fatalf("procs=%d trial=%d: %d paths, sequential %d\ntree: %s",
					s.Procs(), trial, cov.NumPaths, want, tr)
			}
		}
	}
}

func TestParallelCoverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 1))
	s := pram.New(5, pram.WithGrain(4))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.IntN(10)
		tr := randomTree(rng, n)
		cov, err := ParallelCover(s, tr, Options{Seed: uint64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v\ntree: %s", trial, err, tr)
		}
		checkCover(t, tr, cov.Paths)
		g := cograph.FromCotree(tr)
		if want := baseline.BruteMinPathCover(g); cov.NumPaths != want {
			t.Fatalf("trial %d: %d paths, brute %d\ntree: %s", trial, cov.NumPaths, want, tr)
		}
	}
}

// quick property: on arbitrary random cographs the pipeline yields a
// valid cover of exactly p(root) paths.
func TestParallelCoverProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, procs uint8) bool {
		n := int(nRaw%300) + 1
		rng := rand.New(rand.NewPCG(seed, 5))
		tr := randomTree(rng, n)
		s := pram.New(1+int(procs%8), pram.WithGrain(32))
		cov, err := ParallelCover(s, tr, Options{Seed: seed})
		if err != nil {
			return false
		}
		o := cotree.NewAdjOracle(tr)
		seen := make([]bool, n)
		cnt := 0
		for _, p := range cov.Paths {
			for i, v := range p {
				if v < 0 || v >= n || seen[v] {
					return false
				}
				seen[v] = true
				cnt++
				if i > 0 && !o.Adjacent(p[i-1], v) {
					return false
				}
			}
		}
		return cnt == n && cov.NumPaths == len(baseline.Run(tr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Fig. 5 shape: reduction flattens the right subtree of a 1-node.
func TestFig5Reduce(t *testing.T) {
	// 1-node over v = (union of two edges) and w = (join (0 x y) z): the
	// w side has structure that must be ignored: all 3 of its vertices
	// become bridges (p(v)=2 > L(w)=3 is false: 2 <= 3 -> case 2:
	// 1 bridge, 2 inserts, 2 dummies).
	tr := cotree.MustParse("(1 (0 (1 a b) (1 c d)) (0 x (1 y z)))")
	s := pram.NewSerial()
	b := tr.Binarize(s)
	L := b.MakeLeftist(s, 0)
	tour := tourOf(s, b, 0)
	p := ComputeP(s, b, L, tour)
	red := Reduce(s, b, L, p, tour)
	nb, ni, nd := 0, 0, 0
	actives := 0
	for u := 0; u < b.NumNodes(); u++ {
		if red.Active[u] && red.NB[u]+red.NI[u] == 3 {
			actives++
			nb, ni, nd = red.NB[u], red.NI[u], red.ND[u]
		}
	}
	if actives != 1 {
		t.Fatalf("%d active 1-nodes with |w|=3, want 1", actives)
	}
	if nb != 1 || ni != 2 || nd != 2 {
		t.Errorf("block = (%d bridges, %d inserts, %d dummies), want (1,2,2)", nb, ni, nd)
	}
	// The nested 1-node (y z) inside w must NOT be active.
	count := 0
	for u := 0; u < b.NumNodes(); u++ {
		if red.Active[u] {
			count++
		}
	}
	// active 1-nodes: (a b), (c d), root. Not (y z).
	if count != 3 {
		t.Errorf("%d active 1-nodes, want 3", count)
	}
	cov, err := ParallelCover(s, tr, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, tr, cov.Paths)
	if cov.NumPaths != 1 {
		t.Errorf("cover size %d want 1", cov.NumPaths)
	}
}

// Fig. 12 capacity: at every active case-2 node, inserts + dummies =
// L(w)+p(v)-1 <= L(v)+p(v)-1.
func TestFig12Capacity(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	s := pram.NewSerial()
	for trial := 0; trial < 40; trial++ {
		tr := randomTree(rng, 2+rng.IntN(80))
		b := tr.Binarize(s)
		L := b.MakeLeftist(s, 0)
		tour := tourOf(s, b, 0)
		p := ComputeP(s, b, L, tour)
		red := Reduce(s, b, L, p, tour)
		for u := 0; u < b.NumNodes(); u++ {
			if !red.Active[u] {
				continue
			}
			v, w := b.Left[u], b.Right[u]
			if red.NI[u]+red.ND[u] > L[v]+p[v]-1 && red.NI[u] > 0 {
				t.Fatalf("capacity violated at node %d: I+D=%d > L(v)+p(v)-1=%d",
					u, red.NI[u]+red.ND[u], L[v]+p[v]-1)
			}
			if red.NB[u]+red.NI[u] != L[w] {
				t.Fatalf("bridges+inserts %d != L(w) %d", red.NB[u]+red.NI[u], L[w])
			}
		}
	}
}

// Adversarial shapes.
func TestParallelCoverShapes(t *testing.T) {
	s := pram.New(8, pram.WithGrain(64))
	n := 500

	// K_n via a flat join.
	parts := make([]*cotree.Tree, n)
	for i := range parts {
		parts[i] = cotree.Single(fmt.Sprintf("k%d", i))
	}
	kn := cotree.Join(parts...)
	cov, err := ParallelCover(s, kn, Options{Seed: 1})
	if err != nil || cov.NumPaths != 1 {
		t.Fatalf("K_n: %v, err=%v", cov, err)
	}

	// Empty graph.
	en := cotree.Union(parts...)
	cov, err = ParallelCover(s, en, Options{Seed: 2})
	if err != nil || cov.NumPaths != n {
		t.Fatalf("empty: %d paths, err=%v", cov.NumPaths, err)
	}

	// Caterpillar of alternating union/join (deep cotree).
	cat := cotree.Single("c0")
	for i := 1; i < 300; i++ {
		leaf := cotree.Single(fmt.Sprintf("c%d", i))
		if i%2 == 0 {
			cat = cotree.Union(cat, leaf)
		} else {
			cat = cotree.Join(cat, leaf)
		}
	}
	cov, err = ParallelCover(s, cat, Options{Seed: 3})
	if err != nil {
		t.Fatalf("caterpillar: %v", err)
	}
	checkCover(t, cat, cov.Paths)
	if want := len(baseline.Run(cat)); cov.NumPaths != want {
		t.Fatalf("caterpillar: %d paths want %d", cov.NumPaths, want)
	}

	// Union of many K3s.
	tri := make([]*cotree.Tree, 100)
	for i := range tri {
		tri[i] = cotree.Join(
			cotree.Single(fmt.Sprintf("t%da", i)),
			cotree.Single(fmt.Sprintf("t%db", i)),
			cotree.Single(fmt.Sprintf("t%dc", i)))
	}
	tt := cotree.Union(tri...)
	cov, err = ParallelCover(s, tt, Options{Seed: 4})
	if err != nil || cov.NumPaths != 100 {
		t.Fatalf("triangles: %d paths, err=%v", cov.NumPaths, err)
	}
	checkCover(t, tt, cov.Paths)
}

func TestParallelCoverLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large test")
	}
	rng := rand.New(rand.NewPCG(10, 10))
	n := 50000
	tr := randomTree(rng, n)
	s := pram.New(pram.ProcsFor(n), pram.WithGrain(1024))
	cov, err := ParallelCover(s, tr, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, tr, cov.Paths)
	if want := len(baseline.Run(tr)); cov.NumPaths != want {
		t.Fatalf("%d paths want %d", cov.NumPaths, want)
	}
}

// TestCoverReleaseIdempotent pins the Release contract: double release
// must not hand the same buffer to the arena twice (the debug arena
// panics on that), nil receivers are no-ops, and the Sim stays usable.
func TestCoverReleaseIdempotent(t *testing.T) {
	tr := randomTree(rand.New(rand.NewPCG(11, 4)), 300)
	s := pram.New(pram.ProcsFor(300), pram.WithGrain(32))
	defer s.Close()
	s.Scratch().SetDebug(true)
	cov, err := ParallelCover(s, tr, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cov.Release(s)
	cov.Release(s) // second release: must be a no-op
	var nilCover *Cover
	nilCover.Release(s) // nil receiver: must be a no-op

	// The arena must still be coherent: another full run works.
	cov2, err := ParallelCover(s, tr, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, tr, cov2.Paths)
	cov2.Release(s)
	cov2.Release(s)
}

func TestStepTrace(t *testing.T) {
	tr := cotree.MustParse("(1 (0 (1 a b) c) (0 d e f))")
	s := pram.New(4, pram.WithGrain(8))
	trace := &StepTrace{}
	if _, err := ParallelCover(s, tr, Options{Seed: 1, Trace: trace}); err != nil {
		t.Fatal(err)
	}
	if len(trace.Names) != 10 {
		t.Fatalf("trace has %d steps, want 10:\n%s", len(trace.Names), trace)
	}
	var total int64
	for _, tm := range trace.Time {
		total += tm
	}
	if total != s.Time() {
		t.Fatalf("trace time %d != sim time %d", total, s.Time())
	}
	out := trace.String()
	for _, want := range []string{"binarize", "contraction", "bracket", "exchange", "bypass", "extract"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}
