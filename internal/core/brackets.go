package core

import (
	"strings"

	"pathcover/internal/cotree"
	"pathcover/internal/par"
	"pathcover/internal/pram"
)

// Kind identifies a bracket. Square brackets build the bridge structure
// of the path trees; round brackets attach insert and dummy vertices.
// The two families are matched independently (paper §4).
type Kind uint8

const (
	KSqOpenP  Kind = iota // "[" — the emitting vertex seeks a parent
	KSqCloseR             // "]" — right-child slot of a bridge vertex
	KSqCloseL             // "]" — left-child slot of a bridge vertex
	KRdOpenL              // "(" — left-child slot
	KRdOpenR              // "(" — right-child slot (a dummy's only slot)
	KRdCloseP             // ")" — the emitting vertex seeks a parent
)

// IsSquare reports whether the kind belongs to the square family.
func (k Kind) IsSquare() bool { return k <= KSqCloseL }

// IsOpen reports whether the kind is an opening bracket of its family.
func (k Kind) IsOpen() bool {
	return k == KSqOpenP || k == KRdOpenL || k == KRdOpenR
}

// Rune returns the display character.
func (k Kind) Rune() byte {
	switch k {
	case KSqOpenP:
		return '['
	case KSqCloseR, KSqCloseL:
		return ']'
	case KRdOpenL, KRdOpenR:
		return '('
	default:
		return ')'
	}
}

// BracketSeqIx is the sequence B(R) of Step 4 in struct-of-arrays form,
// generic over the index width (see par.Ix). Vert[i] is the emitting
// vertex (>= NumVertices for dummies).
type BracketSeqIx[I par.Ix] struct {
	Vert []I
	Kind []Kind
	// EffDummies is the number of dummy vertices actually emitted
	// (0 when the generator ran in the paper's pre-§4 form without
	// dummies, as in Fig. 10).
	EffDummies int
}

// BracketSeq is the int-width bracket sequence, the historical form.
type BracketSeq = BracketSeqIx[int]

// Len returns the number of brackets.
func (bs *BracketSeqIx[I]) Len() int { return len(bs.Vert) }

// Release returns the sequence's slices to the Sim's arena.
func (bs *BracketSeqIx[I]) Release(s *pram.Sim) {
	pram.Release(s, bs.Vert)
	pram.Release(s, bs.Kind)
	bs.Vert, bs.Kind = nil, nil
}

// String renders the bare bracket characters.
func (bs *BracketSeqIx[I]) String() string {
	var sb strings.Builder
	for _, k := range bs.Kind {
		sb.WriteByte(k.Rune())
	}
	return sb.String()
}

// Annotated renders the sequence with the emitting vertex before each
// bracket, e.g. "a[ a( a( b) ...", using the provided namer.
func (bs *BracketSeqIx[I]) Annotated(name func(id int) string) string {
	var sb strings.Builder
	for i := range bs.Vert {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(name(int(bs.Vert[i])))
		sb.WriteByte(bs.Kind[i].Rune())
	}
	return sb.String()
}

// GenBrackets emits B(R) (paper Step 4). The sequence is the
// concatenation, over the leaves of Tblr in left-to-right order, of
//
//	primary leaf x:            x[ x( x(
//	block of active 1-node u:  (]] [)^NB  )^NI  )^ND  (^ND  (()^NI
//
// where a block sits at the leaf-rank interval of u's right-child bundle
// (the right subtree's leaves are exactly the last leaves of u's
// subtree, so the recursive definition B(u) = B(v)·block(u) linearizes
// to leaf-rank order). Offsets come from one prefix sum; every bracket
// is then decoded independently in O(1).
func GenBrackets(s *pram.Sim, b *cotree.Bin, red *Reduction, withDummies bool) *BracketSeq {
	return genBracketsIx(s, b, red, withDummies)
}

func genBracketsIx[I par.Ix](s *pram.Sim, b *cotree.BinIx[I], red *ReductionIx[I], withDummies bool) *BracketSeqIx[I] {
	n := red.NumVertices
	unitLen := pram.Grab[I](s, n)
	s.ParallelForRange(n, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			x := red.VertAt[r]
			u := red.Owner[x]
			if u < 0 {
				unitLen[r] = 3
				continue
			}
			if I(r) == red.Start[b.Right[u]] {
				nd := I(0)
				if withDummies {
					nd = red.ND[u]
				}
				unitLen[r] = 3*red.NB[u] + 3*red.NI[u] + 2*nd
			}
		}
	})
	owner, off, total := par.DistributeIx(s, unitLen)
	bs := &BracketSeqIx[I]{
		Vert: pram.GrabNoClear[I](s, total),
		Kind: pram.GrabNoClear[Kind](s, total),
	}
	if withDummies {
		bs.EffDummies = red.TotalDummies
	}
	s.ForCostRange(total, 2, func(ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			decodeBracket(bs, red, b, owner[i], off[i], i, withDummies)
		}
	})
	pram.Release(s, unitLen)
	pram.Release(s, owner)
	pram.Release(s, off)
	return bs
}

// decodeBracket writes bracket i of the sequence, which sits at offset j
// of the unit owned by leaf rank r.
func decodeBracket[I par.Ix](bs *BracketSeqIx[I], red *ReductionIx[I], b *cotree.BinIx[I], r, j I, i int, withDummies bool) {
	x := red.VertAt[r]
	u := red.Owner[x]
	if u < 0 { // primary leaf
		bs.Vert[i] = x
		switch j {
		case 0:
			bs.Kind[i] = KSqOpenP
		case 1:
			bs.Kind[i] = KRdOpenL
		default:
			bs.Kind[i] = KRdOpenR
		}
		return
	}
	nb, ni := red.NB[u], red.NI[u]
	nd := I(0)
	if withDummies {
		nd = red.ND[u]
	}
	start := red.Start[b.Right[u]]
	n := I(red.NumVertices)
	switch {
	case j < 3*nb: // bridge triple ] ] [
		bv := red.VertAt[start+j/3]
		bs.Vert[i] = bv
		switch j % 3 {
		case 0:
			bs.Kind[i] = KSqCloseR
		case 1:
			bs.Kind[i] = KSqCloseL
		default:
			bs.Kind[i] = KSqOpenP
		}
	case j < 3*nb+ni: // insert parent brackets )
		t := red.VertAt[start+nb+(j-3*nb)]
		bs.Vert[i] = t
		bs.Kind[i] = KRdCloseP
	case j < 3*nb+ni+nd: // dummy parent brackets )
		d := red.DummyBase[u] + (j - 3*nb - ni)
		bs.Vert[i] = n + d
		bs.Kind[i] = KRdCloseP
	case j < 3*nb+ni+2*nd: // dummy child slots (
		d := red.DummyBase[u] + (j - 3*nb - ni - nd)
		bs.Vert[i] = n + d
		bs.Kind[i] = KRdOpenR
	default: // insert child slots ( (
		j2 := j - 3*nb - ni - 2*nd
		t := red.VertAt[start+nb+j2/2]
		bs.Vert[i] = t
		if j2%2 == 0 {
			bs.Kind[i] = KRdOpenL
		} else {
			bs.Kind[i] = KRdOpenR
		}
	}
}
