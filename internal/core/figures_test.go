package core

import (
	"testing"

	"pathcover/internal/cotree"
	"pathcover/internal/par"
	"pathcover/internal/pram"
)

// Fig. 6: a path tree is a binary tree whose inorder traversal is the
// path. Build one explicitly and read the path off the Euler tour.
func TestFig6PathTree(t *testing.T) {
	// Path tree over 7 vertices:
	//        3
	//      /   \
	//     1     5
	//    / \   / \
	//   0   2 4   6
	// inorder = 0 1 2 3 4 5 6.
	bt := par.NewBinTree(7)
	link := func(p, l, r int) {
		bt.Left[p], bt.Right[p] = l, r
		bt.Parent[l], bt.Parent[r] = p, p
	}
	link(3, 1, 5)
	link(1, 0, 2)
	link(5, 4, 6)
	s := pram.New(3, pram.WithGrain(2))
	paths, _ := ExtractPaths(s, bt, 9)
	if len(paths) != 1 {
		t.Fatalf("%d trees, want 1", len(paths))
	}
	for i, v := range paths[0] {
		if v != i {
			t.Fatalf("inorder = %v, want 0..6", paths[0])
		}
	}
}

// Fig. 7 (Case 1, p(v) > L(w)): the L(w) vertices of G(w) become a
// bridge chain whose leaves are path-tree roots; inorder alternates
// trees and bridges. Instance: join(empty_5, empty_2): p(v)=5 roots,
// L(w)=2 bridges, resulting in 5-2 = 3 paths, one of which interleaves
// three singleton trees with the two bridges.
func TestFig7Case1(t *testing.T) {
	tr := cotree.MustParse("(1 (0 a b c d e) (0 x y))")
	s := pram.NewSerial()
	b := tr.Binarize(s)
	L := b.MakeLeftist(s, 0)
	tour := tourOf(s, b, 0)
	p := ComputeP(s, b, L, tour)
	red := Reduce(s, b, L, p, tour)

	// Both w-vertices are bridges; no inserts, no dummies (Case 1).
	nb, ni, nd := 0, 0, 0
	for u := 0; u < b.NumNodes(); u++ {
		if red.Active[u] {
			nb += red.NB[u]
			ni += red.NI[u]
			nd += red.ND[u]
		}
	}
	if nb != 2 || ni != 0 || nd != 0 {
		t.Fatalf("case 1 block = (%d,%d,%d), want (2,0,0)", nb, ni, nd)
	}

	seq := GenBrackets(s, b, red, true)
	ps, err := BuildPseudo(s, 6+1, red, seq)
	if err != nil {
		t.Fatal(err)
	}
	paths, _ := ExtractPaths(s, Bypass(s, ps, red, 1), 2)
	if len(paths) != 3 {
		t.Fatalf("%d paths, want 3 (p(v)-L(w) = 5-2)", len(paths))
	}
	// One path has 5 vertices (3 leaves + 2 bridges, alternating
	// v-side / w-side), the other two are singletons.
	lens := map[int]int{}
	for _, p := range paths {
		lens[len(p)]++
	}
	if lens[5] != 1 || lens[1] != 2 {
		t.Fatalf("path lengths %v, want one 5 and two 1s", lens)
	}
	// In the 5-path, w-vertices (bridges) sit at the even gaps:
	// v w v w v.
	for _, p := range paths {
		if len(p) != 5 {
			continue
		}
		for i, v := range p {
			isBridge := red.Role[v] == RoleBridge
			if (i%2 == 1) != isBridge {
				t.Fatalf("bridge placement wrong in %v at %d", p, i)
			}
		}
	}
}

// Fig. 8 (Case 2, p(v) <= L(w)): p(v)-1 bridges chain all path trees
// into one; the remaining w-vertices are inserted as leaves, giving a
// Hamiltonian path.
func TestFig8Case2(t *testing.T) {
	// G(v) = union of 4 edges (p=4, L=8); G(w) = empty_5 (L=5 >= 4).
	tr := cotree.MustParse("(1 (0 (1 a b) (1 c d) (1 e f) (1 g h)) (0 s t u v w))")
	s := pram.NewSerial()
	b := tr.Binarize(s)
	L := b.MakeLeftist(s, 0)
	tour := tourOf(s, b, 0)
	p := ComputeP(s, b, L, tour)
	red := Reduce(s, b, L, p, tour)

	// The root block: 3 bridges, 2 inserts, 6 dummies (2p(v)-2).
	found := false
	for u := 0; u < b.NumNodes(); u++ {
		if red.Active[u] && red.NB[u]+red.NI[u] == 5 {
			found = true
			if red.NB[u] != 3 || red.NI[u] != 2 || red.ND[u] != 6 {
				t.Fatalf("root block = (%d,%d,%d), want (3,2,6)",
					red.NB[u], red.NI[u], red.ND[u])
			}
		}
	}
	if !found {
		t.Fatal("no active 1-node with |w| = 5")
	}

	cov, err := ParallelCover(s, tr, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, tr, cov.Paths)
	if cov.NumPaths != 1 {
		t.Fatalf("case 2 must give a Hamiltonian path, got %d paths", cov.NumPaths)
	}
}
