package core

import (
	"fmt"

	"pathcover/internal/cotree"
	"pathcover/internal/par"
	"pathcover/internal/pram"
)

// The paper's abstract singles out Hamiltonicity: "our result implies
// that for this class of graphs the task of finding a Hamiltonian path
// can be solved time- and work-optimally in parallel". This file
// provides the parallel Hamiltonian path (a cover of size one) and the
// parallel Hamiltonian cycle: the decision is the join condition
// p(v) <= L(w) at the root (computable by Step 3 alone), and the
// construction splits a parallel cover of G(v) into exactly L(w)
// segments and interleaves the vertices of G(w) around the cycle with
// prefix-sum arithmetic — O(log n) time, O(n) work end to end.
//
// Like ParallelCover, both constructions follow opt.Width: the
// narrowest index kernels (int16, then int32) the input fits, int
// otherwise.

// ParallelHamiltonianPath returns a Hamiltonian path computed by the
// optimal parallel algorithm, or ok=false when none exists. The path is
// drawn from the Sim's arena; the caller owns (and may Release) it.
func ParallelHamiltonianPath(s *pram.Sim, t *cotree.Tree, opt Options) ([]int, bool, error) {
	cov, err := ParallelCover(s, t, opt)
	if err != nil {
		return nil, false, err
	}
	if cov.NumPaths != 1 {
		cov.Release(s)
		return nil, false, nil
	}
	path := pram.GrabNoClear[int](s, len(cov.Paths[0]))
	copy(path, cov.Paths[0])
	cov.Release(s)
	return path, true, nil
}

// ParallelHamiltonianCycle returns a Hamiltonian cycle computed by the
// parallel pipeline, or ok=false when none exists. The cycle is drawn
// from the Sim's arena; the caller owns (and may Release) it.
func ParallelHamiltonianCycle(s *pram.Sim, t *cotree.Tree, opt Options) ([]int, bool, error) {
	w, err := resolveWidth(t.NumVertices(), opt.Width)
	if err != nil {
		return nil, false, err
	}
	switch w {
	case WidthNarrow16:
		return hamCycleIx[int16](s, t, opt)
	case WidthNarrow:
		return hamCycleIx[int32](s, t, opt)
	}
	return hamCycleIx[int](s, t, opt)
}

func hamCycleIx[I par.Ix](s *pram.Sim, t *cotree.Tree, opt Options) ([]int, bool, error) {
	b := cotree.BinarizeIx[I](s, t)
	L := b.MakeLeftist(s, opt.Seed)
	n := b.NumVertices()
	root := b.Root
	release := func() {
		pram.Release(s, L)
		b.Release(s)
	}
	if n < 3 || b.IsLeaf(root) || !b.One[root] {
		release()
		return nil, false, nil
	}
	// The tour is borrowed across the nested coverBinIx run below, so pin
	// the cache entry: inner acquisitions then build private tours instead
	// of evicting this one.
	tour, tourOwned := par.AcquireTourIx(s, b.BinTree, opt.Seed^0x5ca1e)
	if !tourOwned {
		par.PinTourCacheIx[I](s)
	}
	doneTour := func() {
		if tourOwned {
			tour.Release(s)
		} else {
			par.UnpinTourCacheIx[I](s)
		}
	}
	p := computePIx(s, b, L, tour)
	v, w := b.Left[root], b.Right[root]
	k := int(L[w])
	pv := p[v]
	pram.Release(s, p)
	if int(pv) > k {
		doneTour()
		release()
		return nil, false, nil
	}

	// Cover G(v) with the parallel algorithm on the extracted subtree.
	sub, toSub, fromSub := extractSubtreeIx(s, b, int(v), tour)
	subL := pram.Grab[I](s, sub.NumNodes())
	s.ParallelForRange(b.NumNodes(), func(lo, hi int) {
		for u := lo; u < hi; u++ {
			if su := toSub[u]; su >= 0 {
				subL[su] = L[u]
			}
		}
	})
	pram.Release(s, toSub)
	cov, err := coverBinIx(s, sub, subL, opt)
	pram.Release(s, subL)
	sub.Release(s)
	if err != nil {
		pram.Release(s, fromSub)
		doneTour()
		release()
		return nil, false, err
	}

	// Flatten the cover: order[] is the concatenation of the paths;
	// pathEnd[j] marks the last vertex of each path.
	nv := int(L[v])
	order := pram.GrabNoClear[I](s, nv)
	pathEnd := pram.GrabNoClear[bool](s, nv)
	lens := pram.GrabNoClear[I](s, len(cov.Paths))
	s.ParallelFor(len(cov.Paths), func(i int) { lens[i] = I(len(cov.Paths[i])) })
	offs, _ := par.ScanIx(s, lens)
	s.ParallelFor(len(cov.Paths), func(i int) {
		for j, sv := range cov.Paths[i] { // cost folded into ForCost below
			order[int(offs[i])+j] = fromSub[sv]
			pathEnd[int(offs[i])+j] = j == len(cov.Paths[i])-1
		}
	})
	s.Charge(0, int64(nv)) // account the copy above
	numPaths := len(cov.Paths)
	cov.Release(s)
	pram.Release(s, fromSub)
	pram.Release(s, lens)
	pram.Release(s, offs)

	// Split into exactly k segments: the p(v) path ends plus the first
	// k - p(v) interior positions become segment ends.
	cuts := I(k - numPaths)
	interior := boolIxs[I](s, pathEnd, true)
	interiorRank, _ := par.ScanIx(s, interior)
	pram.Release(s, interior)
	segEnd := pram.GrabNoClear[bool](s, nv)
	s.ParallelForRange(nv, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			segEnd[j] = pathEnd[j] || interiorRank[j] < cuts
		}
	})
	pram.Release(s, interiorRank)
	// Output index of order[j] = j + (number of segment ends before j);
	// the w vertex after segment i goes right after that segment's end.
	ends := boolIxs[I](s, segEnd, false)
	endsBefore, totalEnds := par.ScanIx(s, ends)
	pram.Release(s, ends)
	if int(totalEnds) != k {
		pram.Release(s, order)
		pram.Release(s, pathEnd)
		pram.Release(s, segEnd)
		pram.Release(s, endsBefore)
		doneTour()
		release()
		return nil, false, fmt.Errorf("core: cycle split produced %d segments, want %d", int(totalEnds), k)
	}
	ws := subtreeLeafVerticesIx(s, b, int(w), tour)
	cycle := pram.GrabNoClear[I](s, n)
	s.ParallelForRange(nv, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			pos := j + int(endsBefore[j])
			cycle[pos] = order[j]
			if segEnd[j] {
				cycle[pos+1] = ws[endsBefore[j]]
			}
		}
	})
	pram.Release(s, order)
	pram.Release(s, pathEnd)
	pram.Release(s, segEnd)
	pram.Release(s, endsBefore)
	pram.Release(s, ws)
	doneTour()
	release()
	return toIntSlice(s, cycle), true, nil
}

// toIntSlice converts an arena-backed narrow result to the int
// representation the public API exposes; the int instantiation is the
// identity. Uncharged, like toIntPaths.
func toIntSlice[I par.Ix](s *pram.Sim, v []I) []int {
	if out, ok := any(v).([]int); ok {
		return out
	}
	out := pram.GrabNoClear[int](s, len(v))
	for i, x := range v {
		out[i] = int(x)
	}
	pram.Release(s, v)
	return out
}

// boolIxs converts a flag slice to 0/1 values; when invert is set the
// flags are negated (1 for false).
func boolIxs[I par.Ix](s *pram.Sim, flags []bool, invert bool) []I {
	out := pram.GrabNoClear[I](s, len(flags))
	s.ParallelForRange(len(flags), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if flags[i] != invert {
				out[i] = 1
			} else {
				out[i] = 0
			}
		}
	})
	return out
}

// ExtractSubtree carves the subtree of node v out of a binarized cotree
// as a self-contained Bin with renumbered nodes and vertices. It returns
// the new tree plus the node mapping old->new (-1 outside the subtree)
// and the vertex mapping new vertex -> old vertex.
func ExtractSubtree(s *pram.Sim, b *cotree.Bin, v int, tour *par.Tour) (*cotree.Bin, []int, []int) {
	return extractSubtreeIx(s, b, v, tour)
}

func extractSubtreeIx[I par.Ix](s *pram.Sim, b *cotree.BinIx[I], v int, tour *par.TourIx[I]) (*cotree.BinIx[I], []I, []I) {
	nn := b.NumNodes()
	inSub := pram.GrabNoClear[bool](s, nn)
	s.ParallelForRange(nn, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			inSub[x] = tour.Pre[v] <= tour.Pre[x] && tour.Post[x] <= tour.Post[v]
		}
	})
	nodes := par.IndexPackIx[I](s, inSub)
	toSub := pram.GrabNoClear[I](s, nn)
	s.ParallelForRange(nn, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			toSub[x] = -1
		}
	})
	s.ParallelFor(len(nodes), func(i int) { toSub[nodes[i]] = I(i) })

	// Vertices: leaves of the subtree, renumbered by leaf order.
	isLeafIn := pram.GrabNoClear[bool](s, nn)
	s.ParallelForRange(nn, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			isLeafIn[x] = inSub[x] && b.IsLeaf(x)
		}
	})
	leaves := par.IndexPackIx[I](s, isLeafIn)
	fromSub := pram.GrabNoClear[I](s, len(leaves))
	vertSub := pram.Grab[I](s, nn) // old node -> new vertex id
	s.ParallelFor(len(leaves), func(i int) {
		fromSub[i] = b.VertexOf[leaves[i]]
		vertSub[leaves[i]] = I(i)
	})

	sub := &cotree.BinIx[I]{
		BinTree:  par.GrabBinTreeIx[I](s, len(nodes)),
		One:      pram.Grab[bool](s, len(nodes)),
		VertexOf: pram.GrabNoClear[I](s, len(nodes)),
		LeafOf:   pram.GrabNoClear[I](s, len(leaves)),
		Root:     int(toSub[v]),
	}
	s.ForCostRange(len(nodes), 2, func(ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			x := nodes[i]
			sub.One[i] = b.One[x]
			sub.VertexOf[i] = -1
			if l := b.Left[x]; l >= 0 {
				sub.Left[i] = toSub[l]
				sub.Parent[toSub[l]] = I(i)
			}
			if r := b.Right[x]; r >= 0 {
				sub.Right[i] = toSub[r]
				sub.Parent[toSub[r]] = I(i)
			}
			if b.IsLeaf(int(x)) {
				sub.VertexOf[i] = vertSub[x]
				sub.LeafOf[vertSub[x]] = I(i)
			}
		}
	})
	sub.Parent[sub.Root] = -1
	pram.Release(s, inSub)
	pram.Release(s, nodes)
	pram.Release(s, isLeafIn)
	pram.Release(s, leaves)
	pram.Release(s, vertSub)
	return sub, toSub, fromSub
}

// subtreeLeafVerticesIx lists the vertices under node w in leaf order.
func subtreeLeafVerticesIx[I par.Ix](s *pram.Sim, b *cotree.BinIx[I], w int, tour *par.TourIx[I]) []I {
	nn := b.NumNodes()
	flags := pram.GrabNoClear[bool](s, nn)
	s.ParallelForRange(nn, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			flags[x] = b.IsLeaf(x) && tour.Pre[w] <= tour.Pre[x] && tour.Post[x] <= tour.Post[w]
		}
	})
	leaves := par.IndexPackIx[I](s, flags)
	out := pram.GrabNoClear[I](s, len(leaves))
	s.ParallelFor(len(leaves), func(i int) { out[i] = b.VertexOf[leaves[i]] })
	pram.Release(s, flags)
	pram.Release(s, leaves)
	return out
}
