package core

import (
	"fmt"

	"pathcover/internal/cotree"
	"pathcover/internal/par"
	"pathcover/internal/pram"
)

// The paper's abstract singles out Hamiltonicity: "our result implies
// that for this class of graphs the task of finding a Hamiltonian path
// can be solved time- and work-optimally in parallel". This file
// provides the parallel Hamiltonian path (a cover of size one) and the
// parallel Hamiltonian cycle: the decision is the join condition
// p(v) <= L(w) at the root (computable by Step 3 alone), and the
// construction splits a parallel cover of G(v) into exactly L(w)
// segments and interleaves the vertices of G(w) around the cycle with
// prefix-sum arithmetic — O(log n) time, O(n) work end to end.

// ParallelHamiltonianPath returns a Hamiltonian path computed by the
// optimal parallel algorithm, or ok=false when none exists.
func ParallelHamiltonianPath(s *pram.Sim, t *cotree.Tree, opt Options) ([]int, bool, error) {
	cov, err := ParallelCover(s, t, opt)
	if err != nil {
		return nil, false, err
	}
	if cov.NumPaths != 1 {
		return nil, false, nil
	}
	return cov.Paths[0], true, nil
}

// ParallelHamiltonianCycle returns a Hamiltonian cycle computed by the
// parallel pipeline, or ok=false when none exists.
func ParallelHamiltonianCycle(s *pram.Sim, t *cotree.Tree, opt Options) ([]int, bool, error) {
	b := t.Binarize(s)
	L := b.MakeLeftist(s, opt.Seed)
	n := b.NumVertices()
	root := b.Root
	if n < 3 || b.IsLeaf(root) || !b.One[root] {
		return nil, false, nil
	}
	tour := par.TourBinary(s, b.BinTree, opt.Seed^0x5ca1e)
	p := ComputeP(s, b, L, tour)
	v, w := b.Left[root], b.Right[root]
	k := L[w]
	if p[v] > k {
		return nil, false, nil
	}

	// Cover G(v) with the parallel algorithm on the extracted subtree.
	sub, toSub, fromSub := ExtractSubtree(s, b, v, tour)
	subL := make([]int, sub.NumNodes())
	s.ParallelFor(b.NumNodes(), func(u int) {
		if su := toSub[u]; su >= 0 {
			subL[su] = L[u]
		}
	})
	cov, err := ParallelCoverBin(s, sub, subL, opt)
	if err != nil {
		return nil, false, err
	}

	// Flatten the cover: order[] is the concatenation of the paths;
	// pathEnd[j] marks the last vertex of each path.
	nv := L[v]
	order := make([]int, nv)
	pathEnd := make([]bool, nv)
	offs := make([]int, len(cov.Paths))
	lens := make([]int, len(cov.Paths))
	s.ParallelFor(len(cov.Paths), func(i int) { lens[i] = len(cov.Paths[i]) })
	offs, _ = par.Scan(s, lens, 0, func(a, b int) int { return a + b })
	s.ParallelFor(len(cov.Paths), func(i int) {
		for j, sv := range cov.Paths[i] { // cost folded into ForCost below
			order[offs[i]+j] = fromSub[sv]
			pathEnd[offs[i]+j] = j == len(cov.Paths[i])-1
		}
	})
	s.Charge(0, int64(nv)) // account the copy above

	// Split into exactly k segments: the p(v) path ends plus the first
	// k - p(v) interior positions become segment ends.
	cuts := k - len(cov.Paths)
	interiorRank, _ := par.Scan(s, boolInts(s, pathEnd, true), 0, func(a, b int) int { return a + b })
	segEnd := make([]bool, nv)
	s.ParallelFor(nv, func(j int) {
		if pathEnd[j] {
			segEnd[j] = true
		} else if interiorRank[j] < cuts {
			segEnd[j] = true
		}
	})
	// Output index of order[j] = j + (number of segment ends before j);
	// the w vertex after segment i goes right after that segment's end.
	endsBefore, totalEnds := par.Scan(s, boolInts(s, segEnd, false), 0, func(a, b int) int { return a + b })
	if totalEnds != k {
		return nil, false, fmt.Errorf("core: cycle split produced %d segments, want %d", totalEnds, k)
	}
	ws := subtreeLeafVertices(s, b, w, tour)
	cycle := make([]int, n)
	s.ParallelFor(nv, func(j int) {
		pos := j + endsBefore[j]
		cycle[pos] = order[j]
		if segEnd[j] {
			cycle[pos+1] = ws[endsBefore[j]]
		}
	})
	return cycle, true, nil
}

// boolInts converts a flag slice to 0/1 ints; when invert is set the
// flags are negated (1 for false).
func boolInts(s *pram.Sim, flags []bool, invert bool) []int {
	out := make([]int, len(flags))
	s.ParallelFor(len(flags), func(i int) {
		if flags[i] != invert {
			out[i] = 1
		}
	})
	return out
}

// ExtractSubtree carves the subtree of node v out of a binarized cotree
// as a self-contained Bin with renumbered nodes and vertices. It returns
// the new tree plus the node mapping old->new (-1 outside the subtree)
// and the vertex mapping new vertex -> old vertex.
func ExtractSubtree(s *pram.Sim, b *cotree.Bin, v int, tour *par.Tour) (*cotree.Bin, []int, []int) {
	nn := b.NumNodes()
	inSub := make([]bool, nn)
	s.ParallelFor(nn, func(x int) {
		inSub[x] = tour.Pre[v] <= tour.Pre[x] && tour.Post[x] <= tour.Post[v]
	})
	nodes := par.IndexPack(s, inSub)
	toSub := make([]int, nn)
	s.ParallelFor(nn, func(x int) { toSub[x] = -1 })
	s.ParallelFor(len(nodes), func(i int) { toSub[nodes[i]] = i })

	// Vertices: leaves of the subtree, renumbered by leaf order.
	isLeafIn := make([]bool, nn)
	s.ParallelFor(nn, func(x int) { isLeafIn[x] = inSub[x] && b.IsLeaf(x) })
	leaves := par.IndexPack(s, isLeafIn)
	fromSub := make([]int, len(leaves))
	vertSub := make([]int, nn) // old node -> new vertex id
	s.ParallelFor(len(leaves), func(i int) {
		fromSub[i] = b.VertexOf[leaves[i]]
		vertSub[leaves[i]] = i
	})

	sub := &cotree.Bin{
		BinTree:  par.NewBinTree(len(nodes)),
		One:      make([]bool, len(nodes)),
		VertexOf: make([]int, len(nodes)),
		LeafOf:   make([]int, len(leaves)),
		Root:     toSub[v],
	}
	s.ForCost(len(nodes), 2, func(i int) {
		x := nodes[i]
		sub.One[i] = b.One[x]
		sub.VertexOf[i] = -1
		if l := b.Left[x]; l >= 0 {
			sub.Left[i] = toSub[l]
			sub.Parent[toSub[l]] = i
		}
		if r := b.Right[x]; r >= 0 {
			sub.Right[i] = toSub[r]
			sub.Parent[toSub[r]] = i
		}
		if b.IsLeaf(x) {
			sub.VertexOf[i] = vertSub[x]
			sub.LeafOf[vertSub[x]] = i
		}
	})
	sub.Parent[sub.Root] = -1
	return sub, toSub, fromSub
}

// subtreeLeafVertices lists the vertices under node w in leaf order.
func subtreeLeafVertices(s *pram.Sim, b *cotree.Bin, w int, tour *par.Tour) []int {
	nn := b.NumNodes()
	flags := make([]bool, nn)
	s.ParallelFor(nn, func(x int) {
		flags[x] = b.IsLeaf(x) && tour.Pre[w] <= tour.Pre[x] && tour.Post[x] <= tour.Post[w]
	})
	leaves := par.IndexPack(s, flags)
	out := make([]int, len(leaves))
	s.ParallelFor(len(leaves), func(i int) { out[i] = b.VertexOf[leaves[i]] })
	return out
}
