package core

import (
	"fmt"

	"pathcover/internal/cotree"
	"pathcover/internal/par"
	"pathcover/internal/pram"
)

// The paper's abstract singles out Hamiltonicity: "our result implies
// that for this class of graphs the task of finding a Hamiltonian path
// can be solved time- and work-optimally in parallel". This file
// provides the parallel Hamiltonian path (a cover of size one) and the
// parallel Hamiltonian cycle: the decision is the join condition
// p(v) <= L(w) at the root (computable by Step 3 alone), and the
// construction splits a parallel cover of G(v) into exactly L(w)
// segments and interleaves the vertices of G(w) around the cycle with
// prefix-sum arithmetic — O(log n) time, O(n) work end to end.

// ParallelHamiltonianPath returns a Hamiltonian path computed by the
// optimal parallel algorithm, or ok=false when none exists. The path is
// drawn from the Sim's arena; the caller owns (and may Release) it.
func ParallelHamiltonianPath(s *pram.Sim, t *cotree.Tree, opt Options) ([]int, bool, error) {
	cov, err := ParallelCover(s, t, opt)
	if err != nil {
		return nil, false, err
	}
	if cov.NumPaths != 1 {
		cov.Release(s)
		return nil, false, nil
	}
	path := pram.GrabNoClear[int](s, len(cov.Paths[0]))
	copy(path, cov.Paths[0])
	cov.Release(s)
	return path, true, nil
}

// ParallelHamiltonianCycle returns a Hamiltonian cycle computed by the
// parallel pipeline, or ok=false when none exists. The cycle is drawn
// from the Sim's arena; the caller owns (and may Release) it.
func ParallelHamiltonianCycle(s *pram.Sim, t *cotree.Tree, opt Options) ([]int, bool, error) {
	b := t.Binarize(s)
	L := b.MakeLeftist(s, opt.Seed)
	n := b.NumVertices()
	root := b.Root
	release := func() {
		pram.Release(s, L)
		b.Release(s)
	}
	if n < 3 || b.IsLeaf(root) || !b.One[root] {
		release()
		return nil, false, nil
	}
	tour := par.TourBinary(s, b.BinTree, opt.Seed^0x5ca1e)
	p := ComputeP(s, b, L, tour)
	v, w := b.Left[root], b.Right[root]
	k := L[w]
	pv := p[v]
	pram.Release(s, p)
	if pv > k {
		tour.Release(s)
		release()
		return nil, false, nil
	}

	// Cover G(v) with the parallel algorithm on the extracted subtree.
	sub, toSub, fromSub := ExtractSubtree(s, b, v, tour)
	subL := pram.Grab[int](s, sub.NumNodes())
	s.ParallelForRange(b.NumNodes(), func(lo, hi int) {
		for u := lo; u < hi; u++ {
			if su := toSub[u]; su >= 0 {
				subL[su] = L[u]
			}
		}
	})
	pram.Release(s, toSub)
	cov, err := ParallelCoverBin(s, sub, subL, opt)
	pram.Release(s, subL)
	sub.Release(s)
	if err != nil {
		pram.Release(s, fromSub)
		tour.Release(s)
		release()
		return nil, false, err
	}

	// Flatten the cover: order[] is the concatenation of the paths;
	// pathEnd[j] marks the last vertex of each path.
	nv := L[v]
	order := pram.GrabNoClear[int](s, nv)
	pathEnd := pram.GrabNoClear[bool](s, nv)
	lens := pram.GrabNoClear[int](s, len(cov.Paths))
	s.ParallelFor(len(cov.Paths), func(i int) { lens[i] = len(cov.Paths[i]) })
	offs, _ := par.ScanInt(s, lens)
	s.ParallelFor(len(cov.Paths), func(i int) {
		for j, sv := range cov.Paths[i] { // cost folded into ForCost below
			order[offs[i]+j] = fromSub[sv]
			pathEnd[offs[i]+j] = j == len(cov.Paths[i])-1
		}
	})
	s.Charge(0, int64(nv)) // account the copy above
	numPaths := len(cov.Paths)
	cov.Release(s)
	pram.Release(s, fromSub)
	pram.Release(s, lens)
	pram.Release(s, offs)

	// Split into exactly k segments: the p(v) path ends plus the first
	// k - p(v) interior positions become segment ends.
	cuts := k - numPaths
	interior := boolInts(s, pathEnd, true)
	interiorRank, _ := par.ScanInt(s, interior)
	pram.Release(s, interior)
	segEnd := pram.GrabNoClear[bool](s, nv)
	s.ParallelForRange(nv, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			segEnd[j] = pathEnd[j] || interiorRank[j] < cuts
		}
	})
	pram.Release(s, interiorRank)
	// Output index of order[j] = j + (number of segment ends before j);
	// the w vertex after segment i goes right after that segment's end.
	ends := boolInts(s, segEnd, false)
	endsBefore, totalEnds := par.ScanInt(s, ends)
	pram.Release(s, ends)
	if totalEnds != k {
		pram.Release(s, order)
		pram.Release(s, pathEnd)
		pram.Release(s, segEnd)
		pram.Release(s, endsBefore)
		tour.Release(s)
		release()
		return nil, false, fmt.Errorf("core: cycle split produced %d segments, want %d", totalEnds, k)
	}
	ws := subtreeLeafVertices(s, b, w, tour)
	cycle := pram.GrabNoClear[int](s, n)
	s.ParallelForRange(nv, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			pos := j + endsBefore[j]
			cycle[pos] = order[j]
			if segEnd[j] {
				cycle[pos+1] = ws[endsBefore[j]]
			}
		}
	})
	pram.Release(s, order)
	pram.Release(s, pathEnd)
	pram.Release(s, segEnd)
	pram.Release(s, endsBefore)
	pram.Release(s, ws)
	tour.Release(s)
	release()
	return cycle, true, nil
}

// boolInts converts a flag slice to 0/1 ints; when invert is set the
// flags are negated (1 for false).
func boolInts(s *pram.Sim, flags []bool, invert bool) []int {
	out := pram.GrabNoClear[int](s, len(flags))
	s.ParallelForRange(len(flags), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if flags[i] != invert {
				out[i] = 1
			} else {
				out[i] = 0
			}
		}
	})
	return out
}

// ExtractSubtree carves the subtree of node v out of a binarized cotree
// as a self-contained Bin with renumbered nodes and vertices. It returns
// the new tree plus the node mapping old->new (-1 outside the subtree)
// and the vertex mapping new vertex -> old vertex.
func ExtractSubtree(s *pram.Sim, b *cotree.Bin, v int, tour *par.Tour) (*cotree.Bin, []int, []int) {
	nn := b.NumNodes()
	inSub := pram.GrabNoClear[bool](s, nn)
	s.ParallelForRange(nn, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			inSub[x] = tour.Pre[v] <= tour.Pre[x] && tour.Post[x] <= tour.Post[v]
		}
	})
	nodes := par.IndexPack(s, inSub)
	toSub := pram.GrabNoClear[int](s, nn)
	s.ParallelForRange(nn, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			toSub[x] = -1
		}
	})
	s.ParallelFor(len(nodes), func(i int) { toSub[nodes[i]] = i })

	// Vertices: leaves of the subtree, renumbered by leaf order.
	isLeafIn := pram.GrabNoClear[bool](s, nn)
	s.ParallelForRange(nn, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			isLeafIn[x] = inSub[x] && b.IsLeaf(x)
		}
	})
	leaves := par.IndexPack(s, isLeafIn)
	fromSub := pram.GrabNoClear[int](s, len(leaves))
	vertSub := pram.Grab[int](s, nn) // old node -> new vertex id
	s.ParallelFor(len(leaves), func(i int) {
		fromSub[i] = b.VertexOf[leaves[i]]
		vertSub[leaves[i]] = i
	})

	sub := &cotree.Bin{
		BinTree:  par.GrabBinTree(s, len(nodes)),
		One:      pram.Grab[bool](s, len(nodes)),
		VertexOf: pram.GrabNoClear[int](s, len(nodes)),
		LeafOf:   pram.GrabNoClear[int](s, len(leaves)),
		Root:     toSub[v],
	}
	s.ForCostRange(len(nodes), 2, func(ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			x := nodes[i]
			sub.One[i] = b.One[x]
			sub.VertexOf[i] = -1
			if l := b.Left[x]; l >= 0 {
				sub.Left[i] = toSub[l]
				sub.Parent[toSub[l]] = i
			}
			if r := b.Right[x]; r >= 0 {
				sub.Right[i] = toSub[r]
				sub.Parent[toSub[r]] = i
			}
			if b.IsLeaf(x) {
				sub.VertexOf[i] = vertSub[x]
				sub.LeafOf[vertSub[x]] = i
			}
		}
	})
	sub.Parent[sub.Root] = -1
	pram.Release(s, inSub)
	pram.Release(s, nodes)
	pram.Release(s, isLeafIn)
	pram.Release(s, leaves)
	pram.Release(s, vertSub)
	return sub, toSub, fromSub
}

// subtreeLeafVertices lists the vertices under node w in leaf order.
func subtreeLeafVertices(s *pram.Sim, b *cotree.Bin, w int, tour *par.Tour) []int {
	nn := b.NumNodes()
	flags := pram.GrabNoClear[bool](s, nn)
	s.ParallelForRange(nn, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			flags[x] = b.IsLeaf(x) && tour.Pre[w] <= tour.Pre[x] && tour.Post[x] <= tour.Post[w]
		}
	})
	leaves := par.IndexPack(s, flags)
	out := pram.GrabNoClear[int](s, len(leaves))
	s.ParallelFor(len(leaves), func(i int) { out[i] = b.VertexOf[leaves[i]] })
	pram.Release(s, flags)
	pram.Release(s, leaves)
	return out
}
