package core

import (
	"math/rand/v2"
	"testing"

	"pathcover/internal/baseline"
	"pathcover/internal/pram"
)

// Heavy stress: hundreds of random cographs, validity + minimality.
// (A 2000-trial version of this test passed during development.)
func TestStressExchangeConvergence(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 99))
	s := pram.New(7, pram.WithGrain(16))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.IntN(400)
		tr := randomTree(rng, n)
		cov, err := ParallelCover(s, tr, Options{Seed: uint64(trial * 31)})
		if err != nil {
			t.Fatalf("trial %d n=%d: %v\ntree: %s", trial, n, err, tr)
		}
		checkCover(t, tr, cov.Paths)
		if want := len(baseline.Run(tr)); cov.NumPaths != want {
			t.Fatalf("trial %d: %d want %d", trial, cov.NumPaths, want)
		}
	}
}

// Track how many exchange rounds the pipeline needs.
func TestExchangeRoundCount(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 3))
	s := pram.NewSerial()
	maxSwaps := 0
	for trial := 0; trial < 300; trial++ {
		tr := randomTree(rng, 2+rng.IntN(1000))
		b := tr.Binarize(s)
		L := b.MakeLeftist(s, 0)
		tour := tourOf(s, b, 0)
		p := ComputeP(s, b, L, tour)
		red := Reduce(s, b, L, p, tour)
		seq := GenBrackets(s, b, red, true)
		ps, err := BuildPseudo(s, tr.NumVertices(), red, seq)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := FixIllegal(s, ps, red, uint64(trial))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sw > maxSwaps {
			maxSwaps = sw
		}
	}
	t.Logf("max total swaps over 300 trials: %d", maxSwaps)
}
