package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pathcover/internal/baseline"
	"pathcover/internal/cograph"
	"pathcover/internal/cotree"
	"pathcover/internal/par"
	"pathcover/internal/pram"
)

func checkCycleValid(t *testing.T, tr *cotree.Tree, cyc []int) {
	t.Helper()
	n := tr.NumVertices()
	if len(cyc) != n {
		t.Fatalf("cycle visits %d of %d vertices", len(cyc), n)
	}
	o := cotree.NewAdjOracle(tr)
	seen := make([]bool, n)
	for i, v := range cyc {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("bad vertex %d in cycle %v", v, cyc)
		}
		seen[v] = true
		if !o.Adjacent(cyc[i], cyc[(i+1)%n]) {
			t.Fatalf("cycle uses non-edge (%s,%s)\ntree: %s",
				tr.Name(cyc[i]), tr.Name(cyc[(i+1)%n]), tr)
		}
	}
}

func TestParallelHamiltonianPath(t *testing.T) {
	s := pram.New(4, pram.WithGrain(8))
	p, ok, err := ParallelHamiltonianPath(s, cotree.MustParse("(1 (0 a b) (0 c d))"), Options{Seed: 1})
	if err != nil || !ok || len(p) != 4 {
		t.Fatalf("C4 path: %v %v %v", p, ok, err)
	}
	_, ok, err = ParallelHamiltonianPath(s, cotree.MustParse("(0 a b)"), Options{Seed: 1})
	if err != nil || ok {
		t.Fatalf("disconnected pair should have no Hamiltonian path")
	}
}

func TestParallelHamiltonianCycleKnown(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"(1 a b c)", true},
		{"(1 a b)", false},
		{"(1 (0 a b) (0 c d))", true},
		{"(1 (0 a b c) d)", false},
		{"(0 (1 a b c) (1 d e f))", false},
		{"(1 (0 a b c) (0 d e f))", true},
	}
	for _, s := range coreSims() {
		for _, c := range cases {
			tr := cotree.MustParse(c.src)
			cyc, ok, err := ParallelHamiltonianCycle(s, tr, Options{Seed: 3})
			if err != nil {
				t.Fatalf("%s: %v", c.src, err)
			}
			if ok != c.want {
				t.Errorf("procs=%d %s: ok=%v want %v", s.Procs(), c.src, ok, c.want)
			}
			if ok {
				checkCycleValid(t, tr, cyc)
			}
		}
	}
}

// The parallel decision + construction must agree with the sequential
// one and with brute force.
func TestParallelHamiltonianCycleProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, procs uint8) bool {
		n := int(nRaw%9) + 1
		rng := rand.New(rand.NewPCG(seed, 555))
		tr := randomTree(rng, n)
		s := pram.New(1+int(procs%6), pram.WithGrain(16))
		cyc, ok, err := ParallelHamiltonianCycle(s, tr, Options{Seed: seed})
		if err != nil {
			return false
		}
		g := cograph.FromCotree(tr)
		if ok != baseline.BruteHasHamiltonianCycle(g) {
			return false
		}
		if ok {
			o := cotree.NewAdjOracle(tr)
			for i := range cyc {
				if !o.Adjacent(cyc[i], cyc[(i+1)%len(cyc)]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelHamiltonianCycleLarge(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 8))
	s := pram.New(8, pram.WithGrain(64))
	found := 0
	for trial := 0; trial < 30; trial++ {
		tr := randomTree(rng, 3+rng.IntN(500))
		cyc, ok, err := ParallelHamiltonianCycle(s, tr, Options{Seed: uint64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bseq := pram.NewSerial()
		bb := tr.Binarize(bseq)
		LL := bb.MakeLeftist(bseq, 1)
		if ok != baseline.HasHamiltonianCycle(bb, LL) {
			t.Fatalf("trial %d: parallel %v, sequential %v", trial, ok,
				baseline.HasHamiltonianCycle(bb, LL))
		}
		if ok {
			found++
			checkCycleValid(t, tr, cyc)
		}
	}
	if found == 0 {
		t.Log("note: no Hamiltonian instances in this sample (fine, decision tested)")
	}
}

func TestExtractSubtree(t *testing.T) {
	tr := cotree.MustParse("(0 (1 a b c) (1 d (0 e f)))")
	s := pram.NewSerial()
	b := tr.Binarize(s)
	b.MakeLeftist(s, 1)
	tour := par.TourBinary(s, b.BinTree, 1)
	// Extract the subtree holding {a,b,c} (a K3).
	_, leaves := tour.SubtreeCounts(s, b.BinTree)
	for u := 0; u < b.NumNodes(); u++ {
		if b.IsLeaf(u) || leaves[u] != 3 {
			continue
		}
		sub, toSub, fromSub := ExtractSubtree(s, b, u, tour)
		if sub.NumVertices() != 3 || sub.NumNodes() != 5 {
			t.Fatalf("extracted %d vertices / %d nodes", sub.NumVertices(), sub.NumNodes())
		}
		if toSub[u] != sub.Root || sub.Parent[sub.Root] != -1 {
			t.Fatal("root mapping broken")
		}
		// All extracted vertices map to {a,b,c} or {d,e,f} consistently.
		for _, ov := range fromSub {
			if ov < 0 || ov >= 6 {
				t.Fatalf("bad vertex mapping %v", fromSub)
			}
		}
		// The extracted K3 must have a 1-path cover.
		subL := sub.MakeLeftist(s, 1)
		paths := baseline.SequentialCover(sub, subL)
		if len(paths) != 1 {
			t.Fatalf("extracted K3 cover: %v", paths)
		}
	}
}
