package core

import (
	"math/rand/v2"
	"testing"

	"pathcover/internal/pram"
)

// BenchmarkFixIllegal isolates Step 6 on random canonical cotrees (the
// family that actually exercises the exchange, unlike the regular
// workload shapes whose instances converge with zero swaps). Run with
// PATHCOVER_DISABLE_TOUR_CACHE=1 to measure the per-round
// tour-rebuild baseline the Euler-tour cache replaces.
func BenchmarkFixIllegal(b *testing.B) {
	rng := rand.New(rand.NewPCG(0, 77))
	tr := randomTree(rng, 60000)
	s := pram.New(pram.ProcsFor(60000))
	swaps := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bin := tr.Binarize(s)
		L := bin.MakeLeftist(s, 0)
		tour := tourOf(s, bin, 0)
		p := ComputeP(s, bin, L, tour)
		red := Reduce(s, bin, L, p, tour)
		seq := GenBrackets(s, bin, red, true)
		ps, err := BuildPseudo(s, tr.NumVertices(), red, seq)
		if err != nil {
			b.Fatal(err)
		}
		seq.Release(s)
		tour.Release(s)
		b.StartTimer()
		sw, err := FixIllegal(s, ps, red, uint64(i))
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		swaps += sw
		ps.Release(s)
		red.Release(s)
		pram.Release(s, L)
		bin.Release(s)
	}
	b.ReportMetric(float64(swaps)/float64(b.N), "swaps/op")
}
