package core

import (
	"math/rand/v2"
	"testing"

	"pathcover/internal/baseline"
	"pathcover/internal/cotree"
	"pathcover/internal/pram"
	"pathcover/internal/verify"
	"pathcover/internal/workload"
)

// The width/cutover differential suite: the narrow (int32) pipeline, the
// wide (int) pipeline and the sequential baseline must agree on every
// input, for every placement of the sequential-cutover threshold, and
// the two widths must additionally agree on the simulated cost counters
// bit for bit.

// coverWith runs one full parallel cover under the given width and
// cutover and returns the paths plus the Sim's counters.
func coverWith(t *testing.T, tr *workloadTree, width IndexWidth, cutover int) ([][]int, pram.Stats) {
	t.Helper()
	s := pram.New(pram.ProcsFor(tr.n), pram.WithWorkers(2), pram.WithGrain(64), pram.WithSeqCutover(cutover))
	defer s.Close()
	cov, err := ParallelCover(s, tr.tree, Options{Seed: tr.seed, Width: width})
	if err != nil {
		t.Fatalf("%v cover (width=%d cutover=%d): %v", tr, width, cutover, err)
	}
	paths := make([][]int, len(cov.Paths))
	for i, p := range cov.Paths {
		paths[i] = append([]int(nil), p...)
	}
	return paths, cov.Stats
}

type workloadTree struct {
	tree  *cotree.Tree
	n     int
	seed  uint64
	shape workload.Shape
}

func pathsEq(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// checkInstance cross-checks one instance across widths, cutover
// placements and the sequential baseline.
func checkInstance(t *testing.T, seed uint64, n int, shape workload.Shape) {
	t.Helper()
	tree := workload.Random(seed, n, shape)
	tr := &workloadTree{tree: tree, n: n, seed: seed, shape: shape}

	// The cutover boundary: thresholds below, at and above every phase
	// size the pipeline will see, including the dispatch-everything and
	// fuse-everything extremes.
	cutovers := []int{-1, n / 2, n, 3*n + 1, 1 << 30}
	var refPaths [][]int
	var refStats pram.Stats
	for ci, cut := range cutovers {
		for _, width := range []IndexWidth{WidthNarrow, WidthWide} {
			paths, stats := coverWith(t, tr, width, cut)
			if ci == 0 && width == WidthNarrow {
				refPaths, refStats = paths, stats
				// The referee: valid cover, provably minimum size.
				if err := verify.MinimumCover(tree, paths); err != nil {
					t.Fatalf("seed=%d n=%d %v: %v", seed, n, shape, err)
				}
				continue
			}
			if !pathsEq(paths, refPaths) {
				t.Fatalf("seed=%d n=%d %v width=%d cutover=%d: paths diverge from reference",
					seed, n, shape, width, cut)
			}
			if stats.Time != refStats.Time || stats.Work != refStats.Work || stats.Phases != refStats.Phases {
				t.Fatalf("seed=%d n=%d %v width=%d cutover=%d: stats %+v != reference %+v",
					seed, n, shape, width, cut, stats, refStats)
			}
		}
	}

	// Sequential baseline agreement on the cover size (the constructions
	// legitimately differ path by path; minimality is the contract).
	sser := pram.NewSerial()
	b := tree.Binarize(sser)
	L := b.MakeLeftist(sser, 1)
	seqPaths := baseline.SequentialCover(b, L)
	if len(seqPaths) != len(refPaths) {
		t.Fatalf("seed=%d n=%d %v: parallel %d paths, sequential baseline %d",
			seed, n, shape, len(refPaths), len(seqPaths))
	}
	if err := verify.MinimumCover(tree, seqPaths); err != nil {
		t.Fatalf("seed=%d n=%d %v: sequential baseline invalid: %v", seed, n, shape, err)
	}
}

// TestDifferentialWidthsAndCutover is the deterministic corpus run on
// every `go test`.
func TestDifferentialWidthsAndCutover(t *testing.T) {
	rng := rand.New(rand.NewPCG(2026, 729))
	shapes := []workload.Shape{workload.Mixed, workload.Balanced, workload.Caterpillar}
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.IntN(900)
		checkInstance(t, rng.Uint64(), n, shapes[trial%len(shapes)])
	}
	// Tiny corner sizes, where cutover/fused routes always engage.
	for _, n := range []int{2, 3, 4, 5} {
		checkInstance(t, uint64(n)*17, n, workload.Mixed)
	}
}

// TestHamiltonianCycleWidths pins the Width plumbing of the cycle
// construction: both widths must agree on existence and on the cycle
// itself, and produced cycles must verify against the graph.
func TestHamiltonianCycleWidths(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 66))
	trees := []*cotree.Tree{
		workload.Clique(3),
		workload.Clique(257),
		workload.CompleteBipartite(40, 40),
		workload.Random(7, 500, workload.Mixed),
		workload.Random(8, 501, workload.Balanced),
	}
	for ti, tree := range trees {
		seed := rng.Uint64()
		run := func(w IndexWidth) ([]int, bool) {
			s := pram.New(pram.ProcsFor(tree.NumVertices()), pram.WithWorkers(2), pram.WithGrain(64))
			defer s.Close()
			c, ok, err := ParallelHamiltonianCycle(s, tree, Options{Seed: seed, Width: w})
			if err != nil {
				t.Fatalf("tree %d width %d: %v", ti, w, err)
			}
			return append([]int(nil), c...), ok
		}
		nc, nok := run(WidthNarrow)
		wc, wok := run(WidthWide)
		if nok != wok {
			t.Fatalf("tree %d: narrow ok=%v wide ok=%v", ti, nok, wok)
		}
		if !nok {
			continue
		}
		if len(nc) != len(wc) {
			t.Fatalf("tree %d: cycle lengths %d vs %d", ti, len(nc), len(wc))
		}
		for i := range nc {
			if nc[i] != wc[i] {
				t.Fatalf("tree %d: cycles diverge at %d: %d vs %d", ti, i, nc[i], wc[i])
			}
		}
		if err := verify.Cycle(tree, nc); err != nil {
			t.Fatalf("tree %d: %v", ti, err)
		}
	}
}

// FuzzDifferentialWidths lets the fuzzer pick the instance.
func FuzzDifferentialWidths(f *testing.F) {
	f.Add(uint64(1), uint16(50), uint8(0))
	f.Add(uint64(99), uint16(700), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, n16 uint16, shape uint8) {
		n := 2 + int(n16)%1500
		checkInstance(t, seed, n, workload.Shape(shape%3))
	})
}
