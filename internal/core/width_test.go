package core

import (
	"errors"
	"math/rand/v2"
	"testing"

	"pathcover/internal/baseline"
	"pathcover/internal/cotree"
	"pathcover/internal/pram"
	"pathcover/internal/verify"
	"pathcover/internal/workload"
)

// The width/cutover differential suite: the int16, narrow (int32) and
// wide (int) pipelines and the sequential baseline must agree on every
// input, for every placement of the sequential-cutover threshold, and
// the widths must additionally agree on the simulated cost counters
// bit for bit.

// coverWith runs one full parallel cover under the given width and
// cutover and returns the paths plus the Sim's counters.
func coverWith(t *testing.T, tr *workloadTree, width IndexWidth, cutover int) ([][]int, pram.Stats) {
	t.Helper()
	s := pram.New(pram.ProcsFor(tr.n), pram.WithWorkers(2), pram.WithGrain(64), pram.WithSeqCutover(cutover))
	defer s.Close()
	cov, err := ParallelCover(s, tr.tree, Options{Seed: tr.seed, Width: width})
	if err != nil {
		t.Fatalf("%v cover (width=%d cutover=%d): %v", tr, width, cutover, err)
	}
	paths := make([][]int, len(cov.Paths))
	for i, p := range cov.Paths {
		paths[i] = append([]int(nil), p...)
	}
	return paths, cov.Stats
}

type workloadTree struct {
	tree  *cotree.Tree
	n     int
	seed  uint64
	shape workload.Shape
}

func pathsEq(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// checkInstance cross-checks one instance across widths, cutover
// placements and the sequential baseline.
func checkInstance(t *testing.T, seed uint64, n int, shape workload.Shape) {
	t.Helper()
	tree := workload.Random(seed, n, shape)
	tr := &workloadTree{tree: tree, n: n, seed: seed, shape: shape}

	// The cutover boundary: thresholds below, at and above every phase
	// size the pipeline will see, including the dispatch-everything and
	// fuse-everything extremes.
	cutovers := []int{-1, n / 2, n, 3*n + 1, 1 << 30}
	widths := []IndexWidth{WidthNarrow, WidthWide}
	if fitsNarrow16(n) {
		widths = append(widths, WidthNarrow16)
	}
	var refPaths [][]int
	var refStats pram.Stats
	for ci, cut := range cutovers {
		for _, width := range widths {
			paths, stats := coverWith(t, tr, width, cut)
			if ci == 0 && width == WidthNarrow {
				refPaths, refStats = paths, stats
				// The referee: valid cover, provably minimum size.
				if err := verify.MinimumCover(tree, paths); err != nil {
					t.Fatalf("seed=%d n=%d %v: %v", seed, n, shape, err)
				}
				continue
			}
			if !pathsEq(paths, refPaths) {
				t.Fatalf("seed=%d n=%d %v width=%d cutover=%d: paths diverge from reference",
					seed, n, shape, width, cut)
			}
			if stats.Time != refStats.Time || stats.Work != refStats.Work || stats.Phases != refStats.Phases {
				t.Fatalf("seed=%d n=%d %v width=%d cutover=%d: stats %+v != reference %+v",
					seed, n, shape, width, cut, stats, refStats)
			}
		}
	}

	// Sequential baseline agreement on the cover size (the constructions
	// legitimately differ path by path; minimality is the contract).
	sser := pram.NewSerial()
	b := tree.Binarize(sser)
	L := b.MakeLeftist(sser, 1)
	seqPaths := baseline.SequentialCover(b, L)
	if len(seqPaths) != len(refPaths) {
		t.Fatalf("seed=%d n=%d %v: parallel %d paths, sequential baseline %d",
			seed, n, shape, len(refPaths), len(seqPaths))
	}
	if err := verify.MinimumCover(tree, seqPaths); err != nil {
		t.Fatalf("seed=%d n=%d %v: sequential baseline invalid: %v", seed, n, shape, err)
	}
}

// TestDifferentialWidthsAndCutover is the deterministic corpus run on
// every `go test`.
func TestDifferentialWidthsAndCutover(t *testing.T) {
	rng := rand.New(rand.NewPCG(2026, 729))
	shapes := []workload.Shape{workload.Mixed, workload.Balanced, workload.Caterpillar}
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.IntN(900)
		checkInstance(t, rng.Uint64(), n, shapes[trial%len(shapes)])
	}
	// Tiny corner sizes, where cutover/fused routes always engage.
	for _, n := range []int{2, 3, 4, 5} {
		checkInstance(t, uint64(n)*17, n, workload.Mixed)
	}
}

// TestHamiltonianCycleWidths pins the Width plumbing of the cycle
// construction: both widths must agree on existence and on the cycle
// itself, and produced cycles must verify against the graph.
func TestHamiltonianCycleWidths(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 66))
	trees := []*cotree.Tree{
		workload.Clique(3),
		workload.Clique(257),
		workload.CompleteBipartite(40, 40),
		workload.Random(7, 500, workload.Mixed),
		workload.Random(8, 501, workload.Balanced),
	}
	for ti, tree := range trees {
		seed := rng.Uint64()
		run := func(w IndexWidth) ([]int, bool) {
			s := pram.New(pram.ProcsFor(tree.NumVertices()), pram.WithWorkers(2), pram.WithGrain(64))
			defer s.Close()
			c, ok, err := ParallelHamiltonianCycle(s, tree, Options{Seed: seed, Width: w})
			if err != nil {
				t.Fatalf("tree %d width %d: %v", ti, w, err)
			}
			return append([]int(nil), c...), ok
		}
		nc, nok := run(WidthNarrow)
		wc, wok := run(WidthWide)
		hc, hok := run(WidthNarrow16)
		if nok != wok || nok != hok {
			t.Fatalf("tree %d: narrow ok=%v wide ok=%v int16 ok=%v", ti, nok, wok, hok)
		}
		if !nok {
			continue
		}
		if len(nc) != len(wc) || len(nc) != len(hc) {
			t.Fatalf("tree %d: cycle lengths %d vs %d vs %d", ti, len(nc), len(wc), len(hc))
		}
		for i := range nc {
			if nc[i] != wc[i] || nc[i] != hc[i] {
				t.Fatalf("tree %d: cycles diverge at %d: %d vs %d vs %d", ti, i, nc[i], wc[i], hc[i])
			}
		}
		if err := verify.Cycle(tree, nc); err != nil {
			t.Fatalf("tree %d: %v", ti, err)
		}
	}
}

// TestResolveWidth asserts both directions of every width's dispatch:
// auto routing at each bound, forced narrow widths accepted at their
// bound and rejected one past it with a typed *WidthError, and the wide
// width never rejecting.
func TestResolveWidth(t *testing.T) {
	cases := []struct {
		n       int
		req     IndexWidth
		want    IndexWidth
		wantErr bool
	}{
		{1, WidthAuto, WidthNarrow16, false},
		{MaxInt16Vertices, WidthAuto, WidthNarrow16, false},
		{MaxInt16Vertices + 1, WidthAuto, WidthNarrow, false},
		{MaxNarrowVertices, WidthAuto, WidthNarrow, false},
		{MaxNarrowVertices + 1, WidthAuto, WidthWide, false},
		{MaxInt16Vertices, WidthNarrow16, WidthNarrow16, false},
		{MaxInt16Vertices + 1, WidthNarrow16, 0, true},
		{MaxNarrowVertices + 1, WidthNarrow16, 0, true},
		{MaxInt16Vertices + 1, WidthNarrow, WidthNarrow, false},
		{MaxNarrowVertices, WidthNarrow, WidthNarrow, false},
		{MaxNarrowVertices + 1, WidthNarrow, 0, true},
		{1, WidthWide, WidthWide, false},
		{MaxNarrowVertices + 1, WidthWide, WidthWide, false},
	}
	for _, c := range cases {
		got, err := resolveWidth(c.n, c.req)
		if c.wantErr {
			var we *WidthError
			if err == nil {
				t.Errorf("resolveWidth(%d, %v): no error, want *WidthError", c.n, c.req)
			} else if !errors.As(err, &we) {
				t.Errorf("resolveWidth(%d, %v): error %T %v, want *WidthError", c.n, c.req, err, err)
			} else if we.N != c.n || we.Width != c.req || we.Max != maxVerticesFor(c.req) {
				t.Errorf("resolveWidth(%d, %v): WidthError %+v carries wrong fields", c.n, c.req, we)
			}
			continue
		}
		if err != nil {
			t.Errorf("resolveWidth(%d, %v): unexpected error %v", c.n, c.req, err)
		} else if got != c.want {
			t.Errorf("resolveWidth(%d, %v) = %v, want %v", c.n, c.req, got, c.want)
		}
		if c.req == WidthAuto && AutoWidth(c.n) != c.want {
			t.Errorf("AutoWidth(%d) = %v, want %v", c.n, AutoWidth(c.n), c.want)
		}
	}
}

// TestInt16Boundary runs real covers at exactly MaxInt16Vertices and
// one past it: the bound itself must serve on the int16 kernels (forced
// and auto) with paths and counters identical to the wide run, and one
// past the bound must reject a forced int16 while auto falls over to
// int32 seamlessly.
func TestInt16Boundary(t *testing.T) {
	at := workload.Random(301, MaxInt16Vertices, workload.Mixed)
	trAt := &workloadTree{tree: at, n: MaxInt16Vertices, seed: 301, shape: workload.Mixed}
	refPaths, refStats := coverWith(t, trAt, WidthWide, 0)
	for _, w := range []IndexWidth{WidthNarrow16, WidthAuto} {
		paths, stats := coverWith(t, trAt, w, 0)
		if !pathsEq(paths, refPaths) {
			t.Fatalf("n=MaxInt16Vertices width=%v: paths diverge from wide reference", w)
		}
		if stats != refStats {
			t.Fatalf("n=MaxInt16Vertices width=%v: stats %+v != wide %+v", w, stats, refStats)
		}
	}

	over := workload.Random(302, MaxInt16Vertices+1, workload.Mixed)
	s := pram.New(pram.ProcsFor(MaxInt16Vertices+1), pram.WithWorkers(2))
	defer s.Close()
	var we *WidthError
	if _, err := ParallelCover(s, over, Options{Seed: 302, Width: WidthNarrow16}); !errors.As(err, &we) {
		t.Fatalf("forced int16 one past the bound: err = %v, want *WidthError", err)
	} else if we.N != MaxInt16Vertices+1 || we.Max != MaxInt16Vertices || we.Width != WidthNarrow16 {
		t.Fatalf("WidthError fields %+v", we)
	}
	trOver := &workloadTree{tree: over, n: MaxInt16Vertices + 1, seed: 302, shape: workload.Mixed}
	wp, ws := coverWith(t, trOver, WidthWide, 0)
	ap, as := coverWith(t, trOver, WidthAuto, 0)
	if !pathsEq(ap, wp) || as != ws {
		t.Fatalf("auto one past the int16 bound diverges from wide")
	}
	if err := verify.MinimumCover(over, ap); err != nil {
		t.Fatalf("n=MaxInt16Vertices+1: %v", err)
	}
}

// FuzzDifferentialWidths lets the fuzzer pick the instance.
func FuzzDifferentialWidths(f *testing.F) {
	f.Add(uint64(1), uint16(50), uint8(0))
	f.Add(uint64(99), uint16(700), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, n16 uint16, shape uint8) {
		n := 2 + int(n16)%1500
		checkInstance(t, seed, n, workload.Shape(shape%3))
	})
}
