// Package core implements the primary contribution of Nakano, Olariu and
// Zomaya: the time- and work-optimal EREW algorithm that reports all
// paths of a minimum path cover of a cograph in O(log n) time with
// n/log n processors (Theorem 5.3).
//
// The pipeline follows §5 of the paper:
//
//	Step 1  binarize the cotree                    (cotree.Binarize)
//	Step 2  leaf counts + leftist reorder          (cotree.MakeLeftist)
//	Step 3  p(u) by tree contraction; reduction    (ComputeP, Reduce)
//	Step 4  bracket sequence B(R)                  (GenBrackets)
//	Step 5  bracket matching -> pseudo path trees  (BuildPseudo)
//	Step 6  exchange illegal inserts with dummies  (FixIllegal)
//	Step 7  bypass dummy vertices                  (Bypass)
//	Step 8  paths by Euler-tour inorder            (ExtractPaths)
//
// All phases run on the pram.Sim cost model through the primitives of
// internal/par, so the simulated time/work counters measure the paper's
// bounds directly.
package core

import (
	"fmt"
	"math"
	"time"

	"pathcover/internal/cotree"
	"pathcover/internal/par"
	"pathcover/internal/pram"
)

// Role classifies the vertices of the reduced cotree Tblr (paper §2):
// primary vertices keep their path-tree structure; bridge vertices glue
// path trees together at a 1-node; insert vertices are spliced into path
// trees as leaves; dummy vertices are placeholders added in Step 4 and
// removed in Step 7.
type Role uint8

// The vertex roles of the dummy-augmented pipeline.
const (
	RolePrimary Role = iota // an input vertex of the graph
	RoleBridge  Role = iota // joins two pseudo paths at a join node
	RoleInsert  Role = iota // an insertion point awaiting an exchange
	RoleDummy   Role = iota // placeholder bypassed in Step 7
)

// String renders the role for traces and test failures.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleBridge:
		return "bridge"
	case RoleInsert:
		return "insert"
	case RoleDummy:
		return "dummy"
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// Cover is the result of the parallel minimum path cover computation.
//
// The paths of a cover produced by ParallelCover share one backing
// buffer drawn from the Sim's scratch arena; call Release to recycle it
// (after which the paths must not be read), or keep the Cover alive and
// let the buffers become garbage.
type Cover struct {
	Paths    [][]int    // vertex-disjoint paths covering all vertices
	NumPaths int        // == p(root), the provable minimum
	Stats    pram.Stats // simulated PRAM cost of the run

	seq      []int // shared backing of Paths (nil for trivial covers)
	released bool  // set by Release; makes double-release a no-op
}

// Release returns the cover's path storage to the Sim's arena. It is
// idempotent and nil-receiver-safe: releasing the same Cover twice (or
// releasing a nil Cover) is a no-op rather than handing the same buffer
// to the arena a second time.
func (c *Cover) Release(s *pram.Sim) {
	if c == nil || c.released {
		return
	}
	c.released = true
	pram.Release(s, c.seq)
	pram.Release(s, c.Paths)
	c.seq, c.Paths = nil, nil
}

// IndexWidth selects the element width of the pipeline's index arrays.
type IndexWidth uint8

const (
	// WidthAuto picks the narrowest kernels every derived index fits —
	// int16, then int32, then int (the default).
	WidthAuto IndexWidth = iota
	// WidthNarrow forces the int32 kernels (the caller guarantees the
	// input is small enough; ParallelCover rejects inputs past the
	// narrow bound rather than truncate).
	WidthNarrow
	// WidthWide forces the int kernels.
	WidthWide
	// WidthNarrow16 forces the int16 kernels, with the same
	// force/reject semantics as WidthNarrow: inputs past
	// MaxInt16Vertices are rejected rather than truncated.
	WidthNarrow16
)

// String renders the width tier ("auto", "int16", "int32", "int").
func (w IndexWidth) String() string {
	switch w {
	case WidthAuto:
		return "auto"
	case WidthNarrow16:
		return "int16"
	case WidthNarrow:
		return "int32"
	case WidthWide:
		return "int"
	}
	return fmt.Sprintf("IndexWidth(%d)", uint8(w))
}

// MaxNarrowVertices is the largest vertex count the int32 pipeline
// accepts. The binding constraint is not n itself but the largest id the
// pipeline ever stores in a narrow cell: the dummy-augmented pseudo
// forest has up to 3n-2 nodes, its Euler tour 3x that many items, and
// the weighted list ranks over the tour sum to its length — all bounded
// by 10n with room to spare, hence the /10.
const MaxNarrowVertices = (math.MaxInt32 - 64) / 10

// MaxInt16Vertices is the largest vertex count the int16 pipeline
// accepts, derived from the same 10n bound on the largest value any
// pipeline cell holds (see MaxNarrowVertices). Small — 3270 — but the
// serving size distribution is dominated by graphs under it, and those
// requests stream a quarter of the bytes the int kernels would.
const MaxInt16Vertices = (math.MaxInt16 - 64) / 10

// fitsNarrow reports whether an n-vertex cover can run on the int32
// kernels without any derived value overflowing.
func fitsNarrow(n int) bool { return n <= MaxNarrowVertices }

// fitsNarrow16 reports whether an n-vertex cover can run on the int16
// kernels without any derived value overflowing.
func fitsNarrow16(n int) bool { return n <= MaxInt16Vertices }

// maxVerticesFor returns the vertex bound of a forceable narrow width
// (0 for widths without one).
func maxVerticesFor(w IndexWidth) int {
	switch w {
	case WidthNarrow16:
		return MaxInt16Vertices
	case WidthNarrow:
		return MaxNarrowVertices
	}
	return 0
}

// WidthError reports a forced narrow index width the input does not fit:
// the caller demanded kernels whose cells cannot hold every value an
// n-vertex run derives, and the pipeline rejects rather than truncates.
type WidthError struct {
	N     int        // vertices in the rejected input
	Max   int        // largest vertex count Width accepts
	Width IndexWidth // the forced width that rejected
}

// Error describes the rejected input and the bound it exceeded.
func (e *WidthError) Error() string {
	return fmt.Sprintf("core: %d vertices exceed the %s-index bound %d", e.N, e.Width, e.Max)
}

// AutoWidth reports the width WidthAuto resolves to for an n-vertex
// input: the narrowest kernels every derived value fits.
func AutoWidth(n int) IndexWidth {
	switch {
	case fitsNarrow16(n):
		return WidthNarrow16
	case fitsNarrow(n):
		return WidthNarrow
	}
	return WidthWide
}

// Options tune the pipeline (mostly for tests and experiments).
type Options struct {
	Seed         uint64     // randomization seed for list ranking
	WithoutDummy bool       // skip dummy vertices (Fig. 9/10 demonstrations only: produces pseudo path trees that may be invalid)
	SkipFix      bool       // skip Step 6 (for observing illegal inserts)
	Width        IndexWidth // index-array element width (default WidthAuto)
	Trace        *StepTrace // when non-nil, per-step simulated costs are recorded
	// Check, when non-nil, runs before every pipeline step ("step1"
	// through "step8"): a non-nil return aborts the run with that error
	// (per-request deadlines), and the hook may panic or stall (fault
	// injection). It runs on the host outside the cost model, so the
	// simulated counters are identical with or without it.
	Check func(step string) error
}

// checkStep invokes the between-step hook; a nil hook never aborts.
func (o *Options) checkStep(step string) error {
	if o.Check == nil {
		return nil
	}
	return o.Check(step)
}

// StepTrace records the cost of each pipeline step — the phase
// breakdown behind the E4 totals — on both axes: the simulated PRAM
// time/work counters and the host wall clock, so hot steps are
// attributable in benchmark snapshots.
type StepTrace struct {
	Names []string
	Time  []int64
	Work  []int64
	Wall  []time.Duration

	prev time.Time // wall-clock start of the step being accumulated
}

// start anchors the wall clock of the first step; later adds re-anchor
// themselves. Idempotent so nested pipeline entry points can both call
// it.
func (tr *StepTrace) start() {
	if tr != nil && tr.prev.IsZero() {
		tr.prev = time.Now()
	}
}

func (tr *StepTrace) add(s *pram.Sim, name string, t0, w0 int64) (int64, int64) {
	t1, w1 := s.Time(), s.Work()
	if tr != nil {
		now := time.Now()
		if tr.prev.IsZero() {
			tr.prev = now
		}
		tr.Names = append(tr.Names, name)
		tr.Time = append(tr.Time, t1-t0)
		tr.Work = append(tr.Work, w1-w0)
		tr.Wall = append(tr.Wall, now.Sub(tr.prev))
		tr.prev = now
	}
	return t1, w1
}

// String renders the trace as an aligned table.
func (tr *StepTrace) String() string {
	out := fmt.Sprintf("%-28s %12s %14s %12s\n", "step", "simtime", "simwork", "wall ms")
	for i := range tr.Names {
		out += fmt.Sprintf("%-28s %12d %14d %12.3f\n",
			tr.Names[i], tr.Time[i], tr.Work[i], float64(tr.Wall[i].Nanoseconds())/1e6)
	}
	return out
}

// ParallelCover runs the full pipeline on a cotree. The number of
// simulated processors (and the goroutine parallelism) comes from s.
//
// The index width follows opt.Width: by default the whole pipeline —
// binarization through path extraction — runs on the narrowest index
// arrays the input fits (int16 up to MaxInt16Vertices, int32 up to
// MaxNarrowVertices, int beyond), quartering or halving the bytes every
// bandwidth-bound phase streams. All widths produce identical covers
// and identical simulated cost counters.
func ParallelCover(s *pram.Sim, t *cotree.Tree, opt Options) (*Cover, error) {
	w, err := resolveWidth(t.NumVertices(), opt.Width)
	if err != nil {
		return nil, err
	}
	switch w {
	case WidthNarrow16:
		return parallelCoverIx[int16](s, t, opt)
	case WidthNarrow:
		return parallelCoverIx[int32](s, t, opt)
	}
	return parallelCoverIx[int](s, t, opt)
}

// resolveWidth maps the requested index width onto a concrete route
// (WidthNarrow16, WidthNarrow or WidthWide) for an n-vertex input,
// rejecting a forced-narrow request the kernels cannot hold with a
// *WidthError rather than truncating.
func resolveWidth(n int, w IndexWidth) (IndexWidth, error) {
	switch w {
	case WidthNarrow16, WidthNarrow:
		if max := maxVerticesFor(w); n > max {
			return WidthWide, &WidthError{N: n, Max: max, Width: w}
		}
		return w, nil
	case WidthWide:
		return WidthWide, nil
	}
	return AutoWidth(n), nil
}

func parallelCoverIx[I par.Ix](s *pram.Sim, t *cotree.Tree, opt Options) (*Cover, error) {
	opt.Trace.start()
	if err := opt.checkStep("step1"); err != nil {
		return nil, err
	}
	t0, w0 := s.Time(), s.Work()
	b := cotree.BinarizeIx[I](s, t) // Step 1
	t0, w0 = opt.Trace.add(s, "1 binarize", t0, w0)
	if err := opt.checkStep("step2"); err != nil {
		b.Release(s)
		return nil, err
	}
	L := b.MakeLeftist(s, opt.Seed) // Step 2
	opt.Trace.add(s, "2 leaf counts + leftist", t0, w0)
	cov, err := coverBinIx(s, b, L, opt)
	pram.Release(s, L)
	b.Release(s)
	return cov, err
}

// ParallelCoverBin runs Steps 3-8 on an already leftist binarized cotree.
func ParallelCoverBin(s *pram.Sim, b *cotree.Bin, L []int, opt Options) (*Cover, error) {
	return coverBinIx(s, b, L, opt)
}

func coverBinIx[I par.Ix](s *pram.Sim, b *cotree.BinIx[I], L []I, opt Options) (*Cover, error) {
	opt.Trace.start()
	n := b.NumVertices()
	if n == 1 {
		return &Cover{Paths: [][]int{{0}}, NumPaths: 1, Stats: s.Stats()}, nil
	}
	if err := opt.checkStep("step3"); err != nil {
		return nil, err
	}
	t0, w0 := s.Time(), s.Work()
	tour, tourOwned := par.AcquireTourIx(s, b.BinTree, opt.Seed^0x9e37)
	t0, w0 = opt.Trace.add(s, "3a euler tour", t0, w0)
	p := computePIx(s, b, L, tour) // Step 3 (Lemma 2.4)
	t0, w0 = opt.Trace.add(s, "3b p(u) contraction", t0, w0)
	red := reduceIx(s, b, L, p, tour)
	t0, w0 = opt.Trace.add(s, "3c reduction", t0, w0)
	if tourOwned {
		tour.Release(s)
	}
	if err := opt.checkStep("step4"); err != nil {
		red.Release(s)
		return nil, err
	}
	seq := genBracketsIx(s, b, red, !opt.WithoutDummy) // Step 4
	t0, w0 = opt.Trace.add(s, "4 bracket generation", t0, w0)
	if err := opt.checkStep("step5"); err != nil {
		seq.Release(s)
		red.Release(s)
		return nil, err
	}
	ps, err := buildPseudoIx(s, n, red, seq) // Step 5
	seq.Release(s)
	if err != nil {
		red.Release(s)
		return nil, err
	}
	t0, w0 = opt.Trace.add(s, "5 matching + pseudo trees", t0, w0)
	if err := opt.checkStep("step6"); err != nil {
		red.Release(s)
		ps.Release(s)
		return nil, err
	}
	if !opt.SkipFix && !opt.WithoutDummy {
		if _, err := fixIllegalIx(s, ps, red, opt.Seed^0xabcd); err != nil {
			red.Release(s)
			ps.Release(s)
			return nil, err
		}
	}
	t0, w0 = opt.Trace.add(s, "6 illegal-insert exchange", t0, w0)
	if err := opt.checkStep("step7"); err != nil {
		red.Release(s)
		ps.Release(s)
		return nil, err
	}
	final := bypassIx(s, ps, red, opt.Seed^0x1234) // Step 7
	t0, w0 = opt.Trace.add(s, "7 dummy bypass", t0, w0)
	ps.Release(s)
	pRoot := int(p[b.Root])
	red.Release(s) // red.P aliases p; released here
	if err := opt.checkStep("step8"); err != nil {
		par.ReleaseBinTreeIx(s, final)
		return nil, err
	}
	pathsIx, backingIx := extractPathsIx(s, final, opt.Seed^0x7777) // Step 8
	opt.Trace.add(s, "8 extract paths", t0, w0)
	par.ReleaseBinTreeIx(s, final)
	if len(pathsIx) != pRoot {
		pram.Release(s, backingIx)
		pram.Release(s, pathsIx)
		return nil, fmt.Errorf("core: produced %d paths, p(root)=%d", len(pathsIx), pRoot)
	}
	paths, seqBacking := toIntPaths(s, pathsIx, backingIx)
	return &Cover{Paths: paths, NumPaths: len(paths), Stats: s.Stats(), seq: seqBacking}, nil
}

// toIntPaths converts the arena-backed paths of a narrow run to the int
// representation the Cover type exposes; the int instantiation is the
// identity. The conversion is a host-level representation change (one
// pass over n elements), not a simulated phase, so it charges nothing.
func toIntPaths[I par.Ix](s *pram.Sim, pathsIx [][]I, backing []I) ([][]int, []int) {
	if p, ok := any(pathsIx).([][]int); ok {
		return p, any(backing).([]int)
	}
	seq := pram.GrabNoClear[int](s, len(backing))
	for i, v := range backing {
		seq[i] = int(v)
	}
	paths := pram.GrabNoClear[[]int](s, len(pathsIx))
	off := 0
	for i, p := range pathsIx {
		paths[i] = seq[off : off+len(p)]
		off += len(p)
	}
	pram.Release(s, backing)
	pram.Release(s, pathsIx)
	return paths, seq
}

// ComputeP evaluates the Lin et al. recurrence (Lemma 2.4)
//
//	p(leaf)   = 1
//	p(0-node) = p(left) + p(right)
//	p(1-node) = max(p(left) - L(right), 1)
//
// for every node of the leftist binarized cotree by parallel tree
// contraction in O(log n) time and O(n) work.
func ComputeP(s *pram.Sim, b *cotree.Bin, L []int, tour *par.Tour) []int {
	return computePIx(s, b, L, tour)
}

func computePIx[I par.Ix](s *pram.Sim, b *cotree.BinIx[I], L []I, tour *par.TourIx[I]) []I {
	nn := b.NumNodes()
	op := pram.Grab[par.NodeOp](s, nn)
	leafVal := pram.Grab[int64](s, nn)
	s.ParallelForRange(nn, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			if b.IsLeaf(u) {
				leafVal[u] = 1
			} else if b.One[u] {
				op[u] = par.NodeOp{Kind: par.OpJoinClamp, C: int64(L[b.Right[u]])}
			} else {
				op[u] = par.NodeOp{Kind: par.OpSum}
			}
		}
	})
	ranks, _ := tour.LeafRanks(s, b.BinTree)
	vals := par.EvalTreeIx(s, b.BinTree, op, leafVal, ranks)
	p := pram.GrabNoClear[I](s, nn)
	s.ParallelForRange(nn, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			p[u] = I(vals[u])
		}
	})
	pram.Release(s, op)
	pram.Release(s, leafVal)
	pram.Release(s, ranks)
	pram.Release(s, vals)
	return p
}
