package core

import (
	"pathcover/internal/cotree"
	"pathcover/internal/par"
	"pathcover/internal/pram"
)

// Reduction is the reduced leftist binarized cotree Tblr of the paper's
// §2 in implicit array form: for every 1-node u that is not itself inside
// the right subtree of another 1-node ("active"), the subtree of u's
// right child w is flattened into L(w) classified leaves (bridge or
// insert vertices, plus the dummy placeholders of §4), because the edges
// inside G(w) are never used by the cover.
type ReductionIx[I par.Ix] struct {
	NumVertices int

	// Per cotree node of b:
	Active     []bool // u is an active 1-node (emits a bracket block)
	NB, NI, ND []I    // bridge / insert / dummy counts at active nodes
	DummyBase  []I    // first dummy index belonging to u's block
	Start      []I    // leaf rank of the leftmost leaf under the node

	// Per vertex (0..n-1):
	Role     []Role
	Owner    []I // active 1-node that classified the vertex; -1 for primary
	RoleIdx  []I // index among its node's bridges or inserts
	LeafRank []I // inorder leaf rank of the vertex in b
	VertAt   []I // leaf rank -> vertex

	// Dummies (ids n..n+TotalDummies-1):
	TotalDummies int
	DummyOwner   []I // per dummy index: owning active 1-node

	P []I // p(u) per node (kept for the bracket generator)
	L []I // L(u) per node
}

// Reduction is the int-width reduction, the historical form.
type Reduction = ReductionIx[int]

// Release returns the reduction's slices — including the P slice it took
// ownership of, but not L, which stays with the caller — to the arena.
func (r *ReductionIx[I]) Release(s *pram.Sim) {
	pram.Release(s, r.Active)
	pram.Release(s, r.NB)
	pram.Release(s, r.NI)
	pram.Release(s, r.ND)
	pram.Release(s, r.DummyBase)
	pram.Release(s, r.Start)
	pram.Release(s, r.Role)
	pram.Release(s, r.Owner)
	pram.Release(s, r.RoleIdx)
	pram.Release(s, r.LeafRank)
	pram.Release(s, r.VertAt)
	pram.Release(s, r.DummyOwner)
	pram.Release(s, r.P)
	r.Active, r.DummyOwner, r.Role = nil, nil, nil
	r.NB, r.NI, r.ND, r.DummyBase, r.Start = nil, nil, nil, nil, nil
	r.Owner, r.RoleIdx, r.LeafRank, r.VertAt, r.P, r.L = nil, nil, nil, nil, nil, nil
}

// IsDummy reports whether a pseudo-tree id denotes a dummy vertex.
func (r *ReductionIx[I]) IsDummy(id int) bool { return id >= r.NumVertices }

// RoleOf returns the role of any pseudo-tree id (vertex or dummy).
func (r *ReductionIx[I]) RoleOf(id int) Role {
	if r.IsDummy(id) {
		return RoleDummy
	}
	return r.Role[id]
}

// OwnerOf returns the owning active 1-node of any pseudo-tree id.
func (r *ReductionIx[I]) OwnerOf(id int) int {
	if r.IsDummy(id) {
		return int(r.DummyOwner[id-r.NumVertices])
	}
	return int(r.Owner[id])
}

// Reduce performs the classification half of Step 3: it determines the
// active 1-nodes, sizes their blocks (Case 1: L(w) bridges; Case 2:
// p(v)-1 bridges, L(w)-p(v)+1 inserts, 2p(v)-2 dummies), and assigns
// every vertex its role. O(log n) time, O(n) work: the bundle intervals
// are resolved with leaf-rank scatter + prefix scans rather than
// per-vertex ancestor walks.
func Reduce(s *pram.Sim, b *cotree.Bin, L, p []int, tour *par.Tour) *Reduction {
	return reduceIx(s, b, L, p, tour)
}

func reduceIx[I par.Ix](s *pram.Sim, b *cotree.BinIx[I], L, p []I, tour *par.TourIx[I]) *ReductionIx[I] {
	nn := b.NumNodes()
	n := b.NumVertices()
	red := &ReductionIx[I]{
		NumVertices: n,
		Active:      pram.Grab[bool](s, nn),
		NB:          pram.Grab[I](s, nn),
		NI:          pram.Grab[I](s, nn),
		ND:          pram.Grab[I](s, nn),
		Start:       tour.LeafStarts(s, b.BinTree),
		Role:        pram.Grab[Role](s, n),
		Owner:       pram.GrabNoClear[I](s, n),
		RoleIdx:     pram.Grab[I](s, n),
		LeafRank:    pram.GrabNoClear[I](s, n),
		VertAt:      pram.GrabNoClear[I](s, n),
		P:           p,
		L:           L,
	}

	// flag[v]: v is the right child of a 1-node. A node with no flagged
	// proper ancestor and flagCnt 0 is in the active region.
	flag := pram.GrabNoClear[bool](s, nn)
	s.ParallelForRange(nn, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			pa := b.Parent[v]
			flag[v] = pa >= 0 && b.One[pa] && b.Right[pa] == I(v)
		}
	})
	flagCnt := tour.AncestorFlagCounts(s, flag)

	s.ParallelForRange(nn, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			if !b.IsLeaf(u) && b.One[u] && flagCnt[u] == 0 {
				red.Active[u] = true
				v, w := b.Left[u], b.Right[u]
				pv, lw := p[v], L[w]
				if pv > lw { // Case 1
					red.NB[u] = lw
				} else { // Case 2
					red.NB[u] = pv - 1
					red.NI[u] = lw - pv + 1
					red.ND[u] = 2*pv - 2
				}
			}
		}
	})
	dummyBase, totalDummies := par.ScanIx(s, red.ND)
	red.DummyBase, red.TotalDummies = dummyBase, int(totalDummies)

	// Leaf ranks and the rank->vertex map.
	ranks, _ := tour.LeafRanks(s, b.BinTree)
	s.ParallelForRange(nn, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if b.IsLeaf(v) {
				x := b.VertexOf[v]
				red.LeafRank[x] = ranks[v]
				red.VertAt[ranks[v]] = x
			}
		}
	})
	pram.Release(s, ranks)

	// Owner per leaf rank: bundle w of active node u covers ranks
	// [Start[w], Start[w]+L[w]). Scatter end-markers first, then start
	// markers (starts win shared cells), then a "last marker" scan.
	const unset = -2
	markers := pram.GrabNoClear[I](s, n)
	s.ParallelForRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			markers[i] = unset
		}
	})
	s.ParallelForRange(nn, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			if red.Active[u] {
				w := b.Right[u]
				if e := int(red.Start[w] + L[w]); e < n {
					markers[e] = -1
				}
			}
		}
	})
	s.ParallelForRange(nn, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			if red.Active[u] {
				markers[red.Start[b.Right[u]]] = I(u)
			}
		}
	})
	owners := par.InclusiveScan(s, markers, I(unset), func(a, b I) I {
		if b != unset {
			return b
		}
		return a
	})

	// Classify vertices.
	s.ParallelForRange(n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			r := red.LeafRank[x]
			u := owners[r]
			if u < 0 {
				red.Role[x] = RolePrimary
				red.Owner[x] = -1
				continue
			}
			red.Owner[x] = u
			idx := r - red.Start[b.Right[u]]
			if idx < red.NB[u] {
				red.Role[x] = RoleBridge
				red.RoleIdx[x] = idx
			} else {
				red.Role[x] = RoleInsert
				red.RoleIdx[x] = idx - red.NB[u]
			}
		}
	})

	// Dummy owners.
	if red.TotalDummies > 0 {
		red.DummyOwner = pram.GrabNoClear[I](s, red.TotalDummies)
		downer, doff, _ := par.DistributeIx(s, red.ND)
		s.ParallelForRange(red.TotalDummies, func(lo, hi int) {
			for d := lo; d < hi; d++ {
				red.DummyOwner[d] = downer[d]
			}
		})
		pram.Release(s, downer)
		pram.Release(s, doff)
	}
	pram.Release(s, flag)
	pram.Release(s, flagCnt)
	pram.Release(s, markers)
	pram.Release(s, owners)
	return red
}
