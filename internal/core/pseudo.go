package core

import (
	"fmt"

	"pathcover/internal/par"
	"pathcover/internal/pram"
)

// BinTree re-aliases the width-generic binary forest of internal/par so
// PseudoIx can embed it under the field name the int-width code has
// always used.
type BinTree[I par.Ix] = par.BinTreeIx[I]

// PseudoIx is the pseudo path forest of Step 5, generic over the index
// width (see par.Ix): binary trees over the n real vertices plus the
// dummy vertices (ids n..n+EffDummies-1), whose inorder traversals spell
// out candidate paths. Until Step 6 it may contain illegal insert
// vertices (paper Fig. 9).
type PseudoIx[I par.Ix] struct {
	BinTree[I]
	NumVertices int
	EffDummies  int
}

// Pseudo is the int-width pseudo forest, the historical form.
type Pseudo = PseudoIx[int]

// Release returns the pseudo forest's link slices to the Sim's arena.
func (ps *PseudoIx[I]) Release(s *pram.Sim) {
	par.ReleaseBinTreeIx(s, ps.BinTree)
	ps.BinTree = BinTree[I]{}
}

// BuildPseudo matches the square and round bracket families
// independently (Lemma 5.1(3)) and decodes the matched pairs into the
// edges of the pseudo path forest:
//
//	a[ ... b]   (right kind)  ->  a becomes the right child of bridge b
//	a[ ... b]   (left kind)   ->  a becomes the left child of bridge b
//	a( ... b)   (left slot)   ->  b becomes the left child of a
//	a( ... b)   (right slot)  ->  b becomes the right child of a
//
// Unmatched "[" mark path tree roots; unmatched "(" are free slots. An
// unmatched ")" would leave an insert or dummy without a parent — the
// capacity invariant S(x) >= L(x)+p(x) of §4 rules it out, and the
// builder reports it as an error if it ever happens.
func BuildPseudo(s *pram.Sim, n int, red *Reduction, seq *BracketSeq) (*Pseudo, error) {
	return buildPseudoIx(s, n, red, seq)
}

func buildPseudoIx[I par.Ix](s *pram.Sim, n int, red *ReductionIx[I], seq *BracketSeqIx[I]) (*PseudoIx[I], error) {
	total := seq.Len()
	N := n + seq.EffDummies
	ps := &PseudoIx[I]{BinTree: par.GrabBinTreeIx[I](s, N), NumVertices: n, EffDummies: seq.EffDummies}

	for _, square := range []bool{true, false} {
		square := square
		inFam := pram.GrabNoClear[bool](s, total)
		s.ParallelForRange(total, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				inFam[i] = seq.Kind[i].IsSquare() == square
			}
		})
		pos := par.IndexPackIx[I](s, inFam)
		m := len(pos)
		open := pram.GrabNoClear[bool](s, m)
		s.ParallelForRange(m, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				open[k] = seq.Kind[pos[k]].IsOpen()
			}
		})
		match := par.MatchBracketsIx[I](s, open)

		bad := pram.Grab[I](s, m)
		s.ForCostRange(m, 2, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				i := pos[k]
				if match[k] < 0 {
					if seq.Kind[i] == KRdCloseP {
						bad[k] = 1 // an insert/dummy without a parent
					}
					continue
				}
				j := pos[match[k]]
				if square {
					if seq.Kind[i] != KSqOpenP {
						continue // handle each pair once, from the open side
					}
					a, b := seq.Vert[i], seq.Vert[j]
					ps.Parent[a] = b
					if seq.Kind[j] == KSqCloseL {
						ps.Left[b] = a
					} else {
						ps.Right[b] = a
					}
				} else {
					if seq.Kind[i] != KRdCloseP {
						continue
					}
					child, parent := seq.Vert[i], seq.Vert[j]
					ps.Parent[child] = parent
					if seq.Kind[j] == KRdOpenL {
						ps.Left[parent] = child
					} else {
						ps.Right[parent] = child
					}
				}
			}
		})
		nbad := par.Reduce(s, bad, 0, func(a, b I) I { return a + b })
		pram.Release(s, inFam)
		pram.Release(s, pos)
		pram.Release(s, open)
		pram.Release(s, match)
		pram.Release(s, bad)
		if nbad > 0 {
			ps.Release(s)
			return nil, fmt.Errorf("core: %d unmatched parent brackets (capacity invariant violated)", int(nbad))
		}
	}
	return ps, nil
}

// FixIllegal is Step 6. An insert vertex is illegal when one of its
// *effective* inorder neighbours — the nearest non-dummy in each
// direction — is a bridge or insert vertex of the same active 1-node:
// such pairs both live in G(w) of that node and carry no adjacency
// guarantee. (The paper checks the immediate neighbours only; because a
// dummy spliced out in Step 7 joins its two neighbours, and because
// splicing a node with at most one child preserves inorder, the
// effective neighbours are exactly the adjacencies of the final paths,
// so checking them closes the cross-level gap the literal check leaves
// open — see DESIGN.md.)
//
// Each illegal insert is exchanged, subtree and all, with a legal dummy
// of the same 1-node. A swap can create a fresh effective adjacency
// elsewhere (the spots vacated by two swapped inserts can become
// effectively adjacent), so the check-and-exchange is iterated until no
// illegal insert remains; each round is one O(log n) phase and the rounds
// observed in practice are 1-3 (asserted bounded here).
//
// It returns the total number of exchanges performed.
func FixIllegal(s *pram.Sim, ps *Pseudo, red *Reduction, seed uint64) (int, error) {
	return fixIllegalIx(s, ps, red, seed)
}

func fixIllegalIx[I par.Ix](s *pram.Sim, ps *PseudoIx[I], red *ReductionIx[I], seed uint64) (int, error) {
	n := red.NumVertices
	N := ps.Len()
	nd := ps.EffDummies
	if nd == 0 {
		return 0, nil
	}

	segOp := func(a, b segIx[I]) segIx[I] {
		if b.reset {
			return b
		}
		return segIx[I]{a.sum + b.sum, a.reset}
	}

	// Inserts in (owner, idx) order = leaf-rank order filtered to inserts.
	isIns := pram.GrabNoClear[bool](s, n)
	s.ParallelForRange(n, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			isIns[r] = red.Role[red.VertAt[r]] == RoleInsert
		}
	})
	insRanks := par.IndexPackIx[I](s, isIns)
	pram.Release(s, isIns)
	ni := len(insRanks)
	defer pram.Release(s, insRanks)

	sentinel := par.MinIx[I]()
	totalSwaps := 0
	const maxRounds = 48
	for round := 0; ; round++ {
		if round >= maxRounds {
			return totalSwaps, fmt.Errorf("core: illegal-insert exchange did not converge in %d rounds", maxRounds)
		}
		// Round 0 builds (and caches) the tour; later rounds refresh the
		// cached one in place from the swap patches recorded below,
		// replaying the charges a from-scratch rebuild would issue.
		tour, tourOwned := par.AcquireTourIx(s, ps.BinTree, seed+uint64(round))

		// Effective neighbours: nearest non-dummy left/right in inorder.
		lastReal := pram.GrabNoClear[I](s, N)
		s.ParallelForRange(N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if int(tour.InSeq[i]) < n {
					lastReal[i] = I(i)
				} else {
					lastReal[i] = -1
				}
			}
		})
		prevReal := par.MaxScanIx(s, lastReal)
		// next non-dummy via a max-scan over the reversed sequence.
		rev := pram.GrabNoClear[I](s, N)
		s.ParallelForRange(N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				j := N - 1 - i
				if int(tour.InSeq[j]) < n {
					rev[i] = -I(j + 1) // encode so that max = smallest j
				} else {
					rev[i] = sentinel
				}
			}
		})
		nextRealEnc := par.MaxScanIx(s, rev)

		effNeighbor := func(x int, left bool) int {
			in := int(tour.In[x])
			if left {
				if in == 0 {
					return -1
				}
				p := prevReal[in-1]
				if p < 0 {
					return -1
				}
				y := int(tour.InSeq[p])
				if tour.Root[y] != tour.Root[x] {
					return -1
				}
				return y
			}
			if in == N-1 {
				return -1
			}
			enc := nextRealEnc[N-1-(in+1)]
			if enc == sentinel {
				return -1
			}
			y := int(tour.InSeq[-enc-1])
			if tour.Root[y] != tour.Root[x] {
				return -1
			}
			return y
		}
		sameLevelW := func(x, y int) bool {
			if y < 0 {
				return false
			}
			ry := red.RoleOf(y)
			return (ry == RoleBridge || ry == RoleInsert) &&
				red.OwnerOf(y) == red.OwnerOf(x)
		}
		illegal := pram.Grab[bool](s, N)
		s.ForCostRange(N, 4, func(lo, hi int) {
			for x := lo; x < hi; x++ {
				role := red.RoleOf(x)
				if role != RoleInsert && role != RoleDummy {
					continue
				}
				illegal[x] = sameLevelW(x, effNeighbor(x, true)) ||
					sameLevelW(x, effNeighbor(x, false))
			}
		})
		if tourOwned {
			tour.Release(s)
		}
		pram.Release(s, lastReal)
		pram.Release(s, prevReal)
		pram.Release(s, rev)
		pram.Release(s, nextRealEnc)

		// Rank illegal inserts per owner.
		insItems := pram.GrabNoClear[segIx[I]](s, ni)
		s.ForCostRange(ni, 2, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				x := red.VertAt[insRanks[k]]
				v := I(0)
				if illegal[x] {
					v = 1
				}
				reset := k == 0 || red.Owner[red.VertAt[insRanks[k-1]]] != red.Owner[x]
				insItems[k] = segIx[I]{v, reset}
			}
		})
		insScan := par.InclusiveScan(s, insItems, segIx[I]{}, segOp)
		nIllegal := 0
		{
			flags := pram.GrabNoClear[I](s, ni)
			s.ParallelForRange(ni, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					flags[k] = insItems[k].sum
				}
			})
			nIllegal = int(par.Reduce(s, flags, 0, func(a, b I) I { return a + b }))
			pram.Release(s, flags)
		}
		pram.Release(s, insItems)
		if nIllegal == 0 {
			pram.Release(s, illegal)
			pram.Release(s, insScan)
			return totalSwaps, nil
		}

		// Rank legal dummies per owner (dummies are grouped by owner in
		// id order) and count them per owner.
		dumItems := pram.GrabNoClear[segIx[I]](s, nd)
		s.ForCostRange(nd, 2, func(lo, hi int) {
			for d := lo; d < hi; d++ {
				v := I(0)
				if !illegal[n+d] {
					v = 1
				}
				reset := d == 0 || red.DummyOwner[d-1] != red.DummyOwner[d]
				dumItems[d] = segIx[I]{v, reset}
			}
		})
		dumScan := par.InclusiveScan(s, dumItems, segIx[I]{}, segOp)
		legalAt := pram.GrabNoClear[I](s, nd)
		legalCount := pram.Grab[I](s, nd) // per owner, stored at DummyBase
		s.ParallelForRange(nd, func(lo, hi int) {
			for d := lo; d < hi; d++ {
				legalAt[d] = -1
			}
		})
		s.ParallelForRange(nd, func(lo, hi int) {
			for d := lo; d < hi; d++ {
				u := red.DummyOwner[d]
				if !illegal[n+d] {
					legalAt[red.DummyBase[u]+dumScan[d].sum-1] = I(n + d)
				}
				if d == nd-1 || red.DummyOwner[d+1] != u {
					legalCount[red.DummyBase[u]] = dumScan[d].sum
				}
			}
		})

		// Exchange: k-th illegal insert of node u takes the
		// (k+round)-mod-legalCount legal dummy of u (the rotation breaks
		// potential ping-pong cycles across rounds).
		missing := pram.Grab[I](s, ni)
		partner := pram.GrabNoClear[I](s, ni) // dummy swapped with insert k, or -1
		s.ForCostRange(ni, 4, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				partner[k] = -1
				x := red.VertAt[insRanks[k]]
				if !illegal[x] {
					continue
				}
				u := red.Owner[x]
				base := red.DummyBase[u]
				lc := int(legalCount[base])
				rank := int(insScan[k].sum) - 1
				if lc == 0 || rank >= lc {
					missing[k] = 1
					continue
				}
				d := legalAt[int(base)+(rank+round)%lc]
				if d < 0 {
					missing[k] = 1
					continue
				}
				swapPositions(ps, x, d)
				partner[k] = d
			}
		})
		nm := par.Reduce(s, missing, 0, func(a, b I) I { return a + b })
		if !tourOwned {
			// Patch the cached tour's successor links for every swap the
			// phase performed, so the next round refreshes it with a single
			// walk instead of a from-scratch rebuild (host-level, uncharged).
			for k := 0; k < ni; k++ {
				if d := partner[k]; d >= 0 {
					par.PatchTourSwapIx(s, ps.BinTree, red.VertAt[insRanks[k]], d)
				}
			}
		}
		pram.Release(s, partner)
		pram.Release(s, illegal)
		pram.Release(s, insScan)
		pram.Release(s, dumItems)
		pram.Release(s, dumScan)
		pram.Release(s, legalAt)
		pram.Release(s, legalCount)
		pram.Release(s, missing)
		if nm > 0 {
			return totalSwaps, fmt.Errorf("core: %d illegal inserts without a legal dummy partner", int(nm))
		}
		totalSwaps += nIllegal
	}
}

// segIx is the segmented-sum monoid of FixIllegal's per-owner ranking
// (a value plus a segment-restart flag).
type segIx[I par.Ix] struct {
	sum   I
	reset bool
}

// swapPositions exchanges the tree positions of x and y, carrying their
// subtrees along (only the parent links and the two parents' child slots
// change).
func swapPositions[I par.Ix](ps *PseudoIx[I], x, y I) {
	px, py := ps.Parent[x], ps.Parent[y]
	xLeft := px >= 0 && ps.Left[px] == x
	yLeft := py >= 0 && ps.Left[py] == y
	if px >= 0 {
		if xLeft {
			ps.Left[px] = y
		} else {
			ps.Right[px] = y
		}
	}
	if py >= 0 {
		if yLeft {
			ps.Left[py] = x
		} else {
			ps.Right[py] = x
		}
	}
	ps.Parent[x], ps.Parent[y] = py, px
}

// Bypass is Step 7: dummy vertices are spliced out. A dummy has at most
// one child (its only slot is the right one), so the dummies form
// downward chains; chain collapse (list ranking on the dummy links)
// finds each chain's first real descendant in O(log n) time.
func Bypass(s *pram.Sim, ps *Pseudo, red *Reduction, seed uint64) par.BinTree {
	return bypassIx(s, ps, red, seed)
}

func bypassIx[I par.Ix](s *pram.Sim, ps *PseudoIx[I], red *ReductionIx[I], seed uint64) par.BinTreeIx[I] {
	n := ps.NumVertices
	N := ps.Len()
	next := pram.GrabNoClear[I](s, N)
	s.ParallelForRange(N, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			if x >= n { // dummy: follow its single (right) child
				next[x] = ps.Right[x]
			} else {
				next[x] = -1
			}
		}
	})
	dist, last := par.RankOptIx(s, next, seed)
	pram.Release(s, dist)
	pram.Release(s, next)

	final := par.GrabBinTreeIx[I](s, n)
	s.ForCostRange(n, 4, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			for _, side := range [2]bool{true, false} {
				var c I
				if side {
					c = ps.Left[x]
				} else {
					c = ps.Right[x]
				}
				if c < 0 {
					continue
				}
				t := c
				if int(c) >= n {
					t = last[c]
					if int(t) >= n { // childless dummy chain: slot empties
						continue
					}
				}
				if side {
					final.Left[x] = t
				} else {
					final.Right[x] = t
				}
				final.Parent[t] = I(x)
			}
		}
	})
	pram.Release(s, last)
	return final
}

// ExtractPaths is Step 8: the paths are the inorder traversals of the
// final path trees, read off from one Euler tour of the forest. The
// returned paths all slice into the returned backing buffer; both are
// drawn from the Sim's arena (the Cover that wraps them owns their
// release).
func ExtractPaths(s *pram.Sim, final par.BinTree, seed uint64) (paths [][]int, backing []int) {
	return extractPathsIx(s, final, seed)
}

func extractPathsIx[I par.Ix](s *pram.Sim, final par.BinTreeIx[I], seed uint64) (paths [][]I, backing []I) {
	n := final.Len()
	if n == 0 {
		return nil, nil
	}
	tour, tourOwned := par.AcquireTourIx(s, final, seed)
	size, leaves := tour.SubtreeCounts(s, final)
	pram.Release(s, leaves)
	// Global inorder sequence; trees occupy consecutive blocks in root
	// order.
	seq := pram.GrabNoClear[I](s, n)
	s.ParallelForRange(n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			seq[tour.In[x]] = I(x)
		}
	})
	roots := tour.Roots
	sizes := pram.GrabNoClear[I](s, len(roots))
	s.ParallelFor(len(roots), func(k int) { sizes[k] = size[roots[k]] })
	offs, _ := par.ScanIx(s, sizes)
	paths = pram.GrabNoClear[[]I](s, len(roots))
	s.ParallelFor(len(roots), func(k int) {
		paths[k] = seq[offs[k] : offs[k]+sizes[k]]
	})
	pram.Release(s, size)
	pram.Release(s, sizes)
	pram.Release(s, offs)
	if tourOwned {
		tour.Release(s)
	}
	return paths, seq
}
