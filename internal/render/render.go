// Package render draws cotrees and path covers as ASCII art for the
// examples and the CLI.
package render

import (
	"fmt"
	"strings"

	"pathcover/internal/cotree"
)

// Tree renders a cotree with box-drawing characters, e.g.
//
//	(1)
//	├── a
//	└── (0)
//	    ├── b
//	    └── c
func Tree(t *cotree.Tree) string {
	var sb strings.Builder
	var walk func(u int, prefix string, last bool, root bool)
	walk = func(u int, prefix string, last bool, root bool) {
		connector, childPrefix := "", ""
		if !root {
			if last {
				connector = "└── "
				childPrefix = prefix + "    "
			} else {
				connector = "├── "
				childPrefix = prefix + "│   "
			}
		}
		label := ""
		if t.Label[u] == cotree.LabelLeaf {
			label = t.Name(t.VertexOf[u])
		} else {
			label = fmt.Sprintf("(%d)", t.Label[u])
		}
		sb.WriteString(prefix + connector + label + "\n")
		for i, c := range t.Children[u] {
			walk(c, childPrefix, i == len(t.Children[u])-1, false)
		}
	}
	walk(t.Root, "", true, true)
	return sb.String()
}

// Paths renders a path cover, one line per path:
//
//	path 1 (4 vertices): a — b — c — d
func Paths(t *cotree.Tree, paths [][]int) string {
	var sb strings.Builder
	for i, p := range paths {
		names := make([]string, len(p))
		for j, v := range p {
			names[j] = t.Name(v)
		}
		fmt.Fprintf(&sb, "path %d (%d vertices): %s\n", i+1, len(p), strings.Join(names, " — "))
	}
	return sb.String()
}

// Cycle renders a Hamiltonian cycle.
func Cycle(t *cotree.Tree, cycle []int) string {
	names := make([]string, len(cycle))
	for j, v := range cycle {
		names[j] = t.Name(v)
	}
	return "cycle: " + strings.Join(names, " — ") + " — " + names[0] + "\n"
}
