package render

import (
	"fmt"
	"strings"

	"pathcover/internal/cotree"
)

// DOT emits the cotree in Graphviz dot format: 0-nodes as circles
// labelled ∪, 1-nodes as double circles labelled ⋈, leaves as boxes with
// their vertex names.
func DOT(t *cotree.Tree) string {
	var sb strings.Builder
	sb.WriteString("digraph cotree {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n")
	for u := 0; u < t.NumNodes(); u++ {
		switch t.Label[u] {
		case cotree.LabelLeaf:
			fmt.Fprintf(&sb, "  n%d [shape=box, label=%q];\n", u, t.Name(t.VertexOf[u]))
		case cotree.Label0:
			fmt.Fprintf(&sb, "  n%d [shape=circle, label=\"0\"];\n", u)
		default:
			fmt.Fprintf(&sb, "  n%d [shape=doublecircle, label=\"1\"];\n", u)
		}
	}
	for u := 0; u < t.NumNodes(); u++ {
		for _, c := range t.Children[u] {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", u, c)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// CoverDOT emits a path cover as a dot graph: the cograph's vertices
// with the cover's path edges highlighted, one color class per path.
func CoverDOT(t *cotree.Tree, paths [][]int) string {
	colors := []string{"red", "blue", "darkgreen", "orange", "purple", "brown", "cadetblue"}
	var sb strings.Builder
	sb.WriteString("graph cover {\n  node [shape=circle, fontname=\"monospace\"];\n")
	for v := 0; v < t.NumVertices(); v++ {
		fmt.Fprintf(&sb, "  v%d [label=%q];\n", v, t.Name(v))
	}
	for pi, p := range paths {
		col := colors[pi%len(colors)]
		for i := 1; i < len(p); i++ {
			fmt.Fprintf(&sb, "  v%d -- v%d [color=%s, penwidth=2];\n", p[i-1], p[i], col)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
