package render

import (
	"strings"
	"testing"

	"pathcover/internal/cotree"
)

func TestTree(t *testing.T) {
	tr := cotree.MustParse("(1 a (0 b c))")
	out := Tree(tr)
	for _, want := range []string{"(1)", "(0)", "a", "b", "c", "└──", "├──"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 5 {
		t.Errorf("rendering has %d lines, want 5:\n%s", lines, out)
	}
}

func TestPaths(t *testing.T) {
	tr := cotree.MustParse("(1 (0 a b) c)")
	out := Paths(tr, [][]int{{0, 2, 1}})
	if !strings.Contains(out, "path 1 (3 vertices): a — c — b") {
		t.Errorf("unexpected rendering: %s", out)
	}
}

func TestCycle(t *testing.T) {
	tr := cotree.MustParse("(1 a b c)")
	out := Cycle(tr, []int{0, 1, 2})
	if !strings.Contains(out, "a — b — c — a") {
		t.Errorf("unexpected cycle rendering: %s", out)
	}
}

func TestDOT(t *testing.T) {
	tr := cotree.MustParse("(1 a (0 b c))")
	out := DOT(tr)
	for _, want := range []string{"digraph cotree", "doublecircle", "shape=box", "\"a\"", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT lacks %q:\n%s", want, out)
		}
	}
	// one edge per child link
	if got := strings.Count(out, "->"); got != 4 {
		t.Errorf("DOT has %d edges, want 4", got)
	}
}

func TestCoverDOT(t *testing.T) {
	tr := cotree.MustParse("(1 (0 a b) c)")
	out := CoverDOT(tr, [][]int{{0, 2, 1}})
	if !strings.Contains(out, "v0 -- v2") || !strings.Contains(out, "v2 -- v1") {
		t.Errorf("CoverDOT missing path edges:\n%s", out)
	}
	if !strings.Contains(out, "color=red") {
		t.Errorf("CoverDOT missing color:\n%s", out)
	}
}
