package pathcover

import (
	"errors"
	"sync"
	"testing"
)

// TestSolverMatchesOneShot: a reused Solver must produce exactly the
// covers the one-shot API produces, call after call.
func TestSolverMatchesOneShot(t *testing.T) {
	sv := NewSolver()
	defer sv.Close()
	for _, shape := range []Shape{Mixed, Balanced, Caterpillar} {
		for _, n := range []int{1, 2, 17, 256, 1500} {
			g := Random(uint64(n)+7, n, shape)
			cov, err := sv.MinimumPathCover(g)
			if err != nil {
				t.Fatalf("%v/n=%d: %v", shape, n, err)
			}
			if err := g.Verify(cov.Paths); err != nil {
				t.Fatalf("%v/n=%d: invalid cover: %v", shape, n, err)
			}
			if want := g.MinPathCoverSize(); cov.NumPaths != want {
				t.Fatalf("%v/n=%d: %d paths, want %d", shape, n, cov.NumPaths, want)
			}
		}
	}
}

// TestSolverResultsValidUntilNextCall documents the ownership contract:
// the previous call's paths are recycled by the next call.
func TestSolverResultsValidUntilNextCall(t *testing.T) {
	sv := NewSolver()
	defer sv.Close()
	g := Random(1, 800, Mixed)
	cov1, err := sv.MinimumPathCover(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(cov1.Paths); err != nil {
		t.Fatalf("first cover invalid: %v", err)
	}
	cov2, err := sv.MinimumPathCover(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(cov2.Paths); err != nil {
		t.Fatalf("second cover invalid: %v", err)
	}
}

// TestSolverHamiltonian exercises the error-returning Hamiltonian
// methods on graphs with and without Hamiltonian paths/cycles.
func TestSolverHamiltonian(t *testing.T) {
	sv := NewSolver()
	defer sv.Close()

	g, err := ParseCotree("(1 (0 a b) (0 c d))") // C4: cycle a-c-b-d
	if err != nil {
		t.Fatal(err)
	}
	p, ok, err := sv.HamiltonianPath(g)
	if err != nil || !ok {
		t.Fatalf("C4 Hamiltonian path: ok=%v err=%v", ok, err)
	}
	if len(p) != 4 {
		t.Fatalf("path length %d, want 4", len(p))
	}
	c, ok, err := sv.HamiltonianCycle(g)
	if err != nil || !ok {
		t.Fatalf("C4 Hamiltonian cycle: ok=%v err=%v", ok, err)
	}
	if len(c) != 4 {
		t.Fatalf("cycle length %d, want 4", len(c))
	}

	disc := Union(Vertex("x"), Vertex("y")) // disconnected: no path
	if _, ok, err := sv.HamiltonianPath(disc); err != nil || ok {
		t.Fatalf("disconnected graph: ok=%v err=%v, want false,nil", ok, err)
	}
}

// TestSolverStressManyGraphs drives one Solver (with a real worker pool)
// through many differently-sized graphs; run under -race this audits the
// pool + arena interplay in its steady state.
func TestSolverStressManyGraphs(t *testing.T) {
	sv := NewSolver(WithWorkers(4))
	defer sv.Close()
	for i := 0; i < 40; i++ {
		n := 64 + (i*97)%2000
		g := Random(uint64(i), n, Shape(i%3))
		cov, err := sv.MinimumPathCover(g)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if want := g.MinPathCoverSize(); cov.NumPaths != want {
			t.Fatalf("iter %d: %d paths, want %d", i, cov.NumPaths, want)
		}
		if err := g.Verify(cov.Paths); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
	}
}

// TestSolverCoverAllocsBounded is the pipeline-level allocation
// regression: a repeated cover on a reused Solver must allocate a small,
// n-independent number of objects (the residue is per-phase closures in
// the generic stages; every buffer is arena-recycled). The seed code
// allocated ~9k objects and ~39 MB per call at n=4096, growing with n.
func TestSolverCoverAllocsBounded(t *testing.T) {
	var per [2]float64
	for i, n := range []int{1 << 12, 1 << 14} {
		g := Random(3, n, Mixed)
		sv := NewSolver()
		sv.MinimumPathCover(g)
		sv.MinimumPathCover(g) // steady state
		per[i] = testing.AllocsPerRun(10, func() {
			if _, err := sv.MinimumPathCover(g); err != nil {
				t.Fatal(err)
			}
		})
		sv.Close()
	}
	for i, n := range []int{1 << 12, 1 << 14} {
		if per[i] > 1024 {
			t.Errorf("n=%d: %.0f allocs/op, want <= 1024", n, per[i])
		}
	}
	// Flat in n: 4x the input must not even double the allocations.
	if per[1] > 2*per[0] {
		t.Errorf("allocs/op grow with n: %.0f at 4096 vs %.0f at 16384", per[0], per[1])
	}
}

// TestGraphMethodsConcurrent: the package-level API shares a solver pool
// internally; concurrent callers must each get correct, private results.
func TestGraphMethodsConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				n := 100 + 53*w + i
				g := Random(uint64(w*100+i), n, Mixed)
				cov, err := g.MinimumPathCover()
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if err := g.Verify(cov.Paths); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestFallbackHook: the Hamiltonian wrappers must surface internal
// parallel errors through the hook instead of discarding them.
func TestFallbackHook(t *testing.T) {
	var gotOp string
	var gotErr error
	SetFallbackHook(func(op string, err error) { gotOp, gotErr = op, err })
	defer SetFallbackHook(nil)

	// A healthy run must not fire the hook.
	g := Random(5, 300, Mixed)
	g.HamiltonianPath(WithAlgorithm(Parallel))
	if gotOp != "" {
		t.Fatalf("hook fired on healthy run: op=%q err=%v", gotOp, gotErr)
	}
	// The hook plumbing itself.
	notifyFallback("HamiltonianPath", errors.New("boom"))
	if gotOp != "HamiltonianPath" || gotErr == nil {
		t.Fatalf("hook not invoked: op=%q err=%v", gotOp, gotErr)
	}
}
