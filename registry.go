package pathcover

import (
	"container/list"
	"fmt"
	"sync"
)

// Registry is the session layer of the serving stack: a bounded store
// of parsed, validated graphs under short string ids, so a client
// registers a graph once (paying parse → validate → recognize →
// canonicalize a single time) and then queries it by id as often as it
// likes. cmd/pathcoverd exposes it as POST /graphs → id, GET/POST
// /cover?id=..., DELETE /graphs/{id}.
//
// The store is LRU-bounded: registering past the capacity evicts the
// least recently used graph (every Get refreshes recency). Evicted or
// deleted ids simply miss — clients re-register, exactly as with any
// session store. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	max     int
	seq     uint64
	entries map[string]*list.Element
	lru     *list.List // front = most recently used; values are *regItem

	evicted int64
	lookups int64
	misses  int64
}

type regItem struct {
	id string
	g  *Graph
}

// DefaultMaxGraphs is the registry capacity when NewRegistry is given
// a non-positive bound.
const DefaultMaxGraphs = 1024

// NewRegistry returns a registry holding at most maxGraphs graphs
// (DefaultMaxGraphs when maxGraphs <= 0).
func NewRegistry(maxGraphs int) *Registry {
	if maxGraphs <= 0 {
		maxGraphs = DefaultMaxGraphs
	}
	return &Registry{
		max:     maxGraphs,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Register stores g and returns its id ("g1", "g2", ...). Ids are
// never reused, so a stale id after eviction can only miss — it cannot
// silently resolve to someone else's graph. Cographs are canonicalized
// eagerly, so the registration pays the whole per-graph cost up front
// and queries by id start cache-keyed.
func (r *Registry) Register(g *Graph) string {
	g.canonical() // nil for raw graphs; memoized for cographs
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	id := fmt.Sprintf("g%d", r.seq)
	r.entries[id] = r.lru.PushFront(&regItem{id: id, g: g})
	for r.lru.Len() > r.max {
		tail := r.lru.Back()
		delete(r.entries, tail.Value.(*regItem).id)
		r.lru.Remove(tail)
		r.evicted++
	}
	return id
}

// Get returns the graph registered under id, refreshing its recency.
func (r *Registry) Get(id string) (*Graph, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookups++
	el, ok := r.entries[id]
	if !ok {
		r.misses++
		return nil, false
	}
	r.lru.MoveToFront(el)
	return el.Value.(*regItem).g, true
}

// Delete removes id, reporting whether it was present.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.entries[id]
	if !ok {
		return false
	}
	delete(r.entries, id)
	r.lru.Remove(el)
	return true
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// RegistryStats is a snapshot of the registry's counters.
type RegistryStats struct {
	Resident   int   `json:"resident"`
	Capacity   int   `json:"capacity"`
	Registered int64 `json:"registered"`
	Evicted    int64 `json:"evicted"`
	Lookups    int64 `json:"lookups"`
	Misses     int64 `json:"misses"`
}

// Stats snapshots the registry's counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RegistryStats{
		Resident:   r.lru.Len(),
		Capacity:   r.max,
		Registered: int64(r.seq),
		Evicted:    r.evicted,
		Lookups:    r.lookups,
		Misses:     r.misses,
	}
}
