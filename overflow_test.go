package pathcover

import (
	"errors"
	"testing"
)

// The overflow guard: sizes no representation can hold are rejected with
// a typed error (FromEdges) or a typed panic (the generators), never
// silently truncated in the 32-bit index paths.

func TestFromEdgesSizeGuard(t *testing.T) {
	over := MaxVertices // runtime increment: wraps (negative) on 32-bit hosts,
	over++              // exceeds MaxVertices on 64-bit ones; invalid either way
	for _, n := range []int{-1, over} {
		_, err := FromEdges(n, nil, nil)
		var se *SizeError
		if !errors.As(err, &se) {
			t.Fatalf("FromEdges(%d) error = %v, want *SizeError", n, err)
		}
		if se.N != n || se.Max != MaxVertices {
			t.Fatalf("FromEdges(%d) SizeError = %+v", n, se)
		}
	}
	if _, err := FromEdges(3, [][2]int{{0, 1}}, nil); err != nil {
		t.Fatalf("FromEdges(3) unexpectedly failed: %v", err)
	}
}

func TestGeneratorSizeGuard(t *testing.T) {
	defer func() {
		r := recover()
		se, ok := r.(*SizeError)
		if !ok {
			t.Fatalf("Empty(-3) panicked with %v, want *SizeError", r)
		}
		if se.N != -3 {
			t.Fatalf("Empty(-3) SizeError = %+v", se)
		}
	}()
	Empty(-3)
}
