package pathcover

import (
	"errors"
	"testing"

	"pathcover/internal/core"
	"pathcover/internal/workload"
)

// The overflow guard: sizes no representation can hold are rejected with
// a typed error (FromEdges) or a typed panic (the generators), never
// silently truncated in the narrow index paths.

func TestFromEdgesSizeGuard(t *testing.T) {
	over := MaxVertices // runtime increment: wraps (negative) on 32-bit hosts,
	over++              // exceeds MaxVertices on 64-bit ones; invalid either way
	for _, n := range []int{-1, over} {
		_, err := FromEdges(n, nil, nil)
		var se *SizeError
		if !errors.As(err, &se) {
			t.Fatalf("FromEdges(%d) error = %v, want *SizeError", n, err)
		}
		if se.N != n || se.Max != MaxVertices {
			t.Fatalf("FromEdges(%d) SizeError = %+v", n, se)
		}
	}
	if _, err := FromEdges(3, [][2]int{{0, 1}}, nil); err != nil {
		t.Fatalf("FromEdges(3) unexpectedly failed: %v", err)
	}
}

// TestIndexWidthForceReject drives the public width options through a
// Solver: every forced width an input fits must produce the cover the
// default produces, and a forced narrow width the input does not fit
// must surface the typed *WidthError (public alias of core's) rather
// than truncate. RouteWidth must agree with the dispatch.
func TestIndexWidthForceReject(t *testing.T) {
	g := Random(77, 600, workload.Mixed)
	ref, err := g.MinimumPathCover()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []IndexWidth{Width16, Width32, Width64, WidthAuto} {
		cov, err := g.MinimumPathCover(WithIndexWidth(w))
		if err != nil {
			t.Fatalf("width %v: %v", w, err)
		}
		if cov.NumPaths != ref.NumPaths {
			t.Fatalf("width %v: %d paths, want %d", w, cov.NumPaths, ref.NumPaths)
		}
	}

	big := Random(78, core.MaxInt16Vertices+1, workload.Mixed)
	var we *WidthError
	if _, err := big.MinimumPathCover(WithIndexWidth(Width16)); !errors.As(err, &we) {
		t.Fatalf("forced Width16 past the bound: err = %v, want *WidthError", err)
	} else if we.N != core.MaxInt16Vertices+1 || we.Max != core.MaxInt16Vertices {
		t.Fatalf("WidthError = %+v", we)
	}
	if _, err := big.MinimumPathCover(WithIndexWidth(Width32)); err != nil {
		t.Fatalf("forced Width32 on an int32-sized input: %v", err)
	}

	if got := RouteWidth(core.MaxInt16Vertices); got != "int16" {
		t.Fatalf("RouteWidth(int16 bound) = %q", got)
	}
	if got := RouteWidth(core.MaxInt16Vertices + 1); got != "int32" {
		t.Fatalf("RouteWidth(past int16 bound) = %q", got)
	}
	if got := RouteWidth(core.MaxNarrowVertices + 1); got != "int" {
		t.Fatalf("RouteWidth(past int32 bound) = %q", got)
	}
}

func TestGeneratorSizeGuard(t *testing.T) {
	defer func() {
		r := recover()
		se, ok := r.(*SizeError)
		if !ok {
			t.Fatalf("Empty(-3) panicked with %v, want *SizeError", r)
		}
		if se.N != -3 {
			t.Fatalf("Empty(-3) SizeError = %+v", se)
		}
	}()
	Empty(-3)
}
