package pathcover_test

// The fault-injection suite: deliberate panics, stalls and deadline
// expiry inside the solve pipeline, asserting the graceful-degradation
// contract — a poisoned request fails alone (its shard's Solver is
// rebuilt, the pool keeps serving), deadlines cut solves off between
// steps within a bounded delay, and no admission ticket or shard slot
// leaks on any failure path.
//
// Every test pins its injector explicitly (WithFaultInjector overrides
// the PATCHCOVER_FAULT environment) except the Env tests, which are the
// CI fault-matrix entry points and inherit ambient faults on purpose.
// All test names carry the TestFault prefix so the matrix job can run
// exactly this suite: go test -race -run 'TestFault' .

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathcover"
)

// noFault disables both explicit and environment-driven injection.
var noFault = pathcover.WithFaultInjector(nil)

func faultGraph(tb testing.TB, seed uint64, n int) *pathcover.Graph {
	tb.Helper()
	return pathcover.Random(seed, n, pathcover.Mixed)
}

func panicAt(step string) pathcover.FaultInjector {
	return func(s string) {
		if s == step {
			panic("injected: " + s)
		}
	}
}

func TestFaultPanicIsolation(t *testing.T) {
	p := pathcover.NewPool(pathcover.WithShards(2))
	defer p.Close()
	g := faultGraph(t, 3, 512)

	// A healthy call first, so the shard has warm state to poison.
	base, err := p.MinimumPathCover(context.Background(), g, noFault)
	if err != nil {
		t.Fatal(err)
	}

	// Stats readers must stay safe while shards are being rebuilt.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = p.Stats()
			}
		}
	}()

	for _, step := range []string{"step1", "step4", "step8"} {
		_, err := p.MinimumPathCover(context.Background(), g,
			pathcover.WithFaultInjector(panicAt(step)))
		if !errors.Is(err, pathcover.ErrSolverPanic) {
			t.Fatalf("%s: err = %v, want ErrSolverPanic", step, err)
		}
		var pe *pathcover.PanicError
		if !errors.As(err, &pe) || !strings.Contains(pe.Error(), step) {
			t.Fatalf("%s: error %v does not carry the panic value", step, err)
		}
	}
	close(stop)
	wg.Wait()

	// The pool keeps serving: same graph, same answer, on a rebuilt shard.
	after, err := p.MinimumPathCover(context.Background(), g, noFault)
	if err != nil {
		t.Fatalf("post-panic cover: %v", err)
	}
	if after.NumPaths != base.NumPaths {
		t.Fatalf("post-panic cover: %d paths, want %d", after.NumPaths, base.NumPaths)
	}
	if err := g.Verify(after.Paths); err != nil {
		t.Fatal(err)
	}

	st := p.Stats()
	if st.Restarts != 3 {
		t.Fatalf("Restarts = %d, want 3", st.Restarts)
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after quiesce, want 0", st.InFlight)
	}
	// Panicked calls are not recorded as served.
	if st.Calls != 2 {
		t.Fatalf("Calls = %d, want 2 (panics must not count)", st.Calls)
	}
}

func TestFaultDeadlineMidSolve(t *testing.T) {
	p := pathcover.NewPool(pathcover.WithShards(1))
	defer p.Close()
	g := faultGraph(t, 7, 1024)

	// A stall far longer than the deadline: the step5 checkpoint passes
	// (deadline not yet expired), the injected sleep burns through it,
	// and the step6 checkpoint must then abort promptly — well before
	// the pipeline would finish a stalled-step-per-step run.
	stall := 300 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.MinimumPathCover(ctx, g, pathcover.WithFaultInjector(func(s string) {
		if s == "step5" {
			time.Sleep(stall)
		}
	}))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > stall+700*time.Millisecond {
		t.Fatalf("deadline enforced after %v; the solve loop is not checking ctx between steps", elapsed)
	}

	// The stalled request must not have wedged the shard.
	if _, err := p.MinimumPathCover(context.Background(), g, noFault); err != nil {
		t.Fatalf("post-deadline cover: %v", err)
	}
}

func TestFaultCancelledContextBounded(t *testing.T) {
	p := pathcover.NewPool(pathcover.WithShards(1))
	defer p.Close()
	g := faultGraph(t, 9, 2048)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		// Every step stalls a little, so without between-step checks the
		// run would take >= 8 * 50ms after cancellation.
		_, err := p.MinimumPathCover(ctx, g, pathcover.WithFaultInjector(func(string) {
			time.Sleep(50 * time.Millisecond)
		}))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled solve did not return within 5s")
	}
}

func TestFaultBatchAllOrNothing(t *testing.T) {
	p := pathcover.NewPool(pathcover.WithShards(2))
	defer p.Close()
	gs := make([]*pathcover.Graph, 6)
	for i := range gs {
		gs[i] = faultGraph(t, uint64(20+i), 256+64*i)
	}

	// The injector poisons exactly one solve (whichever segment reaches
	// step3 first); the whole batch must fail and discard partials.
	var once sync.Once
	inj := func(s string) {
		if s == "step3" {
			boom := false
			once.Do(func() { boom = true })
			if boom {
				panic("injected: batch")
			}
		}
	}
	covs, err := p.CoverBatch(context.Background(), gs, pathcover.WithFaultInjector(inj))
	if !errors.Is(err, pathcover.ErrSolverPanic) {
		t.Fatalf("batch err = %v, want ErrSolverPanic", err)
	}
	if covs != nil {
		t.Fatalf("failed batch returned partial covers: %v", covs)
	}
	if r := p.Stats().Restarts; r != 1 {
		t.Fatalf("Restarts = %d, want 1", r)
	}

	// The identical batch succeeds afterwards, end to end.
	covs, err = p.CoverBatch(context.Background(), gs, noFault)
	if err != nil {
		t.Fatalf("post-panic batch: %v", err)
	}
	for i, cov := range covs {
		if err := gs[i].Verify(cov.Paths); err != nil {
			t.Fatalf("post-panic batch cover %d: %v", i, err)
		}
	}
	if got := p.Stats().InFlight; got != 0 {
		t.Fatalf("InFlight = %d after quiesce, want 0", got)
	}
}

// TestFaultSlotLeakSaturateRecover is the regression test for the
// shard-slot/admission-ticket leak class: drive the pool to its exact
// admission bound, poison requests along the way, and prove the pool
// still admits (and completes) a full load afterwards. A leaked slot
// wedges the single shard forever; a leaked ticket shrinks the
// admission budget until everything is ErrPoolSaturated.
func TestFaultSlotLeakSaturateRecover(t *testing.T) {
	const depth = 4
	p := pathcover.NewPool(pathcover.WithShards(1), pathcover.WithQueueDepth(depth))
	defer p.Close()
	g := faultGraph(t, 11, 512)

	for round := 0; round < 3; round++ {
		// Saturate: depth concurrent calls, half of them panicking.
		var wg sync.WaitGroup
		errs := make([]error, depth)
		for i := 0; i < depth; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				opt := noFault
				if i%2 == 0 {
					opt = pathcover.WithFaultInjector(panicAt("step2"))
				}
				_, errs[i] = p.MinimumPathCover(context.Background(), g, opt)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if i%2 == 0 {
				if !errors.Is(err, pathcover.ErrSolverPanic) {
					t.Fatalf("round %d call %d: err = %v, want ErrSolverPanic", round, i, err)
				}
			} else if err != nil {
				t.Fatalf("round %d call %d: %v", round, i, err)
			}
		}
	}

	// Full budget must still be available: depth concurrent healthy
	// calls all admit and succeed within a bounded wait.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.MinimumPathCover(ctx, g, noFault); err != nil {
				t.Errorf("post-recovery call: %v", err)
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after quiesce, want 0 (ticket leak)", st.InFlight)
	}
	if st.Restarts != 6 {
		t.Fatalf("Restarts = %d, want 6", st.Restarts)
	}
}

// TestFaultStatsSnapshotConsistency is the regression test for the
// Stats race window on shard rebuilds: the serving record used to be
// four independent atomics bumped one by one (and restartShard ticked
// Restarts after swapping the Solver), so a concurrent Stats could
// observe torn rows — a call's Calls without its Vertices, a rebuilt
// shard without its restart. Rows now commit and snapshot under the
// shard's stats lock. Every request here is the same n-vertex graph,
// so any consistent row must satisfy Vertices == Calls*n exactly; the
// reader hammers Stats during panic-driven rebuilds and fails on the
// first torn row, non-monotonic total, or (under -race) racy access.
func TestFaultStatsSnapshotConsistency(t *testing.T) {
	const n = 256
	p := pathcover.NewPool(pathcover.WithShards(2))
	defer p.Close()
	g := faultGraph(t, 13, n)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		var lastCalls, lastRestarts int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := p.Stats()
			for _, row := range st.Shards {
				if row.Vertices != row.Calls*int64(n) {
					t.Errorf("torn shard row: Calls=%d Vertices=%d, want %d",
						row.Calls, row.Vertices, row.Calls*int64(n))
					return
				}
				if row.Calls > 0 && row.SimTime <= 0 {
					t.Errorf("torn shard row: Calls=%d with SimTime=%d", row.Calls, row.SimTime)
					return
				}
			}
			if st.Calls < lastCalls || st.Restarts < lastRestarts {
				t.Errorf("totals went backwards: Calls %d->%d, Restarts %d->%d",
					lastCalls, st.Calls, lastRestarts, st.Restarts)
				return
			}
			lastCalls, lastRestarts = st.Calls, st.Restarts
		}
	}()

	var panics atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				opt := noFault
				if (w+i)%3 == 0 {
					opt = pathcover.WithFaultInjector(panicAt("step2"))
				}
				_, err := p.MinimumPathCover(context.Background(), g, opt)
				switch {
				case err == nil:
				case errors.Is(err, pathcover.ErrSolverPanic):
					panics.Add(1)
				default:
					t.Errorf("worker %d call %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	st := p.Stats()
	if st.Restarts != panics.Load() {
		t.Fatalf("Restarts = %d, want %d (one per PanicError)", st.Restarts, panics.Load())
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after quiesce, want 0", st.InFlight)
	}
}

// TestFaultEnvDriven exercises the PATCHCOVER_FAULT environment path:
// with no ambient spec it installs its own; under the CI fault matrix
// it inherits the ambient one. Either way the pool must absorb the
// faults — every request ends in a valid verified cover or a
// PanicError, and the pool serves a clean request (explicit nil
// injector) at the end.
func TestFaultEnvDriven(t *testing.T) {
	if os.Getenv("PATHCOVER_FAULT") == "" {
		t.Setenv("PATHCOVER_FAULT", "panic:step6,slow:step2:5ms")
	}
	spec := os.Getenv("PATHCOVER_FAULT")
	p := pathcover.NewPool(pathcover.WithShards(2))
	defer p.Close()

	panics := 0
	for i := 0; i < 6; i++ {
		g := faultGraph(t, uint64(40+i), 256+128*i)
		cov, err := p.MinimumPathCover(context.Background(), g)
		switch {
		case err == nil:
			if verr := g.Verify(cov.Paths); verr != nil {
				t.Fatalf("request %d (spec %q): %v", i, spec, verr)
			}
		case errors.Is(err, pathcover.ErrSolverPanic):
			panics++
		default:
			t.Fatalf("request %d (spec %q): unexpected error %v", i, spec, err)
		}
	}
	if strings.Contains(spec, "panic:") && panics == 0 {
		t.Fatalf("spec %q injected no panics over 6 requests", spec)
	}
	if panics != int(p.Stats().Restarts) {
		t.Fatalf("saw %d panics but %d restarts", panics, p.Stats().Restarts)
	}

	// Explicitly disabling injection overrides the environment.
	g := faultGraph(t, 99, 512)
	cov, err := p.MinimumPathCover(context.Background(), g, noFault)
	if err != nil {
		t.Fatalf("nil-injector call under spec %q: %v", spec, err)
	}
	if err := g.Verify(cov.Paths); err != nil {
		t.Fatal(err)
	}
}

// TestFaultEnvMalformed: a typo'd spec must be loud (the parse panics,
// surfacing through the pool as a PanicError), not silently ignored.
func TestFaultEnvMalformed(t *testing.T) {
	t.Setenv("PATHCOVER_FAULT", "panic-step2")
	p := pathcover.NewPool(pathcover.WithShards(1))
	defer p.Close()
	_, err := p.MinimumPathCover(context.Background(), faultGraph(t, 1, 64))
	if !errors.Is(err, pathcover.ErrSolverPanic) {
		t.Fatalf("malformed spec: err = %v, want ErrSolverPanic", err)
	}
	if !strings.Contains(err.Error(), "PATHCOVER_FAULT") {
		t.Fatalf("malformed-spec error %q does not name the variable", err)
	}
}

// TestFaultInjectorStepsSeen documents the step vocabulary: a cograph
// solve visits step1..step8, degraded solves step1..step3.
func TestFaultInjectorStepsSeen(t *testing.T) {
	seen := func(g *pathcover.Graph) map[string]bool {
		m := map[string]bool{}
		var mu sync.Mutex
		_, err := g.MinimumPathCover(pathcover.WithFaultInjector(func(s string) {
			mu.Lock()
			m[s] = true
			mu.Unlock()
		}))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cg := seen(faultGraph(t, 5, 256))
	for i := 1; i <= 8; i++ {
		if !cg[fmt.Sprintf("step%d", i)] {
			t.Fatalf("cograph solve skipped step%d (saw %v)", i, cg)
		}
	}
	tree, err := pathcover.FromEdgesAny(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tg := seen(tree)
	for i := 1; i <= 3; i++ {
		if !tg[fmt.Sprintf("step%d", i)] {
			t.Fatalf("tree solve skipped step%d (saw %v)", i, tg)
		}
	}
}
