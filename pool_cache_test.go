package pathcover

import (
	"context"
	"sync"
	"testing"
)

// cachedPool builds a small pool with the canonical-identity cache on.
func cachedPool(t *testing.T, opts ...PoolOption) *Pool {
	t.Helper()
	p := NewPool(append([]PoolOption{
		WithShards(2), WithQueueDepth(-1), WithCache(1 << 20),
		WithShardOptions(WithSeed(1)),
	}, opts...)...)
	t.Cleanup(p.Close)
	return p
}

// TestPoolCacheIsomorphicHit: a relabelled presentation of an
// already-solved graph is served from the cache — remapped onto the
// requester's own numbering, verified against the requester's graph.
func TestPoolCacheIsomorphicHit(t *testing.T) {
	p := cachedPool(t)
	base := Random(11, 300, Mixed)
	twin := Relabelled(base, 5)

	first, err := p.MinimumPathCover(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Verify(first.Paths); err != nil {
		t.Fatalf("miss cover invalid: %v", err)
	}
	second, err := p.MinimumPathCover(context.Background(), twin)
	if err != nil {
		t.Fatal(err)
	}
	if err := twin.Verify(second.Paths); err != nil {
		t.Fatalf("hit cover does not verify against the twin's numbering: %v", err)
	}
	if second.NumPaths != first.NumPaths || second.Exact != first.Exact {
		t.Fatalf("hit cover (%d paths, exact=%v) != miss cover (%d, %v)",
			second.NumPaths, second.Exact, first.NumPaths, first.Exact)
	}
	if second.Stats != (Stats{}) {
		t.Fatalf("cache hit charged simulated cost: %+v", second.Stats)
	}
	st := p.Stats().Cache
	if st == nil || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", st)
	}

	// Same graph object again: hit, same answer.
	third, err := p.MinimumPathCover(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if third.NumPaths != first.NumPaths {
		t.Fatalf("repeat hit changed the answer: %d vs %d", third.NumPaths, first.NumPaths)
	}
	if st := p.Stats().Cache; st.Hits != 2 {
		t.Fatalf("cache stats after repeat = %+v", st)
	}
}

// TestPoolCacheMissBitIdentical is the standing invariant: a cache
// miss runs the untouched pipeline, so its simulated simtime/simwork
// counters are bit-identical to an uncached pool's solve of the same
// graph under the same options.
func TestPoolCacheMissBitIdentical(t *testing.T) {
	mk := func(cached bool) *Pool {
		opts := []PoolOption{WithShards(1), WithQueueDepth(-1), WithShardOptions(WithSeed(1))}
		if cached {
			opts = append(opts, WithCache(1<<20))
		}
		p := NewPool(opts...)
		t.Cleanup(p.Close)
		return p
	}
	plain, withCache := mk(false), mk(true)
	seen := map[[2]uint64]bool{} // tiny graphs coincide across shapes; only first sight is a miss
	for _, n := range []int{1, 2, 17, 500, 4096} {
		for shape := Shape(0); shape < 3; shape++ {
			g := Random(uint64(n), n, shape)
			hi, lo, _ := g.CanonicalHash()
			if seen[[2]uint64{hi, lo}] {
				continue
			}
			seen[[2]uint64{hi, lo}] = true
			want, err := plain.MinimumPathCover(context.Background(), g)
			if err != nil {
				t.Fatal(err)
			}
			got, err := withCache.MinimumPathCover(context.Background(), g)
			if err != nil {
				t.Fatal(err)
			}
			if got.Stats != want.Stats {
				t.Fatalf("n=%d shape=%d: miss stats %+v != uncached %+v", n, shape, got.Stats, want.Stats)
			}
			if got.NumPaths != want.NumPaths {
				t.Fatalf("n=%d shape=%d: %d paths != %d", n, shape, got.NumPaths, want.NumPaths)
			}
		}
	}
	if st := withCache.Stats().Cache; st.Hits != 0 || st.Misses == 0 {
		t.Fatalf("expected all misses, got %+v", st)
	}
}

// TestPoolCacheKeyedOnOptions: per-call options that change the answer
// or its counters (seed, procs, algorithm) key separate entries.
func TestPoolCacheKeyedOnOptions(t *testing.T) {
	p := cachedPool(t)
	g := Random(3, 400, Balanced)
	if _, err := p.MinimumPathCover(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if _, err := p.MinimumPathCover(context.Background(), g, WithSeed(99)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.MinimumPathCover(context.Background(), g, WithProcessors(3)); err != nil {
		t.Fatal(err)
	}
	st := p.Stats().Cache
	if st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("option-distinct calls should all miss: %+v", st)
	}
	// And the width knob must NOT split the key: identical results.
	if _, err := p.MinimumPathCover(context.Background(), g, WithWideIndices()); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats().Cache; st.Hits != 1 {
		t.Fatalf("wide-index call should hit the narrow entry: %+v", st)
	}
}

// TestPoolCacheSkipsRawGraphs: FromEdgesAny graphs have no canonical
// form; they must flow through the pipeline without touching the cache.
func TestPoolCacheSkipsRawGraphs(t *testing.T) {
	p := cachedPool(t)
	g, err := FromEdgesAny(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		cov, err := p.MinimumPathCover(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Verify(cov.Paths); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats().Cache
	if st.Hits+st.Misses+st.Coalesced != 0 {
		t.Fatalf("raw graph touched the cache: %+v", st)
	}
}

// TestPoolCacheBatchDedup: a batch full of duplicates and relabelled
// twins of a few base graphs is answered with at most one solve per
// canonical graph; every cover verifies against its own presentation.
func TestPoolCacheBatchDedup(t *testing.T) {
	p := cachedPool(t)
	bases := []*Graph{Random(1, 120, Mixed), Random(2, 250, Caterpillar)}
	var gs []*Graph
	for i := 0; i < 12; i++ {
		b := bases[i%len(bases)]
		if i%3 == 0 {
			gs = append(gs, b)
		} else {
			gs = append(gs, Relabelled(b, uint64(i)))
		}
	}
	covs, err := p.CoverBatch(context.Background(), gs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cov := range covs {
		if err := gs[i].Verify(cov.Paths); err != nil {
			t.Fatalf("batch cover %d: %v", i, err)
		}
		if cov.NumPaths != covs[i%len(bases)].NumPaths {
			t.Fatalf("batch cover %d: %d paths, twin of cover %d with %d",
				i, cov.NumPaths, i%len(bases), covs[i%len(bases)].NumPaths)
		}
	}
	st := p.Stats().Cache
	if st.Hits+st.Misses+st.Coalesced != int64(len(gs)) {
		t.Fatalf("batch outcomes do not sum to batch size: %+v", st)
	}
	// Batch items race pairwise (TryDo never waits), so allow a few
	// redundant solves — but nowhere near one per item.
	if st.Misses >= int64(len(gs)) {
		t.Fatalf("no dedup happened: %+v", st)
	}
}

// TestPoolCacheConcurrentTwins hammers one canonical graph through
// many presentations from many goroutines; the -race build checks the
// singleflight plumbing and every cover must verify.
func TestPoolCacheConcurrentTwins(t *testing.T) {
	p := cachedPool(t)
	base := Random(77, 600, Mixed)
	want, err := p.MinimumPathCover(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				g := base
				if i%2 == 1 {
					g = Relabelled(base, uint64(w*100+i))
				}
				cov, err := p.MinimumPathCover(context.Background(), g)
				if err != nil {
					panic(err)
				}
				if cov.NumPaths != want.NumPaths {
					panic("twin answer diverged")
				}
				if err := g.Verify(cov.Paths); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats().Cache
	if st.Hits == 0 {
		t.Fatalf("no hits across 80 requests for one graph: %+v", st)
	}
}

// TestCanonicalHash: relabelling-invariant for cographs, absent for
// raw graphs, distinct across distinct graphs.
func TestCanonicalHash(t *testing.T) {
	g := Random(5, 64, Mixed)
	hi1, lo1, ok := g.CanonicalHash()
	if !ok {
		t.Fatal("cograph has no canonical hash")
	}
	hi2, lo2, ok := Relabelled(g, 123).CanonicalHash()
	if !ok || hi1 != hi2 || lo1 != lo2 {
		t.Fatalf("relabelled hash (%x,%x) != (%x,%x)", hi2, lo2, hi1, lo1)
	}
	hi3, lo3, _ := Random(6, 64, Mixed).CanonicalHash()
	if hi1 == hi3 && lo1 == lo3 {
		t.Fatal("distinct graphs share a canonical hash")
	}
	raw, err := FromEdgesAny(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := raw.CanonicalHash(); ok {
		t.Fatal("raw graph reported a canonical hash")
	}
}

// TestUncachedPoolHasNilCacheStats: the cache is strictly opt-in.
func TestUncachedPoolHasNilCacheStats(t *testing.T) {
	p := NewPool(WithShards(1))
	defer p.Close()
	if st := p.Stats().Cache; st != nil {
		t.Fatalf("uncached pool reports cache stats: %+v", st)
	}
}
