// Command pathcover-gateway fronts a fleet of pathcoverd nodes with
// the internal/cluster serving tier: consistent-hash routing on
// canonical graph identity, health-checked membership with ejection
// and probation, backoff retries honoring Retry-After, p99-tracked
// request hedging, and order-preserving /batch fan-out.
//
//	pathcover-gateway -addr :8090 -nodes http://10.0.0.1:8080,http://10.0.0.2:8080
//
// Single-binary cluster mode forks N local daemons on ephemeral ports
// (each an internal/daemon server, the same code pathcoverd runs) and
// supervises them — a killed child respawns on its port, so the
// gateway's probation path readmits it:
//
//	pathcover-gateway -addr :8090 -spawn 3
//
// The gateway speaks the same HTTP surface as a node (/cover, /batch,
// /hamiltonian, /graphs, /healthz, /stats), so clients and pcbench
// -attack point at it unchanged. Registered-graph ids come back
// node-prefixed ("n2.g5"); ?id= requests pin to that node.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pathcover/internal/cluster"
	"pathcover/internal/daemon"
)

var (
	addr    = flag.String("addr", ":8090", "gateway listen address")
	opsAddr = flag.String("ops", "", "operational listen address serving /metrics and /debug/pprof (empty disables; /metrics is always also on the serving port)")
	nodes   = flag.String("nodes", "", "comma-separated node base URLs to front (mutually exclusive with -spawn)")
	spawnN  = flag.Int("spawn", 0, "fork this many local daemons on ephemeral ports and front them (single-binary cluster)")

	vnodes      = flag.Int("vnodes", 128, "virtual nodes per ring member")
	attempts    = flag.Int("attempts", 0, "attempt cap per request chain, first try included (0 = max(4, nodes))")
	baseBackoff = flag.Duration("backoff", 25*time.Millisecond, "base retry backoff (exponential, jittered)")
	maxBackoff  = flag.Duration("max-backoff", time.Second, "retry backoff cap")
	hedgeAfter  = flag.Duration("hedge-ms", 0, "fixed hedging threshold (0 = adaptive: tracked p99 of successful requests)")
	hedgeFloor  = flag.Duration("hedge-floor", 5*time.Millisecond, "minimum adaptive hedging threshold")
	failThresh  = flag.Int("fail-threshold", 3, "consecutive health failures before ejecting a node")
	probOKs     = flag.Int("probation-oks", 2, "consecutive probe successes readmitting an ejected node (on probation)")
	healthyOKs  = flag.Int("healthy-oks", 3, "consecutive successes graduating probation to healthy")
	probeEvery  = flag.Duration("probe-interval", 250*time.Millisecond, "active /healthz probe interval")
	probeTmout  = flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
	maxBody     = flag.Int64("max-body", 64<<20, "request body size limit in bytes")

	// Spawned-node knobs (forwarded to each child daemon).
	nodeShards  = flag.Int("node-shards", 0, "solver shards per spawned node (0 = GOMAXPROCS/2)")
	nodeQueue   = flag.Int("node-queue", 0, "admission queue depth per spawned node (0 = 8 per shard)")
	nodeCacheMB = flag.Int64("node-cache-mb", 64, "result cache MiB per spawned node (0 disables)")
	nodeVerify  = flag.Bool("node-verify", false, "spawned nodes re-verify every cover before responding")
	nodeTimeout = flag.Duration("node-request-timeout", 30*time.Second, "per-request deadline inside each spawned node")

	// Child mode (internal: what -spawn forks).
	nodeMode = flag.Bool("node", false, "run as a spawned local daemon (internal; used by -spawn)")
	nodeAddr = flag.String("node-addr", "127.0.0.1:0", "listen address in -node mode (\":0\" picks an ephemeral port)")
)

func main() {
	flag.Parse()
	if *nodeMode {
		runNode()
		return
	}

	var urls []string
	var sup *cluster.Supervisor
	switch {
	case *spawnN > 0 && *nodes != "":
		log.Fatal("pathcover-gateway: -spawn and -nodes are mutually exclusive")
	case *spawnN > 0:
		exe, err := os.Executable()
		if err != nil {
			log.Fatalf("pathcover-gateway: %v", err)
		}
		sup = cluster.NewSupervisor(exe, func(bind string) []string {
			return []string{
				"-node", "-node-addr", bind,
				"-node-shards", fmt.Sprint(*nodeShards),
				"-node-queue", fmt.Sprint(*nodeQueue),
				"-node-cache-mb", fmt.Sprint(*nodeCacheMB),
				"-node-verify=" + fmt.Sprint(*nodeVerify),
				"-node-request-timeout", nodeTimeout.String(),
				"-max-body", fmt.Sprint(*maxBody),
			}
		})
		var err2 error
		urls, err2 = sup.StartN(*spawnN)
		if err2 != nil {
			log.Fatalf("pathcover-gateway: %v", err2)
		}
		defer sup.Close()
	case *nodes != "":
		for _, u := range strings.Split(*nodes, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
	default:
		log.Fatal("pathcover-gateway: give -nodes or -spawn")
	}
	if len(urls) == 0 {
		log.Fatal("pathcover-gateway: no nodes")
	}

	opts := cluster.Options{
		VNodes:        *vnodes,
		MaxAttempts:   *attempts,
		BaseBackoff:   *baseBackoff,
		MaxBackoff:    *maxBackoff,
		HedgeAfter:    *hedgeAfter,
		HedgeFloor:    *hedgeFloor,
		FailThreshold: *failThresh,
		ProbationOKs:  *probOKs,
		HealthyOKs:    *healthyOKs,
		ProbeInterval: *probeEvery,
		ProbeTimeout:  *probeTmout,
		MaxBody:       *maxBody,
	}
	if sup != nil {
		opts.Children = sup.Children
	}
	gw := cluster.New(urls, opts)
	gw.Start()
	defer gw.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if *opsAddr != "" {
		ops := &http.Server{
			Addr:              *opsAddr,
			Handler:           gw.OpsHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := ops.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("pathcover-gateway: ops: %v", err)
			}
		}()
		log.Printf("pathcover-gateway: ops on %s (/metrics, /debug/pprof)", *opsAddr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("pathcover-gateway: serving on %s, fronting %d node(s): %s",
		*addr, len(urls), strings.Join(urls, ", "))
	select {
	case err := <-errc:
		log.Fatalf("pathcover-gateway: %v", err)
	case <-ctx.Done():
	}
	log.Printf("pathcover-gateway: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("pathcover-gateway: shutdown: %v", err)
	}
}

// runNode is the forked child: one internal/daemon server on -node-addr,
// announcing its concrete address on stdout for the supervisor.
func runNode() {
	s := daemon.New(daemon.Config{
		Shards:         *nodeShards,
		Queue:          *nodeQueue,
		MaxBody:        *maxBody,
		Verify:         *nodeVerify,
		RequestTimeout: *nodeTimeout,
		CacheMB:        *nodeCacheMB,
	})
	ln, err := net.Listen("tcp", *nodeAddr)
	if err != nil {
		log.Fatalf("pathcover-gateway node: %v", err)
	}
	cluster.AnnounceReady(ln.Addr().String())
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("pathcover-gateway node: serving on %s (%d shards)", ln.Addr(), s.Pool().NumShards())
	select {
	case err := <-errc:
		log.Fatalf("pathcover-gateway node: %v", err)
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)
	s.Close()
}
