package main

// A4 — the saturation ramp. Unlike A1–A3, which drive the -attack
// target, the ramp boots its own in-process daemon with the adaptive
// controller and cost shedding enabled, because the scenario is about
// the control plane: offered load doubles stage by stage and the table
// shows the daemon shedding (degrading covers to the approximation
// backend, rejecting with 503 + Retry-After) instead of collapsing,
// while the live shard count — scraped from its own /metrics — grows
// toward the ceiling. Columns are wall-clock and admission counts, so
// -compare never gates them (only simtime/simwork columns gate).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pathcover"
	"pathcover/internal/daemon"
	"pathcover/internal/metrics"
)

// rampStage is one load level of the ramp: a client count held for a
// fixed window, classified into admitted-exact / degraded / shed.
type rampStage struct {
	clients  int
	offered  int64
	ok       int64
	degraded int64
	shed     int64
	lat      []time.Duration // admitted (HTTP 200) request latencies
	shards   float64         // pathcoverd_shards after the stage
}

// runAttackRamp runs the A4 saturation ramp against a self-hosted
// adaptive daemon and panics unless the ramp demonstrates shedding
// (degrades or rejects) — and, when more than one shard is possible,
// shard growth.
func runAttackRamp() {
	maxShards := runtime.GOMAXPROCS(0)
	s := daemon.New(daemon.Config{
		Shards:        1,
		Queue:         -1, // unbounded: the QoS layer, not saturation, does the shedding
		CacheMB:       0,  // every request must solve, or there is no load to shed
		ShedAfter:     15 * time.Millisecond,
		Adapt:         true,
		AdaptMax:      maxShards,
		AdaptInterval: 50 * time.Millisecond,
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// The request mix: mid-sized cographs as cotree text (implicit edge
	// set, so over budget they can only be rejected) interleaved with
	// edge-list trees (explicit edge set, so over budget they degrade to
	// the approximation backend) — together they exercise both shedding
	// verdicts. Distinct seeds and no cache keep every request a real
	// solve.
	var bodies [][]byte
	for i := 0; i < 8; i++ {
		g := pathcover.Random(*seed+uint64(i), 1024+128*i, pathcover.Balanced)
		blob, err := json.Marshal(map[string]any{"cotree": g.String()})
		if err != nil {
			panic(err)
		}
		bodies = append(bodies, blob)
	}
	rng := rand.New(rand.NewPCG(*seed, 0xa4))
	for i := 0; i < 4; i++ {
		n := 4096 + 1024*i
		edges := make([][2]int, 0, n-1)
		for v := 1; v < n; v++ {
			edges = append(edges, [2]int{rng.IntN(v), v})
		}
		blob, err := json.Marshal(map[string]any{"n": n, "edges": edges})
		if err != nil {
			panic(err)
		}
		bodies = append(bodies, blob)
	}

	stages := []int{1, 2, 4, 8, 16, 32}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: stages[len(stages)-1]}}
	type rampResp struct {
		NumPaths int  `json:"num_paths"`
		Exact    bool `json:"exact"`
		Degraded bool `json:"degraded"`
	}
	post := func(i int) (status int, out rampResp, retryAfter string, err error) {
		resp, err := client.Post(srv.URL+"/cover", "application/json",
			bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			return 0, out, "", err
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, out, "", err
		}
		if resp.StatusCode == http.StatusOK {
			err = json.Unmarshal(payload, &out)
		}
		return resp.StatusCode, out, resp.Header.Get("Retry-After"), err
	}

	// Seed the cost estimator with unloaded solves so the first loaded
	// stage already has a per-vertex cost to project from.
	for i := 0; i < 2*len(bodies); i++ {
		if code, _, _, err := post(i); err != nil || code != http.StatusOK {
			panic(fmt.Sprintf("A4 warmup request %d: HTTP %d, %v", i, code, err))
		}
	}

	// shardsNow scrapes the daemon's own exposition — the same text an
	// operator's Prometheus would pull — so the table proves the gauge,
	// not just the internal state.
	shardsNow := func() float64 {
		resp, err := client.Get(srv.URL + "/metrics")
		if err != nil {
			panic(fmt.Sprintf("A4: scrape /metrics: %v", err))
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			panic(fmt.Sprintf("A4: scrape /metrics: %v", err))
		}
		exp, err := metrics.Parse(string(payload))
		if err != nil {
			panic(fmt.Sprintf("A4: /metrics does not parse: %v", err))
		}
		v, ok := exp.Value("pathcoverd_shards")
		if !ok {
			panic("A4: /metrics is missing pathcoverd_shards")
		}
		return v
	}

	const window = 600 * time.Millisecond
	results := make([]*rampStage, 0, len(stages))
	for _, c := range stages {
		st := &rampStage{clients: c}
		var mu sync.Mutex
		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < c; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; !stop.Load(); i++ {
					t0 := time.Now()
					code, out, retry, err := post(i)
					el := time.Since(t0)
					if err != nil {
						panic(fmt.Sprintf("A4 stage %d clients: %v", c, err))
					}
					atomic.AddInt64(&st.offered, 1)
					switch {
					case code == http.StatusOK && out.Degraded:
						if out.Exact {
							panic("A4: degraded cover claims exact")
						}
						atomic.AddInt64(&st.degraded, 1)
						mu.Lock()
						st.lat = append(st.lat, el)
						mu.Unlock()
					case code == http.StatusOK:
						atomic.AddInt64(&st.ok, 1)
						mu.Lock()
						st.lat = append(st.lat, el)
						mu.Unlock()
					case code == http.StatusServiceUnavailable:
						if retry == "" {
							panic("A4: 503 without a Retry-After header")
						}
						atomic.AddInt64(&st.shed, 1)
					default:
						panic(fmt.Sprintf("A4 stage %d clients: HTTP %d", c, code))
					}
				}
			}(w)
		}
		time.Sleep(window)
		stop.Store(true)
		wg.Wait()
		st.shards = shardsNow()
		results = append(results, st)
	}

	header(fmt.Sprintf("A4 — saturation ramp, self-hosted adaptive daemon (-adapt, ceiling %d shards, shed budget 15ms), %v per stage",
		maxShards, window),
		"clients", "offered", "ok", "degraded", "rejected", "p99 ms", "shards")
	var totDegraded, totShed int64
	peak := 0.0
	for _, st := range results {
		totDegraded += st.degraded
		totShed += st.shed
		if st.shards > peak {
			peak = st.shards
		}
		p99 := "-"
		if len(st.lat) > 0 {
			sort.Slice(st.lat, func(a, b int) bool { return st.lat[a] < st.lat[b] })
			p99 = ms(pctl(st.lat, 0.99))
		}
		row(fmt.Sprint(st.clients), fmt.Sprint(st.offered), fmt.Sprint(st.ok),
			fmt.Sprint(st.degraded), fmt.Sprint(st.shed), p99, fmt.Sprintf("%.0f", st.shards))
	}

	// Shed-not-collapse: the ramp must have exercised the QoS layer. A
	// run where every request was admitted exactly means the budget never
	// bound, and the scenario proved nothing.
	if totDegraded+totShed == 0 {
		panic("A4: ramp finished without shedding a single request (no degrades, no 503s)")
	}
	// Shard adaptation: with more than one shard possible, sustained
	// pressure must have grown the pool beyond its single starting shard.
	if maxShards > 1 && peak <= 1 {
		panic(fmt.Sprintf("A4: controller never grew past 1 shard (ceiling %d)", maxShards))
	}
}
