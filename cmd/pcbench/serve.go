package main

// The serving-layer load generator. Two modes, both emitting rows
// through the same header/row plumbing as the e-experiments (so -json
// reports them and -compare diffs them):
//
//	pcbench -serve               in-process: pathcover.Pool vs a single
//	                             shared Solver on a mixed-size stream
//	pcbench -attack URL          HTTP: drive a running pathcoverd
//
// Latency columns are wall clock (p50/p99 over per-request samples);
// throughput is requests per second over the whole run. Every returned
// cover is verified (Graph.Verify client-side) — verification runs
// outside the latency window.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathcover"
	"pathcover/internal/cluster"
	"pathcover/internal/daemon"
	"pathcover/internal/workload"
)

var (
	serveMode = flag.Bool("serve", false, "bench the serving layer in-process (Pool vs shared Solver) instead of the e-experiments")
	attackURL = flag.String("attack", "", "comma-separated base URL(s) to load-test: one pathcoverd or pathcover-gateway, or several nodes fronted by an in-process gateway (e.g. http://127.0.0.1:8080,http://127.0.0.1:8081)")
	clients   = flag.Int("clients", 4*runtime.GOMAXPROCS(0), "concurrent clients of the serving benchmark")
	reqCount  = flag.Int("requests", 256, "requests per serving configuration")
	serveMin  = flag.Int("servemin", 10, "smallest serving-graph bucket as a power of two (sizes are log-uniform in [2^servemin, 2^(max+1)))")
	distinct  = flag.Int("distinct", 24, "distinct graphs in the serving catalog")
	batchSize = flag.Int("batch", 32, "requests per batch in the batch-serving rows")
	mixedCat  = flag.Bool("noncograph", true, "include non-cograph catalog entries (trees, sparse graphs, near-cographs) so the serving rows exercise the degraded backends")
	sizeClass = flag.String("sizeclass", "serving", "size distribution of the serving catalog: serving (small-skewed, production-shaped) | loguniform (the historical flat sweep)")
)

// classOrDie parses -sizeclass once per stream build.
func classOrDie() workload.SizeClass {
	c, err := workload.ParseSizeClass(*sizeClass)
	if err != nil {
		panic(fmt.Sprintf("pcbench: %v", err))
	}
	return c
}

// svReq is one materialised request: the graph, its precomputed
// optimum (-1 when the entry routes to the approximation backend and
// has no known optimum), and whether the route is exact. Covers are
// always verified against g itself — attack mode remaps responses onto
// g's numbering by vertex name before verification (the server's
// "names" array), so no shadow re-parsed graph is needed.
type svReq struct {
	g     *pathcover.Graph
	want  int
	exact bool
}

// buildStream materialises the request stream: one *Graph per distinct
// catalog entry (shared across its repetitions, as a serving layer's
// graph registry would), optimum precomputed where the route is exact.
// The edge lists of non-cograph entries are returned alongside for the
// HTTP wire format.
func buildStream(maxLg int) ([]svReq, map[*pathcover.Graph][][2]int) {
	class := classOrDie()
	var reqs []workload.Request
	if *mixedCat {
		reqs = workload.MixedRequestsClass(*seed, *reqCount, *serveMin, maxLg, *distinct, class)
	} else {
		reqs = workload.RequestsClass(*seed, *reqCount, *serveMin, maxLg, *distinct, class)
	}
	cat := workload.Catalog(reqs)
	built := make(map[workload.Request]svReq, len(cat))
	edgeSpecs := make(map[*pathcover.Graph][][2]int)
	for _, r := range cat {
		if r.Kind == workload.KindCograph {
			g := pathcover.Random(r.Seed, r.N, r.Shape)
			if r.Relabel != 0 {
				g = pathcover.Relabelled(g, r.Relabel)
			}
			built[r] = svReq{g: g, want: g.MinPathCoverSize(), exact: true}
			continue
		}
		edges := r.Edges()
		g, err := pathcover.FromEdgesAny(r.N, edges, nil)
		if err != nil {
			panic(fmt.Sprintf("catalog %v: %v", r, err))
		}
		// Exact routes (cograph if recognition surprises us, tree for
		// forests) have a computable optimum; the approximation route
		// does not, so only validity is asserted for those covers.
		sr := svReq{g: g, want: -1}
		if g.IsCograph() || g.IsForest() {
			sr.exact = true
			sr.want = g.MinPathCoverSize()
		}
		built[r] = sr
		edgeSpecs[g] = edges
	}
	out := make([]svReq, len(reqs))
	for i, r := range reqs {
		out[i] = built[r]
	}
	return out, edgeSpecs
}

// streamMix counts the exact- and approx-routed requests of a stream
// for the table headers ("report exact vs approx per run").
func streamMix(stream []svReq) (exact, approx int) {
	for _, r := range stream {
		if r.exact {
			exact++
		} else {
			approx++
		}
	}
	return
}

// widthMix renders the per-index-width routing counts of a stream —
// how many requests the auto dispatch sends to each kernel tier — for
// the table headers, e.g. "201 int16 / 55 int32 / 0 int".
func widthMix(stream []svReq) string {
	counts := map[string]int{}
	for _, r := range stream {
		counts[pathcover.RouteWidth(r.g.N())]++
	}
	return fmt.Sprintf("%d int16 / %d int32 / %d int",
		counts["int16"], counts["int32"], counts["int"])
}

// drive runs the stream through call from C concurrent clients
// (identified by cli, for per-client state) and returns the per-request
// latencies plus the total wall time. The cover returned by call is
// verified outside the latency window.
func drive(stream []svReq, c int, call func(cli int, r svReq) (*pathcover.Cover, error)) ([]time.Duration, time.Duration) {
	lat := make([]time.Duration, len(stream))
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(cli int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stream) {
					return
				}
				r := stream[i]
				t0 := time.Now()
				cov, err := call(cli, r)
				lat[i] = time.Since(t0)
				if err != nil {
					panic(fmt.Sprintf("serving request %d: %v", i, err))
				}
				if cov.Exact != r.exact {
					panic(fmt.Sprintf("serving request %d: exact=%v, expected %v", i, cov.Exact, r.exact))
				}
				if r.want >= 0 && cov.NumPaths != r.want {
					panic(fmt.Sprintf("serving request %d: %d paths, want %d", i, cov.NumPaths, r.want))
				}
				if err := r.g.Verify(cov.Paths); err != nil {
					panic(fmt.Sprintf("serving request %d: invalid cover: %v", i, err))
				}
			}
		}(w)
	}
	wg.Wait()
	return lat, time.Since(start)
}

func pctl(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	i := int(p * float64(len(s)-1))
	return s[i]
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6) }

func serveRow(name string, count int, lat []time.Duration, wall time.Duration) {
	row(name,
		fmt.Sprint(*clients),
		fmt.Sprint(count),
		fmt.Sprintf("%.2f", wall.Seconds()),
		fmt.Sprintf("%.1f", float64(count)/wall.Seconds()),
		ms(pctl(lat, 0.50)),
		ms(pctl(lat, 0.99)))
}

// runServe is the in-process serving benchmark: the same mixed-size
// stream served by (a) one Solver per client — the pre-Pool idiom that
// oversubscribes the host, (b) a single mutex-shared Solver — the
// minimal-footprint baseline the acceptance criterion names, and (c)
// Pools of 1/2/4/default shards; then the batch API against the
// arrival-order single-Solver equivalent.
func runServe() {
	maxLg := min(*maxLog, 16)
	stream, _ := buildStream(maxLg)
	exactN, approxN := streamMix(stream)
	header(fmt.Sprintf("S1 — serving throughput, %s n in [2^%d, 2^%d), %d requests over %d graphs (%d exact-routed, %d approx-routed; widths %s)",
		classOrDie(), *serveMin, maxLg+1, len(stream), *distinct, exactN, approxN, widthMix(stream)),
		"configuration", "clients", "requests", "wall s", "req/s", "p50 ms", "p99 ms")

	// (a) Solver per client: every client owns a full-width Solver, so C
	// clients claim C*GOMAXPROCS workers between them — the pre-Pool
	// idiom whose oversubscription motivates the sharded fleet.
	func() {
		solvers := make([]*pathcover.Solver, *clients)
		for i := range solvers {
			solvers[i] = pathcover.NewSolver(pathcover.WithSeed(*seed))
			defer solvers[i].Close()
		}
		lat, wall := drive(stream, *clients, func(cli int, r svReq) (*pathcover.Cover, error) {
			cov, err := solvers[cli].MinimumPathCover(r.g)
			if err != nil {
				return nil, err
			}
			return clonedCover(cov), nil
		})
		serveRow("solver per client (oversubscribed)", len(stream), lat, wall)
	}()

	// (b) Single shared Solver behind a mutex: the serialized baseline.
	func() {
		sv := pathcover.NewSolver(pathcover.WithSeed(*seed))
		defer sv.Close()
		var mu sync.Mutex
		lat, wall := drive(stream, *clients, func(_ int, r svReq) (*pathcover.Cover, error) {
			mu.Lock()
			cov, err := sv.MinimumPathCover(r.g)
			if err != nil {
				mu.Unlock()
				return nil, err
			}
			out := clonedCover(cov)
			mu.Unlock()
			return out, nil
		})
		serveRow("single shared Solver (mutex)", len(stream), lat, wall)
	}()

	// (c) Pools.
	shardCounts := []int{1, 2, 4}
	if d := pathcover.NewPool(); true {
		if n := d.NumShards(); n != 1 && n != 2 && n != 4 {
			shardCounts = append(shardCounts, n)
		}
		d.Close()
	}
	for _, k := range shardCounts {
		p := pathcover.NewPool(pathcover.WithShards(k), pathcover.WithQueueDepth(-1),
			pathcover.WithShardOptions(pathcover.WithSeed(*seed)))
		lat, wall := drive(stream, *clients, func(_ int, r svReq) (*pathcover.Cover, error) {
			return p.MinimumPathCover(context.Background(), r.g)
		})
		serveRow(fmt.Sprintf("pool, %d shards", k), len(stream), lat, wall)
		p.Close()
	}

	runServeBatch(stream, maxLg)
	runServeZipf(maxLg)
	runServeWidths()
	runServeCluster(min(maxLg, 14))
}

// runServeCluster is the cache-affinity A/B the cluster routing is
// for: the same Zipf repeat-heavy stream served by three in-process
// daemon nodes (each with its own canonical result cache) behind (a)
// the consistent-hash gateway — every presentation of a base graph
// hashes to one owner, so each distinct canonical identity is solved
// once cluster-wide — and (b) uniform-random node choice, where each
// node must warm its own copy of the popular graphs. The hit %% column
// is the aggregate across the three node caches; affine routing's must
// come out higher on the same stream.
func runServeCluster(maxLg int) {
	const nNodes = 3
	const zipfS = 1.1
	stream := buildZipfStream(maxLg, zipfS)
	specs := make(map[*pathcover.Graph][]byte, *distinct)
	remaps := make(map[*pathcover.Graph]map[string]int, *distinct)
	for _, r := range stream {
		if _, ok := specs[r.g]; !ok {
			blob, err := json.Marshal(map[string]any{"cotree": r.g.String()})
			if err != nil {
				panic(err)
			}
			specs[r.g] = blob
			remaps[r.g] = nameIndex(r.g)
		}
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *clients}}

	header(fmt.Sprintf("S5 — cluster cache affinity, %d nodes × 32 MiB canonical caches, Zipf(%.1f) stream of %d requests over %d base graphs ×3 presentations, n in [2^%d, 2^%d)",
		nNodes, zipfS, len(stream), *distinct, *serveMin, maxLg+1),
		"routing", "clients", "requests", "hit %", "wall s", "req/s", "p50 ms", "p99 ms")

	type coverResp struct {
		NumPaths int      `json:"num_paths"`
		Paths    [][]int  `json:"paths"`
		Names    []string `json:"names"`
		Exact    bool     `json:"exact"`
	}
	do := func(url string, r svReq) (*pathcover.Cover, error) {
		resp, err := client.Post(url+"/cover?include_names=1", "application/json", bytes.NewReader(specs[r.g]))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("/cover: HTTP %d: %s", resp.StatusCode, payload)
		}
		var out coverResp
		if err := json.Unmarshal(payload, &out); err != nil {
			return nil, err
		}
		return &pathcover.Cover{Paths: remapPaths(remaps[r.g], out.Paths, out.Names), NumPaths: out.NumPaths, Exact: out.Exact}, nil
	}

	run := func(name string, affine bool) {
		// Fresh nodes per mode: both sides start with cold caches.
		nodeURLs := make([]string, nNodes)
		var cleanup []func()
		for i := range nodeURLs {
			ds := daemon.New(daemon.Config{Shards: 1, CacheMB: 32})
			srv := httptest.NewServer(ds.Handler())
			nodeURLs[i] = srv.URL
			cleanup = append(cleanup, srv.Close, ds.Close)
		}
		defer func() {
			for _, c := range cleanup {
				c()
			}
		}()

		var lat []time.Duration
		var wall time.Duration
		if affine {
			// Hedging off (threshold far beyond any solve): a hedge would
			// warm a replica's cache and blur the affinity measurement.
			gw := cluster.New(nodeURLs, cluster.Options{HedgeAfter: time.Hour})
			defer gw.Close()
			gsrv := httptest.NewServer(gw.Handler())
			defer gsrv.Close()
			lat, wall = drive(stream, *clients, func(_ int, r svReq) (*pathcover.Cover, error) {
				return do(gsrv.URL, r)
			})
		} else {
			rngs := make([]*rand.Rand, *clients)
			for i := range rngs {
				rngs[i] = rand.New(rand.NewPCG(*seed, uint64(i)))
			}
			lat, wall = drive(stream, *clients, func(cli int, r svReq) (*pathcover.Cover, error) {
				return do(nodeURLs[rngs[cli].IntN(nNodes)], r)
			})
		}

		// Aggregate hit rate across the node caches.
		var agg pathcover.CacheStats
		for _, u := range nodeURLs {
			resp, err := client.Get(u + "/stats")
			if err != nil {
				panic(err)
			}
			var peek struct {
				Pool struct {
					Cache *pathcover.CacheStats `json:"cache"`
				} `json:"pool"`
			}
			err = json.NewDecoder(resp.Body).Decode(&peek)
			resp.Body.Close()
			if err != nil {
				panic(err)
			}
			if c := peek.Pool.Cache; c != nil {
				agg.Hits += c.Hits
				agg.Misses += c.Misses
				agg.Coalesced += c.Coalesced
			}
		}
		row(name, fmt.Sprint(*clients), fmt.Sprint(len(stream)), hitPct(&agg),
			fmt.Sprintf("%.2f", wall.Seconds()),
			fmt.Sprintf("%.1f", float64(len(stream))/wall.Seconds()),
			ms(pctl(lat, 0.50)), ms(pctl(lat, 0.99)))
	}
	run("gateway, cache-affine ring", true)
	run("uniform-random node", false)
}

// runServeWidths is the width-tier A/B: one serving-size-class cograph
// catalog whose every entry fits the int16 bound (n ≤ 3270), served
// three times through a pool whose shards are forced to int16, int32
// and int kernels in turn. The graphs, the covers and the simulated
// counters are identical across the three rows — only the index bytes
// moved per element differ — so the wall-clock delta isolates what the
// narrower width buys at the memory wall.
func runServeWidths() {
	shapes := []pathcover.Shape{pathcover.Mixed, pathcover.Balanced, pathcover.Caterpillar}
	sizes := []int{512, 1024, 2048, 3000, pathcover.MaxInt16Vertices}
	catalog := make([]svReq, 0, len(sizes)*len(shapes))
	for i, n := range sizes {
		for j, shape := range shapes {
			g := pathcover.Random(*seed+uint64(i*len(shapes)+j), n, shape)
			catalog = append(catalog, svReq{g: g, want: g.MinPathCoverSize(), exact: true})
		}
	}
	stream := make([]svReq, *reqCount)
	for i := range stream {
		stream[i] = catalog[i%len(catalog)]
	}
	// One client, one shard: a pure-latency A/B. Concurrent clients on a
	// loaded host measure the scheduler, not the kernels — the width
	// delta is a per-solve bandwidth effect and needs sequential solves
	// to show outside of noise. Widths are interleaved request by
	// request (three pools live at once, each request solved on all
	// three back to back) so host drift over the run cancels instead of
	// biasing whichever width ran last.
	header(fmt.Sprintf("S4 — index-width tiers, serving-class catalog of %d cographs (n ≤ %d), %d requests, 1 client, widths interleaved, identical covers per row",
		len(catalog), pathcover.MaxInt16Vertices, len(stream)),
		"forced width", "clients", "requests", "wall s", "req/s", "p50 ms", "p99 ms")
	widths := []pathcover.IndexWidth{pathcover.Width16, pathcover.Width32, pathcover.Width64}
	pools := make([]*pathcover.Pool, len(widths))
	lats := make([][]time.Duration, len(widths))
	walls := make([]time.Duration, len(widths))
	for wi, w := range widths {
		pools[wi] = pathcover.NewPool(pathcover.WithShards(1), pathcover.WithQueueDepth(-1),
			pathcover.WithShardOptions(pathcover.WithSeed(*seed), pathcover.WithIndexWidth(w)))
		defer pools[wi].Close()
		// Warm the shard arena so no width pays first-touch allocation.
		if _, err := pools[wi].MinimumPathCover(context.Background(), catalog[len(catalog)-1].g); err != nil {
			panic(err)
		}
		lats[wi] = make([]time.Duration, 0, len(stream))
	}
	for _, r := range stream {
		for wi := range widths {
			t0 := time.Now()
			cov, err := pools[wi].MinimumPathCover(context.Background(), r.g)
			el := time.Since(t0)
			if err != nil {
				panic(err)
			}
			lats[wi] = append(lats[wi], el)
			walls[wi] += el
			if cov.NumPaths != r.want {
				panic(fmt.Sprintf("S4 width %v: %d paths, want %d", widths[wi], cov.NumPaths, r.want))
			}
			if err := r.g.Verify(cov.Paths); err != nil {
				panic(fmt.Sprintf("S4 width %v: invalid cover: %v", widths[wi], err))
			}
		}
	}
	for wi, w := range widths {
		row(w.String(), "1", fmt.Sprint(len(stream)),
			fmt.Sprintf("%.2f", walls[wi].Seconds()),
			fmt.Sprintf("%.1f", float64(len(stream))/walls[wi].Seconds()),
			ms(pctl(lats[wi], 0.50)), ms(pctl(lats[wi], 0.99)))
	}
}

// buildZipfStream materialises a Zipf repeat-heavy cograph stream: the
// catalog's base graphs each appear under relabelled-isomorphic
// presentations (workload.ZipfRequests), so a canonical-identity cache
// can collapse presentations a Request-keyed registry cannot. One
// *Graph per distinct presentation, shared across its repetitions.
func buildZipfStream(maxLg int, s float64) []svReq {
	reqs := workload.ZipfRequestsClass(*seed, *reqCount, *serveMin, maxLg, *distinct, s, classOrDie())
	built := make(map[workload.Request]svReq, len(reqs))
	out := make([]svReq, len(reqs))
	for i, r := range reqs {
		sr, ok := built[r]
		if !ok {
			g := pathcover.Random(r.Seed, r.N, r.Shape)
			if r.Relabel != 0 {
				g = pathcover.Relabelled(g, r.Relabel)
			}
			sr = svReq{g: g, want: g.MinPathCoverSize(), exact: true}
			built[r] = sr
		}
		out[i] = sr
	}
	return out
}

// hitPct formats a cache's hit rate — requests served without a solve
// (hits plus coalesced waits) over all cache-eligible requests — or "-"
// when there is no cache (or no traffic) to report on.
func hitPct(st *pathcover.CacheStats) string {
	if st == nil {
		return "-"
	}
	total := st.Hits + st.Misses + st.Coalesced
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(st.Hits+st.Coalesced)/float64(total))
}

// runServeZipf is the canonical-identity cache benchmark: the same
// Zipf repeat-heavy stream — duplicates and relabelled-isomorphic
// twins drawn from a small catalog — served by an uncached pool and by
// one carrying the canonical-cotree result cache. Reading down the
// cached rows as the Zipf exponent grows shows the p50-vs-hit-rate
// cliff: the hit %% column rises and the cached p50 collapses toward
// the copy-out cost, while the uncached p50 stays put.
func runServeZipf(maxLg int) {
	header(fmt.Sprintf("S3 — canonical-identity cache, Zipf streams of %d requests over %d base graphs ×3 presentations, n in [2^%d, 2^%d)",
		*reqCount, *distinct, *serveMin, maxLg+1),
		"configuration", "zipf s", "hit %", "wall s", "req/s", "p50 ms", "p99 ms")
	for _, s := range []float64{0, 0.8, 1.1, 1.4} {
		stream := buildZipfStream(maxLg, s)
		for _, cached := range []bool{false, true} {
			popts := []pathcover.PoolOption{pathcover.WithQueueDepth(-1),
				pathcover.WithShardOptions(pathcover.WithSeed(*seed))}
			name := "pool, uncached"
			if cached {
				popts = append(popts, pathcover.WithCache(64<<20))
				name = "pool, 64 MiB canonical cache"
			}
			p := pathcover.NewPool(popts...)
			lat, wall := drive(stream, *clients, func(_ int, r svReq) (*pathcover.Cover, error) {
				return p.MinimumPathCover(context.Background(), r.g)
			})
			row(name, fmt.Sprintf("%.1f", s), hitPct(p.Stats().Cache),
				fmt.Sprintf("%.2f", wall.Seconds()),
				fmt.Sprintf("%.1f", float64(len(stream))/wall.Seconds()),
				ms(pctl(lat, 0.50)), ms(pctl(lat, 0.99)))
			p.Close()
		}
	}
}

// runServeBatch compares the batch API (grouped per shard) against the
// same batches processed in arrival order on one Solver. The stream
// contains repeated graphs, so grouping creates same-size adjacency for
// the arena and fans segments out across the shards.
func runServeBatch(stream []svReq, maxLg int) {
	b := *batchSize
	if b < 1 {
		b = 1
	}
	numBatches := (len(stream) + b - 1) / b
	header(fmt.Sprintf("S2 — batch serving, %d-request batches, mixed n in [2^%d, 2^%d)",
		b, *serveMin, maxLg+1),
		"configuration", "batch", "requests", "wall s", "req/s", "p50 ms", "p99 ms")

	batches := make([][]svReq, 0, numBatches)
	for off := 0; off < len(stream); off += b {
		batches = append(batches, stream[off:min(off+b, len(stream))])
	}
	check := func(batch []svReq, covs []*pathcover.Cover) {
		for i, cov := range covs {
			if cov.Exact != batch[i].exact {
				panic(fmt.Sprintf("batch cover %d: exact=%v, expected %v", i, cov.Exact, batch[i].exact))
			}
			if batch[i].want >= 0 && cov.NumPaths != batch[i].want {
				panic(fmt.Sprintf("batch cover %d: %d paths, want %d", i, cov.NumPaths, batch[i].want))
			}
			if err := batch[i].g.Verify(cov.Paths); err != nil {
				panic(fmt.Sprintf("batch cover %d: %v", i, err))
			}
		}
	}

	// Arrival order on one Solver.
	func() {
		sv := pathcover.NewSolver(pathcover.WithSeed(*seed))
		defer sv.Close()
		lat := make([]time.Duration, 0, len(batches))
		start := time.Now()
		for _, batch := range batches {
			t0 := time.Now()
			covs := make([]*pathcover.Cover, len(batch))
			for i, r := range batch {
				cov, err := sv.MinimumPathCover(r.g)
				if err != nil {
					panic(err)
				}
				covs[i] = clonedCover(cov)
			}
			lat = append(lat, time.Since(t0))
			check(batch, covs)
		}
		wall := time.Since(start)
		row("single Solver, arrival order", fmt.Sprint(b), fmt.Sprint(len(stream)),
			fmt.Sprintf("%.2f", wall.Seconds()),
			fmt.Sprintf("%.1f", float64(len(stream))/wall.Seconds()),
			ms(pctl(lat, 0.50)), ms(pctl(lat, 0.99)))
	}()

	// Pool.CoverBatch, grouped by width/size/graph identity.
	for _, k := range []int{1, 4} {
		p := pathcover.NewPool(pathcover.WithShards(k), pathcover.WithQueueDepth(-1),
			pathcover.WithShardOptions(pathcover.WithSeed(*seed)))
		lat := make([]time.Duration, 0, len(batches))
		start := time.Now()
		for _, batch := range batches {
			gs := make([]*pathcover.Graph, len(batch))
			for i, r := range batch {
				gs[i] = r.g
			}
			t0 := time.Now()
			covs, err := p.CoverBatch(context.Background(), gs)
			if err != nil {
				panic(err)
			}
			lat = append(lat, time.Since(t0))
			check(batch, covs)
		}
		wall := time.Since(start)
		row(fmt.Sprintf("Pool.CoverBatch grouped, %d shards", k), fmt.Sprint(b), fmt.Sprint(len(stream)),
			fmt.Sprintf("%.2f", wall.Seconds()),
			fmt.Sprintf("%.1f", float64(len(stream))/wall.Seconds()),
			ms(pctl(lat, 0.50)), ms(pctl(lat, 0.99)))
		p.Close()
	}
}

// clonedCover deep-copies a Solver-owned cover (arena-backed) into
// caller-owned memory, mirroring what Pool methods do internally. The
// metadata (Exact, Backend, LowerBound, Gap, Stats) rides along.
func clonedCover(cov *pathcover.Cover) *pathcover.Cover {
	paths := make([][]int, len(cov.Paths))
	for i, p := range cov.Paths {
		paths[i] = append([]int(nil), p...)
	}
	out := *cov
	out.Paths = paths
	return &out
}

// nameIndex inverts a graph's vertex naming for the response remap:
// name -> client vertex id. Names must be unique — they are for every
// graph this benchmark builds (the workload constructors name leaves
// v%d / t%d / c%d_%d / leaf%d), and the remap is meaningless otherwise.
func nameIndex(g *pathcover.Graph) map[string]int {
	byName := make(map[string]int, g.N())
	for v := 0; v < g.N(); v++ {
		name := g.Name(v)
		if _, dup := byName[name]; dup {
			panic(fmt.Sprintf("graph has duplicate vertex name %q; cannot remap by name", name))
		}
		byName[name] = v
	}
	return byName
}

// remapPaths rewrites a response's server-numbered paths onto the
// client graph's numbering: server vertex v is the client vertex
// sharing its name (byName from nameIndex). Cotree text re-numbers by
// leaf order on the server's parse; names travel with the vertices
// through every rewrite, so the remapped cover verifies against the
// client's own Graph directly.
func remapPaths(byName map[string]int, paths [][]int, names []string) [][]int {
	out := make([][]int, len(paths))
	for i, p := range paths {
		q := make([]int, len(p))
		for j, v := range p {
			if v < 0 || v >= len(names) {
				panic(fmt.Sprintf("response path vertex %d outside names array (n=%d)", v, len(names)))
			}
			cid, ok := byName[names[v]]
			if !ok {
				panic(fmt.Sprintf("response names vertex %q unknown to the client graph", names[v]))
			}
			q[j] = cid
		}
		out[i] = q
	}
	return out
}

// splitURLs parses the -attack target list: comma-separated base URLs,
// trimmed of whitespace and trailing slashes.
func splitURLs(target string) []string {
	var urls []string
	for _, u := range strings.Split(target, ",") {
		if u = strings.TrimSuffix(strings.TrimSpace(u), "/"); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// runAttack drives a serving target over HTTP: /cover per request from
// C clients, then the same stream in /batch chunks, then a registered-
// graph session run over a Zipf stream. The target is one pathcoverd
// (or pathcover-gateway) URL, or a comma-separated node list fronted
// by an in-process cluster gateway — either way the A-section titles
// stay target-free so gateway and direct-node runs -compare against
// each other; when the target is (or wraps) a gateway, A3 reports the
// per-node routed/retried/hedged breakdown from its stats. Graphs
// travel as cotree text; responses are fully verified client-side.
func runAttack(target string) {
	urls := splitURLs(target)
	if len(urls) == 0 {
		panic("pcbench: -attack got no URLs")
	}
	base := urls[0]
	var gw *cluster.Gateway
	if len(urls) > 1 {
		// Multi-URL: front the nodes with an in-process gateway — the same
		// routing/retry/hedging tier pathcover-gateway serves — and attack
		// through it.
		gw = cluster.New(urls, cluster.Options{})
		defer gw.Close()
		gw.Start()
		gsrv := httptest.NewServer(gw.Handler())
		defer gsrv.Close()
		base = gsrv.URL
		fmt.Printf("\nattack: in-process gateway over %d nodes: %s\n", len(urls), strings.Join(urls, ", "))
	} else {
		fmt.Printf("\nattack: %s\n", base)
	}

	maxLg := min(*maxLog, 14) // HTTP transport: keep bodies sane by default
	stream, edgeSpecs := buildStream(maxLg)
	specs := make(map[*pathcover.Graph]map[string]any, *distinct)
	// Cotree-built graphs travel as cotree text, whose server-side parse
	// numbers vertices by leaf order — a different numbering from the
	// client's Graph. Every request asks for the server's "names" array
	// and responses are remapped onto the client's own numbering by name
	// (names travel with the vertices through every rewrite), so the
	// client's Graph verifies its own covers directly. Edge-list graphs
	// keep their input numbering on both sides; the remap is then the
	// identity and costs one map lookup per vertex.
	remaps := make(map[*pathcover.Graph]map[string]int, *distinct)
	for _, r := range stream {
		if _, ok := specs[r.g]; !ok {
			if edges, isRaw := edgeSpecs[r.g]; isRaw {
				specs[r.g] = map[string]any{"n": r.g.N(), "edges": edges}
			} else {
				specs[r.g] = map[string]any{"cotree": r.g.String()}
			}
			remaps[r.g] = nameIndex(r.g)
		}
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *clients}}

	exactN, approxN := streamMix(stream)
	header(fmt.Sprintf("A1 — serving attack, %s n in [2^%d, 2^%d), %d requests (%d exact-routed, %d approx-routed; widths %s)",
		classOrDie(), *serveMin, maxLg+1, len(stream), exactN, approxN, widthMix(stream)),
		"configuration", "clients", "requests", "wall s", "req/s", "p50 ms", "p99 ms")

	type coverResp struct {
		NumPaths int      `json:"num_paths"`
		Paths    [][]int  `json:"paths"`
		Names    []string `json:"names"`
		Exact    bool     `json:"exact"`
		Backend  string   `json:"backend"`
		Gap      int      `json:"gap"`
	}
	remap := func(g *pathcover.Graph, paths [][]int, names []string) [][]int {
		return remapPaths(remaps[g], paths, names)
	}
	finish := func(path string, resp *http.Response, err error, dst any) error {
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, payload)
		}
		return json.Unmarshal(payload, dst)
	}
	post := func(path string, body any, dst any) error {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(blob))
		return finish(path, resp, err, dst)
	}
	get := func(path string, dst any) error {
		resp, err := client.Get(base + path)
		return finish(path, resp, err, dst)
	}

	lat, wall := drive(stream, *clients, func(_ int, r svReq) (*pathcover.Cover, error) {
		var out coverResp
		if err := post("/cover?include_names=1", specs[r.g], &out); err != nil {
			return nil, err
		}
		return &pathcover.Cover{Paths: remap(r.g, out.Paths, out.Names), NumPaths: out.NumPaths, Exact: out.Exact}, nil
	})
	serveRow("attack /cover", len(stream), lat, wall)

	// Batch rounds.
	b := *batchSize
	var blat []time.Duration
	start := time.Now()
	for off := 0; off < len(stream); off += b {
		end := min(off+b, len(stream))
		graphs := make([]map[string]any, 0, end-off)
		for i := off; i < end; i++ {
			graphs = append(graphs, specs[stream[i].g])
		}
		var out struct {
			Covers []coverResp `json:"covers"`
		}
		t0 := time.Now()
		err := post("/batch", map[string]any{"graphs": graphs, "include_names": true}, &out)
		blat = append(blat, time.Since(t0))
		if err != nil {
			panic(err)
		}
		if len(out.Covers) != end-off {
			panic(fmt.Sprintf("batch returned %d covers for %d graphs", len(out.Covers), end-off))
		}
		for i, cov := range out.Covers {
			r := stream[off+i]
			if cov.Exact != r.exact {
				panic(fmt.Sprintf("batch cover %d: exact=%v, expected %v", off+i, cov.Exact, r.exact))
			}
			if r.want >= 0 && cov.NumPaths != r.want {
				panic(fmt.Sprintf("batch cover %d: %d paths, want %d", off+i, cov.NumPaths, r.want))
			}
			if err := r.g.Verify(remap(r.g, cov.Paths, cov.Names)); err != nil {
				panic(fmt.Sprintf("batch cover %d: %v", off+i, err))
			}
		}
	}
	bwall := time.Since(start)
	row("attack /batch", fmt.Sprint(*clients), fmt.Sprint(len(stream)),
		fmt.Sprintf("%.2f", bwall.Seconds()),
		fmt.Sprintf("%.1f", float64(len(stream))/bwall.Seconds()),
		ms(pctl(blat, 0.50)), ms(pctl(blat, 0.99)))

	// A2 — registered-graph sessions: every distinct presentation of a
	// Zipf stream is registered once (POST /graphs), then the stream is
	// served by id (GET /cover?id=) — no graph bytes on the hot path.
	// The hit %% column is the server cache's delta over this run read
	// from /stats; relabelled twins of one base graph share a canonical
	// entry, so with a cached daemon the hit rate far exceeds what
	// presentation-keyed duplicates alone could deliver ("-" when the
	// daemon runs uncached).
	type cachePeek struct {
		Pool struct {
			Cache *pathcover.CacheStats `json:"cache"`
		} `json:"pool"`
	}
	readCache := func() *pathcover.CacheStats {
		var st cachePeek
		if err := get("/stats", &st); err != nil {
			panic(err)
		}
		return st.Pool.Cache
	}

	const zipfS = 1.1
	zstream := buildZipfStream(maxLg, zipfS)
	ids := make(map[*pathcover.Graph]string, len(zstream))
	var idMu sync.Mutex
	register := func(g *pathcover.Graph) error {
		var info struct {
			ID string `json:"id"`
		}
		if err := post("/graphs", map[string]any{"cotree": g.String()}, &info); err != nil {
			return err
		}
		if info.ID == "" {
			return fmt.Errorf("POST /graphs returned no id")
		}
		idMu.Lock()
		ids[g] = info.ID
		idMu.Unlock()
		return nil
	}
	for _, r := range zstream {
		if _, ok := ids[r.g]; ok {
			continue
		}
		if err := register(r.g); err != nil {
			panic(err)
		}
		remaps[r.g] = nameIndex(r.g)
	}

	header(fmt.Sprintf("A2 — registered-graph sessions, Zipf(%.1f) stream of %d requests over %d registered presentations",
		zipfS, len(zstream), len(ids)),
		"configuration", "clients", "requests", "hit %", "wall s", "req/s", "p50 ms", "p99 ms")
	before := readCache()
	getCode := func(path string, dst any) (int, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, err
		}
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, payload)
		}
		return resp.StatusCode, json.Unmarshal(payload, dst)
	}
	zlat, zwall := drive(zstream, *clients, func(_ int, r svReq) (*pathcover.Cover, error) {
		var out coverResp
		for attempt := 0; ; attempt++ {
			idMu.Lock()
			id := ids[r.g]
			idMu.Unlock()
			code, err := getCode("/cover?id="+id+"&include_names=1", &out)
			if err == nil {
				break
			}
			// A restarted node comes back with an empty registry, so its
			// ids answer 404 (and a dying hop can surface as 502/503).
			// Re-register and retry: the session survives node churn, which
			// is exactly what the cluster-smoke kill exercises.
			if attempt < 8 && (code == http.StatusNotFound ||
				code == http.StatusBadGateway || code == http.StatusServiceUnavailable) {
				if rerr := register(r.g); rerr == nil {
					continue
				}
			}
			return nil, err
		}
		return &pathcover.Cover{Paths: remap(r.g, out.Paths, out.Names), NumPaths: out.NumPaths, Exact: out.Exact}, nil
	})
	after := readCache()
	hit := "-"
	if before != nil && after != nil {
		hit = hitPct(&pathcover.CacheStats{
			Hits:      after.Hits - before.Hits,
			Misses:    after.Misses - before.Misses,
			Coalesced: after.Coalesced - before.Coalesced,
		})
	}
	row("attack GET /cover?id=", fmt.Sprint(*clients), fmt.Sprint(len(zstream)), hit,
		fmt.Sprintf("%.2f", zwall.Seconds()),
		fmt.Sprintf("%.1f", float64(len(zstream))/zwall.Seconds()),
		ms(pctl(zlat, 0.50)), ms(pctl(zlat, 0.99)))

	// Deregister the session graphs so repeated attacks against one
	// daemon don't accumulate registry residents (and so DELETE gets
	// exercised outside the smoke test). Node churn may already have
	// emptied a restarted registry — its ids answer 404, which is the
	// outcome deletion wanted, so 404 passes.
	for _, id := range ids {
		req, err := http.NewRequest(http.MethodDelete, base+"/graphs/"+id, nil)
		if err != nil {
			panic(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			panic(fmt.Sprintf("DELETE /graphs/%s: %v", id, err))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
			panic(fmt.Sprintf("DELETE /graphs/%s: HTTP %d", id, resp.StatusCode))
		}
	}

	// A3 — per-node routing counters: from the in-process gateway when
	// -attack got a node list, else from the target's /stats when it is
	// a pathcover-gateway. A plain daemon has no nodes table and skips
	// the section; when present, the title and columns are target-free
	// so gateway and multi-node runs -compare against each other.
	var st cluster.GatewayStats
	if gw != nil {
		st = gw.Stats()
	} else {
		var peek struct {
			Gateway cluster.GatewayStats `json:"gateway"`
		}
		if err := get("/stats", &peek); err != nil {
			return
		}
		st = peek.Gateway
	}
	if len(st.Nodes) == 0 {
		return
	}
	header("A3 — per-node cluster routing counters",
		"node", "state", "routed", "retried", "hedged", "ejections", "readmissions")
	for _, ns := range st.Nodes {
		row(ns.Name, ns.State, fmt.Sprint(ns.Routed), fmt.Sprint(ns.Retried),
			fmt.Sprint(ns.Hedged), fmt.Sprint(ns.Ejections), fmt.Sprint(ns.Readmissions))
	}
	row("total", "-", fmt.Sprint(st.Routed), fmt.Sprint(st.Retries),
		fmt.Sprint(st.Hedged), fmt.Sprint(st.Ejections), fmt.Sprint(st.Readmissions))
}
