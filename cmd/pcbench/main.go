// Command pcbench regenerates the experiment tables of EXPERIMENTS.md:
// every theorem/lemma of the paper mapped to a measurable claim on the
// PRAM cost simulator plus wall-clock comparisons.
//
// Usage:
//
//	pcbench                        # run everything
//	pcbench -exp e4                # one experiment
//	pcbench -exp e4 -max 20        # larger sweep (2^20)
//	pcbench -json BENCH_PR3.json   # also dump machine-readable results
//	pcbench -compare old.json new.json
//	                               # diff two -json reports: every numeric
//	                               # column becomes old -> new (ratio)
//	pcbench -compare -gate 25 old.json new.json
//	                               # CI regression gate: exit 1 when any
//	                               # simtime/simwork cell drifts > 25%
//	pcbench -serve -json BENCH.json
//	                               # serving-layer benchmark: Pool vs a
//	                               # single shared Solver (see serve.go)
//	pcbench -serve -sizeclass loguniform
//	                               # historical flat size sweep instead of
//	                               # the small-skewed serving class
//	pcbench -attack http://host:8080
//	                               # HTTP load against a pathcoverd
//	pcbench -serve -cpuprofile cmd/pcbench/default.pgo
//	                               # refresh the committed PGO profile
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"pathcover"
	"pathcover/internal/baseline"
	"pathcover/internal/core"
	"pathcover/internal/lowerbound"
	"pathcover/internal/par"
	"pathcover/internal/pram"
	"pathcover/internal/workload"
)

var (
	exp        = flag.String("exp", "all", "experiment to run: e1..e9 | all")
	maxLog     = flag.Int("max", 18, "largest input size as a power of two")
	seed       = flag.Uint64("seed", 1, "random seed")
	jsonPath   = flag.String("json", "", "write machine-readable results to this file")
	compare    = flag.Bool("compare", false, "compare two -json reports (pcbench -compare old.json new.json) instead of running experiments")
	gate       = flag.Float64("gate", 0, "with -compare: fail (exit 1) when any simulated simtime/simwork cell drifts by more than this percentage")
	walltrace  = flag.Bool("walltrace", false, "also emit the per-step wall-clock trace table (and include it in -json, so -compare diffs per-step deltas)")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (pprof format; feeds default.pgo for PGO builds)")
)

// jsonExperiment mirrors one rendered table; the -json dump gives future
// PRs a perf trajectory to diff against.
type jsonExperiment struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

type jsonReport struct {
	Date        string           `json:"date"`
	Commit      string           `json:"commit"`
	GoVersion   string           `json:"go_version"`
	NumCPU      int              `json:"num_cpu"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	MaxLog      int              `json:"max_log"`
	Seed        uint64           `json:"seed"`
	Experiments []jsonExperiment `json:"experiments"`
}

var report = jsonReport{
	Date:       time.Now().UTC().Format(time.RFC3339),
	GoVersion:  runtime.Version(),
	NumCPU:     runtime.NumCPU(),
	GOMAXPROCS: runtime.GOMAXPROCS(0),
}

// commitHash identifies the measured tree: the VCS revision stamped into
// the binary when available (built/installed binaries), the working
// tree's HEAD otherwise (go run), "unknown" failing both.
func commitHash() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", ""
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			return rev + dirty
		}
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			}
			fmt.Fprintf(os.Stderr, "pcbench: wrote CPU profile %s\n", *cpuprofile)
		}()
	}
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "pcbench: -compare needs exactly two report files: pcbench -compare old.json new.json")
			os.Exit(1)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	report.MaxLog = *maxLog
	report.Seed = *seed
	switch {
	case *attackURL != "":
		runAttack(*attackURL)
		runAttackRamp()
	case *serveMode:
		runServe()
	default:
		run := func(name string, f func()) {
			if *exp == "all" || *exp == name {
				f()
			}
		}
		run("e1", e1)
		run("e2", e2)
		run("e3", e3)
		run("e4", e4)
		run("e5", e5)
		run("e6", e6)
		run("e7", e7)
		run("e8", e8)
		run("e9", e9)
		if *walltrace || *exp == "wt" {
			wt()
		}
		if !strings.HasPrefix(*exp, "e") && *exp != "all" && *exp != "wt" {
			fmt.Fprintf(os.Stderr, "pcbench: unknown experiment %q\n", *exp)
			os.Exit(1)
		}
	}
	if *jsonPath != "" {
		report.Commit = commitHash() // resolved only when a report is written
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pcbench: wrote %s\n", *jsonPath)
	}
}

func sizes() []int {
	var out []int
	for lg := 10; lg <= *maxLog; lg += 2 {
		out = append(out, 1<<lg)
	}
	return out
}

func lg2(n int) float64 { return math.Log2(float64(n)) }

func header(title string, cols ...string) {
	fmt.Printf("\n### %s\n\n", title)
	fmt.Println("| " + strings.Join(cols, " | ") + " |")
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Println("| " + strings.Join(sep, " | ") + " |")
	report.Experiments = append(report.Experiments, jsonExperiment{Title: title, Columns: cols})
}

func row(cells ...string) {
	fmt.Println("| " + strings.Join(cells, " | ") + " |")
	if n := len(report.Experiments); n > 0 {
		e := &report.Experiments[n-1]
		e.Rows = append(e.Rows, cells)
	}
}

func e1() {
	header("E1 — Theorem 2.2: OR reduction gadget (Fig. 2)",
		"n bits", "k ones", "paths", "expected n-k+2", "y-path len", "OR", "simtime", "simtime/log n")
	for _, n := range sizes() {
		rng := rand.New(rand.NewPCG(*seed, uint64(n)))
		bits := make([]bool, n)
		k := 0
		for i := range bits {
			if rng.IntN(n) < 3 {
				bits[i] = true
				k++
			}
		}
		inst := lowerbound.Build(bits)
		s := pram.New(pram.ProcsFor(n))
		cov, err := core.ParallelCover(s, inst.Tree, core.Options{Seed: *seed})
		if err != nil {
			panic(err)
		}
		or, err := inst.Decode(cov.Paths)
		if err != nil {
			panic(err)
		}
		ylen := 0
		for _, p := range cov.Paths {
			for _, v := range p {
				if v == inst.Y {
					ylen = len(p)
				}
			}
		}
		row(fmt.Sprint(n), fmt.Sprint(k), fmt.Sprint(len(cov.Paths)),
			fmt.Sprint(inst.ExpectedPaths(k)), fmt.Sprint(ylen), fmt.Sprint(or),
			fmt.Sprint(s.Time()), fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)))
	}
}

func e2() {
	header("E2 — Lemma 2.3: sequential cover is O(n)",
		"shape", "n", "wall ms", "ns/vertex")
	for _, shape := range []workload.Shape{workload.Mixed, workload.Caterpillar} {
		for _, n := range sizes() {
			t := workload.Random(*seed, n, shape)
			s := pram.NewSerial()
			bin := t.Binarize(s)
			L := bin.MakeLeftist(s, 1)
			reps := max(1, 1<<22/n)
			start := time.Now()
			for r := 0; r < reps; r++ {
				baseline.SequentialCover(bin, L)
			}
			el := time.Since(start) / time.Duration(reps)
			row(shape.String(), fmt.Sprint(n),
				fmt.Sprintf("%.2f", float64(el.Microseconds())/1000),
				fmt.Sprintf("%.1f", float64(el.Nanoseconds())/float64(n)))
		}
	}
}

func e3() {
	header("E3 — Lemma 2.4: p(u) by tree contraction",
		"n", "procs", "simtime", "simtime/log n", "simwork/n")
	for _, n := range sizes() {
		t := workload.Random(*seed, n, workload.Mixed)
		setup := pram.NewSerial()
		bin := t.Binarize(setup)
		L := bin.MakeLeftist(setup, 1)
		s := pram.New(pram.ProcsFor(n))
		tour := par.TourBinary(s, bin.BinTree, *seed)
		s.Reset()
		core.ComputeP(s, bin, L, tour)
		row(fmt.Sprint(n), fmt.Sprint(s.Procs()), fmt.Sprint(s.Time()),
			fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)),
			fmt.Sprintf("%.1f", float64(s.Work())/float64(n)))
	}
}

func e4() {
	header("E4 — Theorem 5.3: optimal parallel cover, time O(log n), work O(n)",
		"shape", "n", "height", "procs", "simtime", "simtime/log n", "simwork/n", "paths")
	for _, shape := range []workload.Shape{workload.Balanced, workload.Caterpillar} {
		for _, n := range sizes() {
			t := workload.Random(*seed, n, shape)
			setup := pram.NewSerial()
			bin := t.Binarize(setup)
			h := baseline.Height(bin)
			s := pram.New(pram.ProcsFor(n))
			cov, err := core.ParallelCover(s, t, core.Options{Seed: *seed})
			if err != nil {
				panic(err)
			}
			row(shape.String(), fmt.Sprint(n), fmt.Sprint(h), fmt.Sprint(s.Procs()),
				fmt.Sprint(s.Time()),
				fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)),
				fmt.Sprintf("%.1f", float64(s.Work())/float64(n)),
				fmt.Sprint(cov.NumPaths))
		}
	}
}

func e5() {
	header("E5 — naive O(height·log n) parallelization vs the bracket algorithm",
		"shape", "n", "naive simtime", "optimal simtime", "naive/optimal")
	for _, shape := range []workload.Shape{workload.Balanced, workload.Caterpillar} {
		for _, n := range sizes() {
			t := workload.Random(*seed, n, shape)
			setup := pram.NewSerial()
			bin := t.Binarize(setup)
			L := bin.MakeLeftist(setup, 1)
			sn := pram.New(pram.ProcsFor(n))
			baseline.NaiveCover(sn, bin, L)
			so := pram.New(pram.ProcsFor(n))
			if _, err := core.ParallelCover(so, t, core.Options{Seed: *seed}); err != nil {
				panic(err)
			}
			row(shape.String(), fmt.Sprint(n), fmt.Sprint(sn.Time()), fmt.Sprint(so.Time()),
				fmt.Sprintf("%.2fx", float64(sn.Time())/float64(so.Time())))
		}
	}
}

func e6() {
	n := 1 << *maxLog
	t := workload.Random(*seed, n, workload.Mixed)
	setup := pram.NewSerial()
	bin := t.Binarize(setup)
	L := bin.MakeLeftist(setup, 1)
	timeIt := func(f func()) float64 {
		best := math.Inf(1)
		for r := 0; r < 3; r++ {
			start := time.Now()
			f()
			if el := time.Since(start).Seconds() * 1000; el < best {
				best = el
			}
		}
		return best
	}
	seqMS := timeIt(func() { baseline.SequentialCover(bin, L) })
	header(fmt.Sprintf("E6 — wall-clock speedup, n=%d, host CPUs=%d", n, runtime.NumCPU()),
		"configuration", "wall ms", "vs sequential")
	row("sequential (Lemma 2.3)", fmt.Sprintf("%.1f", seqMS), "1.00x")
	for _, workers := range []int{1, 2, 4, 8, 16, runtime.NumCPU()} {
		if workers > runtime.NumCPU() {
			continue
		}
		w := workers
		ms := timeIt(func() {
			s := pram.New(pram.ProcsFor(n), pram.WithWorkers(w))
			if _, err := core.ParallelCover(s, t, core.Options{Seed: *seed}); err != nil {
				panic(err)
			}
		})
		row(fmt.Sprintf("parallel, %d workers", w), fmt.Sprintf("%.1f", ms),
			fmt.Sprintf("%.2fx", seqMS/ms))
	}
	// Steady-state serving path: one Solver amortising its worker pool and
	// scratch arena across calls (PR 1's executor rewrite).
	g := pathcover.Random(*seed, n, pathcover.Mixed)
	sv := pathcover.NewSolver(pathcover.WithSeed(*seed))
	defer sv.Close()
	if _, err := sv.MinimumPathCover(g); err != nil { // warm the arena
		panic(err)
	}
	ms := timeIt(func() {
		if _, err := sv.MinimumPathCover(g); err != nil {
			panic(err)
		}
	})
	row("parallel, reused Solver", fmt.Sprintf("%.1f", ms), fmt.Sprintf("%.2fx", seqMS/ms))
}

func e7() {
	header("E7 — Lemma 5.1 primitives",
		"primitive", "n", "simtime", "simtime/log n", "simwork/n")
	for _, n := range sizes() {
		rng := rand.New(rand.NewPCG(*seed, uint64(n)))
		data := make([]int, n)
		for i := range data {
			data[i] = rng.IntN(100)
		}
		s := pram.New(pram.ProcsFor(n))
		par.ScanInt(s, data)
		row("prefix sums", fmt.Sprint(n), fmt.Sprint(s.Time()),
			fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)),
			fmt.Sprintf("%.1f", float64(s.Work())/float64(n)))
	}
	next := func(n int) []int {
		nx := make([]int, n)
		for i := 0; i < n-1; i++ {
			nx[i] = i + 1
		}
		nx[n-1] = -1
		return nx
	}
	for _, n := range sizes() {
		s := pram.New(pram.ProcsFor(n))
		par.RankOpt(s, next(n), *seed)
		row("list ranking (work-opt)", fmt.Sprint(n), fmt.Sprint(s.Time()),
			fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)),
			fmt.Sprintf("%.1f", float64(s.Work())/float64(n)))
	}
	for _, n := range sizes() {
		s := pram.New(pram.ProcsFor(n))
		par.Rank(s, next(n))
		row("list ranking (Wyllie)", fmt.Sprint(n), fmt.Sprint(s.Time()),
			fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)),
			fmt.Sprintf("%.1f", float64(s.Work())/float64(n)))
	}
	for _, n := range sizes() {
		rng := rand.New(rand.NewPCG(*seed, uint64(n)))
		open := make([]bool, n)
		for i := range open {
			open[i] = rng.IntN(2) == 0
		}
		s := pram.New(pram.ProcsFor(n))
		par.MatchBrackets(s, open)
		row("bracket matching", fmt.Sprint(n), fmt.Sprint(s.Time()),
			fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)),
			fmt.Sprintf("%.1f", float64(s.Work())/float64(n)))
	}
}

func e8() {
	header("E8 — Lemma 5.2: Euler tour numberings",
		"n", "simtime", "simtime/log n", "simwork/n")
	for _, n := range sizes() {
		t := workload.Random(*seed, n, workload.Mixed)
		setup := pram.NewSerial()
		bin := t.Binarize(setup)
		s := pram.New(pram.ProcsFor(n))
		tour := par.TourBinary(s, bin.BinTree, *seed)
		tour.SubtreeCounts(s, bin.BinTree)
		row(fmt.Sprint(n), fmt.Sprint(s.Time()),
			fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)),
			fmt.Sprintf("%.1f", float64(s.Work())/float64(n)))
	}
}

func e9() {
	n := 1 << *maxLog
	t := workload.Random(*seed, n, workload.Caterpillar)
	s := pram.New(pram.ProcsFor(n))
	if _, err := core.ParallelCover(s, t, core.Options{Seed: *seed}); err != nil {
		panic(err)
	}
	setup := pram.NewSerial()
	bin := t.Binarize(setup)
	L := bin.MakeLeftist(setup, 1)
	sn := pram.New(pram.ProcsFor(n))
	baseline.NaiveCover(sn, bin, L)
	header(fmt.Sprintf("E9 — reported complexities vs this implementation (caterpillar, n=%d)", n),
		"algorithm", "model", "time bound", "processors", "measured simtime")
	row("Adhar–Peng 1990", "CRCW", "O(log² n)", "O(n²)", "— (superseded; see naive emulation)")
	row("Lin et al. 1994 [18] (report)", "EREW", "O(log² n)", "n/log n", "—")
	row("naive bottom-up (§2)", "EREW", "O(height·log n)", "n/log n", fmt.Sprint(sn.Time()))
	row("this paper / this repo", "EREW", "O(log n)", "n/log n", fmt.Sprint(s.Time()))
	fmt.Printf("\nheight of this caterpillar cotree: %d; log2 n = %.0f\n",
		baseline.Height(bin), lg2(n))
}

// wt emits the per-step trace of the full pipeline on both axes: the
// simulated StepTrace counters and the wall clock of each step, so hot
// steps are attributable in BENCH snapshots. The rows key on (shape, n,
// step), which lets -compare show per-step deltas between two reports.
func wt() {
	n := 1 << *maxLog
	header(fmt.Sprintf("WT — per-step trace, n=%d (simulated + wall clock)", n),
		"shape", "n", "step", "simtime", "simwork", "wall ms")
	for _, shape := range []workload.Shape{workload.Balanced, workload.Caterpillar} {
		t := workload.Random(*seed, n, shape)
		trace := &core.StepTrace{}
		s := pram.New(pram.ProcsFor(n))
		if _, err := core.ParallelCover(s, t, core.Options{Seed: *seed, Trace: trace}); err != nil {
			panic(err)
		}
		for i := range trace.Names {
			row(shape.String(), fmt.Sprint(n), trace.Names[i],
				fmt.Sprint(trace.Time[i]), fmt.Sprint(trace.Work[i]),
				fmt.Sprintf("%.3f", float64(trace.Wall[i].Nanoseconds())/1e6))
		}
	}
}

// runCompare renders the speedup table between two -json reports: for
// every experiment present in both, rows are matched on their
// non-numeric key cells and each numeric column is shown as
// "old -> new (ratio)", ratio = old/new (so >1 means the new report is
// better on time-like columns). This replaces the hand-assembled
// before/after tables of the README.
func runCompare(oldPath, newPath string) error {
	oldBlob, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	newBlob, err := os.ReadFile(newPath)
	if err != nil {
		return err
	}
	oldRep, err := loadReport(oldBlob, oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newBlob, newPath)
	if err != nil {
		return err
	}
	if len(oldRep.Experiments) == 0 && len(newRep.Experiments) == 0 {
		// Not pcbench reports: try the BENCH_PRn.json snapshot format.
		return compareBench(oldPath, newPath, oldBlob, newBlob)
	}
	fmt.Printf("comparing %s (%s, %s) -> %s (%s, %s)\n",
		oldPath, oldRep.Commit, oldRep.Date, newPath, newRep.Commit, newRep.Date)
	if oldRep.NumCPU != newRep.NumCPU || oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		fmt.Printf("WARNING: host mismatch: cpus %d vs %d, GOMAXPROCS %d vs %d\n",
			oldRep.NumCPU, newRep.NumCPU, oldRep.GOMAXPROCS, newRep.GOMAXPROCS)
	}
	matched := 0
	g := gateState{threshold: *gate}
	for _, ne := range newRep.Experiments {
		oe := findExperiment(oldRep, ne.Title)
		if oe == nil || !columnsEqual(oe.Columns, ne.Columns) {
			continue
		}
		matched++
		fmt.Printf("\n### %s\n\n", ne.Title)
		fmt.Println("| " + strings.Join(ne.Columns, " | ") + " |")
		sep := make([]string, len(ne.Columns))
		for i := range sep {
			sep[i] = "---"
		}
		fmt.Println("| " + strings.Join(sep, " | ") + " |")
		oldRows := make(map[string][]string, len(oe.Rows))
		for _, r := range oe.Rows {
			oldRows[rowKey(r)] = r
		}
		for _, nr := range ne.Rows {
			or, ok := oldRows[rowKey(nr)]
			if !ok || len(or) != len(nr) {
				fmt.Println("| " + strings.Join(nr, " | ") + " | (new row)")
				continue
			}
			cells := make([]string, len(nr))
			for i := range nr {
				ov, oerr := parseCell(or[i])
				nv, nerr := parseCell(nr[i])
				g.check(ne.Title, rowKey(nr), ne.Columns[i], or[i], nr[i], ov, nv, oerr == nil && nerr == nil)
				switch {
				case oerr != nil || nerr != nil || or[i] == nr[i]:
					cells[i] = nr[i]
				case nv == 0 || ov == 0:
					cells[i] = fmt.Sprintf("%s -> %s", or[i], nr[i])
				default:
					cells[i] = fmt.Sprintf("%s -> %s (%.2fx)", or[i], nr[i], ov/nv)
				}
			}
			fmt.Println("| " + strings.Join(cells, " | ") + " |")
		}
	}
	if matched == 0 {
		return fmt.Errorf("no experiments in common between %s and %s", oldPath, newPath)
	}
	return g.verdict()
}

// gateState implements the CI bench-regression gate: over the matched
// rows of a -compare run, every *simulated* cell — a column whose name
// mentions simtime or simwork, which the cost simulator makes
// deterministic and therefore flake-free — must stay within the drift
// threshold. Wall-clock columns are never gated.
type gateState struct {
	threshold  float64 // percent; 0 disables the gate
	checked    int
	maxDrift   float64
	violations []string
}

// gateable reports whether a column holds simulated counters.
func gateable(col string) bool {
	c := strings.ToLower(col)
	return strings.Contains(c, "simtime") || strings.Contains(c, "simwork")
}

func (g *gateState) check(title, key, col, oldCell, newCell string, ov, nv float64, numeric bool) {
	if g.threshold <= 0 || !gateable(col) {
		return
	}
	if !numeric {
		if oldCell != newCell {
			g.violations = append(g.violations,
				fmt.Sprintf("%s [%s] %s: %q -> %q (non-numeric change)", title, keyLabel(key), col, oldCell, newCell))
		}
		return
	}
	g.checked++
	var drift float64
	switch {
	case ov == nv:
		drift = 0
	case ov == 0:
		drift = 100 // appeared from zero: always a violation at any threshold
	default:
		drift = math.Abs(nv-ov) / math.Abs(ov) * 100
	}
	if drift > g.maxDrift {
		g.maxDrift = drift
	}
	if drift > g.threshold {
		g.violations = append(g.violations,
			fmt.Sprintf("%s [%s] %s: %s -> %s (%+.1f%%)", title, keyLabel(key), col, oldCell, newCell, drift))
	}
}

func (g *gateState) verdict() error {
	if g.threshold <= 0 {
		return nil
	}
	if g.checked == 0 && len(g.violations) == 0 {
		// Fail closed: a gate that matched no simulated cells (renamed
		// experiments, changed columns, re-keyed rows) is not a passing
		// gate — it is a gate that has been disconnected.
		return fmt.Errorf("bench-regression gate: no simulated cells matched between the reports; " +
			"titles/columns/row keys changed — re-baseline deliberately instead of letting the gate pass empty")
	}
	if len(g.violations) > 0 {
		fmt.Printf("\nGATE FAILED (> %.0f%% drift on simulated counters):\n", g.threshold)
		for _, v := range g.violations {
			fmt.Printf("  %s\n", v)
		}
		return fmt.Errorf("bench-regression gate: %d of %d simulated cells drifted beyond %.0f%%",
			len(g.violations), g.checked, g.threshold)
	}
	fmt.Printf("\ngate OK: %d simulated cells within %.0f%% (max drift %.2f%%)\n",
		g.checked, g.threshold, g.maxDrift)
	return nil
}

// keyLabel renders a row key (NUL-joined identity cells) readably.
func keyLabel(key string) string { return strings.ReplaceAll(key, "\x00", "/") }

func loadReport(blob []byte, path string) (*jsonReport, error) {
	var rep jsonReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func findExperiment(rep *jsonReport, title string) *jsonExperiment {
	for i := range rep.Experiments {
		if rep.Experiments[i].Title == title {
			return &rep.Experiments[i]
		}
	}
	return nil
}

func columnsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rowKey joins the non-numeric cells of a row — the shape/size/label
// columns that identify it across reports.
func rowKey(row []string) string {
	var key []string
	for _, c := range row {
		if _, err := parseCell(c); err != nil {
			key = append(key, c)
		} else if n, err := strconv.Atoi(c); err == nil && isSizeLike(n) {
			// Integer size columns (n, procs, k, height) are identity, not
			// measurement: match on them too.
			key = append(key, c)
		}
	}
	return strings.Join(key, "\x00")
}

// isSizeLike treats round or structural integers as identity columns.
// Measurements (simtime, wall ms) are floats or large irregular ints;
// sizes are the sweep's powers of two and small structural counts.
func isSizeLike(n int) bool {
	return n >= 0 && (n < 64 || n&(n-1) == 0)
}

// parseCell parses a numeric table cell, tolerating the "1.23x" ratio
// suffix.
func parseCell(c string) (float64, error) {
	c = strings.TrimSuffix(strings.TrimSpace(c), "x")
	return strconv.ParseFloat(c, 64)
}

// The BENCH_PRn.json format: the per-PR wall-clock snapshots recorded at
// the repo root. -compare accepts these too, diffing each benchmark's
// "after" point by name, which generates the README's speedup table
// instead of assembling it by hand.
type benchPoint struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type benchEntry struct {
	Name    string      `json:"name"`
	Before  *benchPoint `json:"before,omitempty"`
	After   *benchPoint `json:"after,omitempty"`
	Speedup float64     `json:"speedup,omitempty"`
}

type benchReport struct {
	PR         int          `json:"pr"`
	Commit     string       `json:"commit,omitempty"`
	Date       string       `json:"date,omitempty"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// compareBench diffs two BENCH_PRn.json snapshots on their "after"
// points.
func compareBench(oldPath, newPath string, oldBlob, newBlob []byte) error {
	var oldRep, newRep benchReport
	if err := json.Unmarshal(oldBlob, &oldRep); err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	if err := json.Unmarshal(newBlob, &newRep); err != nil {
		return fmt.Errorf("%s: %w", newPath, err)
	}
	oldBy := make(map[string]*benchPoint, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		if b.After != nil {
			oldBy[b.Name] = b.After
		}
	}
	fmt.Printf("comparing PR %d (%s) -> PR %d (%s), wall clock and bytes per op\n\n",
		oldRep.PR, oldPath, newRep.PR, newPath)
	fmt.Println("| benchmark | ns/op | B/op | allocs/op |")
	fmt.Println("| --- | --- | --- | --- |")
	matched := 0
	for _, b := range newRep.Benchmarks {
		o := oldBy[b.Name]
		if o == nil || b.After == nil {
			continue
		}
		matched++
		fmt.Printf("| %s | %s | %s | %s |\n", b.Name,
			ratioCell(o.NsPerOp, b.After.NsPerOp),
			ratioCell(o.BytesPerOp, b.After.BytesPerOp),
			ratioCell(o.AllocsPerOp, b.After.AllocsPerOp))
	}
	if matched == 0 {
		return fmt.Errorf("no benchmarks in common between %s and %s", oldPath, newPath)
	}
	return nil
}

func ratioCell(old, new float64) string {
	if old <= 0 || new <= 0 {
		return fmt.Sprintf("%.3g -> %.3g", old, new)
	}
	return fmt.Sprintf("%.3g -> %.3g (%.2fx)", old, new, old/new)
}
