// Command pcbench regenerates the experiment tables of EXPERIMENTS.md:
// every theorem/lemma of the paper mapped to a measurable claim on the
// PRAM cost simulator plus wall-clock comparisons.
//
// Usage:
//
//	pcbench                       # run everything
//	pcbench -exp e4               # one experiment
//	pcbench -exp e4 -max 20       # larger sweep (2^20)
//	pcbench -json BENCH_PR1.json  # also dump machine-readable results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"runtime"
	"strings"
	"time"

	"pathcover"
	"pathcover/internal/baseline"
	"pathcover/internal/core"
	"pathcover/internal/lowerbound"
	"pathcover/internal/par"
	"pathcover/internal/pram"
	"pathcover/internal/workload"
)

var (
	exp      = flag.String("exp", "all", "experiment to run: e1..e9 | all")
	maxLog   = flag.Int("max", 18, "largest input size as a power of two")
	seed     = flag.Uint64("seed", 1, "random seed")
	jsonPath = flag.String("json", "", "write machine-readable results to this file")
)

// jsonExperiment mirrors one rendered table; the -json dump gives future
// PRs a perf trajectory to diff against.
type jsonExperiment struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

type jsonReport struct {
	Date        string           `json:"date"`
	GoVersion   string           `json:"go_version"`
	NumCPU      int              `json:"num_cpu"`
	MaxLog      int              `json:"max_log"`
	Seed        uint64           `json:"seed"`
	Experiments []jsonExperiment `json:"experiments"`
}

var report = jsonReport{
	Date:      time.Now().UTC().Format(time.RFC3339),
	GoVersion: runtime.Version(),
	NumCPU:    runtime.NumCPU(),
}

func main() {
	flag.Parse()
	report.MaxLog = *maxLog
	report.Seed = *seed
	run := func(name string, f func()) {
		if *exp == "all" || *exp == name {
			f()
		}
	}
	run("e1", e1)
	run("e2", e2)
	run("e3", e3)
	run("e4", e4)
	run("e5", e5)
	run("e6", e6)
	run("e7", e7)
	run("e8", e8)
	run("e9", e9)
	if !strings.HasPrefix(*exp, "e") && *exp != "all" {
		fmt.Fprintf(os.Stderr, "pcbench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pcbench: wrote %s\n", *jsonPath)
	}
}

func sizes() []int {
	var out []int
	for lg := 10; lg <= *maxLog; lg += 2 {
		out = append(out, 1<<lg)
	}
	return out
}

func lg2(n int) float64 { return math.Log2(float64(n)) }

func header(title string, cols ...string) {
	fmt.Printf("\n### %s\n\n", title)
	fmt.Println("| " + strings.Join(cols, " | ") + " |")
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Println("| " + strings.Join(sep, " | ") + " |")
	report.Experiments = append(report.Experiments, jsonExperiment{Title: title, Columns: cols})
}

func row(cells ...string) {
	fmt.Println("| " + strings.Join(cells, " | ") + " |")
	if n := len(report.Experiments); n > 0 {
		e := &report.Experiments[n-1]
		e.Rows = append(e.Rows, cells)
	}
}

func e1() {
	header("E1 — Theorem 2.2: OR reduction gadget (Fig. 2)",
		"n bits", "k ones", "paths", "expected n-k+2", "y-path len", "OR", "simtime", "simtime/log n")
	for _, n := range sizes() {
		rng := rand.New(rand.NewPCG(*seed, uint64(n)))
		bits := make([]bool, n)
		k := 0
		for i := range bits {
			if rng.IntN(n) < 3 {
				bits[i] = true
				k++
			}
		}
		inst := lowerbound.Build(bits)
		s := pram.New(pram.ProcsFor(n))
		cov, err := core.ParallelCover(s, inst.Tree, core.Options{Seed: *seed})
		if err != nil {
			panic(err)
		}
		or, err := inst.Decode(cov.Paths)
		if err != nil {
			panic(err)
		}
		ylen := 0
		for _, p := range cov.Paths {
			for _, v := range p {
				if v == inst.Y {
					ylen = len(p)
				}
			}
		}
		row(fmt.Sprint(n), fmt.Sprint(k), fmt.Sprint(len(cov.Paths)),
			fmt.Sprint(inst.ExpectedPaths(k)), fmt.Sprint(ylen), fmt.Sprint(or),
			fmt.Sprint(s.Time()), fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)))
	}
}

func e2() {
	header("E2 — Lemma 2.3: sequential cover is O(n)",
		"shape", "n", "wall ms", "ns/vertex")
	for _, shape := range []workload.Shape{workload.Mixed, workload.Caterpillar} {
		for _, n := range sizes() {
			t := workload.Random(*seed, n, shape)
			s := pram.NewSerial()
			bin := t.Binarize(s)
			L := bin.MakeLeftist(s, 1)
			reps := max(1, 1<<22/n)
			start := time.Now()
			for r := 0; r < reps; r++ {
				baseline.SequentialCover(bin, L)
			}
			el := time.Since(start) / time.Duration(reps)
			row(shape.String(), fmt.Sprint(n),
				fmt.Sprintf("%.2f", float64(el.Microseconds())/1000),
				fmt.Sprintf("%.1f", float64(el.Nanoseconds())/float64(n)))
		}
	}
}

func e3() {
	header("E3 — Lemma 2.4: p(u) by tree contraction",
		"n", "procs", "simtime", "simtime/log n", "simwork/n")
	for _, n := range sizes() {
		t := workload.Random(*seed, n, workload.Mixed)
		setup := pram.NewSerial()
		bin := t.Binarize(setup)
		L := bin.MakeLeftist(setup, 1)
		s := pram.New(pram.ProcsFor(n))
		tour := par.TourBinary(s, bin.BinTree, *seed)
		s.Reset()
		core.ComputeP(s, bin, L, tour)
		row(fmt.Sprint(n), fmt.Sprint(s.Procs()), fmt.Sprint(s.Time()),
			fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)),
			fmt.Sprintf("%.1f", float64(s.Work())/float64(n)))
	}
}

func e4() {
	header("E4 — Theorem 5.3: optimal parallel cover, time O(log n), work O(n)",
		"shape", "n", "height", "procs", "simtime", "simtime/log n", "simwork/n", "paths")
	for _, shape := range []workload.Shape{workload.Balanced, workload.Caterpillar} {
		for _, n := range sizes() {
			t := workload.Random(*seed, n, shape)
			setup := pram.NewSerial()
			bin := t.Binarize(setup)
			h := baseline.Height(bin)
			s := pram.New(pram.ProcsFor(n))
			cov, err := core.ParallelCover(s, t, core.Options{Seed: *seed})
			if err != nil {
				panic(err)
			}
			row(shape.String(), fmt.Sprint(n), fmt.Sprint(h), fmt.Sprint(s.Procs()),
				fmt.Sprint(s.Time()),
				fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)),
				fmt.Sprintf("%.1f", float64(s.Work())/float64(n)),
				fmt.Sprint(cov.NumPaths))
		}
	}
}

func e5() {
	header("E5 — naive O(height·log n) parallelization vs the bracket algorithm",
		"shape", "n", "naive simtime", "optimal simtime", "naive/optimal")
	for _, shape := range []workload.Shape{workload.Balanced, workload.Caterpillar} {
		for _, n := range sizes() {
			t := workload.Random(*seed, n, shape)
			setup := pram.NewSerial()
			bin := t.Binarize(setup)
			L := bin.MakeLeftist(setup, 1)
			sn := pram.New(pram.ProcsFor(n))
			baseline.NaiveCover(sn, bin, L)
			so := pram.New(pram.ProcsFor(n))
			if _, err := core.ParallelCover(so, t, core.Options{Seed: *seed}); err != nil {
				panic(err)
			}
			row(shape.String(), fmt.Sprint(n), fmt.Sprint(sn.Time()), fmt.Sprint(so.Time()),
				fmt.Sprintf("%.2fx", float64(sn.Time())/float64(so.Time())))
		}
	}
}

func e6() {
	n := 1 << *maxLog
	t := workload.Random(*seed, n, workload.Mixed)
	setup := pram.NewSerial()
	bin := t.Binarize(setup)
	L := bin.MakeLeftist(setup, 1)
	timeIt := func(f func()) float64 {
		best := math.Inf(1)
		for r := 0; r < 3; r++ {
			start := time.Now()
			f()
			if el := time.Since(start).Seconds() * 1000; el < best {
				best = el
			}
		}
		return best
	}
	seqMS := timeIt(func() { baseline.SequentialCover(bin, L) })
	header(fmt.Sprintf("E6 — wall-clock speedup, n=%d, host CPUs=%d", n, runtime.NumCPU()),
		"configuration", "wall ms", "vs sequential")
	row("sequential (Lemma 2.3)", fmt.Sprintf("%.1f", seqMS), "1.00x")
	for _, workers := range []int{1, 2, 4, 8, 16, runtime.NumCPU()} {
		if workers > runtime.NumCPU() {
			continue
		}
		w := workers
		ms := timeIt(func() {
			s := pram.New(pram.ProcsFor(n), pram.WithWorkers(w))
			if _, err := core.ParallelCover(s, t, core.Options{Seed: *seed}); err != nil {
				panic(err)
			}
		})
		row(fmt.Sprintf("parallel, %d workers", w), fmt.Sprintf("%.1f", ms),
			fmt.Sprintf("%.2fx", seqMS/ms))
	}
	// Steady-state serving path: one Solver amortising its worker pool and
	// scratch arena across calls (PR 1's executor rewrite).
	g := pathcover.Random(*seed, n, pathcover.Mixed)
	sv := pathcover.NewSolver(pathcover.WithSeed(*seed))
	defer sv.Close()
	if _, err := sv.MinimumPathCover(g); err != nil { // warm the arena
		panic(err)
	}
	ms := timeIt(func() {
		if _, err := sv.MinimumPathCover(g); err != nil {
			panic(err)
		}
	})
	row("parallel, reused Solver", fmt.Sprintf("%.1f", ms), fmt.Sprintf("%.2fx", seqMS/ms))
}

func e7() {
	header("E7 — Lemma 5.1 primitives",
		"primitive", "n", "simtime", "simtime/log n", "simwork/n")
	for _, n := range sizes() {
		rng := rand.New(rand.NewPCG(*seed, uint64(n)))
		data := make([]int, n)
		for i := range data {
			data[i] = rng.IntN(100)
		}
		s := pram.New(pram.ProcsFor(n))
		par.ScanInt(s, data)
		row("prefix sums", fmt.Sprint(n), fmt.Sprint(s.Time()),
			fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)),
			fmt.Sprintf("%.1f", float64(s.Work())/float64(n)))
	}
	next := func(n int) []int {
		nx := make([]int, n)
		for i := 0; i < n-1; i++ {
			nx[i] = i + 1
		}
		nx[n-1] = -1
		return nx
	}
	for _, n := range sizes() {
		s := pram.New(pram.ProcsFor(n))
		par.RankOpt(s, next(n), *seed)
		row("list ranking (work-opt)", fmt.Sprint(n), fmt.Sprint(s.Time()),
			fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)),
			fmt.Sprintf("%.1f", float64(s.Work())/float64(n)))
	}
	for _, n := range sizes() {
		s := pram.New(pram.ProcsFor(n))
		par.Rank(s, next(n))
		row("list ranking (Wyllie)", fmt.Sprint(n), fmt.Sprint(s.Time()),
			fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)),
			fmt.Sprintf("%.1f", float64(s.Work())/float64(n)))
	}
	for _, n := range sizes() {
		rng := rand.New(rand.NewPCG(*seed, uint64(n)))
		open := make([]bool, n)
		for i := range open {
			open[i] = rng.IntN(2) == 0
		}
		s := pram.New(pram.ProcsFor(n))
		par.MatchBrackets(s, open)
		row("bracket matching", fmt.Sprint(n), fmt.Sprint(s.Time()),
			fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)),
			fmt.Sprintf("%.1f", float64(s.Work())/float64(n)))
	}
}

func e8() {
	header("E8 — Lemma 5.2: Euler tour numberings",
		"n", "simtime", "simtime/log n", "simwork/n")
	for _, n := range sizes() {
		t := workload.Random(*seed, n, workload.Mixed)
		setup := pram.NewSerial()
		bin := t.Binarize(setup)
		s := pram.New(pram.ProcsFor(n))
		tour := par.TourBinary(s, bin.BinTree, *seed)
		tour.SubtreeCounts(s, bin.BinTree)
		row(fmt.Sprint(n), fmt.Sprint(s.Time()),
			fmt.Sprintf("%.1f", float64(s.Time())/lg2(n)),
			fmt.Sprintf("%.1f", float64(s.Work())/float64(n)))
	}
}

func e9() {
	n := 1 << *maxLog
	t := workload.Random(*seed, n, workload.Caterpillar)
	s := pram.New(pram.ProcsFor(n))
	if _, err := core.ParallelCover(s, t, core.Options{Seed: *seed}); err != nil {
		panic(err)
	}
	setup := pram.NewSerial()
	bin := t.Binarize(setup)
	L := bin.MakeLeftist(setup, 1)
	sn := pram.New(pram.ProcsFor(n))
	baseline.NaiveCover(sn, bin, L)
	header(fmt.Sprintf("E9 — reported complexities vs this implementation (caterpillar, n=%d)", n),
		"algorithm", "model", "time bound", "processors", "measured simtime")
	row("Adhar–Peng 1990", "CRCW", "O(log² n)", "O(n²)", "— (superseded; see naive emulation)")
	row("Lin et al. 1994 [18] (report)", "EREW", "O(log² n)", "n/log n", "—")
	row("naive bottom-up (§2)", "EREW", "O(height·log n)", "n/log n", fmt.Sprint(sn.Time()))
	row("this paper / this repo", "EREW", "O(log n)", "n/log n", fmt.Sprint(s.Time()))
	fmt.Printf("\nheight of this caterpillar cotree: %d; log2 n = %.0f\n",
		baseline.Height(bin), lg2(n))
}
