// Command cographgen emits cotree instances in the text format consumed
// by cmd/pathcover, for scripting experiments.
//
// Usage:
//
//	cographgen -n 1000 -seed 7 -shape caterpillar > instance.cotree
//	cographgen -family bipartite -a 300 -b 200
package main

import (
	"flag"
	"fmt"
	"os"

	"pathcover"
)

var (
	n      = flag.Int("n", 100, "number of vertices")
	seed   = flag.Uint64("seed", 1, "random seed")
	shape  = flag.String("shape", "mixed", "random cotree shape: mixed | balanced | caterpillar")
	family = flag.String("family", "", "fixed family instead of random: clique | empty | star | threshold | bipartite | multiclique")
	a      = flag.Int("a", 10, "first parameter for parametric families")
	bb     = flag.Int("b", 10, "second parameter for parametric families")
)

func main() {
	flag.Parse()
	var g *pathcover.Graph
	switch *family {
	case "":
		var sh pathcover.Shape
		switch *shape {
		case "mixed":
			sh = pathcover.Mixed
		case "balanced":
			sh = pathcover.Balanced
		case "caterpillar":
			sh = pathcover.Caterpillar
		default:
			fail(fmt.Errorf("unknown -shape %q", *shape))
		}
		g = pathcover.Random(*seed, *n, sh)
	case "clique":
		g = pathcover.Clique(*n)
	case "empty":
		g = pathcover.Empty(*n)
	case "star":
		g = pathcover.Star(*n)
	case "threshold":
		g = pathcover.Threshold(*seed, *n)
	case "bipartite":
		g = pathcover.CompleteBipartite(*a, *bb)
	case "multiclique":
		g = pathcover.UnionOfCliques(*a, *bb)
	default:
		fail(fmt.Errorf("unknown -family %q", *family))
	}
	fmt.Println(g.String())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cographgen:", err)
	os.Exit(1)
}
