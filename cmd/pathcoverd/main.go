// Command pathcoverd serves minimum path covers of cographs over HTTP
// from a sharded pathcover.Pool.
//
//	pathcoverd -addr :8080 -shards 4
//
// The server itself lives in internal/daemon (shared with
// pathcover-gateway's -spawn mode and the cluster tests); this binary
// is the flag surface, the PGO/cpuprofile plumbing and the signal
// lifecycle around it. See the package comment of internal/daemon for
// the endpoint and status-code contract.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
	"time"

	"pathcover/internal/daemon"
)

var (
	addr       = flag.String("addr", ":8080", "listen address")
	shards     = flag.Int("shards", 0, "solver shards (0 = GOMAXPROCS/2)")
	queue      = flag.Int("queue", 0, "admission queue depth (0 = 8 per shard, negative = unbounded)")
	maxBody    = flag.Int64("max-body", 64<<20, "request body size limit in bytes")
	verify     = flag.Bool("verify", false, "re-verify every cover before responding (debugging; O(n) extra per request)")
	reqTimeout = flag.Duration("request-timeout", 30*time.Second,
		"per-request deadline enforced inside the solve pipeline; requests over it get 504 (0 disables)")
	cacheMB    = flag.Int64("cache-mb", 64, "canonical-identity result cache capacity in MiB (0 disables)")
	maxGraphs  = flag.Int("max-graphs", 0, "registered-graph capacity for POST /graphs (0 = default 1024)")
	affinity   = flag.Bool("affinity", false, "pin each shard's workers to a disjoint CPU set (Linux; no-op elsewhere)")
	retryAfter = flag.Duration("retry-after", time.Second,
		"backoff hint set on 503 responses via the Retry-After header (rounded to whole seconds, minimum 1s)")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile covering the daemon's lifetime to this file on shutdown (pprof format; feeds default.pgo for PGO builds)")
	opsAddr    = flag.String("ops", "", "operational listen address serving /metrics and /debug/pprof (empty disables; /metrics is always also on the serving port)")
	logSample  = flag.Float64("log-sample", 0, "structured JSON request-log head-sampling rate on stderr: 1 logs every request, 0.01 every hundredth (0 disables)")
	batchShare = flag.Float64("batch-share", 0.5, "share of the admission queue the /batch tier may occupy, so bulk load cannot starve interactive requests (>=1 disables the gate)")
	shedAfter  = flag.Duration("shed-after", 0, "cost-shedding budget: when a request's projected queue time exceeds this, covers degrade to the approximation backend and other requests get 503 + Retry-After (0 disables)")
	adapt      = flag.Bool("adapt", false, "adaptive shard control: grow live shards toward -adapt-max under sustained queue pressure, shrink when idle")
	adaptMax   = flag.Int("adapt-max", 0, "physical shard ceiling under -adapt (0 = GOMAXPROCS)")
	adaptEvery = flag.Duration("adapt-interval", 250*time.Millisecond, "adaptive controller tick interval")
)

func main() {
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("pathcoverd: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("pathcoverd: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Printf("pathcoverd: %v", err)
			}
			log.Printf("pathcoverd: wrote CPU profile %s", *cpuprofile)
		}()
	}
	s := daemon.New(daemon.Config{
		Shards:         *shards,
		Queue:          *queue,
		MaxBody:        *maxBody,
		Verify:         *verify,
		RequestTimeout: *reqTimeout,
		CacheMB:        *cacheMB,
		MaxGraphs:      *maxGraphs,
		Affinity:       *affinity,
		RetryAfter:     *retryAfter,
		LogSample:      *logSample,
		BatchShare:     *batchShare,
		ShedAfter:      *shedAfter,
		Adapt:          *adapt,
		AdaptMax:       *adaptMax,
		AdaptInterval:  *adaptEvery,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if *opsAddr != "" {
		ops := &http.Server{
			Addr:              *opsAddr,
			Handler:           s.OpsHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := ops.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("pathcoverd: ops: %v", err)
			}
		}()
		log.Printf("pathcoverd: ops on %s (/metrics, /debug/pprof)", *opsAddr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("pathcoverd: serving on %s (%d shards, queue depth %d)",
		*addr, s.Pool().NumShards(), s.Pool().Stats().QueueDepth)
	select {
	case err := <-errc:
		log.Fatalf("pathcoverd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("pathcoverd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("pathcoverd: shutdown: %v", err)
	}
	s.Close()
}
